package main

import (
	"flag"
	"fmt"
	"strings"

	"pangenomicsbench/internal/gensim"
	"pangenomicsbench/internal/obs"
)

// newFlagSet is the common flag-set constructor for pgbench subcommands.
func newFlagSet(name string) *flag.FlagSet {
	return flag.NewFlagSet(name, flag.ContinueOnError)
}

// popFlags is the population flag block shared by the trace-replay commands
// (serve-sim, map-serve): both start from the same deterministic simulated
// assembly catalog, so the flags and the simulation step live in one place.
type popFlags struct {
	refLen *int
	haps   *int
	seed   *int64
}

// addPopFlags registers the shared population/trace flags on fs with
// command-specific catalog defaults.
func addPopFlags(fs *flag.FlagSet, defRef, defHaps int) *popFlags {
	return &popFlags{
		refLen: fs.Int("ref", defRef, "simulated reference length (bp)"),
		haps:   fs.Int("haps", defHaps, "assemblies in the catalog"),
		seed:   fs.Int64("seed", 42, "trace seed"),
	}
}

// simulate builds the deterministic population behind the trace.
func (p *popFlags) simulate() (*gensim.Population, error) {
	return p.simulateWith(gensim.Scenario{})
}

// simulateWith builds the population with a scenario's reshaper applied on
// top of the flag-selected geometry (the zero Scenario changes nothing).
func (p *popFlags) simulateWith(sc gensim.Scenario) (*gensim.Population, error) {
	cfg := gensim.DefaultConfig()
	cfg.RefLen = *p.refLen
	cfg.Haplotypes = *p.haps
	return gensim.Simulate(sc.PopConfig(cfg))
}

// addScenarioFlag registers -scenario on fs with the catalog names inlined
// in the help text; resolve the value with gensim.LookupScenario.
func addScenarioFlag(fs *flag.FlagSet, def string) *string {
	return fs.String("scenario", def,
		"workload scenario: "+strings.Join(gensim.ScenarioNames(), ", "))
}

// obsFlags is the admin-endpoint flag block shared by the serve commands.
type obsFlags struct {
	addr  *string
	pprof *bool
}

// addObsFlag registers -obs and -pprof on fs.
func addObsFlag(fs *flag.FlagSet) *obsFlags {
	return &obsFlags{
		addr:  fs.String("obs", "", "admin/metrics listen address, e.g. :8080 (empty = no endpoint)"),
		pprof: fs.Bool("pprof", false, "mount continuous-profiling endpoints under /debug/pprof/ on the -obs server"),
	}
}

// start launches the obs admin server when -obs was given and returns its
// closer (a no-op closer otherwise).
func (o *obsFlags) start(cfg obs.ServerConfig) (func(), error) {
	if *o.addr == "" {
		return func() {}, nil
	}
	cfg.EnableProfiling = cfg.EnableProfiling || *o.pprof
	srv := obs.NewServer(cfg)
	bound, err := srv.Start(*o.addr)
	if err != nil {
		return nil, err
	}
	fmt.Printf("admin endpoint: http://%s/ (/metrics /traces /snapshots /healthz)\n", bound)
	if cfg.EnableProfiling {
		fmt.Printf("profiling endpoints: http://%s/debug/pprof/\n", bound)
	}
	return func() { _ = srv.Close() }, nil
}

// printSlowest renders the top-n slowest retained trace trees — the
// replay-end flight-recorder report.
func printSlowest(tr *obs.Tracer, n int) {
	slow := tr.Recorder().Slowest(n)
	if len(slow) == 0 {
		return
	}
	fmt.Printf("\nslowest %d traces:\n", len(slow))
	for _, d := range slow {
		fmt.Println(d.Tree())
	}
}

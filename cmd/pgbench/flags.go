package main

import (
	"flag"

	"pangenomicsbench/internal/gensim"
)

// newFlagSet is the common flag-set constructor for pgbench subcommands.
func newFlagSet(name string) *flag.FlagSet {
	return flag.NewFlagSet(name, flag.ContinueOnError)
}

// popFlags is the population flag block shared by the trace-replay commands
// (serve-sim, map-serve): both start from the same deterministic simulated
// assembly catalog, so the flags and the simulation step live in one place.
type popFlags struct {
	refLen *int
	haps   *int
	seed   *int64
}

// addPopFlags registers the shared population/trace flags on fs with
// command-specific catalog defaults.
func addPopFlags(fs *flag.FlagSet, defRef, defHaps int) *popFlags {
	return &popFlags{
		refLen: fs.Int("ref", defRef, "simulated reference length (bp)"),
		haps:   fs.Int("haps", defHaps, "assemblies in the catalog"),
		seed:   fs.Int64("seed", 42, "trace seed"),
	}
}

// simulate builds the deterministic population behind the trace.
func (p *popFlags) simulate() (*gensim.Population, error) {
	cfg := gensim.DefaultConfig()
	cfg.RefLen = *p.refLen
	cfg.Haplotypes = *p.haps
	return gensim.Simulate(cfg)
}

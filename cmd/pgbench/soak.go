package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"pangenomicsbench/internal/gensim"
	"pangenomicsbench/internal/mapserve"
	"pangenomicsbench/internal/obs"
	"pangenomicsbench/internal/perf"
	"pangenomicsbench/internal/soak"
)

// soakCmd replays a catalog scenario against the full build-then-serve stack
// for a configured duration, injecting chaos mid-run, and exits non-zero if
// any end-of-run assertion (lost queries, gauge watermarks, leak checks)
// fails.
func soakCmd(args []string) error {
	fs := newFlagSet("soak")
	pf := addPopFlags(fs, 20_000, 5)
	scenarioName := addScenarioFlag(fs, "skewed-tenant")
	dur := fs.Duration("dur", 10*time.Second, "soak duration")
	chaosCSV := fs.String("chaos", "swap,restart", "comma-separated chaos events fired at even fractions of -dur: swap, shed, restart, build-reject, worker-kill")
	fleetNodes := fs.Int("fleet", 0, "route the build tier through an in-process construction fleet of N workers (worker-kill chaos needs ≥ 2)")
	clients := fs.Int("clients", 8, "concurrent query clients")
	workers := fs.Int("workers", 0, "mapping worker slots (0 = GOMAXPROCS)")
	maxBatch := fs.Int("batch", 32, "micro-batch size cap")
	batchWait := fs.Duration("batch-wait", 2*time.Millisecond, "micro-batch max wait")
	queueDepth := fs.Int("queue", 256, "admission queue depth")
	toolName := fs.String("tool", "giraffe", "mapping tool: giraffe, vgmap, graphaligner or minigraph-lr")
	storePath := fs.String("store", "", "snapshot store directory (a temp dir is created when -chaos includes restart and -store is empty)")
	jsonlPath := fs.String("jsonl", "", "structured flight-log file (JSONL: periodic samples, chaos events, final report)")
	maxShed := fs.Float64("max-shed", 0.05, "organic shed-rate ceiling asserted at run end (chaos-storm sheds excluded)")
	sampleEvery := fs.Int("sample-every", 8, "flight-recorder ring keeps 1 in N traces (failed/shed traces always kept)")
	of := addObsFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	sc, err := gensim.LookupScenario(*scenarioName)
	if err != nil {
		return err
	}
	chaos, err := soak.ParseChaos(*chaosCSV)
	if err != nil {
		return err
	}
	toolCfg := mapserve.DefaultToolConfig(mapserve.ToolKind(*toolName))
	switch toolCfg.Kind {
	case mapserve.ToolGiraffe, mapserve.ToolVgMap, mapserve.ToolGraphAligner, mapserve.ToolMinigraphLR:
	default:
		return fmt.Errorf("unknown tool %q (want giraffe, vgmap, graphaligner or minigraph-lr)", *toolName)
	}

	// A warm restart needs somewhere to reload from; conjure a scratch store
	// when the user asked for restart chaos without naming one.
	needStore := false
	for _, k := range chaos {
		if k == soak.ChaosRestart {
			needStore = true
		}
	}
	if needStore && *storePath == "" {
		tmp, err := os.MkdirTemp("", "pgbench-soak-store-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		*storePath = tmp
		fmt.Printf("restart chaos requested without -store: using scratch store %s\n", tmp)
	}

	var sink *obs.JSONLSink
	if *jsonlPath != "" {
		f, err := os.Create(*jsonlPath)
		if err != nil {
			return err
		}
		defer f.Close()
		sink = obs.NewJSONLSink(f)
	}

	// Metrics and tracer live out here so -obs can expose the run live.
	metrics := perf.NewMetrics()
	tracer := obs.NewTracer(obs.TracerConfig{
		Capacity:       512,
		Metrics:        metrics,
		SampleEvery:    *sampleEvery,
		ExemplarMaxAge: time.Minute,
	})
	stopObs, err := of.start(obs.ServerConfig{
		Metrics:  metrics.Snapshot,
		Recorder: tracer.Recorder(),
	})
	if err != nil {
		return err
	}
	defer stopObs()

	fmt.Printf("soak: scenario %s for %v, chaos=%v, tool=%s, %d clients, queue=%d\n",
		sc.Name, *dur, chaos, toolCfg.Kind, *clients, *queueDepth)
	if sc.Summary != "" {
		fmt.Printf("  %s\n", sc.Summary)
	}
	fmt.Println()

	res, err := soak.Run(context.Background(), soak.Config{
		Scenario:    sc,
		RefLen:      *pf.refLen,
		Haps:        *pf.haps,
		Seed:        *pf.seed,
		Duration:    *dur,
		Clients:     *clients,
		Tool:        toolCfg,
		Workers:     *workers,
		MaxBatch:    *maxBatch,
		BatchWait:   *batchWait,
		QueueDepth:  *queueDepth,
		Chaos:       chaos,
		FleetNodes:  *fleetNodes,
		StoreDir:    *storePath,
		Sink:        sink,
		MaxShedRate: *maxShed,
		Metrics:     metrics,
		Tracer:      tracer,
		Out:         os.Stdout,
	})
	if err != nil {
		return err
	}

	fmt.Printf("\nreplayed for %v: issued %d, mapped %d, shed %d, failed %d, lost %d\n",
		res.Wall.Round(time.Millisecond), res.Issued, res.Mapped, res.Shed, res.Failed, res.Lost)
	fmt.Printf("chaos: %d swaps, %d restarts, %d shed storms, %d build-reject windows, %d worker kills; %d snapshot generation(s) live\n",
		res.Swaps, res.Restarts, res.Storms, res.Rejects, res.Kills, res.Generations)
	fmt.Println()
	fmt.Print(res.Report.Render())
	printSlowest(tracer, 3)
	if n := res.Report.Failed(); n > 0 {
		return fmt.Errorf("%d soak assertion(s) failed", n)
	}
	return nil
}

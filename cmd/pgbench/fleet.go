package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pangenomicsbench/internal/build"
	"pangenomicsbench/internal/fleet"
	"pangenomicsbench/internal/gfa"
	"pangenomicsbench/internal/obs"
	"pangenomicsbench/internal/perf"
)

// fleetWorkerCmd runs one fleet worker daemon: a ref-counted shard cache
// behind the pair-match wire protocol, serving until SIGINT/SIGTERM.
func fleetWorkerCmd(args []string) error {
	fs := newFlagSet("fleet-worker")
	listen := fs.String("listen", "127.0.0.1:9471", "worker RPC listen address")
	name := fs.String("name", "", "worker name reported in heartbeats (default: the listen address)")
	cacheMB := fs.Int("cache-mb", 32, "shard cache capacity (MiB); a coordinator config push may override it")
	of := addObsFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	wname := *name
	if wname == "" {
		wname = *listen
	}
	// Every worker carries its own metric set and tracer: the metrics feed
	// GET /metrics on the RPC listener (the coordinator's federation scrape)
	// and the tracer's span trees ride back on match responses, so the
	// coordinator can graft them into one cross-process trace per build.
	metrics := perf.NewMetrics()
	tracer := obs.NewTracer(obs.TracerConfig{Metrics: metrics})
	w := fleet.NewWorker(wname, *cacheMB<<20)
	w.SetObs(metrics, tracer)
	srv := fleet.NewWorkerServer(w)
	addr, err := srv.Start(*listen)
	if err != nil {
		return err
	}
	stopObs, err := of.start(obs.ServerConfig{
		Metrics:  metrics.Snapshot,
		Recorder: tracer.Recorder(),
	})
	if err != nil {
		_ = srv.Close()
		return err
	}
	defer stopObs()
	fmt.Printf("fleet-worker %s: serving pair-match RPCs on %s (cache %d MiB)\n", wname, addr, *cacheMB)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("fleet-worker: shutting down")
	return srv.Close()
}

// fleetFromSpec builds a running coordinator from a node spec: "local:N"
// spins N in-process loopback workers; anything else is a comma-separated
// list of fleet-worker daemon addresses.
func fleetFromSpec(spec string, cacheBytes int, metrics *perf.Metrics, tracer *obs.Tracer) (*fleet.Coordinator, error) {
	coord := fleet.NewCoordinator(fleet.Config{Metrics: metrics, CacheBytes: cacheBytes})
	if n, ok := strings.CutPrefix(spec, "local:"); ok {
		count, err := strconv.Atoi(n)
		if err != nil || count < 1 {
			coord.Close()
			return nil, fmt.Errorf("bad fleet spec %q (want local:N with N ≥ 1)", spec)
		}
		for i := 0; i < count; i++ {
			name := fmt.Sprintf("local-%02d", i)
			w := fleet.NewWorker(name, 0)
			// Loopback workers get their own metric set (so federation shows
			// distinct node series) but share the driver's tracer — their
			// match spans land in the same flight recorder the -obs endpoint
			// serves, exactly as remote worker spans do after grafting.
			w.SetObs(perf.NewMetrics(), tracer)
			if err := coord.AddNode(name, fleet.NewLocalNode(w, 0)); err != nil {
				coord.Close()
				return nil, err
			}
		}
		return coord, nil
	}
	added := 0
	for _, addr := range strings.Split(spec, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		if err := coord.AddNode(addr, fleet.Dial(addr)); err != nil {
			coord.Close()
			return nil, err
		}
		added++
	}
	if added == 0 {
		coord.Close()
		return nil, fmt.Errorf("empty fleet spec %q (want local:N or addr,addr,...)", spec)
	}
	return coord, nil
}

// fleetCmd is the fleet differential driver: it builds the same cohort once
// single-process and once sharded across the fleet, and fails unless the
// two GFA serializations are byte-identical.
func fleetCmd(args []string) error {
	fs := newFlagSet("fleet")
	pf := addPopFlags(fs, 20_000, 6)
	nodes := fs.String("nodes", "", "comma-separated fleet-worker daemon addresses")
	local := fs.Int("local", 0, "spin up N in-process loopback workers instead of -nodes")
	cacheMB := fs.Int("cache-mb", 32, "per-worker shard cache budget pushed with the catalog (MiB)")
	linger := fs.Duration("linger", 0, "keep the process (and -obs endpoint) alive this long after the build, for scraping")
	of := addObsFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec := *nodes
	if *local > 0 {
		if spec != "" {
			return fmt.Errorf("fleet: -nodes and -local are mutually exclusive")
		}
		spec = fmt.Sprintf("local:%d", *local)
	}
	if spec == "" {
		return fmt.Errorf("fleet: need -nodes or -local")
	}

	pop, err := pf.simulate()
	if err != nil {
		return err
	}
	names, seqs := pop.AssemblyView()
	metrics := perf.NewMetrics()
	tracer := obs.NewTracer(obs.TracerConfig{Metrics: metrics})
	coord, err := fleetFromSpec(spec, *cacheMB<<20, metrics, tracer)
	if err != nil {
		return err
	}
	defer coord.Close()
	if err := coord.RegisterAssemblies(names, seqs); err != nil {
		return err
	}
	stopObs, err := of.start(obs.ServerConfig{
		Metrics:        metrics.Snapshot,
		Recorder:       tracer.Recorder(),
		Fleet:          coord.NodeInfos,
		FederatedNodes: coord.FederatedNodes,
	})
	if err != nil {
		return err
	}
	defer stopObs()

	infos := coord.NodeInfos()
	fmt.Printf("fleet: %d assemblies (%d bp ref) over %d node(s):\n", len(names), *pf.refLen, len(infos))
	for _, info := range infos {
		state := "live"
		if !info.Live {
			state = "DEAD"
		}
		fmt.Printf("  %-16s %-4s range %s", info.Name, state, info.Range)
		if info.Addr != "" {
			fmt.Printf("  @ %s", info.Addr)
		}
		fmt.Println()
	}

	cfg := build.DefaultPGGBConfig()
	ctx := context.Background()

	t0 := time.Now()
	direct, err := build.PGGB(ctx, names, seqs, cfg, nil)
	if err != nil {
		return fmt.Errorf("single-process build: %w", err)
	}
	singleWall := time.Since(t0)

	// The fleet build runs under one root span: dispatch spans become its
	// children and every remote worker's span tree is grafted in, so the
	// -obs /traces endpoint shows a single cross-process tree for the build.
	bs := tracer.StartRoot("fleet.build")
	bs.SetInt("assemblies", int64(len(names)))
	bctx := obs.ContextWithSpan(ctx, bs)
	t1 := time.Now()
	blocks, stats, hits, err := coord.AllPairMatches(bctx, names, cfg.K, cfg.W)
	if err != nil {
		bs.Error(err)
		bs.End()
		return fmt.Errorf("fleet pair matching: %w", err)
	}
	fleetRes, err := build.PGGBFromMatches(bctx, names, seqs, blocks, stats, cfg, nil)
	if err != nil {
		bs.Error(err)
		bs.End()
		return fmt.Errorf("fleet graph induction: %w", err)
	}
	bs.End()
	fleetWall := time.Since(t1)

	var want, got bytes.Buffer
	if err := gfa.Write(&want, direct.Graph); err != nil {
		return err
	}
	if err := gfa.Write(&got, fleetRes.Graph); err != nil {
		return err
	}
	pairs := len(names) * (len(names) - 1) / 2
	fmt.Printf("\nsingle-process build: %v; fleet build: %v (%d pair tasks, %d shard-cache hits)\n",
		singleWall.Round(time.Millisecond), fleetWall.Round(time.Millisecond), pairs, hits)
	snap := metrics.Snapshot()
	fmt.Printf("fleet counters: tasks=%d reassigned=%d remote_hits=%d remote_misses=%d pushes=%d deaths=%d\n",
		snap.Counters["fleet.tasks"], snap.Counters["fleet.reassigned"],
		snap.Counters["fleet.remote_hits"], snap.Counters["fleet.remote_misses"],
		snap.Counters["fleet.push"], snap.Counters["fleet.deaths"])
	fmt.Printf("fleet build trace: %s\n", bs.TraceID())
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		return fmt.Errorf("fleet GFA differs from single-process GFA (%d vs %d bytes) — determinism contract broken",
			got.Len(), want.Len())
	}
	fmt.Printf("fleet GFA is byte-identical to the single-process build (%d bytes)\n", want.Len())
	if *linger > 0 {
		fmt.Printf("lingering %v for scrapes\n", *linger)
		time.Sleep(*linger)
	}
	return nil
}

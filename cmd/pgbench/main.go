// Command pgbench runs the PangenomicsBench-Go experiment harness: every
// table and figure of the paper has a driver that regenerates it on the
// synthetic datasets (see DESIGN.md for the experiment index).
//
// Usage:
//
//	pgbench list
//	pgbench run [-scale small|bench|large] <experiment>...
//	pgbench all [-scale small|bench|large]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pangenomicsbench/internal/core"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pgbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing command")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "list":
		fmt.Println("experiments:")
		for _, id := range core.Experiments() {
			fmt.Println("  " + id)
		}
		return nil
	case "run", "all":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		scaleName := fs.String("scale", "bench", "dataset scale: small, bench, or large")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		scale, err := parseScale(*scaleName)
		if err != nil {
			return err
		}
		ids := fs.Args()
		if cmd == "all" {
			ids = core.Experiments()
		}
		if len(ids) == 0 {
			return fmt.Errorf("no experiments named (try: pgbench list)")
		}
		fmt.Printf("building %s-scale suite...\n", *scaleName)
		t0 := time.Now()
		suite, err := core.NewSuite(scale)
		if err != nil {
			return err
		}
		fmt.Printf("suite ready in %v (%d graph nodes, %d short reads, %d long reads)\n\n",
			time.Since(t0).Round(time.Millisecond),
			suite.Pop.Graph.NumNodes(), len(suite.ShortReads), len(suite.LongReads))
		for _, id := range ids {
			t0 := time.Now()
			tbl, err := suite.Run(id)
			if err != nil {
				return fmt.Errorf("experiment %s: %w", id, err)
			}
			fmt.Print(tbl.Render())
			fmt.Printf("(%s in %v)\n\n", id, time.Since(t0).Round(time.Millisecond))
		}
		return nil
	case "gen":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		scaleName := fs.String("scale", "bench", "dataset scale: small, bench, or large")
		dir := fs.String("out", "datasets", "output directory")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		scale, err := parseScale(*scaleName)
		if err != nil {
			return err
		}
		suite, err := core.NewSuite(scale)
		if err != nil {
			return err
		}
		files, err := suite.ExportDatasets(*dir)
		if err != nil {
			return err
		}
		for _, f := range files {
			fmt.Printf("wrote %s/%s\n", *dir, f)
		}
		return nil
	case "help", "-h", "--help":
		usage()
		return nil
	}
	usage()
	return fmt.Errorf("unknown command %q", cmd)
}

func parseScale(s string) (core.Scale, error) {
	switch s {
	case "small":
		return core.Small, nil
	case "bench":
		return core.Bench, nil
	case "large":
		return core.Large, nil
	}
	return 0, fmt.Errorf("unknown scale %q (want small, bench, or large)", s)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  pgbench list                                 list experiment IDs
  pgbench run [-scale S] <experiment>...       run named experiments
  pgbench all [-scale S]                       run every experiment
  pgbench gen [-scale S] [-out DIR]            export datasets (FASTA/FASTQ/GFA)
scales: small (quick check), bench (default), large`)
}

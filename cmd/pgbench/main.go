// Command pgbench runs the PangenomicsBench-Go experiment harness: every
// table and figure of the paper has a driver that regenerates it on the
// synthetic datasets (see DESIGN.md for the experiment index).
//
// Usage:
//
//	pgbench list
//	pgbench run [-scale small|bench|large] [-threads N] [-scenario S] <experiment>...
//	pgbench all [-scale small|bench|large] [-threads N] [-scenario S]
//	pgbench serve-sim [flags]
//	pgbench map-serve [flags]
//	pgbench soak [-scenario S] [-dur D] [-chaos LIST] [flags]
//	pgbench bench [-scale small|bench|large] [-json FILE] [-compare BASE.json]
//	pgbench fleet-worker [-listen ADDR]
//	pgbench fleet [-nodes ADDRS | -local N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"pangenomicsbench/internal/build"
	"pangenomicsbench/internal/core"
	"pangenomicsbench/internal/fleet"
	"pangenomicsbench/internal/gensim"
	"pangenomicsbench/internal/obs"
	"pangenomicsbench/internal/perf"
	"pangenomicsbench/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pgbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing command")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "list":
		fmt.Println("experiments:")
		for _, id := range core.Experiments() {
			fmt.Println("  " + id)
		}
		fmt.Println("\nscenarios (run/all/map-serve/soak -scenario):")
		for _, sc := range gensim.Scenarios() {
			fmt.Println("  " + sc.Describe())
		}
		return nil
	case "run", "all":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		scaleName := fs.String("scale", "bench", "dataset scale: small, bench, or large")
		threads := fs.Int("threads", 0, "worker threads for parallel stages (0 = all cores); results are identical for any value")
		scenarioName := addScenarioFlag(fs, "baseline")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if *threads > 0 {
			// The parallel stages (all-vs-all matching, MC chunk mapping)
			// size their pools from GOMAXPROCS, so this bounds all of them.
			runtime.GOMAXPROCS(*threads)
		}
		scale, err := parseScale(*scaleName)
		if err != nil {
			return err
		}
		ids := fs.Args()
		if cmd == "all" {
			ids = core.Experiments()
		}
		if len(ids) == 0 {
			return fmt.Errorf("no experiments named (try: pgbench list)")
		}
		sc, err := gensim.LookupScenario(*scenarioName)
		if err != nil {
			return err
		}
		fmt.Printf("building %s-scale suite (scenario %s)...\n", *scaleName, sc.Name)
		t0 := time.Now()
		suite, err := core.NewScenarioSuite(scale, sc)
		if err != nil {
			return err
		}
		fmt.Printf("suite ready in %v (%d graph nodes, %d short reads, %d long reads)\n\n",
			time.Since(t0).Round(time.Millisecond),
			suite.Pop.Graph.NumNodes(), len(suite.ShortReads), len(suite.LongReads))
		for _, id := range ids {
			t0 := time.Now()
			tbl, err := suite.Run(id)
			if err != nil {
				return fmt.Errorf("experiment %s: %w", id, err)
			}
			fmt.Print(tbl.Render())
			fmt.Printf("(%s in %v)\n\n", id, time.Since(t0).Round(time.Millisecond))
		}
		return nil
	case "gen":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		scaleName := fs.String("scale", "bench", "dataset scale: small, bench, or large")
		dir := fs.String("out", "datasets", "output directory")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		scale, err := parseScale(*scaleName)
		if err != nil {
			return err
		}
		suite, err := core.NewSuite(scale)
		if err != nil {
			return err
		}
		files, err := suite.ExportDatasets(*dir)
		if err != nil {
			return err
		}
		for _, f := range files {
			fmt.Printf("wrote %s/%s\n", *dir, f)
		}
		return nil
	case "serve-sim":
		return serveSim(rest)
	case "map-serve":
		return mapServe(rest)
	case "soak":
		return soakCmd(rest)
	case "bench":
		return benchCmd(rest)
	case "fleet":
		return fleetCmd(rest)
	case "fleet-worker":
		return fleetWorkerCmd(rest)
	case "help", "-h", "--help":
		usage()
		return nil
	}
	usage()
	return fmt.Errorf("unknown command %q", cmd)
}

func parseScale(s string) (core.Scale, error) {
	switch s {
	case "small":
		return core.Small, nil
	case "bench":
		return core.Bench, nil
	case "large":
		return core.Large, nil
	}
	return 0, fmt.Errorf("unknown scale %q (want small, bench, or large)", s)
}

// serveSim replays a synthetic multi-tenant build-request trace against the
// serve-mode construction service and reports throughput and cache reuse.
func serveSim(args []string) error {
	fs := newFlagSet("serve-sim")
	pf := addPopFlags(fs, 20_000, 10)
	tenants := fs.Int("tenants", 4, "simulated tenants")
	requests := fs.Int("requests", 24, "requests in the trace")
	cohortMin := fs.Int("cohort-min", 3, "minimum cohort size")
	cohortMax := fs.Int("cohort-max", 5, "maximum cohort size")
	conc := fs.Int("conc", 4, "concurrent clients replaying the trace")
	workers := fs.Int("workers", 0, "build worker slots (0 = GOMAXPROCS)")
	cacheMB := fs.Int("cache-mb", 64, "pair-match cache capacity (MiB)")
	timeout := fs.Duration("timeout", 0, "per-request timeout (0 = none)")
	toolName := fs.String("tool", "pggb", "construction tool: pggb or mc")
	storePath := fs.String("store", "", "journal directory: accepted builds are WAL-logged and crash-interrupted ones replayed on restart")
	profileSlow := fs.Duration("profile-slow", 0, "capture a CPU profile of builds slower than this into -store (0 = off; requires -store)")
	fleetSpec := fs.String("fleet-nodes", "", "route pair matching through a construction fleet: local:N or comma-separated fleet-worker addresses")
	scenarioName := addScenarioFlag(fs, "baseline")
	of := addObsFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tool := serve.Tool(*toolName)
	if tool != serve.ToolPGGB && tool != serve.ToolMC {
		return fmt.Errorf("unknown tool %q (want pggb or mc)", *toolName)
	}
	sc, err := gensim.LookupScenario(*scenarioName)
	if err != nil {
		return err
	}

	pop, err := pf.simulateWith(sc)
	if err != nil {
		return err
	}
	names, seqs := pop.AssemblyView()
	trace, err := pop.Trace(sc.TraceConfig(gensim.TraceConfig{
		Tenants:   *tenants,
		Requests:  *requests,
		CohortMin: *cohortMin,
		CohortMax: *cohortMax,
		Drift:     0.25,
		Seed:      *pf.seed,
	}))
	if err != nil {
		return err
	}

	metrics := perf.NewMetrics()
	tracer := obs.NewTracer(obs.TracerConfig{Metrics: metrics})
	var journal *serve.Journal
	if *storePath != "" {
		if err := os.MkdirAll(*storePath, 0o755); err != nil {
			return err
		}
		journal, err = serve.OpenJournal(filepath.Join(*storePath, "serve.wal"), metrics)
		if err != nil {
			return err
		}
		defer journal.Close()
	}
	var coord *fleet.Coordinator
	if *fleetSpec != "" {
		if coord, err = fleetFromSpec(*fleetSpec, *cacheMB<<20, metrics, tracer); err != nil {
			return err
		}
		defer coord.Close()
	}
	var profiler *obs.Profiler
	if *profileSlow > 0 {
		if *storePath == "" {
			return fmt.Errorf("-profile-slow needs -store to hold the captured profiles")
		}
		profiler = &obs.Profiler{Dir: *storePath, Threshold: *profileSlow}
		fmt.Printf("profiling builds slower than %v into %s (cpu-<trace_id>.pprof)\n", *profileSlow, *storePath)
	}
	svc := serve.New(serve.Config{
		Workers:        *workers,
		CacheCapacity:  *cacheMB << 20,
		DefaultTimeout: *timeout,
		Metrics:        metrics,
		Tracer:         tracer,
		Journal:        journal,
		Fleet:          coord,
		Profiler:       profiler,
	})
	if err := svc.RegisterAssemblies(names, seqs); err != nil {
		return err
	}
	if journal != nil {
		if n, err := svc.Recover(context.Background()); err != nil {
			return err
		} else if n > 0 {
			fmt.Printf("journal replay: re-ran %d crash-interrupted build request(s)\n", n)
		}
	}
	obsCfg := obs.ServerConfig{
		Metrics:  metrics.Snapshot,
		Recorder: tracer.Recorder(),
	}
	if coord != nil {
		obsCfg.Fleet = coord.NodeInfos
		obsCfg.FederatedNodes = coord.FederatedNodes
	}
	stopObs, err := of.start(obsCfg)
	if err != nil {
		return err
	}
	defer stopObs()

	pcfg := build.DefaultPGGBConfig()
	mcfg := build.DefaultMCConfig()
	fmt.Printf("serve-sim: %d assemblies (%d bp ref), %d tenants, %d requests, %d clients, tool=%s\n",
		len(names), *pf.refLen, *tenants, len(trace), *conc, tool)
	if coord != nil {
		fmt.Printf("pair matching sharded over a %d-node fleet (%s)\n", len(coord.NodeInfos()), *fleetSpec)
	}
	fmt.Println()

	// Replay: conc clients drain the trace in issue order.
	var next int
	var mu sync.Mutex
	var failures int
	var wg sync.WaitGroup
	t0 := time.Now()
	for c := 0; c < *conc; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(trace) {
					return
				}
				req := serve.Request{Tool: tool, Cohort: trace[i].Cohort, PGGB: pcfg, MC: mcfg}
				if _, err := svc.Build(context.Background(), req); err != nil {
					mu.Lock()
					failures++
					mu.Unlock()
					fmt.Fprintf(os.Stderr, "request %d (tenant %d): %v\n", i, trace[i].Tenant, err)
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(t0)

	hits, misses, evictions := svc.CacheCounters()
	entries, bytes := svc.CacheResident()
	fmt.Printf("replayed %d requests in %v (%.1f req/s), %d failed\n",
		len(trace), wall.Round(time.Millisecond),
		float64(len(trace))/wall.Seconds(), failures)
	if hits+misses > 0 {
		fmt.Printf("pair cache: %d hits / %d misses (%.0f%% hit rate), %d evictions, %d entries (%d B) resident\n",
			hits, misses, 100*float64(hits)/float64(hits+misses), evictions, entries, bytes)
	}
	fmt.Println("\nservice metrics:")
	fmt.Print(metrics.Snapshot().Render())
	printSlowest(tracer, 3)
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  pgbench list                                 list experiment IDs and scenarios
  pgbench run [-scale S] [-threads N] <experiment>...  run named experiments
  pgbench all [-scale S] [-threads N]          run every experiment
                                               (-threads bounds the parallel
                                               stages; output is identical
                                               for any value; -scenario reshapes
                                               the workload adversarially)
  pgbench gen [-scale S] [-out DIR]            export datasets (FASTA/FASTQ/GFA)
  pgbench serve-sim [flags]                    replay a multi-tenant build trace
                                               against the serve-mode service
  pgbench map-serve [flags]                    replay a read-query trace against
                                               the batched mapping service with a
                                               mid-trace snapshot hot-swap
                                               (-store DIR persists snapshots and
                                               enables -restart-at warm restarts)
  pgbench soak [flags]                         replay a scenario against the full
                                               build-then-serve stack for -dur,
                                               injecting -chaos events (swap, shed,
                                               restart, build-reject); exits
                                               non-zero if any end-of-run
                                               assertion fails
  pgbench bench [-scale S] [-json FILE]        micro-benchmark the mapping,
                                               construction and snapshot
                                               save/load hot paths to JSON
                                               (-compare BASE.json gates against
                                               a recorded baseline; -manifest
                                               names a tolerance manifest)
  pgbench fleet-worker [-listen ADDR]          run one construction-fleet worker
                                               daemon (pair-match RPCs over HTTP)
  pgbench fleet [-nodes ADDRS | -local N]      shard an all-pair build across
                                               fleet workers and verify the GFA
                                               is byte-identical to the
                                               single-process build
scales: small (quick check), bench (default), large`)
}

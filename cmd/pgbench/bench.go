package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"pangenomicsbench/internal/align"
	"pangenomicsbench/internal/build"
	"pangenomicsbench/internal/core"
	"pangenomicsbench/internal/gensim"
	"pangenomicsbench/internal/mapserve"
	"pangenomicsbench/internal/pipeline"
	"pangenomicsbench/internal/store"
)

// benchResult is one benchmark line of the JSON report.
type benchResult struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
}

// benchReport is the machine-readable pgbench bench output (BENCH_6.json).
type benchReport struct {
	Suite      string        `json:"suite"`
	Scale      string        `json:"scale"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Results    []benchResult `json:"benchmarks"`
}

// toResult converts a testing.BenchmarkResult; SetBytes-driven throughput is
// reported when the benchmark declared a byte volume.
func toResult(name string, r testing.BenchmarkResult) benchResult {
	out := benchResult{
		Name:        name,
		N:           r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if r.Bytes > 0 && r.T > 0 {
		out.MBPerS = float64(r.Bytes) * float64(r.N) / r.T.Seconds() / 1e6
	}
	return out
}

// benchMap times one pass of tool over reads (per-op = the whole read set,
// throughput = mapped bases/s).
func benchMap(tool pipeline.Tool, reads []gensim.Read) testing.BenchmarkResult {
	bases := 0
	for _, r := range reads {
		bases += len(r.Seq)
	}
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(bases))
		for i := 0; i < b.N; i++ {
			for _, r := range reads {
				tool.Map(r.Seq, nil)
			}
		}
	})
}

// benchMapBatch times the batched mapping path: one MapBatch pass over the
// corpus per op through the lane-packed kernels, with caller-owned output
// slices reused across ops — the zero-steady-state-allocation serving
// configuration.
func benchMapBatch(tool pipeline.ContextTool, reads []gensim.Read) testing.BenchmarkResult {
	bases := 0
	rs := make([][]byte, len(reads))
	for i, r := range reads {
		rs[i] = r.Seq
		bases += len(r.Seq)
	}
	results := make([]pipeline.Result, len(rs))
	stages := make([]pipeline.StageTimes, len(rs))
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(bases))
		for i := 0; i < b.N; i++ {
			if _, err := tool.MapBatch(context.Background(), rs, results, stages, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchTolerance bounds how far one benchmark may drift from its recorded
// baseline before the gate fails. Factors are multiplicative: ns/op may
// grow to baseline × MaxNsFactor. The generous default ns factor absorbs
// shared-CI host noise; allocs/op is near-deterministic, so its factor is
// tight.
type benchTolerance struct {
	MaxNsFactor     float64 `json:"max_ns_factor"`
	MaxAllocsFactor float64 `json:"max_allocs_factor"`
}

// benchManifest is the tolerance manifest (bench_tolerance.json): defaults
// for every benchmark, plus per-name overrides for known-noisy entries —
// the bent-style suite/override split.
type benchManifest struct {
	Defaults  benchTolerance            `json:"defaults"`
	Overrides map[string]benchTolerance `json:"overrides"`
}

func (m *benchManifest) forName(name string) benchTolerance {
	tol := m.Defaults
	if o, ok := m.Overrides[name]; ok {
		if o.MaxNsFactor > 0 {
			tol.MaxNsFactor = o.MaxNsFactor
		}
		if o.MaxAllocsFactor > 0 {
			tol.MaxAllocsFactor = o.MaxAllocsFactor
		}
	}
	return tol
}

// defaultBenchManifest is the gate used when no -manifest is given.
func defaultBenchManifest() benchManifest {
	return benchManifest{Defaults: benchTolerance{MaxNsFactor: 5, MaxAllocsFactor: 1.15}}
}

// compareBench gates current results against a recorded baseline report:
// each baseline benchmark must still exist and stay within its tolerance on
// ns/op and allocs/op. New benchmarks absent from the baseline pass with a
// note. Returns an error listing every regression.
func compareBench(baseline benchReport, results []benchResult, man benchManifest) error {
	current := make(map[string]benchResult, len(results))
	for _, r := range results {
		current[r.Name] = r
	}
	var regressions []string
	for _, base := range baseline.Results {
		cur, ok := current[base.Name]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: missing from current run", base.Name))
			continue
		}
		tol := man.forName(base.Name)
		status := "ok"
		if base.NsPerOp > 0 && cur.NsPerOp > base.NsPerOp*tol.MaxNsFactor {
			status = "REGRESSED"
			regressions = append(regressions, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (limit %.1f×)",
				base.Name, cur.NsPerOp, base.NsPerOp, tol.MaxNsFactor))
		}
		// Tiny alloc counts get two free allocs of absolute slack so a
		// 1.15× factor on "3 allocs" does not trip on a single extra.
		allocLimit := float64(base.AllocsPerOp) * tol.MaxAllocsFactor
		if slack := float64(base.AllocsPerOp + 2); slack > allocLimit {
			allocLimit = slack
		}
		if float64(cur.AllocsPerOp) > allocLimit {
			status = "REGRESSED"
			regressions = append(regressions, fmt.Sprintf("%s: %d allocs/op vs baseline %d (limit %.1f×)",
				base.Name, cur.AllocsPerOp, base.AllocsPerOp, tol.MaxAllocsFactor))
		}
		fmt.Fprintf(os.Stderr, "  gate %-22s %12.0f → %12.0f ns/op  %6d → %6d allocs/op  %s\n",
			base.Name, base.NsPerOp, cur.NsPerOp, base.AllocsPerOp, cur.AllocsPerOp, status)
	}
	for _, r := range results {
		found := false
		for _, base := range baseline.Results {
			if base.Name == r.Name {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "  gate %-22s new benchmark (no baseline)\n", r.Name)
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("bench gate: %d regression(s):\n  %s", len(regressions), joinLines(regressions))
	}
	return nil
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}

// benchCmd runs the serving-relevant hot paths under testing.Benchmark and
// writes a JSON report: per-tool mapping cost, construction cost, and
// snapshot save/load throughput of the persistence layer. With -compare it
// additionally gates the fresh numbers against a recorded baseline report.
func benchCmd(args []string) error {
	fs := newFlagSet("bench")
	scaleName := fs.String("scale", "small", "dataset scale: small, bench, or large")
	jsonPath := fs.String("json", "BENCH_6.json", "JSON report path ('-' = stdout)")
	nReads := fs.Int("reads", 96, "reads per mapping-benchmark op")
	comparePath := fs.String("compare", "", "baseline BENCH_*.json to gate against (fails on ns/op or allocs/op regressions)")
	manifestPath := fs.String("manifest", "", "tolerance manifest JSON (default: 5x ns/op, 1.15x allocs/op for every benchmark)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	scale, err := parseScale(*scaleName)
	if err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "bench: building %s-scale suite...\n", *scaleName)
	suite, err := core.NewSuite(scale)
	if err != nil {
		return err
	}
	short, long := suite.ShortReads, suite.LongReads
	if len(short) > *nReads {
		short = short[:*nReads]
	}
	if len(long) > *nReads {
		long = long[:*nReads]
	}
	g, k, w := suite.Pop.Graph, suite.Cfg.K, suite.Cfg.W

	var results []benchResult
	record := func(name string, r testing.BenchmarkResult) {
		res := toResult(name, r)
		results = append(results, res)
		line := fmt.Sprintf("  %-22s %14.0f ns/op %10d allocs/op", res.Name, res.NsPerOp, res.AllocsPerOp)
		if res.MBPerS > 0 {
			line += fmt.Sprintf(" %10.1f MB/s", res.MBPerS)
		}
		fmt.Fprintln(os.Stderr, line)
	}

	// Mapping hot paths: the four query-tier tools, one corpus pass per op.
	giraffe, err := pipeline.NewVgGiraffe(g, k, w)
	if err != nil {
		return err
	}
	record("map/giraffe", benchMap(giraffe, short))
	vgmap, err := pipeline.NewVgMap(g, k, w)
	if err != nil {
		return err
	}
	record("map/vgmap", benchMap(vgmap, short))
	ga, err := pipeline.NewGraphAligner(g, k, w)
	if err != nil {
		return err
	}
	record("map/graphaligner", benchMap(ga, long))
	mg, err := pipeline.NewMinigraph(g, k, w, false)
	if err != nil {
		return err
	}
	record("map/minigraph-lr", benchMap(mg, long))

	// Batched mapping hot paths: the same corpora through MapBatch — the
	// lane-packed, reused-scratch serving configuration.
	record("mapbatch/giraffe", benchMapBatch(giraffe, short))
	record("mapbatch/vgmap", benchMapBatch(vgmap, short))
	record("mapbatch/graphaligner", benchMapBatch(ga, long))
	record("mapbatch/minigraph-lr", benchMapBatch(mg, long))

	// Raw batched kernels: a full lane group per op, grow-only arenas, zero
	// steady-state allocations.
	var mlg align.MyersLaneGroup
	record("kernel/myers-batch", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mlg.Reset()
			for l := 0; l < align.MaxLanes; l++ {
				ref := short[l%len(short)].Seq
				if len(ref) > 240 {
					ref = ref[:240]
				}
				query := short[(l+3)%len(short)].Seq
				if len(query) > align.MaxMyersQuery {
					query = query[:align.MaxMyersQuery]
				}
				if _, err := mlg.Add(ref, query); err != nil {
					b.Fatal(err)
				}
			}
			mlg.Run(nil)
		}
	}))
	wfaA := make([][]byte, align.MaxLanes)
	wfaB := make([][]byte, align.MaxLanes)
	for l := range wfaA {
		s := short[l%len(short)].Seq
		if len(s) > 160 {
			s = s[:160]
		}
		a := append([]byte(nil), s...)
		bb := append([]byte(nil), s...)
		for j := 5; j < len(bb); j += 37 { // sparse edits keep the WFA band narrow
			bb[j] = "ACGT"[(j+l)%4]
		}
		wfaA[l], wfaB[l] = a, bb
	}
	var wlg align.WFALaneGroup
	record("kernel/wfa-batch", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			wlg.Reset()
			for l := 0; l < align.MaxLanes; l++ {
				wlg.Add(wfaA[l], wfaB[l])
			}
			wlg.Run(nil)
		}
	}))

	// Construction hot paths (what a cold start pays and a warm start skips).
	names, seqs := suite.Pop.AssemblyView()
	pcfg := build.DefaultPGGBConfig()
	pcfg.LayoutIterations = 2
	record("construct/pggb", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := build.PGGB(context.Background(), names, seqs, pcfg, nil); err != nil {
				b.Fatal(err)
			}
		}
	}))
	mcfg := build.DefaultMCConfig()
	mcfg.LayoutIterations = 2
	record("construct/mc", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := build.MinigraphCactus(context.Background(), names, seqs, mcfg, nil); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Persistence hot paths: snapshot encode, durable publish (fsync
	// included), and full load+rehydrate — the warm-restart boot cost.
	data := &store.SnapshotData{
		ID: "bench", Tool: string(mapserve.ToolGiraffe), K: k, W: w,
		Graph: g, Index: giraffe.GraphIndex(), Haplotypes: giraffe.Haplotypes(),
	}
	image, err := data.Encode()
	if err != nil {
		return err
	}
	record("store/encode", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(image)))
		for i := 0; i < b.N; i++ {
			if _, err := data.Encode(); err != nil {
				b.Fatal(err)
			}
		}
	}))

	tmp, err := os.MkdirTemp("", "pgbench-store-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	dir, err := store.Open(tmp, store.Options{Retain: 2})
	if err != nil {
		return err
	}
	record("store/save", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(image)))
		for i := 0; i < b.N; i++ {
			if _, err := dir.Publish(image); err != nil {
				b.Fatal(err)
			}
		}
	}))
	record("store/load", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(image)))
		for i := 0; i < b.N; i++ {
			_, secs, err := dir.LoadCurrent()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := mapserve.SnapshotFromStore(secs); err != nil {
				b.Fatal(err)
			}
		}
	}))

	rep := benchReport{
		Suite:      "PangenomicsBench-Go",
		Scale:      *scaleName,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Results:    results,
	}
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if *jsonPath == "-" {
		if _, err = os.Stdout.Write(raw); err != nil {
			return err
		}
	} else {
		if err := os.WriteFile(*jsonPath, raw, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d benchmarks, %s scale)\n", *jsonPath, len(results), *scaleName)
	}

	if *comparePath == "" {
		return nil
	}
	baseRaw, err := os.ReadFile(*comparePath)
	if err != nil {
		return fmt.Errorf("bench gate: %w", err)
	}
	var baseline benchReport
	if err := json.Unmarshal(baseRaw, &baseline); err != nil {
		return fmt.Errorf("bench gate: baseline %s does not parse: %w", *comparePath, err)
	}
	man := defaultBenchManifest()
	if *manifestPath != "" {
		manRaw, err := os.ReadFile(*manifestPath)
		if err != nil {
			return fmt.Errorf("bench gate: %w", err)
		}
		if err := json.Unmarshal(manRaw, &man); err != nil {
			return fmt.Errorf("bench gate: manifest %s does not parse: %w", *manifestPath, err)
		}
		if man.Defaults.MaxNsFactor <= 0 || man.Defaults.MaxAllocsFactor <= 0 {
			return fmt.Errorf("bench gate: manifest %s needs positive defaults.max_ns_factor and defaults.max_allocs_factor", *manifestPath)
		}
	}
	fmt.Fprintf(os.Stderr, "bench: gating against %s (%d baseline benchmarks)\n", *comparePath, len(baseline.Results))
	if err := compareBench(baseline, results, man); err != nil {
		return err
	}
	fmt.Println("bench gate: no regressions against", *comparePath)
	return nil
}

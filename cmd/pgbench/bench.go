package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"pangenomicsbench/internal/build"
	"pangenomicsbench/internal/core"
	"pangenomicsbench/internal/gensim"
	"pangenomicsbench/internal/mapserve"
	"pangenomicsbench/internal/pipeline"
	"pangenomicsbench/internal/store"
)

// benchResult is one benchmark line of the JSON report.
type benchResult struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
}

// benchReport is the machine-readable pgbench bench output (BENCH_6.json).
type benchReport struct {
	Suite      string        `json:"suite"`
	Scale      string        `json:"scale"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Results    []benchResult `json:"benchmarks"`
}

// toResult converts a testing.BenchmarkResult; SetBytes-driven throughput is
// reported when the benchmark declared a byte volume.
func toResult(name string, r testing.BenchmarkResult) benchResult {
	out := benchResult{
		Name:        name,
		N:           r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if r.Bytes > 0 && r.T > 0 {
		out.MBPerS = float64(r.Bytes) * float64(r.N) / r.T.Seconds() / 1e6
	}
	return out
}

// benchMap times one pass of tool over reads (per-op = the whole read set,
// throughput = mapped bases/s).
func benchMap(tool pipeline.Tool, reads []gensim.Read) testing.BenchmarkResult {
	bases := 0
	for _, r := range reads {
		bases += len(r.Seq)
	}
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(bases))
		for i := 0; i < b.N; i++ {
			for _, r := range reads {
				tool.Map(r.Seq, nil)
			}
		}
	})
}

// benchCmd runs the serving-relevant hot paths under testing.Benchmark and
// writes a JSON report: per-tool mapping cost, construction cost, and
// snapshot save/load throughput of the persistence layer.
func benchCmd(args []string) error {
	fs := newFlagSet("bench")
	scaleName := fs.String("scale", "small", "dataset scale: small, bench, or large")
	jsonPath := fs.String("json", "BENCH_6.json", "JSON report path ('-' = stdout)")
	nReads := fs.Int("reads", 96, "reads per mapping-benchmark op")
	if err := fs.Parse(args); err != nil {
		return err
	}
	scale, err := parseScale(*scaleName)
	if err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "bench: building %s-scale suite...\n", *scaleName)
	suite, err := core.NewSuite(scale)
	if err != nil {
		return err
	}
	short, long := suite.ShortReads, suite.LongReads
	if len(short) > *nReads {
		short = short[:*nReads]
	}
	if len(long) > *nReads {
		long = long[:*nReads]
	}
	g, k, w := suite.Pop.Graph, suite.Cfg.K, suite.Cfg.W

	var results []benchResult
	record := func(name string, r testing.BenchmarkResult) {
		res := toResult(name, r)
		results = append(results, res)
		line := fmt.Sprintf("  %-22s %14.0f ns/op %10d allocs/op", res.Name, res.NsPerOp, res.AllocsPerOp)
		if res.MBPerS > 0 {
			line += fmt.Sprintf(" %10.1f MB/s", res.MBPerS)
		}
		fmt.Fprintln(os.Stderr, line)
	}

	// Mapping hot paths: the four query-tier tools, one corpus pass per op.
	giraffe, err := pipeline.NewVgGiraffe(g, k, w)
	if err != nil {
		return err
	}
	record("map/giraffe", benchMap(giraffe, short))
	vgmap, err := pipeline.NewVgMap(g, k, w)
	if err != nil {
		return err
	}
	record("map/vgmap", benchMap(vgmap, short))
	ga, err := pipeline.NewGraphAligner(g, k, w)
	if err != nil {
		return err
	}
	record("map/graphaligner", benchMap(ga, long))
	mg, err := pipeline.NewMinigraph(g, k, w, false)
	if err != nil {
		return err
	}
	record("map/minigraph-lr", benchMap(mg, long))

	// Construction hot paths (what a cold start pays and a warm start skips).
	names, seqs := suite.Pop.AssemblyView()
	pcfg := build.DefaultPGGBConfig()
	pcfg.LayoutIterations = 2
	record("construct/pggb", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := build.PGGB(context.Background(), names, seqs, pcfg, nil); err != nil {
				b.Fatal(err)
			}
		}
	}))
	mcfg := build.DefaultMCConfig()
	mcfg.LayoutIterations = 2
	record("construct/mc", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := build.MinigraphCactus(context.Background(), names, seqs, mcfg, nil); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Persistence hot paths: snapshot encode, durable publish (fsync
	// included), and full load+rehydrate — the warm-restart boot cost.
	data := &store.SnapshotData{
		ID: "bench", Tool: string(mapserve.ToolGiraffe), K: k, W: w,
		Graph: g, Index: giraffe.GraphIndex(), Haplotypes: giraffe.Haplotypes(),
	}
	image, err := data.Encode()
	if err != nil {
		return err
	}
	record("store/encode", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(image)))
		for i := 0; i < b.N; i++ {
			if _, err := data.Encode(); err != nil {
				b.Fatal(err)
			}
		}
	}))

	tmp, err := os.MkdirTemp("", "pgbench-store-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	dir, err := store.Open(tmp, store.Options{Retain: 2})
	if err != nil {
		return err
	}
	record("store/save", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(image)))
		for i := 0; i < b.N; i++ {
			if _, err := dir.Publish(image); err != nil {
				b.Fatal(err)
			}
		}
	}))
	record("store/load", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(image)))
		for i := 0; i < b.N; i++ {
			_, secs, err := dir.LoadCurrent()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := mapserve.SnapshotFromStore(secs); err != nil {
				b.Fatal(err)
			}
		}
	}))

	rep := benchReport{
		Suite:      "PangenomicsBench-Go",
		Scale:      *scaleName,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Results:    results,
	}
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if *jsonPath == "-" {
		_, err = os.Stdout.Write(raw)
		return err
	}
	if err := os.WriteFile(*jsonPath, raw, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d benchmarks, %s scale)\n", *jsonPath, len(results), *scaleName)
	return nil
}

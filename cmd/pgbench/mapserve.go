package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pangenomicsbench/internal/build"
	"pangenomicsbench/internal/gensim"
	"pangenomicsbench/internal/mapserve"
	"pangenomicsbench/internal/obs"
	"pangenomicsbench/internal/perf"
	"pangenomicsbench/internal/serve"
	"pangenomicsbench/internal/store"
)

// mapServe replays a deterministic read-query trace against the batched
// map-serve query service: the serve-mode construction service builds the
// cohort graph, publishes it as a mapserve snapshot, and — mid-trace — an
// equivalent rebuild hot-swaps in while clients keep querying. Reports
// throughput, exact tail latency, the batch-size distribution, shed rates,
// and verifies that repeated (byte-identical) reads mapped identically
// across the swap.
func mapServe(args []string) error {
	fs := newFlagSet("map-serve")
	pf := addPopFlags(fs, 20_000, 5)
	queries := fs.Int("queries", 512, "queries in the trace")
	clients := fs.Int("clients", 8, "concurrent query clients")
	readLen := fs.Int("read-len", 150, "query read length (bp)")
	repeat := fs.Float64("repeat", 0.2, "fraction of queries re-issuing an earlier read byte-for-byte")
	workers := fs.Int("workers", 0, "mapping worker slots (0 = GOMAXPROCS)")
	maxBatch := fs.Int("batch", 32, "micro-batch size cap")
	batchWait := fs.Duration("batch-wait", 2*time.Millisecond, "micro-batch max wait")
	queueDepth := fs.Int("queue", 1024, "admission queue depth")
	timeout := fs.Duration("timeout", 0, "per-query deadline (0 = none)")
	toolName := fs.String("tool", "giraffe", "mapping tool: giraffe, vgmap, graphaligner or minigraph-lr")
	swapAt := fs.Int("swap-at", -2, "query index triggering the mid-trace rebuild+hot-swap (-2 = midpoint, -1 = never)")
	storePath := fs.String("store", "", "snapshot store directory: persist generations, WAL-journal builds, warm-start from the last published generation")
	restartAt := fs.Int("restart-at", -1, "query index at which the query tier is killed and warm-restarted from -store (-1 = never)")
	scenarioName := addScenarioFlag(fs, "baseline")
	of := addObsFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sc, err := gensim.LookupScenario(*scenarioName)
	if err != nil {
		return err
	}
	toolCfg := mapserve.DefaultToolConfig(mapserve.ToolKind(*toolName))
	switch toolCfg.Kind {
	case mapserve.ToolGiraffe, mapserve.ToolVgMap, mapserve.ToolGraphAligner, mapserve.ToolMinigraphLR:
	default:
		return fmt.Errorf("unknown tool %q (want giraffe, vgmap, graphaligner or minigraph-lr)", *toolName)
	}
	if *swapAt == -2 {
		*swapAt = *queries / 2
	}
	if *restartAt >= 0 && *storePath == "" {
		return fmt.Errorf("-restart-at needs -store: a warm restart reloads the last persisted generation")
	}

	pop, err := pf.simulateWith(sc)
	if err != nil {
		return err
	}
	trace, err := pop.ReadQueryTrace(sc.ReadTraceConfig(gensim.ReadTraceConfig{
		Queries:    *queries,
		Clients:    *clients,
		ReadLen:    *readLen,
		SubRate:    0.002,
		IndelRate:  0.0001,
		RepeatRate: *repeat,
		Seed:       *pf.seed,
	}))
	if err != nil {
		return err
	}
	// The scenario reshaper may raise the client count (skewed-tenant floors
	// it at 8); every client ID in the trace needs a replaying goroutine.
	nclients := *clients
	for _, q := range trace {
		if q.Client+1 > nclients {
			nclients = q.Client + 1
		}
	}

	// Build-then-serve handoff: the serve-mode construction service builds
	// the full-catalog cohort; its OnResult hook publishes each finished
	// graph into the query registry as a fresh snapshot generation — and,
	// with -store, persists it as a store generation too. reg and svc sit
	// behind stMu so a -restart-at warm restart can swap both mid-trace.
	metrics := perf.NewMetrics()
	tracer := obs.NewTracer(obs.TracerConfig{Metrics: metrics})
	var stMu sync.RWMutex
	reg := &mapserve.Registry{}
	var svc *mapserve.Service
	curReg := func() *mapserve.Registry { stMu.RLock(); defer stMu.RUnlock(); return reg }

	var sdir *store.Dir
	var journal *serve.Journal
	var persister *mapserve.Persister
	if *storePath != "" {
		var err error
		if sdir, err = store.Open(*storePath, store.Options{}); err != nil {
			return err
		}
		persister = mapserve.NewPersister(sdir, metrics)
		if journal, err = serve.OpenJournal(filepath.Join(*storePath, "serve.wal"), metrics); err != nil {
			return err
		}
		defer journal.Close()
	}

	names, seqs := pop.AssemblyView()
	var snapSeq uint64
	var publishErr error
	var publishMu sync.Mutex
	builder := serve.New(serve.Config{
		CacheCapacity: 64 << 20,
		Metrics:       metrics,
		Tracer:        tracer,
		Journal:       journal,
		OnResult: func(req serve.Request, res *build.Result) {
			n := atomic.AddUint64(&snapSeq, 1)
			snap, err := mapserve.SnapshotFromBuild(fmt.Sprintf("cohort-%d", n), res, toolCfg)
			if err == nil {
				_, err = curReg().Publish(snap)
			}
			if err == nil && persister != nil {
				_, _, err = persister.Save(snap)
			}
			if err != nil {
				publishMu.Lock()
				publishErr = err
				publishMu.Unlock()
			}
		},
	})
	if err := builder.RegisterAssemblies(names, seqs); err != nil {
		return err
	}
	cohort := serve.Request{Tool: serve.ToolPGGB, Cohort: names, PGGB: build.DefaultPGGBConfig(), MC: build.DefaultMCConfig()}

	fmt.Printf("map-serve: %d assemblies (%d bp ref), scenario=%s, tool=%s, %d queries, %d clients, batch≤%d/%v, queue=%d\n",
		len(names), *pf.refLen, sc.Name, toolCfg.Kind, len(trace), nclients, *maxBatch, *batchWait, *queueDepth)

	// Boot: warm-start from the store's last published generation when one
	// exists (construction skipped entirely), cold-build otherwise. Either
	// way, crash-interrupted journal requests are then replayed.
	t0 := time.Now()
	warm := false
	if sdir != nil {
		snap, storeGen, err := reg.LoadLatest(sdir, metrics)
		switch {
		case err == nil:
			warm = true
			fmt.Printf("warm start: loaded snapshot %q from store generation %d in %v — construction skipped\n",
				snap.ID, storeGen, time.Since(t0).Round(time.Millisecond))
		case errors.Is(err, store.ErrEmpty):
			// First boot against this store: fall through to the cold build.
		default:
			return fmt.Errorf("warm start from %s: %w", *storePath, err)
		}
	}
	if !warm {
		if _, err := builder.Build(context.Background(), cohort); err != nil {
			return fmt.Errorf("initial cohort build: %w", err)
		}
		fmt.Printf("cohort built and published as generation %d in %v\n", reg.Generation(), time.Since(t0).Round(time.Millisecond))
	}
	if journal != nil {
		if n, err := builder.Recover(context.Background()); err != nil {
			return err
		} else if n > 0 {
			fmt.Printf("journal replay: re-ran %d crash-interrupted build request(s)\n", n)
		}
	}
	publishMu.Lock()
	perr := publishErr
	publishMu.Unlock()
	if perr != nil {
		return fmt.Errorf("snapshot publish: %w", perr)
	}
	fmt.Println()

	mapCfg := mapserve.Config{
		Workers:    *workers,
		MaxBatch:   *maxBatch,
		BatchWait:  *batchWait,
		QueueDepth: *queueDepth,
		Metrics:    metrics,
		Tracer:     tracer,
	}
	svc = mapserve.New(reg, mapCfg)
	defer func() { stMu.RLock(); s := svc; stMu.RUnlock(); s.Close() }()
	stopObs, err := of.start(obs.ServerConfig{
		Metrics:   metrics.Snapshot,
		Recorder:  tracer.Recorder(),
		Snapshots: func() []obs.SnapshotInfo { return curReg().Stats() },
	})
	if err != nil {
		return err
	}
	defer stopObs()

	// Warm restart: kill the query tier mid-trace and boot a replacement
	// registry+service from the store — no construction runs. Clients hold
	// stMu.RLock across each Map, so the swap waits out in-flight queries
	// and no query ever fails from the restart itself.
	restart := func(at int64) {
		stMu.Lock()
		defer stMu.Unlock()
		rt0 := time.Now()
		svc.Close()
		fresh := &mapserve.Registry{}
		_, storeGen, err := fresh.LoadLatest(sdir, metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "warm restart at query %d failed (%v); keeping the old registry\n", at, err)
			svc = mapserve.New(reg, mapCfg)
			return
		}
		reg = fresh
		svc = mapserve.New(reg, mapCfg)
		fmt.Printf("warm restart at query %d: killed the query tier, reloaded store generation %d in %v (no rebuild)\n",
			at, storeGen, time.Since(rt0).Round(time.Millisecond))
	}

	// Replay: each trace client drains its own query stream in issue order;
	// crossing the swap index triggers an equivalent cohort rebuild whose
	// publication hot-swaps mid-traffic.
	type outcome struct {
		resp *mapserve.Response
		err  error
		gen  uint64
	}
	results := make([]outcome, len(trace))
	latencies := make([]time.Duration, 0, len(trace))
	var latMu sync.Mutex
	var issued int64
	var swapWG sync.WaitGroup
	var wg sync.WaitGroup
	replayStart := time.Now()
	for c := 0; c < nclients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i, q := range trace {
				if q.Client != c {
					continue
				}
				n := atomic.AddInt64(&issued, 1)
				if *swapAt >= 0 && n == int64(*swapAt) {
					swapWG.Add(1)
					go func() {
						defer swapWG.Done()
						if _, err := builder.Build(context.Background(), cohort); err != nil {
							fmt.Fprintf(os.Stderr, "mid-trace rebuild: %v\n", err)
						}
					}()
				}
				if *restartAt >= 0 && n == int64(*restartAt) {
					restart(n)
				}
				ctx := context.Background()
				cancel := context.CancelFunc(func() {})
				if *timeout > 0 {
					ctx, cancel = context.WithTimeout(ctx, *timeout)
				}
				t0 := time.Now()
				stMu.RLock()
				resp, err := svc.Map(ctx, q.Read.Seq)
				stMu.RUnlock()
				lat := time.Since(t0)
				cancel()
				results[i] = outcome{resp: resp, err: err}
				if resp != nil {
					results[i].gen = resp.Generation
				}
				latMu.Lock()
				latencies = append(latencies, lat)
				latMu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	swapWG.Wait()
	wall := time.Since(replayStart)

	// Repeat queries pin the hot-swap determinism contract: a re-issued read
	// must map identically even when the two executions straddled a swap.
	repeats, mismatches, crossGen := 0, 0, 0
	var failures int
	for i, q := range trace {
		if results[i].err != nil {
			failures++
			continue
		}
		if q.Repeat < 0 || results[q.Repeat].err != nil {
			continue
		}
		repeats++
		if results[i].gen != results[q.Repeat].gen {
			crossGen++
		}
		if results[i].resp.Result != results[q.Repeat].resp.Result {
			mismatches++
			fmt.Fprintf(os.Stderr, "query %d (repeat of %d): %+v != %+v\n",
				i, q.Repeat, results[i].resp.Result, results[q.Repeat].resp.Result)
		}
	}

	fmt.Printf("replayed %d queries in %v (%.0f q/s), %d failed/shed\n",
		len(trace), wall.Round(time.Millisecond), float64(len(trace)-failures)/wall.Seconds(), failures)
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if n := len(latencies); n > 0 {
		fmt.Printf("latency: p50=%v p90=%v p99=%v max=%v\n",
			latencies[n/2].Round(time.Microsecond),
			latencies[n*90/100].Round(time.Microsecond),
			latencies[n*99/100].Round(time.Microsecond),
			latencies[n-1].Round(time.Microsecond))
	}
	fmt.Printf("snapshot generations published: %d (current gen %d)\n", atomic.LoadUint64(&snapSeq), reg.Generation())
	fmt.Printf("repeat queries: %d verified, %d spanned a hot-swap, %d mismatched\n", repeats, crossGen, mismatches)

	snap := metrics.Snapshot()
	if bs, ok := snap.Values["mapserve.batch_size"]; ok {
		fmt.Printf("batch size: mean=%.1f max=%.0f over %d batches\n", bs.Mean(), bs.Max, bs.Count)
	}
	shed := snap.Counters["mapserve.shed_queue"] + snap.Counters["mapserve.shed_deadline"]
	fmt.Printf("shed: %d queue, %d deadline (%.1f%% of trace)\n",
		snap.Counters["mapserve.shed_queue"], snap.Counters["mapserve.shed_deadline"],
		100*float64(shed)/float64(len(trace)))
	fmt.Println("\nservice metrics:")
	fmt.Print(snap.Render())
	printSlowest(tracer, 3)
	if mismatches > 0 {
		return fmt.Errorf("%d repeated reads changed mapping across snapshots", mismatches)
	}
	return nil
}

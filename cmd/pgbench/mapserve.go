package main

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pangenomicsbench/internal/build"
	"pangenomicsbench/internal/gensim"
	"pangenomicsbench/internal/mapserve"
	"pangenomicsbench/internal/obs"
	"pangenomicsbench/internal/perf"
	"pangenomicsbench/internal/serve"
)

// mapServe replays a deterministic read-query trace against the batched
// map-serve query service: the serve-mode construction service builds the
// cohort graph, publishes it as a mapserve snapshot, and — mid-trace — an
// equivalent rebuild hot-swaps in while clients keep querying. Reports
// throughput, exact tail latency, the batch-size distribution, shed rates,
// and verifies that repeated (byte-identical) reads mapped identically
// across the swap.
func mapServe(args []string) error {
	fs := newFlagSet("map-serve")
	pf := addPopFlags(fs, 20_000, 5)
	queries := fs.Int("queries", 512, "queries in the trace")
	clients := fs.Int("clients", 8, "concurrent query clients")
	readLen := fs.Int("read-len", 150, "query read length (bp)")
	repeat := fs.Float64("repeat", 0.2, "fraction of queries re-issuing an earlier read byte-for-byte")
	workers := fs.Int("workers", 0, "mapping worker slots (0 = GOMAXPROCS)")
	maxBatch := fs.Int("batch", 32, "micro-batch size cap")
	batchWait := fs.Duration("batch-wait", 2*time.Millisecond, "micro-batch max wait")
	queueDepth := fs.Int("queue", 1024, "admission queue depth")
	timeout := fs.Duration("timeout", 0, "per-query deadline (0 = none)")
	toolName := fs.String("tool", "giraffe", "mapping tool: giraffe, vgmap, graphaligner or minigraph-lr")
	swapAt := fs.Int("swap-at", -2, "query index triggering the mid-trace rebuild+hot-swap (-2 = midpoint, -1 = never)")
	of := addObsFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	toolCfg := mapserve.DefaultToolConfig(mapserve.ToolKind(*toolName))
	switch toolCfg.Kind {
	case mapserve.ToolGiraffe, mapserve.ToolVgMap, mapserve.ToolGraphAligner, mapserve.ToolMinigraphLR:
	default:
		return fmt.Errorf("unknown tool %q (want giraffe, vgmap, graphaligner or minigraph-lr)", *toolName)
	}
	if *swapAt == -2 {
		*swapAt = *queries / 2
	}

	pop, err := pf.simulate()
	if err != nil {
		return err
	}
	trace, err := pop.ReadQueryTrace(gensim.ReadTraceConfig{
		Queries:    *queries,
		Clients:    *clients,
		ReadLen:    *readLen,
		SubRate:    0.002,
		IndelRate:  0.0001,
		RepeatRate: *repeat,
		Seed:       *pf.seed,
	})
	if err != nil {
		return err
	}

	// Build-then-serve handoff: the serve-mode construction service builds
	// the full-catalog cohort; its OnResult hook publishes each finished
	// graph into the query registry as a fresh snapshot generation.
	metrics := perf.NewMetrics()
	tracer := obs.NewTracer(obs.TracerConfig{Metrics: metrics})
	reg := &mapserve.Registry{}
	names, seqs := pop.AssemblyView()
	var snapSeq uint64
	var publishErr error
	var publishMu sync.Mutex
	builder := serve.New(serve.Config{
		CacheCapacity: 64 << 20,
		Metrics:       metrics,
		Tracer:        tracer,
		OnResult: func(req serve.Request, res *build.Result) {
			n := atomic.AddUint64(&snapSeq, 1)
			snap, err := mapserve.SnapshotFromBuild(fmt.Sprintf("cohort-%d", n), res, toolCfg)
			if err == nil {
				_, err = reg.Publish(snap)
			}
			if err != nil {
				publishMu.Lock()
				publishErr = err
				publishMu.Unlock()
			}
		},
	})
	if err := builder.RegisterAssemblies(names, seqs); err != nil {
		return err
	}
	cohort := serve.Request{Tool: serve.ToolPGGB, Cohort: names, PGGB: build.DefaultPGGBConfig(), MC: build.DefaultMCConfig()}

	fmt.Printf("map-serve: %d assemblies (%d bp ref), tool=%s, %d queries, %d clients, batch≤%d/%v, queue=%d\n",
		len(names), *pf.refLen, toolCfg.Kind, len(trace), *clients, *maxBatch, *batchWait, *queueDepth)
	t0 := time.Now()
	if _, err := builder.Build(context.Background(), cohort); err != nil {
		return fmt.Errorf("initial cohort build: %w", err)
	}
	publishMu.Lock()
	perr := publishErr
	publishMu.Unlock()
	if perr != nil {
		return fmt.Errorf("initial snapshot publish: %w", perr)
	}
	fmt.Printf("cohort built and published as generation %d in %v\n\n", reg.Generation(), time.Since(t0).Round(time.Millisecond))

	svc := mapserve.New(reg, mapserve.Config{
		Workers:    *workers,
		MaxBatch:   *maxBatch,
		BatchWait:  *batchWait,
		QueueDepth: *queueDepth,
		Metrics:    metrics,
		Tracer:     tracer,
	})
	defer svc.Close()
	stopObs, err := of.start(obs.ServerConfig{
		Metrics:   metrics.Snapshot,
		Recorder:  tracer.Recorder(),
		Snapshots: reg.Stats,
	})
	if err != nil {
		return err
	}
	defer stopObs()

	// Replay: each trace client drains its own query stream in issue order;
	// crossing the swap index triggers an equivalent cohort rebuild whose
	// publication hot-swaps mid-traffic.
	type outcome struct {
		resp *mapserve.Response
		err  error
		gen  uint64
	}
	results := make([]outcome, len(trace))
	latencies := make([]time.Duration, 0, len(trace))
	var latMu sync.Mutex
	var issued int64
	var swapWG sync.WaitGroup
	var wg sync.WaitGroup
	replayStart := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i, q := range trace {
				if q.Client != c {
					continue
				}
				if *swapAt >= 0 && atomic.AddInt64(&issued, 1) == int64(*swapAt) {
					swapWG.Add(1)
					go func() {
						defer swapWG.Done()
						if _, err := builder.Build(context.Background(), cohort); err != nil {
							fmt.Fprintf(os.Stderr, "mid-trace rebuild: %v\n", err)
						}
					}()
				}
				ctx := context.Background()
				cancel := context.CancelFunc(func() {})
				if *timeout > 0 {
					ctx, cancel = context.WithTimeout(ctx, *timeout)
				}
				t0 := time.Now()
				resp, err := svc.Map(ctx, q.Read.Seq)
				lat := time.Since(t0)
				cancel()
				results[i] = outcome{resp: resp, err: err}
				if resp != nil {
					results[i].gen = resp.Generation
				}
				latMu.Lock()
				latencies = append(latencies, lat)
				latMu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	swapWG.Wait()
	wall := time.Since(replayStart)

	// Repeat queries pin the hot-swap determinism contract: a re-issued read
	// must map identically even when the two executions straddled a swap.
	repeats, mismatches, crossGen := 0, 0, 0
	var failures int
	for i, q := range trace {
		if results[i].err != nil {
			failures++
			continue
		}
		if q.Repeat < 0 || results[q.Repeat].err != nil {
			continue
		}
		repeats++
		if results[i].gen != results[q.Repeat].gen {
			crossGen++
		}
		if results[i].resp.Result != results[q.Repeat].resp.Result {
			mismatches++
			fmt.Fprintf(os.Stderr, "query %d (repeat of %d): %+v != %+v\n",
				i, q.Repeat, results[i].resp.Result, results[q.Repeat].resp.Result)
		}
	}

	fmt.Printf("replayed %d queries in %v (%.0f q/s), %d failed/shed\n",
		len(trace), wall.Round(time.Millisecond), float64(len(trace)-failures)/wall.Seconds(), failures)
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if n := len(latencies); n > 0 {
		fmt.Printf("latency: p50=%v p90=%v p99=%v max=%v\n",
			latencies[n/2].Round(time.Microsecond),
			latencies[n*90/100].Round(time.Microsecond),
			latencies[n*99/100].Round(time.Microsecond),
			latencies[n-1].Round(time.Microsecond))
	}
	fmt.Printf("snapshot generations published: %d (current gen %d)\n", atomic.LoadUint64(&snapSeq), reg.Generation())
	fmt.Printf("repeat queries: %d verified, %d spanned a hot-swap, %d mismatched\n", repeats, crossGen, mismatches)

	snap := metrics.Snapshot()
	if bs, ok := snap.Values["mapserve.batch_size"]; ok {
		fmt.Printf("batch size: mean=%.1f max=%.0f over %d batches\n", bs.Mean(), bs.Max, bs.Count)
	}
	shed := snap.Counters["mapserve.shed_queue"] + snap.Counters["mapserve.shed_deadline"]
	fmt.Printf("shed: %d queue, %d deadline (%.1f%% of trace)\n",
		snap.Counters["mapserve.shed_queue"], snap.Counters["mapserve.shed_deadline"],
		100*float64(shed)/float64(len(trace)))
	fmt.Println("\nservice metrics:")
	fmt.Print(snap.Render())
	printSlowest(tracer, 3)
	if mismatches > 0 {
		return fmt.Errorf("%d repeated reads changed mapping across snapshots", mismatches)
	}
	return nil
}

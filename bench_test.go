// Package bench is the benchmark harness of PangenomicsBench-Go: one
// testing.B benchmark per paper table and figure (see DESIGN.md §3 for the
// experiment index). Run with:
//
//	go test -bench=. -benchmem
//
// Kernel benches (BenchmarkKernel_*) time one full pass over the captured
// kernel corpus — the Table 4 measurement. Experiment benches
// (BenchmarkTable*/BenchmarkFig*) time the full experiment drivers.
package bench

import (
	"context"
	"sync"
	"testing"

	"pangenomicsbench/internal/align"
	"pangenomicsbench/internal/bio"
	"pangenomicsbench/internal/build"
	"pangenomicsbench/internal/core"
	"pangenomicsbench/internal/fmindex"
	"pangenomicsbench/internal/gensim"
	"pangenomicsbench/internal/layout"
	"pangenomicsbench/internal/perf"
	"pangenomicsbench/internal/pipeline"
	"pangenomicsbench/internal/seqmap"
	"pangenomicsbench/internal/simt"
	"pangenomicsbench/internal/wfagpu"
)

var (
	suiteOnce sync.Once
	suite     *core.Suite
	suiteErr  error
)

func getSuite(b *testing.B) *core.Suite {
	suiteOnce.Do(func() {
		suite, suiteErr = core.NewSuite(core.Small)
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suite
}

func kernelBench(b *testing.B, name string) {
	s := getSuite(b)
	ks, err := s.Kernels()
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range ks {
		if k.Name != name {
			continue
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := k.Run(nil); err != nil {
				b.Fatal(err)
			}
		}
		return
	}
	b.Fatalf("kernel %s not found", name)
}

// Table 4: kernel execution times.
func BenchmarkKernel_GSSW(b *testing.B)   { kernelBench(b, "GSSW") }
func BenchmarkKernel_GBWT(b *testing.B)   { kernelBench(b, "GBWT") }
func BenchmarkKernel_GBV(b *testing.B)    { kernelBench(b, "GBV") }
func BenchmarkKernel_GWFAlr(b *testing.B) { kernelBench(b, "GWFA-lr") }
func BenchmarkKernel_GWFAcr(b *testing.B) { kernelBench(b, "GWFA-cr") }
func BenchmarkKernel_TC(b *testing.B)     { kernelBench(b, "TC") }
func BenchmarkKernel_PGSGD(b *testing.B)  { kernelBench(b, "PGSGD") }

// Table 1 / Fig. 2: end-to-end tool mapping (per-read cost of each tool).
func benchTool(b *testing.B, mk func(s *core.Suite) (pipeline.Tool, []gensim.Read, error)) {
	s := getSuite(b)
	tool, reads, err := mk(s)
	if err != nil {
		b.Fatal(err)
	}
	bases := 0
	for _, r := range reads {
		bases += len(r.Seq)
	}
	b.SetBytes(int64(bases))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range reads {
			tool.Map(r.Seq, nil)
		}
	}
}

func BenchmarkTable1_VgMap(b *testing.B) {
	benchTool(b, func(s *core.Suite) (pipeline.Tool, []gensim.Read, error) {
		t, err := pipeline.NewVgMap(s.Pop.Graph, s.Cfg.K, s.Cfg.W)
		return t, s.ShortReads, err
	})
}

func BenchmarkTable1_VgGiraffe(b *testing.B) {
	benchTool(b, func(s *core.Suite) (pipeline.Tool, []gensim.Read, error) {
		t, err := pipeline.NewVgGiraffe(s.Pop.Graph, s.Cfg.K, s.Cfg.W)
		return t, s.ShortReads, err
	})
}

func BenchmarkTable1_GraphAligner(b *testing.B) {
	benchTool(b, func(s *core.Suite) (pipeline.Tool, []gensim.Read, error) {
		t, err := pipeline.NewGraphAligner(s.Pop.Graph, s.Cfg.K, s.Cfg.W)
		return t, s.LongReads, err
	})
}

func BenchmarkTable1_MinigraphLR(b *testing.B) {
	benchTool(b, func(s *core.Suite) (pipeline.Tool, []gensim.Read, error) {
		t, err := pipeline.NewMinigraph(s.Pop.Graph, s.Cfg.K, s.Cfg.W, false)
		return t, s.LongReads, err
	})
}

func BenchmarkTable1_BWAMEM2Baseline(b *testing.B) {
	s := getSuite(b)
	m, err := seqmap.NewMapper(s.Pop.Ref, s.Cfg.K, s.Cfg.W)
	if err != nil {
		b.Fatal(err)
	}
	bases := 0
	for _, r := range s.ShortReads {
		bases += len(r.Seq)
	}
	b.SetBytes(int64(bases))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range s.ShortReads {
			m.Map(r.Seq, nil, nil)
		}
	}
}

// Fig. 2 (stage breakdown driver).
func BenchmarkFig2_Breakdown(b *testing.B) {
	s := getSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig2(); err != nil {
			b.Fatal(err)
		}
	}
}

// Fig. 3: graph construction pipelines.
func BenchmarkFig3_PGGB(b *testing.B) {
	s := getSuite(b)
	names, seqs := s.Pop.AssemblyView()
	cfg := build.DefaultPGGBConfig()
	cfg.LayoutIterations = 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := build.PGGB(context.Background(), names, seqs, cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3_MinigraphCactus(b *testing.B) {
	s := getSuite(b)
	names, seqs := s.Pop.AssemblyView()
	cfg := build.DefaultMCConfig()
	cfg.LayoutIterations = 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := build.MinigraphCactus(context.Background(), names, seqs, cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// Serial-pool MC run: compare against the default (Workers = GOMAXPROCS)
// bench above to see the parallel chunk-mapping win; output is identical.
func BenchmarkFig3_MinigraphCactusSerial(b *testing.B) {
	s := getSuite(b)
	names, seqs := s.Pop.AssemblyView()
	cfg := build.DefaultMCConfig()
	cfg.LayoutIterations = 2
	cfg.Workers = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := build.MinigraphCactus(context.Background(), names, seqs, cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// Fig. 5: thread-scaling makespan simulation.
func BenchmarkFig5_ScalingSim(b *testing.B) {
	s := getSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig5(); err != nil {
			b.Fatal(err)
		}
	}
}

// Fig. 6 / Table 6 / Fig. 7 / Fig. 8: profiled kernel characterization.
func BenchmarkFig6_ProfiledGSSW(b *testing.B) {
	s := getSuite(b)
	inputs, err := s.GSSWInputs()
	if err != nil {
		b.Fatal(err)
	}
	sc := bio.DefaultScoring
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		probe := perf.NewProbe()
		for _, in := range inputs {
			if _, err := align.GSSW(in.Sub, in.Query, sc, probe); err != nil {
				b.Fatal(err)
			}
		}
		if perf.Analyze(probe).IPC <= 0 {
			b.Fatal("no IPC")
		}
	}
}

func BenchmarkFig7_CacheSim(b *testing.B) {
	s := getSuite(b)
	inputs, err := s.GBVInputs()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		probe := perf.NewProbe()
		for _, in := range inputs {
			if _, err := align.GBV(in.Sub, in.Query, probe); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig8_InstructionMix(b *testing.B) {
	s := getSuite(b)
	queries, err := s.GBWTInputs()
	if err != nil {
		b.Fatal(err)
	}
	ks, err := s.Kernels()
	if err != nil {
		b.Fatal(err)
	}
	_ = queries
	var gbwtKernel core.Kernel
	for _, k := range ks {
		if k.Name == "GBWT" {
			gbwtKernel = k
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		probe := perf.NewProbe()
		if err := gbwtKernel.Run(probe); err != nil {
			b.Fatal(err)
		}
		if len(probe.Mix()) == 0 {
			b.Fatal("no mix")
		}
	}
}

// Fig. 9 / Table 7: GPU simulation.
func BenchmarkFig9_TSUShort(b *testing.B) {
	s := getSuite(b)
	pairs := s.TSUPairs(32, 128)
	dev := simt.A6000()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wfagpu.Align(dev, pairs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9_TSULong(b *testing.B) {
	s := getSuite(b)
	pairs := s.TSUPairs(4, 10000)
	dev := simt.A6000()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wfagpu.Align(dev, pairs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9_CPUWFA(b *testing.B) {
	s := getSuite(b)
	pairs := s.TSUPairs(32, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pairs {
			align.WFAEdit(p.A, p.B, nil)
		}
	}
}

func BenchmarkTable7_PGSGDGPU(b *testing.B) {
	s := getSuite(b)
	l, err := layout.New(s.Pop.Graph, 7)
	if err != nil {
		b.Fatal(err)
	}
	dev := simt.A6000()
	params := layout.DefaultGPUParams(20000)
	params.Iterations = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.RunGPU(dev, params); err != nil {
			b.Fatal(err)
		}
	}
}

// Fig. 10: SSW vs GSSW on the same reads.
func BenchmarkFig10_SSW(b *testing.B) {
	s := getSuite(b)
	refs, qrys, err := s.SSWInputs()
	if err != nil {
		b.Fatal(err)
	}
	sc := bio.DefaultScoring
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range refs {
			align.StripedSW(refs[j], qrys[j], sc, nil)
		}
	}
}

func BenchmarkFig10_GSSW(b *testing.B) { kernelBench(b, "GSSW") }

// Extension: the §6.1 optimization ablation — full GSSW vs GSSWLean on the
// same corpus.
func BenchmarkOptGSSW_Full(b *testing.B) { kernelBench(b, "GSSW") }

func BenchmarkOptGSSW_Lean(b *testing.B) {
	s := getSuite(b)
	inputs, err := s.GSSWInputs()
	if err != nil {
		b.Fatal(err)
	}
	sc := bio.DefaultScoring
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, in := range inputs {
			if _, err := align.GSSWLean(in.Sub, in.Query, sc, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Extension: index contrast — FM-index count vs GBWT find on matched loads.
func BenchmarkExt_FMIndexCount(b *testing.B) {
	s := getSuite(b)
	idx, err := fmindex.New(s.Pop.Ref)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range s.ShortReads {
			idx.Count(r.Seq[:24], nil)
		}
	}
}

func BenchmarkExt_GBWTFind(b *testing.B) { kernelBench(b, "GBWT") }

// Extension: affine-gap WFA (the WFA2-lib algorithm).
func BenchmarkExt_WFAAffine(b *testing.B) {
	s := getSuite(b)
	pairs := s.TSUPairs(16, 1000)
	pen := bio.Scoring{Match: 0, Mismatch: 4, GapOpen: 6, GapExtend: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pairs {
			align.WFAAffine(p.A, p.B, pen, nil)
		}
	}
}

// Extension: blocked Myers over full-length long reads.
func BenchmarkExt_MyersLong(b *testing.B) {
	s := getSuite(b)
	ref := s.Pop.Ref
	query := s.LongReads[0].Seq
	b.SetBytes(int64(len(ref)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		align.MyersLong(ref, query, nil)
	}
}

// Fig. 11: GSSW on the split graph.
func BenchmarkFig11_SplitGraphGSSW(b *testing.B) {
	s := getSuite(b)
	split := s.SplitGraph(8)
	tool, err := pipeline.NewVgMap(split, s.Cfg.K, s.Cfg.W)
	if err != nil {
		b.Fatal(err)
	}
	var inputs []pipeline.GSSWInput
	tool.Capture = &inputs
	for _, r := range s.ShortReads {
		tool.Map(r.Seq, nil)
	}
	sc := bio.DefaultScoring
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, in := range inputs {
			if _, err := align.GSSW(in.Sub, in.Query, sc, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
}

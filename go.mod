module pangenomicsbench

go 1.22

// Gpuwfa: sweep pairwise alignment lengths comparing the CPU wavefront
// algorithm against TSU on the SIMT GPU simulator — the Fig. 9 experiment
// as a standalone program, including the divergence statistic that explains
// the long-read slowdown.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"pangenomicsbench/internal/align"
	"pangenomicsbench/internal/gensim"
	"pangenomicsbench/internal/perf"
	"pangenomicsbench/internal/simt"
	"pangenomicsbench/internal/wfagpu"
)

func main() {
	dev := simt.A6000()
	fmt.Printf("device: %s (%d SMs, %.0f GB/s)\n\n", dev.Name, dev.SMs, dev.MemBWGBs)
	fmt.Printf("%8s %12s %12s %9s %12s %10s\n",
		"length", "CPU WFA", "TSU (sim)", "speedup", "single-lane", "warp util")

	rng := rand.New(rand.NewSource(7))
	for _, L := range []int{128, 512, 1000, 2000, 5000, 10000} {
		count := 400_000 / L // constant-volume batches
		if count < 4 {
			count = 4
		}
		pairs := make([]wfagpu.Pair, count)
		for i := range pairs {
			a := gensim.RandomGenome(rng, L)
			pairs[i] = wfagpu.Pair{A: a, B: mutate(rng, a, 0.01)}
		}

		// CPU side: modeled cycles at Machine B's 2.9 GHz, so the
		// comparison reflects the paper's hardware rather than this host.
		probe := perf.NewProbe()
		for _, p := range pairs {
			align.WFAEdit(p.A, p.B, probe)
		}
		cpu := time.Duration(perf.Analyze(probe).Cycles / (2.9 * 1e9) * float64(time.Second))

		st, err := wfagpu.Align(dev, pairs)
		if err != nil {
			log.Fatal(err)
		}
		gpu := time.Duration(st.Metrics.TimeMS * float64(time.Millisecond))
		fmt.Printf("%8d %12s %12s %8.2fx %11.1f%% %9.1f%%\n",
			L, cpu.Round(time.Microsecond), gpu.Round(time.Microsecond),
			cpu.Seconds()/gpu.Seconds(), 100*st.SingleLaneFrac, 100*st.Metrics.WarpUtilization)
	}
	fmt.Println("\npaper shape: GPU wins at short lengths, loses at 10 kbp as Extend")
	fmt.Println("divergence grows (74% of diagonals use a single lane at 10 kbp).")
}

func mutate(rng *rand.Rand, seq []byte, rate float64) []byte {
	var out []byte
	for _, b := range seq {
		r := rng.Float64()
		switch {
		case r < rate/3:
			out = append(out, "ACGT"[rng.Intn(4)])
		case r < 2*rate/3:
		case r < rate:
			out = append(out, b, "ACGT"[rng.Intn(4)])
		default:
			out = append(out, b)
		}
	}
	return out
}

// Mapserve: the build-then-serve handoff end to end. The serve-mode
// construction service builds a cohort graph and its OnResult hook publishes
// the finished graph into a mapserve snapshot registry; the batched query
// service maps reads against the current snapshot; a cohort rebuild then
// hot-swaps a new generation in while queries keep flowing — in-flight
// queries finish on the old snapshot, new ones land on the new, and
// identical reads map identically on both.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"pangenomicsbench/internal/build"
	"pangenomicsbench/internal/gensim"
	"pangenomicsbench/internal/mapserve"
	"pangenomicsbench/internal/perf"
	"pangenomicsbench/internal/serve"
)

func main() {
	// A small simulated assembly catalog.
	cfg := gensim.DefaultConfig()
	cfg.RefLen = 12_000
	cfg.Haplotypes = 4
	pop, err := gensim.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	names, seqs := pop.AssemblyView()

	// Construction side: the serve-mode builder publishes every finished
	// cohort graph into the query registry as a new snapshot generation.
	reg := &mapserve.Registry{OnRetire: func(s *mapserve.Snapshot) {
		fmt.Printf("  [registry] generation %d retired (last query released it)\n", s.Generation)
	}}
	toolCfg := mapserve.DefaultToolConfig(mapserve.ToolGiraffe)
	var snapN int
	var mu sync.Mutex
	builder := serve.New(serve.Config{
		CacheCapacity: 32 << 20,
		OnResult: func(req serve.Request, res *build.Result) {
			mu.Lock()
			snapN++
			id := fmt.Sprintf("cohort-%d", snapN)
			mu.Unlock()
			snap, err := mapserve.SnapshotFromBuild(id, res, toolCfg)
			if err != nil {
				log.Fatal(err)
			}
			gen, err := reg.Publish(snap)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  [registry] published %s as generation %d (%d graph nodes)\n",
				id, gen, res.Graph.NumNodes())
		},
	})
	if err := builder.RegisterAssemblies(names, seqs); err != nil {
		log.Fatal(err)
	}
	cohort := serve.Request{
		Tool: serve.ToolPGGB, Cohort: names,
		PGGB: build.DefaultPGGBConfig(), MC: build.DefaultMCConfig(),
	}

	fmt.Println("building initial cohort graph...")
	if _, err := builder.Build(context.Background(), cohort); err != nil {
		log.Fatal(err)
	}

	// Query side: the batched executor over the registry.
	metrics := perf.NewMetrics()
	svc := mapserve.New(reg, mapserve.Config{
		Workers: 4, MaxBatch: 8, BatchWait: time.Millisecond, Metrics: metrics,
	})
	defer svc.Close()

	reads, err := pop.SimulateReads(gensim.ReadConfig{Count: 32, Length: 150, SubRate: 0.002, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	mapAll := func(label string) []mapserve.Response {
		out := make([]mapserve.Response, len(reads))
		var wg sync.WaitGroup
		t0 := time.Now()
		for i := range reads {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, err := svc.Map(context.Background(), reads[i].Seq)
				if err != nil {
					log.Fatalf("%s read %d: %v", label, i, err)
				}
				out[i] = *resp
			}(i)
		}
		wg.Wait()
		mapped := 0
		for _, r := range out {
			if r.Result.Mapped {
				mapped++
			}
		}
		fmt.Printf("%s: %d/%d reads mapped on generation %d in %v\n",
			label, mapped, len(reads), out[0].Generation, time.Since(t0).Round(time.Millisecond))
		return out
	}

	fmt.Println("\nquerying generation 1...")
	before := mapAll("gen-1 queries")

	// Hot-swap: rebuild the same cohort (an equivalent graph) and publish it
	// while queries run; the old generation retires once its queries drain.
	fmt.Println("\nrebuilding cohort and hot-swapping mid-traffic...")
	var qwg sync.WaitGroup
	qwg.Add(1)
	go func() {
		defer qwg.Done()
		mapAll("concurrent queries")
	}()
	if _, err := builder.Build(context.Background(), cohort); err != nil {
		log.Fatal(err)
	}
	qwg.Wait()

	fmt.Println("\nquerying generation 2...")
	after := mapAll("gen-2 queries")

	same := 0
	for i := range reads {
		if before[i].Result == after[i].Result {
			same++
		}
	}
	fmt.Printf("\ndeterminism across the swap: %d/%d identical reads mapped identically\n", same, len(reads))

	snap := metrics.Snapshot()
	if bs, ok := snap.Values["mapserve.batch_size"]; ok {
		fmt.Printf("batching: %d queries in %d batches (mean %.1f per batch)\n",
			snap.Counters["mapserve.mapped"], bs.Count, bs.Mean())
	}
}

// Quickstart: simulate a tiny pangenome, write it as GFA, map a few reads
// to it with the Vg Map model, and print the alignments.
package main

import (
	"fmt"
	"log"
	"os"

	"pangenomicsbench/internal/gensim"
	"pangenomicsbench/internal/gfa"
	"pangenomicsbench/internal/pipeline"
)

func main() {
	// 1. Simulate a small population: a reference, variants, haplotypes,
	//    and the pangenome graph they imply.
	cfg := gensim.DefaultConfig()
	cfg.RefLen = 20_000
	cfg.Haplotypes = 4
	pop, err := gensim.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	stats := pop.Graph.ComputeStats()
	fmt.Printf("pangenome: %d nodes, %d edges, %d paths, avg node %.1f bp\n",
		stats.Nodes, stats.Edges, stats.Paths, stats.AvgNodeLen)

	// 2. Write the graph as GFA (the format every real tool exchanges).
	f, err := os.CreateTemp("", "quickstart-*.gfa")
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(f.Name())
	if err := gfa.Write(f, pop.Graph); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("graph written to %s\n", f.Name())

	// 3. Map short reads with the Vg Map model (seed → cluster → filter →
	//    GSSW alignment).
	tool, err := pipeline.NewVgMap(pop.Graph, 15, 10)
	if err != nil {
		log.Fatal(err)
	}
	reads, err := pop.SimulateReads(gensim.ShortReadConfig(5))
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range reads {
		res, st := tool.Map(r.Seq, nil)
		if !res.Mapped {
			fmt.Printf("%s: unmapped\n", r.Name)
			continue
		}
		fmt.Printf("%s: node %d, score %d (truth: hap %d pos %d) in %v\n",
			r.Name, res.Node, res.Score, r.Hap, r.Pos, st.Total().Round(1000))
	}
}

// Mapreads: run all four Seq2Graph tool models over a simulated cohort,
// report mapping rate, per-stage time breakdown (the Fig. 2 view), and
// compare against the Seq2Seq baseline.
package main

import (
	"fmt"
	"log"
	"time"

	"pangenomicsbench/internal/gensim"
	"pangenomicsbench/internal/pipeline"
	"pangenomicsbench/internal/seqmap"
)

func main() {
	cfg := gensim.DefaultConfig()
	cfg.RefLen = 60_000
	cfg.Haplotypes = 6
	pop, err := gensim.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	short, err := pop.SimulateReads(gensim.ShortReadConfig(100))
	if err != nil {
		log.Fatal(err)
	}
	longCfg := gensim.LongReadConfig(10)
	longCfg.Length = 4000
	long, err := pop.SimulateReads(longCfg)
	if err != nil {
		log.Fatal(err)
	}

	type job struct {
		tool  pipeline.Tool
		reads []gensim.Read
	}
	var jobs []job
	if t, err := pipeline.NewVgMap(pop.Graph, 15, 10); err == nil {
		jobs = append(jobs, job{t, short})
	}
	if t, err := pipeline.NewVgGiraffe(pop.Graph, 15, 10); err == nil {
		jobs = append(jobs, job{t, short})
	}
	if t, err := pipeline.NewGraphAligner(pop.Graph, 15, 10); err == nil {
		jobs = append(jobs, job{t, long})
	}
	if t, err := pipeline.NewMinigraph(pop.Graph, 15, 10, false); err == nil {
		jobs = append(jobs, job{t, long})
	}

	fmt.Printf("%-14s %7s %7s  %-40s\n", "tool", "mapped", "total", "stage breakdown (seed/chain/filter/align)")
	for _, j := range jobs {
		var agg seqmap.StageTimes
		mapped := 0
		t0 := time.Now()
		for _, r := range j.reads {
			res, st := j.tool.Map(r.Seq, nil)
			agg.Add(st)
			if res.Mapped {
				mapped++
			}
		}
		total := time.Since(t0)
		ts := agg.Total().Seconds()
		fmt.Printf("%-14s %3d/%3d %7s  %4.0f%% / %4.0f%% / %4.0f%% / %4.0f%%\n",
			j.tool.Name(), mapped, len(j.reads), total.Round(time.Millisecond),
			100*agg.Seed.Seconds()/ts, 100*agg.Chain.Seconds()/ts,
			100*agg.Filter.Seconds()/ts, 100*agg.Align.Seconds()/ts)
	}

	// Seq2Seq baseline for contrast.
	m, err := seqmap.NewMapper(pop.Ref, 15, 10)
	if err != nil {
		log.Fatal(err)
	}
	mapped := 0
	t0 := time.Now()
	for _, r := range short {
		res, _ := m.Map(r.Seq, nil, nil)
		if res.Mapped {
			mapped++
		}
	}
	fmt.Printf("%-14s %3d/%3d %7s  (linear reference)\n",
		"BWA-MEM2-like", mapped, len(short), time.Since(t0).Round(time.Millisecond))
}

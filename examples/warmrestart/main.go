// Warmrestart: the persistence layer end to end. "Process 1" cold-builds a
// cohort, publishes it into the query registry, and persists it as a store
// generation — then dies with one more accepted build journaled but
// unfinished. "Process 2" boots from the same store directory: it loads the
// last published generation in milliseconds (no construction), maps the same
// reads byte-identically, finds the crash-interrupted request in the WAL,
// and replays it to completion.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"pangenomicsbench/internal/build"
	"pangenomicsbench/internal/gensim"
	"pangenomicsbench/internal/mapserve"
	"pangenomicsbench/internal/serve"
	"pangenomicsbench/internal/store"
)

func main() {
	storeDir, err := os.MkdirTemp("", "warmrestart-store-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(storeDir)
	walPath := filepath.Join(storeDir, "serve.wal")

	cfg := gensim.DefaultConfig()
	cfg.RefLen = 12_000
	cfg.Haplotypes = 4
	pop, err := gensim.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	names, seqs := pop.AssemblyView()
	toolCfg := mapserve.DefaultToolConfig(mapserve.ToolGiraffe)

	// Query reads sliced out of the assemblies, reused by both processes.
	var reads [][]byte
	for i := 0; i < 12; i++ {
		seq := seqs[i%len(seqs)]
		off := (i * 997) % (len(seq) - 150)
		reads = append(reads, seq[off:off+150])
	}

	// newCoordinator wires one "process": a store-backed builder whose
	// OnResult publishes each finished cohort into reg AND persists it.
	newCoordinator := func(reg *mapserve.Registry, journal *serve.Journal, persist *mapserve.Persister, label string) *serve.Service {
		n := 0
		svc := serve.New(serve.Config{
			CacheCapacity: 32 << 20,
			Journal:       journal,
			OnResult: func(req serve.Request, res *build.Result) {
				n++
				snap, err := mapserve.SnapshotFromBuild(fmt.Sprintf("%s-%d", label, n), res, toolCfg)
				if err == nil {
					_, err = reg.Publish(snap)
				}
				if err == nil {
					var gen uint64
					var size int
					gen, size, err = persist.Save(snap)
					if err == nil {
						fmt.Printf("  [%s] built %v → store generation %d (%d bytes)\n", label, req.Cohort, gen, size)
					}
				}
				if err != nil {
					log.Fatal(err)
				}
			},
		})
		if err := svc.RegisterAssemblies(names, seqs); err != nil {
			log.Fatal(err)
		}
		return svc
	}

	// ---- process 1: cold start ----
	fmt.Println("process 1: cold start")
	sdir, err := store.Open(storeDir, store.Options{})
	if err != nil {
		log.Fatal(err)
	}
	persist := mapserve.NewPersister(sdir, nil)
	j1, err := serve.OpenJournal(walPath, nil)
	if err != nil {
		log.Fatal(err)
	}
	reg1 := &mapserve.Registry{}
	b1 := newCoordinator(reg1, j1, persist, "cold")

	t0 := time.Now()
	full := serve.Request{Tool: serve.ToolPGGB, Cohort: names, PGGB: build.DefaultPGGBConfig()}
	if _, err := b1.Build(context.Background(), full); err != nil {
		log.Fatal(err)
	}
	coldDur := time.Since(t0)
	fmt.Printf("  [cold] construction took %v\n", coldDur.Round(time.Millisecond))

	q1 := mapserve.New(reg1, mapserve.Config{Workers: 2})
	before := make([]string, len(reads))
	for i, rd := range reads {
		resp, err := q1.Map(context.Background(), rd)
		if err != nil {
			log.Fatal(err)
		}
		before[i] = fmt.Sprintf("%+v", resp.Result)
	}
	fmt.Printf("  [cold] mapped %d reads\n", len(reads))

	// One more build is accepted... and the process "crashes" before it
	// finishes: the begin record is fsynced, then the journal is gone before
	// the done can land and the build itself is torn down.
	crash := serve.Request{Tool: serve.ToolPGGB, Cohort: names[:3], PGGB: build.DefaultPGGBConfig()}
	crashCtx, crashCancel := context.WithCancel(context.Background())
	crashed := make(chan struct{})
	go func() {
		defer close(crashed)
		_, _ = b1.Build(crashCtx, crash)
	}()
	time.Sleep(5 * time.Millisecond) // let the begin record hit the WAL
	j1.Close()
	crashCancel()
	<-crashed
	q1.Close()
	fmt.Printf("  [cold] process dies mid-build of %v\n\n", crash.Cohort)

	// ---- process 2: warm restart ----
	fmt.Println("process 2: warm restart from", storeDir)
	j2, err := serve.OpenJournal(walPath, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range j2.Unfinished() {
		fmt.Printf("  [warm] WAL holds a crash-interrupted build: %v\n", r.Cohort)
	}

	reg2 := &mapserve.Registry{}
	t0 = time.Now()
	snap, gen, err := reg2.LoadLatest(sdir, nil)
	if err != nil {
		log.Fatal(err)
	}
	warmDur := time.Since(t0)
	fmt.Printf("  [warm] loaded %q (store generation %d) in %v — %.0f× faster than construction\n",
		snap.ID, gen, warmDur.Round(time.Microsecond), float64(coldDur)/float64(warmDur))

	q2 := mapserve.New(reg2, mapserve.Config{Workers: 2})
	defer q2.Close()
	identical := 0
	for i, rd := range reads {
		resp, err := q2.Map(context.Background(), rd)
		if err != nil {
			log.Fatal(err)
		}
		if fmt.Sprintf("%+v", resp.Result) == before[i] {
			identical++
		}
	}
	fmt.Printf("  [warm] %d/%d reads map byte-identically to process 1\n", identical, len(reads))

	b2 := newCoordinator(reg2, j2, persist, "warm")
	n, err := b2.Recover(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  [warm] journal replay completed %d crash-interrupted build(s)\n", n)

	gens, err := sdir.Generations()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  [warm] store now holds generations %v\n", gens)
	if identical != len(reads) {
		log.Fatal("warm restart changed mapping results")
	}
}

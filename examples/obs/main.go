// Obs: the observability substrate end to end. A traced build-then-serve
// stack — the serve-mode builder publishes a cohort graph into a mapserve
// registry, the batched query service maps a read burst against it — runs
// with the obs admin server attached, then scrapes its own endpoints
// (/healthz, /metrics, /snapshots, /traces) over HTTP and prints the
// slowest query's span tree.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"sync"
	"time"

	"pangenomicsbench/internal/build"
	"pangenomicsbench/internal/gensim"
	"pangenomicsbench/internal/mapserve"
	"pangenomicsbench/internal/obs"
	"pangenomicsbench/internal/perf"
	"pangenomicsbench/internal/serve"
)

func main() {
	// A small simulated catalog and the traced build/query stack: one metric
	// set and one tracer shared by both tiers, so /metrics and /traces see
	// the whole request path.
	cfg := gensim.DefaultConfig()
	cfg.RefLen = 10_000
	cfg.Haplotypes = 3
	pop, err := gensim.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	names, seqs := pop.AssemblyView()

	metrics := perf.NewMetrics()
	tracer := obs.NewTracer(obs.TracerConfig{Metrics: metrics})
	reg := &mapserve.Registry{}
	toolCfg := mapserve.DefaultToolConfig(mapserve.ToolGiraffe)
	builder := serve.New(serve.Config{
		Metrics: metrics,
		Tracer:  tracer,
		OnResult: func(req serve.Request, res *build.Result) {
			snap, err := mapserve.SnapshotFromBuild("cohort", res, toolCfg)
			if err == nil {
				_, err = reg.Publish(snap)
			}
			if err != nil {
				log.Fatal(err)
			}
		},
	})
	if err := builder.RegisterAssemblies(names, seqs); err != nil {
		log.Fatal(err)
	}

	// The admin server, bound to an ephemeral port.
	srv := obs.NewServer(obs.ServerConfig{
		Metrics:   metrics.Snapshot,
		Recorder:  tracer.Recorder(),
		Snapshots: reg.Stats,
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("admin endpoint on http://%s/\n\n", addr)

	// One traced build, then a concurrent query burst.
	fmt.Println("building cohort graph...")
	if _, err := builder.Build(context.Background(), serve.Request{
		Tool: serve.ToolPGGB, Cohort: names, PGGB: build.DefaultPGGBConfig(),
	}); err != nil {
		log.Fatal(err)
	}
	reads, err := pop.SimulateReads(gensim.ReadConfig{Count: 24, Length: 150, SubRate: 0.002, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	svc := mapserve.New(reg, mapserve.Config{
		Workers: 2, MaxBatch: 8, BatchWait: time.Millisecond,
		Metrics: metrics, Tracer: tracer,
	})
	defer svc.Close()
	fmt.Printf("mapping %d reads...\n\n", len(reads))
	var wg sync.WaitGroup
	for i := range reads {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := svc.Map(context.Background(), reads[i].Seq); err != nil {
				log.Fatalf("read %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	// Scrape our own endpoints the way an operator (or Prometheus) would.
	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			log.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("GET %s: %s", path, resp.Status)
		}
		return string(body)
	}

	fmt.Printf("GET /healthz → %s", get("/healthz"))

	promLines := strings.Split(strings.TrimSpace(get("/metrics")), "\n")
	series := 0
	for _, line := range promLines {
		if line != "" && !strings.HasPrefix(line, "#") {
			series++
		}
	}
	fmt.Printf("GET /metrics → %d series, e.g.:\n", series)
	for _, line := range promLines {
		if strings.HasPrefix(line, "mapserve_mapped_total") ||
			strings.HasPrefix(line, "mapserve_batch_size_count") ||
			strings.HasPrefix(line, "serve_requests_total") {
			fmt.Println("  " + line)
		}
	}

	fmt.Printf("\nGET /snapshots →\n%s\n", get("/snapshots"))
	fmt.Printf("GET /traces?which=slow&n=1 →\n\n")

	// The slowest query's span tree, straight from the flight recorder.
	for _, d := range tracer.Recorder().Slowest(3) {
		if d.Name != "mapserve.query" {
			continue
		}
		fmt.Println(d.Tree())
		break
	}
}

// Buildgraph: construct a pangenome graph from a simulated cohort with both
// construction pipeline models — PGGB (all-vs-all match → seqwish
// transclosure → POA polish → PG-SGD layout) and Minigraph-Cactus
// (incremental growth with GWFA bridging) — and print the Fig. 3 style
// per-stage breakdown side by side.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"pangenomicsbench/internal/build"
	"pangenomicsbench/internal/gensim"
)

func main() {
	cfg := gensim.DefaultConfig()
	cfg.RefLen = 40_000
	cfg.Haplotypes = 5
	pop, err := gensim.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	names, seqs := pop.AssemblyView()
	total := 0
	for _, s := range seqs {
		total += len(s)
	}
	fmt.Printf("cohort: %d assemblies, %d bp total\n\n", len(seqs), total)

	pres, err := build.PGGB(context.Background(), names, seqs, build.DefaultPGGBConfig(), nil)
	if err != nil {
		log.Fatal(err)
	}
	mres, err := build.MinigraphCactus(context.Background(), names, seqs, build.DefaultMCConfig(), nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-17s %10s %10s %10s %10s %10s\n",
		"pipeline", "align", "induce", "polish", "layout", "total")
	for _, res := range []*build.Result{pres, mres} {
		b := res.Breakdown
		fmt.Printf("%-17s %10s %10s %10s %10s %10s\n",
			b.Pipeline,
			b.Alignment.Round(time.Microsecond),
			b.Induction.Round(time.Microsecond),
			b.Polishing.Round(time.Microsecond),
			b.Layout.Round(time.Microsecond),
			b.Total().Round(time.Microsecond))
	}
	fmt.Println()

	pb, mb := pres.Breakdown, mres.Breakdown
	fmt.Printf("PGGB kernels: TC %s (%.0f%% of induction), POA %s (%.0f%% of polishing)\n",
		pb.TCTime.Round(time.Microsecond),
		100*pb.TCTime.Seconds()/pb.Induction.Seconds(),
		pb.POATime.Round(time.Microsecond),
		100*pb.POATime.Seconds()/pb.Polishing.Seconds())
	fmt.Printf("MC kernels:   GWFA %s (inside alignment), POA %s (inside induction)\n\n",
		mb.GWFA.Round(time.Microsecond), mb.POATime.Round(time.Microsecond))

	fmt.Printf("%-17s %8s %8s %12s %14s\n", "pipeline", "nodes", "edges", "match blocks", "compression")
	for _, res := range []*build.Result{pres, mres} {
		st := res.Stats
		gs := res.Graph.ComputeStats()
		fmt.Printf("%-17s %8d %8d %12d %13.1fx\n",
			res.Breakdown.Pipeline, st.Nodes, st.Edges, st.MatchBlocks,
			float64(total)/float64(gs.TotalBases))
	}
}

// Servemode: run the graph-construction service over a simulated cohort and
// show how overlapping build requests reuse cached pair-match results.
// The first request pays the full C(n,2) all-vs-all matching cost; the
// second, whose cohort shares assemblies with the first, computes only the
// pairs it hasn't seen.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"pangenomicsbench/internal/build"
	"pangenomicsbench/internal/gensim"
	"pangenomicsbench/internal/perf"
	"pangenomicsbench/internal/serve"
)

func main() {
	cfg := gensim.DefaultConfig()
	cfg.RefLen = 30_000
	cfg.Haplotypes = 7
	pop, err := gensim.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	names, seqs := pop.AssemblyView()

	metrics := perf.NewMetrics()
	svc := serve.New(serve.Config{Metrics: metrics})
	if err := svc.RegisterAssemblies(names, seqs); err != nil {
		log.Fatal(err)
	}

	pcfg := build.DefaultPGGBConfig()
	request := func(cohort []string) {
		t0 := time.Now()
		resp, err := svc.Build(context.Background(), serve.Request{
			Tool: serve.ToolPGGB, Cohort: cohort, PGGB: pcfg,
			Timeout: time.Minute,
		})
		if err != nil {
			log.Fatal(err)
		}
		st := resp.Result.Stats
		fmt.Printf("cohort %v\n", cohort)
		fmt.Printf("  %d nodes, %d edges; pair matching: %d cached / %d computed; total %v\n",
			st.Nodes, st.Edges, resp.PairHits, resp.PairMisses,
			time.Since(t0).Round(time.Millisecond))
	}

	// Two overlapping cohorts of 5 assemblies sharing 3: the second request
	// computes C(5,2) − C(3,2) = 7 pairs instead of 10.
	request(names[:5])
	request(names[2:7])

	hits, misses, _ := svc.CacheCounters()
	fmt.Printf("\ncache over both requests: %d hits / %d misses (%.0f%% reuse)\n",
		hits, misses, 100*float64(hits)/float64(hits+misses))
	fmt.Println("\nservice metrics:")
	fmt.Print(metrics.Snapshot().Render())
}

package gbwt

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"pangenomicsbench/internal/graph"
)

// buildHaploGraph makes a graph with the given haplotype paths (node IDs
// allocated 1..n automatically).
func buildHaploGraph(t testing.TB, n int, paths [][]graph.NodeID) *graph.Graph {
	t.Helper()
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode([]byte("A"))
	}
	for i, p := range paths {
		if err := g.AddPath(name(i), p); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func name(i int) string { return string(rune('a' + i)) }

// bruteFind scans all paths for occurrences of s and collects successors.
func bruteFind(paths []graph.Path, s []graph.NodeID) (count int, succs []graph.NodeID) {
	set := map[graph.NodeID]bool{}
	for _, p := range paths {
		for i := 0; i+len(s) <= len(p.Nodes); i++ {
			match := true
			for j := range s {
				if p.Nodes[i+j] != s[j] {
					match = false
					break
				}
			}
			if match {
				count++
				if i+len(s) < len(p.Nodes) {
					set[p.Nodes[i+len(s)]] = true
				}
			}
		}
	}
	for id := range set {
		succs = append(succs, id)
	}
	sort.Slice(succs, func(a, b int) bool { return succs[a] < succs[b] })
	return count, succs
}

func TestFindPaperExample(t *testing.T) {
	// Figure 4c: haplotypes 1→3→5 and 2→3→4. After matching 1→3, only 5 is
	// a valid continuation even though the graph has edge 3→4.
	g := buildHaploGraph(t, 5, [][]graph.NodeID{{1, 3, 5}, {2, 3, 4}})
	idx, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	st, succs := idx.Find([]graph.NodeID{1, 3}, nil)
	if st.Size() != 1 {
		t.Fatalf("1→3 occurrences = %d, want 1", st.Size())
	}
	if len(succs) != 1 || succs[0] != 5 {
		t.Fatalf("successors of 1→3 = %v, want [5]", succs)
	}
	st2, succs2 := idx.Find([]graph.NodeID{2, 3}, nil)
	if st2.Size() != 1 || len(succs2) != 1 || succs2[0] != 4 {
		t.Fatalf("2→3: size %d succs %v", st2.Size(), succs2)
	}
	// Node 3 alone matches both haplotypes.
	st3, succs3 := idx.Find([]graph.NodeID{3}, nil)
	if st3.Size() != 2 || len(succs3) != 2 {
		t.Fatalf("3: size %d succs %v", st3.Size(), succs3)
	}
	if idx.Contains([]graph.NodeID{1, 3, 4}, nil) {
		t.Fatal("1→3→4 is not a haplotype subpath")
	}
}

func TestFindMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 5 + rng.Intn(15)
		nPaths := 1 + rng.Intn(6)
		var paths [][]graph.NodeID
		for p := 0; p < nPaths; p++ {
			plen := 2 + rng.Intn(20)
			path := make([]graph.NodeID, plen)
			// Random walks with increasing-ish node IDs plus repeats to
			// exercise multi-occurrence ranges.
			for i := range path {
				path[i] = graph.NodeID(1 + rng.Intn(n))
			}
			paths = append(paths, path)
		}
		g := buildHaploGraph(t, n, paths)
		idx, err := Build(g)
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 30; q++ {
			// Query: subpath of a random path (so usually present), or a
			// random sequence (usually absent).
			var query []graph.NodeID
			if q%3 != 0 {
				p := paths[rng.Intn(len(paths))]
				qlen := 1 + rng.Intn(4)
				if qlen > len(p) {
					qlen = len(p)
				}
				start := rng.Intn(len(p) - qlen + 1)
				query = append(query, p[start:start+qlen]...)
			} else {
				for i := 0; i < 1+rng.Intn(3); i++ {
					query = append(query, graph.NodeID(1+rng.Intn(n)))
				}
			}
			wantCount, wantSuccs := bruteFind(g.Paths(), query)
			st, gotSuccs := idx.Find(query, nil)
			if st.Size() != wantCount {
				t.Fatalf("trial %d: Find(%v) count %d, want %d", trial, query, st.Size(), wantCount)
			}
			if wantCount > 0 {
				if len(gotSuccs) != len(wantSuccs) {
					t.Fatalf("trial %d: Find(%v) succs %v, want %v", trial, query, gotSuccs, wantSuccs)
				}
				for i := range wantSuccs {
					if gotSuccs[i] != wantSuccs[i] {
						t.Fatalf("trial %d: Find(%v) succs %v, want %v", trial, query, gotSuccs, wantSuccs)
					}
				}
			}
		}
	}
}

func TestFindProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		paths := [][]graph.NodeID{}
		for p := 0; p < 1+rng.Intn(3); p++ {
			path := make([]graph.NodeID, 1+rng.Intn(10))
			for i := range path {
				path[i] = graph.NodeID(1 + rng.Intn(n))
			}
			paths = append(paths, path)
		}
		g := graph.New()
		for i := 0; i < n; i++ {
			g.AddNode([]byte("C"))
		}
		for i, p := range paths {
			if err := g.AddPath(name(i), p); err != nil {
				return false
			}
		}
		idx, err := Build(g)
		if err != nil {
			return false
		}
		// Every length-2 window of every path must be found.
		for _, p := range paths {
			for i := 0; i+2 <= len(p); i++ {
				if !idx.Contains(p[i:i+2], nil) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildErrors(t *testing.T) {
	g := graph.New()
	g.AddNode([]byte("A"))
	if _, err := Build(g); err == nil {
		t.Fatal("graph without paths must be rejected")
	}
}

func TestFindEdgeCases(t *testing.T) {
	g := buildHaploGraph(t, 3, [][]graph.NodeID{{1, 2, 3}})
	idx, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := idx.Find(nil, nil); !st.Empty() {
		t.Fatal("empty query must match nothing")
	}
	// Unknown node.
	if idx.Contains([]graph.NodeID{99}, nil) {
		t.Fatal("unknown node must not match")
	}
	if idx.NumPaths() != 1 {
		t.Fatal("NumPaths wrong")
	}
	// Final node has no successors.
	st, succs := idx.Find([]graph.NodeID{3}, nil)
	if st.Size() != 1 || len(succs) != 0 {
		t.Fatalf("terminal node: size %d succs %v", st.Size(), succs)
	}
}

package gbwt

import (
	"math/rand"
	"sort"
	"testing"

	"pangenomicsbench/internal/graph"
)

func TestLocateKnown(t *testing.T) {
	// Paths: a = 1,2,3,2,3 ; b = 2,3,4. Subpath (2,3) occurs at a[1], a[3]
	// and b[0] — Locate on Find((2,3)) must name the step of node 3.
	g := buildHaploGraph(t, 4, [][]graph.NodeID{{1, 2, 3, 2, 3}, {2, 3, 4}})
	idx, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := idx.Find([]graph.NodeID{2, 3}, nil)
	if st.Size() != 3 {
		t.Fatalf("occurrences = %d, want 3", st.Size())
	}
	got := idx.Locate(st, nil)
	sort.Slice(got, func(i, j int) bool {
		if got[i].Path != got[j].Path {
			return got[i].Path < got[j].Path
		}
		return got[i].Step < got[j].Step
	})
	want := []PathPosition{{0, 2}, {0, 4}, {1, 1}}
	if len(got) != len(want) {
		t.Fatalf("Locate = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Locate = %v, want %v", got, want)
		}
	}
}

func TestLocateMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(8)
		var paths [][]graph.NodeID
		for p := 0; p < 1+rng.Intn(4); p++ {
			path := make([]graph.NodeID, 2+rng.Intn(12))
			for i := range path {
				path[i] = graph.NodeID(1 + rng.Intn(n))
			}
			paths = append(paths, path)
		}
		g := buildHaploGraph(t, n, paths)
		idx, err := Build(g)
		if err != nil {
			t.Fatal(err)
		}
		// Query: a window from a random path.
		p := paths[rng.Intn(len(paths))]
		qlen := 1 + rng.Intn(3)
		if qlen > len(p) {
			qlen = len(p)
		}
		start := rng.Intn(len(p) - qlen + 1)
		query := p[start : start+qlen]

		// Brute-force end positions.
		type pp struct{ path, step int32 }
		want := map[pp]int{}
		for pi, path := range paths {
			for i := 0; i+len(query) <= len(path); i++ {
				match := true
				for j := range query {
					if path[i+j] != query[j] {
						match = false
						break
					}
				}
				if match {
					want[pp{int32(pi), int32(i + len(query) - 1)}]++
				}
			}
		}
		st, _ := idx.Find(query, nil)
		got := idx.Locate(st, nil)
		gotCount := map[pp]int{}
		for _, g := range got {
			gotCount[pp{g.Path, g.Step}]++
		}
		if len(gotCount) != len(want) {
			t.Fatalf("trial %d: Locate %v, want %v", trial, gotCount, want)
		}
		for k, v := range want {
			if gotCount[k] != v {
				t.Fatalf("trial %d: Locate %v, want %v", trial, gotCount, want)
			}
		}
	}
}

func TestLocateEmptyState(t *testing.T) {
	g := buildHaploGraph(t, 2, [][]graph.NodeID{{1, 2}})
	idx, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := idx.Locate(State{Node: 99}, nil); got != nil {
		t.Fatal("unknown node must locate nothing")
	}
}

package gbwt

import (
	"fmt"
	"sort"

	"pangenomicsbench/internal/binio"
	"pangenomicsbench/internal/graph"
)

// AppendBinary appends the GBWT's flat little-endian encoding to buf.
// Records are written in ascending node order — the same order Build
// creates them in (BWT first-symbol order) — and only the primary data is
// stored: successor alphabet, LF offsets, body and the origin document
// array. The rank samples and the synthetic cache-model base addresses are
// pure functions of that data and are recomputed on decode, so the loaded
// index is field-identical to the built one (including the probe addresses
// the microarchitectural simulation sees). Layout:
//
//	u64 pathCount, u64 recordCount
//	per record (node ascending):
//	  u32 node
//	  u64 succCount, per successor: u32 node ID, u32 LF offset
//	  u64 bodyLen, per visit: u16 edge index
//	  per visit: u32 path index, u32 step (two's complement; -1 = path end)
func (x *Index) AppendBinary(buf []byte) []byte {
	buf = binio.AppendU64(buf, uint64(x.paths))
	buf = binio.AppendU64(buf, uint64(len(x.records)))
	nodes := make([]graph.NodeID, 0, len(x.records))
	for id := range x.records {
		nodes = append(nodes, id)
	}
	sort.Slice(nodes, func(a, b int) bool { return nodes[a] < nodes[b] })
	for _, id := range nodes {
		rec := x.records[id]
		buf = binio.AppendU32(buf, uint32(id))
		buf = binio.AppendU64(buf, uint64(len(rec.succs)))
		for e := range rec.succs {
			buf = binio.AppendU32(buf, uint32(rec.succs[e]))
			buf = binio.AppendU32(buf, uint32(rec.offsets[e]))
		}
		buf = binio.AppendU64(buf, uint64(len(rec.body)))
		for _, e := range rec.body {
			buf = binio.AppendU16(buf, e)
		}
		for _, o := range rec.origins {
			buf = binio.AppendU32(buf, uint32(o.Path))
			buf = binio.AppendU32(buf, uint32(o.Step))
		}
	}
	return buf
}

// DecodeIndex decodes an AppendBinary payload, recomputing the rank samples
// and record base addresses exactly as Build does.
func DecodeIndex(data []byte) (*Index, error) {
	r := binio.NewReader(data)
	paths := int(r.U64())
	nrec := r.Count(4)
	if r.Err() == nil && paths < 1 {
		return nil, fmt.Errorf("gbwt: decode: invalid path count %d", paths)
	}
	x := &Index{records: make(map[graph.NodeID]*record, nrec), paths: paths}
	nextBase := uint64(1 << 20)
	prev := graph.NodeID(0)
	for i := 0; i < nrec; i++ {
		id := graph.NodeID(r.U32())
		if r.Err() == nil && id <= prev {
			return nil, fmt.Errorf("gbwt: decode: record %d node %d not ascending (previous %d)", i, id, prev)
		}
		prev = id
		rec := &record{}
		ns := r.Count(8)
		rec.succs = make([]graph.NodeID, ns)
		rec.offsets = make([]int32, ns)
		for e := 0; e < ns; e++ {
			rec.succs[e] = graph.NodeID(r.U32())
			rec.offsets[e] = int32(r.U32())
			if r.Err() == nil && e > 0 && rec.succs[e] <= rec.succs[e-1] {
				return nil, fmt.Errorf("gbwt: decode: node %d successor alphabet not ascending", id)
			}
		}
		nb := r.Count(2)
		rec.body = make([]uint16, nb)
		for k := 0; k < nb; k++ {
			rec.body[k] = r.U16()
			if r.Err() == nil && int(rec.body[k]) >= ns {
				return nil, fmt.Errorf("gbwt: decode: node %d visit %d takes edge %d of %d", id, k, rec.body[k], ns)
			}
		}
		rec.origins = make([]PathPosition, nb)
		for k := 0; k < nb; k++ {
			rec.origins[k] = PathPosition{Path: int32(r.U32()), Step: int32(r.U32())}
		}
		if r.Err() != nil {
			return nil, fmt.Errorf("gbwt: decode record %d: %w", i, r.Err())
		}
		// Derived state, recomputed with Build's exact formulas: sampled
		// edge ranks over the body, and the record's synthetic address.
		nSamples := nb/rankRate + 2
		rec.ranks = make([][]int32, ns)
		for e := range rec.ranks {
			rec.ranks[e] = make([]int32, nSamples)
		}
		counts := make([]int32, ns)
		for k := 0; k < nb; k++ {
			if k%rankRate == 0 {
				for e := range counts {
					rec.ranks[e][k/rankRate] = counts[e]
				}
			}
			counts[rec.body[k]]++
		}
		if nb > 0 {
			for e := range counts {
				rec.ranks[e][(nb-1)/rankRate+1] = counts[e]
			}
		}
		rec.base = nextBase
		nextBase += uint64(nb*2 + ns*16 + nSamples*4*ns)
		x.records[id] = rec
	}
	if r.Err() != nil {
		return nil, fmt.Errorf("gbwt: decode: %w", r.Err())
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("gbwt: decode: %d trailing bytes", r.Remaining())
	}
	return x, nil
}

// Package gbwt implements the Graph Burrows-Wheeler Transform (the paper's
// [33]): a haplotype-aware FM-index over *paths* through a pangenome graph.
// Where the classic FM-index indexes one string of base pairs, the GBWT
// indexes multiple sequences of node IDs (haplotype paths). Vg Giraffe uses
// it in the filtering step to extend seed hits only along real haplotypes
// (paper §3, Fig. 4c); the representative Find operation extracted as the
// GBWT kernel is implemented here.
//
// Construction follows the FM-index view: the GBWT of a path set equals an
// FM-index over the reversed paths, reorganized into per-node records. Each
// record stores the node's outgoing edges (a handful, because haplotypes
// rarely diverge — the locality property §5.2 highlights) and, for each
// visit of the node, which edge the haplotype takes next.
package gbwt

import (
	"fmt"
	"sort"

	"pangenomicsbench/internal/fmindex"
	"pangenomicsbench/internal/graph"
	"pangenomicsbench/internal/perf"
)

// endMarker terminates every path (node ID 0 is invalid in graphs).
const endMarker = 0

// record is the per-node block of the index.
type record struct {
	// succs are the distinct successor node IDs observed after this node in
	// any haplotype (may include endMarker), ascending.
	succs []graph.NodeID
	// offsets[e] is the number of occurrences of succs[e] in records of
	// nodes smaller than this one — the base of the LF-mapping into
	// succs[e]'s record.
	offsets []int32
	// body[i] is the edge index (into succs) taken by the i-th visit of
	// this node in BWT order.
	body []uint16
	// origins[i] identifies which haplotype visit row i is: the path index
	// and the step index of this node within that path. The real GBWT
	// samples this "document array"; at benchmark scale it is stored fully.
	origins []PathPosition
	// ranks[e][i] = occurrences of edge e in body[0:i*rankRate], sampled.
	ranks [][]int32
	base  uint64 // synthetic address for the cache model
}

const rankRate = 16

// Index is a GBWT over the haplotype paths of a graph.
type Index struct {
	records map[graph.NodeID]*record
	paths   int
}

// Build constructs the GBWT from the embedded paths of g.
func Build(g *graph.Graph) (*Index, error) {
	paths := g.Paths()
	if len(paths) == 0 {
		return nil, fmt.Errorf("gbwt: graph has no paths to index")
	}
	// T = concat over paths of reverse(path) + endMarker. An FM-index over
	// T supports forward extension through the original paths. origin[t]
	// remembers which (path, step) each text position came from.
	var text []int32
	var origin []PathPosition
	for pi, p := range paths {
		if len(p.Nodes) == 0 {
			return nil, fmt.Errorf("gbwt: path %q is empty", p.Name)
		}
		for i := len(p.Nodes) - 1; i >= 0; i-- {
			text = append(text, int32(p.Nodes[i]))
			origin = append(origin, PathPosition{Path: int32(pi), Step: int32(i)})
		}
		text = append(text, endMarker)
		origin = append(origin, PathPosition{Path: int32(pi), Step: -1})
	}
	sa := fmindex.SuffixArrayInts(text)

	// BWT over node IDs: bwt[i] = text[sa[i]-1] (wrapping), which in the
	// original path orientation is the *next* node of that visit.
	n := len(text)
	bwt := make([]int32, n)
	first := make([]int32, n) // first symbol of each sorted suffix
	for i, p := range sa {
		if p == 0 {
			bwt[i] = text[n-1]
		} else {
			bwt[i] = text[p-1]
		}
		first[i] = text[p]
	}

	// Slice the BWT into per-node records. Records are packed back to back
	// (as in the real GBWT's byte-aligned record array), which is what
	// gives consecutive-node queries their spatial locality (§5.2).
	idx := &Index{records: make(map[graph.NodeID]*record), paths: len(paths)}
	nextBase := uint64(1 << 20)
	globalOcc := map[graph.NodeID]int32{}
	i := 0
	for i < n {
		sym := first[i]
		j := i
		for j < n && first[j] == sym {
			j++
		}
		if sym != endMarker {
			node := graph.NodeID(sym)
			rec := &record{}
			// Collect successor alphabet of this record.
			seen := map[graph.NodeID]bool{}
			for k := i; k < j; k++ {
				seen[graph.NodeID(bwt[k])] = true
			}
			for s := range seen {
				rec.succs = append(rec.succs, s)
			}
			sort.Slice(rec.succs, func(a, b int) bool { return rec.succs[a] < rec.succs[b] })
			rec.offsets = make([]int32, len(rec.succs))
			for e, s := range rec.succs {
				rec.offsets[e] = globalOcc[s]
			}
			// Body and rank samples.
			edgeOf := make(map[graph.NodeID]uint16, len(rec.succs))
			for e, s := range rec.succs {
				edgeOf[s] = uint16(e)
			}
			rec.body = make([]uint16, j-i)
			rec.origins = make([]PathPosition, j-i)
			for k := i; k < j; k++ {
				rec.origins[k-i] = origin[sa[k]]
			}
			rec.ranks = make([][]int32, len(rec.succs))
			nSamples := (j-i)/rankRate + 2
			for e := range rec.ranks {
				rec.ranks[e] = make([]int32, nSamples)
			}
			counts := make([]int32, len(rec.succs))
			for k := i; k < j; k++ {
				local := k - i
				if local%rankRate == 0 {
					for e := range counts {
						rec.ranks[e][local/rankRate] = counts[e]
					}
				}
				e := edgeOf[graph.NodeID(bwt[k])]
				rec.body[local] = e
				counts[e]++
			}
			for e := range counts {
				rec.ranks[e][(j-i-1)/rankRate+1] = counts[e]
			}
			rec.base = nextBase
			nextBase += uint64((j-i)*2 + len(rec.succs)*16 + nSamples*4*len(rec.succs))
			idx.records[node] = rec
		}
		// Update global occurrence counts for LF offsets of later records.
		for k := i; k < j; k++ {
			globalOcc[graph.NodeID(bwt[k])]++
		}
		i = j
	}
	return idx, nil
}

// NumPaths returns the number of indexed haplotypes.
func (x *Index) NumPaths() int { return x.paths }

// State is a search state: a node and a half-open visit range within its
// record. Size reports how many haplotype positions match the searched
// subpath.
type State struct {
	Node   graph.NodeID
	Lo, Hi int32
}

// Size returns the number of matching haplotype occurrences.
func (s State) Size() int { return int(s.Hi - s.Lo) }

// Empty reports whether the state matches nothing.
func (s State) Empty() bool { return s.Hi <= s.Lo }

// Start returns the state matching the single-node sequence (v).
func (x *Index) Start(v graph.NodeID) State {
	rec, ok := x.records[v]
	if !ok {
		return State{Node: v}
	}
	return State{Node: v, Lo: 0, Hi: int32(len(rec.body))}
}

// rank counts occurrences of edge e in body[0:i).
func (r *record) rank(e int, i int32, probe *perf.Probe) int32 {
	ck := i / rankRate
	probe.Load(uintptr(r.base)+uintptr(len(r.body)*2+e*16+int(ck)*4), 4)
	cnt := r.ranks[e][ck]
	for p := ck * rankRate; p < i; p++ {
		probe.Load(uintptr(r.base)+uintptr(p*2), 2)
		if r.body[p] == uint16(e) {
			cnt++
		}
	}
	// Scalar run-length/byte-code decoding work per scanned position — the
	// compressed-record arithmetic that keeps GBWT compute-heavy rather
	// than memory-heavy (§5.2).
	probe.Op(perf.ScalarInt, int(i-ck*rankRate)*3+6)
	return cnt
}

// Extend advances the state through node w: the returned state matches the
// searched sequence followed by w. The LF-mapping touches only this record
// and w's offset — the short, cache-friendly hop chain of §5.2.
func (x *Index) Extend(s State, w graph.NodeID, probe *perf.Probe) State {
	if s.Empty() {
		return State{Node: w}
	}
	rec, ok := x.records[s.Node]
	if !ok {
		return State{Node: w}
	}
	// Find the edge index of w (binary search over a handful of succs —
	// the data-dependent control flow that makes GBWT branch-bound).
	e := sort.Search(len(rec.succs), func(i int) bool { return rec.succs[i] >= w })
	probe.Op(perf.ScalarInt, 3)
	probe.TakeBranch(0xd0, e < len(rec.succs) && rec.succs[e] == w)
	if e == len(rec.succs) || rec.succs[e] != w {
		return State{Node: w}
	}
	lo := rec.offsets[e] + rec.rank(e, s.Lo, probe)
	hi := rec.offsets[e] + rec.rank(e, s.Hi, probe)
	return State{Node: w, Lo: lo, Hi: hi}
}

// Find runs the paper's representative GBWT kernel operation: given a node
// sequence S, it returns the state matching S and the set of possible next
// nodes (successors reachable along at least one haplotype containing S).
func (x *Index) Find(s []graph.NodeID, probe *perf.Probe) (State, []graph.NodeID) {
	if len(s) == 0 {
		return State{}, nil
	}
	st := x.Start(s[0])
	for _, w := range s[1:] {
		probe.Frontend(2)
		st = x.Extend(st, w, probe)
		if st.Empty() {
			return st, nil
		}
	}
	return st, x.successors(st, probe)
}

// successors lists the distinct non-terminator successors within a state.
func (x *Index) successors(s State, probe *perf.Probe) []graph.NodeID {
	rec, ok := x.records[s.Node]
	if !ok || s.Empty() {
		return nil
	}
	var out []graph.NodeID
	for e, succ := range rec.succs {
		if succ == endMarker {
			continue
		}
		if rec.rank(e, s.Hi, probe)-rec.rank(e, s.Lo, probe) > 0 {
			probe.TakeBranch(0xd1, true)
			out = append(out, succ)
		} else {
			probe.TakeBranch(0xd1, false)
		}
	}
	return out
}

// PathPosition identifies one haplotype visit: the path index (in the
// graph's path list) and the step index within that path.
type PathPosition struct {
	Path int32
	Step int32
}

// Locate resolves a state's matches to haplotype positions: for a state
// obtained by Find(S), each result names a path and the step of S's *last*
// node in that path.
func (x *Index) Locate(s State, probe *perf.Probe) []PathPosition {
	rec, ok := x.records[s.Node]
	if !ok || s.Empty() {
		return nil
	}
	out := make([]PathPosition, 0, s.Size())
	for i := s.Lo; i < s.Hi; i++ {
		probe.Load(uintptr(rec.base)+uintptr(len(rec.body)*2+int(i)*8), 8)
		out = append(out, rec.origins[i])
	}
	return out
}

// Contains reports whether the node sequence occurs in at least one
// haplotype.
func (x *Index) Contains(s []graph.NodeID, probe *perf.Probe) bool {
	st, _ := x.Find(s, probe)
	return !st.Empty()
}

// CountOccurrences returns how many haplotype positions match s.
func (x *Index) CountOccurrences(s []graph.NodeID, probe *perf.Probe) int {
	st, _ := x.Find(s, probe)
	return st.Size()
}

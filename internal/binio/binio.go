// Package binio provides the little-endian append/read primitives shared by
// the flat binary encodings of the persistence layer (internal/store and the
// AppendBinary/Decode methods of graph, minimizer and gbwt). Writers append
// into a caller-owned buffer; the Reader consumes a byte slice with a sticky
// error, so decoders can chain reads and check failure once at the end.
package binio

import (
	"encoding/binary"
	"fmt"
)

// AppendU8 appends one byte.
func AppendU8(b []byte, v uint8) []byte { return append(b, v) }

// AppendU16 appends v little-endian.
func AppendU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }

// AppendU32 appends v little-endian.
func AppendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }

// AppendU64 appends v little-endian.
func AppendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// AppendBytes appends a u64 length prefix followed by p.
func AppendBytes(b, p []byte) []byte {
	b = AppendU64(b, uint64(len(p)))
	return append(b, p...)
}

// AppendString appends s as a length-prefixed byte blob.
func AppendString(b []byte, s string) []byte { return AppendBytes(b, []byte(s)) }

// Reader consumes a flat little-endian buffer. The first short read latches
// an error; every later read returns zero values, so decoders check Err()
// once after the last field.
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader reads from data (not copied; the caller keeps ownership).
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err returns the latched decode error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the unread byte count.
func (r *Reader) Remaining() int { return len(r.data) - r.off }

// fail latches the first error.
func (r *Reader) fail(n int) {
	if r.err == nil {
		r.err = fmt.Errorf("binio: truncated input: need %d bytes at offset %d of %d", n, r.off, len(r.data))
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.data) {
		r.fail(n)
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads one little-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads one little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads one little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Bytes reads a u64 length prefix and returns that many bytes as a subslice
// of the underlying buffer (callers copy if they retain it).
func (r *Reader) Bytes() []byte {
	n := r.U64()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.Remaining()) {
		r.fail(int(n))
		return nil
	}
	return r.take(int(n))
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }

// Count reads a u64 element count and validates it against the remaining
// bytes assuming each element occupies at least minElemSize bytes — the
// guard that keeps a corrupt length field from driving a huge allocation.
func (r *Reader) Count(minElemSize int) int {
	n := r.U64()
	if r.err != nil {
		return 0
	}
	if minElemSize < 1 {
		minElemSize = 1
	}
	if n > uint64(r.Remaining()/minElemSize) {
		if r.err == nil {
			r.err = fmt.Errorf("binio: implausible element count %d at offset %d (%d bytes remain)", n, r.off, r.Remaining())
		}
		return 0
	}
	return int(n)
}

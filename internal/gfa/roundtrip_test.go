package gfa_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"pangenomicsbench/internal/build"
	"pangenomicsbench/internal/gensim"
	"pangenomicsbench/internal/gfa"
	"pangenomicsbench/internal/graph"
)

// graphsEqual asserts g2 reproduces g1's segments, links and paths exactly.
func graphsEqual(t *testing.T, g1, g2 *graph.Graph) {
	t.Helper()
	if g1.NumNodes() != g2.NumNodes() {
		t.Fatalf("node count %d != %d", g1.NumNodes(), g2.NumNodes())
	}
	for _, id := range g1.SortedNodeIDs() {
		if !bytes.Equal(g1.Seq(id), g2.Seq(id)) {
			t.Fatalf("segment %d sequence differs", id)
		}
		out1, out2 := g1.Out(id), g2.Out(id)
		if len(out1) != len(out2) {
			t.Fatalf("node %d has %d vs %d out-edges", id, len(out1), len(out2))
		}
		seen := map[graph.NodeID]bool{}
		for _, to := range out1 {
			seen[to] = true
		}
		for _, to := range out2 {
			if !seen[to] {
				t.Fatalf("node %d gained edge to %d", id, to)
			}
		}
	}
	p1, p2 := g1.Paths(), g2.Paths()
	if len(p1) != len(p2) {
		t.Fatalf("path count %d != %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i].Name != p2[i].Name {
			t.Fatalf("path %d name %q != %q", i, p1[i].Name, p2[i].Name)
		}
		if len(p1[i].Nodes) != len(p2[i].Nodes) {
			t.Fatalf("path %q has %d vs %d steps", p1[i].Name, len(p1[i].Nodes), len(p2[i].Nodes))
		}
		for j := range p1[i].Nodes {
			if p1[i].Nodes[j] != p2[i].Nodes[j] {
				t.Fatalf("path %q step %d: %d != %d", p1[i].Name, j, p1[i].Nodes[j], p2[i].Nodes[j])
			}
		}
	}
}

// TestPGGBGraphRoundTrip is the round-trip losslessness property: for
// gensim-seeded cohorts, a PGGB result graph written as GFA and re-parsed
// reproduces identical segments, links and paths.
func TestPGGBGraphRoundTrip(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cfg := gensim.DefaultConfig()
			cfg.RefLen = 4000
			cfg.Haplotypes = 4
			cfg.Seed = seed
			pop, err := gensim.Simulate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			names, seqs := pop.AssemblyView()
			bcfg := build.DefaultPGGBConfig()
			bcfg.LayoutIterations = 0
			res, err := build.PGGB(context.Background(), names, seqs, bcfg, nil)
			if err != nil {
				t.Fatal(err)
			}

			var buf bytes.Buffer
			if err := gfa.Write(&buf, res.Graph); err != nil {
				t.Fatal(err)
			}
			first := buf.String()
			back, err := gfa.Read(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("re-parse failed: %v", err)
			}
			graphsEqual(t, res.Graph, back)
			if err := back.Validate(); err != nil {
				t.Fatalf("re-parsed graph invalid: %v", err)
			}
			// Paths must still spell every assembly after the round trip.
			for i, p := range back.Paths() {
				if got := string(back.PathSeq(p)); got != string(seqs[i]) {
					t.Fatalf("path %s no longer spells its assembly after round trip", p.Name)
				}
			}
			// Serialization is a fixpoint: writing the re-parsed graph
			// reproduces the same bytes.
			var buf2 bytes.Buffer
			if err := gfa.Write(&buf2, back); err != nil {
				t.Fatal(err)
			}
			if buf2.String() != first {
				t.Fatal("GFA serialization is not a fixpoint under round trip")
			}
		})
	}
}

// TestGensimGraphRoundTrip extends the property to the simulator's bubble
// graphs, which have denser branching than PGGB output.
func TestGensimGraphRoundTrip(t *testing.T) {
	cfg := gensim.DefaultConfig()
	cfg.RefLen = 6000
	cfg.Haplotypes = 6
	pop, err := gensim.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gfa.Write(&buf, pop.Graph); err != nil {
		t.Fatal(err)
	}
	back, err := gfa.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, pop.Graph, back)
}

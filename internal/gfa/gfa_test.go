package gfa

import (
	"bytes"
	"strings"
	"testing"

	"pangenomicsbench/internal/graph"
)

func sample() *graph.Graph {
	g := graph.New()
	g.AddNode([]byte("ACGT"))
	g.AddNode([]byte("AA"))
	g.AddNode([]byte("GG"))
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	if err := g.AddPath("hap1", []graph.NodeID{1, 2, 3}); err != nil {
		panic(err)
	}
	return g
}

func TestRoundTrip(t *testing.T) {
	g := sample()
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != 3 || got.NumEdges() != 3 {
		t.Fatalf("nodes/edges = %d/%d", got.NumNodes(), got.NumEdges())
	}
	if string(got.Seq(1)) != "ACGT" || !got.HasEdge(2, 3) {
		t.Fatal("content mismatch")
	}
	paths := got.Paths()
	if len(paths) != 1 || paths[0].Name != "hap1" || len(paths[0].Nodes) != 3 {
		t.Fatalf("paths = %+v", paths)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadSkipsUnknownAndComments(t *testing.T) {
	in := "H\tVN:Z:1.0\n# comment\nS\t1\tACGT\nW\tsome\twalk\n\nS\t2\tTT\nL\t1\t+\t2\t+\t0M\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || !g.HasEdge(1, 2) {
		t.Fatal("parse failed")
	}
}

func TestReadNonDenseIDs(t *testing.T) {
	in := "S\t10\tAA\nS\t5\tCC\nL\t5\t+\t10\t+\t0M\nP\tp\t5+,10+\t*\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// 5 → node 1, 10 → node 2 (sorted order).
	if string(g.Seq(1)) != "CC" || string(g.Seq(2)) != "AA" {
		t.Fatal("remap wrong")
	}
	if !g.HasEdge(1, 2) {
		t.Fatal("edge remap wrong")
	}
	if len(g.Paths()) != 1 || g.Paths()[0].Nodes[0] != 1 {
		t.Fatal("path remap wrong")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"S\t1\n",                      // missing sequence
		"S\tabc\tACGT\n",              // non-integer name
		"S\t1\t*\n",                   // no sequence
		"S\t1\tAA\nS\t1\tCC\n",        // duplicate
		"S\t1\tAA\nL\t1\t+\t2\t+\t0M", // unknown link target
		"S\t1\tAA\nL\t1\t-\t1\t+\t0M", // reverse strand
		"S\t1\tAA\nP\tp\t1-\t*\n",     // reverse path step
		"S\t1\tAA\nP\tp\t2+\t*\n",     // unknown path node
		"L\t1\t+\n",                   // truncated L
		"P\tp\n",                      // truncated P
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("Read(%q) accepted invalid input", in)
		}
	}
}

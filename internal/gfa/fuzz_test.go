package gfa_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"pangenomicsbench/internal/gfa"
)

// fuzzSeeds loads every testdata file as a corpus seed.
func fuzzSeeds(f *testing.F, pattern string) {
	f.Helper()
	files, err := filepath.Glob(filepath.Join("testdata", pattern))
	if err != nil {
		f.Fatal(err)
	}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
}

// FuzzRead: any input the parser accepts must yield a structurally valid
// graph that survives a Write/Read round trip unchanged.
func FuzzRead(f *testing.F) {
	fuzzSeeds(f, "*.gfa")
	f.Add([]byte("S\t1\tA\nP\tp\t1+\t*\n"))
	f.Add([]byte("S\t-3\tAC\nS\t5\tG\nL\t-3\t+\t5\t+\t0M\n"))
	f.Add([]byte("S\t2147483647\tACGT\nP\tq\t2147483647+,2147483647+\t*\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := gfa.Read(bytes.NewReader(data))
		if err != nil {
			return // rejected input: fine, as long as we didn't panic
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := gfa.Write(&buf, g); err != nil {
			t.Fatalf("write of accepted graph failed: %v", err)
		}
		back, err := gfa.Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parse of written graph failed: %v\n%s", err, buf.Bytes())
		}
		graphsEqual(t, g, back)
	})
}

// Package gfa reads and writes Graphical Fragment Assembly (GFA) v1 files,
// the interchange format every tool in the paper's pipelines consumes and
// produces (Minigraph, vg, seqwish, smoothXG, ODGI all speak GFA).
//
// The subset implemented covers S (segment), L (link) and P (path) records
// on the forward strand, which is sufficient for the directed sequence
// graphs this suite builds.
package gfa

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"pangenomicsbench/internal/graph"
)

// Write serializes g as GFA v1.
func Write(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "H\tVN:Z:1.0")
	for _, id := range g.SortedNodeIDs() {
		fmt.Fprintf(bw, "S\t%d\t%s\n", id, g.Seq(id))
	}
	for _, id := range g.SortedNodeIDs() {
		for _, to := range g.Out(id) {
			fmt.Fprintf(bw, "L\t%d\t+\t%d\t+\t0M\n", id, to)
		}
	}
	for _, p := range g.Paths() {
		var sb strings.Builder
		for i, id := range p.Nodes {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d+", id)
		}
		fmt.Fprintf(bw, "P\t%s\t%s\t*\n", p.Name, sb.String())
	}
	return bw.Flush()
}

// Read parses a GFA v1 stream into a graph. Segment names must be positive
// integers (as produced by Write and by the construction pipelines); they
// are compacted into dense node IDs preserving relative order.
func Read(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<28)

	type link struct{ from, to int }
	type path struct {
		name  string
		steps []int
	}
	segs := map[int][]byte{}
	var links []link
	var paths []path
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), "\r\n")
		if text == "" || text[0] == '#' {
			continue
		}
		fields := strings.Split(text, "\t")
		switch fields[0] {
		case "H":
			// header: ignored
		case "S":
			if len(fields) < 3 {
				return nil, fmt.Errorf("gfa: line %d: S record needs name and sequence", line)
			}
			name, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("gfa: line %d: non-integer segment name %q", line, fields[1])
			}
			if _, dup := segs[name]; dup {
				return nil, fmt.Errorf("gfa: line %d: duplicate segment %d", line, name)
			}
			if fields[2] == "*" || fields[2] == "" {
				return nil, fmt.Errorf("gfa: line %d: segment %d has no sequence", line, name)
			}
			// \r\n inside a sequence would be eaten by line trimming when the
			// graph is written and re-parsed; reject so accepted graphs
			// always round-trip.
			if strings.ContainsAny(fields[2], "\t\r\n") {
				return nil, fmt.Errorf("gfa: line %d: segment %d sequence contains control characters", line, name)
			}
			segs[name] = []byte(fields[2])
		case "L":
			if len(fields) < 5 {
				return nil, fmt.Errorf("gfa: line %d: truncated L record", line)
			}
			if fields[2] != "+" || fields[4] != "+" {
				return nil, fmt.Errorf("gfa: line %d: only forward-strand links supported", line)
			}
			from, err1 := strconv.Atoi(fields[1])
			to, err2 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("gfa: line %d: non-integer link endpoints", line)
			}
			links = append(links, link{from, to})
		case "P":
			if len(fields) < 3 {
				return nil, fmt.Errorf("gfa: line %d: truncated P record", line)
			}
			var steps []int
			for _, step := range strings.Split(fields[2], ",") {
				step = strings.TrimSpace(step)
				if step == "" {
					continue
				}
				if !strings.HasSuffix(step, "+") {
					return nil, fmt.Errorf("gfa: line %d: only forward-strand path steps supported (%q)", line, step)
				}
				id, err := strconv.Atoi(step[:len(step)-1])
				if err != nil {
					return nil, fmt.Errorf("gfa: line %d: bad path step %q", line, step)
				}
				steps = append(steps, id)
			}
			paths = append(paths, path{fields[1], steps})
		default:
			// Unknown record types (W, C, ...) are skipped.
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("gfa: %w", err)
	}

	names := make([]int, 0, len(segs))
	for n := range segs {
		names = append(names, n)
	}
	sort.Ints(names)
	remap := make(map[int]graph.NodeID, len(names))
	g := graph.New()
	for _, n := range names {
		remap[n] = g.AddNode(segs[n])
	}
	for _, l := range links {
		from, ok1 := remap[l.from]
		to, ok2 := remap[l.to]
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("gfa: link %d→%d references unknown segment", l.from, l.to)
		}
		g.AddEdge(from, to)
	}
	for _, p := range paths {
		nodes := make([]graph.NodeID, 0, len(p.steps))
		for _, s := range p.steps {
			id, ok := remap[s]
			if !ok {
				return nil, fmt.Errorf("gfa: path %q references unknown segment %d", p.name, s)
			}
			nodes = append(nodes, id)
		}
		if err := g.AddPath(p.name, nodes); err != nil {
			return nil, err
		}
	}
	return g, nil
}

package seqwish

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuilderValidation(t *testing.T) {
	if _, err := NewBuilder(nil, nil); err == nil {
		t.Fatal("empty input must be rejected")
	}
	if _, err := NewBuilder([]string{"a"}, [][]byte{nil}); err == nil {
		t.Fatal("empty sequence must be rejected")
	}
	b, err := NewBuilder([]string{"a", "b"}, [][]byte{[]byte("ACGT"), []byte("ACGT")})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddMatch(0, 0, 5, 0, 2); err == nil {
		t.Fatal("unknown sequence must be rejected")
	}
	if err := b.AddMatch(0, 3, 1, 0, 2); err == nil {
		t.Fatal("out-of-range match must be rejected")
	}
	if err := b.AddMatch(0, 0, 1, 0, 0); err == nil {
		t.Fatal("empty match must be rejected")
	}
}

func TestTranscloseIdenticalSequences(t *testing.T) {
	// Two identical sequences fully matched: every column is one closure.
	seq := []byte("ACGTACGT")
	b, err := NewBuilder([]string{"s0", "s1"}, [][]byte{seq, seq})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddMatch(0, 0, 1, 0, len(seq)); err != nil {
		t.Fatal(err)
	}
	tc := b.Transclose(nil)
	if tc.NumClosures() != len(seq) {
		t.Fatalf("closures = %d, want %d", tc.NumClosures(), len(seq))
	}
	g, err := tc.InduceGraph()
	if err != nil {
		t.Fatal(err)
	}
	// Fully matched identical sequences compact to a single node.
	if g.NumNodes() != 1 {
		t.Fatalf("nodes = %d, want 1", g.NumNodes())
	}
	for i, p := range g.Paths() {
		if got := string(g.PathSeq(p)); got != string(seq) {
			t.Fatalf("path %d sequence %q != input %q", i, got, seq)
		}
	}
}

func TestTranscloseSNPBubble(t *testing.T) {
	// Two sequences differing at one base: matched flanks, a bubble at the
	// SNP.
	s0 := []byte("AAAACGGGG")
	s1 := []byte("AAAATGGGG")
	b, err := NewBuilder([]string{"s0", "s1"}, [][]byte{s0, s1})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddMatch(0, 0, 1, 0, 4); err != nil { // left flank
		t.Fatal(err)
	}
	if err := b.AddMatch(0, 5, 1, 5, 4); err != nil { // right flank
		t.Fatal(err)
	}
	tc := b.Transclose(nil)
	// 4 matched + 4 matched + 2 SNP alleles = 10 closures.
	if tc.NumClosures() != 10 {
		t.Fatalf("closures = %d, want 10", tc.NumClosures())
	}
	g, err := tc.InduceGraph()
	if err != nil {
		t.Fatal(err)
	}
	// Left flank, two SNP nodes, right flank.
	if g.NumNodes() != 4 {
		t.Fatalf("nodes = %d, want 4 (bubble)", g.NumNodes())
	}
	stats := g.ComputeStats()
	if stats.TotalBases != 10 {
		t.Fatalf("total bases = %d, want 10", stats.TotalBases)
	}
	for i, p := range g.Paths() {
		want := [][]byte{s0, s1}[i]
		if got := string(g.PathSeq(p)); got != string(want) {
			t.Fatalf("path %d sequence %q != input %q", i, got, want)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTranscloseTransitivity(t *testing.T) {
	// Paper Fig. 4f: M0 matches S0↔S1, M1 matches S1↔S2; S2's character
	// must join the closure of S0's even without a direct match.
	b, err := NewBuilder([]string{"s0", "s1", "s2"},
		[][]byte{[]byte("AC"), []byte("AC"), []byte("AC")})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddMatch(0, 0, 1, 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.AddMatch(1, 0, 2, 0, 2); err != nil {
		t.Fatal(err)
	}
	tc := b.Transclose(nil)
	if tc.NumClosures() != 2 {
		t.Fatalf("closures = %d, want 2", tc.NumClosures())
	}
	if tc.NodeOf(b.Global(0, 0)) != tc.NodeOf(b.Global(2, 0)) {
		t.Fatal("transitive closure did not propagate S0→S2")
	}
}

func TestTranscloseNoMatches(t *testing.T) {
	b, err := NewBuilder([]string{"s0", "s1"}, [][]byte{[]byte("ACG"), []byte("TTT")})
	if err != nil {
		t.Fatal(err)
	}
	tc := b.Transclose(nil)
	if tc.NumClosures() != 6 {
		t.Fatalf("closures = %d, want 6 (no sharing)", tc.NumClosures())
	}
	g, err := tc.InduceGraph()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 {
		t.Fatalf("nodes = %d, want 2 (one per sequence)", g.NumNodes())
	}
}

func TestInduceGraphRejectsMixedBases(t *testing.T) {
	// A "match" between different bases is invalid input and must be
	// detected during induction.
	b, err := NewBuilder([]string{"s0", "s1"}, [][]byte{[]byte("A"), []byte("C")})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddMatch(0, 0, 1, 0, 1); err != nil {
		t.Fatal(err)
	}
	tc := b.Transclose(nil)
	if _, err := tc.InduceGraph(); err == nil {
		t.Fatal("mixed-base closure must be rejected")
	}
}

// naiveClosures computes closures by brute-force union over all match pairs.
func naiveClosures(total int64, matches []matchRec) int {
	parent := make([]int, total)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, m := range matches {
		for i := int64(0); i < m.n; i++ {
			a, b := find(int(m.a+i)), find(int(m.b+i))
			if a != b {
				parent[a] = b
			}
		}
	}
	roots := map[int]bool{}
	for i := range parent {
		roots[find(i)] = true
	}
	return len(roots)
}

func TestTranscloseMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nSeq := 2 + rng.Intn(3)
		names := make([]string, nSeq)
		seqs := make([][]byte, nSeq)
		base := make([]byte, 10+rng.Intn(20))
		for i := range base {
			base[i] = "ACGT"[rng.Intn(4)]
		}
		for i := range seqs {
			names[i] = string(rune('a' + i))
			seqs[i] = base // identical so any aligned positions agree
		}
		b, err := NewBuilder(names, seqs)
		if err != nil {
			return false
		}
		for k := 0; k < 4; k++ {
			sa, sb := rng.Intn(nSeq), rng.Intn(nSeq)
			n := 1 + rng.Intn(5)
			pa := rng.Intn(len(base) - n + 1)
			// Same offset in both so the bases agree (identical seqs).
			if err := b.AddMatch(sa, pa, sb, pa, n); err != nil {
				return false
			}
		}
		tc := b.Transclose(nil)
		return tc.NumClosures() == naiveClosures(b.Total(), b.matches)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPathRoundTripRandom(t *testing.T) {
	// The key induction invariant: every input sequence must be exactly
	// recoverable from its embedded path.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		base := make([]byte, 30+rng.Intn(50))
		for i := range base {
			base[i] = "ACGT"[rng.Intn(4)]
		}
		// Three "haplotypes": identical to base (matches are exact, so we
		// simulate variation by matching only sub-ranges).
		names := []string{"h0", "h1", "h2"}
		seqs := [][]byte{base, base, base}
		b, err := NewBuilder(names, seqs)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 6; k++ {
			n := 1 + rng.Intn(10)
			p := rng.Intn(len(base) - n + 1)
			sa, sb := rng.Intn(3), rng.Intn(3)
			if err := b.AddMatch(sa, p, sb, p, n); err != nil {
				t.Fatal(err)
			}
		}
		g, err := b.Transclose(nil).InduceGraph()
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range g.Paths() {
			if got := string(g.PathSeq(p)); got != string(seqs[i]) {
				t.Fatalf("trial %d: path %d round trip failed", trial, i)
			}
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

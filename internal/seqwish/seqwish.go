// Package seqwish implements the transclosure (TC) kernel and graph
// induction of the PGGB pipeline (the paper's [21]): given input sequences
// and their pairwise alignments, the transclosure maps every set of
// transitively-matched characters to one pangenome graph node, then the
// induced graph is compacted and the input sequences are threaded through it
// as paths. The kernel exercises the implicit interval tree, union-find,
// the atomic bitvector and a large sort — the heterogeneous compute pattern
// §5.2 credits for TC's high IPC.
package seqwish

import (
	"fmt"

	"pangenomicsbench/internal/bio"
	"pangenomicsbench/internal/dsu"
	"pangenomicsbench/internal/graph"
	"pangenomicsbench/internal/iitree"
	"pangenomicsbench/internal/perf"
)

// Builder accumulates input sequences and match intervals, then runs the
// transclosure.
type Builder struct {
	seqs    [][]byte
	names   []string
	offsets []int64 // global offset of each sequence
	total   int64

	fwd *iitree.Tree // intervals of sequence A sides, payload → match id
	rev *iitree.Tree // intervals of sequence B sides
	// matches stores (aStart, bStart, len) in global coordinates.
	matches []matchRec
}

type matchRec struct {
	a, b int64
	n    int64
}

// NewBuilder starts a builder over the named sequences.
func NewBuilder(names []string, seqs [][]byte) (*Builder, error) {
	if len(names) != len(seqs) || len(seqs) == 0 {
		return nil, fmt.Errorf("seqwish: need equal non-empty name and sequence lists")
	}
	b := &Builder{seqs: seqs, names: names, fwd: iitree.New(), rev: iitree.New()}
	for _, s := range seqs {
		if len(s) == 0 {
			return nil, fmt.Errorf("seqwish: empty input sequence")
		}
		b.offsets = append(b.offsets, b.total)
		b.total += int64(len(s))
	}
	return b, nil
}

// Total returns the global character-space size.
func (b *Builder) Total() int64 { return b.total }

// Global converts (sequence index, position) to a global offset.
func (b *Builder) Global(seq, pos int) int64 { return b.offsets[seq] + int64(pos) }

// AddMatch records an exact match of length n between seqA[posA:] and
// seqB[posB:]. Matches from an all-to-all aligner feed this (PAF-style).
func (b *Builder) AddMatch(seqA, posA, seqB, posB, n int) error {
	if seqA < 0 || seqA >= len(b.seqs) || seqB < 0 || seqB >= len(b.seqs) {
		return fmt.Errorf("seqwish: match references unknown sequence (%d, %d)", seqA, seqB)
	}
	if posA < 0 || posB < 0 || posA+n > len(b.seqs[seqA]) || posB+n > len(b.seqs[seqB]) {
		return fmt.Errorf("seqwish: match out of range")
	}
	if n <= 0 {
		return fmt.Errorf("seqwish: empty match")
	}
	ga, gb := b.Global(seqA, posA), b.Global(seqB, posB)
	id := int64(len(b.matches))
	b.matches = append(b.matches, matchRec{ga, gb, int64(n)})
	b.fwd.Add(ga, ga+int64(n), id)
	b.rev.Add(gb, gb+int64(n), id)
	return nil
}

// TC is the result of the transclosure: a dense node ID per global
// character.
type TC struct {
	builder *Builder
	nodeOf  []int32
	nodes   int32
}

// NumClosures returns the number of transitive closure sets (pre-compaction
// graph nodes).
func (t *TC) NumClosures() int { return int(t.nodes) }

// NodeOf returns the closure ID of a global character.
func (t *TC) NodeOf(g int64) int32 { return t.nodeOf[g] }

// Transclose runs the TC kernel: it sweeps the global character space; for
// each unvisited character it collects the full transitive closure by
// breadth-first expansion through interval-tree match lookups, marking
// members in an atomic bitvector and assigning them one node ID.
func (b *Builder) Transclose(probe *perf.Probe) *TC {
	b.fwd.Build()
	b.rev.Build()
	tc := &TC{builder: b, nodeOf: make([]int32, b.total)}
	seen := dsu.NewAtomicBitvector(int(b.total))
	uf := dsu.New(int(b.total))
	as := perf.NewAddrSpace()
	nodeBase := as.Alloc(int(b.total) * 4)

	queue := make([]int64, 0, 128)
	for g := int64(0); g < b.total; g++ {
		probe.Load(uintptr(nodeBase)+uintptr(g/8), 1)
		if !seen.Set(int(g)) {
			probe.TakeBranch(0xf0, false)
			continue
		}
		probe.TakeBranch(0xf0, true)
		node := tc.nodes
		tc.nodes++
		queue = queue[:0]
		queue = append(queue, g)
		tc.nodeOf[g] = node
		probe.Store(uintptr(nodeBase)+uintptr(g*4), 4)
		for len(queue) > 0 {
			q := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			// Every match whose A side covers q links to a B-side char,
			// and vice versa (the transitive property of Fig. 4f).
			expand := func(from, to int64) {
				partner := to + (q - from)
				probe.Op(perf.ScalarInt, 3)
				if seen.Set(int(partner)) {
					probe.TakeBranch(0xf1, true)
					uf.Union(int(q), int(partner))
					tc.nodeOf[partner] = node
					probe.Store(uintptr(nodeBase)+uintptr(partner*4), 4)
					queue = append(queue, partner)
				} else {
					probe.TakeBranch(0xf1, false)
				}
			}
			b.fwd.Overlap(q, q+1, probe, func(iv iitree.Interval) bool {
				m := b.matches[iv.Data]
				expand(m.a, m.b)
				return true
			})
			b.rev.Overlap(q, q+1, probe, func(iv iitree.Interval) bool {
				m := b.matches[iv.Data]
				expand(m.b, m.a)
				return true
			})
		}
	}
	return tc
}

// InduceGraph emits the pangenome graph: one node per closure, compacted so
// runs of closures that always follow each other become single nodes, with
// the input sequences embedded as paths.
func (t *TC) InduceGraph() (*graph.Graph, error) {
	b := t.builder
	n := int(t.nodes)
	// Per-closure representative base (all members match, so bases agree).
	baseOf := make([]byte, n)
	for g := int64(0); g < b.total; g++ {
		seqIdx, pos := b.locate(g)
		c := b.seqs[seqIdx][pos]
		id := t.nodeOf[g]
		if baseOf[id] == 0 {
			baseOf[id] = c
		} else if bio.Code(baseOf[id]) != bio.Code(c) {
			return nil, fmt.Errorf("seqwish: closure %d mixes bases %q and %q (non-exact match input?)", id, baseOf[id], c)
		}
	}

	// Successor/predecessor multiplicity per closure across all sequences.
	const (
		noneNode  = -1
		multiNode = -2
	)
	succ := make([]int32, n)
	pred := make([]int32, n)
	for i := range succ {
		succ[i], pred[i] = noneNode, noneNode
	}
	note := func(arr []int32, from, to int32) {
		switch arr[from] {
		case noneNode:
			arr[from] = to
		case to:
		default:
			arr[from] = multiNode
		}
	}
	for si := range b.seqs {
		prev := int32(noneNode)
		for pos := range b.seqs[si] {
			id := t.nodeOf[b.Global(si, pos)]
			if prev != noneNode {
				note(succ, prev, id)
				note(pred, id, prev)
			} else {
				note(pred, id, multiNode) // sequence start breaks a chain
			}
			prev = id
		}
		if prev != noneNode {
			note(succ, prev, multiNode) // sequence end breaks a chain
		}
	}

	// Chain heads: closures that cannot be merged into their predecessor.
	isHead := make([]bool, n)
	for id := 0; id < n; id++ {
		p := pred[id]
		if p < 0 || succ[p] != int32(id) || p == int32(id) {
			isHead[id] = true
		}
	}

	// Build compacted nodes by walking chains from heads.
	g := graph.New()
	nodeID := make([]graph.NodeID, n)
	offsetIn := make([]int, n) // base offset of the closure inside its node
	for id := 0; id < n; id++ {
		if !isHead[id] {
			continue
		}
		var seq []byte
		cur := int32(id)
		for {
			nodeIdx := len(seq)
			seq = append(seq, baseOf[cur])
			offsetIn[cur] = nodeIdx
			nxt := succ[cur]
			if nxt < 0 || isHead[nxt] || nxt == cur {
				break
			}
			cur = nxt
		}
		gid := g.AddNode(seq)
		// Mark membership.
		cur = int32(id)
		for {
			nodeID[cur] = gid
			nxt := succ[cur]
			if nxt < 0 || isHead[nxt] || nxt == cur {
				break
			}
			cur = nxt
		}
	}

	// Edges and paths from the sequences.
	for si := range b.seqs {
		var walk []graph.NodeID
		var prevNode graph.NodeID
		for pos := range b.seqs[si] {
			id := t.nodeOf[b.Global(si, pos)]
			nd := nodeID[id]
			// A sequence always enters a compacted node at its head closure
			// (compaction merges a closure only when every occurrence is
			// preceded by the same unique closure).
			if offsetIn[id] == 0 {
				if prevNode != 0 {
					g.AddEdge(prevNode, nd)
				}
				walk = append(walk, nd)
			}
			prevNode = nd
		}
		if err := g.AddPath(b.names[si], walk); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// locate converts a global offset back to (sequence index, position).
func (b *Builder) locate(g int64) (int, int) {
	lo, hi := 0, len(b.offsets)
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if b.offsets[mid] <= g {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, int(g - b.offsets[lo])
}

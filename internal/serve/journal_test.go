package serve

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"pangenomicsbench/internal/build"
	"pangenomicsbench/internal/store"
)

func TestJournalBeginDoneReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.wal")
	j, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	reqA := pggbRequest([]string{"a", "b"})
	reqB := pggbRequest([]string{"c", "d", "e"})
	seqA, err := j.begin(reqA)
	if err != nil {
		t.Fatal(err)
	}
	seqB, err := j.begin(reqB)
	if err != nil {
		t.Fatal(err)
	}
	if seqA == seqB {
		t.Fatalf("duplicate sequence %d", seqA)
	}
	j.done(seqA)
	j.Close() // crash before B completes

	j2, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got := j2.Unfinished()
	if len(got) != 1 {
		t.Fatalf("unfinished = %d requests, want 1", len(got))
	}
	if !reflect.DeepEqual(got[0].Cohort, reqB.Cohort) || got[0].Tool != reqB.Tool {
		t.Fatalf("unfinished request = %+v, want cohort %v", got[0], reqB.Cohort)
	}
	// The sequence counter continues past replayed history — no reuse.
	seqC, err := j2.begin(pggbRequest([]string{"f", "g"}))
	if err != nil {
		t.Fatal(err)
	}
	if seqC <= seqB {
		t.Fatalf("sequence reused: new %d <= replayed %d", seqC, seqB)
	}
	// Retiring the recovered begin clears it for the next open.
	j2.done(seqB)
	j2.done(seqC)
}

func TestJournalTornTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.wal")
	j, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := j.begin(pggbRequest([]string{"a", "b"}))
	if err != nil {
		t.Fatal(err)
	}
	j.done(seq)
	j.Close()

	// Crash mid-append: half a frame of garbage at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xFF, 0x13}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	defer j2.Close()
	if n := len(j2.Unfinished()); n != 0 {
		t.Fatalf("unfinished = %d, want 0 (the intact prefix was fully retired)", n)
	}
}

func TestJournalRejectsForeignRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.wal")
	w, err := store.OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte(`{"op":"explode","seq":1}`)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, err := OpenJournal(path, nil); err == nil {
		t.Fatal("journal with unknown op opened")
	}

	path2 := filepath.Join(t.TempDir(), "serve.wal")
	w2, err := store.OpenWAL(path2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append([]byte("not json at all")); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	if _, err := OpenJournal(path2, nil); err == nil {
		t.Fatal("journal with undecodable record opened")
	}
}

// TestServiceJournalsBuilds: every leader Build leaves a begin+done pair, so
// a clean shutdown replays to an empty unfinished set.
func TestServiceJournalsBuilds(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.wal")
	j, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	names, seqs := testCatalog(t, 3000, 4)
	s := testService(t, Config{Workers: 2, Journal: j}, names, seqs)
	if _, err := s.Build(context.Background(), pggbRequest(names[:3])); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Build(context.Background(), pggbRequest(names[:4])); err != nil {
		t.Fatal(err)
	}
	j.Close()

	recs, torn, err := store.ReplayWAL(path)
	if err != nil || torn {
		t.Fatalf("replay: torn=%v err=%v", torn, err)
	}
	if len(recs) != 4 {
		t.Fatalf("journal holds %d records, want 4 (2×begin+done)", len(recs))
	}
	j2, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if n := len(j2.Unfinished()); n != 0 {
		t.Fatalf("unfinished after clean shutdown = %d, want 0", n)
	}
}

// TestRecoverReplaysUnfinished: a begin without a done (crash mid-build) is
// re-executed by Recover, retired, and absent on the next open.
func TestRecoverReplaysUnfinished(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.wal")
	names, seqs := testCatalog(t, 3000, 4)

	// "Process 1" accepts a request and dies before finishing it.
	j1, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j1.begin(pggbRequest(names[:3])); err != nil {
		t.Fatal(err)
	}
	j1.Close()

	// "Process 2" recovers: the request is re-enqueued and built.
	j2, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	var rebuilt [][]string
	s := testService(t, Config{
		Workers: 2,
		Journal: j2,
		OnResult: func(req Request, _ *build.Result) {
			rebuilt = append(rebuilt, req.Cohort)
		},
	}, names, seqs)
	n, err := s.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || len(rebuilt) != 1 || !reflect.DeepEqual(rebuilt[0], names[:3]) {
		t.Fatalf("recover replayed %d (%v), want the one crash-interrupted cohort %v", n, rebuilt, names[:3])
	}
	j2.Close()

	j3, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if n := len(j3.Unfinished()); n != 0 {
		t.Fatalf("unfinished after recovery = %d, want 0", n)
	}

	// A service with no journal recovers trivially.
	s2 := testService(t, Config{Workers: 1}, names, seqs)
	if n, err := s2.Recover(context.Background()); n != 0 || err != nil {
		t.Fatalf("journal-less recover = (%d, %v), want (0, nil)", n, err)
	}
}

func TestFairShareWorkers(t *testing.T) {
	cases := []struct{ procs, slots, want int }{
		{8, 4, 2},
		{8, 3, 3},
		{16, 5, 4},
		{4, 8, 1},
		{1, 4, 1},
		{8, 0, 8}, // no slot bound: the request gets every core
		{0, 4, 1}, // degenerate procs still yields a worker
	}
	for _, c := range cases {
		if got := fairShareWorkers(c.procs, c.slots); got != c.want {
			t.Errorf("fairShareWorkers(%d, %d) = %d, want %d", c.procs, c.slots, got, c.want)
		}
	}
}

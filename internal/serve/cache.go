package serve

import (
	"container/list"
	"context"
	"sync"

	"pangenomicsbench/internal/build"
	"pangenomicsbench/internal/perf"
)

// pairKey identifies one canonical pair-match computation: the two assembly
// names in lexicographic order plus the (w,k)-minimizer scheme. Requests
// whose cohorts overlap hit the same keys regardless of cohort ordering.
type pairKey struct {
	a, b string // a < b lexicographically
	k, w int
}

// entryState tracks a cache entry through its lifecycle.
type entryState int

const (
	statePending entryState = iota // owner is computing; ready not yet closed
	stateReady                     // blocks/stats valid
	stateFailed                    // compute failed; entry removed from map
)

// pairEntry is one cached canonical pair-match result. blocks are stored in
// canonical orientation (SeqA = 0 names key.a, SeqB = 1 names key.b) and are
// never mutated after publish; readers remap copies into cohort indices.
type pairEntry struct {
	key    pairKey
	state  entryState
	ready  chan struct{} // closed on publish or failure
	err    error
	blocks []build.MatchBlock
	stats  build.PairStats
	cost   int // approximate bytes held
	refs   int // pinned by in-flight requests; >0 blocks eviction
	elem   *list.Element
}

// pairCache is a size-bounded, reference-counted LRU of canonical pair-match
// results with per-pair single-flight: concurrent requests needing the same
// uncomputed pair share one execution. Entries pinned by in-flight requests
// (refs > 0) are never evicted, so the cache can transiently exceed its
// capacity when every resident entry is in use.
type pairCache struct {
	mu        sync.Mutex
	capacity  int
	size      int
	entries   map[pairKey]*pairEntry
	lru       *list.List // front = most recent; holds only unpinned ready entries
	metrics   *perf.Metrics
	hits      int64
	misses    int64
	evictions int64
}

// matchBlockCost approximates the bytes one MatchBlock holds (5 ints).
const matchBlockCost = 40

func newPairCache(capacity int, metrics *perf.Metrics) *pairCache {
	return &pairCache{
		capacity: capacity,
		entries:  map[pairKey]*pairEntry{},
		lru:      list.New(),
		metrics:  metrics,
	}
}

// acquire returns the entry for key, computing it with compute on a miss.
// The returned entry is pinned: the caller must release it once done reading
// its blocks. hit reports whether the result came from the cache (including
// waiting on another request's in-flight computation of the same pair).
func (c *pairCache) acquire(ctx context.Context, key pairKey, compute func() ([]build.MatchBlock, build.PairStats, error)) (e *pairEntry, hit bool, err error) {
	for {
		c.mu.Lock()
		e = c.entries[key]
		if e == nil {
			// Miss: become the owner of this pair's computation.
			e = &pairEntry{key: key, state: statePending, ready: make(chan struct{}), refs: 1}
			c.entries[key] = e
			c.misses++
			c.mu.Unlock()
			c.metrics.Add("serve.pair_misses", 1)

			blocks, stats, cerr := compute()
			c.mu.Lock()
			if cerr != nil {
				e.state = stateFailed
				e.err = cerr
				delete(c.entries, key)
				close(e.ready)
				c.mu.Unlock()
				return nil, false, cerr
			}
			e.state = stateReady
			e.blocks = blocks
			e.stats = stats
			e.cost = matchBlockCost*len(blocks) + 64
			c.size += e.cost
			c.evict()
			close(e.ready)
			c.mu.Unlock()
			return e, false, nil
		}

		// Hit (ready) or join (pending): pin so the entry outlives any
		// eviction pressure while we wait or read.
		e.refs++
		if e.elem != nil {
			c.lru.Remove(e.elem)
			e.elem = nil
		}
		c.mu.Unlock()

		select {
		case <-e.ready:
		case <-ctx.Done():
			c.release(e)
			return nil, false, ctx.Err()
		}
		if e.state == stateReady {
			c.mu.Lock()
			c.hits++
			c.mu.Unlock()
			c.metrics.Add("serve.pair_hits", 1)
			return e, true, nil
		}
		// The owner failed and removed the entry; retry as a fresh owner
		// (a second failure surfaces the error to this caller directly).
		c.release(e)
	}
}

// release unpins an entry. The last release of a ready, still-resident entry
// makes it evictable by pushing it to the LRU front.
func (c *pairCache) release(e *pairEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e.refs--
	if e.refs > 0 || e.state != stateReady {
		return
	}
	if c.entries[e.key] != e {
		return // already evicted (or replaced) while pinned
	}
	e.elem = c.lru.PushFront(e)
	c.evict()
}

// evict drops least-recently-used unpinned entries until the cache fits its
// capacity. Called with c.mu held.
func (c *pairCache) evict() {
	for c.size > c.capacity {
		back := c.lru.Back()
		if back == nil {
			return // everything resident is pinned
		}
		e := back.Value.(*pairEntry)
		c.lru.Remove(back)
		e.elem = nil
		delete(c.entries, e.key)
		c.size -= e.cost
		c.evictions++
		c.metrics.Add("serve.evictions", 1)
	}
}

// counters returns (hits, misses, evictions) so far.
func (c *pairCache) counters() (hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}

// resident returns the number of cached entries and their total cost.
func (c *pairCache) resident() (entries, bytes int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries), c.size
}

// Package serve wraps the graph-construction pipelines (build.PGGB,
// build.MinigraphCactus) behind a request API — the serve-mode subsystem of
// the ROADMAP's production north star. A Service holds a catalog of named
// assemblies and executes build requests for cohorts drawn from it on a
// bounded worker pool, with three forms of work sharing:
//
//   - Per-pair caching: PGGB's all-vs-all matching is decomposed into
//     canonical (name-sorted) pairs whose results live in a size-bounded,
//     reference-counted LRU, so repeated builds of overlapping cohorts skip
//     the redundant quadratic matching work.
//   - Pair single-flight: concurrent requests needing the same uncomputed
//     pair share one execution.
//   - Request coalescing: identical in-flight requests (same tool, cohort
//     and config) share one build.
//
// Every request is cancellable and deadline-bounded through a
// context.Context threaded into the pipelines, and service activity
// (requests, cache hits/misses, evictions, in-flight, per-stage latency) is
// recorded in a perf.Metrics set.
package serve

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"pangenomicsbench/internal/build"
	"pangenomicsbench/internal/fleet"
	"pangenomicsbench/internal/obs"
	"pangenomicsbench/internal/perf"
)

// Tool selects the construction pipeline of a request.
type Tool string

// Supported construction tools.
const (
	ToolPGGB Tool = "pggb"
	ToolMC   Tool = "mc"
)

// Config parameterizes a Service.
type Config struct {
	// Workers bounds concurrently executing builds; ≤0 uses GOMAXPROCS.
	Workers int
	// PairWorkers bounds one PGGB request's concurrent pair computations;
	// ≤0 uses GOMAXPROCS.
	PairWorkers int
	// CacheCapacity bounds the pair-match cache in bytes; ≤0 uses 64 MiB.
	CacheCapacity int
	// DefaultTimeout bounds requests that don't set their own Timeout;
	// ≤0 means no default deadline.
	DefaultTimeout time.Duration
	// Metrics receives service counters and latencies; nil disables
	// recording (a fresh set is NOT created, matching perf's nil rule).
	Metrics *perf.Metrics
	// Tracer records one span tree per build request — admission wait,
	// execution, per-stage construction breakdown; nil disables tracing.
	// With a Fleet configured, worker-side spans link under the build trace
	// and ride back on the match responses, so one trace spans the whole
	// fleet.
	Tracer *obs.Tracer
	// Profiler, when set, captures a CPU profile around every build and
	// keeps the ones that ran past its threshold, named after the build's
	// trace id (the trace carries a cpu_profile attribute pointing at the
	// kept file). Nil disables continuous profiling.
	Profiler *obs.Profiler
	// OnResult, when set, observes every successfully built result (leader
	// executions only — coalesced joiners share the leader's result and do
	// not re-fire it). The map-serve tier uses it to publish a finished
	// cohort rebuild as a fresh query snapshot. It runs synchronously on the
	// building goroutine, while the build slot is still held, so it must not
	// call back into Build.
	OnResult func(Request, *build.Result)
	// Journal, when set, write-ahead-logs every accepted leader request
	// (begin before the build slot is taken, done when the build completes),
	// so a restarted coordinator can Recover crash-interrupted cohorts.
	// Coalesced joiners are not journaled — they share the leader's record.
	Journal *Journal
	// Fleet, when set, routes PGGB pair matching through a multi-node
	// construction fleet instead of the in-process pair cache: each pair is
	// dispatched to the worker owning its canonical hash shard, and workers'
	// shard caches replace the local one. Set Fleet before registering
	// assemblies — RegisterAssembly forwards the catalog to the fleet so
	// workers can be config-pushed. Results are byte-identical to the local
	// path per the fleet determinism contract. MC requests are unaffected.
	Fleet *fleet.Coordinator
}

// Request is one graph-construction job: a tool, a cohort of registered
// assembly names, and the tool's config. Timeout (when > 0) bounds this
// request's execution.
type Request struct {
	Tool    Tool
	Cohort  []string
	PGGB    build.PGGBConfig
	MC      build.MCConfig
	Timeout time.Duration
}

// Response is the outcome of one request.
type Response struct {
	Result *build.Result
	// PairHits / PairMisses count this request's pair-match cache outcomes
	// (PGGB only; zero for MC).
	PairHits, PairMisses int
	// Coalesced reports that this request shared an identical in-flight
	// request's execution instead of running its own.
	Coalesced bool
	// QueueWait is the time spent waiting for a build slot; Exec the build
	// execution time.
	QueueWait, Exec time.Duration
	// TraceID identifies this request's trace ("" with tracing disabled);
	// /traces?trace_id= on the admin endpoint looks it up directly. A
	// coalesced response carries the leader's trace id — the trace that
	// actually holds the execution detail.
	TraceID string
}

// flight is one in-flight request execution that identical requests join.
type flight struct {
	done chan struct{}
	resp *Response
	err  error
}

// Service executes build requests over a catalog of named assemblies.
type Service struct {
	cfg     Config
	metrics *perf.Metrics
	tracer  *obs.Tracer
	cache   *pairCache
	slots   chan struct{}

	mu       sync.Mutex
	catalog  map[string][]byte
	inflight map[string]*flight

	chaos chaos
}

// New returns a Service with the given config.
func New(cfg Config) *Service {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.PairWorkers <= 0 {
		cfg.PairWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.CacheCapacity <= 0 {
		cfg.CacheCapacity = 64 << 20
	}
	return &Service{
		cfg:      cfg,
		metrics:  cfg.Metrics,
		tracer:   cfg.Tracer,
		cache:    newPairCache(cfg.CacheCapacity, cfg.Metrics),
		slots:    make(chan struct{}, cfg.Workers),
		catalog:  map[string][]byte{},
		inflight: map[string]*flight{},
	}
}

// RegisterAssembly adds one named assembly to the catalog. Names must be
// unique and sequences non-empty.
func (s *Service) RegisterAssembly(name string, seq []byte) error {
	if name == "" {
		return fmt.Errorf("serve: empty assembly name")
	}
	if strings.ContainsAny(name, "\x00\n\t") {
		return fmt.Errorf("serve: assembly name %q contains reserved characters", name)
	}
	if len(seq) == 0 {
		return fmt.Errorf("serve: assembly %q has an empty sequence", name)
	}
	s.mu.Lock()
	if _, dup := s.catalog[name]; dup {
		s.mu.Unlock()
		return fmt.Errorf("serve: assembly %q already registered", name)
	}
	s.catalog[name] = seq
	s.mu.Unlock()
	if s.cfg.Fleet != nil {
		return s.cfg.Fleet.RegisterAssembly(name, seq)
	}
	return nil
}

// RegisterAssemblies registers parallel name/sequence slices.
func (s *Service) RegisterAssemblies(names []string, seqs [][]byte) error {
	if len(names) != len(seqs) {
		return fmt.Errorf("serve: %d names but %d sequences", len(names), len(seqs))
	}
	for i := range names {
		if err := s.RegisterAssembly(names[i], seqs[i]); err != nil {
			return err
		}
	}
	return nil
}

// Metrics returns a snapshot of the service's metric set (empty when the
// service was configured without one).
func (s *Service) Metrics() perf.MetricsSnapshot { return s.metrics.Snapshot() }

// CacheCounters returns the lifetime pair-cache counters
// (hits, misses, evictions).
func (s *Service) CacheCounters() (hits, misses, evictions int64) {
	return s.cache.counters()
}

// CacheResident returns the pair-cache occupancy (entries, bytes).
func (s *Service) CacheResident() (entries, bytes int) { return s.cache.resident() }

// resolve maps a cohort onto catalog sequences.
func (s *Service) resolve(cohort []string) ([][]byte, error) {
	if len(cohort) < 2 {
		return nil, fmt.Errorf("serve: cohort needs ≥2 assemblies (got %d)", len(cohort))
	}
	seen := map[string]bool{}
	seqs := make([][]byte, len(cohort))
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, name := range cohort {
		if seen[name] {
			return nil, fmt.Errorf("serve: assembly %q repeated in cohort", name)
		}
		seen[name] = true
		seq, ok := s.catalog[name]
		if !ok {
			return nil, fmt.Errorf("serve: assembly %q not registered", name)
		}
		seqs[i] = seq
	}
	return seqs, nil
}

// fingerprint identifies a request for coalescing: tool, cohort and the
// tool's full config.
func (r Request) fingerprint() string {
	switch r.Tool {
	case ToolPGGB:
		return fmt.Sprintf("pggb\x00%s\x00%+v", strings.Join(r.Cohort, "\x00"), r.PGGB)
	case ToolMC:
		return fmt.Sprintf("mc\x00%s\x00%+v", strings.Join(r.Cohort, "\x00"), r.MC)
	}
	return fmt.Sprintf("%s\x00%s", r.Tool, strings.Join(r.Cohort, "\x00"))
}

// Build executes one request. Identical in-flight requests share a single
// execution (the joiner's Response reports Coalesced and shares the leader's
// Result). ctx cancels or deadline-bounds the request; req.Timeout (or the
// service default) adds a per-request deadline on top.
func (s *Service) Build(ctx context.Context, req Request) (*Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if req.Tool != ToolPGGB && req.Tool != ToolMC {
		return nil, fmt.Errorf("serve: unknown tool %q", req.Tool)
	}
	if s.chaos.rejectBuilds.Load() {
		s.metrics.Add("serve.reject_chaos", 1)
		return nil, ErrChaosReject
	}
	seqs, err := s.resolve(req.Cohort)
	if err != nil {
		return nil, err
	}
	s.metrics.Add("serve.requests", 1)
	sp := s.tracer.StartRoot("serve.build")
	sp.Set("tool", string(req.Tool))
	sp.SetInt("cohort_size", int64(len(req.Cohort)))
	defer sp.End()

	// Request coalescing: join an identical in-flight execution if any.
	fp := req.fingerprint()
	s.mu.Lock()
	if f := s.inflight[fp]; f != nil {
		s.mu.Unlock()
		s.metrics.Add("serve.coalesced", 1)
		sp.Set("coalesced", "true")
		select {
		case <-f.done:
		case <-ctx.Done():
			sp.Error(ctx.Err())
			return nil, ctx.Err()
		}
		if f.err != nil {
			sp.Error(f.err)
			return nil, f.err
		}
		joined := *f.resp
		joined.Coalesced = true
		return &joined, nil
	}
	f := &flight{done: make(chan struct{})}
	s.inflight[fp] = f
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.inflight, fp)
		s.mu.Unlock()
		close(f.done)
	}()

	// Write-ahead log the accepted leader request: begin survives a crash
	// mid-build, done retires it once the outcome (either way) is known.
	if s.cfg.Journal != nil {
		seq, err := s.cfg.Journal.begin(req)
		if err != nil {
			sp.Error(err)
			return nil, err
		}
		defer s.cfg.Journal.done(seq)
	}

	f.resp, f.err = s.execute(ctx, req, seqs, sp)
	sp.Error(f.err)
	return f.resp, f.err
}

// execute runs one non-coalesced request: waits for a build slot, applies
// the request deadline, and dispatches to the tool pipeline.
func (s *Service) execute(ctx context.Context, req Request, seqs [][]byte, sp *obs.Span) (*Response, error) {
	t0 := time.Now()
	select {
	case s.slots <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-s.slots }()
	resp := &Response{QueueWait: time.Since(t0), TraceID: sp.TraceID().String()}
	s.metrics.Observe("serve.queue_wait", resp.QueueWait)
	sp.Stage("admission", t0, resp.QueueWait)

	timeout := req.Timeout
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	s.metrics.GaugeAdd("serve.inflight", 1)
	defer s.metrics.GaugeAdd("serve.inflight", -1)

	bs := sp.Child("build")
	// Thread the build span through ctx so downstream spans — fleet dispatch
	// children and the worker subtrees they graft on — parent under it.
	bctx := obs.ContextWithSpan(ctx, bs)
	stopProf := s.cfg.Profiler.Start()
	t1 := time.Now()
	var res *build.Result
	var err error
	switch req.Tool {
	case ToolPGGB:
		res, err = s.buildPGGB(bctx, req, seqs, resp)
	case ToolMC:
		mc := req.MC
		if mc.Workers <= 0 {
			// Fair-share default: an unset per-request pool takes this
			// request's slice of the cores, not the whole machine — with
			// cfg.Workers build slots running concurrently, each MC build's
			// chunk-mapping pool gets GOMAXPROCS/cfg.Workers goroutines
			// instead of every tenant oversubscribing to GOMAXPROCS.
			// Results are worker-count-invariant, so this only shifts time.
			mc.Workers = fairShareWorkers(runtime.GOMAXPROCS(0), s.cfg.Workers)
		}
		res, err = build.MinigraphCactus(bctx, req.Cohort, seqs, mc, nil)
	}
	resp.Exec = time.Since(t1)
	s.metrics.Observe("serve.exec", resp.Exec)
	// Slow-build profiling: the capture is kept only when the build ran past
	// the profiler's threshold; the trace links to the profile file.
	if path := stopProf(resp.Exec, sp.TraceID().String()); path != "" {
		sp.Set("cpu_profile", path)
		s.metrics.Add("serve.profiles_kept", 1)
	}
	if err != nil {
		s.metrics.Add("serve.errors", 1)
		bs.Error(err)
		bs.End()
		return nil, err
	}
	// Construction-stage children from the pipeline's breakdown: the stages
	// ran back to back inside the build span, so their starts chain from t1.
	bd := res.Breakdown
	stageStart := t1
	for _, st := range []struct {
		name string
		d    time.Duration
	}{
		{"alignment", bd.Alignment},
		{"induction", bd.Induction},
		{"polishing", bd.Polishing},
		{"layout", bd.Layout},
	} {
		bs.Stage(st.name, stageStart, st.d)
		stageStart = stageStart.Add(st.d)
	}
	bs.End()
	s.metrics.Observe("serve.stage.alignment", bd.Alignment)
	s.metrics.Observe("serve.stage.induction", bd.Induction)
	s.metrics.Observe("serve.stage.polishing", bd.Polishing)
	s.metrics.Observe("serve.stage.layout", bd.Layout)
	resp.Result = res
	if s.cfg.OnResult != nil {
		s.cfg.OnResult(req, res)
	}
	return resp, nil
}

// fairShareWorkers splits procs cores across slots concurrent builds,
// rounding up so small machines still parallelize (never below 1).
func fairShareWorkers(procs, slots int) int {
	if slots < 1 {
		slots = 1
	}
	n := (procs + slots - 1) / slots
	if n < 1 {
		n = 1
	}
	return n
}

// buildPGGB runs the PGGB pipeline with the alignment stage routed through
// the pair cache: every unordered cohort pair resolves to a canonical
// (name-sorted) PairMatches result that is computed at most once while
// cached, then remapped into this cohort's indices. The resulting block set
// — and therefore the built graph — is byte-identical whether each pair was
// computed fresh or reused.
func (s *Service) buildPGGB(ctx context.Context, req Request, seqs [][]byte, resp *Response) (*build.Result, error) {
	cfg := req.PGGB
	names := req.Cohort
	type pairJob struct{ i, j int }
	var jobs []pairJob
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			jobs = append(jobs, pairJob{i, j})
		}
	}

	t0 := time.Now()
	results := make([][]build.MatchBlock, len(jobs))
	stats := make([]build.PairStats, len(jobs))
	hits := make([]bool, len(jobs))
	errs := make([]error, len(jobs))

	workers := s.cfg.PairWorkers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				ji := next
				next++
				mu.Unlock()
				if ji >= len(jobs) || ctx.Err() != nil {
					return
				}
				job := jobs[ji]
				results[ji], stats[ji], hits[ji], errs[ji] =
					s.matchPair(ctx, names[job.i], seqs[job.i], job.i, names[job.j], seqs[job.j], job.j, cfg)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	var blocks []build.MatchBlock
	var agg build.PairStats
	for ji := range jobs {
		if errs[ji] != nil {
			return nil, errs[ji]
		}
		blocks = append(blocks, results[ji]...)
		agg.Add(stats[ji])
		if hits[ji] {
			resp.PairHits++
		} else {
			resp.PairMisses++
		}
	}
	alignTime := time.Since(t0)

	res, err := build.PGGBFromMatches(ctx, names, seqs, blocks, agg, cfg, nil)
	if err != nil {
		return nil, err
	}
	res.Breakdown.Alignment = alignTime
	return res, nil
}

// matchPair resolves one cohort pair (cohort indices i < j) through the
// cache and remaps the canonical blocks into cohort coordinates. With a
// fleet configured, the pair is dispatched to the worker owning its hash
// shard instead, and the worker's shard cache stands in for the local one.
func (s *Service) matchPair(ctx context.Context, nameI string, seqI []byte, i int, nameJ string, seqJ []byte, j int, cfg build.PGGBConfig) ([]build.MatchBlock, build.PairStats, bool, error) {
	lo, hi := nameI, nameJ
	seqLo, seqHi := seqI, seqJ
	swapped := false
	if lo > hi {
		lo, hi = hi, lo
		seqLo, seqHi = seqHi, seqLo
		swapped = true
	}
	if s.cfg.Fleet != nil {
		blocks, st, hit, err := s.cfg.Fleet.Match(ctx, lo, hi, cfg.K, cfg.W)
		if err != nil {
			return nil, build.PairStats{}, false, err
		}
		return fleet.RemapBlocks(blocks, i, j, swapped), st, hit, nil
	}
	key := pairKey{a: lo, b: hi, k: cfg.K, w: cfg.W}
	entry, hit, err := s.cache.acquire(ctx, key, func() ([]build.MatchBlock, build.PairStats, error) {
		return build.PairMatches(0, seqLo, 1, seqHi, cfg.K, cfg.W, nil)
	})
	if err != nil {
		return nil, build.PairStats{}, false, err
	}
	defer s.cache.release(entry)

	out := make([]build.MatchBlock, len(entry.blocks))
	for bi, b := range entry.blocks {
		if swapped {
			b.PosA, b.PosB = b.PosB, b.PosA
		}
		out[bi] = build.MatchBlock{SeqA: i, PosA: b.PosA, SeqB: j, PosB: b.PosB, Len: b.Len}
	}
	// Restore canonical (PosA, PosB) block order after a swap.
	sort.Slice(out, func(a, b int) bool {
		if out[a].PosA != out[b].PosA {
			return out[a].PosA < out[b].PosA
		}
		return out[a].PosB < out[b].PosB
	})
	return out, entry.stats, hit, nil
}

package serve

import (
	"errors"
	"sync/atomic"
)

// ErrChaosReject fails a build request at admission while build-tier fault
// injection is on.
var ErrChaosReject = errors.New("serve: build rejected (chaos injection)")

// chaos is the service's fault-injection state. It lives on its own struct
// so the production Config stays free of test-only knobs.
type chaos struct {
	rejectBuilds atomic.Bool
}

// SetChaosRejectBuilds toggles build-tier fault injection: while on, every
// new Build fails with ErrChaosReject before resolving its cohort or taking
// a slot, and is counted under serve.reject_chaos. Soak runs use it to
// verify the serving tier keeps answering queries while its rebuild pipeline
// is down — the partial-outage mode a real coordinator crash produces.
// In-flight builds are unaffected.
func (s *Service) SetChaosRejectBuilds(on bool) {
	s.chaos.rejectBuilds.Store(on)
}

// ChaosRejectingBuilds reports whether build fault injection is on.
func (s *Service) ChaosRejectingBuilds() bool { return s.chaos.rejectBuilds.Load() }

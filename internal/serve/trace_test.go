package serve

import (
	"context"
	"testing"
	"time"

	"pangenomicsbench/internal/obs"
	"pangenomicsbench/internal/perf"
)

// findChild returns the first direct child span named name.
func findChild(d obs.SpanData, name string) (obs.SpanData, bool) {
	for _, c := range d.Children {
		if c.Name == name {
			return c, true
		}
	}
	return obs.SpanData{}, false
}

// attrValue returns the value of the span's first attribute with key.
func attrValue(d obs.SpanData, key string) string {
	for _, a := range d.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// TestBuildTrace verifies the build tier's trace shape: one root span per
// request carrying the tool and cohort, an admission stage, and a build
// child whose children are the pipeline's construction-stage breakdown.
func TestBuildTrace(t *testing.T) {
	names, seqs := testCatalog(t, 5000, 4)
	tr := obs.NewTracer(obs.TracerConfig{})
	s := testService(t, Config{Metrics: perf.NewMetrics(), Tracer: tr}, names, seqs)

	if _, err := s.Build(context.Background(), pggbRequest(names)); err != nil {
		t.Fatal(err)
	}

	traces := tr.Recorder().Last(1)
	if len(traces) != 1 {
		t.Fatalf("recorder retained %d traces, want 1", len(traces))
	}
	root := traces[0]
	if root.Name != "serve.build" {
		t.Fatalf("root span %q, want serve.build", root.Name)
	}
	if root.Failed() {
		t.Fatalf("successful build marked failed: %s", root.Tree())
	}
	if got := attrValue(root, "tool"); got != "pggb" {
		t.Errorf("tool attr %q, want pggb", got)
	}
	if got := attrValue(root, "cohort_size"); got != "4" {
		t.Errorf("cohort_size attr %q, want 4", got)
	}
	if _, ok := findChild(root, "admission"); !ok {
		t.Errorf("trace missing admission stage:\n%s", root.Tree())
	}
	bs, ok := findChild(root, "build")
	if !ok {
		t.Fatalf("trace missing build child:\n%s", root.Tree())
	}
	var stageSum time.Duration
	for _, stage := range []string{"alignment", "induction", "polishing", "layout"} {
		c, ok := findChild(bs, stage)
		if !ok {
			t.Errorf("build span missing stage %q:\n%s", stage, root.Tree())
			continue
		}
		stageSum += c.Duration
	}
	if stageSum <= 0 {
		t.Errorf("construction stages sum to %v, want > 0:\n%s", stageSum, root.Tree())
	}
	if stageSum > bs.Duration+bs.Duration/10 {
		t.Errorf("stage sum %v exceeds build span %v by >10%%:\n%s", stageSum, bs.Duration, root.Tree())
	}
}

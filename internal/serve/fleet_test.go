package serve

import (
	"bytes"
	"context"
	"testing"

	"pangenomicsbench/internal/build"
	"pangenomicsbench/internal/fleet"
	"pangenomicsbench/internal/perf"
)

// fleetService wires a service onto an in-process loopback fleet of n
// workers and registers the catalog (which RegisterAssemblies forwards to
// the coordinator).
func fleetService(t testing.TB, n int, names []string, seqs [][]byte) (*Service, *fleet.Coordinator) {
	t.Helper()
	c := fleet.NewCoordinator(fleet.Config{Metrics: perf.NewMetrics()})
	t.Cleanup(c.Close)
	for i := 0; i < n; i++ {
		name := string(rune('a'+i)) + "-node"
		if err := c.AddNode(name, fleet.NewLocalNode(fleet.NewWorker(name, 0), 0)); err != nil {
			t.Fatal(err)
		}
	}
	s := New(Config{Fleet: c, Metrics: perf.NewMetrics()})
	if err := s.RegisterAssemblies(names, seqs); err != nil {
		t.Fatal(err)
	}
	return s, c
}

// TestFleetBuildIdenticalToLocal is the serve-mode fleet acceptance test:
// a build routed through a two-worker fleet is byte-identical to both the
// direct build.PGGB result and the local cached serve path, and the warm
// fleet request is served entirely from worker shard caches.
func TestFleetBuildIdenticalToLocal(t *testing.T) {
	names, seqs := testCatalog(t, 5000, 5)
	req := pggbRequest(names)

	direct, err := build.PGGB(context.Background(), names, seqs, req.PGGB, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := gfaBytes(t, direct)

	local := testService(t, Config{}, names, seqs)
	lres, err := local.Build(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gfaBytes(t, lres.Result), want) {
		t.Fatal("local serve path differs from direct build.PGGB")
	}

	s, _ := fleetService(t, 2, names, seqs)
	cold, err := s.Build(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gfaBytes(t, cold.Result), want) {
		t.Fatal("fleet serve result differs from direct build.PGGB")
	}
	pairs := len(names) * (len(names) - 1) / 2
	if cold.PairMisses != pairs || cold.PairHits != 0 {
		t.Fatalf("cold fleet request: %d misses / %d hits, want %d / 0",
			cold.PairMisses, cold.PairHits, pairs)
	}

	// Warm request: every pair is a worker shard-cache hit.
	warm, err := s.Build(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gfaBytes(t, warm.Result), want) {
		t.Fatal("warm fleet serve result differs from direct build.PGGB")
	}
	if warm.PairHits != pairs || warm.PairMisses != 0 {
		t.Fatalf("warm fleet request not fully cached: %d hits / %d misses",
			warm.PairHits, warm.PairMisses)
	}
	if direct.Stats != cold.Result.Stats || direct.Stats != warm.Result.Stats {
		t.Fatalf("stats diverge:\ndirect %+v\ncold   %+v\nwarm   %+v",
			direct.Stats, cold.Result.Stats, warm.Result.Stats)
	}
}

// TestFleetBuildReverseCohort checks the fleet path remaps canonical
// worker results into cohort coordinates correctly when the cohort is not
// name-sorted (every pair arrives swapped).
func TestFleetBuildReverseCohort(t *testing.T) {
	names, seqs := testCatalog(t, 4000, 4)
	rev := make([]string, len(names))
	revSeqs := make([][]byte, len(seqs))
	for i := range names {
		rev[len(names)-1-i] = names[i]
		revSeqs[len(seqs)-1-i] = seqs[i]
	}
	req := pggbRequest(rev)

	direct, err := build.PGGB(context.Background(), rev, revSeqs, req.PGGB, nil)
	if err != nil {
		t.Fatal(err)
	}

	s, _ := fleetService(t, 3, names, seqs)
	res, err := s.Build(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gfaBytes(t, res.Result), gfaBytes(t, direct)) {
		t.Fatal("fleet build of reversed cohort differs from direct build.PGGB")
	}
}

// TestFleetRegisterForwards checks RegisterAssembly forwards the catalog
// to the fleet coordinator so workers can be config-pushed.
func TestFleetRegisterForwards(t *testing.T) {
	names, seqs := testCatalog(t, 3000, 3)
	s, c := fleetService(t, 1, names, seqs)

	// Forwarded twice (serve + fleet both reject duplicates).
	if err := s.RegisterAssembly(names[0], seqs[0]); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if _, _, _, err := c.Match(context.Background(), names[0], names[1], 15, 10); err != nil {
		t.Fatalf("fleet did not receive forwarded catalog: %v", err)
	}
}

package serve

import (
	"context"
	"errors"
	"testing"

	"pangenomicsbench/internal/perf"
)

// TestChaosRejectBuilds pins the build-tier injection hook: while on, every
// Build fails fast with ErrChaosReject under its own counter; off again,
// the same request builds normally.
func TestChaosRejectBuilds(t *testing.T) {
	m := perf.NewMetrics()
	names, seqs := testCatalog(t, 3_000, 3)
	s := testService(t, Config{Workers: 1, Metrics: m}, names, seqs)

	s.SetChaosRejectBuilds(true)
	if !s.ChaosRejectingBuilds() {
		t.Fatal("ChaosRejectingBuilds not reporting on")
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Build(context.Background(), pggbRequest(names)); !errors.Is(err, ErrChaosReject) {
			t.Fatalf("build %d under chaos: %v, want ErrChaosReject", i, err)
		}
	}

	s.SetChaosRejectBuilds(false)
	resp, err := s.Build(context.Background(), pggbRequest(names))
	if err != nil {
		t.Fatalf("post-chaos build: %v", err)
	}
	if resp.Result == nil || resp.Result.Graph == nil {
		t.Fatal("post-chaos build returned no graph")
	}

	snap := m.Snapshot()
	if got := snap.Counters["serve.reject_chaos"]; got != 3 {
		t.Fatalf("reject_chaos = %d, want 3", got)
	}
	// Chaos rejects fail before admission: no organic error is recorded.
	if got := snap.Counters["serve.errors"]; got != 0 {
		t.Fatalf("serve.errors = %d, want 0", got)
	}
}

package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"pangenomicsbench/internal/build"
)

func testBlocks(n int) []build.MatchBlock {
	out := make([]build.MatchBlock, n)
	for i := range out {
		out[i] = build.MatchBlock{SeqA: 0, PosA: i, SeqB: 1, PosB: i, Len: 16}
	}
	return out
}

// TestPairCacheSingleFlight: many concurrent acquires of one uncomputed key
// run compute exactly once and all observe the same blocks.
func TestPairCacheSingleFlight(t *testing.T) {
	c := newPairCache(1<<20, nil)
	key := pairKey{a: "a", b: "b", k: 15, w: 10}
	var computes int32
	gate := make(chan struct{})

	const waiters = 16
	entries := make([]*pairEntry, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, _, err := c.acquire(context.Background(), key, func() ([]build.MatchBlock, build.PairStats, error) {
				atomic.AddInt32(&computes, 1)
				<-gate // hold every other acquirer in the pending state
				return testBlocks(3), build.PairStats{Blocks: 3}, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			entries[i] = e
		}(i)
	}
	close(gate)
	wg.Wait()
	if computes != 1 {
		t.Fatalf("compute ran %d times, want 1", computes)
	}
	for i, e := range entries {
		if e == nil || len(e.blocks) != 3 {
			t.Fatalf("waiter %d got entry %+v", i, e)
		}
		c.release(e)
	}
	if hits, misses, _ := c.counters(); misses != 1 || hits != waiters-1 {
		t.Fatalf("hits=%d misses=%d, want %d/1", hits, misses, waiters-1)
	}
}

// TestPairCachePinnedEntriesSurviveEviction: a pinned entry is never
// evicted, even when the cache is far over capacity; it becomes evictable
// only after release.
func TestPairCachePinnedEntriesSurviveEviction(t *testing.T) {
	c := newPairCache(64, nil) // smaller than a single entry's cost
	keyA := pairKey{a: "a", b: "b"}
	eA, _, err := c.acquire(context.Background(), keyA, func() ([]build.MatchBlock, build.PairStats, error) {
		return testBlocks(8), build.PairStats{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Fill with another entry; only the unpinned one may be evicted.
	keyB := pairKey{a: "c", b: "d"}
	eB, _, err := c.acquire(context.Background(), keyB, func() ([]build.MatchBlock, build.PairStats, error) {
		return testBlocks(8), build.PairStats{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	c.release(eB) // now evictable and over capacity → evicted

	c.mu.Lock()
	_, aResident := c.entries[keyA]
	_, bResident := c.entries[keyB]
	c.mu.Unlock()
	if !aResident {
		t.Fatal("pinned entry was evicted")
	}
	if bResident {
		t.Fatal("unpinned entry survived over-capacity eviction")
	}

	// Re-acquiring the pinned entry while over capacity still hits.
	again, hit, err := c.acquire(context.Background(), keyA, func() ([]build.MatchBlock, build.PairStats, error) {
		t.Fatal("resident entry recomputed")
		return nil, build.PairStats{}, nil
	})
	if err != nil || !hit || again != eA {
		t.Fatalf("re-acquire: hit=%v err=%v", hit, err)
	}
	c.release(again)
	c.release(eA) // last release → entry becomes evictable and is dropped
	if entries, bytes := c.resident(); entries != 0 || bytes != 0 {
		t.Fatalf("cache not empty after releases: %d entries, %d bytes", entries, bytes)
	}
}

// TestPairCacheComputeFailure: a failed compute surfaces its error to the
// owner, wakes waiters to retry, and leaves no residue.
func TestPairCacheComputeFailure(t *testing.T) {
	c := newPairCache(1<<20, nil)
	key := pairKey{a: "a", b: "b"}
	boom := errors.New("boom")
	if _, _, err := c.acquire(context.Background(), key, func() ([]build.MatchBlock, build.PairStats, error) {
		return nil, build.PairStats{}, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failed key recomputes on the next acquire.
	e, hit, err := c.acquire(context.Background(), key, func() ([]build.MatchBlock, build.PairStats, error) {
		return testBlocks(1), build.PairStats{}, nil
	})
	if err != nil || hit {
		t.Fatalf("retry after failure: hit=%v err=%v", hit, err)
	}
	c.release(e)
}

// TestPairCacheContextCanceledWaiter: a waiter whose context dies while an
// owner computes returns the context error without corrupting the entry.
func TestPairCacheContextCanceledWaiter(t *testing.T) {
	c := newPairCache(1<<20, nil)
	key := pairKey{a: "a", b: "b"}
	started := make(chan struct{})
	gate := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		e, _, err := c.acquire(context.Background(), key, func() ([]build.MatchBlock, build.PairStats, error) {
			close(started)
			<-gate
			return testBlocks(2), build.PairStats{}, nil
		})
		if err != nil {
			t.Error(err)
			return
		}
		c.release(e)
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.acquire(ctx, key, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter err = %v", err)
	}
	close(gate)
	<-done
	// The owner's publish must be intact after the waiter bailed.
	e, hit, err := c.acquire(context.Background(), key, nil)
	if err != nil || !hit || len(e.blocks) != 2 {
		t.Fatalf("entry corrupted after canceled waiter: hit=%v err=%v", hit, err)
	}
	c.release(e)
}

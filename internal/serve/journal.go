package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"pangenomicsbench/internal/build"
	"pangenomicsbench/internal/perf"
	"pangenomicsbench/internal/store"
)

// Journal is the typed write-ahead log of accepted build requests: every
// leader execution appends a begin record before building and a done record
// after it completes (success or failure), each fsynced by the underlying
// store.WAL. A coordinator that crashed mid-build therefore leaves a begin
// without a done; OpenJournal finds those on restart and Service.Recover
// re-enqueues them, so accepted work survives the process.
type Journal struct {
	wal     *store.WAL
	metrics *perf.Metrics

	mu         sync.Mutex
	seq        uint64
	unfinished map[uint64]Request // crash-interrupted requests found at open
	pending    int                // begins without dones appended this process
}

// journalRecord is one WAL payload (JSON: configs are flat exported
// primitives, and the format stays debuggable with standard tools).
type journalRecord struct {
	Op      string           `json:"op"` // "begin" | "done"
	Seq     uint64           `json:"seq"`
	Tool    Tool             `json:"tool,omitempty"`
	Cohort  []string         `json:"cohort,omitempty"`
	PGGB    build.PGGBConfig `json:"pggb,omitempty"`
	MC      build.MCConfig   `json:"mc,omitempty"`
	Timeout time.Duration    `json:"timeout_ns,omitempty"`
}

// OpenJournal opens (creating if needed) the journal at path and replays it:
// intact records restore the sequence counter and the unfinished-request
// set. A torn tail (crash mid-append) is tolerated; records before it are
// honored. Metrics (optional) gains the store.wal_depth gauge.
func OpenJournal(path string, metrics *perf.Metrics) (*Journal, error) {
	records, _, err := store.ReplayWAL(path)
	if err != nil {
		return nil, err
	}
	j := &Journal{metrics: metrics, unfinished: map[uint64]Request{}}
	for _, raw := range records {
		var rec journalRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("serve: journal %s holds an undecodable record: %w", path, err)
		}
		if rec.Seq > j.seq {
			j.seq = rec.Seq
		}
		switch rec.Op {
		case "begin":
			j.unfinished[rec.Seq] = Request{
				Tool: rec.Tool, Cohort: rec.Cohort,
				PGGB: rec.PGGB, MC: rec.MC, Timeout: rec.Timeout,
			}
		case "done":
			delete(j.unfinished, rec.Seq)
		default:
			return nil, fmt.Errorf("serve: journal %s holds unknown op %q", path, rec.Op)
		}
	}
	wal, err := store.OpenWAL(path)
	if err != nil {
		return nil, err
	}
	j.wal = wal
	j.gauge()
	return j, nil
}

// gauge publishes the journal depth (unreplayed + in-flight begins).
func (j *Journal) gauge() {
	j.metrics.GaugeSet("store.wal_depth", int64(len(j.unfinished)+j.pending))
}

// unfinishedReq pairs a crash-interrupted request with its original journal
// sequence, so recovery can retire the original begin record.
type unfinishedReq struct {
	seq uint64
	req Request
}

// unfinishedOrdered returns the crash-interrupted requests in accepted
// order.
func (j *Journal) unfinishedOrdered() []unfinishedReq {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]unfinishedReq, 0, len(j.unfinished))
	for s, r := range j.unfinished {
		out = append(out, unfinishedReq{seq: s, req: r})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].seq < out[b].seq })
	return out
}

// Unfinished returns the crash-interrupted requests found when the journal
// was opened, in accepted order.
func (j *Journal) Unfinished() []Request {
	us := j.unfinishedOrdered()
	out := make([]Request, 0, len(us))
	for _, u := range us {
		out = append(out, u.req)
	}
	return out
}

// begin durably records one accepted request and returns its sequence
// number.
func (j *Journal) begin(req Request) (uint64, error) {
	j.mu.Lock()
	j.seq++
	seq := j.seq
	j.pending++
	j.gauge()
	j.mu.Unlock()
	raw, err := json.Marshal(journalRecord{
		Op: "begin", Seq: seq,
		Tool: req.Tool, Cohort: req.Cohort,
		PGGB: req.PGGB, MC: req.MC, Timeout: req.Timeout,
	})
	if err != nil {
		return 0, fmt.Errorf("serve: journal encode: %w", err)
	}
	if err := j.wal.Append(raw); err != nil {
		return 0, err
	}
	return seq, nil
}

// done durably records the completion of seq — one appended in this process
// or a recovered begin from a previous one.
func (j *Journal) done(seq uint64) {
	raw, _ := json.Marshal(journalRecord{Op: "done", Seq: seq})
	_ = j.wal.Append(raw) // best effort: a lost done only means a redundant replay
	j.mu.Lock()
	if _, recovered := j.unfinished[seq]; recovered {
		delete(j.unfinished, seq)
	} else {
		j.pending--
	}
	j.gauge()
	j.mu.Unlock()
}

// Close closes the underlying log.
func (j *Journal) Close() error { return j.wal.Close() }

// Recover re-enqueues every crash-interrupted request found in the
// service's journal, executing them sequentially in accepted order. Each
// replay journals itself normally (so a crash during recovery is itself
// recoverable), and the original begin record is retired only after the
// replay completes. It returns how many requests were replayed; the first
// build error aborts recovery.
func (s *Service) Recover(ctx context.Context) (int, error) {
	if s.cfg.Journal == nil {
		return 0, nil
	}
	us := s.cfg.Journal.unfinishedOrdered()
	for i, u := range us {
		if _, err := s.Build(ctx, u.req); err != nil {
			return i, fmt.Errorf("serve: recover request %d/%d (%s %v): %w", i+1, len(us), u.req.Tool, u.req.Cohort, err)
		}
		s.cfg.Journal.done(u.seq)
	}
	return len(us), nil
}

package serve

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"pangenomicsbench/internal/build"
	"pangenomicsbench/internal/gensim"
	"pangenomicsbench/internal/gfa"
	"pangenomicsbench/internal/perf"
)

// testCatalog simulates a small population and returns its assemblies.
func testCatalog(t testing.TB, refLen, n int) ([]string, [][]byte) {
	t.Helper()
	cfg := gensim.DefaultConfig()
	cfg.RefLen = refLen
	cfg.Haplotypes = n
	pop, err := gensim.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	names, seqs := pop.AssemblyView()
	return names, seqs
}

// testService returns a service preloaded with the catalog.
func testService(t testing.TB, cfg Config, names []string, seqs [][]byte) *Service {
	t.Helper()
	s := New(cfg)
	if err := s.RegisterAssemblies(names, seqs); err != nil {
		t.Fatal(err)
	}
	return s
}

func pggbRequest(cohort []string) Request {
	cfg := build.DefaultPGGBConfig()
	cfg.LayoutIterations = 0
	return Request{Tool: ToolPGGB, Cohort: cohort, PGGB: cfg}
}

// gfaBytes serializes a result graph for byte-level comparison.
func gfaBytes(t testing.TB, res *build.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gfa.Write(&buf, res.Graph); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCacheReuseExactPairCount is the serve-mode acceptance test: two
// sequential cohorts sharing k assemblies perform exactly C(n,2) − C(k,2)
// new pair matches on the second request.
func TestCacheReuseExactPairCount(t *testing.T) {
	names, seqs := testCatalog(t, 5000, 7)
	s := testService(t, Config{Metrics: perf.NewMetrics()}, names, seqs)

	choose2 := func(n int) int { return n * (n - 1) / 2 }

	// First cohort: assemblies 0..4 (n = 5).
	first := names[:5]
	r1, err := s.Build(context.Background(), pggbRequest(first))
	if err != nil {
		t.Fatal(err)
	}
	if r1.PairMisses != choose2(5) || r1.PairHits != 0 {
		t.Fatalf("first request: %d misses / %d hits, want %d / 0",
			r1.PairMisses, r1.PairHits, choose2(5))
	}

	// Second cohort: assemblies 2..6 — shares k = 3 with the first.
	second := names[2:7]
	r2, err := s.Build(context.Background(), pggbRequest(second))
	if err != nil {
		t.Fatal(err)
	}
	wantMisses := choose2(5) - choose2(3)
	if r2.PairMisses != wantMisses || r2.PairHits != choose2(3) {
		t.Fatalf("second request: %d misses / %d hits, want %d / %d",
			r2.PairMisses, r2.PairHits, wantMisses, choose2(3))
	}

	hits, misses, _ := s.CacheCounters()
	if hits != int64(choose2(3)) || misses != int64(choose2(5)+wantMisses) {
		t.Fatalf("cache counters: hits=%d misses=%d", hits, misses)
	}
	if got := s.Metrics().Counters["serve.requests"]; got != 2 {
		t.Fatalf("serve.requests = %d, want 2", got)
	}
}

// TestCachedResultIdenticalToDirectPGGB checks that the serve-mode PGGB
// path (canonical pair cache + PGGBFromMatches) reproduces build.PGGB
// byte-for-byte on a name-sorted cohort, both on a cold and a warm cache.
func TestCachedResultIdenticalToDirectPGGB(t *testing.T) {
	names, seqs := testCatalog(t, 5000, 4)
	s := testService(t, Config{}, names, seqs)

	req := pggbRequest(names)
	direct, err := build.PGGB(context.Background(), names, seqs, req.PGGB, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := gfaBytes(t, direct)

	cold, err := s.Build(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gfaBytes(t, cold.Result), want) {
		t.Fatal("cold-cache serve result differs from direct build.PGGB")
	}
	warm, err := s.Build(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if warm.PairHits != len(names)*(len(names)-1)/2 || warm.PairMisses != 0 {
		t.Fatalf("warm request not fully cached: %d hits / %d misses", warm.PairHits, warm.PairMisses)
	}
	if !bytes.Equal(gfaBytes(t, warm.Result), want) {
		t.Fatal("warm-cache serve result differs from direct build.PGGB")
	}
	if direct.Stats != cold.Result.Stats || direct.Stats != warm.Result.Stats {
		t.Fatalf("stats diverge:\ndirect %+v\ncold   %+v\nwarm   %+v",
			direct.Stats, cold.Result.Stats, warm.Result.Stats)
	}
}

// TestConcurrentOverlappingRequests is the concurrency acceptance test:
// ≥8 concurrent overlapping requests (run under -race in CI) must return
// graphs byte-identical to serial single-request builds.
func TestConcurrentOverlappingRequests(t *testing.T) {
	names, seqs := testCatalog(t, 4000, 8)

	// Overlapping cohorts, some deliberately not name-sorted so the
	// canonical-orientation remap path is exercised.
	cohorts := [][]string{
		{names[0], names[1], names[2]},
		{names[1], names[2], names[3]},
		{names[3], names[2], names[1]}, // reversed ordering of the above
		{names[2], names[3], names[4]},
		{names[4], names[5], names[6]},
		{names[6], names[5], names[0]},
		{names[0], names[3], names[6]},
		{names[5], names[1], names[7], names[2]},
		{names[7], names[0], names[4]},
	}

	// Serial reference: a fresh service per request so nothing is shared.
	want := make([][]byte, len(cohorts))
	for i, cohort := range cohorts {
		s := testService(t, Config{Workers: 1, PairWorkers: 1}, names, seqs)
		resp, err := s.Build(context.Background(), pggbRequest(cohort))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = gfaBytes(t, resp.Result)
	}

	// Concurrent: one shared service, every cohort in flight at once.
	s := testService(t, Config{Workers: 4, Metrics: perf.NewMetrics()}, names, seqs)
	got := make([][]byte, len(cohorts))
	errs := make([]error, len(cohorts))
	var wg sync.WaitGroup
	for i := range cohorts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := s.Build(context.Background(), pggbRequest(cohorts[i]))
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = gfaBytes(t, resp.Result)
		}(i)
	}
	wg.Wait()
	for i := range cohorts {
		if errs[i] != nil {
			t.Fatalf("cohort %d: %v", i, errs[i])
		}
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("cohort %d: concurrent result differs from serial build", i)
		}
	}
	if hits, _, _ := s.CacheCounters(); hits == 0 {
		t.Error("overlapping concurrent requests shared no pair results")
	}
	g := s.Metrics().Gauges["serve.inflight"]
	if g.Value != 0 {
		t.Errorf("inflight gauge did not return to zero: %d", g.Value)
	}
	if g.Watermark < 1 {
		t.Errorf("inflight watermark = %d, want ≥1", g.Watermark)
	}
}

// TestRequestCoalescing verifies identical in-flight requests share one
// execution.
func TestRequestCoalescing(t *testing.T) {
	names, seqs := testCatalog(t, 4000, 4)
	m := perf.NewMetrics()
	s := testService(t, Config{Workers: 2, Metrics: m}, names, seqs)
	req := pggbRequest(names)

	leaderDone := make(chan struct{})
	var leader *Response
	var leaderErr error
	go func() {
		defer close(leaderDone)
		leader, leaderErr = s.Build(context.Background(), req)
	}()

	// Wait until the leader registers in-flight, then join it.
	fp := req.fingerprint()
	for {
		s.mu.Lock()
		_, inflight := s.inflight[fp]
		s.mu.Unlock()
		if inflight {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	joined, err := s.Build(context.Background(), req)
	<-leaderDone
	if err != nil || leaderErr != nil {
		t.Fatalf("build errors: leader=%v joined=%v", leaderErr, err)
	}
	if leader.Coalesced {
		t.Fatal("leader marked coalesced")
	}
	if !joined.Coalesced {
		t.Fatal("joined request not marked coalesced")
	}
	if joined.Result != leader.Result {
		t.Fatal("coalesced request did not share the leader's result")
	}
	if got := m.Counter("serve.coalesced"); got != 1 {
		t.Fatalf("serve.coalesced = %d, want 1", got)
	}
}

// TestCacheEviction verifies the LRU stays within its byte budget, counts
// evictions, and that evicted pairs recompute correctly.
func TestCacheEviction(t *testing.T) {
	names, seqs := testCatalog(t, 4000, 6)
	// Capacity fits roughly one pair entry, so cohorts evict each other.
	const evictCap = 256
	s := testService(t, Config{CacheCapacity: evictCap, Metrics: perf.NewMetrics()}, names, seqs)

	a, b := names[:3], names[3:6]
	if _, err := s.Build(context.Background(), pggbRequest(a)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Build(context.Background(), pggbRequest(b)); err != nil {
		t.Fatal(err)
	}
	if _, _, evictions := s.CacheCounters(); evictions == 0 {
		t.Fatal("no evictions despite tiny capacity")
	}
	if _, bytes := s.CacheResident(); bytes > evictCap {
		t.Fatalf("resident %d bytes exceeds capacity with no pins outstanding", bytes)
	}
	// A re-request still works (recomputing whatever was evicted) and
	// matches a fresh service's answer.
	again, err := s.Build(context.Background(), pggbRequest(a))
	if err != nil {
		t.Fatal(err)
	}
	fresh := testService(t, Config{}, names, seqs)
	ref, err := fresh.Build(context.Background(), pggbRequest(a))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gfaBytes(t, again.Result), gfaBytes(t, ref.Result)) {
		t.Fatal("post-eviction rebuild differs from fresh build")
	}
}

// TestRequestTimeoutAndCancel covers the context plumbing: an expired
// per-request timeout and a canceled caller context both abort the build.
func TestRequestTimeoutAndCancel(t *testing.T) {
	names, seqs := testCatalog(t, 12000, 6)
	s := testService(t, Config{}, names, seqs)

	req := pggbRequest(names)
	req.Timeout = time.Nanosecond
	if _, err := s.Build(context.Background(), req); err == nil {
		t.Fatal("nanosecond timeout did not abort the build")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Build(ctx, pggbRequest(names)); err == nil {
		t.Fatal("pre-canceled context did not abort the build")
	}

	mcReq := Request{Tool: ToolMC, Cohort: names, MC: build.DefaultMCConfig(), Timeout: time.Nanosecond}
	if _, err := s.Build(context.Background(), mcReq); err == nil {
		t.Fatal("nanosecond timeout did not abort the MC build")
	}

	// The service must still serve after aborted requests.
	ok := pggbRequest(names[:3])
	if _, err := s.Build(context.Background(), ok); err != nil {
		t.Fatalf("service wedged after aborted requests: %v", err)
	}
}

// TestMCRequests runs the Minigraph-Cactus tool through the service.
func TestMCRequests(t *testing.T) {
	names, seqs := testCatalog(t, 4000, 4)
	s := testService(t, Config{Metrics: perf.NewMetrics()}, names, seqs)
	cfg := build.DefaultMCConfig()
	cfg.LayoutIterations = 0
	resp, err := s.Build(context.Background(), Request{Tool: ToolMC, Cohort: names, MC: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Result == nil || resp.Result.Graph == nil {
		t.Fatal("MC request returned no graph")
	}
	if resp.PairHits != 0 || resp.PairMisses != 0 {
		t.Fatalf("MC request touched the pair cache: %d/%d", resp.PairHits, resp.PairMisses)
	}
	direct, err := build.MinigraphCactus(context.Background(), names, seqs, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gfaBytes(t, resp.Result), gfaBytes(t, direct)) {
		t.Fatal("served MC result differs from direct build")
	}
}

// TestRequestValidation covers the request rejection paths.
func TestRequestValidation(t *testing.T) {
	names, seqs := testCatalog(t, 4000, 3)
	s := testService(t, Config{}, names, seqs)
	cases := []Request{
		{Tool: "gfaffix", Cohort: names},                         // unknown tool
		pggbRequest(names[:1]),                                   // cohort too small
		pggbRequest([]string{names[0], names[0], names[1]}),      // repeated assembly
		pggbRequest([]string{names[0], names[1], "nonexistent"}), // unregistered
	}
	for i, req := range cases {
		if _, err := s.Build(context.Background(), req); err == nil {
			t.Errorf("case %d: invalid request accepted: %+v", i, req)
		}
	}
	if err := s.RegisterAssembly(names[0], []byte("ACGT")); err == nil {
		t.Error("duplicate assembly registration accepted")
	}
	if err := s.RegisterAssembly("x", nil); err == nil {
		t.Error("empty-sequence registration accepted")
	}
	if err := s.RegisterAssembly("a\tb", []byte("ACGT")); err == nil {
		t.Error("reserved-character name accepted")
	}
}

// TestOnResultHook verifies the build-completion hook fires once per leader
// execution with the finished result — including coalesced requests, which
// share one execution and so fire it once.
func TestOnResultHook(t *testing.T) {
	names, seqs := testCatalog(t, 4000, 4)
	var mu sync.Mutex
	var fired []Request
	cfg := Config{Workers: 2, OnResult: func(req Request, res *build.Result) {
		if res == nil || res.Graph == nil {
			t.Error("OnResult fired without a graph")
		}
		mu.Lock()
		fired = append(fired, req)
		mu.Unlock()
	}}
	s := testService(t, cfg, names, seqs)

	if _, err := s.Build(context.Background(), pggbRequest(names)); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || len(fired[0].Cohort) != len(names) {
		t.Fatalf("after one build, hook fired %d times", len(fired))
	}

	// A failed build must not fire the hook.
	bad := pggbRequest(names)
	bad.Timeout = time.Nanosecond
	if _, err := s.Build(context.Background(), bad); err == nil {
		t.Fatal("nanosecond build did not fail")
	}
	if len(fired) != 1 {
		t.Fatalf("failed build fired the hook (%d fires)", len(fired))
	}

	// Leader + coalesced joiner: one execution, one fire.
	req := pggbRequest(names[:3])
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		if _, err := s.Build(context.Background(), req); err != nil {
			t.Errorf("leader: %v", err)
		}
	}()
	fp := req.fingerprint()
	for {
		s.mu.Lock()
		_, inflight := s.inflight[fp]
		s.mu.Unlock()
		if inflight {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	if _, err := s.Build(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	<-leaderDone
	if len(fired) != 2 {
		t.Fatalf("coalesced pair fired the hook %d times total, want 2", len(fired))
	}
}

// TestMetricsRecorded spot-checks the service metric names the serve-sim
// report relies on.
func TestMetricsRecorded(t *testing.T) {
	names, seqs := testCatalog(t, 4000, 3)
	m := perf.NewMetrics()
	s := testService(t, Config{Metrics: m}, names, seqs)
	if _, err := s.Build(context.Background(), pggbRequest(names)); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	for _, counter := range []string{"serve.requests", "serve.pair_misses"} {
		if snap.Counters[counter] == 0 {
			t.Errorf("counter %s not recorded", counter)
		}
	}
	for _, lat := range []string{"serve.exec", "serve.queue_wait", "serve.stage.induction"} {
		if snap.Latencies[lat].Count == 0 {
			t.Errorf("latency %s not recorded", lat)
		}
	}
}

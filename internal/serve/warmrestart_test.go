package serve

import (
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"pangenomicsbench/internal/build"
	"pangenomicsbench/internal/mapserve"
	"pangenomicsbench/internal/pipeline"
	"pangenomicsbench/internal/store"
)

// TestWarmRestartServesPersistedGeneration is the PR's acceptance test: a
// coordinator process that built, published, and persisted a cohort — then
// died mid-trace with a build request accepted but unfinished — is replaced
// by a fresh process that (1) serves the last published store generation
// WITHOUT running construction, (2) maps the same reads byte-identically,
// and (3) finds the unfinished request in the WAL and re-enqueues it via
// Recover.
func TestWarmRestartServesPersistedGeneration(t *testing.T) {
	storeDir := t.TempDir()
	walPath := filepath.Join(storeDir, "serve.wal")
	sdir, err := store.Open(storeDir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	names, seqs := testCatalog(t, 4000, 4)
	toolCfg := mapserve.DefaultToolConfig(mapserve.ToolGiraffe)

	// Deterministic query reads sliced out of the assemblies.
	var reads [][]byte
	for i := 0; i < 16; i++ {
		seq := seqs[i%len(seqs)]
		off := (i * 271) % (len(seq) - 120)
		reads = append(reads, seq[off:off+120])
	}

	// ---- process 1: cold build, persist, serve, die mid-trace ----
	j1, err := OpenJournal(walPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg1 := &mapserve.Registry{}
	persister := mapserve.NewPersister(sdir, nil)
	var builds1 int
	var hookErr error
	b1 := testService(t, Config{
		Workers: 2,
		Journal: j1,
		OnResult: func(req Request, res *build.Result) {
			builds1++
			snap, err := mapserve.SnapshotFromBuild(fmt.Sprintf("cohort-%d", builds1), res, toolCfg)
			if err == nil {
				_, err = reg1.Publish(snap)
			}
			if err == nil {
				_, _, err = persister.Save(snap)
			}
			if err != nil {
				hookErr = err
			}
		},
	}, names, seqs)
	fullCohort := pggbRequest(names)
	if _, err := b1.Build(context.Background(), fullCohort); err != nil {
		t.Fatal(err)
	}
	if hookErr != nil {
		t.Fatal(hookErr)
	}
	if builds1 != 1 {
		t.Fatalf("process 1 built %d cohorts, want 1", builds1)
	}

	svc1 := mapserve.New(reg1, mapserve.Config{Workers: 2})
	want := make([]pipeline.Result, len(reads))
	for i, rd := range reads {
		resp, err := svc1.Map(context.Background(), rd)
		if err != nil {
			t.Fatalf("process 1 read %d: %v", i, err)
		}
		want[i] = resp.Result
	}

	// The process accepts one more build (a sub-cohort) and crashes before
	// finishing it: a begin record with no done.
	unfinishedReq := pggbRequest(names[:3])
	if _, err := j1.begin(unfinishedReq); err != nil {
		t.Fatal(err)
	}
	svc1.Close()
	j1.Close() // crash: journal closed abruptly, no done record

	// ---- process 2: warm restart from the store ----
	j2, err := OpenJournal(walPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	// (3a) the WAL replay surfaces the crash-interrupted request.
	pending := j2.Unfinished()
	if len(pending) != 1 || !reflect.DeepEqual(pending[0].Cohort, unfinishedReq.Cohort) {
		t.Fatalf("unfinished after crash = %+v, want the %v build", pending, unfinishedReq.Cohort)
	}

	// (1) boot the query tier straight from the store: zero construction.
	var builds2 int
	reg2 := &mapserve.Registry{}
	snap, storeGen, err := reg2.LoadLatest(sdir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if storeGen != 1 {
		t.Fatalf("warm restart loaded store generation %d, want 1", storeGen)
	}
	if snap.ID != "cohort-1" {
		t.Fatalf("warm restart loaded snapshot %q, want cohort-1", snap.ID)
	}
	if builds2 != 0 {
		t.Fatal("warm restart ran construction")
	}

	// (2) the restarted tier maps the same trace byte-identically.
	svc2 := mapserve.New(reg2, mapserve.Config{Workers: 2})
	defer svc2.Close()
	for i, rd := range reads {
		resp, err := svc2.Map(context.Background(), rd)
		if err != nil {
			t.Fatalf("process 2 read %d: %v", i, err)
		}
		if resp.Result != want[i] {
			t.Fatalf("read %d maps differently after warm restart:\n  before: %+v\n  after:  %+v", i, want[i], resp.Result)
		}
	}

	// (3b) Recover re-enqueues and completes the unfinished build, which
	// publishes + persists a new generation.
	b2 := testService(t, Config{
		Workers: 2,
		Journal: j2,
		OnResult: func(req Request, res *build.Result) {
			builds2++
			snap, err := mapserve.SnapshotFromBuild(fmt.Sprintf("recovered-%d", builds2), res, toolCfg)
			if err == nil {
				_, err = reg2.Publish(snap)
			}
			if err == nil {
				_, _, err = persister.Save(snap)
			}
			if err != nil {
				hookErr = err
			}
		},
	}, names, seqs)
	n, err := b2.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if hookErr != nil {
		t.Fatal(hookErr)
	}
	if n != 1 || builds2 != 1 {
		t.Fatalf("recover replayed %d requests (%d builds), want 1", n, builds2)
	}
	if gen, err := sdir.Current(); err != nil || gen != 2 {
		t.Fatalf("store current generation after recovery = (%d, %v), want 2", gen, err)
	}
	j2.Close()

	// A third boot finds a clean journal: recovery retired the original begin.
	j3, err := OpenJournal(walPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if n := len(j3.Unfinished()); n != 0 {
		t.Fatalf("unfinished after recovery = %d, want 0", n)
	}
}

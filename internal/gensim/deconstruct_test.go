package gensim

import (
	"bytes"
	"testing"

	"pangenomicsbench/internal/graph"
)

// TestDeconstructRecoversSimulatedVariants closes the loop: the variants the
// simulator planted must be recoverable from the pangenome graph by walking
// the reference path (vg-deconstruct style). Every SNP must be found with
// exact position and alleles; indels must be found at their positions.
func TestDeconstructRecoversSimulatedVariants(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefLen = 40_000
	cfg.Haplotypes = 6
	p, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sites, err := graph.Deconstruct(p.Graph, "ref", 2000)
	if err != nil {
		t.Fatal(err)
	}
	byPos := map[int][]graph.Site{}
	for _, s := range sites {
		byPos[s.RefPos] = append(byPos[s.RefPos], s)
	}

	carried := func(vi int) bool {
		for _, h := range p.Haplotypes {
			if h.Carries[vi] {
				return true
			}
		}
		return false
	}

	checked, found := 0, 0
	for vi, v := range p.Variants {
		if !carried(vi) {
			continue // variant absent from every haplotype: no bubble
		}
		checked++
		ok := false
		for _, s := range byPos[v.Pos] {
			switch v.Kind {
			case SNP:
				if bytes.Equal(s.Ref, v.Ref) && altsContain(s.Alts, v.Alt) {
					ok = true
				}
			case Insertion:
				if len(s.Ref) == 0 && altsContain(s.Alts, v.Alt) {
					ok = true
				}
			case Deletion:
				if bytes.Equal(s.Ref, v.Ref) && altsContain(s.Alts, nil) {
					ok = true
				}
			}
		}
		if ok {
			found++
		} else if v.Kind == SNP {
			t.Errorf("SNP at %d (%s→%s) not recovered", v.Pos, v.Ref, v.Alt)
		}
	}
	if checked == 0 {
		t.Fatal("no carried variants to check")
	}
	if float64(found)/float64(checked) < 0.9 {
		t.Fatalf("recovered only %d/%d carried variants", found, checked)
	}
	// No large excess of spurious sites.
	if len(sites) > checked*2+10 {
		t.Fatalf("%d sites for %d carried variants: too many spurious calls", len(sites), checked)
	}
}

func altsContain(alts [][]byte, want []byte) bool {
	for _, a := range alts {
		if bytes.Equal(a, want) {
			return true
		}
	}
	return false
}

package gensim

import (
	"fmt"
	"math"
	"math/rand"
)

// TraceConfig controls the synthetic multi-tenant request trace that drives
// serve-mode benchmarking. Each tenant owns a contiguous "home" window of
// the population's assemblies and issues build requests whose cohorts are
// drawn from that window with occasional drift, so consecutive requests of
// one tenant — and requests of tenants with adjacent windows — overlap
// heavily. That overlap is exactly what the serve-mode pair cache exploits.
type TraceConfig struct {
	// Tenants is the number of simulated clients (≥1).
	Tenants int
	// Requests is the total number of requests in the trace.
	Requests int
	// CohortMin / CohortMax bound each request's cohort size (clamped to
	// [2, population size]).
	CohortMin, CohortMax int
	// Drift is the per-request probability that a tenant's home window
	// shifts by one assembly, aging old pairs out of the working set.
	Drift float64
	// TenantSkew, when in (0,1), replaces the round-robin tenant rotation
	// with a truncated geometric draw: tenant t issues with weight
	// TenantSkew^t, so tenant 0 is one hot tenant and the rest a long cold
	// tail (the skewed-tenant scenario). 0 keeps round-robin — and the rng
	// stream byte-identical to earlier releases.
	TenantSkew float64
	// Seed makes the trace deterministic.
	Seed int64
}

// DefaultTraceConfig is a laptop-scale multi-tenant workload.
func DefaultTraceConfig() TraceConfig {
	return TraceConfig{
		Tenants:   4,
		Requests:  32,
		CohortMin: 3,
		CohortMax: 5,
		Drift:     0.25,
		Seed:      42,
	}
}

// TraceRequest is one serve-mode build request of the trace.
type TraceRequest struct {
	// Tenant identifies the issuing client (0-based).
	Tenant int
	// Cohort names the assemblies to build, in request order.
	Cohort []string
}

// Trace generates a deterministic multi-tenant request trace over the
// population's haplotypes. Requests are interleaved round-robin-ish across
// tenants in issue order; cohorts of one tenant are sampled from its slowly
// drifting home window so the trace exhibits the overlapping-cohort reuse
// pattern serve-mode caching targets.
func (p *Population) Trace(cfg TraceConfig) ([]TraceRequest, error) {
	names, _ := p.AssemblyView()
	n := len(names)
	if cfg.Tenants < 1 {
		return nil, fmt.Errorf("gensim: trace needs ≥1 tenant (got %d)", cfg.Tenants)
	}
	if cfg.Requests < 1 {
		return nil, fmt.Errorf("gensim: trace needs ≥1 request (got %d)", cfg.Requests)
	}
	if n < 2 {
		return nil, fmt.Errorf("gensim: population has %d assemblies, need ≥2", n)
	}
	lo, hi := cfg.CohortMin, cfg.CohortMax
	if lo < 2 {
		lo = 2
	}
	if hi > n {
		hi = n
	}
	if hi < lo {
		return nil, fmt.Errorf("gensim: cohort bounds [%d,%d] unsatisfiable for %d assemblies", cfg.CohortMin, cfg.CohortMax, n)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	home := make([]int, cfg.Tenants) // each tenant's window start
	for t := range home {
		home[t] = rng.Intn(n)
	}

	if cfg.TenantSkew < 0 || cfg.TenantSkew >= 1 {
		return nil, fmt.Errorf("gensim: TenantSkew %v outside [0,1)", cfg.TenantSkew)
	}

	out := make([]TraceRequest, 0, cfg.Requests)
	for r := 0; r < cfg.Requests; r++ {
		t := r % cfg.Tenants
		if cfg.TenantSkew > 0 {
			t = skewedIndex(rng, cfg.Tenants, cfg.TenantSkew)
		}
		if rng.Float64() < cfg.Drift {
			home[t] = (home[t] + 1) % n
		}
		size := lo + rng.Intn(hi-lo+1)
		cohort := make([]string, 0, size)
		for i := 0; i < size; i++ {
			cohort = append(cohort, names[(home[t]+i)%n])
		}
		// Occasionally shuffle so cohort ordering varies while the
		// underlying assembly set (and its cached pairs) repeats.
		if rng.Intn(4) == 0 {
			rng.Shuffle(len(cohort), func(i, j int) {
				cohort[i], cohort[j] = cohort[j], cohort[i]
			})
		}
		out = append(out, TraceRequest{Tenant: t, Cohort: cohort})
	}
	return out, nil
}

// skewedIndex draws an index in [0,n) from a truncated geometric
// distribution: index i carries weight skew^i, so index 0 dominates and the
// tail decays geometrically — the one-hot/long-tail shape of skewed
// multi-tenant traffic. Requires 0 < skew < 1.
func skewedIndex(rng *rand.Rand, n int, skew float64) int {
	if n <= 1 {
		return 0
	}
	u := rng.Float64()
	// Normalize the geometric weights over exactly n indices.
	total := 1 - math.Pow(skew, float64(n))
	acc, w := 0.0, (1-skew)/total
	for i := 0; i < n; i++ {
		acc += w
		if u < acc {
			return i
		}
		w *= skew
	}
	return n - 1
}

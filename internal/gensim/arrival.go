package gensim

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// ArrivalConfig controls a synthetic arrival curve: when each query of a
// trace reaches the service, as an offset from replay start. The base
// process is Poisson at BaseRate; Bursts flash-crowd windows spike the rate
// to BurstRate for BurstLen each, evenly spaced across the trace. The
// curve is what turns an open-loop replay ("issue as fast as clients can")
// into a shaped one ("issue when the workload says so"), which is the only
// way to reproduce admission-control behaviour like shed storms.
type ArrivalConfig struct {
	// Queries is the number of arrival offsets to generate (≥1).
	Queries int
	// BaseRate is the steady-state arrival rate in queries/second (>0).
	BaseRate float64
	// Bursts is the number of flash-crowd windows (0 = plain Poisson).
	Bursts int
	// BurstRate is the arrival rate inside a burst window (≥ BaseRate).
	BurstRate float64
	// BurstLen is each burst window's duration.
	BurstLen time.Duration
	// Seed makes the curve deterministic.
	Seed int64
}

// DefaultArrivalConfig is a laptop-scale steady curve with no bursts.
func DefaultArrivalConfig(queries int) ArrivalConfig {
	return ArrivalConfig{Queries: queries, BaseRate: 500, Seed: 42}
}

// Arrivals generates a deterministic, non-decreasing slice of arrival
// offsets. Burst windows are placed at even fractions of the generated span
// as it unfolds: once the running clock enters a burst window, inter-arrival
// gaps are drawn at BurstRate instead of BaseRate.
func Arrivals(cfg ArrivalConfig) ([]time.Duration, error) {
	if cfg.Queries < 1 {
		return nil, fmt.Errorf("gensim: arrivals need ≥1 query (got %d)", cfg.Queries)
	}
	if cfg.BaseRate <= 0 {
		return nil, fmt.Errorf("gensim: arrivals need BaseRate > 0 (got %v)", cfg.BaseRate)
	}
	if cfg.Bursts > 0 && cfg.BurstRate < cfg.BaseRate {
		return nil, fmt.Errorf("gensim: BurstRate %v below BaseRate %v", cfg.BurstRate, cfg.BaseRate)
	}
	if cfg.Bursts > 0 && cfg.BurstLen <= 0 {
		return nil, fmt.Errorf("gensim: bursts need BurstLen > 0")
	}

	// Expected span if every query arrived at BaseRate; burst windows are
	// pinned at even fractions of it so the curve is self-describing.
	span := time.Duration(float64(cfg.Queries) / cfg.BaseRate * float64(time.Second))
	type window struct{ start, end time.Duration }
	wins := make([]window, 0, cfg.Bursts)
	for b := 0; b < cfg.Bursts; b++ {
		at := time.Duration(float64(span) * (float64(b) + 0.5) / float64(cfg.Bursts))
		wins = append(wins, window{start: at, end: at + cfg.BurstLen})
	}
	inBurst := func(t time.Duration) bool {
		for _, w := range wins {
			if t >= w.start && t < w.end {
				return true
			}
		}
		return false
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]time.Duration, cfg.Queries)
	clock := time.Duration(0)
	for i := range out {
		rate := cfg.BaseRate
		if inBurst(clock) {
			rate = cfg.BurstRate
		}
		// Exponential inter-arrival at the current rate.
		gap := -math.Log(1-rng.Float64()) / rate
		clock += time.Duration(gap * float64(time.Second))
		out[i] = clock
	}
	return out, nil
}

package gensim

import (
	"fmt"
	"sort"
	"time"
)

// Scenario is one named adversarial workload family of the catalog. The
// paper's methodology is characterization — run the same kernels across
// workload shapes and find where behaviour breaks — and a Scenario is one
// such shape, self-describing (what it is, which failure mode it targets)
// and reproducible (every derived artifact is a pure function of the base
// config and its seed).
//
// A scenario reshapes the base configs of the existing generation pipeline
// rather than replacing it: Population feeds Simulate, Reads feeds
// SimulateReads, Trace feeds Population.Trace, ReadTrace feeds
// Population.ReadQueryTrace, and Arrival feeds Arrivals. Any nil reshaper
// leaves its config untouched, so every scenario composes with any scale.
type Scenario struct {
	// Name is the catalog key (e.g. "sv-dense").
	Name string
	// Summary is one line of what the workload looks like.
	Summary string
	// FailureMode names the kernel/serving behaviour the scenario is built
	// to break — the characterization target.
	FailureMode string

	Population func(Config) Config
	Reads      func(ReadConfig) ReadConfig
	Trace      func(TraceConfig) TraceConfig
	ReadTrace  func(ReadTraceConfig) ReadTraceConfig
	Arrival    func(ArrivalConfig) ArrivalConfig
}

// PopConfig applies the scenario's population reshaper (identity when nil).
func (s Scenario) PopConfig(base Config) Config {
	if s.Population == nil {
		return base
	}
	return s.Population(base)
}

// ReadsConfig applies the scenario's read reshaper (identity when nil).
func (s Scenario) ReadsConfig(base ReadConfig) ReadConfig {
	if s.Reads == nil {
		return base
	}
	return s.Reads(base)
}

// TraceConfig applies the scenario's build-trace reshaper (identity when nil).
func (s Scenario) TraceConfig(base TraceConfig) TraceConfig {
	if s.Trace == nil {
		return base
	}
	return s.Trace(base)
}

// ReadTraceConfig applies the scenario's query-trace reshaper (identity when
// nil).
func (s Scenario) ReadTraceConfig(base ReadTraceConfig) ReadTraceConfig {
	if s.ReadTrace == nil {
		return base
	}
	return s.ReadTrace(base)
}

// ArrivalConfig applies the scenario's arrival-curve reshaper (identity when
// nil).
func (s Scenario) ArrivalConfig(base ArrivalConfig) ArrivalConfig {
	if s.Arrival == nil {
		return base
	}
	return s.Arrival(base)
}

// Describe renders the catalog entry as "name: summary (targets: ...)".
func (s Scenario) Describe() string {
	return fmt.Sprintf("%-15s %s (targets: %s)", s.Name, s.Summary, s.FailureMode)
}

// catalog is the fixed scenario set, keyed by name. Fixed and named is the
// point (the GAP suite's lesson): results quoted against "sv-dense" mean the
// same cohort shape in every paper, run, and regression bisect.
var catalog = map[string]Scenario{
	"baseline": {
		Name:        "baseline",
		Summary:     "the original single population shape, unmodified",
		FailureMode: "nothing — the control arm every other scenario is read against",
	},
	"sv-dense": {
		Name:    "sv-dense",
		Summary: "SV insertion sites at ~50x density, each a 3-allele group of near-identical alleles",
		FailureMode: "nested-bubble construction: transclosure growth, sibling-collapse " +
			"fixpoint, and bubble-dense chaining ambiguity",
		Population: func(c Config) Config {
			c.SVRate *= 50
			c.SVAlleles = 3
			c.IndelRate *= 2
			if c.MaxSV > 300 {
				c.MaxSV = 300 // many medium SVs beat few huge ones for bubble density
			}
			return c
		},
	},
	"high-cycle": {
		Name:    "high-cycle",
		Summary: "repeat-rich reference (~35% noisy tandem arrays) with dense small variation",
		FailureMode: "minimizer multi-hits and chaining ambiguity; MC sibling collapse and " +
			"seed-filter selectivity degrade on repeats",
		Population: func(c Config) Config {
			c.RepeatFrac = 0.35
			c.RepeatPeriod = 24
			c.SNPRate *= 4
			c.IndelRate *= 4
			return c
		},
	},
	"ultralong-hifi": {
		Name:    "ultralong-hifi",
		Summary: "HiFi-like reads stretched to 8 kb with a realistic indel component",
		FailureMode: "GWFA 2000 bp piecewise bridging (≥4 resume points per gap), per-read " +
			"kernel time skew inside micro-batches",
		Reads: func(c ReadConfig) ReadConfig {
			c.Length = 8_000
			c.SubRate = 0.004
			c.IndelRate = 0.01
			return c
		},
		ReadTrace: func(c ReadTraceConfig) ReadTraceConfig {
			c.ReadLen = 8_000
			c.SubRate = 0.004
			c.IndelRate = 0.01
			return c
		},
	},
	"contaminated": {
		Name:    "contaminated",
		Summary: "30% of reads are pure off-population noise, the rest carry 10x error",
		FailureMode: "seed-stage dead ends and filter rejects: unmapped-path handling, " +
			"wasted alignment work, chaff in result caches",
		Reads: func(c ReadConfig) ReadConfig {
			c.Contamination = 0.3
			c.SubRate *= 10
			c.IndelRate *= 10
			return c
		},
		ReadTrace: func(c ReadTraceConfig) ReadTraceConfig {
			c.Contamination = 0.3
			c.SubRate *= 10
			c.IndelRate *= 10
			return c
		},
	},
	"skewed-tenant": {
		Name:    "skewed-tenant",
		Summary: "one hot tenant/client issues most traffic; the rest form a long cold tail",
		FailureMode: "fairness and cache residency: hot-cohort pair-cache monopoly, " +
			"queue-share starvation of cold tenants",
		Trace: func(c TraceConfig) TraceConfig {
			c.TenantSkew = 0.35
			if c.Tenants < 8 {
				c.Tenants = 8
			}
			return c
		},
		ReadTrace: func(c ReadTraceConfig) ReadTraceConfig {
			c.ClientSkew = 0.35
			if c.Clients < 8 {
				c.Clients = 8
			}
			return c
		},
	},
	"flash-crowd": {
		Name:    "flash-crowd",
		Summary: "Poisson arrivals with periodic 20x burst windows",
		FailureMode: "admission control: queue-depth watermarks, shed storms, batch " +
			"formation collapse during bursts",
		ReadTrace: func(c ReadTraceConfig) ReadTraceConfig {
			c.RepeatRate = 0.3 // crowds re-request the same hot content
			return c
		},
		Arrival: func(c ArrivalConfig) ArrivalConfig {
			c.Bursts = 3
			c.BurstRate = c.BaseRate * 20
			if c.BurstLen <= 0 {
				c.BurstLen = 200 * time.Millisecond
			}
			return c
		},
	},
}

// Scenarios returns the catalog sorted by name.
func Scenarios() []Scenario {
	out := make([]Scenario, 0, len(catalog))
	for _, s := range catalog {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ScenarioNames returns the sorted catalog keys.
func ScenarioNames() []string {
	names := make([]string, 0, len(catalog))
	for name := range catalog {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// LookupScenario resolves a catalog name.
func LookupScenario(name string) (Scenario, error) {
	s, ok := catalog[name]
	if !ok {
		return Scenario{}, fmt.Errorf("gensim: unknown scenario %q (have %v)", name, ScenarioNames())
	}
	return s, nil
}

package gensim

import (
	"bytes"
	"testing"

	"pangenomicsbench/internal/graph"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.RefLen = 20_000
	cfg.Haplotypes = 4
	return cfg
}

func TestSimulateDeterministic(t *testing.T) {
	a, err := Simulate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Ref, b.Ref) || len(a.Variants) != len(b.Variants) {
		t.Fatal("simulation must be deterministic for a fixed seed")
	}
	for i := range a.Haplotypes {
		if !bytes.Equal(a.Haplotypes[i].Seq, b.Haplotypes[i].Seq) {
			t.Fatal("haplotypes differ across runs")
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(Config{RefLen: 10}); err == nil {
		t.Fatal("tiny RefLen must be rejected")
	}
	cfg := smallConfig()
	cfg.Haplotypes = 0
	if _, err := Simulate(cfg); err == nil {
		t.Fatal("zero haplotypes must be rejected")
	}
}

// TestHaplotypePathsRoundTrip is the central invariant: every haplotype's
// graph path must spell exactly the haplotype sequence.
func TestHaplotypePathsRoundTrip(t *testing.T) {
	p, err := Simulate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Variants) == 0 {
		t.Fatal("expected some variants at this size")
	}
	paths := p.Graph.Paths()
	if len(paths) != len(p.Haplotypes)+1 {
		t.Fatalf("paths = %d, want %d (haplotypes + ref)", len(paths), len(p.Haplotypes)+1)
	}
	for i, h := range p.Haplotypes {
		got := p.Graph.PathSeq(paths[i])
		if !bytes.Equal(got, h.Seq) {
			t.Fatalf("haplotype %d path does not spell its sequence (len %d vs %d)",
				i, len(got), len(h.Seq))
		}
	}
	// Reference path spells the reference.
	refPath := paths[len(paths)-1]
	if refPath.Name != "ref" || !bytes.Equal(p.Graph.PathSeq(refPath), p.Ref) {
		t.Fatal("reference path wrong")
	}
	if err := p.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGraphIsAcyclic(t *testing.T) {
	p, err := Simulate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !p.Graph.IsAcyclic() {
		t.Fatal("variant graph must be a DAG")
	}
}

func TestVariantEffects(t *testing.T) {
	p, err := Simulate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A haplotype carrying no variants equals the reference.
	plain := p.applyVariants(make([]bool, len(p.Variants)))
	if !bytes.Equal(plain, p.Ref) {
		t.Fatal("no-variant haplotype must equal the reference")
	}
	// A haplotype carrying all variants differs.
	all := make([]bool, len(p.Variants))
	for i := range all {
		all[i] = true
	}
	full := p.applyVariants(all)
	if bytes.Equal(full, p.Ref) {
		t.Fatal("all-variant haplotype must differ from the reference")
	}
	// Length accounting: insertions add, deletions remove.
	wantDelta := 0
	for _, v := range p.Variants {
		wantDelta += len(v.Alt) - len(v.Ref)
		if v.Kind == SNP {
			wantDelta += 0 // SNP has Ref and Alt of length 1 each
		}
	}
	if len(full)-len(p.Ref) != wantDelta {
		t.Fatalf("length delta %d, want %d", len(full)-len(p.Ref), wantDelta)
	}
}

func TestSimulateReads(t *testing.T) {
	p, err := Simulate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	reads, err := p.SimulateReads(ShortReadConfig(50))
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != 50 {
		t.Fatalf("reads = %d", len(reads))
	}
	for _, r := range reads {
		if len(r.Seq) < 140 || len(r.Seq) > 160 {
			t.Fatalf("short read length %d out of expected range", len(r.Seq))
		}
		// Truth must point at a real location.
		hap := p.Haplotypes[r.Hap].Seq
		if r.Pos < 0 || r.Pos >= len(hap) {
			t.Fatalf("truth position %d out of range", r.Pos)
		}
		// The error rate is low: most 21-mers of the read must occur in its
		// origin window (robust to indel frame shifts).
		orig := hap[r.Pos:min(r.Pos+170, len(hap))]
		kmers := map[string]bool{}
		for i := 0; i+21 <= len(orig); i++ {
			kmers[string(orig[i:i+21])] = true
		}
		found, total := 0, 0
		for i := 0; i+21 <= len(r.Seq); i++ {
			total++
			if kmers[string(r.Seq[i:i+21])] {
				found++
			}
		}
		if total > 0 && float64(found)/float64(total) < 0.5 {
			t.Fatalf("read diverges too much from its origin (%d/%d 21-mers)", found, total)
		}
	}
	if _, err := p.SimulateReads(ReadConfig{}); err == nil {
		t.Fatal("invalid read config must be rejected")
	}
}

func TestAssemblyView(t *testing.T) {
	p, err := Simulate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	names, seqs := p.AssemblyView()
	if len(names) != len(p.Haplotypes) || len(seqs) != len(names) {
		t.Fatal("assembly view size wrong")
	}
	if !bytes.Equal(seqs[0], p.Haplotypes[0].Seq) {
		t.Fatal("assembly view content wrong")
	}
}

func TestGraphNodeStats(t *testing.T) {
	p, err := Simulate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	stats := p.Graph.ComputeStats()
	if stats.Nodes < len(p.Variants) {
		t.Fatalf("graph too small: %d nodes for %d variants", stats.Nodes, len(p.Variants))
	}
	// Every variant with an alt allele adds exactly one alt node, and
	// reference bases are partitioned among segment nodes.
	refBases := 0
	for id := graph.NodeID(1); int(id) <= stats.Nodes; id++ {
		refBases += len(p.Graph.Seq(id))
	}
	altBases := 0
	for _, v := range p.Variants {
		altBases += len(v.Alt)
	}
	if refBases != len(p.Ref)+altBases {
		t.Fatalf("graph bases %d != ref %d + alts %d", refBases, len(p.Ref), altBases)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

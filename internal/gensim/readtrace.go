package gensim

import (
	"fmt"
	"math/rand"
)

// ReadTraceConfig controls the synthetic read-query trace that drives
// map-serve benchmarking — the query-side analogue of TraceConfig's build
// requests. Each client issues mapping queries for reads drawn from the
// population; a RepeatRate fraction re-issue an earlier query's exact read
// bytes, which is what lets a replay pin "identical reads map identically"
// across snapshot hot-swaps.
type ReadTraceConfig struct {
	// Queries is the total number of queries in the trace (≥1).
	Queries int
	// Clients is the number of simulated query streams (≥1); queries are
	// interleaved round-robin across them in issue order.
	Clients int
	// ReadLen, SubRate and IndelRate parameterize the fresh reads exactly as
	// ReadConfig does.
	ReadLen   int
	SubRate   float64
	IndelRate float64
	// RepeatRate is the probability that a query re-issues a uniformly
	// chosen earlier read instead of a fresh one.
	RepeatRate float64
	// ClientSkew, when in (0,1), replaces round-robin client assignment
	// with a truncated geometric draw (client c issues with weight
	// ClientSkew^c): one hot client, a long cold tail. 0 keeps round-robin
	// — and the rng stream byte-identical to earlier releases.
	ClientSkew float64
	// Contamination is the probability that a fresh read is a uniform
	// random sequence with no origin in the population (Hap = -1, Pos = -1),
	// as in ReadConfig.Contamination. 0 draws nothing extra.
	Contamination float64
	// Seed makes the trace deterministic.
	Seed int64
}

// DefaultReadTraceConfig is a laptop-scale short-read query workload.
func DefaultReadTraceConfig() ReadTraceConfig {
	return ReadTraceConfig{
		Queries:    256,
		Clients:    4,
		ReadLen:    150,
		SubRate:    0.002,
		IndelRate:  0.0001,
		RepeatRate: 0.2,
		Seed:       42,
	}
}

// ReadQuery is one mapping query of the trace.
type ReadQuery struct {
	// Client identifies the issuing stream (0-based).
	Client int
	// Read is the query read with its ground truth. Repeated queries share
	// the original's truth (and its exact Seq bytes).
	Read Read
	// Repeat is the index of the earlier query this one re-issues, or -1
	// for a fresh read.
	Repeat int
}

// ReadQueryTrace generates a deterministic read-query trace over the
// population's haplotypes: fresh reads are sampled uniformly across
// haplotypes and positions with the error model applied, and RepeatRate of
// the queries re-issue earlier reads byte-for-byte.
func (p *Population) ReadQueryTrace(cfg ReadTraceConfig) ([]ReadQuery, error) {
	if cfg.Queries < 1 {
		return nil, fmt.Errorf("gensim: read trace needs ≥1 query (got %d)", cfg.Queries)
	}
	if cfg.Clients < 1 {
		return nil, fmt.Errorf("gensim: read trace needs ≥1 client (got %d)", cfg.Clients)
	}
	if cfg.ReadLen < 1 {
		return nil, fmt.Errorf("gensim: read trace needs ReadLen ≥1 (got %d)", cfg.ReadLen)
	}
	if cfg.RepeatRate < 0 || cfg.RepeatRate > 1 {
		return nil, fmt.Errorf("gensim: RepeatRate %v outside [0,1]", cfg.RepeatRate)
	}
	if cfg.ClientSkew < 0 || cfg.ClientSkew >= 1 {
		return nil, fmt.Errorf("gensim: ClientSkew %v outside [0,1)", cfg.ClientSkew)
	}
	if cfg.Contamination < 0 || cfg.Contamination > 1 {
		return nil, fmt.Errorf("gensim: Contamination %v outside [0,1]", cfg.Contamination)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]ReadQuery, 0, cfg.Queries)
	for q := 0; q < cfg.Queries; q++ {
		rq := ReadQuery{Client: q % cfg.Clients, Repeat: -1}
		if cfg.ClientSkew > 0 {
			rq.Client = skewedIndex(rng, cfg.Clients, cfg.ClientSkew)
		}
		if len(out) > 0 && rng.Float64() < cfg.RepeatRate {
			rq.Repeat = rng.Intn(len(out))
			rq.Read = out[rq.Repeat].Read
			rq.Read.Name = fmt.Sprintf("query%06d@%d", q, rq.Repeat)
		} else if cfg.Contamination > 0 && rng.Float64() < cfg.Contamination {
			rq.Read = Read{
				Name: fmt.Sprintf("query%06d", q),
				Seq:  RandomGenome(rng, cfg.ReadLen),
				Hap:  -1,
				Pos:  -1,
			}
		} else {
			h := rng.Intn(len(p.Haplotypes))
			hap := p.Haplotypes[h].Seq
			length := cfg.ReadLen
			if length > len(hap) {
				length = len(hap)
			}
			pos := 0
			if len(hap) > length {
				pos = rng.Intn(len(hap) - length)
			}
			rq.Read = Read{
				Name: fmt.Sprintf("query%06d", q),
				Seq:  applyErrors(rng, hap[pos:pos+length], cfg.SubRate, cfg.IndelRate),
				Hap:  h,
				Pos:  pos,
			}
		}
		out = append(out, rq)
	}
	return out, nil
}

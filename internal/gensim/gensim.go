// Package gensim is the dataset substrate of the reproduction: a
// deterministic simulator of a diploid population that stands in for the
// paper's HPRC pangenome and HG002 read sets (see DESIGN.md §1). It builds
// an ancestral reference, samples variants (SNPs, indels, structural
// variants), derives haplotypes, constructs the pangenome graph those
// haplotypes imply, and simulates Illumina-like short reads and HiFi-like
// long reads with known truth.
package gensim

import (
	"fmt"
	"math/rand"
	"sort"

	"pangenomicsbench/internal/graph"
)

// VariantKind enumerates the simulated variant classes.
type VariantKind int

// Variant classes.
const (
	SNP VariantKind = iota
	Insertion
	Deletion
)

// Variant is one site of variation against the reference.
type Variant struct {
	Kind VariantKind
	Pos  int    // reference position of the site
	Ref  []byte // reference allele (empty for insertions)
	Alt  []byte // alternate allele (empty for deletions)
	Freq float64
	// Group links the alleles of one multi-allelic site (0 = independent
	// biallelic site). Alleles of a group sit at the same Pos, are stored
	// consecutively, and a haplotype carries at most one of them.
	Group int
}

// Config controls the simulation. The zero value is invalid; use
// DefaultConfig as a base.
type Config struct {
	RefLen     int
	Haplotypes int
	SNPRate    float64 // per-base probability of a SNP site
	IndelRate  float64 // per-base probability of a small indel site
	SVRate     float64 // per-base probability of a structural variant site
	MaxIndel   int
	MaxSV      int
	Seed       int64
	// MaxNodeLen splits long graph nodes into chains of at most this many
	// base pairs, matching real Minigraph-Cactus graphs whose nodes average
	// ~27 bp (paper §6.2). 0 disables splitting.
	MaxNodeLen int
	// SVAlleles turns each SV insertion site into a multi-allelic group of
	// this many alternate alleles — mutated copies of one base insertion —
	// so haplotypes thread different near-identical branches and the
	// constructed graphs nest bubbles inside bubbles (the sv-dense
	// scenario). ≤1 keeps sites biallelic; default configs are unaffected.
	SVAlleles int
	// RepeatFrac makes roughly this fraction of the reference noisy tandem
	// repeat arrays of period RepeatPeriod instead of uniform random
	// sequence, stressing minimizer multi-hits and chaining ambiguity (the
	// high-cycle scenario). 0 keeps the reference uniform random — and the
	// rng stream byte-identical to earlier releases.
	RepeatFrac   float64
	RepeatPeriod int
}

// DefaultConfig mirrors human-like variation density at laptop scale.
func DefaultConfig() Config {
	return Config{
		RefLen:     200_000,
		Haplotypes: 8,
		SNPRate:    0.001,
		IndelRate:  0.0002,
		SVRate:     0.00001,
		MaxIndel:   12,
		MaxSV:      500,
		Seed:       42,
		MaxNodeLen: 32,
	}
}

// Haplotype is one simulated genome copy.
type Haplotype struct {
	Name string
	Seq  []byte
	// Carries[i] reports whether this haplotype has variant i.
	Carries []bool
}

// Population is a simulated cohort plus its pangenome graph.
type Population struct {
	Ref        []byte
	Variants   []Variant
	Haplotypes []Haplotype
	// Graph is the pangenome: reference segments with bubbles at variant
	// sites; every haplotype is embedded as a path.
	Graph *graph.Graph
}

// Simulate builds a population.
func Simulate(cfg Config) (*Population, error) {
	if cfg.RefLen < 100 {
		return nil, fmt.Errorf("gensim: RefLen %d too small", cfg.RefLen)
	}
	if cfg.Haplotypes < 1 {
		return nil, fmt.Errorf("gensim: need at least one haplotype")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := &Population{}
	if cfg.RepeatFrac > 0 && cfg.RepeatPeriod > 0 {
		p.Ref = repeatGenome(rng, cfg.RefLen, cfg.RepeatFrac, cfg.RepeatPeriod)
	} else {
		p.Ref = RandomGenome(rng, cfg.RefLen)
	}

	// Sample variant sites, keeping them non-overlapping with a safety gap.
	lastEnd := -2
	nextGroup := 1
	for pos := 1; pos < cfg.RefLen-1; pos++ {
		if pos <= lastEnd+1 {
			continue
		}
		r := rng.Float64()
		var v Variant
		switch {
		case r < cfg.SNPRate:
			old := p.Ref[pos]
			alt := old
			for alt == old {
				alt = "ACGT"[rng.Intn(4)]
			}
			v = Variant{Kind: SNP, Pos: pos, Ref: []byte{old}, Alt: []byte{alt}}
			lastEnd = pos
		case r < cfg.SNPRate+cfg.IndelRate:
			n := 1 + rng.Intn(cfg.MaxIndel)
			if rng.Intn(2) == 0 && pos+n < cfg.RefLen-1 {
				v = Variant{Kind: Deletion, Pos: pos, Ref: append([]byte(nil), p.Ref[pos:pos+n]...)}
				lastEnd = pos + n - 1
			} else {
				v = Variant{Kind: Insertion, Pos: pos, Alt: RandomGenome(rng, n)}
				lastEnd = pos
			}
		case r < cfg.SNPRate+cfg.IndelRate+cfg.SVRate:
			n := cfg.MaxSV/2 + rng.Intn(cfg.MaxSV/2+1)
			if rng.Intn(2) == 0 && pos+n < cfg.RefLen-1 {
				v = Variant{Kind: Deletion, Pos: pos, Ref: append([]byte(nil), p.Ref[pos:pos+n]...)}
				lastEnd = pos + n - 1
			} else if cfg.SVAlleles > 1 {
				// Multi-allelic SV site: alleles are near-identical copies of
				// one base insertion, so graphs built from the haplotype
				// sequences nest bubbles inside the insertion bubble.
				base := RandomGenome(rng, n)
				freq := (0.05 + rng.Float64()*0.9) / float64(cfg.SVAlleles)
				for a := 0; a < cfg.SVAlleles; a++ {
					alt := base
					if a > 0 {
						alt = mutateGenome(rng, base, 0.03)
					}
					p.Variants = append(p.Variants, Variant{
						Kind: Insertion, Pos: pos, Alt: alt, Freq: freq, Group: nextGroup,
					})
				}
				nextGroup++
				lastEnd = pos
				continue
			} else {
				v = Variant{Kind: Insertion, Pos: pos, Alt: RandomGenome(rng, n)}
				lastEnd = pos
			}
		default:
			continue
		}
		v.Freq = 0.05 + rng.Float64()*0.9
		p.Variants = append(p.Variants, v)
	}

	// Haplotypes: each carries each independent variant with its frequency;
	// multi-allelic groups get one draw that picks at most one allele.
	for h := 0; h < cfg.Haplotypes; h++ {
		hap := Haplotype{Name: fmt.Sprintf("hap%02d", h), Carries: make([]bool, len(p.Variants))}
		for i := 0; i < len(p.Variants); i++ {
			v := p.Variants[i]
			if v.Group == 0 {
				hap.Carries[i] = rng.Float64() < v.Freq
				continue
			}
			end := i
			for end < len(p.Variants) && p.Variants[end].Group == v.Group {
				end++
			}
			u := rng.Float64()
			acc := 0.0
			for a := i; a < end; a++ {
				acc += p.Variants[a].Freq
				if u < acc {
					hap.Carries[a] = true
					break
				}
			}
			i = end - 1
		}
		hap.Seq = p.applyVariants(hap.Carries)
		p.Haplotypes = append(p.Haplotypes, hap)
	}

	var err error
	p.Graph, err = p.buildGraph()
	if err != nil {
		return nil, err
	}
	if cfg.MaxNodeLen > 0 {
		p.Graph = graph.Split(p.Graph, cfg.MaxNodeLen)
	}
	return p, nil
}

// RandomGenome returns a uniform random DNA sequence.
func RandomGenome(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = "ACGT"[rng.Intn(4)]
	}
	return s
}

// repeatGenome returns a genome where roughly frac of the bases sit in noisy
// tandem repeat arrays (fresh random unit of the given period, 4–11 copies,
// ~2% divergence between copies), the rest uniform random. Repeat arrays are
// what defeats minimizer uniqueness: every copy seeds the same k-mers.
func repeatGenome(rng *rand.Rand, n int, frac float64, period int) []byte {
	s := make([]byte, 0, n)
	for len(s) < n {
		if rng.Float64() < frac {
			unit := RandomGenome(rng, period)
			copies := 4 + rng.Intn(8)
			for c := 0; c < copies && len(s) < n; c++ {
				for _, b := range unit {
					if len(s) == n {
						break
					}
					if rng.Float64() < 0.02 {
						b = "ACGT"[rng.Intn(4)]
					}
					s = append(s, b)
				}
			}
		} else {
			m := period * 6
			if len(s)+m > n {
				m = n - len(s)
			}
			s = append(s, RandomGenome(rng, m)...)
		}
	}
	return s
}

// mutateGenome returns a copy of seq with substitutions at the given
// per-base rate (length-preserving, so multi-allelic alleles stay
// comparable in size).
func mutateGenome(rng *rand.Rand, seq []byte, rate float64) []byte {
	out := append([]byte(nil), seq...)
	for i, b := range out {
		if rng.Float64() < rate {
			alt := b
			for alt == b {
				alt = "ACGT"[rng.Intn(4)]
			}
			out[i] = alt
		}
	}
	return out
}

// applyVariants threads the reference through the chosen alleles.
func (p *Population) applyVariants(carries []bool) []byte {
	var out []byte
	pos := 0
	for i, v := range p.Variants {
		if v.Pos > pos {
			out = append(out, p.Ref[pos:v.Pos]...)
			pos = v.Pos
		}
		if !carries[i] {
			continue // reference allele; emitted by the next flank copy
		}
		switch v.Kind {
		case SNP:
			out = append(out, v.Alt...)
			pos = v.Pos + 1
		case Deletion:
			pos = v.Pos + len(v.Ref)
		case Insertion:
			out = append(out, v.Alt...)
		}
	}
	out = append(out, p.Ref[pos:]...)
	return out
}

// buildGraph constructs the pangenome graph implied by the variant set:
// reference segments between variant breakpoints, one alt node per SNP or
// insertion allele, deletion edges, and every haplotype embedded as a path.
func (p *Population) buildGraph() (*graph.Graph, error) {
	g := graph.New()

	// Breakpoints partition the reference.
	cuts := map[int]bool{0: true, len(p.Ref): true}
	for _, v := range p.Variants {
		cuts[v.Pos] = true
		switch v.Kind {
		case SNP:
			cuts[v.Pos+1] = true
		case Deletion:
			cuts[v.Pos+len(v.Ref)] = true
		}
	}
	bps := make([]int, 0, len(cuts))
	for c := range cuts {
		bps = append(bps, c)
	}
	sort.Ints(bps)

	// Reference segment nodes.
	segAt := map[int]graph.NodeID{} // start position → node
	segEndAt := map[int]int{}       // start position → end position
	for i := 0; i+1 < len(bps); i++ {
		if bps[i+1] > bps[i] {
			id := g.AddNode(p.Ref[bps[i]:bps[i+1]])
			segAt[bps[i]] = id
			segEndAt[bps[i]] = bps[i+1]
		}
	}

	// Alt allele nodes.
	altNode := make([]graph.NodeID, len(p.Variants))
	for i, v := range p.Variants {
		if len(v.Alt) > 0 {
			altNode[i] = g.AddNode(v.Alt)
		}
	}

	// Haplotype walks create all edges via AddPath.
	for h := range p.Haplotypes {
		walk, err := p.walkNodes(g, segAt, segEndAt, altNode, p.Haplotypes[h].Carries)
		if err != nil {
			return nil, err
		}
		if err := g.AddPath(p.Haplotypes[h].Name, walk); err != nil {
			return nil, err
		}
	}
	// Also embed the reference itself as a path.
	refWalk, err := p.walkNodes(g, segAt, segEndAt, altNode, make([]bool, len(p.Variants)))
	if err != nil {
		return nil, err
	}
	if err := g.AddPath("ref", refWalk); err != nil {
		return nil, err
	}
	return g, nil
}

// walkNodes lists the node walk of a haplotype defined by its variant set.
func (p *Population) walkNodes(g *graph.Graph, segAt map[int]graph.NodeID, segEndAt map[int]int, altNode []graph.NodeID, carries []bool) ([]graph.NodeID, error) {
	var walk []graph.NodeID
	pos := 0
	vi := 0
	for pos < len(p.Ref) {
		// Emit any insertion at this position first.
		for vi < len(p.Variants) && p.Variants[vi].Pos < pos {
			vi++
		}
		for j := vi; j < len(p.Variants) && p.Variants[j].Pos == pos; j++ {
			v := p.Variants[j]
			if v.Kind == Insertion && carries[j] {
				walk = append(walk, altNode[j])
			}
			if carries[j] && v.Kind == SNP {
				walk = append(walk, altNode[j])
				pos = v.Pos + 1
			}
			if carries[j] && v.Kind == Deletion {
				pos = v.Pos + len(v.Ref)
			}
		}
		if pos >= len(p.Ref) {
			break
		}
		id, ok := segAt[pos]
		if !ok {
			return nil, fmt.Errorf("gensim: no segment at position %d", pos)
		}
		walk = append(walk, id)
		pos = segEndAt[pos]
	}
	return walk, nil
}

package gensim

import (
	"reflect"
	"testing"
)

func tracePopulation(t *testing.T) *Population {
	t.Helper()
	cfg := DefaultConfig()
	cfg.RefLen = 2000
	cfg.Haplotypes = 8
	pop, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

func TestTraceDeterministicAndValid(t *testing.T) {
	pop := tracePopulation(t)
	cfg := DefaultTraceConfig()
	a, err := pop.Trace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pop.Trace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("trace not deterministic for a fixed seed")
	}
	if len(a) != cfg.Requests {
		t.Fatalf("trace has %d requests, want %d", len(a), cfg.Requests)
	}

	names, _ := pop.AssemblyView()
	known := map[string]bool{}
	for _, n := range names {
		known[n] = true
	}
	for i, req := range a {
		if req.Tenant < 0 || req.Tenant >= cfg.Tenants {
			t.Fatalf("request %d: tenant %d out of range", i, req.Tenant)
		}
		if len(req.Cohort) < 2 || len(req.Cohort) > cfg.CohortMax {
			t.Fatalf("request %d: cohort size %d outside [2,%d]", i, len(req.Cohort), cfg.CohortMax)
		}
		seen := map[string]bool{}
		for _, name := range req.Cohort {
			if !known[name] {
				t.Fatalf("request %d: unknown assembly %q", i, name)
			}
			if seen[name] {
				t.Fatalf("request %d: repeated assembly %q", i, name)
			}
			seen[name] = true
		}
	}
}

func TestTraceOverlap(t *testing.T) {
	pop := tracePopulation(t)
	trace, err := pop.Trace(DefaultTraceConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The workload must repeat assembly pairs: distinct pairs touched must
	// be well below total pair touches, else there is nothing to cache.
	pair := func(a, b string) [2]string {
		if a > b {
			a, b = b, a
		}
		return [2]string{a, b}
	}
	total, distinct := 0, map[[2]string]bool{}
	for _, req := range trace {
		for i := 0; i < len(req.Cohort); i++ {
			for j := i + 1; j < len(req.Cohort); j++ {
				total++
				distinct[pair(req.Cohort[i], req.Cohort[j])] = true
			}
		}
	}
	if len(distinct)*2 > total {
		t.Fatalf("trace has little overlap: %d distinct of %d pair touches", len(distinct), total)
	}
}

func TestTraceValidation(t *testing.T) {
	pop := tracePopulation(t)
	bad := []TraceConfig{
		{Tenants: 0, Requests: 1, CohortMin: 2, CohortMax: 3},
		{Tenants: 1, Requests: 0, CohortMin: 2, CohortMax: 3},
		{Tenants: 1, Requests: 1, CohortMin: 9, CohortMax: 100},
	}
	for i, cfg := range bad {
		if _, err := pop.Trace(cfg); err == nil {
			t.Errorf("case %d: invalid trace config accepted: %+v", i, cfg)
		}
	}
}

package gensim

import (
	"bytes"
	"testing"
)

func traceTestPop(t *testing.T) *Population {
	t.Helper()
	cfg := DefaultConfig()
	cfg.RefLen = 5000
	cfg.Haplotypes = 4
	pop, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

func TestReadQueryTraceDeterministic(t *testing.T) {
	pop := traceTestPop(t)
	cfg := DefaultReadTraceConfig()
	cfg.Queries = 64
	a, err := pop.ReadQueryTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pop.ReadQueryTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != cfg.Queries || len(b) != cfg.Queries {
		t.Fatalf("trace lengths %d/%d, want %d", len(a), len(b), cfg.Queries)
	}
	for i := range a {
		if a[i].Client != b[i].Client || a[i].Repeat != b[i].Repeat ||
			!bytes.Equal(a[i].Read.Seq, b[i].Read.Seq) {
			t.Fatalf("query %d differs across identical-seed traces", i)
		}
	}
	cfg.Seed++
	c, err := pop.ReadQueryTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if bytes.Equal(a[i].Read.Seq, c[i].Read.Seq) {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestReadQueryTraceRepeats(t *testing.T) {
	pop := traceTestPop(t)
	cfg := DefaultReadTraceConfig()
	cfg.Queries = 200
	cfg.RepeatRate = 0.5
	trace, err := pop.ReadQueryTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	repeats := 0
	for i, q := range trace {
		if q.Client != i%cfg.Clients {
			t.Fatalf("query %d: client %d, want round-robin %d", i, q.Client, i%cfg.Clients)
		}
		if q.Repeat < 0 {
			continue
		}
		repeats++
		if q.Repeat >= i {
			t.Fatalf("query %d repeats later query %d", i, q.Repeat)
		}
		orig := trace[q.Repeat].Read
		if !bytes.Equal(q.Read.Seq, orig.Seq) || q.Read.Hap != orig.Hap || q.Read.Pos != orig.Pos {
			t.Fatalf("query %d repeat differs from original %d", i, q.Repeat)
		}
	}
	// With RepeatRate 0.5 over 200 queries, repeats should be plentiful.
	if repeats < 50 {
		t.Fatalf("only %d repeats in a 50%%-repeat trace", repeats)
	}

	cfg.RepeatRate = 0
	trace, err = pop.ReadQueryTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range trace {
		if q.Repeat != -1 {
			t.Fatalf("query %d marked repeat with RepeatRate 0", i)
		}
	}
}

func TestReadQueryTraceValidation(t *testing.T) {
	pop := traceTestPop(t)
	bad := []ReadTraceConfig{
		{Queries: 0, Clients: 1, ReadLen: 100},
		{Queries: 1, Clients: 0, ReadLen: 100},
		{Queries: 1, Clients: 1, ReadLen: 0},
		{Queries: 1, Clients: 1, ReadLen: 100, RepeatRate: 1.5},
	}
	for i, cfg := range bad {
		if _, err := pop.ReadQueryTrace(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

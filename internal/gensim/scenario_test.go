package gensim

import (
	"bytes"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// scenarioBase is the reduced-size base config the scenario tests reshape.
func scenarioBase() Config {
	cfg := DefaultConfig()
	cfg.RefLen = 20_000
	cfg.Haplotypes = 4
	return cfg
}

func TestScenarioCatalog(t *testing.T) {
	names := ScenarioNames()
	want := []string{"baseline", "contaminated", "flash-crowd", "high-cycle",
		"skewed-tenant", "sv-dense", "ultralong-hifi"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("catalog names = %v, want %v", names, want)
	}
	if len(Scenarios()) != len(names) {
		t.Fatalf("Scenarios() has %d entries, names has %d", len(Scenarios()), len(names))
	}
	for _, s := range Scenarios() {
		if s.Summary == "" || s.FailureMode == "" {
			t.Errorf("scenario %q is not self-describing: %+v", s.Name, s)
		}
		if s.Describe() == "" {
			t.Errorf("scenario %q has empty description", s.Name)
		}
	}
	if _, err := LookupScenario("no-such-scenario"); err == nil {
		t.Fatal("unknown scenario must be rejected")
	}
	if s, err := LookupScenario("sv-dense"); err != nil || s.Name != "sv-dense" {
		t.Fatalf("lookup sv-dense = %+v, %v", s, err)
	}
}

// scenarioArtifacts generates every derived artifact of one scenario from
// fixed seeds — the byte-comparison unit of the determinism test.
type scenarioArtifacts struct {
	ref      []byte
	variants []Variant
	haps     [][]byte
	reads    []Read
	trace    []TraceRequest
	queries  []ReadQuery
	arrivals []time.Duration
}

func generateScenario(t *testing.T, sc Scenario) scenarioArtifacts {
	t.Helper()
	pop, err := Simulate(sc.PopConfig(scenarioBase()))
	if err != nil {
		t.Fatalf("%s: Simulate: %v", sc.Name, err)
	}
	reads, err := pop.SimulateReads(sc.ReadsConfig(ShortReadConfig(64)))
	if err != nil {
		t.Fatalf("%s: SimulateReads: %v", sc.Name, err)
	}
	trace, err := pop.Trace(sc.TraceConfig(DefaultTraceConfig()))
	if err != nil {
		t.Fatalf("%s: Trace: %v", sc.Name, err)
	}
	rtCfg := sc.ReadTraceConfig(DefaultReadTraceConfig())
	rtCfg.Queries = 64
	queries, err := pop.ReadQueryTrace(rtCfg)
	if err != nil {
		t.Fatalf("%s: ReadQueryTrace: %v", sc.Name, err)
	}
	arrivals, err := Arrivals(sc.ArrivalConfig(DefaultArrivalConfig(64)))
	if err != nil {
		t.Fatalf("%s: Arrivals: %v", sc.Name, err)
	}
	a := scenarioArtifacts{
		ref:      pop.Ref,
		variants: pop.Variants,
		reads:    reads,
		trace:    trace,
		queries:  queries,
		arrivals: arrivals,
	}
	for _, h := range pop.Haplotypes {
		a.haps = append(a.haps, h.Seq)
	}
	return a
}

func assertArtifactsEqual(t *testing.T, name, when string, a, b scenarioArtifacts) {
	t.Helper()
	if !bytes.Equal(a.ref, b.ref) {
		t.Fatalf("%s: reference differs %s", name, when)
	}
	if !reflect.DeepEqual(a.variants, b.variants) {
		t.Fatalf("%s: variant set differs %s", name, when)
	}
	if len(a.haps) != len(b.haps) {
		t.Fatalf("%s: haplotype count differs %s", name, when)
	}
	for i := range a.haps {
		if !bytes.Equal(a.haps[i], b.haps[i]) {
			t.Fatalf("%s: haplotype %d differs %s", name, i, when)
		}
	}
	if !reflect.DeepEqual(a.reads, b.reads) {
		t.Fatalf("%s: read set differs %s", name, when)
	}
	if !reflect.DeepEqual(a.trace, b.trace) {
		t.Fatalf("%s: build trace differs %s", name, when)
	}
	if !reflect.DeepEqual(a.queries, b.queries) {
		t.Fatalf("%s: query trace differs %s", name, when)
	}
	if !reflect.DeepEqual(a.arrivals, b.arrivals) {
		t.Fatalf("%s: arrival curve differs %s", name, when)
	}
}

// TestScenarioDeterminism pins the contract a benchmark catalog lives on:
// every scenario with a fixed seed yields byte-identical populations, read
// sets, traces, and arrival curves across repeated generations and across
// GOMAXPROCS 1/4/8.
func TestScenarioDeterminism(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, sc := range Scenarios() {
		first := generateScenario(t, sc)
		assertArtifactsEqual(t, sc.Name, "across two generations", first, generateScenario(t, sc))
		for _, procs := range []int{1, 4, 8} {
			runtime.GOMAXPROCS(procs)
			assertArtifactsEqual(t, sc.Name, "at GOMAXPROCS="+string(rune('0'+procs)),
				first, generateScenario(t, sc))
		}
		runtime.GOMAXPROCS(prev)
	}
}

// TestDefaultConfigUnchangedByScenarioKnobs pins that the new Config fields
// at their zero values reproduce the exact pre-catalog population: legacy
// figure/benchmark inputs must not drift.
func TestDefaultConfigUnchangedByScenarioKnobs(t *testing.T) {
	a, err := Simulate(scenarioBase())
	if err != nil {
		t.Fatal(err)
	}
	cfg := scenarioBase()
	cfg.SVAlleles = 1 // explicit ≤1 is the same as unset
	b, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Ref, b.Ref) || len(a.Variants) != len(b.Variants) {
		t.Fatal("SVAlleles=1 must not perturb the rng stream")
	}
}

func TestMultiAllelicSVGroups(t *testing.T) {
	sc, err := LookupScenario("sv-dense")
	if err != nil {
		t.Fatal(err)
	}
	pop, err := Simulate(sc.PopConfig(scenarioBase()))
	if err != nil {
		t.Fatal(err)
	}
	groups := map[int][]int{} // group id → variant indices
	for i, v := range pop.Variants {
		if v.Group > 0 {
			groups[v.Group] = append(groups[v.Group], i)
		}
	}
	if len(groups) == 0 {
		t.Fatal("sv-dense produced no multi-allelic groups at 20kb")
	}
	for g, idxs := range groups {
		if len(idxs) != 3 {
			t.Fatalf("group %d has %d alleles, want 3", g, len(idxs))
		}
		pos := pop.Variants[idxs[0]].Pos
		for _, i := range idxs {
			v := pop.Variants[i]
			if v.Pos != pos || v.Kind != Insertion {
				t.Fatalf("group %d allele %d: pos=%d kind=%v, want pos=%d Insertion", g, i, v.Pos, v.Kind, pos)
			}
		}
		// At most one allele per haplotype.
		for h, hap := range pop.Haplotypes {
			carried := 0
			for _, i := range idxs {
				if hap.Carries[i] {
					carried++
				}
			}
			if carried > 1 {
				t.Fatalf("haplotype %d carries %d alleles of group %d", h, carried, g)
			}
		}
	}
	// The central gensim invariant must survive multi-allelic sites: every
	// haplotype's graph path spells exactly its sequence.
	paths := pop.Graph.Paths()
	for i, h := range pop.Haplotypes {
		if !bytes.Equal(pop.Graph.PathSeq(paths[i]), h.Seq) {
			t.Fatalf("haplotype %d path does not spell its sequence", i)
		}
	}
	if err := pop.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRepeatGenome(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := repeatGenome(rng, 50_000, 0.4, 24)
	if len(g) != 50_000 {
		t.Fatalf("repeat genome length %d, want 50000", len(g))
	}
	// Repeat content shows up as duplicated 24-mers: a repeat-rich genome
	// must have meaningfully fewer distinct k-mers than a random one.
	distinct := func(s []byte, k int) int {
		seen := map[string]bool{}
		for i := 0; i+k <= len(s); i++ {
			seen[string(s[i:i+k])] = true
		}
		return len(seen)
	}
	rnd := RandomGenome(rand.New(rand.NewSource(2)), 50_000)
	dr, dg := distinct(rnd, 24), distinct(g, 24)
	if float64(dg) > 0.9*float64(dr) {
		t.Fatalf("repeat genome has %d distinct 24-mers vs %d random — not repetitive enough", dg, dr)
	}
}

func TestSkewedIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	counts := make([]int, 8)
	for i := 0; i < 10_000; i++ {
		idx := skewedIndex(rng, 8, 0.35)
		if idx < 0 || idx >= 8 {
			t.Fatalf("skewedIndex out of range: %d", idx)
		}
		counts[idx]++
	}
	if counts[0] < 5_000 {
		t.Fatalf("hot index got %d/10000 draws, want a clear majority", counts[0])
	}
	for i := 1; i < 8; i++ {
		if counts[i] > counts[i-1] {
			t.Fatalf("skew not monotone: counts=%v", counts)
		}
	}
}

func TestContaminatedReads(t *testing.T) {
	pop, err := Simulate(scenarioBase())
	if err != nil {
		t.Fatal(err)
	}
	cfg := ShortReadConfig(400)
	cfg.Contamination = 0.3
	reads, err := pop.SimulateReads(cfg)
	if err != nil {
		t.Fatal(err)
	}
	contaminants := 0
	for _, r := range reads {
		if r.Hap == -1 {
			contaminants++
			if r.Pos != -1 || len(r.Seq) != cfg.Length {
				t.Fatalf("contaminant read malformed: %+v", r)
			}
		} else if r.Hap < 0 || r.Hap >= len(pop.Haplotypes) {
			t.Fatalf("clean read has bad truth: %+v", r)
		}
	}
	if contaminants < 60 || contaminants > 180 {
		t.Fatalf("contaminants = %d of 400, want ≈120", contaminants)
	}
	cfg.Contamination = 1.5
	if _, err := pop.SimulateReads(cfg); err == nil {
		t.Fatal("Contamination > 1 must be rejected")
	}
}

func TestArrivals(t *testing.T) {
	cfg := ArrivalConfig{Queries: 2_000, BaseRate: 1_000, Bursts: 2,
		BurstRate: 20_000, BurstLen: 200 * time.Millisecond, Seed: 4}
	offs, err := Arrivals(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(offs) != cfg.Queries {
		t.Fatalf("arrivals = %d, want %d", len(offs), cfg.Queries)
	}
	for i := 1; i < len(offs); i++ {
		if offs[i] < offs[i-1] {
			t.Fatalf("arrival curve not monotone at %d", i)
		}
	}
	// Bursts must compress inter-arrival gaps: the shortest 10% of gaps
	// should be far below the base-rate mean gap (1ms at 1000 q/s).
	burstGaps := 0
	for i := 1; i < len(offs); i++ {
		if offs[i]-offs[i-1] < 200*time.Microsecond {
			burstGaps++
		}
	}
	if burstGaps < len(offs)/20 {
		t.Fatalf("only %d/%d burst-tight gaps — burst windows not taking effect", burstGaps, len(offs))
	}
	if _, err := Arrivals(ArrivalConfig{Queries: 0, BaseRate: 1}); err == nil {
		t.Fatal("zero queries must be rejected")
	}
	if _, err := Arrivals(ArrivalConfig{Queries: 1, BaseRate: 0}); err == nil {
		t.Fatal("zero rate must be rejected")
	}
	if _, err := Arrivals(ArrivalConfig{Queries: 1, BaseRate: 10, Bursts: 1, BurstRate: 5, BurstLen: time.Second}); err == nil {
		t.Fatal("BurstRate below BaseRate must be rejected")
	}
}

package gensim

import (
	"fmt"
	"math/rand"
)

// Read is one simulated read with its ground truth.
type Read struct {
	Name string
	Seq  []byte
	// Truth: the haplotype index and start position the read was drawn
	// from (before sequencing errors).
	Hap int
	Pos int
}

// ReadConfig controls read simulation.
type ReadConfig struct {
	Count  int
	Length int
	// SubRate is the per-base substitution error probability.
	SubRate float64
	// IndelRate is the per-base insertion/deletion error probability
	// (HiFi-like long reads have a meaningful indel component).
	IndelRate float64
	// Contamination is the probability that a read is replaced by a uniform
	// random sequence with no origin in the population (adapter chimeras,
	// other-species carryover). Contaminant reads carry Hap = -1, Pos = -1.
	// 0 draws nothing extra from the rng, keeping legacy read sets
	// byte-identical.
	Contamination float64
	Seed          int64
}

// ShortReadConfig mirrors the paper's Illumina HiSeq 150 bp short reads.
func ShortReadConfig(count int) ReadConfig {
	return ReadConfig{Count: count, Length: 150, SubRate: 0.002, IndelRate: 0.0001, Seed: 7}
}

// LongReadConfig mirrors the paper's PacBio HiFi ~15 kb long reads with
// ~1% error.
func LongReadConfig(count int) ReadConfig {
	return ReadConfig{Count: count, Length: 15000, SubRate: 0.006, IndelRate: 0.004, Seed: 8}
}

// SimulateReads draws reads uniformly across haplotypes and positions and
// applies the error model.
func (p *Population) SimulateReads(cfg ReadConfig) ([]Read, error) {
	if cfg.Count < 1 || cfg.Length < 1 {
		return nil, fmt.Errorf("gensim: invalid read config %+v", cfg)
	}
	if cfg.Contamination < 0 || cfg.Contamination > 1 {
		return nil, fmt.Errorf("gensim: Contamination %v outside [0,1]", cfg.Contamination)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	reads := make([]Read, 0, cfg.Count)
	for i := 0; i < cfg.Count; i++ {
		if cfg.Contamination > 0 && rng.Float64() < cfg.Contamination {
			reads = append(reads, Read{
				Name: fmt.Sprintf("read%06d", i),
				Seq:  RandomGenome(rng, cfg.Length),
				Hap:  -1,
				Pos:  -1,
			})
			continue
		}
		h := rng.Intn(len(p.Haplotypes))
		hap := p.Haplotypes[h].Seq
		length := cfg.Length
		if length > len(hap) {
			length = len(hap)
		}
		pos := 0
		if len(hap) > length {
			pos = rng.Intn(len(hap) - length)
		}
		raw := hap[pos : pos+length]
		reads = append(reads, Read{
			Name: fmt.Sprintf("read%06d", i),
			Seq:  applyErrors(rng, raw, cfg.SubRate, cfg.IndelRate),
			Hap:  h,
			Pos:  pos,
		})
	}
	return reads, nil
}

// applyErrors introduces sequencing errors.
func applyErrors(rng *rand.Rand, seq []byte, subRate, indelRate float64) []byte {
	out := make([]byte, 0, len(seq)+8)
	for _, b := range seq {
		r := rng.Float64()
		switch {
		case r < subRate:
			alt := b
			for alt == b {
				alt = "ACGT"[rng.Intn(4)]
			}
			out = append(out, alt)
		case r < subRate+indelRate/2:
			// deletion: skip the base
		case r < subRate+indelRate:
			out = append(out, b, "ACGT"[rng.Intn(4)])
		default:
			out = append(out, b)
		}
	}
	if len(out) == 0 {
		out = append(out, seq...)
	}
	return out
}

// AssemblyView returns the haplotypes as named assembly sequences — the
// input of the graph-building pipelines (the paper's 14 chromosome-20
// assemblies, Table 2).
func (p *Population) AssemblyView() (names []string, seqs [][]byte) {
	for _, h := range p.Haplotypes {
		names = append(names, h.Name)
		seqs = append(seqs, h.Seq)
	}
	return names, seqs
}

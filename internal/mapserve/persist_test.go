package mapserve

import (
	"context"
	"errors"
	"testing"

	"pangenomicsbench/internal/perf"
	"pangenomicsbench/internal/store"
)

// TestPersistLoadLatestAllTools: Save → LoadLatest round-trips a snapshot of
// every tool kind, the loaded snapshot maps identically, and the metrics
// gauges record the traffic.
func TestPersistLoadLatestAllTools(t *testing.T) {
	pop := testPop(t, 3000, 3)
	_, seqs := pop.AssemblyView()
	read := seqs[0][40:140]
	longRead := seqs[1][100:500]

	for _, kind := range []ToolKind{ToolGiraffe, ToolVgMap, ToolGraphAligner, ToolMinigraphLR} {
		t.Run(string(kind), func(t *testing.T) {
			dir, err := store.Open(t.TempDir(), store.Options{})
			if err != nil {
				t.Fatal(err)
			}
			metrics := perf.NewMetrics()
			p := NewPersister(dir, metrics)
			snap, err := NewSnapshot("snap-"+string(kind), pop.Graph, DefaultToolConfig(kind))
			if err != nil {
				t.Fatal(err)
			}
			gen, size, err := p.Save(snap)
			if err != nil {
				t.Fatal(err)
			}
			if gen != 1 || size <= 0 {
				t.Fatalf("save = (gen %d, %d bytes)", gen, size)
			}

			reg := &Registry{}
			loaded, storeGen, err := reg.LoadLatest(dir, metrics)
			if err != nil {
				t.Fatal(err)
			}
			if storeGen != 1 || loaded.ID != snap.ID {
				t.Fatalf("loaded (gen %d, id %q), want (1, %q)", storeGen, loaded.ID, snap.ID)
			}
			if loaded.Config() != snap.Config() {
				t.Fatalf("tool config changed: %+v != %+v", loaded.Config(), snap.Config())
			}
			if reg.Generation() != 1 {
				t.Fatal("LoadLatest did not publish into the registry")
			}

			q := read
			if kind == ToolGraphAligner || kind == ToolMinigraphLR {
				q = longRead
			}
			wantRes, _, err := snap.Map(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			gotRes, _, err := loaded.Map(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			if wantRes != gotRes {
				t.Fatalf("loaded snapshot maps differently: %+v != %+v", gotRes, wantRes)
			}

			if v, _ := metrics.Gauge("store.snapshot_bytes"); v != int64(size) {
				t.Errorf("store.snapshot_bytes gauge = %d, want %d", v, size)
			}
			if v, _ := metrics.Gauge("store.generation"); v != 1 {
				t.Errorf("store.generation gauge = %d, want 1", v)
			}
		})
	}
}

func TestPersistErrors(t *testing.T) {
	pop := testPop(t, 2000, 2)
	dir, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPersister(dir, nil)

	// A snapshot wrapped around an opaque tool has no persistable config.
	stub, err := NewSnapshotWithTool("stub", pop.Graph, &blockingTool{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Save(stub); err == nil {
		t.Fatal("config-less snapshot persisted")
	}
	if _, _, err := p.Save(nil); err == nil {
		t.Fatal("nil snapshot persisted")
	}

	// Empty store: LoadLatest reports ErrEmpty, registry untouched.
	reg := &Registry{}
	if _, _, err := reg.LoadLatest(dir, nil); !errors.Is(err, store.ErrEmpty) {
		t.Fatalf("LoadLatest on empty store = %v, want ErrEmpty", err)
	}
	if reg.Generation() != 0 {
		t.Fatal("failed load published something")
	}
}

// TestSnapshotFromStoreGuards: persisted images naming an unknown tool, or a
// giraffe image missing its GBWT, are rejected at load.
func TestSnapshotFromStoreGuards(t *testing.T) {
	pop := testPop(t, 2000, 2)
	snap, err := NewSnapshot("g", pop.Graph, DefaultToolConfig(ToolVgMap))
	if err != nil {
		t.Fatal(err)
	}
	data, err := snapshotData(snap)
	if err != nil {
		t.Fatal(err)
	}

	mk := func(mutate func(*store.SnapshotData)) map[string][]byte {
		d := *data
		mutate(&d)
		image, err := d.Encode()
		if err != nil {
			t.Fatal(err)
		}
		secs, err := store.DecodeSections(image)
		if err != nil {
			t.Fatal(err)
		}
		return secs
	}

	if _, err := SnapshotFromStore(mk(func(d *store.SnapshotData) { d.Tool = "bwa-mem2" })); err == nil {
		t.Error("unknown tool kind rehydrated")
	}
	// Tool says giraffe but no GBWT section was persisted.
	if _, err := SnapshotFromStore(mk(func(d *store.SnapshotData) { d.Tool = string(ToolGiraffe) })); err == nil {
		t.Error("giraffe snapshot without a GBWT rehydrated")
	}
	// The unmutated image still loads.
	if _, err := SnapshotFromStore(mk(func(*store.SnapshotData) {})); err != nil {
		t.Errorf("valid image rejected: %v", err)
	}
}

package mapserve

import (
	"context"
	"errors"
	"sync"
	"testing"

	"pangenomicsbench/internal/perf"
)

// TestChaosShed pins the injection hook: while on, every new query sheds
// with ErrOverloaded under the dedicated mapserve.shed_chaos counter (the
// organic shed_queue counter stays untouched); off again, traffic flows.
func TestChaosShed(t *testing.T) {
	m := perf.NewMetrics()
	s, _ := stubService(t, &blockingTool{}, Config{Workers: 1, Metrics: m})
	defer s.Close()

	if _, err := s.Map(context.Background(), []byte("ACGTACGT")); err != nil {
		t.Fatalf("pre-chaos map: %v", err)
	}

	s.SetChaosShed(true)
	if !s.ChaosShedding() {
		t.Fatal("ChaosShedding not reporting on")
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Map(context.Background(), []byte("ACGTACGT")); !errors.Is(err, ErrOverloaded) {
			t.Fatalf("chaos map %d: %v, want ErrOverloaded", i, err)
		}
	}
	s.SetChaosShed(false)
	if _, err := s.Map(context.Background(), []byte("ACGTACGT")); err != nil {
		t.Fatalf("post-chaos map: %v", err)
	}

	snap := m.Snapshot()
	if got := snap.Counters["mapserve.shed_chaos"]; got != 5 {
		t.Fatalf("shed_chaos = %d, want 5", got)
	}
	if got := snap.Counters["mapserve.shed_queue"]; got != 0 {
		t.Fatalf("shed_queue = %d, want 0 — chaos sheds must not pollute the organic counter", got)
	}
	if got := snap.Counters["mapserve.mapped"]; got != 2 {
		t.Fatalf("mapped = %d, want 2", got)
	}
}

// TestForceSwap pins the forced hot-swap: a clone of the current snapshot is
// republished under a fresh generation, the old generation retires once
// released, and queries before/after the swap map identically.
func TestForceSwap(t *testing.T) {
	s, reg := stubService(t, &blockingTool{}, Config{Workers: 1})
	defer s.Close()

	before, err := s.Map(context.Background(), []byte("ACGTACGT"))
	if err != nil {
		t.Fatal(err)
	}

	retired := make(chan string, 4)
	reg.OnRetire = func(sn *Snapshot) { retired <- sn.ID }

	gen, err := reg.ForceSwap()
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 {
		t.Fatalf("forced swap generation = %d, want 2", gen)
	}
	if got := <-retired; got != "stub" {
		t.Fatalf("retired %q, want the original snapshot", got)
	}

	after, err := s.Map(context.Background(), []byte("ACGTACGT"))
	if err != nil {
		t.Fatal(err)
	}
	if after.Generation != 2 || after.SnapshotID == before.SnapshotID {
		t.Fatalf("post-swap response %+v, want generation 2 under a new ID", after)
	}
	if after.Result != before.Result {
		t.Fatalf("forced swap changed mapping: %+v vs %+v", after.Result, before.Result)
	}

	// Swaps chain: each clone's ID derives from the current one.
	if _, err := reg.ForceSwap(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Generation(); got != 3 {
		t.Fatalf("generation = %d, want 3", got)
	}
}

// TestForceSwapEmptyRegistry rejects swaps before the first publication.
func TestForceSwapEmptyRegistry(t *testing.T) {
	reg := &Registry{}
	if _, err := reg.ForceSwap(); err == nil {
		t.Fatal("force swap on empty registry must fail")
	}
}

// TestForceSwapDuringTraffic hammers forced swaps under concurrent queries
// (run with -race): every query must land on a coherent snapshot.
func TestForceSwapDuringTraffic(t *testing.T) {
	s, reg := stubService(t, &blockingTool{}, Config{Workers: 2, QueueDepth: 4096})
	defer s.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := s.Map(context.Background(), []byte("ACGTACGT")); err != nil && !errors.Is(err, ErrOverloaded) {
					t.Errorf("map during swap storm: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		if _, err := reg.ForceSwap(); err != nil {
			t.Errorf("swap %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if got := reg.Generation(); got != 21 {
		t.Fatalf("generation = %d, want 21", got)
	}
}

package mapserve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"pangenomicsbench/internal/gensim"
)

// testPop simulates a small population for snapshot tests.
func testPop(t testing.TB, refLen, haps int) *gensim.Population {
	t.Helper()
	cfg := gensim.DefaultConfig()
	cfg.RefLen = refLen
	cfg.Haplotypes = haps
	pop, err := gensim.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

func TestSnapshotValidation(t *testing.T) {
	pop := testPop(t, 2000, 2)
	if _, err := NewSnapshot("x", nil, DefaultToolConfig(ToolGiraffe)); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := NewSnapshot("x", pop.Graph, ToolConfig{Kind: "bwa", K: 15, W: 10}); err == nil {
		t.Error("unknown tool accepted")
	}
	if _, err := NewSnapshot("x", pop.Graph, ToolConfig{Kind: ToolGiraffe}); err == nil {
		t.Error("zero minimizer scheme accepted")
	}
	if _, err := SnapshotFromBuild("x", nil, DefaultToolConfig(ToolGiraffe)); err == nil {
		t.Error("nil build result accepted")
	}
	for _, kind := range []ToolKind{ToolGiraffe, ToolVgMap, ToolGraphAligner, ToolMinigraphLR} {
		if _, err := NewSnapshot(string(kind), pop.Graph, DefaultToolConfig(kind)); err != nil {
			t.Errorf("tool %s: %v", kind, err)
		}
	}
}

// TestRegistryLifecycle covers the refcount protocol: a swapped-out snapshot
// retires only after its last outstanding reference releases, and exactly
// once.
func TestRegistryLifecycle(t *testing.T) {
	pop := testPop(t, 2000, 2)
	var retired []string
	reg := &Registry{OnRetire: func(s *Snapshot) { retired = append(retired, s.ID) }}

	if got := reg.Acquire(); got != nil {
		t.Fatal("empty registry acquired a snapshot")
	}
	if _, err := reg.Publish(nil); err == nil {
		t.Fatal("nil publish accepted")
	}

	a, err := NewSnapshot("a", pop.Graph, DefaultToolConfig(ToolGiraffe))
	if err != nil {
		t.Fatal(err)
	}
	gen, err := reg.Publish(a)
	if err != nil || gen != 1 || a.Generation != 1 {
		t.Fatalf("publish a: gen=%d err=%v", gen, err)
	}
	if _, err := reg.Publish(a); err == nil {
		t.Fatal("double publish accepted")
	}

	held := reg.Acquire() // a, with one query reference
	if held != a {
		t.Fatal("acquire did not return the current snapshot")
	}

	b, err := NewSnapshot("b", pop.Graph, DefaultToolConfig(ToolGiraffe))
	if err != nil {
		t.Fatal(err)
	}
	if gen, err := reg.Publish(b); err != nil || gen != 2 {
		t.Fatalf("publish b: gen=%d err=%v", gen, err)
	}
	if len(retired) != 0 {
		t.Fatalf("a retired while a query still held it: %v", retired)
	}
	held.Release()
	if len(retired) != 1 || retired[0] != "a" {
		t.Fatalf("retired = %v, want [a]", retired)
	}
	if got := reg.Acquire(); got != b {
		t.Fatal("current snapshot is not b")
	} else {
		got.Release()
	}
	if len(retired) != 1 {
		t.Fatalf("current snapshot retired: %v", retired)
	}
}

// TestRegistryHotSwapRace races queries against publications under -race:
// every acquire must return a coherent, mappable snapshot, retirement must
// never fire while references are outstanding, and every swapped-out
// snapshot must retire exactly once.
func TestRegistryHotSwapRace(t *testing.T) {
	pop := testPop(t, 4000, 3)
	reads, err := pop.SimulateReads(gensim.ReadConfig{Count: 4, Length: 120, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}

	var retireCount int64
	reg := &Registry{OnRetire: func(s *Snapshot) {
		if refs := atomic.LoadInt64(&s.refs); refs != 0 {
			t.Errorf("snapshot %s retired with %d refs outstanding", s.ID, refs)
		}
		atomic.AddInt64(&retireCount, 1)
	}}

	first, err := NewSnapshot("gen0", pop.Graph, DefaultToolConfig(ToolGiraffe))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish(first); err != nil {
		t.Fatal(err)
	}

	const publishes = 8
	const readers = 4
	var wg sync.WaitGroup
	stopReaders := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopReaders:
					return
				default:
				}
				snap := reg.Acquire()
				if snap == nil {
					t.Error("acquire returned nil after first publish")
					return
				}
				if _, _, err := snap.Map(context.Background(), reads[i%len(reads)].Seq); err != nil {
					t.Errorf("map on snapshot %s: %v", snap.ID, err)
				}
				snap.Release()
			}
		}(r)
	}

	// Publisher: swap in fresh (equivalent) snapshots as fast as they build.
	for i := 1; i <= publishes; i++ {
		snap, err := NewSnapshot("swap", pop.Graph, DefaultToolConfig(ToolGiraffe))
		if err != nil {
			t.Fatal(err)
		}
		if gen, err := reg.Publish(snap); err != nil || gen != uint64(i+1) {
			t.Fatalf("publish %d: gen=%d err=%v", i, gen, err)
		}
	}
	close(stopReaders)
	wg.Wait()

	// All but the current snapshot must have retired by now (no readers
	// left), each exactly once.
	if got := atomic.LoadInt64(&retireCount); got != publishes {
		t.Fatalf("retired %d snapshots, want %d", got, publishes)
	}
	if reg.Generation() != publishes+1 {
		t.Fatalf("generation = %d, want %d", reg.Generation(), publishes+1)
	}
}

package mapserve

import "fmt"

// Chaos hooks: deliberate fault injection for soak testing. The hooks reuse
// the production paths end to end — a chaos shed takes the same admission
// exit as a real overload, a forced swap the same Publish/retire lifecycle
// as a real cohort rebuild — so a soak run exercises exactly the code a
// production incident would.

// SetChaosShed toggles admission-level fault injection: while on, every new
// query is shed with ErrOverloaded before reaching the queue. Chaos sheds
// are counted under mapserve.shed_chaos (distinct from the organic
// mapserve.shed_queue) and their traces carry shed=chaos, so soak
// assertions can hold organic shedding to a ceiling while storms rage.
// In-flight queries are unaffected.
func (s *Service) SetChaosShed(on bool) {
	s.chaosShed.Store(on)
}

// ChaosShedding reports whether admission fault injection is on.
func (s *Service) ChaosShedding() bool { return s.chaosShed.Load() }

// ForceSwap republishes a clone of the current snapshot — same graph, same
// prebuilt tool indexes, fresh identity and generation — driving the full
// hot-swap machinery (generation bump, previous snapshot's release and
// refcounted retirement) without a rebuild. It is the soak harness's way of
// hammering swap correctness mid-traffic. Fails if nothing is published.
func (r *Registry) ForceSwap() (uint64, error) {
	cur := r.Acquire()
	if cur == nil {
		return 0, fmt.Errorf("mapserve: force swap with no published snapshot")
	}
	defer cur.Release()
	clone := &Snapshot{
		ID:   fmt.Sprintf("%s@swap%d", cur.ID, cur.Generation),
		g:    cur.g,
		tool: cur.tool,
		cfg:  cur.cfg,
	}
	return r.Publish(clone)
}

package mapserve

import (
	"fmt"
	"os"
	"time"

	"pangenomicsbench/internal/perf"
	"pangenomicsbench/internal/pipeline"
	"pangenomicsbench/internal/store"
)

// Persistence bridge between the query tier and internal/store: Persister
// writes each published snapshot into a generation directory, and
// Registry.LoadLatest boots a fresh process from the last published
// generation — serving in milliseconds instead of re-running construction.

// Persister saves snapshots into a store directory. Metrics (optional)
// gains the durability gauges: store.snapshot_bytes (last written image
// size) and the store.save latency distribution.
type Persister struct {
	dir     *store.Dir
	metrics *perf.Metrics
}

// NewPersister wraps a store directory.
func NewPersister(dir *store.Dir, metrics *perf.Metrics) *Persister {
	return &Persister{dir: dir, metrics: metrics}
}

// Dir returns the underlying store directory.
func (p *Persister) Dir() *store.Dir { return p.dir }

// Save encodes and publishes one snapshot as the store's next generation,
// returning the store generation and the image size in bytes. The snapshot
// must have been built with a ToolConfig (NewSnapshot / SnapshotFromBuild)
// so the tool can be rehydrated on load.
func (p *Persister) Save(s *Snapshot) (uint64, int, error) {
	data, err := snapshotData(s)
	if err != nil {
		return 0, 0, err
	}
	t0 := time.Now()
	image, err := data.Encode()
	if err != nil {
		return 0, 0, err
	}
	gen, err := p.dir.Publish(image)
	if err != nil {
		return 0, 0, err
	}
	p.metrics.Observe("store.save", time.Since(t0))
	p.metrics.GaugeSet("store.snapshot_bytes", int64(len(image)))
	p.metrics.GaugeSet("store.generation", int64(gen))
	return gen, len(image), nil
}

// snapshotData extracts the persistable state of a snapshot.
func snapshotData(s *Snapshot) (*store.SnapshotData, error) {
	if s == nil {
		return nil, fmt.Errorf("mapserve: persist nil snapshot")
	}
	if s.cfg.Kind == "" {
		return nil, fmt.Errorf("mapserve: snapshot %q has no tool config (built with NewSnapshotWithTool?); cannot persist", s.ID)
	}
	ix, ok := s.tool.(pipeline.Indexed)
	if !ok {
		return nil, fmt.Errorf("mapserve: snapshot %q tool %s does not expose its indexes", s.ID, s.tool.Name())
	}
	data := &store.SnapshotData{
		ID:    s.ID,
		Tool:  string(s.cfg.Kind),
		K:     s.cfg.K,
		W:     s.cfg.W,
		Graph: s.g,
		Index: ix.GraphIndex(),
	}
	if h, ok := s.tool.(pipeline.HaplotypeIndexed); ok {
		data.Haplotypes = h.Haplotypes()
	}
	return data, nil
}

// rehydrate reconstructs the mapping tool of a loaded snapshot from its
// persisted indexes — no index construction runs.
func rehydrate(data *store.SnapshotData) (pipeline.ContextTool, error) {
	switch ToolKind(data.Tool) {
	case ToolGiraffe:
		return pipeline.NewVgGiraffeFromIndexes(data.Graph, data.Index, data.Haplotypes)
	case ToolVgMap:
		return pipeline.NewVgMapFromIndex(data.Graph, data.Index)
	case ToolGraphAligner:
		return pipeline.NewGraphAlignerFromIndex(data.Graph, data.Index)
	case ToolMinigraphLR:
		return pipeline.NewMinigraphFromIndex(data.Graph, data.Index, false)
	}
	return nil, fmt.Errorf("mapserve: snapshot names unknown tool %q", data.Tool)
}

// SnapshotFromStore reconstructs a publishable snapshot from decoded store
// sections (Dir.Load output).
func SnapshotFromStore(secs map[string][]byte) (*Snapshot, error) {
	data, err := store.DecodeSnapshot(secs)
	if err != nil {
		return nil, err
	}
	if ToolKind(data.Tool) == ToolGiraffe && data.Haplotypes == nil {
		return nil, fmt.Errorf("mapserve: giraffe snapshot %q persisted without its GBWT", data.ID)
	}
	tool, err := rehydrate(data)
	if err != nil {
		return nil, err
	}
	return &Snapshot{
		ID:   data.ID,
		g:    data.Graph,
		tool: tool,
		cfg:  ToolConfig{Kind: ToolKind(data.Tool), K: data.K, W: data.W},
	}, nil
}

// LoadLatest loads the store's current generation, rehydrates it, and
// publishes it into the registry — the warm-restart boot path. It returns
// the loaded snapshot and the *store* generation it came from (the registry
// stamps its own, in-process generation on publish). Metrics (optional)
// gains store.load latency and store.load_ms / store.snapshot_bytes gauges.
// A store with no published generation returns store.ErrEmpty.
func (r *Registry) LoadLatest(dir *store.Dir, metrics *perf.Metrics) (*Snapshot, uint64, error) {
	t0 := time.Now()
	storeGen, secs, err := dir.LoadCurrent()
	if err != nil {
		return nil, 0, err
	}
	bytes := 0
	if fi, err := os.Stat(dir.SnapshotPath(storeGen)); err == nil {
		bytes = int(fi.Size())
	}
	snap, err := SnapshotFromStore(secs)
	if err != nil {
		return nil, 0, err
	}
	if _, err := r.Publish(snap); err != nil {
		return nil, 0, err
	}
	dur := time.Since(t0)
	metrics.Observe("store.load", dur)
	metrics.GaugeSet("store.load_ms", dur.Milliseconds())
	metrics.GaugeSet("store.snapshot_bytes", int64(bytes))
	metrics.GaugeSet("store.generation", int64(storeGen))
	return snap, storeGen, nil
}

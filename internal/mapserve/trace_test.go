package mapserve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"pangenomicsbench/internal/gensim"
	"pangenomicsbench/internal/obs"
	"pangenomicsbench/internal/perf"
)

// findChild returns the first direct child span named name.
func findChild(d obs.SpanData, name string) (obs.SpanData, bool) {
	for _, c := range d.Children {
		if c.Name == name {
			return c, true
		}
	}
	return obs.SpanData{}, false
}

// attrValue returns the value of the span's first attribute with key.
func attrValue(d obs.SpanData, key string) string {
	for _, a := range d.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// TestTracedQueryStageSum is the trace-attribution acceptance test: a query
// mapped through a real tool produces a trace whose direct children
// (admission → snapshot.acquire → map) account for the request latency —
// their durations sum to within 10% of the root span's — and whose map span
// carries the kernel's per-stage breakdown as children.
func TestTracedQueryStageSum(t *testing.T) {
	pop := testPop(t, 8000, 4)
	reads, err := pop.SimulateReads(gensim.ReadConfig{Count: 1, Length: 150, SubRate: 0.002, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := NewSnapshot("pop", pop.Graph, DefaultToolConfig(ToolGiraffe))
	if err != nil {
		t.Fatal(err)
	}
	reg := &Registry{}
	if _, err := reg.Publish(snap); err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer(obs.TracerConfig{})
	// A long BatchWait makes the admission stage dominate the request, so
	// the attribution check is robust to scheduler noise around wake-ups.
	s := New(reg, Config{Workers: 1, MaxBatch: 4, BatchWait: 25 * time.Millisecond, Tracer: tr})
	defer s.Close()

	if _, err := s.Map(context.Background(), reads[0].Seq); err != nil {
		t.Fatal(err)
	}

	traces := tr.Recorder().Last(1)
	if len(traces) != 1 {
		t.Fatalf("recorder retained %d traces, want 1", len(traces))
	}
	root := traces[0]
	if root.Name != "mapserve.query" {
		t.Fatalf("root span %q, want mapserve.query", root.Name)
	}
	if root.Failed() {
		t.Fatalf("successful query marked failed: %s", root.Tree())
	}
	for _, name := range []string{"admission", "snapshot.acquire", "map"} {
		if _, ok := findChild(root, name); !ok {
			t.Errorf("trace missing %q child:\n%s", name, root.Tree())
		}
	}
	if got := attrValue(root, "snapshot"); got != "pop" {
		t.Errorf("snapshot attr %q, want pop", got)
	}
	if got := attrValue(root, "generation"); got != "1" {
		t.Errorf("generation attr %q, want 1", got)
	}

	// The kernel's stage timers annotate the map span through the context
	// the executor threads into MapCtx.
	mapSpan, _ := findChild(root, "map")
	for _, stage := range []string{"seed", "chain", "align"} {
		if _, ok := findChild(mapSpan, stage); !ok {
			t.Errorf("map span missing kernel stage %q:\n%s", stage, root.Tree())
		}
	}

	// Attribution: direct children must account for the request latency.
	sum, dur := root.StageSum(), root.Duration
	if diff := (sum - dur); diff < 0 {
		diff = -diff
	}
	lo, hi := dur-dur/10, dur+dur/10
	if sum < lo || sum > hi {
		t.Errorf("stage sum %v outside 10%% of request latency %v:\n%s", sum, dur, root.Tree())
	}
}

// TestShedTracesDistinctCountersAndExemplars covers the shed paths end to
// end: queue-overflow and deadline sheds increment their own counters, and
// both produce shed/error traces that the flight recorder's exemplar set
// retains even after successful traffic scrolls them out of the ring.
func TestShedTracesDistinctCountersAndExemplars(t *testing.T) {
	gate := make(chan struct{})
	tool := &blockingTool{gate: gate, started: make(chan struct{}, 8)}
	m := perf.NewMetrics()
	tr := obs.NewTracer(obs.TracerConfig{Capacity: 2, Metrics: m})
	s, _ := stubService(t, tool, Config{
		Workers: 1, MaxBatch: 1, BatchWait: time.Millisecond, QueueDepth: 1,
		Metrics: m, Tracer: tr,
	})

	// Park the single worker on the gate.
	parked := make(chan struct{})
	go func() {
		defer close(parked)
		if _, err := s.Map(context.Background(), []byte("AAAA")); err != nil {
			t.Errorf("parked query: %v", err)
		}
	}()
	<-tool.started

	// A queued query with an already-canceled context sheds on deadline at
	// its execution turn.
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	deadlineDone := make(chan error, 1)
	go func() {
		_, err := s.Map(canceled, []byte("CCCC"))
		deadlineDone <- err
	}()

	// Spam queries behind the parked worker until admission sheds one.
	var wg sync.WaitGroup
	var mu sync.Mutex
	shed := 0
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Map(context.Background(), []byte("GGGG"))
			if errors.Is(err, ErrOverloaded) {
				mu.Lock()
				shed++
				mu.Unlock()
			}
		}()
		time.Sleep(2 * time.Millisecond)
		mu.Lock()
		done := shed > 0
		mu.Unlock()
		if done {
			break
		}
	}

	close(gate)
	wg.Wait()
	<-parked
	if err := <-deadlineDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled query: %v, want context.Canceled", err)
	}

	// Distinct counters per shed cause.
	if got := m.Counter("mapserve.shed_queue"); got != int64(shed) || shed == 0 {
		t.Errorf("shed_queue = %d, want %d (>0)", got, shed)
	}
	if got := m.Counter("mapserve.shed_deadline"); got != 1 {
		t.Errorf("shed_deadline = %d, want 1", got)
	}

	// Scroll the ring (capacity 2) with fresh successful queries: the shed
	// traces must survive in the exemplar set.
	for i := 0; i < 4; i++ {
		if _, err := s.Map(context.Background(), []byte("TTTT")); err != nil {
			t.Fatalf("post-shed query %d: %v", i, err)
		}
	}
	s.Close()

	for _, d := range tr.Recorder().Last(2) {
		if d.Failed() {
			t.Errorf("ring still holds a failed trace after scroll-out: %s", d.Tree())
		}
	}
	reasons := map[string]int{}
	for _, d := range tr.Recorder().Errors() {
		if !d.Shed {
			t.Errorf("error exemplar not marked shed: %s", d.Tree())
		}
		if d.Error == "" {
			t.Errorf("shed exemplar has no error: %s", d.Tree())
		}
		reasons[attrValue(d, "shed")]++
	}
	if reasons["queue"] == 0 || reasons["deadline"] == 0 {
		t.Errorf("exemplar shed reasons %v, want both queue and deadline", reasons)
	}
	// Exemplars() pools slowest-per-endpoint and the shed/error traces.
	failed := 0
	for _, d := range tr.Recorder().Exemplars() {
		if d.Failed() {
			failed++
		}
	}
	if failed < 2 {
		t.Errorf("exemplar set retains %d failed traces, want ≥2", failed)
	}
}

// BenchmarkMapNilTracer pins the hot-path allocation baseline with tracing
// disabled: the nil-tracer instrumentation must add zero allocations over
// the untraced executor (the nil-Probe rule; obs.TestNilTracerZeroAlloc
// asserts the instrumentation sequence itself allocates nothing).
func BenchmarkMapNilTracer(b *testing.B) {
	benchmarkMap(b, nil)
}

// BenchmarkMapTraced is the traced counterpart, for comparing against
// BenchmarkMapNilTracer.
func BenchmarkMapTraced(b *testing.B) {
	benchmarkMap(b, obs.NewTracer(obs.TracerConfig{}))
}

func benchmarkMap(b *testing.B, tr *obs.Tracer) {
	pop := testPop(b, 2000, 2)
	snap, err := NewSnapshotWithTool("bench", pop.Graph, &blockingTool{})
	if err != nil {
		b.Fatal(err)
	}
	reg := &Registry{}
	if _, err := reg.Publish(snap); err != nil {
		b.Fatal(err)
	}
	s := New(reg, Config{Workers: 2, MaxBatch: 8, BatchWait: 100 * time.Microsecond, Tracer: tr})
	defer s.Close()
	read := []byte("ACGTACGTACGTACGT")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Map(context.Background(), read); err != nil {
			b.Fatal(err)
		}
	}
}

// Package mapserve is the read-mapping query service of the reproduction —
// the steady-state serving tier the ROADMAP's production north star implies.
// Where internal/serve builds graphs on demand, mapserve treats built graphs
// as immutable artifacts queried at high QPS (the GAP-style build/query
// split): a Snapshot bundles one graph with the precomputed indexes of one
// mapping tool, a reference-counted Registry hot-swaps snapshots atomically
// so a finished cohort rebuild publishes without blocking in-flight queries,
// and a batched executor micro-batches incoming read queries onto a bounded
// worker pool with deadline-aware admission control.
package mapserve

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"pangenomicsbench/internal/build"
	"pangenomicsbench/internal/graph"
	"pangenomicsbench/internal/obs"
	"pangenomicsbench/internal/perf"
	"pangenomicsbench/internal/pipeline"
)

// ToolKind selects the mapping tool of a snapshot.
type ToolKind string

// Supported mapping tools. Minigraph's chromosome mode is excluded: it maps
// whole assemblies, not read queries.
const (
	ToolGiraffe      ToolKind = "giraffe"
	ToolVgMap        ToolKind = "vgmap"
	ToolGraphAligner ToolKind = "graphaligner"
	ToolMinigraphLR  ToolKind = "minigraph-lr"
)

// ToolConfig parameterizes the mapping tool built into a snapshot.
type ToolConfig struct {
	Kind ToolKind
	// K, W select the minimizer scheme of the tool's graph index.
	K, W int
}

// DefaultToolConfig mirrors the suite's mapping defaults.
func DefaultToolConfig(kind ToolKind) ToolConfig {
	return ToolConfig{Kind: kind, K: 15, W: 10}
}

// Snapshot is one immutable graph + index bundle: the unit of publication.
// Its graph and the tool's precomputed indexes (minimizer index, GBWT,
// distance index) are built once and only read afterwards, so any number of
// queries may map against it concurrently. Lifetime is reference-counted by
// the Registry; user code never constructs the refcount state directly.
type Snapshot struct {
	// ID labels the snapshot (e.g. a cohort fingerprint); Generation is the
	// registry's monotonic publication counter, 0 until published.
	ID         string
	Generation uint64

	g    *graph.Graph
	tool pipeline.ContextTool
	cfg  ToolConfig

	refs   int64
	retire func(*Snapshot)
}

// NewSnapshot builds a snapshot over g: the tool and every index it needs
// are constructed here, up front, so queries never pay index-build cost.
func NewSnapshot(id string, g *graph.Graph, cfg ToolConfig) (*Snapshot, error) {
	if g == nil {
		return nil, fmt.Errorf("mapserve: nil graph")
	}
	if cfg.K <= 0 || cfg.W <= 0 {
		return nil, fmt.Errorf("mapserve: invalid minimizer scheme k=%d w=%d", cfg.K, cfg.W)
	}
	var tool pipeline.ContextTool
	var err error
	switch cfg.Kind {
	case ToolGiraffe:
		tool, err = pipeline.NewVgGiraffe(g, cfg.K, cfg.W)
	case ToolVgMap:
		tool, err = pipeline.NewVgMap(g, cfg.K, cfg.W)
	case ToolGraphAligner:
		tool, err = pipeline.NewGraphAligner(g, cfg.K, cfg.W)
	case ToolMinigraphLR:
		tool, err = pipeline.NewMinigraph(g, cfg.K, cfg.W, false)
	default:
		return nil, fmt.Errorf("mapserve: unknown tool %q", cfg.Kind)
	}
	if err != nil {
		return nil, fmt.Errorf("mapserve: snapshot %q: %w", id, err)
	}
	return &Snapshot{ID: id, g: g, tool: tool, cfg: cfg}, nil
}

// NewSnapshotWithTool wraps an already-built (or specially tuned) mapping
// tool as a snapshot. The caller promises the tool only reads g and its
// indexes during MapCtx, so concurrent queries are safe.
func NewSnapshotWithTool(id string, g *graph.Graph, tool pipeline.ContextTool) (*Snapshot, error) {
	if g == nil {
		return nil, fmt.Errorf("mapserve: nil graph")
	}
	if tool == nil {
		return nil, fmt.Errorf("mapserve: nil tool")
	}
	return &Snapshot{ID: id, g: g, tool: tool}, nil
}

// SnapshotFromBuild wraps a finished construction result (an internal/serve
// cohort rebuild, or a direct build.PGGB / build.MinigraphCactus run) as a
// publishable snapshot — the build-then-serve handoff.
func SnapshotFromBuild(id string, res *build.Result, cfg ToolConfig) (*Snapshot, error) {
	if res == nil || res.Graph == nil {
		return nil, fmt.Errorf("mapserve: build result has no graph")
	}
	return NewSnapshot(id, res.Graph, cfg)
}

// Graph returns the snapshot's (read-only) graph.
func (s *Snapshot) Graph() *graph.Graph { return s.g }

// Tool returns the snapshot's mapping tool name.
func (s *Snapshot) Tool() string { return s.tool.Name() }

// Config returns the snapshot's tool configuration.
func (s *Snapshot) Config() ToolConfig { return s.cfg }

// Map maps one read against the snapshot, honoring ctx cancellation inside
// the tool's mapping loops.
func (s *Snapshot) Map(ctx context.Context, read []byte) (pipeline.Result, pipeline.StageTimes, error) {
	return s.tool.MapCtx(ctx, read, nil)
}

// MapWithProbe is Map with a kernel perf.Probe attached (nil records
// nothing) — the hook the traced executor uses to carry dynamic
// instruction counts on map spans.
func (s *Snapshot) MapWithProbe(ctx context.Context, read []byte, probe *perf.Probe) (pipeline.Result, pipeline.StageTimes, error) {
	return s.tool.MapCtx(ctx, read, probe)
}

// MapBatch maps a batch of reads through the tool's lane-packed batched
// kernels (pipeline.ContextTool.MapBatch): results are byte-identical to
// per-read Map calls, and the caller owns every output slice. On a
// *pipeline.BatchError, results[:n] hold the completed prefix.
func (s *Snapshot) MapBatch(ctx context.Context, reads [][]byte, results []pipeline.Result, stages []pipeline.StageTimes, probe *perf.Probe) (int, error) {
	return s.tool.MapBatch(ctx, reads, results, stages, probe)
}

// Release drops one reference acquired from a Registry. When the last
// reference of an unpublished (swapped-out) snapshot drops, the registry's
// retire hook fires — exactly once, and never while queries hold the
// snapshot.
func (s *Snapshot) Release() {
	if n := atomic.AddInt64(&s.refs, -1); n == 0 {
		if s.retire != nil {
			s.retire(s)
		}
	} else if n < 0 {
		panic("mapserve: snapshot over-released")
	}
}

// Registry holds the current snapshot and hot-swaps it atomically. Acquire
// and Publish serialize on a mutex; Release is lock-free. The registry
// itself holds one reference on the current snapshot, so a snapshot's
// refcount can only reach zero after it has been swapped out — queries
// racing a swap therefore always map against a coherent, fully-built
// snapshot, and retirement never preempts an in-flight query.
type Registry struct {
	mu      sync.Mutex
	current *Snapshot
	gen     uint64
	// live tracks every published snapshot until it retires, so Stats can
	// report swapped-out generations still pinned by in-flight queries.
	live map[uint64]*Snapshot

	// OnRetire, when set before the first Publish, observes each snapshot
	// after its last reference drops (metrics, index teardown logging).
	OnRetire func(*Snapshot)
}

// Publish installs s as the current snapshot, stamps its generation, and
// returns the generation. The previous snapshot (if any) is released; it
// retires once its last in-flight query releases it. A snapshot must not be
// published twice.
func (r *Registry) Publish(s *Snapshot) (uint64, error) {
	if s == nil {
		return 0, fmt.Errorf("mapserve: publish nil snapshot")
	}
	r.mu.Lock()
	if s.Generation != 0 || atomic.LoadInt64(&s.refs) != 0 {
		r.mu.Unlock()
		return 0, fmt.Errorf("mapserve: snapshot %q already published", s.ID)
	}
	r.gen++
	s.Generation = r.gen
	s.retire = r.retireSnapshot
	atomic.StoreInt64(&s.refs, 1) // the registry's own reference
	if r.live == nil {
		r.live = map[uint64]*Snapshot{}
	}
	r.live[s.Generation] = s
	prev := r.current
	r.current = s
	r.mu.Unlock()
	if prev != nil {
		prev.Release()
	}
	return s.Generation, nil
}

// Acquire returns the current snapshot with one reference held, or nil if
// nothing has been published. The caller must Release it when done.
func (r *Registry) Acquire() *Snapshot {
	r.mu.Lock()
	s := r.current
	if s != nil {
		atomic.AddInt64(&s.refs, 1)
	}
	r.mu.Unlock()
	return s
}

// Generation returns the current publication counter (0 before the first
// Publish).
func (r *Registry) Generation() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gen
}

// retireSnapshot fires when a published snapshot's last reference drops: it
// leaves the live set, then the user's OnRetire hook (if any) observes it.
func (r *Registry) retireSnapshot(s *Snapshot) {
	r.mu.Lock()
	delete(r.live, s.Generation)
	cb := r.OnRetire
	r.mu.Unlock()
	if cb != nil {
		cb(s)
	}
}

// Stats reports every still-referenced snapshot generation — the /snapshots
// view of the registry: refcounts, in-flight queries (refs minus the
// registry's own reference on the current snapshot), and which generation
// is current. Sorted by generation.
func (r *Registry) Stats() []obs.SnapshotInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	infos := make([]obs.SnapshotInfo, 0, len(r.live))
	for _, s := range r.live {
		refs := atomic.LoadInt64(&s.refs)
		info := obs.SnapshotInfo{
			ID:         s.ID,
			Generation: s.Generation,
			Refs:       refs,
			InFlight:   refs,
			Current:    s == r.current,
		}
		if info.Current {
			info.InFlight-- // the registry's own reference is not a query
		}
		infos = append(infos, info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Generation < infos[j].Generation })
	return infos
}

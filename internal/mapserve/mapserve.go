package mapserve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pangenomicsbench/internal/obs"
	"pangenomicsbench/internal/perf"
	"pangenomicsbench/internal/pipeline"
)

// Admission and lifecycle errors.
var (
	// ErrOverloaded sheds a query at admission: the bounded queue is full.
	ErrOverloaded = errors.New("mapserve: overloaded, query shed")
	// ErrNoSnapshot rejects queries before the first snapshot publication.
	ErrNoSnapshot = errors.New("mapserve: no snapshot published")
	// ErrClosed rejects queries after Close.
	ErrClosed = errors.New("mapserve: service closed")
)

// Config parameterizes a Service.
type Config struct {
	// Workers bounds concurrently executing batches; ≤0 uses GOMAXPROCS.
	Workers int
	// MaxBatch caps queries per micro-batch; ≤0 uses 32.
	MaxBatch int
	// BatchWait bounds how long a forming batch waits for more queries
	// after its first; ≤0 uses 2ms. A full batch dispatches immediately.
	BatchWait time.Duration
	// QueueDepth bounds queued-but-undispatched queries; a full queue sheds
	// new queries with ErrOverloaded. ≤0 uses 1024.
	QueueDepth int
	// Metrics receives service counters, latencies and the batch-size
	// histogram; nil disables recording.
	Metrics *perf.Metrics
	// Tracer records one span tree per query — admission wait, snapshot
	// acquire, kernel map with per-stage breakdown — into its flight
	// recorder. nil disables tracing and adds zero allocations to the hot
	// path (the nil-Probe rule).
	Tracer *obs.Tracer
	// TraceProbes, when tracing is enabled, attaches a perf.Probe to each
	// traced kernel map span so traces also carry dynamic instruction
	// counts. Expensive (full cache/branch simulation per query) — meant
	// for targeted debugging, not steady-state serving.
	TraceProbes bool
}

// Response is the outcome of one mapped query.
type Response struct {
	Result pipeline.Result
	Stages pipeline.StageTimes
	// SnapshotID / Generation identify the snapshot that served the query.
	SnapshotID string
	Generation uint64
	// BatchSize is the size of the micro-batch the query rode in.
	BatchSize int
	// QueueWait is time from admission to batch execution; MapTime the
	// in-kernel mapping time.
	QueueWait, MapTime time.Duration
	// TraceID identifies this query's trace ("" with tracing disabled) —
	// the join key between flight-log events and /traces?trace_id=. Shed
	// and failed queries still return a TraceID-carrying response alongside
	// their error when tracing is on, since exactly those traces are the
	// ones the recorder always retains.
	TraceID string
}

// pending is one admitted query awaiting execution.
type pending struct {
	ctx  context.Context
	read []byte
	enq  time.Time
	span *obs.Span
	resp *Response
	err  error
	done chan struct{}
}

// Service is the batched read-mapping executor. Incoming queries are
// admitted into a bounded queue, micro-batched by count and max-wait
// deadline, and dispatched on a bounded worker pool. Each batch acquires the
// registry's current snapshot exactly once — amortizing snapshot/index
// access across the batch the way the paper's mapping tools amortize seeding
// — so a hot-swap between batches is invisible to in-flight queries.
type Service struct {
	cfg     Config
	metrics *perf.Metrics
	tracer  *obs.Tracer
	reg     *Registry

	queue   chan *pending
	batches chan []*pending
	stop    chan struct{}

	closeMu sync.RWMutex
	closed  bool

	// chaosShed, when set (SetChaosShed), sheds every new query at admission
	// — the fault-injection hook soak runs use to synthesize shed storms.
	chaosShed atomic.Bool

	dispatcherDone chan struct{}
	workers        sync.WaitGroup
}

// New starts a service mapping queries against reg's current snapshot.
// Callers publish snapshots into reg (before or after New; queries fail
// with ErrNoSnapshot until the first Publish) and must Close the service
// to stop its goroutines.
func New(reg *Registry, cfg Config) *Service {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 32
	}
	if cfg.BatchWait <= 0 {
		cfg.BatchWait = 2 * time.Millisecond
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	s := &Service{
		cfg:            cfg,
		metrics:        cfg.Metrics,
		tracer:         cfg.Tracer,
		reg:            reg,
		queue:          make(chan *pending, cfg.QueueDepth),
		batches:        make(chan []*pending, cfg.Workers),
		stop:           make(chan struct{}),
		dispatcherDone: make(chan struct{}),
	}
	go s.dispatch()
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// Registry returns the snapshot registry the service maps against.
func (s *Service) Registry() *Registry { return s.reg }

// Map admits one read query and blocks until it is mapped, shed, or failed.
// ctx deadlines/cancellation are honored while the query waits in the queue
// and inside the mapping kernels (ContextTool.MapCtx).
func (s *Service) Map(ctx context.Context, read []byte) (*Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(read) == 0 {
		return nil, errors.New("mapserve: empty read")
	}
	sp := s.tracer.StartRoot("mapserve.query")
	sp.SetInt("read_len", int64(len(read)))
	p := &pending{ctx: ctx, read: read, enq: time.Now(), span: sp, done: make(chan struct{})}

	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		sp.Error(ErrClosed)
		sp.End()
		return nil, ErrClosed
	}
	s.metrics.Add("mapserve.queries", 1)
	if s.chaosShed.Load() {
		s.closeMu.RUnlock()
		s.metrics.Add("mapserve.shed_chaos", 1)
		sp.Shed("chaos")
		sp.Error(ErrOverloaded)
		sp.End()
		return errResp(sp), ErrOverloaded
	}
	select {
	case s.queue <- p:
		s.metrics.GaugeAdd("mapserve.queue_depth", 1)
		s.closeMu.RUnlock()
	default:
		s.closeMu.RUnlock()
		s.metrics.Add("mapserve.shed_queue", 1)
		sp.Shed("queue")
		sp.Error(ErrOverloaded)
		sp.End()
		return errResp(sp), ErrOverloaded
	}

	<-p.done
	sp.End()
	if p.err != nil && p.resp == nil {
		return errResp(sp), p.err
	}
	return p.resp, p.err
}

// errResp carries a failed query's trace id back to the caller — nil when
// tracing is disabled, preserving the historical nil-response contract.
func errResp(sp *obs.Span) *Response {
	if sp == nil {
		return nil
	}
	return &Response{TraceID: sp.TraceID().String()}
}

// dispatch forms micro-batches: the first query of a batch starts a
// BatchWait timer, and the batch dispatches when it reaches MaxBatch or the
// timer fires, whichever comes first.
func (s *Service) dispatch() {
	defer close(s.dispatcherDone)
	defer close(s.batches)
	for {
		var first *pending
		select {
		case first = <-s.queue:
		case <-s.stop:
			s.drain()
			return
		}
		batch := append(make([]*pending, 0, s.cfg.MaxBatch), first)
		timer := time.NewTimer(s.cfg.BatchWait)
	fill:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case p := <-s.queue:
				batch = append(batch, p)
			case <-timer.C:
				break fill
			case <-s.stop:
				break fill
			}
		}
		timer.Stop()
		s.batches <- batch
	}
}

// drain flushes queries admitted before Close into final batches. Close
// excludes new admissions first, so the queue can only shrink here.
func (s *Service) drain() {
	batch := make([]*pending, 0, s.cfg.MaxBatch)
	for {
		select {
		case p := <-s.queue:
			batch = append(batch, p)
			if len(batch) == s.cfg.MaxBatch {
				s.batches <- batch
				batch = make([]*pending, 0, s.cfg.MaxBatch)
			}
		default:
			if len(batch) > 0 {
				s.batches <- batch
			}
			return
		}
	}
}

// worker executes batches.
func (s *Service) worker() {
	defer s.workers.Done()
	for batch := range s.batches {
		s.runBatch(batch)
	}
}

// runBatch maps every query of one batch against a single snapshot
// acquisition. Queries whose context is already done are shed without
// mapping; a context firing mid-map stops the kernel at its next loop
// boundary and the query fails with ctx.Err().
func (s *Service) runBatch(batch []*pending) {
	s.metrics.Add("mapserve.batches", 1)
	s.metrics.ObserveValue("mapserve.batch_size", float64(len(batch)))

	acqStart := time.Now()
	snap := s.reg.Acquire()
	acqDur := time.Since(acqStart)
	if snap != nil {
		defer snap.Release()
	}
	for _, p := range batch {
		s.metrics.GaugeAdd("mapserve.queue_depth", -1)
		wait := time.Since(p.enq)
		s.metrics.Observe("mapserve.queue_wait", wait)
		// Trace attribution: the admission span covers enqueue → this
		// query's turn (batch assembly plus any earlier queries of the
		// batch), so a query's direct children sum to its request latency.
		p.span.Stage("admission", p.enq, wait)
		p.span.SetInt("batch_size", int64(len(batch)))
		switch {
		case snap == nil:
			p.span.Error(ErrNoSnapshot)
			p.err = ErrNoSnapshot
		case p.ctx.Err() != nil:
			s.metrics.Add("mapserve.shed_deadline", 1)
			p.span.Shed("deadline")
			p.span.Error(p.ctx.Err())
			p.err = p.ctx.Err()
		default:
			p.span.Stage("snapshot.acquire", acqStart, acqDur)
			p.span.Set("snapshot", snap.ID)
			p.span.SetInt("generation", int64(snap.Generation))
			ms := p.span.Child("map")
			ctx := obs.ContextWithSpan(p.ctx, ms)
			var probe *perf.Probe
			if s.cfg.TraceProbes && ms != nil {
				probe = perf.NewProbe()
				ms.AttachProbe(probe)
			}
			t0 := time.Now()
			res, stages, err := snap.MapWithProbe(ctx, p.read, probe)
			mt := time.Since(t0)
			if err != nil {
				s.metrics.Add("mapserve.shed_deadline", 1)
				ms.Error(err)
				ms.End()
				p.span.Shed("deadline")
				p.span.Error(err)
				p.err = err
				break
			}
			ms.End()
			s.metrics.Add("mapserve.mapped", 1)
			s.metrics.Observe("mapserve.map", mt)
			s.metrics.Observe("mapserve.stage.seed", stages.Seed)
			s.metrics.Observe("mapserve.stage.chain", stages.Chain)
			s.metrics.Observe("mapserve.stage.filter", stages.Filter)
			s.metrics.Observe("mapserve.stage.align", stages.Align)
			p.resp = &Response{
				Result:     res,
				Stages:     stages,
				SnapshotID: snap.ID,
				Generation: snap.Generation,
				BatchSize:  len(batch),
				QueueWait:  wait,
				MapTime:    mt,
				TraceID:    p.span.TraceID().String(),
			}
		}
		// End the root span here, when the response is ready: request latency
		// then excludes the client goroutine's wake-up delay, so the span's
		// children account for (nearly) all of it. Map's End is idempotent.
		p.span.End()
		close(p.done)
	}
}

// Close stops admissions, drains already-admitted queries (every admitted
// query still gets an answer), and waits for the workers to exit.
func (s *Service) Close() {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return
	}
	s.closed = true
	s.closeMu.Unlock()
	close(s.stop)
	<-s.dispatcherDone
	s.workers.Wait()
}

// Metrics returns a snapshot of the service's metric set (empty when the
// service was configured without one).
func (s *Service) Metrics() perf.MetricsSnapshot { return s.metrics.Snapshot() }

package mapserve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pangenomicsbench/internal/align"
	"pangenomicsbench/internal/obs"
	"pangenomicsbench/internal/perf"
	"pangenomicsbench/internal/pipeline"
)

// Admission and lifecycle errors.
var (
	// ErrOverloaded sheds a query at admission: the bounded queue is full.
	ErrOverloaded = errors.New("mapserve: overloaded, query shed")
	// ErrNoSnapshot rejects queries before the first snapshot publication.
	ErrNoSnapshot = errors.New("mapserve: no snapshot published")
	// ErrClosed rejects queries after Close.
	ErrClosed = errors.New("mapserve: service closed")
)

// Config parameterizes a Service.
type Config struct {
	// Workers bounds concurrently executing batches; ≤0 uses GOMAXPROCS.
	Workers int
	// MaxBatch caps queries per micro-batch; ≤0 uses 32.
	MaxBatch int
	// BatchWait bounds how long a forming batch waits for more queries
	// after its first; ≤0 uses 2ms. A full batch dispatches immediately.
	BatchWait time.Duration
	// QueueDepth bounds queued-but-undispatched queries; a full queue sheds
	// new queries with ErrOverloaded. ≤0 uses 1024.
	QueueDepth int
	// Metrics receives service counters, latencies and the batch-size
	// histogram; nil disables recording.
	Metrics *perf.Metrics
	// Tracer records one span tree per query — admission wait, snapshot
	// acquire, kernel map with per-stage breakdown — into its flight
	// recorder. nil disables tracing and adds zero allocations to the hot
	// path (the nil-Probe rule).
	Tracer *obs.Tracer
	// TraceProbes, when tracing is enabled, attaches a perf.Probe to each
	// traced kernel map span so traces also carry dynamic instruction
	// counts. Expensive (full cache/branch simulation per query) — meant
	// for targeted debugging, not steady-state serving.
	TraceProbes bool
}

// Response is the outcome of one mapped query.
type Response struct {
	Result pipeline.Result
	Stages pipeline.StageTimes
	// SnapshotID / Generation identify the snapshot that served the query.
	SnapshotID string
	Generation uint64
	// BatchSize is the size of the micro-batch the query rode in.
	BatchSize int
	// QueueWait is time from admission to batch execution; MapTime the
	// in-kernel mapping time.
	QueueWait, MapTime time.Duration
	// TraceID identifies this query's trace ("" with tracing disabled) —
	// the join key between flight-log events and /traces?trace_id=. Shed
	// and failed queries still return a TraceID-carrying response alongside
	// their error when tracing is on, since exactly those traces are the
	// ones the recorder always retains.
	TraceID string
}

// pending is one admitted query awaiting execution.
type pending struct {
	ctx  context.Context
	read []byte
	enq  time.Time
	wait time.Duration // admission → execution turn, set by admitTurn
	span *obs.Span
	resp *Response
	err  error
	done chan struct{}
}

// Service is the batched read-mapping executor. Incoming queries are
// admitted into a bounded queue, micro-batched by count and max-wait
// deadline, and dispatched on a bounded worker pool. Each batch acquires the
// registry's current snapshot exactly once — amortizing snapshot/index
// access across the batch the way the paper's mapping tools amortize seeding
// — so a hot-swap between batches is invisible to in-flight queries.
type Service struct {
	cfg     Config
	metrics *perf.Metrics
	tracer  *obs.Tracer
	reg     *Registry

	queue   chan *pending
	batches chan []*pending
	stop    chan struct{}

	closeMu sync.RWMutex
	closed  bool

	// chaosShed, when set (SetChaosShed), sheds every new query at admission
	// — the fault-injection hook soak runs use to synthesize shed storms.
	chaosShed atomic.Bool

	dispatcherDone chan struct{}
	workers        sync.WaitGroup
}

// New starts a service mapping queries against reg's current snapshot.
// Callers publish snapshots into reg (before or after New; queries fail
// with ErrNoSnapshot until the first Publish) and must Close the service
// to stop its goroutines.
func New(reg *Registry, cfg Config) *Service {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 32
	}
	if cfg.BatchWait <= 0 {
		cfg.BatchWait = 2 * time.Millisecond
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	s := &Service{
		cfg:            cfg,
		metrics:        cfg.Metrics,
		tracer:         cfg.Tracer,
		reg:            reg,
		queue:          make(chan *pending, cfg.QueueDepth),
		batches:        make(chan []*pending, cfg.Workers),
		stop:           make(chan struct{}),
		dispatcherDone: make(chan struct{}),
	}
	go s.dispatch()
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// Registry returns the snapshot registry the service maps against.
func (s *Service) Registry() *Registry { return s.reg }

// Map admits one read query and blocks until it is mapped, shed, or failed.
// ctx deadlines/cancellation are honored while the query waits in the queue
// and inside the mapping kernels (ContextTool.MapCtx).
func (s *Service) Map(ctx context.Context, read []byte) (*Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(read) == 0 {
		return nil, errors.New("mapserve: empty read")
	}
	sp := s.tracer.StartRoot("mapserve.query")
	sp.SetInt("read_len", int64(len(read)))
	p := &pending{ctx: ctx, read: read, enq: time.Now(), span: sp, done: make(chan struct{})}

	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		sp.Error(ErrClosed)
		sp.End()
		return nil, ErrClosed
	}
	s.metrics.Add("mapserve.queries", 1)
	if s.chaosShed.Load() {
		s.closeMu.RUnlock()
		s.metrics.Add("mapserve.shed_chaos", 1)
		sp.Shed("chaos")
		sp.Error(ErrOverloaded)
		sp.End()
		return errResp(sp), ErrOverloaded
	}
	select {
	case s.queue <- p:
		s.metrics.GaugeAdd("mapserve.queue_depth", 1)
		s.closeMu.RUnlock()
	default:
		s.closeMu.RUnlock()
		s.metrics.Add("mapserve.shed_queue", 1)
		sp.Shed("queue")
		sp.Error(ErrOverloaded)
		sp.End()
		return errResp(sp), ErrOverloaded
	}

	<-p.done
	sp.End()
	if p.err != nil && p.resp == nil {
		return errResp(sp), p.err
	}
	return p.resp, p.err
}

// errResp carries a failed query's trace id back to the caller — nil when
// tracing is disabled, preserving the historical nil-response contract.
func errResp(sp *obs.Span) *Response {
	if sp == nil {
		return nil
	}
	return &Response{TraceID: sp.TraceID().String()}
}

// dispatch forms micro-batches: the first query of a batch starts a
// BatchWait timer, and the batch dispatches when it reaches MaxBatch or the
// timer fires, whichever comes first.
func (s *Service) dispatch() {
	defer close(s.dispatcherDone)
	defer close(s.batches)
	for {
		var first *pending
		select {
		case first = <-s.queue:
		case <-s.stop:
			s.drain()
			return
		}
		batch := append(make([]*pending, 0, s.cfg.MaxBatch), first)
		timer := time.NewTimer(s.cfg.BatchWait)
	fill:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case p := <-s.queue:
				batch = append(batch, p)
			case <-timer.C:
				break fill
			case <-s.stop:
				break fill
			}
		}
		timer.Stop()
		s.batches <- batch
	}
}

// drain flushes queries admitted before Close into final batches. Close
// excludes new admissions first, so the queue can only shrink here.
func (s *Service) drain() {
	batch := make([]*pending, 0, s.cfg.MaxBatch)
	for {
		select {
		case p := <-s.queue:
			batch = append(batch, p)
			if len(batch) == s.cfg.MaxBatch {
				s.batches <- batch
				batch = make([]*pending, 0, s.cfg.MaxBatch)
			}
		default:
			if len(batch) > 0 {
				s.batches <- batch
			}
			return
		}
	}
}

// worker executes batches.
func (s *Service) worker() {
	defer s.workers.Done()
	for batch := range s.batches {
		s.runBatch(batch)
	}
}

// runBatch maps every query of one batch against a single snapshot
// acquisition. Queries whose context is already done are shed without
// mapping. The mappable remainder is partitioned into lane groups that
// share one cancellation domain — the same ctx, or no cancellation at all —
// and each group of two or more rides a single Snapshot.MapBatch call
// through the tool's lane-packed kernels; singletons (and all queries under
// TraceProbes, which need a per-query probe) keep the serial ctx-threaded
// path. A context firing mid-group stops the batched kernel at its next
// lane boundary: the completed prefix still answers normally, the rest shed
// with ctx.Err(). Every pending's done channel closes exactly once, and the
// single snapshot reference is released when the whole batch has run.
func (s *Service) runBatch(batch []*pending) {
	s.metrics.Add("mapserve.batches", 1)
	s.metrics.ObserveValue("mapserve.batch_size", float64(len(batch)))

	acqStart := time.Now()
	snap := s.reg.Acquire()
	acqDur := time.Since(acqStart)
	if snap != nil {
		defer snap.Release()
	}

	// Shed what cannot map; collect the rest for group formation.
	run := make([]*pending, 0, len(batch))
	for _, p := range batch {
		s.metrics.GaugeAdd("mapserve.queue_depth", -1)
		switch {
		case snap == nil:
			s.admitTurn(p, len(batch))
			p.span.Error(ErrNoSnapshot)
			p.err = ErrNoSnapshot
			p.span.End()
			close(p.done)
		case p.ctx.Err() != nil:
			s.admitTurn(p, len(batch))
			s.failDeadline(p, nil, p.ctx.Err())
		default:
			run = append(run, p)
		}
	}
	if len(run) == 0 {
		return
	}

	// TraceProbes attaches one probe per query's map span, which a shared
	// lane-group call cannot honor — keep every query serial.
	serialOnly := s.cfg.TraceProbes && s.tracer != nil
	var group []*pending
	used := make([]bool, len(run))
	for i, p0 := range run {
		if used[i] {
			continue
		}
		used[i] = true
		if serialOnly {
			s.runSerial(snap, p0, len(batch), acqStart, acqDur)
			continue
		}
		group = append(group[:0], p0)
		for j := i + 1; j < len(run) && len(group) < align.MaxLanes; j++ {
			if used[j] {
				continue
			}
			if run[j].ctx == p0.ctx || (p0.ctx.Done() == nil && run[j].ctx.Done() == nil) {
				group = append(group, run[j])
				used[j] = true
			}
		}
		if len(group) == 1 {
			s.runSerial(snap, p0, len(batch), acqStart, acqDur)
			continue
		}
		s.runGroup(snap, group, len(batch), acqStart, acqDur)
	}
}

// admitTurn records a query's turn-for-execution accounting: the admission
// trace stage covers enqueue → this query's turn (batch assembly plus any
// earlier queries of the batch), so a query's direct children sum to its
// request latency.
func (s *Service) admitTurn(p *pending, batchSize int) {
	p.wait = time.Since(p.enq)
	s.metrics.Observe("mapserve.queue_wait", p.wait)
	p.span.Stage("admission", p.enq, p.wait)
	p.span.SetInt("batch_size", int64(batchSize))
}

// snapStage annotates a mappable query with the batch's single snapshot
// acquisition.
func (s *Service) snapStage(p *pending, snap *Snapshot, acqStart time.Time, acqDur time.Duration) {
	p.span.Stage("snapshot.acquire", acqStart, acqDur)
	p.span.Set("snapshot", snap.ID)
	p.span.SetInt("generation", int64(snap.Generation))
}

// failDeadline sheds one query with the deadline cause: counters, shed/error
// span state, root span end, done close. ms is the query's map span when the
// failure happened inside (or around) the kernel, nil when it never started.
func (s *Service) failDeadline(p *pending, ms *obs.Span, err error) {
	s.metrics.Add("mapserve.shed_deadline", 1)
	ms.Error(err)
	ms.End()
	p.span.Shed("deadline")
	p.span.Error(err)
	p.err = err
	p.span.End()
	close(p.done)
}

// finish answers one mapped query: success metrics, the response, root span
// end, done close. mt is the query's kernel attribution — measured wall time
// on the serial path, the apportioned stage total on the batched path.
func (s *Service) finish(p *pending, snap *Snapshot, batchSize int, res pipeline.Result, stages pipeline.StageTimes, mt time.Duration) {
	s.metrics.Add("mapserve.mapped", 1)
	s.metrics.Observe("mapserve.map", mt)
	s.metrics.Observe("mapserve.stage.seed", stages.Seed)
	s.metrics.Observe("mapserve.stage.chain", stages.Chain)
	s.metrics.Observe("mapserve.stage.filter", stages.Filter)
	s.metrics.Observe("mapserve.stage.align", stages.Align)
	p.resp = &Response{
		Result:     res,
		Stages:     stages,
		SnapshotID: snap.ID,
		Generation: snap.Generation,
		BatchSize:  batchSize,
		QueueWait:  p.wait,
		MapTime:    mt,
		TraceID:    p.span.TraceID().String(),
	}
	// End the root span here, when the response is ready: request latency
	// then excludes the client goroutine's wake-up delay, so the span's
	// children account for (nearly) all of it. Map's End is idempotent.
	p.span.End()
	close(p.done)
}

// runSerial maps one query through the ctx-threaded MapCtx path: kernel
// stage timers annotate the map span live through the context, and
// TraceProbes can attach a per-query probe.
func (s *Service) runSerial(snap *Snapshot, p *pending, batchSize int, acqStart time.Time, acqDur time.Duration) {
	s.admitTurn(p, batchSize)
	if err := p.ctx.Err(); err != nil {
		// Expired while an earlier group of this batch ran.
		s.failDeadline(p, nil, err)
		return
	}
	s.snapStage(p, snap, acqStart, acqDur)
	ms := p.span.Child("map")
	ctx := obs.ContextWithSpan(p.ctx, ms)
	var probe *perf.Probe
	if s.cfg.TraceProbes && ms != nil {
		probe = perf.NewProbe()
		ms.AttachProbe(probe)
	}
	t0 := time.Now()
	res, stages, err := snap.MapWithProbe(ctx, p.read, probe)
	mt := time.Since(t0)
	if err != nil {
		s.failDeadline(p, ms, err)
		return
	}
	ms.End()
	s.finish(p, snap, batchSize, res, stages, mt)
}

// runGroup maps one lane group through the snapshot's batched kernels in a
// single MapBatch call. Per-query stage times come back already apportioned
// (a shared lane-group kernel call's wall time is divided across the lanes
// that rode in it), so the map span's stage children never multiply-count
// another query's work; MapTime is that apportioned total. On a
// *pipeline.BatchError the completed prefix answers normally and the
// remaining members shed with the batch's cause.
func (s *Service) runGroup(snap *Snapshot, group []*pending, batchSize int, acqStart time.Time, acqDur time.Duration) {
	s.metrics.ObserveValue("mapserve.lane_group", float64(len(group)))
	reads := make([][]byte, len(group))
	results := make([]pipeline.Result, len(group))
	stages := make([]pipeline.StageTimes, len(group))
	spans := make([]*obs.Span, len(group))
	for i, p := range group {
		s.admitTurn(p, batchSize)
		s.snapStage(p, snap, acqStart, acqDur)
		reads[i] = p.read
		ms := p.span.Child("map")
		ms.SetInt("lane_group", int64(len(group)))
		spans[i] = ms
	}
	t0 := time.Now()
	n, err := snap.MapBatch(group[0].ctx, reads, results, stages, nil)
	cause := err
	var be *pipeline.BatchError
	if errors.As(err, &be) {
		cause = be.Err
	}
	for i, p := range group {
		if i >= n {
			if cause == nil { // unreachable: n < len(group) implies an error
				cause = context.Canceled
			}
			s.failDeadline(p, spans[i], cause)
			continue
		}
		// Post-hoc stage children from the apportioned kernel stage times,
		// laid out back to back from the group call's start.
		ms, st, start := spans[i], stages[i], t0
		for _, sg := range [...]struct {
			name string
			d    time.Duration
		}{{"seed", st.Seed}, {"chain", st.Chain}, {"filter", st.Filter}, {"align", st.Align}} {
			if sg.d > 0 {
				ms.Stage(sg.name, start, sg.d)
				start = start.Add(sg.d)
			}
		}
		ms.End()
		s.finish(p, snap, batchSize, results[i], st, st.Total())
	}
}

// Close stops admissions, drains already-admitted queries (every admitted
// query still gets an answer), and waits for the workers to exit.
func (s *Service) Close() {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return
	}
	s.closed = true
	s.closeMu.Unlock()
	close(s.stop)
	<-s.dispatcherDone
	s.workers.Wait()
}

// Metrics returns a snapshot of the service's metric set (empty when the
// service was configured without one).
func (s *Service) Metrics() perf.MetricsSnapshot { return s.metrics.Snapshot() }

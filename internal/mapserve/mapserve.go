package mapserve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"pangenomicsbench/internal/perf"
	"pangenomicsbench/internal/pipeline"
)

// Admission and lifecycle errors.
var (
	// ErrOverloaded sheds a query at admission: the bounded queue is full.
	ErrOverloaded = errors.New("mapserve: overloaded, query shed")
	// ErrNoSnapshot rejects queries before the first snapshot publication.
	ErrNoSnapshot = errors.New("mapserve: no snapshot published")
	// ErrClosed rejects queries after Close.
	ErrClosed = errors.New("mapserve: service closed")
)

// Config parameterizes a Service.
type Config struct {
	// Workers bounds concurrently executing batches; ≤0 uses GOMAXPROCS.
	Workers int
	// MaxBatch caps queries per micro-batch; ≤0 uses 32.
	MaxBatch int
	// BatchWait bounds how long a forming batch waits for more queries
	// after its first; ≤0 uses 2ms. A full batch dispatches immediately.
	BatchWait time.Duration
	// QueueDepth bounds queued-but-undispatched queries; a full queue sheds
	// new queries with ErrOverloaded. ≤0 uses 1024.
	QueueDepth int
	// Metrics receives service counters, latencies and the batch-size
	// histogram; nil disables recording.
	Metrics *perf.Metrics
}

// Response is the outcome of one mapped query.
type Response struct {
	Result pipeline.Result
	Stages pipeline.StageTimes
	// SnapshotID / Generation identify the snapshot that served the query.
	SnapshotID string
	Generation uint64
	// BatchSize is the size of the micro-batch the query rode in.
	BatchSize int
	// QueueWait is time from admission to batch execution; MapTime the
	// in-kernel mapping time.
	QueueWait, MapTime time.Duration
}

// pending is one admitted query awaiting execution.
type pending struct {
	ctx  context.Context
	read []byte
	enq  time.Time
	resp *Response
	err  error
	done chan struct{}
}

// Service is the batched read-mapping executor. Incoming queries are
// admitted into a bounded queue, micro-batched by count and max-wait
// deadline, and dispatched on a bounded worker pool. Each batch acquires the
// registry's current snapshot exactly once — amortizing snapshot/index
// access across the batch the way the paper's mapping tools amortize seeding
// — so a hot-swap between batches is invisible to in-flight queries.
type Service struct {
	cfg     Config
	metrics *perf.Metrics
	reg     *Registry

	queue   chan *pending
	batches chan []*pending
	stop    chan struct{}

	closeMu sync.RWMutex
	closed  bool

	dispatcherDone chan struct{}
	workers        sync.WaitGroup
}

// New starts a service mapping queries against reg's current snapshot.
// Callers publish snapshots into reg (before or after New; queries fail
// with ErrNoSnapshot until the first Publish) and must Close the service
// to stop its goroutines.
func New(reg *Registry, cfg Config) *Service {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 32
	}
	if cfg.BatchWait <= 0 {
		cfg.BatchWait = 2 * time.Millisecond
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	s := &Service{
		cfg:            cfg,
		metrics:        cfg.Metrics,
		reg:            reg,
		queue:          make(chan *pending, cfg.QueueDepth),
		batches:        make(chan []*pending, cfg.Workers),
		stop:           make(chan struct{}),
		dispatcherDone: make(chan struct{}),
	}
	go s.dispatch()
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// Registry returns the snapshot registry the service maps against.
func (s *Service) Registry() *Registry { return s.reg }

// Map admits one read query and blocks until it is mapped, shed, or failed.
// ctx deadlines/cancellation are honored while the query waits in the queue
// and inside the mapping kernels (ContextTool.MapCtx).
func (s *Service) Map(ctx context.Context, read []byte) (*Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(read) == 0 {
		return nil, errors.New("mapserve: empty read")
	}
	p := &pending{ctx: ctx, read: read, enq: time.Now(), done: make(chan struct{})}

	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		return nil, ErrClosed
	}
	s.metrics.Add("mapserve.queries", 1)
	select {
	case s.queue <- p:
		s.metrics.Add("mapserve.queue_depth", 1)
		s.closeMu.RUnlock()
	default:
		s.closeMu.RUnlock()
		s.metrics.Add("mapserve.shed_queue", 1)
		return nil, ErrOverloaded
	}

	<-p.done
	return p.resp, p.err
}

// dispatch forms micro-batches: the first query of a batch starts a
// BatchWait timer, and the batch dispatches when it reaches MaxBatch or the
// timer fires, whichever comes first.
func (s *Service) dispatch() {
	defer close(s.dispatcherDone)
	defer close(s.batches)
	for {
		var first *pending
		select {
		case first = <-s.queue:
		case <-s.stop:
			s.drain()
			return
		}
		batch := append(make([]*pending, 0, s.cfg.MaxBatch), first)
		timer := time.NewTimer(s.cfg.BatchWait)
	fill:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case p := <-s.queue:
				batch = append(batch, p)
			case <-timer.C:
				break fill
			case <-s.stop:
				break fill
			}
		}
		timer.Stop()
		s.batches <- batch
	}
}

// drain flushes queries admitted before Close into final batches. Close
// excludes new admissions first, so the queue can only shrink here.
func (s *Service) drain() {
	batch := make([]*pending, 0, s.cfg.MaxBatch)
	for {
		select {
		case p := <-s.queue:
			batch = append(batch, p)
			if len(batch) == s.cfg.MaxBatch {
				s.batches <- batch
				batch = make([]*pending, 0, s.cfg.MaxBatch)
			}
		default:
			if len(batch) > 0 {
				s.batches <- batch
			}
			return
		}
	}
}

// worker executes batches.
func (s *Service) worker() {
	defer s.workers.Done()
	for batch := range s.batches {
		s.runBatch(batch)
	}
}

// runBatch maps every query of one batch against a single snapshot
// acquisition. Queries whose context is already done are shed without
// mapping; a context firing mid-map stops the kernel at its next loop
// boundary and the query fails with ctx.Err().
func (s *Service) runBatch(batch []*pending) {
	s.metrics.Add("mapserve.batches", 1)
	s.metrics.ObserveValue("mapserve.batch_size", float64(len(batch)))

	snap := s.reg.Acquire()
	if snap != nil {
		defer snap.Release()
	}
	for _, p := range batch {
		s.metrics.Add("mapserve.queue_depth", -1)
		wait := time.Since(p.enq)
		s.metrics.Observe("mapserve.queue_wait", wait)
		switch {
		case snap == nil:
			p.err = ErrNoSnapshot
		case p.ctx.Err() != nil:
			s.metrics.Add("mapserve.shed_deadline", 1)
			p.err = p.ctx.Err()
		default:
			t0 := time.Now()
			res, stages, err := snap.Map(p.ctx, p.read)
			mt := time.Since(t0)
			if err != nil {
				s.metrics.Add("mapserve.shed_deadline", 1)
				p.err = err
				break
			}
			s.metrics.Add("mapserve.mapped", 1)
			s.metrics.Observe("mapserve.map", mt)
			s.metrics.Observe("mapserve.stage.seed", stages.Seed)
			s.metrics.Observe("mapserve.stage.chain", stages.Chain)
			s.metrics.Observe("mapserve.stage.filter", stages.Filter)
			s.metrics.Observe("mapserve.stage.align", stages.Align)
			p.resp = &Response{
				Result:     res,
				Stages:     stages,
				SnapshotID: snap.ID,
				Generation: snap.Generation,
				BatchSize:  len(batch),
				QueueWait:  wait,
				MapTime:    mt,
			}
		}
		close(p.done)
	}
}

// Close stops admissions, drains already-admitted queries (every admitted
// query still gets an answer), and waits for the workers to exit.
func (s *Service) Close() {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return
	}
	s.closed = true
	s.closeMu.Unlock()
	close(s.stop)
	<-s.dispatcherDone
	s.workers.Wait()
}

// Metrics returns a snapshot of the service's metric set (empty when the
// service was configured without one).
func (s *Service) Metrics() perf.MetricsSnapshot { return s.metrics.Snapshot() }

package mapserve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"pangenomicsbench/internal/gensim"
	"pangenomicsbench/internal/obs"
	"pangenomicsbench/internal/pipeline"
)

// batchServiceFixture is one published giraffe snapshot plus simulated reads
// for driving the grouped executor path.
func batchServiceFixture(t *testing.T, nReads, length int) (*Registry, *Snapshot, [][]byte) {
	t.Helper()
	pop := testPop(t, 8000, 4)
	sim, err := pop.SimulateReads(gensim.ReadConfig{Count: nReads, Length: length, SubRate: 0.002, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	reads := make([][]byte, nReads)
	for i, r := range sim {
		reads[i] = r.Seq
	}
	snap, err := NewSnapshot("pop", pop.Graph, DefaultToolConfig(ToolGiraffe))
	if err != nil {
		t.Fatal(err)
	}
	reg := &Registry{}
	if _, err := reg.Publish(snap); err != nil {
		t.Fatal(err)
	}
	return reg, snap, reads
}

// TestGroupedQueriesMatchSerial is the serving-tier differential: concurrent
// non-cancelable queries ride lane groups through Snapshot.MapBatch, and
// every response must be byte-identical to a direct serial Map of the same
// read against the same snapshot.
func TestGroupedQueriesMatchSerial(t *testing.T) {
	reg, snap, reads := batchServiceFixture(t, 8, 600)
	want := make([]pipeline.Result, len(reads))
	for i, read := range reads {
		r, _, err := snap.Map(context.Background(), read)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}

	s := New(reg, Config{Workers: 1, MaxBatch: 16, BatchWait: 25 * time.Millisecond})
	defer s.Close()

	resps := make([]*Response, len(reads))
	var wg sync.WaitGroup
	for i := range reads {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := s.Map(context.Background(), reads[i])
			if err != nil {
				t.Errorf("query %d: %v", i, err)
				return
			}
			resps[i] = resp
		}(i)
	}
	wg.Wait()
	for i, resp := range resps {
		if resp == nil {
			continue
		}
		if resp.Result != want[i] {
			t.Errorf("query %d: batched %+v != serial %+v", i, resp.Result, want[i])
		}
		if resp.MapTime <= 0 {
			t.Errorf("query %d: no map time attributed", i)
		}
	}
}

// TestGroupedQueryTraceStageSum extends the trace-attribution acceptance
// test to the batched path: queries sharing one lane-group kernel call must
// still produce traces whose direct children account for the request latency
// within the 10% bound — the shared call's wall time is apportioned across
// the group, never multiply-counted — and whose map spans carry the
// apportioned per-stage breakdown as children.
func TestGroupedQueryTraceStageSum(t *testing.T) {
	reg, _, reads := batchServiceFixture(t, 4, 600)
	tr := obs.NewTracer(obs.TracerConfig{})
	// A long BatchWait both gathers the concurrent queries into one batch
	// and makes the admission stage dominate the request, so the attribution
	// check is robust to scheduler noise.
	s := New(reg, Config{Workers: 1, MaxBatch: 8, BatchWait: 50 * time.Millisecond, Tracer: tr})
	defer s.Close()

	var wg sync.WaitGroup
	for i := range reads {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Map(context.Background(), reads[i]); err != nil {
				t.Errorf("query %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	traces := tr.Recorder().Last(len(reads))
	if len(traces) != len(reads) {
		t.Fatalf("recorder retained %d traces, want %d", len(traces), len(reads))
	}
	grouped := 0
	for _, root := range traces {
		if root.Failed() {
			t.Fatalf("successful query marked failed: %s", root.Tree())
		}
		for _, name := range []string{"admission", "snapshot.acquire", "map"} {
			if _, ok := findChild(root, name); !ok {
				t.Errorf("trace missing %q child:\n%s", name, root.Tree())
			}
		}
		mapSpan, _ := findChild(root, "map")
		if attrValue(mapSpan, "lane_group") != "" {
			grouped++
			// The batched path attaches the apportioned kernel stages
			// post hoc; a giraffe-mapped read exercises all of them.
			for _, stage := range []string{"seed", "chain", "align"} {
				if _, ok := findChild(mapSpan, stage); !ok {
					t.Errorf("grouped map span missing kernel stage %q:\n%s", stage, root.Tree())
				}
			}
		}
		sum, dur := root.StageSum(), root.Duration
		lo, hi := dur-dur/10, dur+dur/10
		if sum < lo || sum > hi {
			t.Errorf("stage sum %v outside 10%% of request latency %v:\n%s", sum, dur, root.Tree())
		}
	}
	// The concurrent queries land in one micro-batch (the 50ms BatchWait is
	// enormous next to their enqueue skew), so at least one lane group of
	// ≥2 must have formed.
	if grouped < 2 {
		t.Errorf("only %d of %d queries rode a lane group", grouped, len(traces))
	}
}

// TestGroupCancelReleasesSnapshot is the batched-path cancellation and
// refcount-drain test: queries sharing one cancelable context form a lane
// group, a mid-flight cancel sheds the unfinished members with a
// context.Canceled cause while any completed prefix still answers, and —
// regardless of where the cancel lands — the batch's single snapshot
// reference is released, so the registry drains to zero in-flight queries.
func TestGroupCancelReleasesSnapshot(t *testing.T) {
	reg, snap, reads := batchServiceFixture(t, 8, 900)
	s := New(reg, Config{Workers: 1, MaxBatch: 16, BatchWait: time.Millisecond})
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := range reads {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := s.Map(ctx, reads[i])
			switch {
			case err == nil:
				if resp == nil || !resp.Result.Mapped && resp.Result.EditDistance == 0 && resp.MapTime == 0 {
					t.Errorf("query %d: nil-ish success response %+v", i, resp)
				}
			case errors.Is(err, context.Canceled):
				// Shed mid-group or at admission turn — the expected path.
			default:
				t.Errorf("query %d: unexpected error %v", i, err)
			}
		}(i)
	}
	time.Sleep(2 * time.Millisecond)
	cancel()
	wg.Wait()

	// Every done channel closed and the worker's deferred Release ran: the
	// registry must drain to zero in-flight queries (the registry's own
	// reference on the current snapshot is not a query).
	deadline := time.Now().Add(2 * time.Second)
	for {
		drained := true
		for _, info := range reg.Stats() {
			if info.InFlight != 0 {
				drained = false
			}
		}
		if drained {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("snapshot references leaked after canceled batch: %+v", reg.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	// The service keeps serving after the canceled group.
	want, _, err := snap.Map(context.Background(), reads[0])
	if err != nil {
		t.Fatal(err)
	}
	resp, err := s.Map(context.Background(), reads[0])
	if err != nil {
		t.Fatal(err)
	}
	if resp.Result != want {
		t.Errorf("post-cancel query: %+v != serial %+v", resp.Result, want)
	}
}

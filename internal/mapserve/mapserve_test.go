package mapserve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"pangenomicsbench/internal/gensim"
	"pangenomicsbench/internal/perf"
	"pangenomicsbench/internal/pipeline"
)

// blockingTool is a stub ContextTool whose MapCtx parks until released —
// the deterministic way to keep workers busy for admission-control tests.
type blockingTool struct {
	gate    chan struct{} // MapCtx blocks until this closes (nil = no block)
	started chan struct{} // one send per MapCtx entry, if non-nil
}

func (b *blockingTool) Name() string { return "blocking" }
func (b *blockingTool) Map(read []byte, probe *perf.Probe) (pipeline.Result, pipeline.StageTimes) {
	r, st, _ := b.MapCtx(context.Background(), read, probe)
	return r, st
}
func (b *blockingTool) MapCtx(ctx context.Context, read []byte, probe *perf.Probe) (pipeline.Result, pipeline.StageTimes, error) {
	if b.started != nil {
		b.started <- struct{}{}
	}
	if b.gate != nil {
		select {
		case <-b.gate:
		case <-ctx.Done():
			return pipeline.Result{}, pipeline.StageTimes{}, ctx.Err()
		}
	}
	return pipeline.Result{Mapped: true, Node: 1, EditDistance: len(read)}, pipeline.StageTimes{}, nil
}
func (b *blockingTool) MapBatch(ctx context.Context, reads [][]byte, results []pipeline.Result, stages []pipeline.StageTimes, probe *perf.Probe) (int, error) {
	for i, read := range reads {
		r, st, err := b.MapCtx(ctx, read, probe)
		if err != nil {
			return i, &pipeline.BatchError{Done: i, Err: err}
		}
		results[i], stages[i] = r, st
	}
	return len(reads), nil
}

// stubService wires a blockingTool snapshot into a fresh service.
func stubService(t *testing.T, tool *blockingTool, cfg Config) (*Service, *Registry) {
	t.Helper()
	pop := testPop(t, 2000, 2)
	snap, err := NewSnapshotWithTool("stub", pop.Graph, tool)
	if err != nil {
		t.Fatal(err)
	}
	reg := &Registry{}
	if _, err := reg.Publish(snap); err != nil {
		t.Fatal(err)
	}
	return New(reg, cfg), reg
}

// TestMapBeforePublish rejects queries with ErrNoSnapshot but leaves the
// service healthy for queries after the first publication.
func TestMapBeforePublish(t *testing.T) {
	reg := &Registry{}
	s := New(reg, Config{Workers: 1})
	defer s.Close()

	if _, err := s.Map(context.Background(), []byte("ACGT")); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("pre-publish map: %v, want ErrNoSnapshot", err)
	}
	if _, err := s.Map(context.Background(), nil); err == nil {
		t.Fatal("empty read accepted")
	}

	pop := testPop(t, 2000, 2)
	snap, err := NewSnapshotWithTool("s", pop.Graph, &blockingTool{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish(snap); err != nil {
		t.Fatal(err)
	}
	resp, err := s.Map(context.Background(), []byte("ACGTACGT"))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Result.Mapped || resp.SnapshotID != "s" || resp.Generation != 1 {
		t.Fatalf("response %+v", resp)
	}
}

// TestBatching verifies micro-batch formation: with one worker parked on the
// first batch, a burst of queries coalesces into shared batches, bounded by
// MaxBatch, and the batch-size histogram records them.
func TestBatching(t *testing.T) {
	tool := &blockingTool{gate: make(chan struct{}), started: make(chan struct{}, 64)}
	m := perf.NewMetrics()
	s, _ := stubService(t, tool, Config{
		Workers: 1, MaxBatch: 4, BatchWait: 20 * time.Millisecond, QueueDepth: 64, Metrics: m,
	})

	// First query occupies the single worker (blocked on the gate).
	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		if _, err := s.Map(context.Background(), []byte("AAAA")); err != nil {
			t.Errorf("first query: %v", err)
		}
	}()
	<-tool.started

	// Burst of 8 while the worker is parked: the dispatcher batches them
	// into groups of ≤4 behind the in-flight batch.
	var wg sync.WaitGroup
	sizes := make(chan int, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := s.Map(context.Background(), []byte("CCCC"))
			if err != nil {
				t.Errorf("burst query: %v", err)
				return
			}
			sizes <- resp.BatchSize
		}()
	}
	// Give the dispatcher time to form full batches, then open the gate.
	time.Sleep(50 * time.Millisecond)
	close(tool.gate)
	wg.Wait()
	<-firstDone
	s.Close()
	close(sizes)

	maxSize := 0
	for sz := range sizes {
		if sz > 4 {
			t.Errorf("batch size %d exceeds MaxBatch 4", sz)
		}
		if sz > maxSize {
			maxSize = sz
		}
	}
	if maxSize < 2 {
		t.Errorf("no query rode a shared batch (max size %d)", maxSize)
	}
	snap := m.Snapshot()
	hist := snap.Values["mapserve.batch_size"]
	if hist.Count == 0 || hist.Max > 4 {
		t.Errorf("batch-size histogram %+v", hist)
	}
	g := snap.Gauges["mapserve.queue_depth"]
	if g.Value != 0 {
		t.Errorf("queue depth gauge did not return to zero: %d", g.Value)
	}
	if g.Watermark < 1 {
		t.Errorf("queue depth watermark = %d, want ≥1", g.Watermark)
	}
	if snap.Counters["mapserve.mapped"] != 9 {
		t.Errorf("mapped = %d, want 9", snap.Counters["mapserve.mapped"])
	}
}

// TestQueueShedding fills the pipeline behind a parked worker until
// admission sheds with ErrOverloaded, then verifies every admitted query
// still completes.
func TestQueueShedding(t *testing.T) {
	tool := &blockingTool{gate: make(chan struct{}), started: make(chan struct{}, 64)}
	m := perf.NewMetrics()
	s, _ := stubService(t, tool, Config{
		Workers: 1, MaxBatch: 1, BatchWait: time.Millisecond, QueueDepth: 2, Metrics: m,
	})

	var wg sync.WaitGroup
	var mu sync.Mutex
	admitted, shed := 0, 0
	// Keep issuing queries until one sheds. The worker never finishes, so
	// queue capacity (2) + the dispatcher's formed batches bound admissions.
	for i := 0; i < 32 && shed == 0; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Map(context.Background(), []byte("GGGG"))
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				admitted++
			case errors.Is(err, ErrOverloaded):
				shed++
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
		time.Sleep(5 * time.Millisecond)
		mu.Lock()
		shedNow := shed
		mu.Unlock()
		if shedNow > 0 {
			break
		}
	}
	close(tool.gate)
	wg.Wait()
	s.Close()

	if shed == 0 {
		t.Fatal("bounded queue never shed under a parked worker")
	}
	if admitted == 0 {
		t.Fatal("no queries completed after the gate opened")
	}
	if got := m.Counter("mapserve.shed_queue"); got != int64(shed) {
		t.Errorf("shed_queue = %d, want %d", got, shed)
	}
}

// TestDeadlineShedding covers deadline-aware admission control: a query
// whose context expires while queued is shed without mapping, and a deadline
// firing mid-map stops the kernel and fails only that query.
func TestDeadlineShedding(t *testing.T) {
	gate := make(chan struct{})
	tool := &blockingTool{gate: gate, started: make(chan struct{}, 8)}
	m := perf.NewMetrics()
	s, _ := stubService(t, tool, Config{
		Workers: 1, MaxBatch: 1, BatchWait: time.Millisecond, QueueDepth: 8, Metrics: m,
	})
	defer s.Close()

	// Park the worker, then enqueue a query with an already-canceled context:
	// it must be shed at execution, not mapped.
	parked := make(chan struct{})
	go func() {
		defer close(parked)
		if _, err := s.Map(context.Background(), []byte("AAAA")); err != nil {
			t.Errorf("parked query: %v", err)
		}
	}()
	<-tool.started

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	shedDone := make(chan error, 1)
	go func() {
		_, err := s.Map(canceled, []byte("CCCC"))
		shedDone <- err
	}()

	// A live-deadline query behind it: its deadline fires mid-map (inside
	// the gate wait), so MapCtx returns ctx.Err().
	deadlineDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		defer cancel()
		_, err := s.Map(ctx, []byte("TTTT"))
		deadlineDone <- err
	}()

	time.Sleep(60 * time.Millisecond) // let the mid-map deadline expire
	close(gate)
	<-parked
	if err := <-shedDone; !errors.Is(err, context.Canceled) {
		t.Errorf("queued canceled query: %v, want context.Canceled", err)
	}
	if err := <-deadlineDone; !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("mid-map deadline query: %v, want context.DeadlineExceeded", err)
	}
	if got := m.Counter("mapserve.shed_deadline"); got != 2 {
		t.Errorf("shed_deadline = %d, want 2", got)
	}
}

// TestCloseDrains verifies Close answers every admitted query and rejects
// later ones.
func TestCloseDrains(t *testing.T) {
	tool := &blockingTool{}
	s, _ := stubService(t, tool, Config{Workers: 2, MaxBatch: 4, BatchWait: time.Millisecond})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Map(context.Background(), []byte("ACGT")); err != nil {
				t.Errorf("pre-close query failed: %v", err)
			}
		}()
	}
	wg.Wait()
	s.Close()
	s.Close() // idempotent
	if _, err := s.Map(context.Background(), []byte("ACGT")); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close map: %v, want ErrClosed", err)
	}
}

// TestServedIdenticalColdWarmConcurrent is the mapping-determinism
// acceptance test: the same reads served through the batched executor —
// cold, warm, and fully concurrently — produce results identical to direct
// single-threaded tool.Map calls.
func TestServedIdenticalColdWarmConcurrent(t *testing.T) {
	pop := testPop(t, 8000, 4)
	reads, err := pop.SimulateReads(gensim.ReadConfig{Count: 24, Length: 150, SubRate: 0.002, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultToolConfig(ToolGiraffe)
	snap, err := NewSnapshot("pop", pop.Graph, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Direct reference: a separately built tool, mapped serially.
	ref, err := pipeline.NewVgGiraffe(pop.Graph, cfg.K, cfg.W)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]pipeline.Result, len(reads))
	for i, r := range reads {
		want[i], _ = ref.Map(r.Seq, nil)
	}

	reg := &Registry{}
	if _, err := reg.Publish(snap); err != nil {
		t.Fatal(err)
	}
	s := New(reg, Config{Workers: 4, MaxBatch: 8, BatchWait: time.Millisecond})
	defer s.Close()

	check := func(phase string, concurrent bool) {
		t.Helper()
		got := make([]pipeline.Result, len(reads))
		if concurrent {
			var wg sync.WaitGroup
			for i := range reads {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					resp, err := s.Map(context.Background(), reads[i].Seq)
					if err != nil {
						t.Errorf("%s read %d: %v", phase, i, err)
						return
					}
					got[i] = resp.Result
				}(i)
			}
			wg.Wait()
		} else {
			for i := range reads {
				resp, err := s.Map(context.Background(), reads[i].Seq)
				if err != nil {
					t.Fatalf("%s read %d: %v", phase, i, err)
				}
				got[i] = resp.Result
			}
		}
		for i := range reads {
			if got[i] != want[i] {
				t.Errorf("%s read %d: served %+v != direct %+v", phase, i, got[i], want[i])
			}
		}
	}
	check("cold", false)
	check("warm", false)
	check("concurrent", true)
}

// TestHotSwapDuringTraffic is the hot-swap acceptance test (run under -race
// in CI): concurrent queries race repeated snapshot publications; no query
// may fail, every query's result must match the direct mapping, and
// generations observed by queries must be coherent (monotonically available,
// old snapshots retiring only after their queries finish).
func TestHotSwapDuringTraffic(t *testing.T) {
	pop := testPop(t, 8000, 4)
	reads, err := pop.SimulateReads(gensim.ReadConfig{Count: 12, Length: 150, SubRate: 0.002, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultToolConfig(ToolGiraffe)

	ref, err := pipeline.NewVgGiraffe(pop.Graph, cfg.K, cfg.W)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]pipeline.Result, len(reads))
	for i, r := range reads {
		want[i], _ = ref.Map(r.Seq, nil)
	}

	reg := &Registry{}
	first, err := NewSnapshot("gen", pop.Graph, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish(first); err != nil {
		t.Fatal(err)
	}
	m := perf.NewMetrics()
	s := New(reg, Config{Workers: 4, MaxBatch: 4, BatchWait: 500 * time.Microsecond, Metrics: m})
	defer s.Close()

	const swaps = 5
	const rounds = 6
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				for i := range reads {
					resp, err := s.Map(context.Background(), reads[i].Seq)
					if err != nil {
						t.Errorf("client %d round %d read %d: %v", c, round, i, err)
						return
					}
					if resp.Result != want[i] {
						t.Errorf("client %d read %d on gen %d: %+v != %+v",
							c, i, resp.Generation, resp.Result, want[i])
					}
				}
			}
		}(c)
	}
	// Publisher: equivalent snapshots (same graph, same tool config) swap in
	// mid-traffic, so identical reads must keep mapping identically.
	for i := 0; i < swaps; i++ {
		snap, err := NewSnapshot("gen", pop.Graph, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := reg.Publish(snap); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()

	if got := reg.Generation(); got != swaps+1 {
		t.Fatalf("generation = %d, want %d", got, swaps+1)
	}
	if shed := m.Counter("mapserve.shed_queue") + m.Counter("mapserve.shed_deadline"); shed != 0 {
		t.Fatalf("%d queries shed during hot-swap traffic", shed)
	}
}

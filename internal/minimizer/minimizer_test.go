package minimizer

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"pangenomicsbench/internal/graph"
)

func randSeq(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = "ACGT"[rng.Intn(4)]
	}
	return s
}

func TestComputeValidation(t *testing.T) {
	if _, err := Compute([]byte("ACGT"), 0, 5, nil); err == nil {
		t.Fatal("k=0 must be rejected")
	}
	if _, err := Compute([]byte("ACGT"), 32, 5, nil); err == nil {
		t.Fatal("k>31 must be rejected")
	}
	if _, err := Compute([]byte("ACGT"), 4, 0, nil); err == nil {
		t.Fatal("w=0 must be rejected")
	}
	ms, err := Compute([]byte("AC"), 4, 3, nil)
	if err != nil || ms != nil {
		t.Fatal("short sequence must yield no minimizers")
	}
}

func TestComputeDeterministicAndCovering(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	seq := randSeq(rng, 500)
	a, err := Compute(seq, 15, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Compute(seq, 15, 10, nil)
	if len(a) != len(b) {
		t.Fatal("non-deterministic")
	}
	// Density: roughly 2/(w+1) of positions.
	if len(a) < 30 || len(a) > 200 {
		t.Fatalf("minimizer count %d out of expected density range", len(a))
	}
	// Consecutive minimizers must be within w of each other (window
	// guarantee).
	for i := 1; i < len(a); i++ {
		if a[i].Pos-a[i-1].Pos > 10 {
			t.Fatalf("gap %d > w between consecutive minimizers", a[i].Pos-a[i-1].Pos)
		}
	}
}

// TestSharedSubstringSharesMinimizers: identical windows produce identical
// minimizers, the property seeding relies on.
func TestSharedSubstringSharesMinimizers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	core := randSeq(rng, 300)
	left := append(append([]byte{}, randSeq(rng, 97)...), core...)
	ms1, _ := Compute(core, 15, 10, nil)
	ms2, _ := Compute(left, 15, 10, nil)
	set := map[uint64]bool{}
	for _, m := range ms2 {
		set[m.Hash] = true
	}
	shared := 0
	for _, m := range ms1 {
		if set[m.Hash] {
			shared++
		}
	}
	if float64(shared)/float64(len(ms1)) < 0.8 {
		t.Fatalf("only %d/%d core minimizers found in the superstring", shared, len(ms1))
	}
}

func TestNHandling(t *testing.T) {
	seq := bytes.Repeat([]byte("ACGT"), 20)
	seq[40] = 'N'
	ms, err := Compute(seq, 8, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if m.Pos <= 40 && m.Pos+8 > 40 {
			t.Fatalf("minimizer at %d covers the N", m.Pos)
		}
	}
}

func TestSeqIndexLookup(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ref := randSeq(rng, 2000)
	idx, err := NewSeqIndex(ref, 15, 10)
	if err != nil {
		t.Fatal(err)
	}
	if idx.K() != 15 || idx.W() != 10 {
		t.Fatal("accessors wrong")
	}
	// Each minimizer of a substring should be locatable in the index.
	sub := ref[500:700]
	ms, _ := Compute(sub, 15, 10, nil)
	found := 0
	for _, m := range ms {
		for _, loc := range idx.Lookup(m.Hash) {
			if loc.Pos == 500+m.Pos {
				found++
				break
			}
		}
	}
	if float64(found)/float64(len(ms)) < 0.8 {
		t.Fatalf("only %d/%d substring minimizers located", found, len(ms))
	}
}

func TestGraphIndex(t *testing.T) {
	// Graph: ACGTACGT... split into nodes with a bubble; index must find
	// minimizers crossing node boundaries via the haplotype path.
	rng := rand.New(rand.NewSource(6))
	seq := randSeq(rng, 600)
	g := graph.New()
	var walk []graph.NodeID
	for off := 0; off < len(seq); off += 50 {
		end := off + 50
		if end > len(seq) {
			end = len(seq)
		}
		walk = append(walk, g.AddNode(seq[off:end]))
	}
	if err := g.AddPath("h0", walk); err != nil {
		t.Fatal(err)
	}
	idx, err := NewGraphIndex(g, 15, 10)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Size() == 0 {
		t.Fatal("empty graph index")
	}
	// Every minimizer of the full sequence must be in the index at the
	// right node/offset.
	ms, _ := Compute(seq, 15, 10, nil)
	for _, m := range ms {
		node := m.Pos/50 + 1
		off := m.Pos % 50
		ok := false
		for _, loc := range idx.Lookup(m.Hash) {
			if loc.Node == graph.NodeID(node) && loc.Offset == off {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("minimizer at %d (node %d off %d) missing from graph index", m.Pos, node, off)
		}
	}
}

// TestGraphIndexAddPathIncremental: extending an index path by path is
// identical — same hash set, same ordered locations — to rebuilding it
// from scratch over the final graph, including when later paths revisit
// nodes already indexed (the persisted-dedupe contract MC's incremental
// growth relies on).
func TestGraphIndexAddPathIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := graph.New()
	segment := func(seq []byte) []graph.NodeID {
		var walk []graph.NodeID
		for off := 0; off < len(seq); off += 40 {
			end := off + 40
			if end > len(seq) {
				end = len(seq)
			}
			walk = append(walk, g.AddNode(seq[off:end]))
		}
		return walk
	}
	backbone := segment(randSeq(rng, 1200))
	if err := g.AddPath("h0", backbone); err != nil {
		t.Fatal(err)
	}
	idx, err := NewGraphIndex(g, 15, 10)
	if err != nil {
		t.Fatal(err)
	}

	for hi := 1; hi <= 4; hi++ {
		// Each new haplotype reuses a backbone stretch (duplicate
		// occurrences the dedupe must skip) and adds novel nodes.
		walk := append([]graph.NodeID{}, backbone[hi:hi+10]...)
		walk = append(walk, segment(randSeq(rng, 300))...)
		name := string(rune('a' + hi))
		if err := g.AddPath(name, walk); err != nil {
			t.Fatal(err)
		}
		paths := g.Paths()
		if err := idx.AddPath(g, paths[len(paths)-1]); err != nil {
			t.Fatal(err)
		}

		rebuilt, err := NewGraphIndex(g, 15, 10)
		if err != nil {
			t.Fatal(err)
		}
		gh, wh := idx.Hashes(), rebuilt.Hashes()
		if !reflect.DeepEqual(gh, wh) {
			t.Fatalf("after path %d: %d incremental hashes vs %d rebuilt", hi, len(gh), len(wh))
		}
		for _, h := range wh {
			if !reflect.DeepEqual(idx.Lookup(h), rebuilt.Lookup(h)) {
				t.Fatalf("after path %d: locations for %#x diverge:\nincremental %v\nrebuilt     %v",
					hi, h, idx.Lookup(h), rebuilt.Lookup(h))
			}
		}
	}
}

// TestGraphIndexAddPathValidation: AddPath surfaces Compute's parameter
// errors and indexes an explicitly-passed path exactly once.
func TestGraphIndexAddPathDedupeWithinPath(t *testing.T) {
	g := graph.New()
	rng := rand.New(rand.NewSource(10))
	nd := g.AddNode(randSeq(rng, 200))
	if err := g.AddPath("h0", []graph.NodeID{nd}); err != nil {
		t.Fatal(err)
	}
	idx, err := NewGraphIndex(g, 15, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Re-adding the same path must be a no-op: every occurrence dedupes.
	before := len(idx.Hashes())
	var total int
	for _, h := range idx.Hashes() {
		total += len(idx.Lookup(h))
	}
	if err := idx.AddPath(g, g.Paths()[0]); err != nil {
		t.Fatal(err)
	}
	if len(idx.Hashes()) != before {
		t.Fatal("re-adding a path changed the hash set")
	}
	var after int
	for _, h := range idx.Hashes() {
		after += len(idx.Lookup(h))
	}
	if after != total {
		t.Fatalf("re-adding a path duplicated occurrences: %d → %d", total, after)
	}
}

func TestGraphIndexRequiresPaths(t *testing.T) {
	g := graph.New()
	g.AddNode([]byte("ACGTACGTACGTACGT"))
	if _, err := NewGraphIndex(g, 8, 4); err == nil {
		t.Fatal("graph without paths must be rejected")
	}
}

func TestHashAvalanche(t *testing.T) {
	// Property: hash differs for different k-mers (no trivial collisions
	// among small inputs).
	f := func(a, b uint32) bool {
		if a == b {
			return true
		}
		return hashKmer(uint64(a)) != hashKmer(uint64(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

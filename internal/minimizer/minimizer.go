// Package minimizer implements (w,k)-minimizer seeding, the first stage of
// every mapping pipeline in the paper (Fig. 1.1). Seq2Graph tools use the
// same minimizer computation as Seq2Seq tools but index the graph's
// haplotype paths, which enlarges the index (§2.1).
package minimizer

import (
	"fmt"

	"pangenomicsbench/internal/bio"
	"pangenomicsbench/internal/graph"
	"pangenomicsbench/internal/perf"
)

// Minimizer is one selected k-mer.
type Minimizer struct {
	Pos  int    // start position in the sequence
	Hash uint64 // hashed k-mer value
}

// hashKmer mixes a 2-bit packed k-mer with a 64-bit finalizer
// (splitmix64-style) so minimizer selection is pseudo-random.
func hashKmer(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Compute returns the (w,k)-minimizers of seq: for every window of w
// consecutive k-mers, the one with the smallest hash (leftmost on ties).
// K-mers containing N are skipped.
func Compute(seq []byte, k, w int, probe *perf.Probe) ([]Minimizer, error) {
	if k < 1 || k > 31 || w < 1 {
		return nil, fmt.Errorf("minimizer: invalid parameters k=%d w=%d", k, w)
	}
	n := len(seq)
	if n < k {
		return nil, nil
	}
	// Rolling k-mer encoding.
	hashes := make([]uint64, 0, n-k+1)
	valid := make([]bool, 0, n-k+1)
	var kmer uint64
	mask := (uint64(1) << uint(2*k)) - 1
	badUntil := -1
	for i := 0; i < n; i++ {
		c := bio.Code(seq[i])
		if c == bio.BaseN {
			badUntil = i + k // k-mers covering position i are invalid
		}
		kmer = ((kmer << 2) | uint64(c&3)) & mask
		if i >= k-1 {
			hashes = append(hashes, hashKmer(kmer))
			valid = append(valid, i >= badUntil)
			probe.Op(perf.ScalarInt, 6)
		}
	}
	var out []Minimizer
	lastPos := -1
	for win := 0; win+w <= len(hashes); win++ {
		bestPos, bestHash := -1, ^uint64(0)
		for j := win; j < win+w; j++ {
			probe.Load(uintptr(0x100000)+uintptr(j*8), 8)
			if valid[j] && hashes[j] < bestHash {
				bestPos, bestHash = j, hashes[j]
			}
		}
		probe.Op(perf.ScalarInt, w)
		if bestPos >= 0 && bestPos != lastPos {
			probe.TakeBranch(0x30, true)
			out = append(out, Minimizer{Pos: bestPos, Hash: bestHash})
			lastPos = bestPos
		} else {
			probe.TakeBranch(0x30, false)
		}
	}
	return out, nil
}

// SeqLocation is a minimizer occurrence on a linear reference.
type SeqLocation struct {
	Pos int
}

// SeqIndex is a minimizer index over one linear reference sequence.
type SeqIndex struct {
	k, w int
	hits map[uint64][]SeqLocation
}

// NewSeqIndex indexes ref with (w,k)-minimizers.
func NewSeqIndex(ref []byte, k, w int) (*SeqIndex, error) {
	ms, err := Compute(ref, k, w, nil)
	if err != nil {
		return nil, err
	}
	idx := &SeqIndex{k: k, w: w, hits: make(map[uint64][]SeqLocation)}
	for _, m := range ms {
		idx.hits[m.Hash] = append(idx.hits[m.Hash], SeqLocation{m.Pos})
	}
	return idx, nil
}

// K returns the k-mer size.
func (x *SeqIndex) K() int { return x.k }

// W returns the window size.
func (x *SeqIndex) W() int { return x.w }

// Lookup returns the reference occurrences of a minimizer hash.
func (x *SeqIndex) Lookup(hash uint64) []SeqLocation { return x.hits[hash] }

// GraphLocation is a minimizer occurrence inside a graph node.
type GraphLocation struct {
	Node   graph.NodeID
	Offset int // start offset within the node
}

// GraphIndex is a minimizer index over a pangenome graph. It indexes the
// embedded haplotype paths (so k-mers crossing node boundaries are found,
// and only haplotype-consistent k-mers are stored, as Giraffe does),
// recording each occurrence by its starting node and offset.
type GraphIndex struct {
	k, w int
	hits map[uint64][]GraphLocation
}

// NewGraphIndex indexes g's haplotype paths.
func NewGraphIndex(g *graph.Graph, k, w int) (*GraphIndex, error) {
	if len(g.Paths()) == 0 {
		return nil, fmt.Errorf("minimizer: graph has no paths to index")
	}
	idx := &GraphIndex{k: k, w: w, hits: make(map[uint64][]GraphLocation)}
	type key struct {
		n graph.NodeID
		o int
	}
	dedupe := map[key]map[uint64]bool{}
	for _, p := range g.Paths() {
		seq := g.PathSeq(p)
		ms, err := Compute(seq, k, w, nil)
		if err != nil {
			return nil, err
		}
		// Map path offsets back to (node, offset).
		starts := make([]int, len(p.Nodes))
		off := 0
		for i, id := range p.Nodes {
			starts[i] = off
			off += len(g.Seq(id))
		}
		ni := 0
		for _, m := range ms {
			for ni+1 < len(starts) && starts[ni+1] <= m.Pos {
				ni++
			}
			loc := GraphLocation{Node: p.Nodes[ni], Offset: m.Pos - starts[ni]}
			kk := key{loc.Node, loc.Offset}
			if dedupe[kk] == nil {
				dedupe[kk] = map[uint64]bool{}
			}
			if dedupe[kk][m.Hash] {
				continue
			}
			dedupe[kk][m.Hash] = true
			idx.hits[m.Hash] = append(idx.hits[m.Hash], loc)
		}
	}
	return idx, nil
}

// K returns the k-mer size.
func (x *GraphIndex) K() int { return x.k }

// Lookup returns the graph occurrences of a minimizer hash.
func (x *GraphIndex) Lookup(hash uint64) []GraphLocation { return x.hits[hash] }

// Size returns the number of distinct minimizer hashes stored.
func (x *GraphIndex) Size() int { return len(x.hits) }

// Package minimizer implements (w,k)-minimizer seeding, the first stage of
// every mapping pipeline in the paper (Fig. 1.1). Seq2Graph tools use the
// same minimizer computation as Seq2Seq tools but index the graph's
// haplotype paths, which enlarges the index (§2.1).
package minimizer

import (
	"fmt"
	"sort"

	"pangenomicsbench/internal/bio"
	"pangenomicsbench/internal/graph"
	"pangenomicsbench/internal/perf"
)

// Minimizer is one selected k-mer.
type Minimizer struct {
	Pos  int    // start position in the sequence
	Hash uint64 // hashed k-mer value
}

// hashKmer mixes a 2-bit packed k-mer with a 64-bit finalizer
// (splitmix64-style) so minimizer selection is pseudo-random.
func hashKmer(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Scratch holds the per-read rolling buffers of Compute so the seeding hot
// path reuses them across reads instead of allocating two slices per call
// (the per-read allocation bug the batched mapping path fixes). The zero
// value is ready; buffers grow to the longest read seen and stay.
type Scratch struct {
	hashes []uint64
	valid  []bool
}

// Compute returns the (w,k)-minimizers of seq: for every window of w
// consecutive k-mers, the one with the smallest hash (leftmost on ties).
// K-mers containing N are skipped.
func Compute(seq []byte, k, w int, probe *perf.Probe) ([]Minimizer, error) {
	var s Scratch
	return s.ComputeInto(nil, seq, k, w, probe)
}

// ComputeInto is the allocation-free variant of Compute: minimizers are
// appended to dst (which may be nil or a recycled slice) and the extended
// slice is returned, byte-identical to Compute's output in content and
// order. Steady state performs zero allocations once dst and the scratch
// buffers have grown to the working size.
func (s *Scratch) ComputeInto(dst []Minimizer, seq []byte, k, w int, probe *perf.Probe) ([]Minimizer, error) {
	if k < 1 || k > 31 || w < 1 {
		return dst, fmt.Errorf("minimizer: invalid parameters k=%d w=%d", k, w)
	}
	n := len(seq)
	if n < k {
		return dst, nil
	}
	// Rolling k-mer encoding.
	hashes := s.hashes[:0]
	valid := s.valid[:0]
	var kmer uint64
	mask := (uint64(1) << uint(2*k)) - 1
	badUntil := -1
	for i := 0; i < n; i++ {
		c := bio.Code(seq[i])
		if c == bio.BaseN {
			badUntil = i + k // k-mers covering position i are invalid
		}
		kmer = ((kmer << 2) | uint64(c&3)) & mask
		if i >= k-1 {
			hashes = append(hashes, hashKmer(kmer))
			valid = append(valid, i >= badUntil)
			probe.Op(perf.ScalarInt, 6)
		}
	}
	s.hashes, s.valid = hashes, valid
	out := dst
	lastPos := -1
	for win := 0; win+w <= len(hashes); win++ {
		bestPos, bestHash := -1, ^uint64(0)
		for j := win; j < win+w; j++ {
			probe.Load(uintptr(0x100000)+uintptr(j*8), 8)
			if valid[j] && hashes[j] < bestHash {
				bestPos, bestHash = j, hashes[j]
			}
		}
		probe.Op(perf.ScalarInt, w)
		if bestPos >= 0 && bestPos != lastPos {
			probe.TakeBranch(0x30, true)
			out = append(out, Minimizer{Pos: bestPos, Hash: bestHash})
			lastPos = bestPos
		} else {
			probe.TakeBranch(0x30, false)
		}
	}
	return out, nil
}

// SeqLocation is a minimizer occurrence on a linear reference.
type SeqLocation struct {
	Pos int
}

// SeqIndex is a minimizer index over one linear reference sequence.
type SeqIndex struct {
	k, w int
	hits map[uint64][]SeqLocation
}

// NewSeqIndex indexes ref with (w,k)-minimizers.
func NewSeqIndex(ref []byte, k, w int) (*SeqIndex, error) {
	ms, err := Compute(ref, k, w, nil)
	if err != nil {
		return nil, err
	}
	idx := &SeqIndex{k: k, w: w, hits: make(map[uint64][]SeqLocation)}
	for _, m := range ms {
		idx.hits[m.Hash] = append(idx.hits[m.Hash], SeqLocation{m.Pos})
	}
	return idx, nil
}

// K returns the k-mer size.
func (x *SeqIndex) K() int { return x.k }

// W returns the window size.
func (x *SeqIndex) W() int { return x.w }

// Lookup returns the reference occurrences of a minimizer hash.
func (x *SeqIndex) Lookup(hash uint64) []SeqLocation { return x.hits[hash] }

// GraphLocation is a minimizer occurrence inside a graph node.
type GraphLocation struct {
	Node   graph.NodeID
	Offset int // start offset within the node
}

// GraphIndex is a minimizer index over a pangenome graph. It indexes the
// embedded haplotype paths (so k-mers crossing node boundaries are found,
// and only haplotype-consistent k-mers are stored, as Giraffe does),
// recording each occurrence by its starting node and offset.
//
// The index is append-only per path, like minimap2's per-target index:
// AddPath extends an existing index with one newly embedded haplotype
// without touching what is already stored, and the cross-path occurrence
// dedupe state persists inside the index so an incrementally grown index
// is identical to one rebuilt from scratch over the same paths in the
// same order.
type GraphIndex struct {
	k, w int
	hits map[uint64][]GraphLocation
	// dedupe records every (node, offset, hash) occurrence already stored,
	// so the same physical k-mer reached through several paths is indexed
	// once. Persisting it is what makes AddPath equivalent to a rebuild.
	dedupe map[occKey]struct{}
}

// occKey identifies one stored minimizer occurrence for deduplication.
type occKey struct {
	node graph.NodeID
	off  int
	hash uint64
}

// NewGraphIndex indexes g's haplotype paths.
func NewGraphIndex(g *graph.Graph, k, w int) (*GraphIndex, error) {
	if len(g.Paths()) == 0 {
		return nil, fmt.Errorf("minimizer: graph has no paths to index")
	}
	if k < 1 || k > 31 || w < 1 {
		return nil, fmt.Errorf("minimizer: invalid parameters k=%d w=%d", k, w)
	}
	idx := &GraphIndex{
		k: k, w: w,
		hits:   make(map[uint64][]GraphLocation),
		dedupe: make(map[occKey]struct{}),
	}
	for _, p := range g.Paths() {
		if err := idx.AddPath(g, p); err != nil {
			return nil, err
		}
	}
	return idx, nil
}

// AddPath extends the index with one embedded haplotype path of g,
// indexing only that path's minimizers. Occurrences already stored by
// earlier paths are skipped, so calling AddPath for each path in embedding
// order yields an index identical to NewGraphIndex over the final graph.
// The path's nodes must belong to g and must not be mutated afterwards.
func (x *GraphIndex) AddPath(g *graph.Graph, p graph.Path) error {
	seq := g.PathSeq(p)
	ms, err := Compute(seq, x.k, x.w, nil)
	if err != nil {
		return err
	}
	// Map path offsets back to (node, offset).
	starts := make([]int, len(p.Nodes))
	off := 0
	for i, id := range p.Nodes {
		starts[i] = off
		off += len(g.Seq(id))
	}
	ni := 0
	for _, m := range ms {
		for ni+1 < len(starts) && starts[ni+1] <= m.Pos {
			ni++
		}
		loc := GraphLocation{Node: p.Nodes[ni], Offset: m.Pos - starts[ni]}
		kk := occKey{loc.Node, loc.Offset, m.Hash}
		if _, seen := x.dedupe[kk]; seen {
			continue
		}
		x.dedupe[kk] = struct{}{}
		x.hits[m.Hash] = append(x.hits[m.Hash], loc)
	}
	return nil
}

// K returns the k-mer size.
func (x *GraphIndex) K() int { return x.k }

// W returns the window size.
func (x *GraphIndex) W() int { return x.w }

// Lookup returns the graph occurrences of a minimizer hash.
func (x *GraphIndex) Lookup(hash uint64) []GraphLocation { return x.hits[hash] }

// Size returns the number of distinct minimizer hashes stored.
func (x *GraphIndex) Size() int { return len(x.hits) }

// Hashes returns every stored minimizer hash in ascending order (the
// incremental-vs-rebuild differential tests iterate it).
func (x *GraphIndex) Hashes() []uint64 {
	out := make([]uint64, 0, len(x.hits))
	for h := range x.hits {
		out = append(out, h)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

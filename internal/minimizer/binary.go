package minimizer

import (
	"fmt"
	"sort"

	"pangenomicsbench/internal/binio"
	"pangenomicsbench/internal/graph"
)

// AppendBinary appends the index's flat little-endian encoding to buf.
// Hashes are written ascending; each hash's occurrence list is written in
// stored order, because occurrence order feeds anchor order and therefore
// mapping tie-breaks — the decode must reproduce it exactly. The dedupe set
// is not encoded: it is derivable (one key per stored occurrence) and is
// rebuilt on decode, so an index loaded from disk accepts AddPath exactly
// like the original. Layout:
//
//	u32 k, u32 w
//	u64 hashCount, then per hash: u64 hash, u64 occCount,
//	  per occurrence: u32 node, u32 offset
func (x *GraphIndex) AppendBinary(buf []byte) []byte {
	buf = binio.AppendU32(buf, uint32(x.k))
	buf = binio.AppendU32(buf, uint32(x.w))
	buf = binio.AppendU64(buf, uint64(len(x.hits)))
	for _, h := range x.Hashes() {
		locs := x.hits[h]
		buf = binio.AppendU64(buf, h)
		buf = binio.AppendU64(buf, uint64(len(locs)))
		for _, loc := range locs {
			buf = binio.AppendU32(buf, uint32(loc.Node))
			buf = binio.AppendU32(buf, uint32(loc.Offset))
		}
	}
	return buf
}

// DecodeGraphIndex decodes an AppendBinary payload.
func DecodeGraphIndex(data []byte) (*GraphIndex, error) {
	r := binio.NewReader(data)
	k := int(r.U32())
	w := int(r.U32())
	if r.Err() == nil && (k < 1 || k > 31 || w < 1) {
		return nil, fmt.Errorf("minimizer: decode: invalid parameters k=%d w=%d", k, w)
	}
	nh := r.Count(16)
	x := &GraphIndex{
		k: k, w: w,
		hits:   make(map[uint64][]GraphLocation, nh),
		dedupe: make(map[occKey]struct{}),
	}
	for i := 0; i < nh; i++ {
		h := r.U64()
		no := r.Count(8)
		if r.Err() != nil {
			break
		}
		if _, dup := x.hits[h]; dup {
			return nil, fmt.Errorf("minimizer: decode: duplicate hash %#x", h)
		}
		locs := make([]GraphLocation, no)
		for o := 0; o < no; o++ {
			locs[o] = GraphLocation{Node: graph.NodeID(r.U32()), Offset: int(r.U32())}
			x.dedupe[occKey{locs[o].Node, locs[o].Offset, h}] = struct{}{}
		}
		x.hits[h] = locs
	}
	if r.Err() != nil {
		return nil, fmt.Errorf("minimizer: decode graph index: %w", r.Err())
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("minimizer: decode graph index: %d trailing bytes", r.Remaining())
	}
	return x, nil
}

// AppendBinary appends the linear-reference index's encoding to buf, with
// the same layout discipline as GraphIndex.AppendBinary (sorted hashes,
// stored occurrence order):
//
//	u32 k, u32 w
//	u64 hashCount, then per hash: u64 hash, u64 occCount, u64 positions
func (x *SeqIndex) AppendBinary(buf []byte) []byte {
	buf = binio.AppendU32(buf, uint32(x.k))
	buf = binio.AppendU32(buf, uint32(x.w))
	hashes := make([]uint64, 0, len(x.hits))
	for h := range x.hits {
		hashes = append(hashes, h)
	}
	sort.Slice(hashes, func(a, b int) bool { return hashes[a] < hashes[b] })
	buf = binio.AppendU64(buf, uint64(len(hashes)))
	for _, h := range hashes {
		locs := x.hits[h]
		buf = binio.AppendU64(buf, h)
		buf = binio.AppendU64(buf, uint64(len(locs)))
		for _, loc := range locs {
			buf = binio.AppendU64(buf, uint64(loc.Pos))
		}
	}
	return buf
}

// DecodeSeqIndex decodes a SeqIndex.AppendBinary payload.
func DecodeSeqIndex(data []byte) (*SeqIndex, error) {
	r := binio.NewReader(data)
	k := int(r.U32())
	w := int(r.U32())
	if r.Err() == nil && (k < 1 || k > 31 || w < 1) {
		return nil, fmt.Errorf("minimizer: decode: invalid parameters k=%d w=%d", k, w)
	}
	nh := r.Count(16)
	x := &SeqIndex{k: k, w: w, hits: make(map[uint64][]SeqLocation, nh)}
	for i := 0; i < nh; i++ {
		h := r.U64()
		no := r.Count(8)
		if r.Err() != nil {
			break
		}
		if _, dup := x.hits[h]; dup {
			return nil, fmt.Errorf("minimizer: decode: duplicate hash %#x", h)
		}
		locs := make([]SeqLocation, no)
		for o := 0; o < no; o++ {
			locs[o] = SeqLocation{Pos: int(r.U64())}
		}
		x.hits[h] = locs
	}
	if r.Err() != nil {
		return nil, fmt.Errorf("minimizer: decode seq index: %w", r.Err())
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("minimizer: decode seq index: %d trailing bytes", r.Remaining())
	}
	return x, nil
}

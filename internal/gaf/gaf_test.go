package gaf

import (
	"bytes"
	"strings"
	"testing"

	"pangenomicsbench/internal/graph"
)

func sample() Record {
	return Record{
		QueryName:  "read1",
		QueryLen:   150,
		QueryStart: 0,
		QueryEnd:   150,
		Strand:     '+',
		Path:       []graph.NodeID{3, 7, 9},
		PathLen:    200,
		PathStart:  20,
		PathEnd:    170,
		Matches:    148,
		BlockLen:   150,
		MapQ:       60,
		Cigar:      "148=2X",
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := []Record{sample()}
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), ">3>7>9") {
		t.Fatalf("path not rendered: %q", buf.String())
	}
	if !strings.Contains(buf.String(), "cg:Z:148=2X") {
		t.Fatal("cigar tag missing")
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("records = %d", len(out))
	}
	got := out[0]
	if got.QueryName != "read1" || got.Matches != 148 || got.Cigar != "148=2X" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if len(got.Path) != 3 || got.Path[1] != 7 {
		t.Fatalf("path mismatch: %v", got.Path)
	}
}

func TestWriteRejectsInvalid(t *testing.T) {
	cases := []func(*Record){
		func(r *Record) { r.QueryName = "" },
		func(r *Record) { r.QueryEnd = 200 }, // beyond query length
		func(r *Record) { r.Path = nil },
		func(r *Record) { r.Strand = 'x' },
		func(r *Record) { r.Matches = 1000 }, // > block length
		func(r *Record) { r.MapQ = 300 },
		func(r *Record) { r.PathEnd = 500 },
	}
	for i, mod := range cases {
		r := sample()
		mod(&r)
		var buf bytes.Buffer
		if err := Write(&buf, []Record{r}); err == nil {
			t.Errorf("case %d: invalid record accepted", i)
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"read1\t10\t0\t5", // too few fields
		"read1\tx\t0\t5\t+\t>1\t10\t0\t5\t5\t5\t60",  // bad int
		"read1\t10\t0\t5\t+\t<1\t10\t0\t5\t5\t5\t60", // reverse orientation
		"read1\t10\t0\t5\t+\t\t10\t0\t5\t5\t5\t60",   // empty path
		"read1\t10\t0\t5\t++\t>1\t10\t0\t5\t5\t5\t60",
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("Read(%q) accepted invalid input", in)
		}
	}
}

func TestReadSkipsCommentsAndBlank(t *testing.T) {
	in := "# header\n\nread1\t10\t0\t5\t+\t>1>2\t10\t0\t5\t5\t5\t60\n"
	recs, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
}

package gaf

import (
	"bytes"
	"math/rand"
	"testing"

	"pangenomicsbench/internal/align"
	"pangenomicsbench/internal/bio"
	"pangenomicsbench/internal/graph"
)

func TestFromGraphResult(t *testing.T) {
	// Linear graph spelling a known reference; align an exact read.
	rng := rand.New(rand.NewSource(5))
	ref := make([]byte, 200)
	for i := range ref {
		ref[i] = "ACGT"[rng.Intn(4)]
	}
	g := graph.New()
	var prev graph.NodeID
	for off := 0; off < len(ref); off += 25 {
		id := g.AddNode(ref[off : off+25])
		if prev != 0 {
			g.AddEdge(prev, id)
		}
		prev = id
	}
	read := ref[40:140]
	res, err := align.GSSW(g, read, bio.DefaultScoring, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := FromGraphResult("r1", len(read), g, res)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Matches != len(read) {
		t.Fatalf("matches = %d, want %d (exact read)", rec.Matches, len(read))
	}
	if rec.QueryStart != 0 || rec.QueryEnd != len(read) {
		t.Fatalf("query interval [%d,%d)", rec.QueryStart, rec.QueryEnd)
	}
	// The path slice between PathStart and PathEnd must spell the read.
	var pathSeq []byte
	for _, id := range rec.Path {
		pathSeq = append(pathSeq, g.Seq(id)...)
	}
	if !bytes.Equal(pathSeq[rec.PathStart:rec.PathEnd], read) {
		t.Fatal("GAF path interval does not spell the read")
	}
	// And it must serialize.
	var buf bytes.Buffer
	if err := Write(&buf, []Record{rec}); err != nil {
		t.Fatal(err)
	}
}

func TestFromGraphResultUnaligned(t *testing.T) {
	g := graph.New()
	g.AddNode([]byte("ACGT"))
	if _, err := FromGraphResult("r", 4, g, align.GraphResult{}); err == nil {
		t.Fatal("unaligned result must be rejected")
	}
}

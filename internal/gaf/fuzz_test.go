package gaf

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzRead: any records the parser accepts must each pass Validate and must
// survive a Write/Read round trip byte-for-byte (no silently-altered node
// IDs, intervals, or tags).
func FuzzRead(f *testing.F) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.gaf"))
	if err != nil {
		f.Fatal(err)
	}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte("r\t4\t0\t4\t+\t>1\t4\t0\t4\t4\t4\t0\n"))
	f.Add([]byte("r\t4\t0\t4\t+\t>2147483648\t4\t0\t4\t4\t4\t0\n"))
	f.Add([]byte("r\t4\t0\t4\t+\t>4294967297\t4\t0\t4\t4\t4\t0\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected input: fine, as long as we didn't panic
		}
		for i, r := range recs {
			if err := r.Validate(); err != nil {
				t.Fatalf("accepted record %d fails validation: %v", i, err)
			}
			for _, id := range r.Path {
				if id < 1 {
					t.Fatalf("accepted record %d has invalid node ID %d", i, id)
				}
			}
		}
		var buf bytes.Buffer
		if err := Write(&buf, recs); err != nil {
			t.Fatalf("write of accepted records failed: %v", err)
		}
		back, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parse of written records failed: %v\n%s", err, buf.Bytes())
		}
		if len(recs) > 0 && !reflect.DeepEqual(recs, back) {
			t.Fatalf("round trip altered records:\n got %+v\nwant %+v", back, recs)
		}
	})
}

package gaf

import (
	"fmt"

	"pangenomicsbench/internal/align"
	"pangenomicsbench/internal/bio"
	"pangenomicsbench/internal/graph"
)

// FromGraphResult converts a GSSW-style graph alignment into a GAF record.
// The record's path interval covers the aligned bases along the result's
// node path.
func FromGraphResult(readName string, readLen int, g *graph.Graph, r align.GraphResult) (Record, error) {
	if len(r.Path) == 0 || r.Score <= 0 {
		return Record{}, fmt.Errorf("gaf: unaligned result for %q", readName)
	}
	pathLen := 0
	for _, id := range r.Path {
		pathLen += len(g.Seq(id))
	}
	refSpan := r.Cigar.RefLen()
	qSpan := r.Cigar.QueryLen()
	endInPath := pathLen - (len(g.Seq(r.EndNode)) - r.EndOffset)
	matches := 0
	blockLen := 0
	for _, e := range r.Cigar {
		blockLen += e.Len
		if e.Op == bio.CigarEq {
			matches += e.Len
		}
	}
	rec := Record{
		QueryName:  readName,
		QueryLen:   readLen,
		QueryStart: r.QueryEnd - qSpan,
		QueryEnd:   r.QueryEnd,
		Strand:     '+',
		Path:       r.Path,
		PathLen:    pathLen,
		PathStart:  endInPath - refSpan,
		PathEnd:    endInPath,
		Matches:    matches,
		BlockLen:   blockLen,
		MapQ:       60,
		Cigar:      r.Cigar.String(),
	}
	if err := rec.Validate(); err != nil {
		return Record{}, err
	}
	return rec, nil
}

// Package gaf reads and writes the Graph Alignment Format (GAF), the
// PAF-derived text format the real Seq2Graph tools (GraphAligner, vg
// giraffe, minigraph) emit for graph alignments. A record describes a query
// segment aligned to an oriented node path.
package gaf

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"pangenomicsbench/internal/graph"
)

// Record is one GAF line.
type Record struct {
	QueryName  string
	QueryLen   int
	QueryStart int  // 0-based, inclusive
	QueryEnd   int  // exclusive
	Strand     byte // '+' or '-'
	Path       []graph.NodeID
	PathLen    int // total bases of the path
	PathStart  int
	PathEnd    int
	Matches    int
	BlockLen   int
	MapQ       int
	// Cigar holds the optional cg:Z tag value (SAM-style), empty if absent.
	Cigar string
}

// Validate checks the record's internal consistency.
func (r Record) Validate() error {
	if r.QueryName == "" {
		return fmt.Errorf("gaf: empty query name")
	}
	// Tabs would break the record's field structure; \r\n would be eaten by
	// the line trimming on re-parse. Reject both so Write output always
	// round-trips.
	if strings.ContainsAny(r.QueryName, "\t\r\n") {
		return fmt.Errorf("gaf: query name %q contains control characters", r.QueryName)
	}
	if strings.ContainsAny(r.Cigar, "\t\r\n") {
		return fmt.Errorf("gaf: cigar contains control characters")
	}
	if r.QueryStart < 0 || r.QueryEnd < r.QueryStart || r.QueryEnd > r.QueryLen {
		return fmt.Errorf("gaf: query interval [%d,%d) outside [0,%d)", r.QueryStart, r.QueryEnd, r.QueryLen)
	}
	if len(r.Path) == 0 {
		return fmt.Errorf("gaf: empty path")
	}
	if r.PathStart < 0 || r.PathEnd < r.PathStart || r.PathEnd > r.PathLen {
		return fmt.Errorf("gaf: path interval [%d,%d) outside [0,%d)", r.PathStart, r.PathEnd, r.PathLen)
	}
	if r.Strand != '+' && r.Strand != '-' {
		return fmt.Errorf("gaf: bad strand %q", r.Strand)
	}
	if r.Matches > r.BlockLen {
		return fmt.Errorf("gaf: matches %d exceed block length %d", r.Matches, r.BlockLen)
	}
	if r.MapQ < 0 || r.MapQ > 255 {
		return fmt.Errorf("gaf: mapq %d outside [0,255]", r.MapQ)
	}
	return nil
}

// pathString renders the oriented path, e.g. ">1>5>7".
func (r Record) pathString() string {
	var b strings.Builder
	for _, id := range r.Path {
		fmt.Fprintf(&b, ">%d", id)
	}
	return b.String()
}

// Write emits records as GAF lines.
func Write(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for _, r := range recs {
		if err := r.Validate(); err != nil {
			return err
		}
		fmt.Fprintf(bw, "%s\t%d\t%d\t%d\t%c\t%s\t%d\t%d\t%d\t%d\t%d\t%d",
			r.QueryName, r.QueryLen, r.QueryStart, r.QueryEnd, r.Strand,
			r.pathString(), r.PathLen, r.PathStart, r.PathEnd,
			r.Matches, r.BlockLen, r.MapQ)
		if r.Cigar != "" {
			fmt.Fprintf(bw, "\tcg:Z:%s", r.Cigar)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// Read parses GAF lines.
func Read(rd io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var out []Record
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), "\r\n")
		if text == "" || text[0] == '#' {
			continue
		}
		fields := strings.Split(text, "\t")
		if len(fields) < 12 {
			return nil, fmt.Errorf("gaf: line %d: %d fields, need 12", line, len(fields))
		}
		var r Record
		r.QueryName = fields[0]
		var err error
		if r.QueryLen, err = strconv.Atoi(fields[1]); err != nil {
			return nil, fmt.Errorf("gaf: line %d: bad query length: %w", line, err)
		}
		if r.QueryStart, err = strconv.Atoi(fields[2]); err != nil {
			return nil, fmt.Errorf("gaf: line %d: bad query start: %w", line, err)
		}
		if r.QueryEnd, err = strconv.Atoi(fields[3]); err != nil {
			return nil, fmt.Errorf("gaf: line %d: bad query end: %w", line, err)
		}
		if len(fields[4]) != 1 {
			return nil, fmt.Errorf("gaf: line %d: bad strand %q", line, fields[4])
		}
		r.Strand = fields[4][0]
		if r.Path, err = parsePath(fields[5]); err != nil {
			return nil, fmt.Errorf("gaf: line %d: %w", line, err)
		}
		ints := []*int{&r.PathLen, &r.PathStart, &r.PathEnd, &r.Matches, &r.BlockLen, &r.MapQ}
		for i, p := range ints {
			if *p, err = strconv.Atoi(fields[6+i]); err != nil {
				return nil, fmt.Errorf("gaf: line %d: bad field %d: %w", line, 6+i, err)
			}
		}
		for _, tag := range fields[12:] {
			if strings.HasPrefix(tag, "cg:Z:") {
				r.Cigar = tag[5:]
			}
		}
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("gaf: line %d: %w", line, err)
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parsePath(s string) ([]graph.NodeID, error) {
	if s == "" {
		return nil, fmt.Errorf("empty path")
	}
	var out []graph.NodeID
	i := 0
	for i < len(s) {
		if s[i] != '>' {
			return nil, fmt.Errorf("only forward-oriented paths supported (%q)", s)
		}
		j := i + 1
		for j < len(s) && s[j] != '>' && s[j] != '<' {
			j++
		}
		id, err := strconv.Atoi(s[i+1 : j])
		// NodeID is int32: reject anything outside its range before the
		// conversion below silently wraps (">2147483648" must not become a
		// negative — or worse, a different valid — node).
		if err != nil || id < 1 || id > math.MaxInt32 {
			return nil, fmt.Errorf("bad path step %q", s[i:j])
		}
		out = append(out, graph.NodeID(id))
		i = j
	}
	return out, nil
}

package align

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMyersLongMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for i := 0; i < 80; i++ {
		ref := randSeq(rng, 50+rng.Intn(400))
		// Queries straddling multiples of 64 to exercise block boundaries.
		qlen := []int{1, 63, 64, 65, 127, 128, 129, 200, 300}[i%9]
		if qlen > len(ref) {
			qlen = len(ref)
		}
		start := rng.Intn(len(ref) - qlen + 1)
		query := mutate(rng, ref[start:start+qlen], 0.1)
		want := EditDistanceFull(ref, query)
		got := MyersLong(ref, query, nil)
		if got.Distance != want.Distance {
			t.Fatalf("case %d (qlen %d): MyersLong %d != oracle %d", i, len(query), got.Distance, want.Distance)
		}
	}
}

func TestMyersLongAgreesWithMyers64(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for i := 0; i < 40; i++ {
		ref := randSeq(rng, 30+rng.Intn(200))
		query := mutate(rng, ref[rng.Intn(len(ref)/2):], 0.1)
		if len(query) > 64 {
			query = query[:64]
		}
		short, err := Myers64(ref, query, nil)
		if err != nil {
			t.Fatal(err)
		}
		long := MyersLong(ref, query, nil)
		if short.Distance != long.Distance {
			t.Fatalf("case %d: Myers64 %d != MyersLong %d", i, short.Distance, long.Distance)
		}
	}
}

func TestMyersLongEmpty(t *testing.T) {
	if got := MyersLong([]byte("ACGT"), nil, nil); got.Distance != 0 {
		t.Fatalf("empty query distance %d", got.Distance)
	}
	query := []byte("ACGT")
	if got := MyersLong(nil, query, nil); got.Distance != 4 {
		t.Fatalf("empty ref distance %d", got.Distance)
	}
}

func TestMyersLongProperty(t *testing.T) {
	f := func(s1, s2 int64) bool {
		r1, r2 := rand.New(rand.NewSource(s1)), rand.New(rand.NewSource(s2))
		ref := randSeq(r1, 1+r1.Intn(150))
		query := randSeq(r2, 1+r2.Intn(150))
		return MyersLong(ref, query, nil).Distance == EditDistanceFull(ref, query).Distance
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

package align

import (
	"pangenomicsbench/internal/bio"
	"pangenomicsbench/internal/perf"
)

// WFAEdit computes the global edit distance between a and b with the
// wavefront algorithm (the paper's [17], unit-cost variant): wavefronts of
// furthest-reaching offsets per diagonal, alternating Extend (follow exact
// matches down a diagonal) and Next (grow every diagonal by one error).
// It is the CPU baseline of Fig. 9 (WFA2-lib stand-in) and the algorithmic
// core that GWFA and TSU build on.
func WFAEdit(a, b []byte, probe *perf.Probe) int {
	n, m := len(a), len(b)
	if n == 0 {
		return m
	}
	if m == 0 {
		return n
	}
	ca, cb := bio.Encode2Bit(a), bio.Encode2Bit(b)
	goalK := n - m // diagonal k = i - j
	as := perf.NewAddrSpace()
	wfBase := as.Alloc((n + m + 1) * 4)

	// wavefront[k+offsetBias] = furthest i on diagonal k, -1 if unreached.
	bias := m
	cur := make([]int, n+m+1)
	next := make([]int, n+m+1)
	for i := range cur {
		cur[i] = -1
	}
	lo, hi := 0, 0
	cur[bias] = 0

	extend := func(wf []int, k int) {
		i := wf[k+bias]
		j := i - k
		for i < n && j < m && ca[i] == cb[j] {
			probe.TakeBranch(0x90, true)
			probe.Load(uintptr(wfBase)+uintptr(i), 1)
			i++
			j++
		}
		probe.TakeBranch(0x90, false)
		probe.Op(perf.ScalarInt, 2)
		wf[k+bias] = i
	}

	for s := 0; ; s++ {
		// Extend every live diagonal.
		for k := lo; k <= hi; k++ {
			if cur[k+bias] >= 0 {
				extend(cur, k)
			}
		}
		// Goal: bottom-right corner reached.
		if goalK >= lo && goalK <= hi && cur[goalK+bias] >= n {
			probe.TakeBranch(0x91, true)
			return s
		}
		probe.TakeBranch(0x91, false)

		// Next: grow the wavefront by one error.
		nlo, nhi := lo-1, hi+1
		if nlo < -m {
			nlo = -m
		}
		if nhi > n {
			nhi = n
		}
		for k := nlo; k <= nhi; k++ {
			best := -1
			if k-1 >= lo && k-1 <= hi && cur[k-1+bias] >= 0 {
				best = cur[k-1+bias] + 1 // deletion from k-1
			}
			if k >= lo && k <= hi && cur[k+bias] >= 0 && cur[k+bias]+1 > best {
				best = cur[k+bias] + 1 // mismatch
			}
			if k+1 >= lo && k+1 <= hi && cur[k+1+bias] >= 0 && cur[k+1+bias] > best {
				best = cur[k+1+bias] // insertion from k+1
			}
			if best > n {
				best = n
			}
			if best >= 0 && best-k > m {
				best = m + k
			}
			if best >= 0 && best-k < 0 {
				best = -1 // off the matrix
			}
			next[k+bias] = best
			probe.Op(perf.ScalarInt, 6)
			probe.Store(uintptr(wfBase)+uintptr((k+bias)*4), 4)
		}
		lo, hi = nlo, nhi
		cur, next = next, cur
	}
}

// WFADistanceMatrixCells returns the number of DP cells classic edit-
// distance DP would compute for the same problem — used by the experiments
// to report WFA's cell savings.
func WFADistanceMatrixCells(a, b []byte) int { return (len(a) + 1) * (len(b) + 1) }

package align

import (
	"fmt"

	"pangenomicsbench/internal/bio"
	"pangenomicsbench/internal/perf"
)

// POA is a partial order alignment graph (the paper's [20]/POA kernels used
// by Cactus graph induction and smoothXG polishing). Nodes hold single
// bases; sequences are aligned to the graph with dynamic programming over
// the DAG and merged in, so the graph accumulates a multiple alignment.
// An adaptive band (abPOA-style) restricts each rank's DP columns around
// the best diagonal when Band > 0.
type POA struct {
	nodes []poaNode
	// Band is the adaptive band half-width; 0 or negative disables banding.
	Band int
	// Scoring uses Match / Mismatch and GapOpen as a linear per-base gap
	// penalty (POA here is non-affine, like the seeded variants in
	// smoothXG's default configuration).
	Scoring bio.Scoring

	nseq int

	// scratch holds grow-only DP buffers reused across AddSequence calls so
	// repeated alignments (smoothXG polish windows, MC novel-segment
	// induction) do not reallocate every matrix row each time. A POA is not
	// safe for concurrent AddSequence calls, so plain reuse suffices.
	scratch struct {
		score    []int
		fromNode []int32
		fromJ    []int8
		scoreRow [][]int
		fnRow    [][]int32
		fjRow    [][]int8
	}
}

type poaNode struct {
	base      byte
	out       []int
	in        []int
	outWeight []int // parallel to out: number of sequences using the edge
	alignedTo []int // nodes representing other bases at the same column
	weight    int   // sequences passing through the node
}

// NewPOA returns an empty POA graph with default scoring (match 2,
// mismatch 4, gap 4).
func NewPOA() *POA {
	return &POA{Scoring: bio.Scoring{Match: 2, Mismatch: 4, GapOpen: 4, GapExtend: 4}}
}

// NumNodes returns the node count.
func (p *POA) NumNodes() int { return len(p.nodes) }

// NumSequences returns how many sequences were added.
func (p *POA) NumSequences() int { return p.nseq }

// AddSequence aligns seq to the graph and merges it in. The first sequence
// becomes the backbone.
func (p *POA) AddSequence(seq []byte, probe *perf.Probe) error {
	if len(seq) == 0 {
		return fmt.Errorf("align: POA cannot add an empty sequence")
	}
	if len(p.nodes) == 0 {
		prev := -1
		for _, b := range seq {
			id := p.newNode(b)
			if prev >= 0 {
				p.addEdge(prev, id)
			}
			prev = id
		}
		p.nseq++
		return nil
	}
	ops := p.alignToGraph(seq, probe)
	p.merge(seq, ops)
	p.nseq++
	return nil
}

func (p *POA) newNode(b byte) int {
	p.nodes = append(p.nodes, poaNode{base: b, weight: 1})
	return len(p.nodes) - 1
}

func (p *POA) addEdge(from, to int) {
	n := &p.nodes[from]
	for i, t := range n.out {
		if t == to {
			n.outWeight[i]++
			return
		}
	}
	n.out = append(n.out, to)
	n.outWeight = append(n.outWeight, 1)
	p.nodes[to].in = append(p.nodes[to].in, from)
}

// topoOrder returns node indices in topological order (the graph is a DAG
// by construction).
func (p *POA) topoOrder() []int {
	n := len(p.nodes)
	indeg := make([]int, n)
	for i := range p.nodes {
		for _, t := range p.nodes[i].out {
			indeg[t]++
		}
	}
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]int, 0, n)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, t := range p.nodes[u].out {
			indeg[t]--
			if indeg[t] == 0 {
				queue = append(queue, t)
			}
		}
	}
	return order
}

// dpRows returns the n×w DP matrices as row views over the grow-only
// scratch buffers, allocating only when the graph or query outgrew them.
func (p *POA) dpRows(n, w int) ([][]int, [][]int32, [][]int8) {
	sc := &p.scratch
	if cap(sc.score) < n*w {
		sc.score = make([]int, n*w)
		sc.fromNode = make([]int32, n*w)
		sc.fromJ = make([]int8, n*w)
	}
	if cap(sc.scoreRow) < n {
		sc.scoreRow = make([][]int, n)
		sc.fnRow = make([][]int32, n)
		sc.fjRow = make([][]int8, n)
	}
	score, fromNode, fromJ := sc.scoreRow[:n], sc.fnRow[:n], sc.fjRow[:n]
	for r := 0; r < n; r++ {
		score[r] = sc.score[r*w : (r+1)*w]
		fromNode[r] = sc.fromNode[r*w : (r+1)*w]
		fromJ[r] = sc.fromJ[r*w : (r+1)*w]
	}
	return score, fromNode, fromJ
}

// poaOp is one traceback operation of a sequence-to-POA alignment.
type poaOp struct {
	node int // graph node (-1 for insertions)
	qpos int // query position (-1 for deletions)
}

// alignToGraph runs global DP of seq against the DAG and returns the
// alignment operations in order.
func (p *POA) alignToGraph(seq []byte, probe *perf.Probe) []poaOp {
	const negInf = -(1 << 29)
	order := p.topoOrder()
	rank := make([]int, len(p.nodes))
	for r, id := range order {
		rank[id] = r
	}
	m := len(seq)
	gap := p.Scoring.GapOpen

	// score[r][j]: best alignment of seq[:j] ending at node order[r]
	// (node consumed). Row -1 (virtual start) is gaps only. fromNode is the
	// predecessor rank (-1 = start); fromJ is 0 diag, 1 del (gap in seq),
	// 2 ins. Rows are views over pooled flat buffers.
	score, fromNode, fromJ := p.dpRows(len(order), m+1)

	// Adaptive band bookkeeping.
	lo, hi := 0, m
	for r, id := range order {
		// Banding leaves cells untouched; clear the reused traceback rows so
		// results never depend on a previous call's contents.
		clear(fromNode[r])
		clear(fromJ[r])
		nd := &p.nodes[id]

		if p.Band > 0 {
			center := r * m / max2(len(order), 1)
			lo, hi = center-p.Band, center+p.Band
			if lo < 0 {
				lo = 0
			}
			if hi > m {
				hi = m
			}
		}

		for j := 0; j <= m; j++ {
			score[r][j] = negInf
		}
		for j := lo; j <= hi; j++ {
			best, bn, bj := negInf, int32(-2), int8(0)
			// Predecessor values: virtual start or any in-edge node.
			preds := nd.in
			if len(preds) == 0 {
				if j > 0 {
					d := -(j-1)*gap + p.Scoring.Substitution(nd.base, seq[j-1])
					if d > best {
						best, bn, bj = d, -1, 0
					}
				}
				// Node consumed against a gap, with j query bases also
				// gapped before it.
				if d := -(j + 1) * gap; d > best {
					best, bn, bj = d, -1, 1
				}
			}
			for _, pre := range preds {
				pr := rank[pre]
				if j > 0 {
					d := score[pr][j-1] + p.Scoring.Substitution(nd.base, seq[j-1])
					if d > best {
						best, bn, bj = d, int32(pr), 0
					}
				}
				if v := score[pr][j] - gap; v > best { // delete node base
					best, bn, bj = v, int32(pr), 1
				}
				probe.Op(perf.ScalarInt, 4)
			}
			if j > 0 {
				if v := score[r][j-1] - gap; v > best { // insert query base
					best, bn, bj = v, int32(r), 2
				}
			}
			score[r][j] = best
			fromNode[r][j] = bn
			fromJ[r][j] = bj
			probe.Op(perf.ScalarInt, 3)
		}
		probe.TakeBranch(0xb0, len(nd.in) > 1)
	}

	// Best end: any sink node at j = m (global in the query, free end on
	// the graph among sinks).
	bestR, bestScore := -1, negInf
	for r, id := range order {
		if len(p.nodes[id].out) == 0 && score[r][m] > bestScore {
			bestScore, bestR = score[r][m], r
		}
	}
	if bestR < 0 {
		// All sinks banded out: fall back to the global best at j = m.
		for r := range order {
			if score[r][m] > bestScore {
				bestScore, bestR = score[r][m], r
			}
		}
	}

	// Traceback.
	var rev []poaOp
	r, j := bestR, m
	for r >= 0 {
		bn, bj := fromNode[r][j], fromJ[r][j]
		switch bj {
		case 0: // diagonal: node aligned to seq[j-1]
			rev = append(rev, poaOp{order[r], j - 1})
			// Leading insertions when the path started mid-query.
			if bn == -1 {
				for q := j - 2; q >= 0; q-- {
					rev = append(rev, poaOp{-1, q})
				}
				r, j = -1, 0
				continue
			}
			r, j = int(bn), j-1
		case 1: // node consumed against gap
			rev = append(rev, poaOp{order[r], -1})
			if bn == -1 {
				for q := j - 1; q >= 0; q-- {
					rev = append(rev, poaOp{-1, q})
				}
				r = -1
				continue
			}
			r = int(bn)
		case 2: // query base inserted
			rev = append(rev, poaOp{-1, j - 1})
			j--
		}
	}
	// Reverse into forward order.
	ops := make([]poaOp, len(rev))
	for i := range rev {
		ops[i] = rev[len(rev)-1-i]
	}
	return ops
}

// merge threads the aligned sequence through the graph, fusing matches,
// attaching mismatches as aligned alternatives, and inserting new nodes for
// insertions.
func (p *POA) merge(seq []byte, ops []poaOp) {
	// Ranks of the pre-merge graph guard against creating cycles when
	// reusing aligned-alternative nodes out of topological order.
	rank := make([]int, len(p.nodes))
	for r, id := range p.topoOrder() {
		rank[id] = r
	}
	lastExistingRank := -1
	prev := -1
	link := func(id int) {
		if prev >= 0 && id >= 0 {
			p.addEdge(prev, id)
		}
		if id >= 0 {
			prev = id
			if id < len(rank) {
				lastExistingRank = rank[id]
			}
		}
	}
	for _, op := range ops {
		switch {
		case op.node >= 0 && op.qpos >= 0:
			b := seq[op.qpos]
			nd := &p.nodes[op.node]
			if bio.Code(nd.base) == bio.Code(b) {
				nd.weight++
				link(op.node)
				break
			}
			// Mismatch: reuse an aligned alternative with this base (when
			// topologically safe), or create one.
			target := -1
			for _, alt := range nd.alignedTo {
				if bio.Code(p.nodes[alt].base) == bio.Code(b) &&
					(alt >= len(rank) || rank[alt] > lastExistingRank) {
					target = alt
					break
				}
			}
			if target < 0 {
				target = p.newNode(b)
				// Cross-register the aligned group.
				group := append([]int{op.node}, nd.alignedTo...)
				for _, gmem := range group {
					p.nodes[gmem].alignedTo = append(p.nodes[gmem].alignedTo, target)
					p.nodes[target].alignedTo = append(p.nodes[target].alignedTo, gmem)
				}
			} else {
				p.nodes[target].weight++
			}
			link(target)
		case op.node < 0 && op.qpos >= 0:
			// Insertion: a brand-new node.
			id := p.newNode(seq[op.qpos])
			link(id)
		default:
			// Deletion: the sequence skips this node; nothing to add.
		}
	}
}

// Consensus returns the heaviest path through the graph: dynamic programming
// over topological order maximizing accumulated node and edge weights.
func (p *POA) Consensus() []byte {
	if len(p.nodes) == 0 {
		return nil
	}
	order := p.topoOrder()
	best := make([]int, len(p.nodes))
	next := make([]int, len(p.nodes))
	for i := range next {
		next[i] = -1
	}
	// Walk in reverse topological order.
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		nd := &p.nodes[id]
		best[id] = nd.weight
		bestChild, bestVal := -1, 0
		for ei, t := range nd.out {
			v := best[t] + nd.outWeight[ei]
			if v > bestVal {
				bestVal, bestChild = v, t
			}
		}
		best[id] += bestVal
		next[id] = bestChild
	}
	// Best start among sources.
	start, startVal := -1, -1
	for _, id := range order {
		if len(p.nodes[id].in) == 0 && best[id] > startVal {
			startVal, start = best[id], id
		}
	}
	var out []byte
	for id := start; id >= 0; id = next[id] {
		out = append(out, p.nodes[id].base)
	}
	return out
}

package align

import (
	"pangenomicsbench/internal/bio"
	"pangenomicsbench/internal/perf"
)

// WFAEditAdaptive is the wavefront algorithm with the WFA-adaptive pruning
// heuristic of WFA2-lib: diagonals whose furthest-reaching point lags the
// wavefront's best anti-diagonal by more than cutoff cells are dropped.
// Pruning trades exactness for speed on divergent pairs — the result is an
// upper bound on the true edit distance, exact in practice for cutoffs
// comfortably above the alignment's maximum local divergence.
func WFAEditAdaptive(a, b []byte, cutoff int, probe *perf.Probe) int {
	n, m := len(a), len(b)
	if n == 0 {
		return m
	}
	if m == 0 {
		return n
	}
	if cutoff < 1 {
		cutoff = 1
	}
	ca, cb := bio.Encode2Bit(a), bio.Encode2Bit(b)
	goalK := n - m
	bias := m
	cur := make([]int, n+m+1)
	next := make([]int, n+m+1)
	for i := range cur {
		cur[i] = -1
	}
	lo, hi := 0, 0
	cur[bias] = 0

	for s := 0; ; s++ {
		bestAnti := -1
		for k := lo; k <= hi; k++ {
			if cur[k+bias] < 0 {
				continue
			}
			i := cur[k+bias]
			j := i - k
			for i < n && j < m && ca[i] == cb[j] {
				i++
				j++
			}
			probe.Op(perf.ScalarInt, 2+(i-cur[k+bias]))
			cur[k+bias] = i
			if anti := 2*i - k; anti > bestAnti {
				bestAnti = anti
			}
		}
		if goalK >= lo && goalK <= hi && cur[goalK+bias] >= n {
			return s
		}
		// Adaptive reduction: drop diagonals lagging the best anti-diagonal.
		for k := lo; k <= hi; k++ {
			if cur[k+bias] < 0 {
				continue
			}
			anti := 2*cur[k+bias] - k
			if bestAnti-anti > cutoff {
				probe.TakeBranch(0x92, true)
				cur[k+bias] = -1
			} else {
				probe.TakeBranch(0x92, false)
			}
		}
		for lo <= hi && cur[lo+bias] < 0 {
			lo++
		}
		for hi >= lo && cur[hi+bias] < 0 {
			hi--
		}
		if lo > hi {
			// Everything pruned (pathological cutoff): give the trivial
			// upper bound.
			return n + m
		}

		nlo, nhi := lo-1, hi+1
		if nlo < -m {
			nlo = -m
		}
		if nhi > n {
			nhi = n
		}
		for k := nlo; k <= nhi; k++ {
			best := -1
			if k-1 >= lo && k-1 <= hi && cur[k-1+bias] >= 0 {
				best = cur[k-1+bias] + 1
			}
			if k >= lo && k <= hi && cur[k+bias] >= 0 && cur[k+bias]+1 > best {
				best = cur[k+bias] + 1
			}
			if k+1 >= lo && k+1 <= hi && cur[k+1+bias] >= 0 && cur[k+1+bias] > best {
				best = cur[k+1+bias]
			}
			if best > n {
				best = n
			}
			if best >= 0 && best-k > m {
				best = m + k
			}
			if best >= 0 && best-k < 0 {
				best = -1
			}
			next[k+bias] = best
			probe.Op(perf.ScalarInt, 6)
		}
		lo, hi = nlo, nhi
		cur, next = next, cur
	}
}

package align

import (
	"pangenomicsbench/internal/bio"
	"pangenomicsbench/internal/perf"
)

// WFAAffine computes the global gap-affine alignment penalty between a and
// b with the full wavefront algorithm of Marco-Sola et al. (the paper's
// [17], the algorithm inside WFA2-lib and wfmash): three wavefront families
// (M: match/mismatch, I: insertion, D: deletion) advance by penalty score.
// Penalties follow the usual WFA convention: matches are free, a mismatch
// costs Mismatch, and a gap of length l costs GapOpen + l·GapExtend.
// The returned value is the minimum total penalty.
func WFAAffine(a, b []byte, pen bio.Scoring, probe *perf.Probe) int {
	n, m := len(a), len(b)
	x := pen.Mismatch
	o := pen.GapOpen
	e := pen.GapExtend
	if x < 1 {
		x = 1
	}
	if e < 1 {
		e = 1
	}
	if n == 0 {
		if m == 0 {
			return 0
		}
		return o + m*e
	}
	if m == 0 {
		return o + n*e
	}
	ca, cb := bio.Encode2Bit(a), bio.Encode2Bit(b)

	// Wavefronts indexed by score: wf[s][k] = furthest offset (i on a) on
	// diagonal k = i - j, or -1. Stored sparsely per score because only
	// scores reachable by combinations of x, o+e and e matter.
	type wavefront struct {
		lo, hi int
		m      []int32 // match wavefront offsets (index k - lo)
		i      []int32 // insertion (gap in a → consumes b)
		d      []int32 // deletion (gap in b → consumes a)
	}
	const none = int32(-1)
	newWF := func(lo, hi int) *wavefront {
		w := &wavefront{lo: lo, hi: hi,
			m: make([]int32, hi-lo+1),
			i: make([]int32, hi-lo+1),
			d: make([]int32, hi-lo+1)}
		for idx := range w.m {
			w.m[idx], w.i[idx], w.d[idx] = none, none, none
		}
		return w
	}
	wfs := map[int]*wavefront{}
	get := func(s int) *wavefront {
		if s < 0 {
			return nil
		}
		return wfs[s]
	}
	mAt := func(w *wavefront, k int) int32 {
		if w == nil || k < w.lo || k > w.hi {
			return none
		}
		return w.m[k-w.lo]
	}
	iAt := func(w *wavefront, k int) int32 {
		if w == nil || k < w.lo || k > w.hi {
			return none
		}
		return w.i[k-w.lo]
	}
	dAt := func(w *wavefront, k int) int32 {
		if w == nil || k < w.lo || k > w.hi {
			return none
		}
		return w.d[k-w.lo]
	}

	extend := func(w *wavefront) bool {
		for k := w.lo; k <= w.hi; k++ {
			off := w.m[k-w.lo]
			if off < 0 {
				continue
			}
			i := int(off)
			j := i - k
			for i < n && j < m && ca[i] == cb[j] {
				probe.TakeBranch(0x95, true)
				i++
				j++
			}
			probe.TakeBranch(0x95, false)
			probe.Op(perf.ScalarInt, 3)
			w.m[k-w.lo] = int32(i)
			if i >= n && i-k >= m {
				return true
			}
		}
		return false
	}

	goalK := n - m
	w0 := newWF(0, 0)
	w0.m[0] = 0
	wfs[0] = w0
	if extend(w0) {
		return 0
	}

	maxScore := o + e*(n+m) + x // worst case bound
	for s := 1; s <= maxScore; s++ {
		wx := get(s - x)      // mismatch source
		woe := get(s - o - e) // gap-open source
		we := get(s - e)      // gap-extend source
		if wx == nil && woe == nil && we == nil {
			continue
		}
		lo, hi := 1<<30, -(1 << 30)
		grow := func(w *wavefront) {
			if w == nil {
				return
			}
			if w.lo-1 < lo {
				lo = w.lo - 1
			}
			if w.hi+1 > hi {
				hi = w.hi + 1
			}
		}
		grow(wx)
		grow(woe)
		grow(we)
		if lo < -m {
			lo = -m
		}
		if hi > n {
			hi = n
		}
		if lo > hi {
			continue
		}
		w := newWF(lo, hi)
		for k := lo; k <= hi; k++ {
			// With k = i - j and offsets on i: an insertion consumes b only
			// (j+1, k decreases), so diagonal k's insertion sources sit on
			// k+1 with the offset unchanged; a deletion consumes a only
			// (i+1, k increases), sourcing from k-1 with offset+1.
			ins := maxI32x(mAt(woe, k+1), iAt(we, k+1))
			del := none
			if v := mAt(woe, k-1); v >= 0 {
				del = v + 1
			}
			if v := dAt(we, k-1); v >= 0 && v+1 > del {
				del = v + 1
			}
			mm := none
			if v := mAt(wx, k); v >= 0 {
				mm = v + 1
			}
			best := maxI32x(maxI32x(ins, del), mm)
			// Clip to the matrix.
			if best > int32(n) {
				best = int32(n)
			}
			if best >= 0 && int(best)-k > m {
				best = int32(m + k)
			}
			if best >= 0 && int(best)-k < 0 {
				best, ins, del = none, none, none
			}
			w.i[k-lo] = clipOff(ins, n, m, k)
			w.d[k-lo] = clipOff(del, n, m, k)
			w.m[k-lo] = best
			probe.Op(perf.ScalarInt, 10)
		}
		wfs[s] = w
		if extend(w) {
			return s
		}
		if v := mAt(w, goalK); v >= int32(n) {
			return s
		}
		delete(wfs, s-o-e-x) // drop wavefronts no longer reachable
	}
	return maxScore
}

func maxI32x(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

func clipOff(v int32, n, m, k int) int32 {
	if v < 0 {
		return -1
	}
	if v > int32(n) {
		v = int32(n)
	}
	if int(v)-k > m || int(v)-k < 0 {
		return -1
	}
	return v
}

// AffineGlobalOracle is the O(nm) gap-affine global alignment penalty DP
// (Gotoh, minimizing), the correctness oracle for WFAAffine.
func AffineGlobalOracle(a, b []byte, pen bio.Scoring) int {
	n, m := len(a), len(b)
	const inf = 1 << 29
	x, o, e := pen.Mismatch, pen.GapOpen, pen.GapExtend
	if x < 1 {
		x = 1
	}
	if e < 1 {
		e = 1
	}
	M := make([][]int, n+1)
	I := make([][]int, n+1) // gap in a (consumes b)
	D := make([][]int, n+1) // gap in b (consumes a)
	for i := 0; i <= n; i++ {
		M[i] = make([]int, m+1)
		I[i] = make([]int, m+1)
		D[i] = make([]int, m+1)
		for j := 0; j <= m; j++ {
			M[i][j], I[i][j], D[i][j] = inf, inf, inf
		}
	}
	M[0][0] = 0
	for j := 1; j <= m; j++ {
		I[0][j] = o + j*e
		M[0][j] = I[0][j]
	}
	for i := 1; i <= n; i++ {
		D[i][0] = o + i*e
		M[i][0] = D[i][0]
		for j := 1; j <= m; j++ {
			I[i][j] = min2(M[i][j-1]+o+e, I[i][j-1]+e)
			D[i][j] = min2(M[i-1][j]+o+e, D[i-1][j]+e)
			sub := x
			if bio.Code(a[i-1]) == bio.Code(b[j-1]) && bio.Code(a[i-1]) != bio.BaseN {
				sub = 0
			}
			M[i][j] = min3(M[i-1][j-1]+sub, I[i][j], D[i][j])
		}
	}
	return M[n][m]
}

package align

import (
	"fmt"

	"pangenomicsbench/internal/bio"
	"pangenomicsbench/internal/graph"
	"pangenomicsbench/internal/perf"
)

// nodeMatrices holds one node's full dynamic-programming matrices. GSSW
// keeps H plus both affine gap matrices for every row of every node — the
// paper's §5.2 observation that "affine gap scoring triples the memory
// footprint" and §6.1's "GSSW stores all rows of the dynamic programming
// matrix" are both consequences of this storage.
type nodeMatrices struct {
	rows int // node sequence length
	cols int // query length + 1
	h    []int16
	d    []int16 // gap consuming reference (deletion state)
	ins  []int16 // gap consuming query (insertion state)
	base uint64  // synthetic address of h; d and ins follow
}

func (nm *nodeMatrices) at(m []int16, row, col int) int16 { return m[row*nm.cols+col] }

// GSSWWorkspace holds the reusable storage of one GSSW alignment: a single
// grow-only int16 arena backing every node's H/D/I matrices, a vec arena for
// the striped carry state, and the profile/state buffers. The arena is sized
// in one pass before any matrix is carved (so carved slices never move) and
// the used prefix is zeroed per call (column 0 must stay 0 for traceback).
// Scores, coordinates, and tracebacks are byte-identical to the
// fresh-allocation path.
type GSSWWorkspace struct {
	i16   []int16
	vecs  []vec
	mats  []nodeMatrices
	matp  []*nodeMatrices
	lastH [][]vec
	lastD [][]vec
	dSnap []vec

	hLoad, hStore, e []vec

	pf      Profile
	pfCodes []byte

	as perf.AddrSpace
}

// GSSW aligns query to an acyclic sequence graph with the Graph SIMD
// Smith-Waterman algorithm used by Vg Map (paper §3): nodes are processed
// in topological order; within a node's body rows run striped Smith-
// Waterman; the first row of each node is initialized from the node's
// parents. Striped registers are written back to per-node unstriped DP
// matrices (the "swizzle writes" of case study §6.1).
func GSSW(g *graph.Graph, query []byte, sc bio.Scoring, probe *perf.Probe) (GraphResult, error) {
	return gsswCore(nil, g, query, sc, probe)
}

// Align runs GSSW reusing the workspace's arenas — zero per-node matrix
// allocations once the arenas have grown to the working-set size.
func (ws *GSSWWorkspace) Align(g *graph.Graph, query []byte, sc bio.Scoring, probe *perf.Probe) (GraphResult, error) {
	return gsswCore(ws, g, query, sc, probe)
}

// ensureVecs returns buf with length n (grow-only; contents unspecified).
func ensureVecs(buf []vec, n int) []vec {
	if cap(buf) < n {
		return make([]vec, n)
	}
	return buf[:n]
}

// profileFor returns the striped query profile: freshly allocated without a
// workspace, rebuilt into the workspace's reused vec storage otherwise.
func (ws *GSSWWorkspace) profileFor(query []byte, sc bio.Scoring) *Profile {
	if ws == nil {
		return NewProfile(query, sc)
	}
	m := len(query)
	segLen := (m + Lanes - 1) / Lanes
	if segLen == 0 {
		segLen = 1
	}
	ws.pfCodes = bio.AppendCodes(ws.pfCodes[:0], query)
	p := &ws.pf
	p.query, p.codes, p.segLen, p.bias = query, ws.pfCodes, segLen, int16(sc.Mismatch)
	for code := 0; code < 5; code++ {
		p.vecs[code] = ensureVecs(p.vecs[code], segLen)
		fillProfileCode(p, code, m, sc)
	}
	return p
}

// fillProfileCode writes one base code's striped score vectors (the body of
// NewProfile, shared so both construction paths stay identical).
func fillProfileCode(p *Profile, code, m int, sc bio.Scoring) {
	for seg := 0; seg < p.segLen; seg++ {
		for l := 0; l < Lanes; l++ {
			qpos := l*p.segLen + seg
			score := -int(sc.Mismatch)
			if qpos < m {
				if int(p.codes[qpos]) == code && code != bio.BaseN {
					score = sc.Match
				}
			}
			p.vecs[code][seg][l] = int16(score) + p.bias
		}
	}
}

func gsswCore(ws *GSSWWorkspace, g *graph.Graph, query []byte, sc bio.Scoring, probe *perf.Probe) (GraphResult, error) {
	order, err := g.TopoSort()
	if err != nil {
		return GraphResult{}, fmt.Errorf("align: GSSW requires an acyclic graph: %w", err)
	}
	if len(query) == 0 || g.NumNodes() == 0 {
		return GraphResult{}, nil
	}
	m := len(query)
	pf := ws.profileFor(query, sc)
	segLen := pf.segLen

	var as *perf.AddrSpace
	var st *sswState
	nn := g.NumNodes()
	if ws != nil {
		ws.as.Reset()
		as = &ws.as
		ws.hLoad = ensureVecs(ws.hLoad, segLen)
		ws.hStore = ensureVecs(ws.hStore, segLen)
		ws.e = ensureVecs(ws.e, segLen)
		st = &sswState{pf: pf, sc: sc, probe: probe, hLoad: ws.hLoad, hStore: ws.hStore, e: ws.e}
		bytes := segLen * Lanes * 2
		st.addrH = as.Alloc(2 * bytes)
		st.addrE = as.Alloc(bytes)
		st.addrProfile = as.Alloc(5 * bytes)
	} else {
		as = perf.NewAddrSpace()
		st = newSSWState(pf, sc, probe, as)
	}

	gapO := int16(sc.GapOpen)
	gapE := int16(sc.GapExtend)

	// Matrix storage. With a workspace, one pass sizes the int16 and vec
	// arenas up front — carving after any growth would leave earlier slices
	// aliased to a stale backing array.
	var mats []*nodeMatrices
	var lastH, lastD [][]vec
	var dSnap []vec
	if ws != nil {
		totI16 := 0
		for _, id := range order {
			totI16 += len(g.Seq(id)) * (m + 1) * 3
		}
		ws.i16 = ensureI16(ws.i16, totI16)
		for i := range ws.i16 {
			ws.i16[i] = 0
		}
		ws.vecs = ensureVecs(ws.vecs, (2*nn+1)*segLen)
		if cap(ws.mats) < len(order) {
			ws.mats = make([]nodeMatrices, len(order))
		}
		ws.mats = ws.mats[:len(order)]
		ws.matp = ensureMatp(ws.matp, nn+1)
		ws.lastH = ensureVecSlices(ws.lastH, nn+1)
		ws.lastD = ensureVecSlices(ws.lastD, nn+1)
		mats, lastH, lastD = ws.matp, ws.lastH, ws.lastD
		dSnap = ws.vecs[2*nn*segLen : (2*nn+1)*segLen]
	} else {
		mats = make([]*nodeMatrices, nn+1)
		lastH = make([][]vec, nn+1)
		lastD = make([][]vec, nn+1)
		dSnap = make([]vec, segLen)
	}

	best := GraphResult{}
	var bestNode graph.NodeID
	var bestRow, bestCol int

	i16Off, vecOff := 0, 0
	for oi, id := range order {
		seq := g.Seq(id)
		var nm *nodeMatrices
		size := len(seq) * (m + 1)
		if ws != nil {
			nm = &ws.mats[oi]
			*nm = nodeMatrices{rows: len(seq), cols: m + 1}
			nm.h = ws.i16[i16Off : i16Off+size]
			nm.d = ws.i16[i16Off+size : i16Off+2*size]
			nm.ins = ws.i16[i16Off+2*size : i16Off+3*size]
			i16Off += 3 * size
		} else {
			nm = &nodeMatrices{rows: len(seq), cols: m + 1}
			nm.h = make([]int16, size)
			nm.d = make([]int16, size)
			nm.ins = make([]int16, size)
		}
		nm.base = as.Alloc(size * 2 * 3)
		mats[id] = nm

		// Node initialization: merge parents' last-row striped state. This
		// is the "indirect graph access" phase that alternates with the
		// dense SIMD region (paper §3, GSSW).
		parents := g.In(id)
		for seg := 0; seg < segLen; seg++ {
			var h, d vec
			for pi, p := range parents {
				ph, pd := lastH[p], lastD[p]
				probe.Load(uintptr(mats[p].base), Lanes*2)
				probe.Load(uintptr(mats[p].base)+uintptr(size), Lanes*2)
				if pi == 0 {
					h, d = ph[seg], pd[seg]
				} else {
					h.maxWith(&ph[seg])
					d.maxWith(&pd[seg])
				}
				probe.Op(perf.Vector, 2)
			}
			st.hLoad[seg] = h
			st.e[seg] = d
		}
		probe.Op(perf.ScalarInt, len(parents)+1)
		probe.TakeBranch(0x60, len(parents) > 0)

		for row := 0; row < nm.rows; row++ {
			// d[row] is the deletion state entering this row (st.e holds the
			// next row's state after column() runs).
			copy(dSnap, st.e)
			var colMax vec
			st.column(bio.Code(seq[row]), &colMax)
			// Swizzle write-back: each striped register scatters its lanes
			// across the unstriped row at stride segLen (§6.1).
			hRow := nm.h[row*nm.cols:]
			dRow := nm.d[row*nm.cols:]
			for seg := 0; seg < segLen; seg++ {
				hv, dv := &st.hLoad[seg], &dSnap[seg]
				for l := 0; l < Lanes; l++ {
					q := l*segLen + seg
					if q >= m {
						continue
					}
					hRow[q+1] = hv[l]
					dRow[q+1] = dv[l]
					probe.Store(uintptr(nm.base)+uintptr((row*nm.cols+q+1)*2), 2)
					probe.Store(uintptr(nm.base)+uintptr(size*2+(row*nm.cols+q+1)*2), 2)
				}
			}
			// Recover the insertion state scalar (left-to-right within row).
			insRow := nm.ins[row*nm.cols:]
			run := int16(0)
			for j := 1; j <= m; j++ {
				open := hRow[j-1] - gapO
				ext := run - gapE
				if open > ext {
					run = open
				} else {
					run = ext
				}
				if run < 0 {
					run = 0
				}
				insRow[j] = run
			}
			probe.Op(perf.ScalarInt, 2*m)

			// Track the best cell.
			if hm := int(colMax.horizontalMax()); hm > best.Score {
				probe.TakeBranch(0x61, true)
				best.Score = hm
				bestNode = id
				bestRow = row
				bestCol = stripedArgmaxRow(hRow, m)
			} else {
				probe.TakeBranch(0x61, false)
			}
		}

		// Stash the node's final striped state for children.
		if ws != nil {
			lh := ws.vecs[vecOff : vecOff+segLen]
			ld := ws.vecs[vecOff+segLen : vecOff+2*segLen]
			vecOff += 2 * segLen
			copy(lh, st.hLoad)
			copy(ld, st.e)
			lastH[id], lastD[id] = lh, ld
		} else {
			lastH[id] = append([]vec(nil), st.hLoad...)
			lastD[id] = append([]vec(nil), st.e...)
		}
		// column() swaps hLoad/hStore each call; re-anchor the workspace's
		// view so the next Align starts from the same buffers.
		if ws != nil {
			ws.hLoad, ws.hStore = st.hLoad, st.hStore
		}
	}

	if best.Score == 0 {
		return GraphResult{}, nil
	}
	best.EndNode = bestNode
	best.EndOffset = bestRow + 1
	best.QueryEnd = bestCol
	best.Path, best.Cigar = gsswTraceback(g, query, sc, mats, bestNode, bestRow, bestCol)
	return best, nil
}

func ensureI16(buf []int16, n int) []int16 {
	if cap(buf) < n {
		return make([]int16, n)
	}
	return buf[:n]
}

func ensureMatp(buf []*nodeMatrices, n int) []*nodeMatrices {
	if cap(buf) < n {
		return make([]*nodeMatrices, n)
	}
	return buf[:n]
}

func ensureVecSlices(buf [][]vec, n int) [][]vec {
	if cap(buf) < n {
		return make([][]vec, n)
	}
	return buf[:n]
}

func stripedArgmaxRow(hRow []int16, m int) int {
	bestV, bestJ := int16(-1), 0
	for j := 1; j <= m; j++ {
		if hRow[j] > bestV {
			bestV, bestJ = hRow[j], j
		}
	}
	return bestJ
}

// gsswTraceback walks the stored per-node matrices from the best cell back
// to a zero cell, crossing node boundaries through parents. Because a node's
// first row is initialized from the element-wise maximum over its parents'
// last rows, the effective "previous row" at row 0 is that merged row, and
// for every traceback state some parent attains the merged value exactly.
func gsswTraceback(g *graph.Graph, query []byte, sc bio.Scoring, mats []*nodeMatrices, node graph.NodeID, row, col int) ([]graph.NodeID, bio.Cigar) {
	var c bio.Cigar
	path := []graph.NodeID{node}
	state := byte('H')
	gapO, gapE := int16(sc.GapOpen), int16(sc.GapExtend)

	// prevCell returns the merged value of matrix sel ('H' or 'D') in the
	// virtual row above (node,0) at column j, plus the parent attaining it.
	prevCell := func(n graph.NodeID, sel byte, j int) (int16, graph.NodeID) {
		var best int16
		var who graph.NodeID
		for _, p := range g.In(n) {
			pm := mats[p]
			if pm.rows == 0 {
				continue
			}
			var v int16
			if sel == 'H' {
				v = pm.at(pm.h, pm.rows-1, j)
			} else {
				v = pm.at(pm.d, pm.rows-1, j)
			}
			if who == 0 || v > best {
				best, who = v, p
			}
		}
		return best, who
	}

	for col > 0 {
		nm := mats[node]
		switch state {
		case 'H':
			h := nm.at(nm.h, row, col)
			if h == 0 {
				return reversePath(path), c.Reverse()
			}
			refBase := g.Seq(node)[row]
			sub := int16(sc.Substitution(refBase, query[col-1]))
			op := bio.CigarX
			if bio.Code(refBase) == bio.Code(query[col-1]) && bio.Code(refBase) != bio.BaseN {
				op = bio.CigarEq
			}
			// Value of the diagonal predecessor (merged at node boundaries).
			var diag int16
			var diagParent graph.NodeID
			if row > 0 {
				diag = nm.at(nm.h, row-1, col-1)
			} else {
				diag, diagParent = prevCell(node, 'H', col-1)
			}
			switch {
			case h == diag+sub:
				c = c.Append(op, 1)
				col--
				if row > 0 {
					row--
				} else {
					if diag == 0 || diagParent == 0 {
						return reversePath(path), c.Reverse() // local start
					}
					node, row = diagParent, mats[diagParent].rows-1
					path = append(path, node)
				}
			case h == sub && diag <= 0:
				c = c.Append(op, 1)
				return reversePath(path), c.Reverse()
			case h == nm.at(nm.ins, row, col):
				state = 'I'
			case h == nm.at(nm.d, row, col):
				state = 'D'
			default:
				// Defensive: no predecessor matched (saturation corner);
				// end the local alignment here.
				return reversePath(path), c.Reverse()
			}
		case 'I':
			v := nm.at(nm.ins, row, col)
			c = c.Append(bio.CigarIns, 1)
			if v == nm.at(nm.h, row, col-1)-gapO {
				state = 'H'
			}
			col--
		case 'D':
			v := nm.at(nm.d, row, col)
			c = c.Append(bio.CigarDel, 1)
			if row > 0 {
				if v == nm.at(nm.h, row-1, col)-gapO {
					state = 'H'
				}
				row--
			} else {
				ph, hp := prevCell(node, 'H', col)
				pd, dp := prevCell(node, 'D', col)
				switch {
				case hp != 0 && v == ph-gapO:
					state = 'H'
					node, row = hp, mats[hp].rows-1
					path = append(path, node)
				case dp != 0 && v == pd-gapE:
					node, row = dp, mats[dp].rows-1
					path = append(path, node)
				default:
					return reversePath(path), c.Reverse()
				}
			}
		}
	}
	return reversePath(path), c.Reverse()
}

func reversePath(p []graph.NodeID) []graph.NodeID {
	for i, j := 0, len(p)-1; i < j; i, j = i+1, j-1 {
		p[i], p[j] = p[j], p[i]
	}
	return p
}

package align

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pangenomicsbench/internal/bio"
)

var affinePen = bio.Scoring{Match: 0, Mismatch: 4, GapOpen: 6, GapExtend: 2}

func TestWFAAffineKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"ACGT", "ACGT", 0},
		{"ACGT", "ACCT", 4},        // one mismatch
		{"ACGT", "ACG", 8},         // one-base gap: open 6 + extend 2
		{"ACGT", "AC", 10},         // two-base gap: 6 + 2·2
		{"AAAA", "TTTT", 16},       // four mismatches
		{"ACGTACGT", "ACGACGT", 8}, // internal deletion
		{"A", "T", 4},
	}
	for _, c := range cases {
		if got := WFAAffine([]byte(c.a), []byte(c.b), affinePen, nil); got != c.want {
			t.Errorf("WFAAffine(%s, %s) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestWFAAffineEmpty(t *testing.T) {
	if got := WFAAffine(nil, nil, affinePen, nil); got != 0 {
		t.Fatalf("empty/empty = %d", got)
	}
	if got := WFAAffine(nil, []byte("ACG"), affinePen, nil); got != 6+3*2 {
		t.Fatalf("empty/ACG = %d", got)
	}
	if got := WFAAffine([]byte("ACG"), nil, affinePen, nil); got != 6+3*2 {
		t.Fatalf("ACG/empty = %d", got)
	}
}

func TestWFAAffineMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 100; i++ {
		a := randSeq(rng, 1+rng.Intn(120))
		b := mutate(rng, a, 0.12)
		want := AffineGlobalOracle(a, b, affinePen)
		if got := WFAAffine(a, b, affinePen, nil); got != want {
			t.Fatalf("case %d: WFAAffine %d != oracle %d (a=%s b=%s)", i, got, want, a, b)
		}
	}
}

func TestWFAAffineRandomProperty(t *testing.T) {
	f := func(s1, s2 int64) bool {
		r1, r2 := rand.New(rand.NewSource(s1)), rand.New(rand.NewSource(s2))
		a, b := randSeq(r1, 1+r1.Intn(40)), randSeq(r2, 1+r2.Intn(40))
		return WFAAffine(a, b, affinePen, nil) == AffineGlobalOracle(a, b, affinePen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestWFAAffineDifferentPenalties(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	pens := []bio.Scoring{
		{Match: 0, Mismatch: 1, GapOpen: 1, GapExtend: 1},
		{Match: 0, Mismatch: 2, GapOpen: 0, GapExtend: 1}, // zero open
		{Match: 0, Mismatch: 5, GapOpen: 10, GapExtend: 1},
	}
	for _, pen := range pens {
		for i := 0; i < 25; i++ {
			a := randSeq(rng, 1+rng.Intn(60))
			b := mutate(rng, a, 0.15)
			want := AffineGlobalOracle(a, b, pen)
			if got := WFAAffine(a, b, pen, nil); got != want {
				t.Fatalf("pen %+v: WFAAffine %d != oracle %d (a=%s b=%s)", pen, got, want, a, b)
			}
		}
	}
}

func TestGSSWLeanMatchesGSSWScore(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	sc := bio.DefaultScoring
	for i := 0; i < 60; i++ {
		g := randomSmallDAG(rng)
		paths := allPathSeqs(g)
		query := mutate(rng, paths[rng.Intn(len(paths))], 0.1)
		if len(query) > 64 {
			query = query[:64]
		}
		full, err := GSSW(g, query, sc, nil)
		if err != nil {
			t.Fatal(err)
		}
		lean, err := GSSWLean(g, query, sc, nil)
		if err != nil {
			t.Fatal(err)
		}
		if lean.Score != full.Score {
			t.Fatalf("case %d: lean score %d != full %d", i, lean.Score, full.Score)
		}
	}
}

func TestGSSWLeanRejectsCycles(t *testing.T) {
	g := linearGraph([]byte("ACGT"), 2)
	g.AddEdge(2, 1)
	if _, err := GSSWLean(g, []byte("AC"), bio.DefaultScoring, nil); err == nil {
		t.Fatal("cycle must be rejected")
	}
}

// TestGSSWLeanFewerStores is the §6.1 optimization claim: dropping the
// intra-node write-back removes most memory stores.
func TestGSSWLeanFewerStores(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	g := linearGraph(randSeq(rng, 400), 30)
	query := randSeq(rng, 100)
	sc := bio.DefaultScoring

	fullProbe := newCountingProbe()
	if _, err := GSSW(g, query, sc, fullProbe); err != nil {
		t.Fatal(err)
	}
	leanProbe := newCountingProbe()
	if _, err := GSSWLean(g, query, sc, leanProbe); err != nil {
		t.Fatal(err)
	}
	if leanProbe.Stores*4 > fullProbe.Stores {
		t.Fatalf("lean stores %d should be ≪ full stores %d", leanProbe.Stores, fullProbe.Stores)
	}
}

package align

import (
	"fmt"

	"pangenomicsbench/internal/bio"
	"pangenomicsbench/internal/graph"
	"pangenomicsbench/internal/perf"
)

// GSSWLean is the optimization case study §6.1 proposes: within a node the
// DP rows have linear dependencies, so they need not be written back to the
// full matrix — only each node's boundary (last-row) state must be kept for
// its children. This variant therefore skips the swizzle write-back of
// every intra-node row, eliminating the memory stalls the paper measured
// (≈3× those of SSW), at the cost of returning score and end position only
// (no traceback).
func GSSWLean(g *graph.Graph, query []byte, sc bio.Scoring, probe *perf.Probe) (GraphResult, error) {
	order, err := g.TopoSort()
	if err != nil {
		return GraphResult{}, fmt.Errorf("align: GSSWLean requires an acyclic graph: %w", err)
	}
	if len(query) == 0 || g.NumNodes() == 0 {
		return GraphResult{}, nil
	}
	pf := NewProfile(query, sc)
	segLen := pf.segLen
	as := perf.NewAddrSpace()
	st := newSSWState(pf, sc, probe, as)

	// Boundary states only: one striped (H, D) pair per node.
	lastH := make([][]vec, g.NumNodes()+1)
	lastD := make([][]vec, g.NumNodes()+1)
	boundaryBase := as.Alloc((g.NumNodes() + 1) * segLen * Lanes * 4)

	best := GraphResult{}
	for _, id := range order {
		seq := g.Seq(id)
		parents := g.In(id)
		for seg := 0; seg < segLen; seg++ {
			var h, d vec
			for pi, p := range parents {
				probe.Load(uintptr(boundaryBase)+uintptr((int(p)*segLen+seg)*Lanes*4), Lanes*4)
				if pi == 0 {
					h, d = lastH[p][seg], lastD[p][seg]
				} else {
					h.maxWith(&lastH[p][seg])
					d.maxWith(&lastD[p][seg])
				}
				probe.Op(perf.Vector, 2)
			}
			st.hLoad[seg] = h
			st.e[seg] = d
		}
		probe.TakeBranch(0x64, len(parents) > 0)

		for row := 0; row < len(seq); row++ {
			var colMax vec
			st.column(bio.Code(seq[row]), &colMax)
			// No write-back: the striped registers simply roll forward.
			if hm := int(colMax.horizontalMax()); hm > best.Score {
				probe.TakeBranch(0x65, true)
				best.Score = hm
				best.EndNode = id
				best.EndOffset = row + 1
			} else {
				probe.TakeBranch(0x65, false)
			}
		}
		lastH[id] = append([]vec(nil), st.hLoad...)
		lastD[id] = append([]vec(nil), st.e...)
		probe.Store(uintptr(boundaryBase)+uintptr(int(id)*segLen*Lanes*4), segLen*Lanes*4)
	}
	return best, nil
}

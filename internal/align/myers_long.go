package align

import (
	"pangenomicsbench/internal/bio"
	"pangenomicsbench/internal/perf"
)

// MyersLong is the unrestricted-length variant of Myers's bit-parallel
// algorithm (blocked 64-bit words with carry propagation, as in Myers's
// original unrestricted algorithm and edlib): semi-global edit distance of
// a query of any length against ref, matches free to start anywhere on the
// reference. GraphAligner's production code uses the single-word kernel on
// 64 bp slices (the GBV path); this blocked form covers whole long reads in
// one pass and serves as a cross-check.
func MyersLong(ref, query []byte, probe *perf.Probe) EditResult {
	m := len(query)
	if m == 0 {
		return EditResult{Distance: 0}
	}
	nBlocks := (m + 63) / 64
	// Per-block Peq masks.
	peq := make([][5]uint64, nBlocks)
	for j, b := range query {
		c := bio.Code(b)
		if c != bio.BaseN {
			peq[j/64][c] |= 1 << uint(j%64)
		}
	}
	// Per-block top-bit masks (the last block may be partial).
	top := make([]uint64, nBlocks)
	for b := 0; b < nBlocks; b++ {
		bits := 64
		if b == nBlocks-1 {
			bits = m - 64*b
		}
		top[b] = 1 << uint(bits-1)
	}

	pv := make([]uint64, nBlocks)
	mv := make([]uint64, nBlocks)
	for b := range pv {
		pv[b] = ^uint64(0)
	}
	score := m
	best := EditResult{Distance: score, EndRef: 0}

	for i, rb := range ref {
		c := bio.Code(rb)
		hin := 0 // search variant: top boundary delta is 0
		for b := 0; b < nBlocks; b++ {
			eq := peq[b][c]
			xv := eq | mv[b]
			if hin < 0 {
				eq |= 1
			}
			xh := (((eq & pv[b]) + pv[b]) ^ pv[b]) | eq
			ph := mv[b] | ^(xh | pv[b])
			mh := pv[b] & xh
			hout := 0
			if ph&top[b] != 0 {
				hout = 1
			} else if mh&top[b] != 0 {
				hout = -1
			}
			ph <<= 1
			mh <<= 1
			if hin == 1 {
				ph |= 1
			} else if hin == -1 {
				mh |= 1
			}
			pv[b] = mh | ^(xv | ph)
			mv[b] = ph & xv
			hin = hout
			probe.Op(perf.ScalarInt, 14)
		}
		score += hin
		probe.TakeBranch(0x71, hin < 0)
		if score < best.Distance {
			best = EditResult{Distance: score, EndRef: i + 1}
		}
	}
	return best
}

// Package align implements every dynamic-programming alignment kernel in
// PangenomicsBench: the Seq2Seq baselines (striped Smith-Waterman, Myers's
// bitvector, the wavefront algorithm) and their Seq2Graph extensions (GSSW,
// GBV, GWFA), plus partial order alignment (POA) for the graph-building
// pipelines. Reference DP oracles used by the tests and as correctness
// baselines live in oracle.go.
package align

import (
	"pangenomicsbench/internal/bio"
	"pangenomicsbench/internal/graph"
)

// Result is a local-alignment outcome on a linear reference.
type Result struct {
	Score    int
	RefEnd   int // exclusive end on the reference
	QueryEnd int // exclusive end on the query
	RefBegin int
	QueryBeg int
	Cigar    bio.Cigar
}

// GraphResult is a local-alignment outcome on a graph reference.
type GraphResult struct {
	Score     int
	Path      []graph.NodeID // nodes visited, in order
	EndNode   graph.NodeID
	EndOffset int // exclusive end offset within EndNode
	QueryEnd  int
	Cigar     bio.Cigar
}

// EditResult is an edit-distance outcome (GBV, WFA, GWFA).
type EditResult struct {
	Distance int
	EndNode  graph.NodeID // graph kernels only
	EndRef   int          // linear kernels: exclusive end on the reference; GWFAAt: exclusive end offset within EndNode
}

package align

import (
	"container/heap"

	"pangenomicsbench/internal/bio"
	"pangenomicsbench/internal/graph"
)

// SmithWaterman is the plain O(nm) affine-gap local aligner (Gotoh). It is
// the correctness oracle for SSW and GSSW and the conceptual ancestor of
// both (paper §3, "Graph SIMD Smith-Waterman").
func SmithWaterman(ref, query []byte, sc bio.Scoring) Result {
	n, m := len(ref), len(query)
	const negInf = -(1 << 29)
	H := make([][]int, n+1)
	E := make([][]int, n+1) // gap consuming query (horizontal)
	F := make([][]int, n+1) // gap consuming reference (vertical)
	for i := 0; i <= n; i++ {
		H[i] = make([]int, m+1)
		E[i] = make([]int, m+1)
		F[i] = make([]int, m+1)
		for j := 0; j <= m; j++ {
			E[i][j], F[i][j] = negInf, negInf
		}
	}
	best := Result{}
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			E[i][j] = max2(H[i][j-1]-sc.GapOpen, E[i][j-1]-sc.GapExtend)
			F[i][j] = max2(H[i-1][j]-sc.GapOpen, F[i-1][j]-sc.GapExtend)
			h := H[i-1][j-1] + sc.Substitution(ref[i-1], query[j-1])
			h = max2(h, E[i][j])
			h = max2(h, F[i][j])
			if h < 0 {
				h = 0
			}
			H[i][j] = h
			if h > best.Score {
				best = Result{Score: h, RefEnd: i, QueryEnd: j}
			}
		}
	}
	if best.Score == 0 {
		return best
	}
	best.Cigar, best.RefBegin, best.QueryBeg = traceback(H, E, F, ref, query, sc, best.RefEnd, best.QueryEnd)
	return best
}

// traceback walks an affine H/E/F matrix set from (i,j) back to a zero cell.
func traceback(H, E, F [][]int, ref, query []byte, sc bio.Scoring, i, j int) (bio.Cigar, int, int) {
	var c bio.Cigar
	state := 'H'
	for i > 0 && j > 0 {
		switch state {
		case 'H':
			h := H[i][j]
			if h == 0 {
				i, j = -i, -j // sentinel exit below
			} else if h == H[i-1][j-1]+sc.Substitution(ref[i-1], query[j-1]) {
				if bio.Code(ref[i-1]) == bio.Code(query[j-1]) && bio.Code(ref[i-1]) != bio.BaseN {
					c = c.Append(bio.CigarEq, 1)
				} else {
					c = c.Append(bio.CigarX, 1)
				}
				i, j = i-1, j-1
			} else if h == E[i][j] {
				state = 'E'
			} else {
				state = 'F'
			}
		case 'E':
			c = c.Append(bio.CigarIns, 1)
			if E[i][j] == H[i][j-1]-sc.GapOpen {
				state = 'H'
			}
			j--
		case 'F':
			c = c.Append(bio.CigarDel, 1)
			if F[i][j] == H[i-1][j]-sc.GapOpen {
				state = 'H'
			}
			i--
		}
		if i < 0 {
			i, j = -i, -j
			break
		}
	}
	return c.Reverse(), i, j
}

// EditDistanceFull computes the unit-cost semi-global edit distance DP
// (free start anywhere on the reference — row 0 is zero) and returns the
// minimum distance of aligning the whole query, with the best reference end.
// Oracle for Myers's bitvector.
func EditDistanceFull(ref, query []byte) EditResult {
	n, m := len(ref), len(query)
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = j
	}
	best := EditResult{Distance: prev[m], EndRef: 0}
	for i := 1; i <= n; i++ {
		cur[0] = 0 // free start on reference
		for j := 1; j <= m; j++ {
			cost := 1
			if bio.Code(ref[i-1]) == bio.Code(query[j-1]) && bio.Code(ref[i-1]) != bio.BaseN {
				cost = 0
			}
			cur[j] = min3(prev[j-1]+cost, prev[j]+1, cur[j-1]+1)
		}
		if cur[m] < best.Distance {
			best = EditResult{Distance: cur[m], EndRef: i}
		}
		prev, cur = cur, prev
	}
	return best
}

// GlobalEditDistance is the classic global (Levenshtein) DP, used as the
// oracle for WFA.
func GlobalEditDistance(a, b []byte) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if bio.Code(a[i-1]) == bio.Code(b[j-1]) && bio.Code(a[i-1]) != bio.BaseN {
				cost = 0
			}
			cur[j] = min3(prev[j-1]+cost, prev[j]+1, cur[j-1]+1)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// GraphEditDistance computes the minimum semi-global edit distance of query
// against graph g — the alignment may start at any position of any node and
// end anywhere, but must consume the whole query. It runs Dijkstra over the
// alignment graph of states (node, offset, queryPos), which is correct even
// on cyclic graphs, and serves as the oracle for GBV.
func GraphEditDistance(g *graph.Graph, query []byte) EditResult {
	var seeds []gstate
	for id := 1; id <= g.NumNodes(); id++ {
		for off := 0; off <= len(g.Seq(graph.NodeID(id))); off++ {
			seeds = append(seeds, gstate{graph.NodeID(id), int32(off), 0})
		}
	}
	return graphEdit(g, query, seeds)
}

// GraphEditDistanceFrom is the fixed-start variant: the alignment must begin
// at offset 0 of node start and consume the whole query, ending anywhere.
// Oracle for GWFA.
func GraphEditDistanceFrom(g *graph.Graph, start graph.NodeID, query []byte) EditResult {
	return graphEdit(g, query, []gstate{{start, 0, 0}})
}

type gstate struct {
	node graph.NodeID
	off  int32 // offset into node sequence (0..len)
	q    int32 // query position consumed (0..m)
}

func graphEdit(g *graph.Graph, query []byte, seeds []gstate) EditResult {
	type state = gstate
	m := int32(len(query))
	dist := make(map[state]int)
	pq := &stateHeap{}
	push := func(s state, d int) {
		if old, ok := dist[s]; ok && old <= d {
			return
		}
		dist[s] = d
		heap.Push(pq, stateItem{s.node, s.off, s.q, d})
	}
	for _, s := range seeds {
		push(s, 0)
	}
	best := EditResult{Distance: int(m)} // aligning against nothing
	for pq.Len() > 0 {
		it := heap.Pop(pq).(stateItem)
		s := state{it.node, it.off, it.q}
		if d, ok := dist[s]; !ok || it.d > d {
			continue
		}
		if s.q == m {
			if it.d < best.Distance {
				best = EditResult{Distance: it.d, EndNode: s.node}
			}
			continue
		}
		if it.d >= best.Distance {
			continue
		}
		seq := g.Seq(s.node)
		if int(s.off) < len(seq) {
			// Match / mismatch and deletion within the node.
			cost := 1
			if bio.Code(seq[s.off]) == bio.Code(query[s.q]) && bio.Code(seq[s.off]) != bio.BaseN {
				cost = 0
			}
			push(state{s.node, s.off + 1, s.q + 1}, it.d+cost)
			push(state{s.node, s.off + 1, s.q}, it.d+1) // deletion (skip ref base)
		} else {
			// At node end: hop to children at offset 0 for free.
			for _, c := range g.Out(s.node) {
				push(state{c, 0, s.q}, it.d)
			}
		}
		// Insertion (consume query only).
		push(state{s.node, s.off, s.q + 1}, it.d+1)
	}
	return best
}

type stateItem struct {
	node graph.NodeID
	off  int32
	q    int32
	d    int
}

type stateHeap []stateItem

func (h stateHeap) Len() int            { return len(h) }
func (h stateHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h stateHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *stateHeap) Push(x interface{}) { *h = append(*h, x.(stateItem)) }
func (h *stateHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func min3(a, b, c int) int { return min2(min2(a, b), c) }

package align

import (
	"math/rand"
	"reflect"
	"testing"

	"pangenomicsbench/internal/bio"
	"pangenomicsbench/internal/graph"
)

// TestMyersLaneGroupMatchesSerial: every lane of a lockstep run must equal
// the serial Myers64 result, for unequal-length references and queries at
// every batch size 1..MaxLanes.
func TestMyersLaneGroupMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	var g MyersLaneGroup
	for iter := 0; iter < 50; iter++ {
		n := 1 + rng.Intn(MaxLanes)
		refs := make([][]byte, n)
		queries := make([][]byte, n)
		g.Reset()
		for l := 0; l < n; l++ {
			refs[l] = randSeq(rng, rng.Intn(300)) // may be empty
			queries[l] = randSeq(rng, 1+rng.Intn(MaxMyersQuery))
			if _, err := g.Add(refs[l], queries[l]); err != nil {
				t.Fatal(err)
			}
		}
		g.Run(nil)
		for l := 0; l < n; l++ {
			want, err := Myers64(refs[l], queries[l], nil)
			if err != nil {
				t.Fatal(err)
			}
			if got := g.Result(l); got != want {
				t.Fatalf("iter %d lane %d/%d: batched %+v != serial %+v", iter, l, n, got, want)
			}
		}
	}
}

// TestWFALaneGroupMatchesSerial: lockstep wavefronts must retire with the
// exact WFAEdit distance per lane.
func TestWFALaneGroupMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var g WFALaneGroup
	for iter := 0; iter < 30; iter++ {
		n := 1 + rng.Intn(MaxLanes)
		as := make([][]byte, n)
		bs := make([][]byte, n)
		g.Reset()
		for l := 0; l < n; l++ {
			as[l] = randSeq(rng, rng.Intn(120))
			if rng.Intn(2) == 0 {
				bs[l] = mutate(rng, as[l], 0.1)
			} else {
				bs[l] = randSeq(rng, rng.Intn(120))
			}
			g.Add(as[l], bs[l])
		}
		g.Run(nil)
		for l := 0; l < n; l++ {
			want := WFAEdit(as[l], bs[l], nil)
			if got := g.Distance(l); got != want {
				t.Fatalf("iter %d lane %d/%d: batched %d != serial %d (|a|=%d |b|=%d)",
					iter, l, n, got, want, len(as[l]), len(bs[l]))
			}
		}
	}
}

// TestGBVLaneGroupMatchesSerial: each lane's interleaved relaxation must
// reproduce the serial GBV result (distance AND end node — pop order is
// part of the contract) against independently random graphs.
func TestGBVLaneGroupMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	var lg GBVLaneGroup
	for iter := 0; iter < 25; iter++ {
		n := 1 + rng.Intn(MaxLanes)
		graphs := make([]*graph.Graph, n)
		queries := make([][]byte, n)
		lg.Reset()
		for l := 0; l < n; l++ {
			graphs[l] = randomGraph(rng, true)
			queries[l] = randSeq(rng, 1+rng.Intn(MaxMyersQuery))
			lg.Add(graphs[l], queries[l], nil)
		}
		lg.Run()
		for l := 0; l < n; l++ {
			if err := lg.Err(l); err != nil {
				t.Fatal(err)
			}
			want, err := GBV(graphs[l], queries[l], nil)
			if err != nil {
				t.Fatal(err)
			}
			if got := lg.Result(l); got != want {
				t.Fatalf("iter %d lane %d/%d: batched %+v != serial %+v", iter, l, n, got, want)
			}
		}
	}
}

// TestGBVWorkspaceReusedMatchesFresh: a workspace reused across differently
// sized problems (stale scratch contents) must still match a fresh run
// exactly, including the EndNode tie-break fixed by heap pop order.
func TestGBVWorkspaceReusedMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	var ws GBVWorkspace
	for iter := 0; iter < 60; iter++ {
		g := randomGraph(rng, true)
		q := randSeq(rng, 1+rng.Intn(MaxMyersQuery))
		got, err := ws.Align(g, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := GBV(g, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("iter %d: reused workspace %+v != fresh %+v", iter, got, want)
		}
	}
}

// TestGWFAWorkspaceReusedMatchesFresh: distances from a reused wavefront
// workspace must equal the fresh-map path. (EndNode may legitimately differ
// on exact ties — map iteration order — so only Distance is contractual;
// the mapping pipelines consume only Distance.)
func TestGWFAWorkspaceReusedMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	var ws GWFAWorkspace
	for iter := 0; iter < 60; iter++ {
		g := randomGraph(rng, true)
		q := randSeq(rng, rng.Intn(80))
		got, err := ws.Align(g, 1, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := GWFAAt(g, 1, 0, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got.Distance != want.Distance {
			t.Fatalf("iter %d: reused workspace distance %d != fresh %d", iter, got.Distance, want.Distance)
		}
	}
}

// TestGSSWWorkspaceReusedMatchesFresh: the arena-backed GSSW must reproduce
// the fresh-allocation result bit for bit — score, coordinates, path, and
// cigar — across reuse with varying graph and query sizes (stale arena
// contents must never leak into column 0 or the traceback).
func TestGSSWWorkspaceReusedMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	var ws GSSWWorkspace
	for iter := 0; iter < 60; iter++ {
		g := randomSmallDAG(rng)
		q := randSeq(rng, 1+rng.Intn(60))
		got, err := ws.Align(g, q, bio.DefaultScoring, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := GSSW(g, q, bio.DefaultScoring, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("iter %d: reused workspace %+v != fresh %+v", iter, got, want)
		}
	}
}

// TestBatchedKernelAllocs pins the zero-allocation contract of the batched
// kernels (the acceptance target: 0 allocs/op steady state on batched Myers
// and WFA) and the near-zero contract of the reusable graph-kernel
// workspaces, in the style of poa_alloc_test.go.
func TestBatchedKernelAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	refs := make([][]byte, MaxLanes)
	queries := make([][]byte, MaxLanes)
	for l := range refs {
		refs[l] = randSeq(rng, 100+rng.Intn(100))
		queries[l] = randSeq(rng, 1+rng.Intn(MaxMyersQuery))
	}

	t.Run("myers-lanes", func(t *testing.T) {
		var g MyersLaneGroup
		warmAndPin(t, 0, func() {
			g.Reset()
			for l := range refs {
				if _, err := g.Add(refs[l], queries[l]); err != nil {
					t.Fatal(err)
				}
			}
			g.Run(nil)
		})
	})

	t.Run("wfa-lanes", func(t *testing.T) {
		var g WFALaneGroup
		warmAndPin(t, 0, func() {
			g.Reset()
			for l := range refs {
				g.Add(refs[l], queries[l])
			}
			g.Run(nil)
		})
	})

	t.Run("gbv-workspace", func(t *testing.T) {
		gr := randomGraph(rng, true)
		q := randSeq(rng, MaxMyersQuery)
		var ws GBVWorkspace
		warmAndPin(t, 0, func() {
			if _, err := ws.Align(gr, q, nil); err != nil {
				t.Fatal(err)
			}
		})
	})

	t.Run("gwfa-workspace", func(t *testing.T) {
		gr := randomGraph(rng, true)
		q := randSeq(rng, 60)
		var ws GWFAWorkspace
		// The recursive extend closure and its captures escape per call; the
		// per-wavefront maps and slices must not. A handful of fixed-size
		// closure allocations is the steady-state floor.
		warmAndPin(t, 8, func() {
			if _, err := ws.Align(gr, 1, q, nil); err != nil {
				t.Fatal(err)
			}
		})
	})

	t.Run("gssw-workspace", func(t *testing.T) {
		gr := randomSmallDAG(rng)
		q := randSeq(rng, 40)
		var ws GSSWWorkspace
		// TopoSort and the traceback path/cigar still allocate per call;
		// the DP matrices (the §5.2 triple footprint) must not.
		warmAndPin(t, 16, func() {
			if _, err := ws.Align(gr, q, bio.DefaultScoring, nil); err != nil {
				t.Fatal(err)
			}
		})
	})
}

// warmAndPin warms fn once, then asserts its steady-state allocations stay
// at or below limit.
func warmAndPin(t *testing.T, limit float64, fn func()) {
	t.Helper()
	fn()
	if avg := testing.AllocsPerRun(10, fn); avg > limit {
		t.Errorf("steady-state allocs/op = %.1f, want <= %.0f", avg, limit)
	}
}

// FuzzMyersLaneBoundaries fuzzes the lane-packing boundaries: unequal-length
// references and queries carved from raw fuzz bytes must produce per-lane
// results identical to the serial kernel, whatever the length mix.
func FuzzMyersLaneBoundaries(f *testing.F) {
	f.Add([]byte("ACGTACGTACGTACGTAAAACCCCGGGGTTTT"), uint8(3))
	f.Add([]byte("A"), uint8(1))
	f.Add([]byte("ACGTNNNNACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT"), uint8(16))
	f.Fuzz(func(t *testing.T, data []byte, lanes uint8) {
		n := int(lanes%MaxLanes) + 1
		if len(data) == 0 {
			return
		}
		var g MyersLaneGroup
		refs := make([][]byte, 0, n)
		queries := make([][]byte, 0, n)
		// Carve unequal (ref, query) pairs from the fuzz payload: lane l's
		// query length cycles 1..64, its ref takes a varying remainder slice.
		for l := 0; l < n; l++ {
			qLen := (l*7+len(data))%MaxMyersQuery + 1
			if qLen > len(data) {
				qLen = len(data)
			}
			q := data[:qLen]
			ref := data[len(data)*l/n:]
			if _, err := g.Add(ref, q); err != nil {
				t.Fatal(err) // qLen is always in [1,64]
			}
			refs = append(refs, ref)
			queries = append(queries, q)
		}
		g.Run(nil)
		for l := 0; l < len(refs); l++ {
			want, err := Myers64(refs[l], queries[l], nil)
			if err != nil {
				t.Fatal(err)
			}
			if got := g.Result(l); got != want {
				t.Fatalf("lane %d/%d: batched %+v != serial %+v (|ref|=%d |q|=%d)",
					l, n, got, want, len(refs[l]), len(queries[l]))
			}
		}
	})
}

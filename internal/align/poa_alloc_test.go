package align

import (
	"math/rand"
	"reflect"
	"testing"
)

// poaTestSeqs returns a backbone and n variants with scattered substitutions,
// deterministic for a fixed seed.
func poaTestSeqs(n, length int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	bases := []byte("ACGT")
	backbone := make([]byte, length)
	for i := range backbone {
		backbone[i] = bases[rng.Intn(4)]
	}
	out := [][]byte{backbone}
	for v := 1; v < n; v++ {
		variant := append([]byte(nil), backbone...)
		for m := 0; m < length/50+1; m++ {
			variant[rng.Intn(length)] = bases[rng.Intn(4)]
		}
		out = append(out, variant)
	}
	return out
}

// TestPOAAddSequenceAllocs pins the effect of the DP-row pooling: once the
// scratch buffers are warm, aligning another sequence must not allocate per
// graph rank. Before pooling this was 3 row allocations per rank (≈900 for
// this graph); pooled, only the small per-call slices (topo order, rank,
// traceback) remain.
func TestPOAAddSequenceAllocs(t *testing.T) {
	seqs := poaTestSeqs(3, 300, 1)
	p := NewPOA()
	for _, s := range seqs {
		if err := p.AddSequence(s, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Re-adding the backbone aligns as all-matches: the graph stops growing,
	// so steady-state allocations are observable.
	avg := testing.AllocsPerRun(10, func() {
		if err := p.AddSequence(seqs[0], nil); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 32 {
		t.Errorf("AddSequence allocated %.0f times per run with warm scratch; want <= 32 (pre-pooling: >= 3 per rank = %d+)",
			avg, 3*p.NumNodes())
	}
}

// TestPOADPIndependentOfScratchContents guards against stale-scratch bugs:
// alignToGraph over poisoned pooled buffers must return exactly the ops a
// clean run produces, banded (where cells outside the band are never
// written) and unbanded.
func TestPOADPIndependentOfScratchContents(t *testing.T) {
	for _, band := range []int{0, 8} {
		seqs := poaTestSeqs(4, 200, 2)
		p := NewPOA()
		p.Band = band
		for _, s := range seqs {
			if err := p.AddSequence(s, nil); err != nil {
				t.Fatal(err)
			}
		}
		query := append([]byte(nil), seqs[1]...)
		clean := p.alignToGraph(query, nil)
		for i := range p.scratch.score {
			p.scratch.score[i] = 0x3b3b3b
		}
		for i := range p.scratch.fromNode {
			p.scratch.fromNode[i] = 12345
		}
		for i := range p.scratch.fromJ {
			p.scratch.fromJ[i] = 2
		}
		dirty := p.alignToGraph(query, nil)
		if !reflect.DeepEqual(clean, dirty) {
			t.Fatalf("band %d: alignment depends on stale scratch contents", band)
		}
	}
}

// BenchmarkPOAAddSequence measures building a small multiple alignment; run
// with -benchmem to see the allocation effect of the pooled DP rows.
func BenchmarkPOAAddSequence(b *testing.B) {
	seqs := poaTestSeqs(8, 250, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := NewPOA()
		for _, s := range seqs {
			if err := p.AddSequence(s, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkPOAAddSequenceWarm isolates the steady-state cost pooling targets:
// one more sequence into an already-built graph with warm scratch buffers.
func BenchmarkPOAAddSequenceWarm(b *testing.B) {
	seqs := poaTestSeqs(4, 250, 4)
	p := NewPOA()
	for _, s := range seqs {
		if err := p.AddSequence(s, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.AddSequence(seqs[0], nil); err != nil {
			b.Fatal(err)
		}
	}
}

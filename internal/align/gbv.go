package align

import (
	"pangenomicsbench/internal/bio"
	"pangenomicsbench/internal/graph"
	"pangenomicsbench/internal/perf"
)

// GBV is the Graph Myers's Bitvector kernel from GraphAligner (paper §3):
// bit-parallel semi-global edit distance of a query chunk (≤64 bp) against a
// possibly cyclic sequence graph. Each node's column states are computed
// with Myers steps; a node's entry state is the element-wise minimum over
// its parents' exit states ("merge operations between parent cells",
// Fig. 4b). Because the graph may be cyclic, a node whose parents improve is
// pushed on a priority queue and recomputed until all scores stabilize —
// the source of the kernel's unpredictable branching (§5.2).
func GBV(g *graph.Graph, query []byte, probe *perf.Probe) (EditResult, error) {
	var ws GBVWorkspace
	return ws.Align(g, query, probe)
}

// GBVWorkspace holds the fixpoint state of one GBV alignment: the priority
// queue, per-node entry/exit profiles, and the synthetic address space. All
// buffers are grow-only, so a reused workspace aligns with zero steady-state
// allocations, and the relaxation is exposed one queue pop at a time (Start
// then Step) so a lane group can interleave several independent alignments
// in lockstep. Results are byte-identical to a fresh-allocation run: the
// manual heap replicates container/heap's sift order exactly, and the
// address space resets to the same base every Start.
type GBVWorkspace struct {
	g     *graph.Graph
	probe *perf.Probe
	eq    Peq
	m     int

	fresh, scratch, merged []int
	inBuf                  []int // (n+1) entry profiles of m+1 ints each
	inSet                  []bool
	out                    []myersState
	hasOut                 []bool
	inQueue                []bool
	pq                     []gbvItem

	as          perf.AddrSpace
	stateBase   uint64
	stateStride uintptr

	best  EditResult
	steps int
	done  bool
}

// ensureInts returns buf with length n (grow-only, contents unspecified).
func ensureInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

func ensureBools(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = false
	}
	return buf
}

// Start primes the workspace for one alignment of query against g. The
// relaxation then runs via Step (or all at once via Align).
func (ws *GBVWorkspace) Start(g *graph.Graph, query []byte, probe *perf.Probe) error {
	eq, err := NewPeq(query)
	if err != nil {
		return err
	}
	m := len(query)
	n := g.NumNodes()
	ws.g, ws.probe, ws.eq, ws.m = g, probe, eq, m
	ws.steps = 0
	if n == 0 {
		ws.best = EditResult{Distance: m}
		ws.done = true
		return nil
	}
	ws.done = false

	ws.as.Reset()
	ws.stateBase = ws.as.Alloc(n * (m + 1) * 8)
	ws.stateStride = uintptr((m + 1) * 8)

	// fresh is the free-start profile D[j] = j.
	ws.fresh = ensureInts(ws.fresh, m+1)
	for j := range ws.fresh {
		ws.fresh[j] = j
	}
	ws.scratch = ensureInts(ws.scratch, m+1)
	ws.merged = ensureInts(ws.merged, m+1)
	ws.inBuf = ensureInts(ws.inBuf, (n+1)*(m+1))
	ws.inSet = ensureBools(ws.inSet, n+1)
	if cap(ws.out) < n+1 {
		ws.out = make([]myersState, n+1)
	}
	ws.out = ws.out[:n+1]
	ws.hasOut = ensureBools(ws.hasOut, n+1)
	ws.inQueue = ensureBools(ws.inQueue, n+1)

	ws.pq = ws.pq[:0]
	for id := 1; id <= n; id++ {
		gbvHeapPush(&ws.pq, gbvItem{graph.NodeID(id), m})
		ws.inQueue[id] = true
	}
	ws.best = EditResult{Distance: m}
	return nil
}

// Step processes one priority-queue pop (one node relaxation), returning
// false once the fixpoint is reached. One pop is the lockstep unit the GBV
// lane group interleaves across lanes.
func (ws *GBVWorkspace) Step() bool {
	if ws.done || len(ws.pq) == 0 {
		ws.done = true
		return false
	}
	g, probe, m := ws.g, ws.probe, ws.m
	it := gbvHeapPop(&ws.pq)
	id := it.node
	ws.inQueue[id] = false
	ws.steps++
	probe.Op(perf.ScalarInt, 6) // heap pop bookkeeping
	probe.Frontend(4)           // data-dependent dispatch on queue order

	// Merge the entry profile: fresh start ∪ parents' exits.
	copy(ws.merged, ws.fresh)
	for _, p := range g.In(id) {
		if !ws.hasOut[p] {
			probe.TakeBranch(0x80, false)
			continue
		}
		probe.TakeBranch(0x80, true)
		probe.Load(uintptr(ws.stateBase)+uintptr(p-1)*ws.stateStride, (m+1)*8)
		prof := ws.out[p].profile(m, ws.scratch)
		for j := 0; j <= m; j++ {
			if prof[j] < ws.merged[j] {
				probe.TakeBranch(0x81, true)
				ws.merged[j] = prof[j]
			} else {
				probe.TakeBranch(0x81, false)
			}
		}
		probe.Op(perf.ScalarInt, m+1)
	}

	in := ws.inBuf[int(id)*(m+1) : int(id+1)*(m+1)]
	if ws.inSet[id] && equalProfile(in, ws.merged) {
		probe.TakeBranch(0x82, false)
		return len(ws.pq) > 0 // entry unchanged: exit unchanged
	}
	probe.TakeBranch(0x82, true)
	ws.inSet[id] = true
	copy(in, ws.merged)

	// Step the column through the node's bases.
	st := fromProfile(ws.merged)
	seq := g.Seq(id)
	for i, b := range seq {
		st.step(ws.eq[bio.Code(b)], m, probe)
		// Row state read-modify-write: each row's bitvectors live in
		// the per-node state block.
		rowAddr := uintptr(ws.stateBase) + uintptr(id-1)*ws.stateStride + uintptr((i*16)%int(ws.stateStride))
		probe.Load(rowAddr, 16)
		probe.Store(rowAddr, 16)
		if st.score < ws.best.Distance {
			probe.TakeBranch(0x83, true)
			ws.best = EditResult{Distance: st.score, EndNode: id}
		} else {
			probe.TakeBranch(0x83, false)
		}
	}

	changed := !ws.hasOut[id] || st != ws.out[id]
	probe.TakeBranch(0x84, changed)
	if !changed {
		return len(ws.pq) > 0
	}
	ws.out[id] = st
	ws.hasOut[id] = true
	probe.Store(uintptr(ws.stateBase)+uintptr(id-1)*ws.stateStride, (m+1)*8)

	for _, c := range g.Out(id) {
		if !ws.inQueue[c] {
			gbvHeapPush(&ws.pq, gbvItem{c, st.score})
			ws.inQueue[c] = true
			probe.Op(perf.ScalarInt, 8)
		}
	}
	return len(ws.pq) > 0
}

// Done reports whether the relaxation has reached its fixpoint.
func (ws *GBVWorkspace) Done() bool { return ws.done || len(ws.pq) == 0 }

// Steps returns the number of queue pops processed since Start — the lane
// group's utilization accounting unit.
func (ws *GBVWorkspace) Steps() int { return ws.steps }

// Result returns the alignment outcome once Done.
func (ws *GBVWorkspace) Result() EditResult {
	best := ws.best
	// The empty-alignment answer for zero-length nodes is already m.
	if best.Distance == ws.m {
		best.EndNode = 0
	}
	return best
}

// Align runs one full alignment in the workspace: Start, Step to fixpoint,
// Result. Zero steady-state allocations once the buffers have grown.
func (ws *GBVWorkspace) Align(g *graph.Graph, query []byte, probe *perf.Probe) (EditResult, error) {
	if err := ws.Start(g, query, probe); err != nil {
		return EditResult{}, err
	}
	for ws.Step() {
	}
	return ws.Result(), nil
}

func equalProfile(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

type gbvItem struct {
	node graph.NodeID
	prio int
}

// The manual heap below replicates container/heap's exact sift algorithm
// (up on push; swap-root-to-end + down on pop) so pop order — and therefore
// GBV's EndNode on equal-score ties — is byte-identical to the historical
// container/heap implementation, without the interface boxing allocation
// per push.

func gbvLess(a, b gbvItem) bool { return a.prio < b.prio }

func gbvHeapPush(h *[]gbvItem, it gbvItem) {
	*h = append(*h, it)
	s := *h
	j := len(s) - 1
	for {
		i := (j - 1) / 2 // parent
		if i == j || !gbvLess(s[j], s[i]) {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
}

func gbvHeapPop(h *[]gbvItem) gbvItem {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	gbvHeapDown(s[:n], 0)
	it := s[n]
	*h = s[:n]
	return it
}

func gbvHeapDown(s []gbvItem, i int) {
	n := len(s)
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && gbvLess(s[j2], s[j1]) {
			j = j2
		}
		if !gbvLess(s[j], s[i]) {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
}

package align

import (
	"container/heap"

	"pangenomicsbench/internal/bio"
	"pangenomicsbench/internal/graph"
	"pangenomicsbench/internal/perf"
)

// GBV is the Graph Myers's Bitvector kernel from GraphAligner (paper §3):
// bit-parallel semi-global edit distance of a query chunk (≤64 bp) against a
// possibly cyclic sequence graph. Each node's column states are computed
// with Myers steps; a node's entry state is the element-wise minimum over
// its parents' exit states ("merge operations between parent cells",
// Fig. 4b). Because the graph may be cyclic, a node whose parents improve is
// pushed on a priority queue and recomputed until all scores stabilize —
// the source of the kernel's unpredictable branching (§5.2).
func GBV(g *graph.Graph, query []byte, probe *perf.Probe) (EditResult, error) {
	if _, err := NewPeq(query); err != nil {
		return EditResult{}, err
	}
	eq, _ := NewPeq(query)
	m := len(query)
	n := g.NumNodes()
	if n == 0 {
		return EditResult{Distance: m}, nil
	}

	as := perf.NewAddrSpace()
	stateBase := as.Alloc(n * (m + 1) * 8)
	stateStride := uintptr((m + 1) * 8)

	// fresh is the free-start profile D[j] = j.
	fresh := make([]int, m+1)
	for j := range fresh {
		fresh[j] = j
	}

	in := make([][]int, n+1)       // cached merged entry profiles
	out := make([]myersState, n+1) // exit states
	hasOut := make([]bool, n+1)
	inQueue := make([]bool, n+1)

	pq := &gbvHeap{}
	for id := 1; id <= n; id++ {
		heap.Push(pq, gbvItem{graph.NodeID(id), m})
		inQueue[id] = true
	}

	best := EditResult{Distance: m}
	scratch := make([]int, m+1)
	merged := make([]int, m+1)

	for pq.Len() > 0 {
		it := heap.Pop(pq).(gbvItem)
		id := it.node
		inQueue[id] = false
		probe.Op(perf.ScalarInt, 6) // heap pop bookkeeping
		probe.Frontend(4)           // data-dependent dispatch on queue order

		// Merge the entry profile: fresh start ∪ parents' exits.
		copy(merged, fresh)
		for _, p := range g.In(id) {
			if !hasOut[p] {
				probe.TakeBranch(0x80, false)
				continue
			}
			probe.TakeBranch(0x80, true)
			probe.Load(uintptr(stateBase)+uintptr(p-1)*stateStride, (m+1)*8)
			prof := out[p].profile(m, scratch)
			for j := 0; j <= m; j++ {
				if prof[j] < merged[j] {
					probe.TakeBranch(0x81, true)
					merged[j] = prof[j]
				} else {
					probe.TakeBranch(0x81, false)
				}
			}
			probe.Op(perf.ScalarInt, m+1)
		}

		if in[id] != nil && equalProfile(in[id], merged) {
			probe.TakeBranch(0x82, false)
			continue // entry unchanged: exit unchanged
		}
		probe.TakeBranch(0x82, true)
		if in[id] == nil {
			in[id] = make([]int, m+1)
		}
		copy(in[id], merged)

		// Step the column through the node's bases.
		st := fromProfile(merged)
		seq := g.Seq(id)
		for i, b := range seq {
			st.step(eq[bio.Code(b)], m, probe)
			// Row state read-modify-write: each row's bitvectors live in
			// the per-node state block.
			rowAddr := uintptr(stateBase) + uintptr(id-1)*stateStride + uintptr((i*16)%int(stateStride))
			probe.Load(rowAddr, 16)
			probe.Store(rowAddr, 16)
			if st.score < best.Distance {
				probe.TakeBranch(0x83, true)
				best = EditResult{Distance: st.score, EndNode: id}
			} else {
				probe.TakeBranch(0x83, false)
			}
		}

		changed := !hasOut[id] || st != out[id]
		probe.TakeBranch(0x84, changed)
		if !changed {
			continue
		}
		out[id] = st
		hasOut[id] = true
		probe.Store(uintptr(stateBase)+uintptr(id-1)*stateStride, (m+1)*8)

		for _, c := range g.Out(id) {
			if !inQueue[c] {
				heap.Push(pq, gbvItem{c, st.score})
				inQueue[c] = true
				probe.Op(perf.ScalarInt, 8)
			}
		}
	}
	// The empty-alignment answer for zero-length nodes is already m.
	if best.Distance == m {
		best.EndNode = 0
	}
	return best, nil
}

func equalProfile(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

type gbvItem struct {
	node graph.NodeID
	prio int
}

type gbvHeap []gbvItem

func (h gbvHeap) Len() int            { return len(h) }
func (h gbvHeap) Less(i, j int) bool  { return h[i].prio < h[j].prio }
func (h gbvHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *gbvHeap) Push(x interface{}) { *h = append(*h, x.(gbvItem)) }
func (h *gbvHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

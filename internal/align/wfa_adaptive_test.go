package align

import (
	"math/rand"
	"testing"
)

func TestWFAAdaptiveExactOnModerateDivergence(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for i := 0; i < 60; i++ {
		a := randSeq(rng, 100+rng.Intn(400))
		b := mutate(rng, a, 0.05)
		want := GlobalEditDistance(a, b)
		if got := WFAEditAdaptive(a, b, 200, nil); got != want {
			t.Fatalf("case %d: adaptive %d != exact %d (generous cutoff)", i, got, want)
		}
	}
}

func TestWFAAdaptiveIsUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for i := 0; i < 40; i++ {
		a := randSeq(rng, 50+rng.Intn(200))
		b := randSeq(rng, 50+rng.Intn(200)) // unrelated: heavy divergence
		exact := GlobalEditDistance(a, b)
		got := WFAEditAdaptive(a, b, 20, nil)
		if got < exact {
			t.Fatalf("case %d: adaptive %d below exact %d", i, got, exact)
		}
	}
}

func TestWFAAdaptivePrunesWork(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	a := randSeq(rng, 2000)
	b := mutate(rng, a, 0.10)
	exactProbe := newCountingProbe()
	WFAEdit(a, b, exactProbe)
	adaptProbe := newCountingProbe()
	WFAEditAdaptive(a, b, 100, adaptProbe)
	if adaptProbe.Instructions() >= exactProbe.Instructions() {
		t.Fatalf("adaptive (%d instr) should do less work than exact (%d instr)",
			adaptProbe.Instructions(), exactProbe.Instructions())
	}
}

func TestWFAAdaptiveEdges(t *testing.T) {
	if WFAEditAdaptive(nil, []byte("AC"), 10, nil) != 2 {
		t.Fatal("empty a")
	}
	if WFAEditAdaptive([]byte("AC"), nil, 10, nil) != 2 {
		t.Fatal("empty b")
	}
	if WFAEditAdaptive([]byte("ACGT"), []byte("ACGT"), 0, nil) != 0 {
		t.Fatal("identical with clamped cutoff")
	}
}

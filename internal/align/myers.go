package align

import (
	"fmt"

	"pangenomicsbench/internal/bio"
	"pangenomicsbench/internal/perf"
)

// MaxMyersQuery is the maximum query length of the bitvector kernels. The
// paper notes GBV "bitvectors are restricted to 64 bits in the code"
// (GraphAligner slices long reads into chunks of this size), so a machine
// word holds one column.
const MaxMyersQuery = 64

// Peq is the match-mask table of Myers's algorithm: for each base code, a
// bitmask of the query positions holding that base.
type Peq [5]uint64

// NewPeq builds the match masks for query (len ≤ MaxMyersQuery).
func NewPeq(query []byte) (Peq, error) {
	var eq Peq
	if len(query) == 0 || len(query) > MaxMyersQuery {
		return eq, fmt.Errorf("align: Myers query length %d outside [1,%d]", len(query), MaxMyersQuery)
	}
	for j, b := range query {
		c := bio.Code(b)
		if c != bio.BaseN {
			eq[c] |= 1 << uint(j)
		}
	}
	return eq, nil
}

// myersState is one column state: the vertical positive/negative delta
// bitvectors and the score at the bottom (query end).
type myersState struct {
	vp, vn uint64
	score  int
}

func initialMyersState(m int) myersState {
	return myersState{vp: ones(m), vn: 0, score: m}
}

func ones(m int) uint64 {
	if m >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(m)) - 1
}

// step advances the column state by one reference base (Hyyrö's formulation
// of Myers's algorithm, search variant: the top boundary of every column is
// 0, so matches may start at any reference position).
func (s *myersState) step(eq uint64, m int, probe *perf.Probe) {
	xv := eq | s.vn
	xh := (((eq & s.vp) + s.vp) ^ s.vp) | eq
	hp := s.vn | ^(xh | s.vp)
	hn := s.vp & xh
	top := uint64(1) << uint(m-1)
	if hp&top != 0 {
		s.score++
	} else if hn&top != 0 {
		s.score--
	}
	hp <<= 1
	hn <<= 1
	s.vp = hn | ^(xv | hp)
	s.vn = hp & xv
	// The paper bins GBV's 64-bit word operations as scalar (§5.2: "GBV
	// bitvectors are restricted to 64 bits ... classified as scalar").
	probe.Op(perf.ScalarInt, 12)
	probe.TakeBranch(0x70, hp&(top<<1) != 0)
}

// profile reconstructs the full column score profile D[0..m] (D[0] = 0 in
// the search variant) by walking the delta bitvectors up from the bottom.
func (s *myersState) profile(m int, out []int) []int {
	if cap(out) < m+1 {
		out = make([]int, m+1)
	}
	out = out[:m+1]
	out[m] = s.score
	for j := m - 1; j >= 0; j-- {
		d := out[j+1]
		bit := uint64(1) << uint(j)
		if s.vp&bit != 0 {
			d--
		} else if s.vn&bit != 0 {
			d++
		}
		out[j] = d
	}
	return out
}

// fromProfile rebuilds a column state from a score profile whose adjacent
// deltas are in {-1, 0, +1}.
func fromProfile(p []int) myersState {
	m := len(p) - 1
	var s myersState
	for j := 0; j < m; j++ {
		switch p[j+1] - p[j] {
		case 1:
			s.vp |= 1 << uint(j)
		case -1:
			s.vn |= 1 << uint(j)
		}
	}
	s.score = p[m]
	return s
}

// Myers64 computes the semi-global edit distance of query (≤64 bp) against
// ref: the match may start at any reference position and must consume the
// whole query. It is the Seq2Seq ancestor of the GBV kernel.
func Myers64(ref, query []byte, probe *perf.Probe) (EditResult, error) {
	eq, err := NewPeq(query)
	if err != nil {
		return EditResult{}, err
	}
	m := len(query)
	st := initialMyersState(m)
	best := EditResult{Distance: st.score, EndRef: 0}
	for i, b := range ref {
		st.step(eq[bio.Code(b)], m, probe)
		if st.score < best.Distance {
			best = EditResult{Distance: st.score, EndRef: i + 1}
		}
	}
	return best, nil
}

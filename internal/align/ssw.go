package align

import (
	"pangenomicsbench/internal/bio"
	"pangenomicsbench/internal/perf"
)

// Lanes is the modeled SIMD width of the striped Smith-Waterman kernels:
// eight 16-bit lanes, i.e. one 128-bit SSE register, matching the word
// configuration of the SSW library the paper's GSSW kernel builds on.
const Lanes = 8

// vec is one modeled SIMD register.
type vec [Lanes]int16

func (v *vec) maxWith(o *vec) {
	for l := 0; l < Lanes; l++ {
		if o[l] > v[l] {
			v[l] = o[l]
		}
	}
}

func (v *vec) addSat(o *vec) {
	for l := 0; l < Lanes; l++ {
		s := int32(v[l]) + int32(o[l])
		if s > 32767 {
			s = 32767
		}
		if s < 0 {
			s = 0 // Smith-Waterman zero floor (saturating unsigned semantics)
		}
		v[l] = int16(s)
	}
}

func (v *vec) subSatScalar(x int16) {
	for l := 0; l < Lanes; l++ {
		s := v[l] - x
		if s < 0 {
			s = 0
		}
		v[l] = s
	}
}

// shiftIn shifts lanes left by one (lane 0 receives fill). In the striped
// layout this moves values to the next query position across segments.
func (v vec) shiftIn(fill int16) vec {
	var out vec
	out[0] = fill
	copy(out[1:], v[:Lanes-1])
	return out
}

func (v *vec) anyGreater(o *vec) bool {
	for l := 0; l < Lanes; l++ {
		if v[l] > o[l] {
			return true
		}
	}
	return false
}

func (v *vec) horizontalMax() int16 {
	m := v[0]
	for l := 1; l < Lanes; l++ {
		if v[l] > m {
			m = v[l]
		}
	}
	return m
}

// Profile is a striped query profile (Farrar): for each reference base code,
// the per-segment substitution score vectors, biased to be non-negative.
type Profile struct {
	query  []byte
	codes  []byte
	segLen int
	bias   int16
	vecs   [5][]vec // indexed by reference base code
}

// NewProfile builds the striped query profile for the scoring scheme.
func NewProfile(query []byte, sc bio.Scoring) *Profile {
	m := len(query)
	segLen := (m + Lanes - 1) / Lanes
	if segLen == 0 {
		segLen = 1
	}
	p := &Profile{query: query, codes: bio.Encode2Bit(query), segLen: segLen, bias: int16(sc.Mismatch)}
	for code := 0; code < 5; code++ {
		p.vecs[code] = make([]vec, segLen)
		for seg := 0; seg < segLen; seg++ {
			for l := 0; l < Lanes; l++ {
				qpos := l*segLen + seg
				score := -int(sc.Mismatch)
				if qpos < m {
					if int(p.codes[qpos]) == code && code != bio.BaseN {
						score = sc.Match
					}
				}
				p.vecs[code][seg][l] = int16(score) + p.bias
			}
		}
	}
	return p
}

// SegLen returns the number of striped segments.
func (p *Profile) SegLen() int { return p.segLen }

// sswState is the rolling striped state of one Smith-Waterman pass.
type sswState struct {
	pf          *Profile
	sc          bio.Scoring
	probe       *perf.Probe
	hLoad       []vec
	hStore      []vec
	e           []vec
	addrH       uint64 // synthetic addresses for the cache model
	addrE       uint64
	addrProfile uint64
}

func newSSWState(pf *Profile, sc bio.Scoring, probe *perf.Probe, as *perf.AddrSpace) *sswState {
	st := &sswState{
		pf:     pf,
		sc:     sc,
		probe:  probe,
		hLoad:  make([]vec, pf.segLen),
		hStore: make([]vec, pf.segLen),
		e:      make([]vec, pf.segLen),
	}
	if as != nil {
		bytes := pf.segLen * Lanes * 2
		st.addrH = as.Alloc(2 * bytes)
		st.addrE = as.Alloc(bytes)
		st.addrProfile = as.Alloc(5 * bytes)
	}
	return st
}

// column runs one Farrar column for reference base code refCode, returning
// the striped H column (hStore) and updating rolling state. maxOut receives
// the column's running maximum vector.
func (st *sswState) column(refCode byte, maxOut *vec) {
	pf := st.pf
	probe := st.probe
	gapO := int16(st.sc.GapOpen) // cost of the first base of a gap
	gapE := int16(st.sc.GapExtend)
	bias := pf.bias

	profile := pf.vecs[refCode]
	var vF vec
	vH := st.hLoad[pf.segLen-1].shiftIn(0)
	vecBytes := Lanes * 2

	for seg := 0; seg < pf.segLen; seg++ {
		// vH = saturating(vH + profile) - bias
		pv := profile[seg]
		probe.Load(uintptr(st.addrProfile)+uintptr((int(refCode)*pf.segLen+seg)*vecBytes), vecBytes)
		vH.addSat(&pv)
		for l := 0; l < Lanes; l++ {
			vH[l] -= bias
			if vH[l] < 0 {
				vH[l] = 0
			}
		}
		probe.Op(perf.Vector, 3) // add, sub, max-with-zero

		probe.Load(uintptr(st.addrE)+uintptr(seg*vecBytes), vecBytes)
		vH.maxWith(&st.e[seg])
		vH.maxWith(&vF)
		maxOut.maxWith(&vH)
		probe.Op(perf.Vector, 3)

		st.hStore[seg] = vH
		probe.Store(uintptr(st.addrH)+uintptr(seg*vecBytes), vecBytes)

		// E and F updates.
		vHGap := vH
		vHGap.subSatScalar(gapO)
		st.e[seg].subSatScalar(gapE)
		st.e[seg].maxWith(&vHGap)
		probe.Store(uintptr(st.addrE)+uintptr(seg*vecBytes), vecBytes)
		vF.subSatScalar(gapE)
		vF.maxWith(&vHGap)
		probe.Op(perf.Vector, 5)
		probe.Dep(2) // loop-carried F/H chain within the column

		probe.Load(uintptr(st.addrH)+uintptr((pf.segLen+seg)*vecBytes), vecBytes)
		vH = st.hLoad[seg]
	}

	// Lazy-F loop: propagate F across segment boundaries until it can no
	// longer improve any cell.
	vF = vF.shiftIn(0)
	for seg := 0; ; {
		var vTest vec
		for l := 0; l < Lanes; l++ {
			t := st.hStore[seg][l] - gapO
			if t < 0 {
				t = 0
			}
			vTest[l] = t
		}
		probe.Op(perf.Vector, 2)
		if !vF.anyGreater(&vTest) {
			probe.TakeBranch(0x51, false)
			break
		}
		probe.TakeBranch(0x51, true)
		st.hStore[seg].maxWith(&vF)
		probe.Store(uintptr(st.addrH)+uintptr(seg*vecBytes), vecBytes)
		vF.subSatScalar(gapE)
		probe.Op(perf.Vector, 2)
		seg++
		if seg >= pf.segLen {
			seg = 0
			vF = vF.shiftIn(0)
			probe.Op(perf.Vector, 1)
		}
	}

	st.hLoad, st.hStore = st.hStore, st.hLoad
	probe.Op(perf.Register, 2)
}

// StripedSW is Farrar's striped Smith-Waterman (the paper's SSW baseline,
// case study §6.1). It returns the best local score and end coordinates; as
// in the real SSW library's first pass, only the previous column is kept, so
// no traceback is produced.
func StripedSW(ref, query []byte, sc bio.Scoring, probe *perf.Probe) Result {
	if len(ref) == 0 || len(query) == 0 {
		return Result{}
	}
	pf := NewProfile(query, sc)
	st := newSSWState(pf, sc, probe, perf.NewAddrSpace())
	refCodes := bio.Encode2Bit(ref)

	best := Result{}
	for i, code := range refCodes {
		var colMax vec
		st.column(code, &colMax)
		probe.Op(perf.ScalarInt, 2) // loop bookkeeping
		if hm := int(colMax.horizontalMax()); hm > best.Score {
			probe.TakeBranch(0x52, true)
			best.Score = hm
			best.RefEnd = i + 1
			// Recover the query end from the striped layout.
			best.QueryEnd = stripedArgmax(st.hLoad, pf.segLen) + 1
		} else {
			probe.TakeBranch(0x52, false)
		}
	}
	return best
}

// stripedArgmax returns the query index holding the maximum in a striped
// column (hLoad holds the just-stored column after the swap).
func stripedArgmax(col []vec, segLen int) int {
	bestV, bestQ := int16(-1), 0
	for seg := 0; seg < segLen; seg++ {
		for l := 0; l < Lanes; l++ {
			if col[seg][l] > bestV {
				bestV = col[seg][l]
				bestQ = l*segLen + seg
			}
		}
	}
	return bestQ
}

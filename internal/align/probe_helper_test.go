package align

import "pangenomicsbench/internal/perf"

// newCountingProbe returns a probe without cache or branch simulators:
// counters only, cheap enough for store-count comparisons.
func newCountingProbe() *perf.Probe { return &perf.Probe{} }

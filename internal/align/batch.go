// Lane-packed batched kernels: up to MaxLanes independent alignment
// problems advance in lockstep through one kernel call, struct-of-arrays
// style, mirroring the 32-lane warp model of internal/simt on the CPU. Each
// lane's arithmetic is exactly the serial kernel's, so per-lane results are
// byte-identical to one-at-a-time calls at any batch size; the win is
// allocation-free steady state (grow-only arenas per lane group, like the
// pooled POA DP rows) and an interleaved instruction stream that amortizes
// per-call setup. Lane groups also expose their column/active-step counts,
// so the simt warp model can cross-check utilization accounting.
package align

import (
	"pangenomicsbench/internal/bio"
	"pangenomicsbench/internal/graph"
	"pangenomicsbench/internal/perf"
)

// MaxLanes is the lane width of the batched kernels: 16 reads interleave
// per kernel call (half a simt warp; two lane groups fill one).
const MaxLanes = 16

// MyersLaneGroup runs up to MaxLanes independent Myers64 problems in
// lockstep: one column step per lane per round, lanes whose reference is
// exhausted going inactive (the divergence model of simt.Warp.Exec). All
// state lives in fixed per-lane arrays — zero allocations at any batch
// size.
type MyersLaneGroup struct {
	n    int
	eq   [MaxLanes]Peq
	m    [MaxLanes]int
	refs [MaxLanes][]byte
	lens [MaxLanes]int
	st   [MaxLanes]myersState
	res  [MaxLanes]EditResult

	cols      int
	laneSteps int
}

// Reset empties the group for reuse.
func (g *MyersLaneGroup) Reset() { g.n, g.cols, g.laneSteps = 0, 0, 0 }

// Len returns the number of occupied lanes.
func (g *MyersLaneGroup) Len() int { return g.n }

// Full reports whether every lane is occupied.
func (g *MyersLaneGroup) Full() bool { return g.n == MaxLanes }

// Add loads one (ref, query) problem into the next lane and returns its
// lane index. The query obeys the Myers64 length bound (1..64 bp); ref may
// be any length, including empty. The slices are retained until Run.
func (g *MyersLaneGroup) Add(ref, query []byte) (int, error) {
	eq, err := NewPeq(query)
	if err != nil {
		return -1, err
	}
	l := g.n
	g.n++
	g.eq[l] = eq
	g.m[l] = len(query)
	g.refs[l] = ref
	g.lens[l] = len(ref)
	g.st[l] = initialMyersState(len(query))
	g.res[l] = EditResult{Distance: g.st[l].score, EndRef: 0}
	return l, nil
}

// Run advances every lane in lockstep, column-major: round i steps each
// still-active lane by reference base i. Per-lane arithmetic is exactly
// Myers64's, so Result(l) is byte-identical to the serial kernel.
func (g *MyersLaneGroup) Run(probe *perf.Probe) {
	maxLen := 0
	for l := 0; l < g.n; l++ {
		if len(g.refs[l]) > maxLen {
			maxLen = len(g.refs[l])
		}
	}
	for i := 0; i < maxLen; i++ {
		for l := 0; l < g.n; l++ {
			ref := g.refs[l]
			if i >= len(ref) {
				continue
			}
			st := &g.st[l]
			st.step(g.eq[l][bio.Code(ref[i])], g.m[l], probe)
			if st.score < g.res[l].Distance {
				g.res[l] = EditResult{Distance: st.score, EndRef: i + 1}
			}
			g.laneSteps++
		}
		g.cols++
	}
	for l := 0; l < g.n; l++ {
		g.refs[l] = nil // release retained references
	}
}

// Result returns lane l's outcome after Run.
func (g *MyersLaneGroup) Result(l int) EditResult { return g.res[l] }

// RefLen returns the reference length loaded into lane l (its active
// column count — the apportionment weight for batched stage timing).
func (g *MyersLaneGroup) RefLen(l int) int { return g.lens[l] }

// Columns returns the number of lockstep rounds the last Run issued (the
// warp-instruction count of the simt cross-check).
func (g *MyersLaneGroup) Columns() int { return g.cols }

// LaneSteps returns the total active lane-steps of the last Run (the
// active-lane sum of the simt cross-check): utilization is
// LaneSteps/(Columns×lanes).
func (g *MyersLaneGroup) LaneSteps() int { return g.laneSteps }

// ActiveMask returns the active-lane bitmask of lockstep round col — the
// mask a simt warp would issue for that column.
func (g *MyersLaneGroup) ActiveMask(col int) uint32 {
	var mask uint32
	for l := 0; l < g.n; l++ {
		if col < g.lens[l] {
			mask |= 1 << uint(l)
		}
	}
	return mask
}

// wfaLane is one lane's wavefront state inside a WFALaneGroup.
type wfaLane struct {
	ca, cb    []byte
	cur, next []int
	lo, hi    int
	bias      int
	goalK     int
	n, m      int
	wfBase    uint64
	as        perf.AddrSpace
	s         int
	dist      int
	done      bool
}

func (ln *wfaLane) start(a, b []byte) {
	ln.n, ln.m = len(a), len(b)
	ln.s, ln.dist = 0, 0
	if ln.n == 0 {
		ln.dist, ln.done = ln.m, true
		return
	}
	if ln.m == 0 {
		ln.dist, ln.done = ln.n, true
		return
	}
	ln.done = false
	ln.ca = bio.AppendCodes(ln.ca[:0], a)
	ln.cb = bio.AppendCodes(ln.cb[:0], b)
	ln.goalK = ln.n - ln.m
	ln.as.Reset()
	ln.wfBase = ln.as.Alloc((ln.n + ln.m + 1) * 4)
	ln.bias = ln.m
	ln.cur = ensureInts(ln.cur, ln.n+ln.m+1)
	ln.next = ensureInts(ln.next, ln.n+ln.m+1)
	for i := range ln.cur {
		ln.cur[i] = -1
	}
	ln.lo, ln.hi = 0, 0
	ln.cur[ln.bias] = 0
}

func (ln *wfaLane) extend(wf []int, k int, probe *perf.Probe) {
	i := wf[k+ln.bias]
	j := i - k
	for i < ln.n && j < ln.m && ln.ca[i] == ln.cb[j] {
		probe.TakeBranch(0x90, true)
		probe.Load(uintptr(ln.wfBase)+uintptr(i), 1)
		i++
		j++
	}
	probe.TakeBranch(0x90, false)
	probe.Op(perf.ScalarInt, 2)
	wf[k+ln.bias] = i
}

// step runs one error score s of WFAEdit's main loop: extend every live
// diagonal, test the goal, grow the wavefront. Identical arithmetic to the
// serial kernel, one score per lockstep round.
func (ln *wfaLane) step(probe *perf.Probe) {
	// Extend every live diagonal.
	for k := ln.lo; k <= ln.hi; k++ {
		if ln.cur[k+ln.bias] >= 0 {
			ln.extend(ln.cur, k, probe)
		}
	}
	// Goal: bottom-right corner reached.
	if ln.goalK >= ln.lo && ln.goalK <= ln.hi && ln.cur[ln.goalK+ln.bias] >= ln.n {
		probe.TakeBranch(0x91, true)
		ln.dist, ln.done = ln.s, true
		return
	}
	probe.TakeBranch(0x91, false)

	// Next: grow the wavefront by one error.
	nlo, nhi := ln.lo-1, ln.hi+1
	if nlo < -ln.m {
		nlo = -ln.m
	}
	if nhi > ln.n {
		nhi = ln.n
	}
	for k := nlo; k <= nhi; k++ {
		best := -1
		if k-1 >= ln.lo && k-1 <= ln.hi && ln.cur[k-1+ln.bias] >= 0 {
			best = ln.cur[k-1+ln.bias] + 1 // deletion from k-1
		}
		if k >= ln.lo && k <= ln.hi && ln.cur[k+ln.bias] >= 0 && ln.cur[k+ln.bias]+1 > best {
			best = ln.cur[k+ln.bias] + 1 // mismatch
		}
		if k+1 >= ln.lo && k+1 <= ln.hi && ln.cur[k+1+ln.bias] >= 0 && ln.cur[k+1+ln.bias] > best {
			best = ln.cur[k+1+ln.bias] // insertion from k+1
		}
		if best > ln.n {
			best = ln.n
		}
		if best >= 0 && best-k > ln.m {
			best = ln.m + k
		}
		if best >= 0 && best-k < 0 {
			best = -1 // off the matrix
		}
		ln.next[k+ln.bias] = best
		probe.Op(perf.ScalarInt, 6)
		probe.Store(uintptr(ln.wfBase)+uintptr((k+ln.bias)*4), 4)
	}
	ln.lo, ln.hi = nlo, nhi
	ln.cur, ln.next = ln.next, ln.cur
	ln.s++
}

// WFALaneGroup runs up to MaxLanes independent WFAEdit problems in
// lockstep: one error score per lane per round, lanes retiring as their
// wavefront reaches the goal. Per-lane buffers are grow-only, so a reused
// group computes with zero steady-state allocations.
type WFALaneGroup struct {
	n     int
	lanes [MaxLanes]wfaLane

	cols      int
	laneSteps int
}

// Reset empties the group for reuse (buffers are kept).
func (g *WFALaneGroup) Reset() { g.n, g.cols, g.laneSteps = 0, 0, 0 }

// Len returns the number of occupied lanes.
func (g *WFALaneGroup) Len() int { return g.n }

// Full reports whether every lane is occupied.
func (g *WFALaneGroup) Full() bool { return g.n == MaxLanes }

// Add loads one (a, b) edit-distance problem into the next lane and returns
// its lane index. The sequences are encoded into lane-owned buffers, so the
// caller's slices are not retained past Add.
func (g *WFALaneGroup) Add(a, b []byte) int {
	l := g.n
	g.n++
	g.lanes[l].start(a, b)
	return l
}

// Run advances every unfinished lane by one error score per lockstep round
// until all lanes retire. Per-lane results equal WFAEdit exactly.
func (g *WFALaneGroup) Run(probe *perf.Probe) {
	for {
		live := 0
		for l := 0; l < g.n; l++ {
			if g.lanes[l].done {
				continue
			}
			g.lanes[l].step(probe)
			live++
			g.laneSteps++
		}
		if live == 0 {
			return
		}
		g.cols++
	}
}

// Distance returns lane l's edit distance after Run.
func (g *WFALaneGroup) Distance(l int) int { return g.lanes[l].dist }

// Columns returns the lockstep rounds of the last Run.
func (g *WFALaneGroup) Columns() int { return g.cols }

// LaneSteps returns the total active lane-steps of the last Run.
func (g *WFALaneGroup) LaneSteps() int { return g.laneSteps }

// GBVLaneGroup interleaves up to MaxLanes independent GBV alignments: each
// lane owns a full GBVWorkspace and one priority-queue relaxation is the
// lockstep unit. Per-lane pop order — and therefore results — is identical
// to a serial GBVWorkspace.Align, and all lane workspaces are grow-only.
type GBVLaneGroup struct {
	n      int
	ws     [MaxLanes]GBVWorkspace
	errs   [MaxLanes]error
	active int

	cols      int
	laneSteps int
}

// Reset empties the group for reuse (lane workspaces are kept).
func (g *GBVLaneGroup) Reset() { g.n, g.cols, g.laneSteps, g.active = 0, 0, 0, 0 }

// Len returns the number of occupied lanes.
func (g *GBVLaneGroup) Len() int { return g.n }

// Full reports whether every lane is occupied.
func (g *GBVLaneGroup) Full() bool { return g.n == MaxLanes }

// Add primes the next lane with one (graph, query) alignment and returns
// its lane index. An invalid query (Myers length bound) consumes the lane
// and surfaces from Err(l), mirroring the serial kernel's error return.
func (g *GBVLaneGroup) Add(gr *graph.Graph, query []byte, probe *perf.Probe) int {
	l := g.n
	g.n++
	g.errs[l] = g.ws[l].Start(gr, query, probe)
	return l
}

// Run drives every lane's relaxation in lockstep — one queue pop per live
// lane per round — until all lanes reach their fixpoint.
func (g *GBVLaneGroup) Run() {
	for {
		live := 0
		for l := 0; l < g.n; l++ {
			if g.errs[l] != nil || g.ws[l].Done() {
				continue
			}
			g.ws[l].Step()
			live++
			g.laneSteps++
		}
		if live == 0 {
			return
		}
		g.cols++
	}
}

// Err returns lane l's setup error (nil for a valid lane).
func (g *GBVLaneGroup) Err(l int) error { return g.errs[l] }

// Result returns lane l's alignment outcome after Run.
func (g *GBVLaneGroup) Result(l int) EditResult { return g.ws[l].Result() }

// Steps returns lane l's processed queue pops (its apportionment weight).
func (g *GBVLaneGroup) Steps(l int) int { return g.ws[l].Steps() }

// Columns returns the lockstep rounds of the last Run.
func (g *GBVLaneGroup) Columns() int { return g.cols }

// LaneSteps returns the total active lane-steps of the last Run.
func (g *GBVLaneGroup) LaneSteps() int { return g.laneSteps }

package align

import (
	"pangenomicsbench/internal/bio"
	"pangenomicsbench/internal/graph"
	"pangenomicsbench/internal/perf"
)

// gwfaKey identifies one diagonal of one node's DP matrix (Fig. 4e: every
// node has its own matrix; diagonals expand across edges into child nodes).
type gwfaKey struct {
	node graph.NodeID
	k    int32 // diagonal = queryPos - nodeOffset
}

type gwfaPoint struct {
	key gwfaKey
	q   int32
}

// GWFAWorkspace holds the reusable wavefront state of GWFA: the per-diagonal
// maps (cleared, not reallocated, between calls — Go keeps their buckets),
// the point/key scan slices, the query code buffer, and the synthetic
// address space. A reused workspace bridges a gap with zero steady-state
// allocations once its maps have grown to the working-set size. Distances
// are identical to the fresh-allocation path; the reported EndNode may
// differ on exact ties because map iteration order is unspecified either
// way (the mapping pipelines consume only Distance).
type GWFAWorkspace struct {
	furthest, cur, next map[gwfaKey]int32
	pts                 []gwfaPoint
	keys                []gwfaKey
	qc                  []byte
	as                  perf.AddrSpace
}

// GWFA is the Graph Wavefront Algorithm used by Minigraph to bridge gaps
// between anchors (paper §3, [35]): non-affine (unit-cost) alignment of
// query against the graph starting at offset 0 of node start, consuming the
// whole query, ending anywhere. When a diagonal reaches the end of a node it
// expands into each child node, scattering the wavefront across per-node
// matrices — the irregular access pattern §5.2 attributes to GWFA.
func GWFA(g *graph.Graph, start graph.NodeID, query []byte, probe *perf.Probe) (EditResult, error) {
	return GWFAAt(g, start, 0, query, probe)
}

// GWFAAt is GWFA starting at offset startOff (clamped into the node) of
// node start, so a long gap can be bridged in pieces with each piece
// resuming exactly where the previous one ended. The result's EndRef is
// the exclusive end offset of the alignment within EndNode — the
// (EndNode, EndRef) pair is the resume point for the next piece.
func GWFAAt(g *graph.Graph, start graph.NodeID, startOff int, query []byte, probe *perf.Probe) (EditResult, error) {
	return gwfaCore(nil, g, start, startOff, query, probe)
}

// Align runs GWFA from offset 0 of start reusing the workspace's buffers.
func (ws *GWFAWorkspace) Align(g *graph.Graph, start graph.NodeID, query []byte, probe *perf.Probe) (EditResult, error) {
	return gwfaCore(ws, g, start, 0, query, probe)
}

// prepare returns the (furthest, cur) maps for one run: the workspace's
// cleared maps when ws is non-nil, fresh maps otherwise.
func (ws *GWFAWorkspace) prepare() (map[gwfaKey]int32, map[gwfaKey]int32) {
	if ws == nil {
		return make(map[gwfaKey]int32), make(map[gwfaKey]int32)
	}
	if ws.furthest == nil {
		ws.furthest = make(map[gwfaKey]int32)
		ws.cur = make(map[gwfaKey]int32)
		ws.next = make(map[gwfaKey]int32)
	}
	clear(ws.furthest)
	clear(ws.cur)
	clear(ws.next)
	return ws.furthest, ws.cur
}

func gwfaCore(ws *GWFAWorkspace, g *graph.Graph, start graph.NodeID, startOff int, query []byte, probe *perf.Probe) (EditResult, error) {
	if !g.Valid(start) {
		return EditResult{}, errInvalidStart(start)
	}
	if startOff < 0 {
		startOff = 0
	}
	if l := len(g.Seq(start)); startOff > l {
		startOff = l
	}
	m := int32(len(query))
	if m == 0 {
		return EditResult{Distance: 0, EndNode: start, EndRef: startOff}, nil
	}
	var qc []byte
	var as *perf.AddrSpace
	if ws != nil {
		ws.qc = bio.AppendCodes(ws.qc[:0], query)
		qc = ws.qc
		ws.as.Reset()
		as = &ws.as
	} else {
		qc = bio.Encode2Bit(query)
		as = perf.NewAddrSpace()
	}
	// Wavefront state is scattered across per-node structures, so its
	// footprint grows with the graph region the wavefront reaches
	// (§5.2: chromosome-scale gaps cover more nodes → more memory
	// divergence).
	wfFoot := uint64(g.NumNodes()) * 64
	if wfFoot < 1<<14 {
		wfFoot = 1 << 14
	}
	wfBase := as.Alloc(int(wfFoot))

	// furthest[key] = furthest query offset reached on that diagonal at any
	// score so far (monotone; used to prune dominated points).
	furthest, cur := ws.prepare()

	improve := func(wf map[gwfaKey]int32, key gwfaKey, q int32) bool {
		probe.Load(uintptr(wfBase)+uintptr((uint64(uint32(key.node))*64+uint64(uint32(key.k))*8)%wfFoot), 8)
		// Per-point bookkeeping: diagonal/offset arithmetic, bounds checks,
		// hash/index computation of the per-node wavefront slot.
		probe.Op(perf.ScalarInt, 14)
		probe.Dep(1) // offset comparison chain
		// No branch recorded here: the real GWFA computes new wavefront
		// offsets with unconditional max operations; the dominance check
		// below is an artifact of this map-based implementation.
		if old, ok := furthest[key]; ok && old >= q {
			return false
		}
		furthest[key] = q
		if old, ok := wf[key]; !ok || q > old {
			wf[key] = q
		}
		probe.Store(uintptr(wfBase)+uintptr((uint64(uint32(key.node))*64+uint64(uint32(key.k))*8+8)%wfFoot), 8)
		return true
	}

	// extend pushes a point as far as exact matches allow, expanding into
	// children at node ends; returns true if the query end was reached.
	// endKey records the diagonal where the query end was hit, so the
	// caller can report the exact (node, offset) end position.
	var endKey gwfaKey
	var extend func(wf map[gwfaKey]int32, key gwfaKey, q int32) bool
	extend = func(wf map[gwfaKey]int32, key gwfaKey, q int32) bool {
		seq := g.Seq(key.node)
		off := q - key.k
		matched := 0
		for int(off) < len(seq) && q < m && bio.Code(seq[off]) == qc[q] {
			off++
			q++
			matched++
		}
		// Extension cost: load + compare + advance per matched base (the
		// comparison loop body), one exit branch per extension run.
		probe.Op(perf.ScalarInt, 4*matched+4)
		probe.Load(uintptr(wfBase)+uintptr(uint64(q)%wfFoot), 4)
		probe.TakeBranch(0xa1, matched > 0)
		if old, ok := wf[key]; !ok || q > old {
			wf[key] = q
			furthest[key] = maxI32(furthest[key], q)
		}
		if q == m {
			endKey = key
			return true
		}
		if int(off) == len(seq) {
			// Diagonal expansion into children (blue diagonal, Fig. 4e).
			for _, c := range g.Out(key.node) {
				ck := gwfaKey{c, q}
				probe.Op(perf.ScalarInt, 4)
				if improve(wf, ck, q) {
					if extend(wf, ck, q) {
						return true
					}
				}
			}
		}
		return false
	}

	k0 := gwfaKey{start, -int32(startOff)} // diagonal 0 shifted to startOff
	if improve(cur, k0, 0); extend(cur, k0, 0) {
		return EditResult{Distance: 0, EndNode: endKey.node, EndRef: int(m - endKey.k)}, nil
	}

	for s := 1; ; s++ {
		var next map[gwfaKey]int32
		var pts []gwfaPoint
		if ws != nil {
			next = ws.next
			clear(next)
			pts = ws.pts[:0]
		} else {
			next = make(map[gwfaKey]int32)
		}
		for key, q := range cur {
			pts = append(pts, gwfaPoint{key, q})
		}
		if ws != nil {
			ws.pts = pts
		}
		if len(pts) == 0 {
			// Wavefront died (fully dominated): distance is bounded by
			// inserting the whole remaining query; fall back to worst case.
			return EditResult{Distance: int(m), EndNode: start, EndRef: startOff}, nil
		}
		for _, pt := range pts {
			seq := g.Seq(pt.key.node)
			off := pt.q - pt.key.k
			L := int32(len(seq))
			// Mismatch: advance both (same diagonal).
			if off < L && pt.q < m {
				improve(next, pt.key, pt.q+1)
			}
			// Insertion: consume query only (diagonal k+1).
			if pt.q < m {
				improve(next, gwfaKey{pt.key.node, pt.key.k + 1}, pt.q+1)
			}
			// Deletion: consume node base only (diagonal k-1).
			if off < L {
				improve(next, gwfaKey{pt.key.node, pt.key.k - 1}, pt.q)
			}
			// Per-point wavefront arithmetic: three-way max, bounds
			// clipping, node-length lookups. These carry a dependency
			// chain (each successor offset derives from the max), which
			// is what keeps GWFA core-bound (§5.2).
			probe.Op(perf.ScalarInt, 16)
			probe.Dep(3)
		}
		// Extend pass over the new wavefront.
		var keys []gwfaKey
		if ws != nil {
			keys = ws.keys[:0]
		}
		for key := range next {
			keys = append(keys, key)
		}
		if ws != nil {
			ws.keys = keys
		}
		for _, key := range keys {
			if extend(next, key, next[key]) {
				return EditResult{Distance: s, EndNode: endKey.node, EndRef: int(m - endKey.k)}, nil
			}
		}
		if ws != nil {
			ws.cur, ws.next = next, cur
		}
		cur = next
	}
}

func maxI32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

type errInvalidStart graph.NodeID

func (e errInvalidStart) Error() string {
	return "align: GWFA start node out of range"
}

package align

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"pangenomicsbench/internal/bio"
	"pangenomicsbench/internal/graph"
)

func randSeq(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = "ACGT"[rng.Intn(4)]
	}
	return s
}

// mutate applies roughly rate edits (SNP/ins/del) to seq.
func mutate(rng *rand.Rand, seq []byte, rate float64) []byte {
	var out []byte
	for _, b := range seq {
		r := rng.Float64()
		switch {
		case r < rate/3: // SNP
			out = append(out, "ACGT"[rng.Intn(4)])
		case r < 2*rate/3: // deletion
		case r < rate: // insertion
			out = append(out, b, "ACGT"[rng.Intn(4)])
		default:
			out = append(out, b)
		}
	}
	if len(out) == 0 {
		out = []byte{'A'}
	}
	return out
}

func TestSmithWatermanKnown(t *testing.T) {
	sc := bio.Scoring{Match: 2, Mismatch: 3, GapOpen: 5, GapExtend: 2}
	r := SmithWaterman([]byte("ACGTACGT"), []byte("ACGTACGT"), sc)
	if r.Score != 16 || r.Cigar.String() != "8=" {
		t.Fatalf("perfect match: %+v cigar=%s", r, r.Cigar)
	}
	r = SmithWaterman([]byte("AAAATTTTGGGG"), []byte("TTTT"), sc)
	if r.Score != 8 || r.RefBegin != 4 || r.RefEnd != 8 {
		t.Fatalf("substring: %+v", r)
	}
	// No similarity at all.
	r = SmithWaterman([]byte("AAAA"), []byte("TTTT"), sc)
	if r.Score != 0 {
		t.Fatalf("disjoint: %+v", r)
	}
}

func TestSmithWatermanCigarConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sc := bio.DefaultScoring
	for i := 0; i < 50; i++ {
		ref := randSeq(rng, 80+rng.Intn(80))
		query := mutate(rng, ref[10:60], 0.1)
		r := SmithWaterman(ref, query, sc)
		if r.Score == 0 {
			continue
		}
		if got := rescore(ref[r.RefBegin:r.RefEnd], query[r.QueryBeg:r.QueryEnd], r.Cigar, sc); got != r.Score {
			t.Fatalf("cigar rescores to %d, want %d (cigar %s)", got, r.Score, r.Cigar)
		}
	}
}

// rescore recomputes the alignment score implied by a CIGAR over the exact
// aligned substrings.
func rescore(ref, query []byte, c bio.Cigar, sc bio.Scoring) int {
	score, i, j := 0, 0, 0
	for _, e := range c {
		switch e.Op {
		case bio.CigarEq, bio.CigarX, bio.CigarMatch:
			for k := 0; k < e.Len; k++ {
				score += sc.Substitution(ref[i], query[j])
				i++
				j++
			}
		case bio.CigarIns:
			score -= sc.GapOpen + (e.Len-1)*sc.GapExtend
			j += e.Len
		case bio.CigarDel:
			score -= sc.GapOpen + (e.Len-1)*sc.GapExtend
			i += e.Len
		}
	}
	return score
}

func TestStripedSWMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sc := bio.DefaultScoring
	for i := 0; i < 120; i++ {
		ref := randSeq(rng, 20+rng.Intn(150))
		query := mutate(rng, ref[rng.Intn(len(ref)/2):], 0.15)
		if len(query) > 100 {
			query = query[:100]
		}
		want := SmithWaterman(ref, query, sc)
		got := StripedSW(ref, query, sc, nil)
		if got.Score != want.Score {
			t.Fatalf("case %d: striped score %d != oracle %d (ref %s query %s)",
				i, got.Score, want.Score, ref, query)
		}
	}
}

func TestStripedSWEmpty(t *testing.T) {
	if r := StripedSW(nil, []byte("ACGT"), bio.DefaultScoring, nil); r.Score != 0 {
		t.Fatal("empty ref must score 0")
	}
	if r := StripedSW([]byte("ACGT"), nil, bio.DefaultScoring, nil); r.Score != 0 {
		t.Fatal("empty query must score 0")
	}
}

func TestStripedSWProperty(t *testing.T) {
	sc := bio.Scoring{Match: 2, Mismatch: 4, GapOpen: 4, GapExtend: 1}
	f := func(seedRef, seedQ int64) bool {
		rngR := rand.New(rand.NewSource(seedRef))
		rngQ := rand.New(rand.NewSource(seedQ))
		ref := randSeq(rngR, 1+rngR.Intn(60))
		query := randSeq(rngQ, 1+rngQ.Intn(40))
		return StripedSW(ref, query, sc, nil).Score == SmithWaterman(ref, query, sc).Score
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// linearGraph wraps a sequence as a chain of nodes of the given sizes.
func linearGraph(seq []byte, chunk int) *graph.Graph {
	g := graph.New()
	var prev graph.NodeID
	for off := 0; off < len(seq); off += chunk {
		end := off + chunk
		if end > len(seq) {
			end = len(seq)
		}
		id := g.AddNode(seq[off:end])
		if prev != 0 {
			g.AddEdge(prev, id)
		}
		prev = id
	}
	return g
}

func TestGSSWLinearEqualsSW(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sc := bio.DefaultScoring
	for i := 0; i < 60; i++ {
		ref := randSeq(rng, 30+rng.Intn(120))
		query := mutate(rng, ref[rng.Intn(len(ref)/3):], 0.12)
		if len(query) > 90 {
			query = query[:90]
		}
		g := linearGraph(ref, 1+rng.Intn(12))
		want := SmithWaterman(ref, query, sc)
		got, err := GSSW(g, query, sc, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got.Score != want.Score {
			t.Fatalf("case %d: GSSW %d != SW %d (chunks, ref %s, query %s)",
				i, got.Score, want.Score, ref, query)
		}
	}
}

// allPathSeqs enumerates every source-to-sink path sequence of a small DAG.
func allPathSeqs(g *graph.Graph) [][]byte {
	var out [][]byte
	var walk func(id graph.NodeID, acc []byte)
	walk = func(id graph.NodeID, acc []byte) {
		acc = append(append([]byte{}, acc...), g.Seq(id)...)
		outs := g.Out(id)
		if len(outs) == 0 {
			out = append(out, acc)
			return
		}
		for _, c := range outs {
			walk(c, acc)
		}
	}
	for id := 1; id <= g.NumNodes(); id++ {
		if len(g.In(graph.NodeID(id))) == 0 {
			walk(graph.NodeID(id), nil)
		}
	}
	return out
}

// randomSmallDAG builds a DAG with limited path count for enumeration.
func randomSmallDAG(rng *rand.Rand) *graph.Graph {
	g := graph.New()
	n := 4 + rng.Intn(5)
	for i := 0; i < n; i++ {
		g.AddNode(randSeq(rng, 1+rng.Intn(8)))
	}
	for i := 1; i < n; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	for k := 0; k < 2; k++ {
		a := 1 + rng.Intn(n-1)
		b := a + 1 + rng.Intn(n-a)
		g.AddEdge(graph.NodeID(a), graph.NodeID(b))
	}
	return g
}

func TestGSSWGraphEqualsBestPath(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sc := bio.DefaultScoring
	for i := 0; i < 60; i++ {
		g := randomSmallDAG(rng)
		// Query derived from a random path.
		paths := allPathSeqs(g)
		base := paths[rng.Intn(len(paths))]
		query := mutate(rng, base, 0.1)
		if len(query) > 64 {
			query = query[:64]
		}
		want := 0
		for _, ps := range paths {
			if s := SmithWaterman(ps, query, sc).Score; s > want {
				want = s
			}
		}
		got, err := GSSW(g, query, sc, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got.Score != want {
			t.Fatalf("case %d: GSSW %d != best path %d", i, got.Score, want)
		}
	}
}

func TestGSSWTracebackRescores(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	sc := bio.DefaultScoring
	for i := 0; i < 60; i++ {
		g := randomSmallDAG(rng)
		paths := allPathSeqs(g)
		query := mutate(rng, paths[rng.Intn(len(paths))], 0.08)
		if len(query) > 64 {
			query = query[:64]
		}
		got, err := GSSW(g, query, sc, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got.Score == 0 {
			continue
		}
		// The path must be a real walk ending at EndNode.
		for k := 1; k < len(got.Path); k++ {
			if !g.HasEdge(got.Path[k-1], got.Path[k]) {
				t.Fatalf("case %d: traceback path %v uses non-edge", i, got.Path)
			}
		}
		if got.Path[len(got.Path)-1] != got.EndNode {
			t.Fatalf("case %d: path end %v != EndNode %v", i, got.Path, got.EndNode)
		}
		// Rescore the CIGAR along the path sequence suffix.
		var refSeq []byte
		for _, id := range got.Path {
			refSeq = append(refSeq, g.Seq(id)...)
		}
		endInPath := len(refSeq) - (len(g.Seq(got.EndNode)) - got.EndOffset)
		refAligned := refSeq[endInPath-got.Cigar.RefLen() : endInPath]
		qAligned := query[got.QueryEnd-got.Cigar.QueryLen() : got.QueryEnd]
		if s := rescore(refAligned, qAligned, got.Cigar, sc); s != got.Score {
			t.Fatalf("case %d: cigar %s rescores to %d, want %d", i, got.Cigar, s, got.Score)
		}
	}
}

func TestGSSWRejectsCyclicGraph(t *testing.T) {
	g := graph.New()
	g.AddNode([]byte("A"))
	g.AddNode([]byte("C"))
	g.AddEdge(1, 2)
	g.AddEdge(2, 1)
	if _, err := GSSW(g, []byte("AC"), bio.DefaultScoring, nil); err == nil {
		t.Fatal("cyclic graph must be rejected")
	}
}

func TestMyers64MatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 100; i++ {
		ref := randSeq(rng, 10+rng.Intn(200))
		query := mutate(rng, ref[rng.Intn(len(ref)/2):], 0.15)
		if len(query) > 64 {
			query = query[:64]
		}
		want := EditDistanceFull(ref, query)
		got, err := Myers64(ref, query, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got.Distance != want.Distance {
			t.Fatalf("case %d: Myers %d != oracle %d (ref %s query %s)",
				i, got.Distance, want.Distance, ref, query)
		}
	}
}

func TestMyers64Bounds(t *testing.T) {
	if _, err := Myers64([]byte("ACGT"), nil, nil); err == nil {
		t.Fatal("empty query must be rejected")
	}
	if _, err := Myers64([]byte("ACGT"), bytes.Repeat([]byte("A"), 65), nil); err == nil {
		t.Fatal("query > 64 must be rejected")
	}
	got, err := Myers64([]byte("ACGT"), bytes.Repeat([]byte("A"), 64), nil)
	if err != nil || got.Distance < 0 {
		t.Fatalf("64-base query: %v %v", got, err)
	}
}

func TestMyersProfileRoundTrip(t *testing.T) {
	f := func(raw []byte, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(64)
		// Build a valid profile: D[0]=0, adjacent deltas in {-1,0,1}.
		p := make([]int, m+1)
		for j := 1; j <= m; j++ {
			p[j] = p[j-1] + rng.Intn(3) - 1
		}
		st := fromProfile(p)
		got := st.profile(m, nil)
		for j := range p {
			if got[j] != p[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// randomGraph may contain cycles (for GBV).
func randomGraph(rng *rand.Rand, allowCycles bool) *graph.Graph {
	g := graph.New()
	n := 3 + rng.Intn(6)
	for i := 0; i < n; i++ {
		g.AddNode(randSeq(rng, 1+rng.Intn(6)))
	}
	for i := 1; i < n; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	for k := 0; k < 3; k++ {
		a := 1 + rng.Intn(n)
		b := 1 + rng.Intn(n)
		if !allowCycles && a >= b {
			continue
		}
		if a != b {
			g.AddEdge(graph.NodeID(a), graph.NodeID(b))
		}
	}
	return g
}

func TestGBVMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 80; i++ {
		g := randomGraph(rng, true)
		query := randSeq(rng, 1+rng.Intn(24))
		want := GraphEditDistance(g, query)
		got, err := GBV(g, query, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got.Distance != want.Distance {
			t.Fatalf("case %d: GBV %d != oracle %d", i, got.Distance, want.Distance)
		}
	}
}

func TestGBVLinearEqualsMyers(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 40; i++ {
		ref := randSeq(rng, 20+rng.Intn(100))
		query := mutate(rng, ref[rng.Intn(len(ref)/2):], 0.1)
		if len(query) > 50 {
			query = query[:50]
		}
		g := linearGraph(ref, 1+rng.Intn(7))
		want, err := Myers64(ref, query, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := GBV(g, query, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got.Distance != want.Distance {
			t.Fatalf("case %d: GBV %d != Myers %d", i, got.Distance, want.Distance)
		}
	}
}

func TestGBVQueryTooLong(t *testing.T) {
	g := linearGraph([]byte("ACGT"), 2)
	if _, err := GBV(g, bytes.Repeat([]byte("A"), 65), nil); err == nil {
		t.Fatal("query > 64 must be rejected")
	}
}

func TestWFAEditMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 80; i++ {
		a := randSeq(rng, 1+rng.Intn(120))
		b := mutate(rng, a, 0.1)
		want := GlobalEditDistance(a, b)
		if got := WFAEdit(a, b, nil); got != want {
			t.Fatalf("case %d: WFA %d != oracle %d (a=%s b=%s)", i, got, want, a, b)
		}
	}
}

func TestWFAEditEdges(t *testing.T) {
	if WFAEdit(nil, []byte("ACG"), nil) != 3 {
		t.Fatal("empty a")
	}
	if WFAEdit([]byte("ACG"), nil, nil) != 3 {
		t.Fatal("empty b")
	}
	if WFAEdit([]byte("ACG"), []byte("ACG"), nil) != 0 {
		t.Fatal("identical")
	}
}

func TestWFAEditProperty(t *testing.T) {
	f := func(s1, s2 int64) bool {
		r1, r2 := rand.New(rand.NewSource(s1)), rand.New(rand.NewSource(s2))
		a, b := randSeq(r1, 1+r1.Intn(50)), randSeq(r2, 1+r2.Intn(50))
		return WFAEdit(a, b, nil) == GlobalEditDistance(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGWFAMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 80; i++ {
		g := randomGraph(rng, true)
		query := randSeq(rng, 1+rng.Intn(24))
		want := GraphEditDistanceFrom(g, 1, query)
		got, err := GWFA(g, 1, query, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got.Distance != want.Distance {
			t.Fatalf("case %d: GWFA %d != oracle %d", i, got.Distance, want.Distance)
		}
	}
}

func TestGWFALinearEqualsEditDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 40; i++ {
		ref := randSeq(rng, 20+rng.Intn(120))
		// Query = prefix of ref with mutations, so the best alignment
		// starts at the ref start (GWFA's fixed start).
		query := mutate(rng, ref[:5+rng.Intn(len(ref)-10)], 0.08)
		g := linearGraph(ref, 1+rng.Intn(9))
		want := GraphEditDistanceFrom(g, 1, query)
		got, err := GWFA(g, 1, query, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got.Distance != want.Distance {
			t.Fatalf("case %d: GWFA %d != oracle %d", i, got.Distance, want.Distance)
		}
	}
}

func TestGWFAInvalidStart(t *testing.T) {
	g := linearGraph([]byte("ACGT"), 2)
	if _, err := GWFA(g, 99, []byte("AC"), nil); err == nil {
		t.Fatal("invalid start must be rejected")
	}
}

func TestPOAIdenticalSequences(t *testing.T) {
	p := NewPOA()
	seq := []byte("ACGTACGTACGT")
	for i := 0; i < 4; i++ {
		if err := p.AddSequence(seq, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.Consensus(); !bytes.Equal(got, seq) {
		t.Fatalf("consensus %s != input %s", got, seq)
	}
	if p.NumNodes() != len(seq) {
		t.Fatalf("identical sequences must not grow the graph: %d nodes", p.NumNodes())
	}
}

func TestPOAConsensusMajority(t *testing.T) {
	p := NewPOA()
	// Three sequences agree, one deviates at a SNP.
	if err := p.AddSequence([]byte("ACGTACGTAC"), nil); err != nil {
		t.Fatal(err)
	}
	if err := p.AddSequence([]byte("ACGTACGTAC"), nil); err != nil {
		t.Fatal(err)
	}
	if err := p.AddSequence([]byte("ACGTTCGTAC"), nil); err != nil {
		t.Fatal(err)
	}
	if err := p.AddSequence([]byte("ACGTACGTAC"), nil); err != nil {
		t.Fatal(err)
	}
	if got := p.Consensus(); !bytes.Equal(got, []byte("ACGTACGTAC")) {
		t.Fatalf("consensus %s, want majority ACGTACGTAC", got)
	}
}

func TestPOAStaysAcyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 20; trial++ {
		p := NewPOA()
		base := randSeq(rng, 30+rng.Intn(40))
		for s := 0; s < 6; s++ {
			seq := mutate(rng, base, 0.15)
			if err := p.AddSequence(seq, nil); err != nil {
				t.Fatal(err)
			}
			if got := len(p.topoOrder()); got != p.NumNodes() {
				t.Fatalf("trial %d seq %d: POA graph has a cycle (%d of %d sorted)",
					trial, s, got, p.NumNodes())
			}
		}
		if len(p.Consensus()) == 0 {
			t.Fatal("empty consensus")
		}
	}
}

func TestPOAEmptySequence(t *testing.T) {
	p := NewPOA()
	if err := p.AddSequence(nil, nil); err == nil {
		t.Fatal("empty sequence must be rejected")
	}
}

func TestPOABandedClosesToUnbanded(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	base := randSeq(rng, 60)
	full := NewPOA()
	banded := NewPOA()
	banded.Band = 20
	for s := 0; s < 5; s++ {
		seq := mutate(rng, base, 0.05)
		if err := full.AddSequence(seq, nil); err != nil {
			t.Fatal(err)
		}
		if err := banded.AddSequence(seq, nil); err != nil {
			t.Fatal(err)
		}
	}
	fc, bc := full.Consensus(), banded.Consensus()
	if d := GlobalEditDistance(fc, bc); d > 5 {
		t.Fatalf("banded consensus diverges: %d edits (full %s banded %s)", d, fc, bc)
	}
}

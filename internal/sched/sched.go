// Package sched is a deterministic multicore makespan simulator used for
// the thread-scaling study (Fig. 5). This reproduction runs on a single
// core, so scaling curves cannot be measured directly; instead each tool's
// workload is described by its measured single-thread task costs and its
// parallel structure (independent tasks, sequential sections, barriers,
// pipelined emission, memory contention), and the simulator computes the
// makespan at each thread count. These are exactly the mechanisms §5.1 uses
// to explain every curve: per-read parallelism and hyperthread contention
// for the mapping tools, a single-threaded Minigraph-cr, seqwish's
// emission-pipeline bottleneck, and PGSGD's memory bottleneck plus
// iteration barriers.
package sched

// Machine models the scaling-relevant parameters of a host.
type Machine struct {
	Name    string
	Cores   int // physical cores across sockets
	Threads int // hardware threads (with hyperthreading)
	// HTYield is the marginal throughput of a hyperthread sharing a core
	// (≈0.3: two hyperthreads ≈ 1.3× one core).
	HTYield float64
	// MemCapThreads caps the effective parallelism of memory-bound work:
	// beyond this many threads the memory system saturates.
	MemCapThreads float64
}

// MachineA is the dual-socket Xeon E5-2697 v3 from Table 5 (2×14 cores,
// 56 hyperthreads) used for the paper's thread-scaling runs.
func MachineA() Machine {
	return Machine{Name: "Machine A", Cores: 28, Threads: 56, HTYield: 0.3, MemCapThreads: 18}
}

// capacity returns the effective core-equivalents of t threads.
func (m Machine) capacity(t int) float64 {
	if t < 1 {
		t = 1
	}
	if t > m.Threads {
		t = m.Threads
	}
	if t <= m.Cores {
		return float64(t)
	}
	return float64(m.Cores) + float64(t-m.Cores)*m.HTYield
}

// Phase is one stage of a workload, executed after a barrier with the
// previous phase.
type Phase struct {
	Name string

	// Tasks are the costs of independent work items (e.g. per-read mapping
	// times), distributed across threads.
	Tasks []float64
	// MemFraction of the task work contends for memory bandwidth and
	// saturates at Machine.MemCapThreads.
	MemFraction float64
	// MaxParallel caps usable threads in this phase (0 = unlimited;
	// 1 = sequential, like Minigraph-cr's single chromosome).
	MaxParallel int

	// Sequential is work that runs on one thread regardless (e.g. the
	// path-index preprocessing of odgi-layout, GFA output generation).
	Sequential float64

	// EmitChunks, when non-empty, models seqwish's latency-hiding pipeline:
	// chunk i's emission (sequential) overlaps chunk i+1's parallel
	// computation, so the phase runs at the pace of whichever is slower.
	// Tasks are then interpreted as per-chunk parallel compute costs, and
	// EmitChunks[i] is chunk i's emission cost.
	EmitChunks []float64
}

// Workload is a named sequence of phases separated by barriers.
type Workload struct {
	Name   string
	Phases []Phase
}

// Simulate returns the makespan of w at the given thread count.
func Simulate(m Machine, w Workload, threads int) float64 {
	total := 0.0
	for _, ph := range w.Phases {
		total += simulatePhase(m, ph, threads)
	}
	return total
}

func simulatePhase(m Machine, ph Phase, threads int) float64 {
	t := threads
	if ph.MaxParallel > 0 && t > ph.MaxParallel {
		t = ph.MaxParallel
	}
	cap := m.capacity(t)

	if len(ph.EmitChunks) > 0 {
		// Pipelined: compute of chunk i+1 overlaps emission of chunk i,
		// but emissions are serialized with each other (§5.1's seqwish
		// analysis).
		n := len(ph.Tasks)
		if len(ph.EmitChunks) < n {
			n = len(ph.EmitChunks)
		}
		var done float64 // time the previous emission finishes
		var computeDone float64
		for i := 0; i < n; i++ {
			computeDone += effectiveCost(m, ph.Tasks[i], ph.MemFraction, t, cap) / cap
			start := computeDone
			if done > start {
				start = done
			}
			done = start + ph.EmitChunks[i]
		}
		return done + ph.Sequential
	}

	var sum, maxTask float64
	for _, c := range ph.Tasks {
		e := effectiveCost(m, c, ph.MemFraction, t, cap)
		sum += e
		if e > maxTask {
			maxTask = e
		}
	}
	// Ideal greedy bound: max(critical task, total/capacity).
	par := sum / cap
	if maxTask > par {
		par = maxTask
	}
	return par + ph.Sequential
}

// effectiveCost inflates the memory-bound portion of a task when the
// thread count exceeds the memory system's saturation point.
func (m Machine) memSlowdown(t int) float64 {
	if float64(t) <= m.MemCapThreads {
		return 1
	}
	return float64(t) / m.MemCapThreads
}

func effectiveCost(m Machine, cost, memFrac float64, t int, _ float64) float64 {
	if memFrac <= 0 {
		return cost
	}
	return cost*(1-memFrac) + cost*memFrac*m.memSlowdown(t)
}

// GrowthStep describes one step of an iterative-growth construction for
// GrowthChain: Tasks are the step's parallelizable map costs (e.g. the
// per-chunk mapping times of one Minigraph-Cactus assembly), Sequential is
// the step's single-threaded share (induction, index extension).
type GrowthStep struct {
	Tasks      []float64
	Sequential float64
}

// GrowthChain models an iterative-growth construction workload (the
// Minigraph-Cactus shape): a sequential chain of steps, each one a phase
// of parallel map tasks followed by sequential induction work, barriered
// against the next step because step i+1 maps against the graph step i
// grew. Parallelism is therefore bounded per step by that step's task
// count, and the sequential share caps the whole chain's speedup — which
// is why MC's curve stays far below the mapping tools' in Fig. 5.
func GrowthChain(name string, steps []GrowthStep, memFrac float64) Workload {
	w := Workload{Name: name}
	for _, st := range steps {
		w.Phases = append(w.Phases, Phase{
			Name:        "grow",
			Tasks:       st.Tasks,
			MemFraction: memFrac,
			Sequential:  st.Sequential,
		})
	}
	return w
}

// Speedups returns the makespan-derived speedups at each thread count,
// relative to the first entry (Fig. 5 normalizes to 4 threads).
func Speedups(m Machine, w Workload, threadCounts []int) []float64 {
	if len(threadCounts) == 0 {
		return nil
	}
	base := Simulate(m, w, threadCounts[0])
	out := make([]float64, len(threadCounts))
	for i, t := range threadCounts {
		s := Simulate(m, w, t)
		if s > 0 {
			out[i] = base / s
		}
	}
	return out
}

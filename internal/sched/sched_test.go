package sched

import (
	"math/rand"
	"testing"
)

func uniformTasks(n int, cost float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = cost
	}
	return out
}

func TestEmbarrassinglyParallelScalesToCoresThenFlattens(t *testing.T) {
	m := MachineA()
	w := Workload{Name: "map", Phases: []Phase{{Tasks: uniformTasks(10000, 1)}}}
	s := Speedups(m, w, []int{4, 14, 28, 56})
	// Near-linear up to 28 cores relative to 4 threads.
	if s[0] != 1 {
		t.Fatalf("baseline speedup %v", s[0])
	}
	if s[2] < 6.5 || s[2] > 7.1 {
		t.Fatalf("28-thread speedup %.2f, want ≈ 7 (28/4)", s[2])
	}
	// Hyperthreading adds less than linear (paper: scaling drops at 56).
	if s[3] <= s[2] || s[3] > 10 {
		t.Fatalf("56-thread speedup %.2f out of hyperthread range (>%0.2f, <10)", s[3], s[2])
	}
}

func TestSequentialSectionLimitsScaling(t *testing.T) {
	m := MachineA()
	// 50% sequential: Amdahl caps speedup at 2 relative to infinite threads.
	w := Workload{Phases: []Phase{{Tasks: uniformTasks(100, 1), Sequential: 100}}}
	s1 := Simulate(m, w, 1)
	s56 := Simulate(m, w, 56)
	if s1/s56 > 2 {
		t.Fatalf("speedup %.2f exceeds Amdahl bound 2", s1/s56)
	}
}

func TestMaxParallelOne(t *testing.T) {
	m := MachineA()
	// Minigraph-cr: single-threaded regardless of thread count.
	w := Workload{Phases: []Phase{{Tasks: uniformTasks(10, 5), MaxParallel: 1}}}
	if Simulate(m, w, 1) != Simulate(m, w, 56) {
		t.Fatal("MaxParallel=1 workload must not scale")
	}
}

func TestMemoryBoundSaturates(t *testing.T) {
	m := MachineA()
	mem := Workload{Phases: []Phase{{Tasks: uniformTasks(10000, 1), MemFraction: 0.9}}}
	cpu := Workload{Phases: []Phase{{Tasks: uniformTasks(10000, 1)}}}
	sMem := Speedups(m, mem, []int{4, 28})
	sCPU := Speedups(m, cpu, []int{4, 28})
	if sMem[1] >= sCPU[1] {
		t.Fatalf("memory-bound workload must scale worse: %.2f vs %.2f", sMem[1], sCPU[1])
	}
}

func TestPipelinedEmissionPlateaus(t *testing.T) {
	m := MachineA()
	// seqwish-like: parallel chunk compute overlapped with sequential
	// emission. Once compute is fast enough, emission dominates and more
	// threads stop helping (§5.1).
	chunks := 50
	w := Workload{Phases: []Phase{{
		Tasks:      uniformTasks(chunks, 8),
		EmitChunks: uniformTasks(chunks, 2),
	}}}
	s := Speedups(m, w, []int{1, 4, 8, 16, 56})
	// Scaling from 1→4 should be decent, 16→56 negligible.
	if s[1] < 2 {
		t.Fatalf("1→4 speedup %.2f too low", s[1])
	}
	if s[4]/s[3] > 1.15 {
		t.Fatalf("16→56 should plateau, got %.2f → %.2f", s[3], s[4])
	}
}

func TestBarriersAddPhases(t *testing.T) {
	m := MachineA()
	one := Workload{Phases: []Phase{{Tasks: uniformTasks(100, 1)}}}
	two := Workload{Phases: []Phase{
		{Tasks: uniformTasks(50, 1)},
		{Tasks: uniformTasks(50, 1)},
	}}
	// Same total work split across barriers can never be faster.
	for _, th := range []int{1, 7, 28} {
		if Simulate(m, two, th) < Simulate(m, one, th)-1e-9 {
			t.Fatalf("barriered workload faster at %d threads", th)
		}
	}
}

func TestStragglerBoundsMakespan(t *testing.T) {
	m := MachineA()
	rng := rand.New(rand.NewSource(1))
	tasks := make([]float64, 100)
	for i := range tasks {
		tasks[i] = rng.Float64()
	}
	tasks[0] = 1000 // one giant task
	w := Workload{Phases: []Phase{{Tasks: tasks}}}
	if got := Simulate(m, w, 56); got < 1000 {
		t.Fatalf("makespan %.1f below critical path 1000", got)
	}
}

func TestCapacityModel(t *testing.T) {
	m := MachineA()
	if m.capacity(1) != 1 || m.capacity(28) != 28 {
		t.Fatal("sub-core capacity must be linear")
	}
	if c := m.capacity(56); c <= 28 || c >= 56 {
		t.Fatalf("hyperthread capacity %.1f out of (28,56)", c)
	}
	if m.capacity(100) != m.capacity(56) {
		t.Fatal("capacity must clamp at hardware threads")
	}
	if m.capacity(0) != 1 {
		t.Fatal("zero threads clamps to 1")
	}
}

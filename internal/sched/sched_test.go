package sched

import (
	"math/rand"
	"testing"
)

func uniformTasks(n int, cost float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = cost
	}
	return out
}

func TestEmbarrassinglyParallelScalesToCoresThenFlattens(t *testing.T) {
	m := MachineA()
	w := Workload{Name: "map", Phases: []Phase{{Tasks: uniformTasks(10000, 1)}}}
	s := Speedups(m, w, []int{4, 14, 28, 56})
	// Near-linear up to 28 cores relative to 4 threads.
	if s[0] != 1 {
		t.Fatalf("baseline speedup %v", s[0])
	}
	if s[2] < 6.5 || s[2] > 7.1 {
		t.Fatalf("28-thread speedup %.2f, want ≈ 7 (28/4)", s[2])
	}
	// Hyperthreading adds less than linear (paper: scaling drops at 56).
	if s[3] <= s[2] || s[3] > 10 {
		t.Fatalf("56-thread speedup %.2f out of hyperthread range (>%0.2f, <10)", s[3], s[2])
	}
}

func TestSequentialSectionLimitsScaling(t *testing.T) {
	m := MachineA()
	// 50% sequential: Amdahl caps speedup at 2 relative to infinite threads.
	w := Workload{Phases: []Phase{{Tasks: uniformTasks(100, 1), Sequential: 100}}}
	s1 := Simulate(m, w, 1)
	s56 := Simulate(m, w, 56)
	if s1/s56 > 2 {
		t.Fatalf("speedup %.2f exceeds Amdahl bound 2", s1/s56)
	}
}

func TestMaxParallelOne(t *testing.T) {
	m := MachineA()
	// Minigraph-cr: single-threaded regardless of thread count.
	w := Workload{Phases: []Phase{{Tasks: uniformTasks(10, 5), MaxParallel: 1}}}
	if Simulate(m, w, 1) != Simulate(m, w, 56) {
		t.Fatal("MaxParallel=1 workload must not scale")
	}
}

func TestMemoryBoundSaturates(t *testing.T) {
	m := MachineA()
	mem := Workload{Phases: []Phase{{Tasks: uniformTasks(10000, 1), MemFraction: 0.9}}}
	cpu := Workload{Phases: []Phase{{Tasks: uniformTasks(10000, 1)}}}
	sMem := Speedups(m, mem, []int{4, 28})
	sCPU := Speedups(m, cpu, []int{4, 28})
	if sMem[1] >= sCPU[1] {
		t.Fatalf("memory-bound workload must scale worse: %.2f vs %.2f", sMem[1], sCPU[1])
	}
}

func TestPipelinedEmissionPlateaus(t *testing.T) {
	m := MachineA()
	// seqwish-like: parallel chunk compute overlapped with sequential
	// emission. Once compute is fast enough, emission dominates and more
	// threads stop helping (§5.1).
	chunks := 50
	w := Workload{Phases: []Phase{{
		Tasks:      uniformTasks(chunks, 8),
		EmitChunks: uniformTasks(chunks, 2),
	}}}
	s := Speedups(m, w, []int{1, 4, 8, 16, 56})
	// Scaling from 1→4 should be decent, 16→56 negligible.
	if s[1] < 2 {
		t.Fatalf("1→4 speedup %.2f too low", s[1])
	}
	if s[4]/s[3] > 1.15 {
		t.Fatalf("16→56 should plateau, got %.2f → %.2f", s[3], s[4])
	}
}

func TestBarriersAddPhases(t *testing.T) {
	m := MachineA()
	one := Workload{Phases: []Phase{{Tasks: uniformTasks(100, 1)}}}
	two := Workload{Phases: []Phase{
		{Tasks: uniformTasks(50, 1)},
		{Tasks: uniformTasks(50, 1)},
	}}
	// Same total work split across barriers can never be faster.
	for _, th := range []int{1, 7, 28} {
		if Simulate(m, two, th) < Simulate(m, one, th)-1e-9 {
			t.Fatalf("barriered workload faster at %d threads", th)
		}
	}
}

func TestStragglerBoundsMakespan(t *testing.T) {
	m := MachineA()
	rng := rand.New(rand.NewSource(1))
	tasks := make([]float64, 100)
	for i := range tasks {
		tasks[i] = rng.Float64()
	}
	tasks[0] = 1000 // one giant task
	w := Workload{Phases: []Phase{{Tasks: tasks}}}
	if got := Simulate(m, w, 56); got < 1000 {
		t.Fatalf("makespan %.1f below critical path 1000", got)
	}
}

func TestGrowthChain(t *testing.T) {
	m := MachineA()
	// An MC-like chain: each step has a handful of parallel chunk-map tasks
	// plus a sequential induction share.
	steps := make([]GrowthStep, 8)
	for i := range steps {
		steps[i] = GrowthStep{Tasks: uniformTasks(6, 3), Sequential: 4}
	}
	w := GrowthChain("MC-growth", steps, 0.25)
	if w.Name != "MC-growth" || len(w.Phases) != len(steps) {
		t.Fatalf("chain shape wrong: %q with %d phases", w.Name, len(w.Phases))
	}
	s := Speedups(m, w, []int{4, 8, 28, 56})
	// Per-step parallelism is capped by the 6 tasks of a step, and the
	// sequential share caps the chain (Amdahl: ≤ (18+4)/(3+4) ≈ 3.14 over
	// the 1-thread makespan, much less relative to 4 threads) — the curve
	// must stay far below ideal 28/4 = 7 scaling.
	if s[2] >= 3 {
		t.Fatalf("28-thread growth-chain speedup %.2f too high for 6-task steps with a sequential share", s[2])
	}
	// Threads under the per-step task count still help…
	if s[1] <= 1 {
		t.Fatalf("4→8 threads gave no speedup: %v", s)
	}
	// …but past memory saturation the memory-bound critical task inflates,
	// so hyperthreads must not beat the 28-core point (the Fig. 5 dip).
	if s[3] > s[2] {
		t.Fatalf("56-thread speedup %.2f beats 28-thread %.2f despite memory saturation", s[3], s[2])
	}
	// A chain with larger sequential shares scales strictly worse.
	seq := make([]GrowthStep, 8)
	for i := range seq {
		seq[i] = GrowthStep{Tasks: uniformTasks(6, 3), Sequential: 30}
	}
	sSeq := Speedups(m, GrowthChain("seq-heavy", seq, 0.25), []int{4, 28})
	if sSeq[1] >= s[2] {
		t.Fatalf("sequential-heavy chain scales no worse: %.2f vs %.2f", sSeq[1], s[2])
	}
}

func TestCapacityModel(t *testing.T) {
	m := MachineA()
	if m.capacity(1) != 1 || m.capacity(28) != 28 {
		t.Fatal("sub-core capacity must be linear")
	}
	if c := m.capacity(56); c <= 28 || c >= 56 {
		t.Fatalf("hyperthread capacity %.1f out of (28,56)", c)
	}
	if m.capacity(100) != m.capacity(56) {
		t.Fatal("capacity must clamp at hardware threads")
	}
	if m.capacity(0) != 1 {
		t.Fatal("zero threads clamps to 1")
	}
}

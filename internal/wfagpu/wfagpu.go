// Package wfagpu implements TSU (Tsunami, the paper's [19]): a GPU
// wavefront-algorithm aligner run on the simt simulator. One 32-thread
// block is allocated per alignment. In the Next step each diagonal is
// assigned to a thread; in the Extend step the whole warp speculatively
// processes 32 cells of one diagonal at a time, so diagonals with few
// matches waste lanes — the control divergence that §5.3 identifies as
// TSU's bottleneck ("74% of diagonals use only a single thread" at 10 kb).
package wfagpu

import (
	"fmt"

	"pangenomicsbench/internal/bio"
	"pangenomicsbench/internal/simt"
)

// RegsPerThread is TSU's modeled register footprint. With 32-thread blocks
// the block-per-SM cap (not registers) limits occupancy to 16/48 ≈ 33%.
const RegsPerThread = 40

// Pair is one alignment problem.
type Pair struct {
	A, B []byte
}

// Stats reports a TSU run.
type Stats struct {
	Metrics simt.Metrics
	// Distances holds the edit distance of each pair, so correctness is
	// checkable against the CPU WFA.
	Distances []int
	// SingleLaneFrac is the fraction of extend operations that used only
	// one useful lane of the warp (§5.3's divergence measure).
	SingleLaneFrac float64
	TotalExtends   uint64
}

// Align aligns all pairs on the device, one block per pair.
func Align(dev simt.Device, pairs []Pair) (Stats, error) {
	if len(pairs) == 0 {
		return Stats{}, fmt.Errorf("wfagpu: no pairs")
	}
	st := Stats{Distances: make([]int, len(pairs))}
	var singleLane, totalExtends uint64

	spec := simt.KernelSpec{
		Name:            "tsunami",
		Blocks:          len(pairs),
		ThreadsPerBlock: simt.WarpSize,
		RegsPerThread:   RegsPerThread,
	}
	run := func(blk *simt.Block) {
		p := pairs[blk.ID]
		warp := blk.Warp(0)
		d, sl, te := alignOne(warp, p.A, p.B)
		st.Distances[blk.ID] = d
		singleLane += sl
		totalExtends += te
	}
	m, err := simt.Run(dev, spec, run)
	if err != nil {
		return Stats{}, err
	}
	st.Metrics = m
	st.TotalExtends = totalExtends
	if totalExtends > 0 {
		st.SingleLaneFrac = float64(singleLane) / float64(totalExtends)
	}
	return st, nil
}

// alignOne runs the WFA loop for one pair, issuing warp operations that
// mirror TSU's execution.
func alignOne(warp *simt.Warp, a, b []byte) (dist int, singleLane, totalExtends uint64) {
	n, m := len(a), len(b)
	if n == 0 {
		return m, 0, 0
	}
	if m == 0 {
		return n, 0, 0
	}
	ca, cb := bio.Encode2Bit(a), bio.Encode2Bit(b)
	goalK := n - m
	biasK := m
	cur := make([]int, n+m+1)
	next := make([]int, n+m+1)
	for i := range cur {
		cur[i] = -1
	}
	lo, hi := 0, 0
	cur[biasK] = 0

	seqBase := uint64(1 << 22)
	wfBase := uint64(1 << 24)

	extend := func(k int) {
		i := cur[k+biasK]
		j := i - k
		matched := 0
		for i < n && j < m && ca[i] == cb[j] {
			i++
			j++
			matched++
		}
		cur[k+biasK] = i
		// Warp execution: 32 lanes speculate 32 cells per round; the last
		// round's useful lanes are matched%32 + 1 (the mismatch detector).
		totalExtends++
		if matched == 0 {
			singleLane++
		}
		rounds := matched/simt.WarpSize + 1
		for r := 0; r < rounds; r++ {
			base := r * simt.WarpSize
			useful := matched - base
			if useful > simt.WarpSize {
				useful = simt.WarpSize
			} else {
				useful++ // the lane that discovers the mismatch / boundary
				if useful > simt.WarpSize {
					useful = simt.WarpSize
				}
			}
			mask := maskOf(useful)
			// Coalesced reads of both sequences.
			var addrsA, addrsB [simt.WarpSize]uint64
			for l := 0; l < simt.WarpSize; l++ {
				addrsA[l] = seqBase + uint64(i-matched+base+l)
				addrsB[l] = seqBase + (1 << 20) + uint64(j-matched+base+l)
			}
			warp.MemDep(simt.FullMask, &addrsA, 1) // speculative full-warp loads
			warp.MemDep(simt.FullMask, &addrsB, 1)
			warp.Exec(mask, 3)          // per-lane compare
			warp.Exec(simt.FullMask, 6) // ballot, first-set scan, sync
		}
	}

	for s := 0; ; s++ {
		for k := lo; k <= hi; k++ {
			if cur[k+biasK] >= 0 {
				extend(k)
			}
		}
		if goalK >= lo && goalK <= hi && cur[goalK+biasK] >= n {
			return s, singleLane, totalExtends
		}
		// Next step: one diagonal per thread, chunked by warp width.
		nlo, nhi := lo-1, hi+1
		if nlo < -m {
			nlo = -m
		}
		if nhi > n {
			nhi = n
		}
		numDiag := nhi - nlo + 1
		for base := 0; base < numDiag; base += simt.WarpSize {
			active := numDiag - base
			if active > simt.WarpSize {
				active = simt.WarpSize
			}
			var addrs [simt.WarpSize]uint64
			for l := 0; l < active; l++ {
				addrs[l] = wfBase + uint64((nlo+base+l+biasK)*4)
			}
			warp.MemDep(maskOf(active), &addrs, 4) // coalesced wavefront read
			warp.Exec(maskOf(active), 6)           // three-way max + clamp
			warp.Exec(simt.FullMask, 4)            // bounds broadcast + sync
			// Write back the three wavefront families (M/I/D) to global
			// memory.
			var wAddrs [simt.WarpSize]uint64
			for f := 0; f < 3; f++ {
				for l := 0; l < active; l++ {
					wAddrs[l] = wfBase + uint64(f)<<18 + uint64((nlo+base+l+biasK)*4)
				}
				warp.Mem(maskOf(active), &wAddrs, 4)
			}
		}
		for k := nlo; k <= nhi; k++ {
			best := -1
			if k-1 >= lo && k-1 <= hi && cur[k-1+biasK] >= 0 {
				best = cur[k-1+biasK] + 1
			}
			if k >= lo && k <= hi && cur[k+biasK] >= 0 && cur[k+biasK]+1 > best {
				best = cur[k+biasK] + 1
			}
			if k+1 >= lo && k+1 <= hi && cur[k+1+biasK] >= 0 && cur[k+1+biasK] > best {
				best = cur[k+1+biasK]
			}
			if best > n {
				best = n
			}
			if best >= 0 && best-k > m {
				best = m + k
			}
			if best >= 0 && best-k < 0 {
				best = -1
			}
			next[k+biasK] = best
		}
		lo, hi = nlo, nhi
		cur, next = next, cur
	}
}

func maskOf(lanes int) uint32 {
	if lanes >= simt.WarpSize {
		return simt.FullMask
	}
	return (1 << uint(lanes)) - 1
}

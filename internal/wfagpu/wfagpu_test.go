package wfagpu

import (
	"math/rand"
	"testing"

	"pangenomicsbench/internal/align"
	"pangenomicsbench/internal/simt"
)

func randSeq(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = "ACGT"[rng.Intn(4)]
	}
	return s
}

func mutate(rng *rand.Rand, seq []byte, rate float64) []byte {
	var out []byte
	for _, b := range seq {
		r := rng.Float64()
		switch {
		case r < rate/3:
			out = append(out, "ACGT"[rng.Intn(4)])
		case r < 2*rate/3:
		case r < rate:
			out = append(out, b, "ACGT"[rng.Intn(4)])
		default:
			out = append(out, b)
		}
	}
	if len(out) == 0 {
		out = []byte{'A'}
	}
	return out
}

func makePairs(rng *rand.Rand, count, length int, errRate float64) []Pair {
	pairs := make([]Pair, count)
	for i := range pairs {
		a := randSeq(rng, length)
		pairs[i] = Pair{A: a, B: mutate(rng, a, errRate)}
	}
	return pairs
}

func TestDistancesMatchCPUWFA(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pairs := makePairs(rng, 30, 200, 0.05)
	st, err := Align(simt.A6000(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pairs {
		want := align.WFAEdit(p.A, p.B, nil)
		if st.Distances[i] != want {
			t.Fatalf("pair %d: TSU distance %d != CPU WFA %d", i, st.Distances[i], want)
		}
	}
}

func TestOccupancyIsBlockLimited(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pairs := makePairs(rng, 64, 128, 0.01)
	st, err := Align(simt.A6000(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table 7: TSU occupancy ≈ 33% (block-size limited).
	if st.Metrics.TheoreticalOccupancy < 0.33 || st.Metrics.TheoreticalOccupancy > 0.34 {
		t.Fatalf("occupancy %.3f, want ≈ 0.333", st.Metrics.TheoreticalOccupancy)
	}
}

// TestDivergenceGrowsWithLength reproduces the §5.3 observation: at 10 kb,
// most extend steps use a single lane; at 128 bp almost none do.
func TestDivergenceGrowsWithLength(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	short, err := Align(simt.A6000(), makePairs(rng, 8, 128, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	long, err := Align(simt.A6000(), makePairs(rng, 4, 10000, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	if long.SingleLaneFrac <= short.SingleLaneFrac+0.1 {
		t.Fatalf("single-lane fraction must grow clearly with read length: short %.3f long %.3f",
			short.SingleLaneFrac, long.SingleLaneFrac)
	}
	if long.SingleLaneFrac < 0.6 {
		t.Fatalf("10 kb single-lane fraction %.3f, expected the paper's ~0.74 regime", long.SingleLaneFrac)
	}
	if long.Metrics.WarpUtilization >= short.Metrics.WarpUtilization {
		t.Fatal("long reads must lower warp utilization")
	}
}

func TestAlignValidation(t *testing.T) {
	if _, err := Align(simt.A6000(), nil); err == nil {
		t.Fatal("empty pair list must be rejected")
	}
	// Degenerate pairs.
	st, err := Align(simt.A6000(), []Pair{{A: nil, B: []byte("ACG")}, {A: []byte("AC"), B: nil}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Distances[0] != 3 || st.Distances[1] != 2 {
		t.Fatalf("degenerate distances %v", st.Distances)
	}
}

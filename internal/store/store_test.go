package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"pangenomicsbench/internal/binio"
)

func testSections() []Section {
	return []Section{
		{Name: SectionMeta, Data: []byte("meta-blob")},
		{Name: SectionGraph, Data: bytes.Repeat([]byte{0xAB, 0xCD}, 300)},
		{Name: SectionGraphIndex, Data: []byte{}},
	}
}

func TestSectionsRoundTrip(t *testing.T) {
	in := testSections()
	image, err := EncodeSections(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeSections(image)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d sections, want %d", len(out), len(in))
	}
	for _, s := range in {
		if !bytes.Equal(out[s.Name], s.Data) {
			t.Errorf("section %q: %q != %q", s.Name, out[s.Name], s.Data)
		}
	}
}

// TestFormatErrors is the versioning/corruption acceptance test: every
// malformed image fails with a typed error — never a silent garbage decode.
func TestFormatErrors(t *testing.T) {
	image, err := EncodeSections(testSections())
	if err != nil {
		t.Fatal(err)
	}

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte{}, image...)
		copy(bad, "NOTSTORE")
		if _, err := DecodeSections(bad); !errors.Is(err, ErrMagic) {
			t.Fatalf("err = %v, want ErrMagic", err)
		}
	})
	t.Run("unknown version", func(t *testing.T) {
		bad := append([]byte{}, image...)
		copy(bad[8:], binio.AppendU32(nil, FormatVersion+7))
		if _, err := DecodeSections(bad); !errors.Is(err, ErrVersion) {
			t.Fatalf("err = %v, want ErrVersion", err)
		}
	})
	t.Run("flipped blob byte", func(t *testing.T) {
		bad := append([]byte{}, image...)
		bad[len(bad)-1] ^= 0xFF // inside the last section's blob
		if _, err := DecodeSections(bad); !errors.Is(err, ErrChecksum) {
			t.Fatalf("err = %v, want ErrChecksum", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{len(image) - 1, len(image) / 2, headerSize + 3, 4, 0} {
			_, err := DecodeSections(image[:cut])
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrMagic) {
				t.Fatalf("truncate to %d: err = %v, want a typed format error", cut, err)
			}
		}
	})
	t.Run("implausible count", func(t *testing.T) {
		bad := append([]byte{}, image...)
		copy(bad[12:], binio.AppendU32(nil, 1<<30))
		if _, err := DecodeSections(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("encode rejects long names", func(t *testing.T) {
		if _, err := EncodeSections([]Section{{Name: "WAYTOOLONGNAME"}}); err == nil {
			t.Fatal("9+ byte section name accepted")
		}
		if _, err := EncodeSections(nil); err == nil {
			t.Fatal("empty section list accepted")
		}
	})
}

func TestDirPublishLoadRetention(t *testing.T) {
	dir, err := Open(filepath.Join(t.TempDir(), "snapshots"), Options{Retain: 2})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := dir.Current(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Current on empty store = %v, want ErrEmpty", err)
	}
	if _, _, err := dir.LoadCurrent(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("LoadCurrent on empty store = %v, want ErrEmpty", err)
	}

	var images [][]byte
	for i := 0; i < 5; i++ {
		image, err := EncodeSections([]Section{{Name: SectionMeta, Data: []byte{byte(i), 0xEE}}})
		if err != nil {
			t.Fatal(err)
		}
		images = append(images, image)
		gen, err := dir.Publish(image)
		if err != nil {
			t.Fatal(err)
		}
		if gen != uint64(i+1) {
			t.Fatalf("publish %d: generation %d, want %d", i, gen, i+1)
		}
	}

	// CURRENT points at the newest; its content round-trips.
	gen, secs, err := dir.LoadCurrent()
	if err != nil {
		t.Fatal(err)
	}
	if gen != 5 {
		t.Fatalf("current generation %d, want 5", gen)
	}
	if !bytes.Equal(secs[SectionMeta], []byte{4, 0xEE}) {
		t.Fatalf("current META = %v", secs[SectionMeta])
	}

	// Retain=2 keeps only the newest two generations.
	gens, err := dir.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 || gens[0] != 4 || gens[1] != 5 {
		t.Fatalf("retained generations %v, want [4 5]", gens)
	}
	if _, err := dir.Load(1); err == nil {
		t.Fatal("collected generation still loads")
	}

	// No staging temp dirs survive a publish.
	entries, err := os.ReadDir(dir.Path())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if len(e.Name()) > 4 && e.Name()[:4] == ".tmp" {
			t.Errorf("leftover staging dir %s", e.Name())
		}
	}
}

// TestDirCorruptGeneration: a flipped byte inside a published snapshot file
// is caught at load time by the section CRC.
func TestDirCorruptGeneration(t *testing.T) {
	dir, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	image, err := EncodeSections(testSections())
	if err != nil {
		t.Fatal(err)
	}
	gen, err := dir.Publish(image)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir.Path(), genName(gen), snapshotFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := dir.Load(gen); !errors.Is(err, ErrChecksum) {
		t.Fatalf("load of corrupted generation = %v, want ErrChecksum", err)
	}
}

func TestWALAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")

	// Missing file replays as empty.
	recs, torn, err := ReplayWAL(path)
	if err != nil || torn || len(recs) != 0 {
		t.Fatalf("missing wal: recs=%d torn=%v err=%v", len(recs), torn, err)
	}

	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{[]byte("one"), {}, bytes.Repeat([]byte{7}, 500)}
	for _, p := range payloads {
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("after close")); err == nil {
		t.Fatal("append after close accepted")
	}

	recs, torn, err = ReplayWAL(path)
	if err != nil || torn {
		t.Fatalf("replay: torn=%v err=%v", torn, err)
	}
	if len(recs) != len(payloads) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(payloads))
	}
	for i, p := range payloads {
		if !bytes.Equal(recs[i], p) {
			t.Errorf("record %d = %q, want %q", i, recs[i], p)
		}
	}

	// Appends continue across reopen (O_APPEND).
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append([]byte("four")); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	recs, _, _ = ReplayWAL(path)
	if len(recs) != 4 || string(recs[3]) != "four" {
		t.Fatalf("after reopen: %d records, last %q", len(recs), recs[len(recs)-1])
	}
}

// TestWALTornTail: a crash mid-append leaves a partial frame; replay keeps
// everything before it and reports torn.
func TestWALTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("intact-1")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("intact-2")); err != nil {
		t.Fatal(err)
	}
	w.Close()

	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, tail := range [][]byte{
		{0x05},                    // partial length field
		binio.AppendU32(nil, 100), // length without payload
		append(binio.AppendU32(binio.AppendU32(nil, 4), 0xBAD), 'x', 'y', 'z', 'w'), // wrong CRC
	} {
		if err := os.WriteFile(path, append(append([]byte{}, whole...), tail...), 0o644); err != nil {
			t.Fatal(err)
		}
		recs, torn, err := ReplayWAL(path)
		if err != nil {
			t.Fatal(err)
		}
		if !torn {
			t.Errorf("tail %v: torn not reported", tail)
		}
		if len(recs) != 2 || string(recs[0]) != "intact-1" || string(recs[1]) != "intact-2" {
			t.Errorf("tail %v: intact prefix lost: %q", tail, recs)
		}
	}
}

// Package store is the durability layer under the serving stack: versioned
// flat binary snapshot files (see format.go), a generation-directory
// snapshot store with atomic-rename publication, and a write-ahead log of
// accepted build requests. It exists so a restarted process serves the last
// published graph+index generation in milliseconds instead of re-running
// the O(n²) construction the paper shows dominates wall-clock — the same
// reason production pangenome pipelines persist and reuse their indexes.
//
// Publication follows the LevelDB/Badger manifest idiom: a generation is
// staged in a temp directory, fsynced, renamed to generation-NNNNNN, and
// only then does the CURRENT pointer file swap to it (itself via
// write-tmp + rename + fsync), so readers either see the previous complete
// generation or the new complete generation — never a torn one. The last K
// generations are retained; older ones are garbage-collected after the
// pointer swap.
package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrEmpty reports a store with no published generation yet.
var ErrEmpty = fmt.Errorf("store: no published generation")

const (
	currentFile  = "CURRENT"
	genPrefix    = "generation-"
	snapshotFile = "snapshot.pgs"
)

// Options parameterizes a Dir.
type Options struct {
	// Retain keeps the newest K generations on disk (the current one always
	// counts); ≤0 uses 4.
	Retain int
}

// Dir is one snapshot store directory. All methods are safe for concurrent
// use within a process; cross-process publication safety comes from the
// atomic rename + CURRENT swap protocol.
type Dir struct {
	path   string
	retain int
	mu     sync.Mutex
}

// Open creates (if needed) and opens a store directory.
func Open(path string, opts Options) (*Dir, error) {
	if opts.Retain <= 0 {
		opts.Retain = 4
	}
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", path, err)
	}
	return &Dir{path: path, retain: opts.Retain}, nil
}

// Path returns the store's root directory.
func (d *Dir) Path() string { return d.path }

// genName formats a generation directory name.
func genName(gen uint64) string { return fmt.Sprintf("%s%06d", genPrefix, gen) }

// parseGen extracts the generation number from a directory name.
func parseGen(name string) (uint64, bool) {
	if !strings.HasPrefix(name, genPrefix) {
		return 0, false
	}
	var gen uint64
	if _, err := fmt.Sscanf(name[len(genPrefix):], "%d", &gen); err != nil {
		return 0, false
	}
	return gen, true
}

// Generations lists the published generation numbers, ascending.
func (d *Dir) Generations() ([]uint64, error) {
	entries, err := os.ReadDir(d.path)
	if err != nil {
		return nil, fmt.Errorf("store: list %s: %w", d.path, err)
	}
	var gens []uint64
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if gen, ok := parseGen(e.Name()); ok {
			gens = append(gens, gen)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// Publish writes one encoded snapshot file image (EncodeSections output) as
// the next generation and swaps CURRENT to it. Returns the generation
// number. The image is fully durable (file and directories fsynced) before
// the pointer swap; a crash at any point leaves CURRENT on a complete
// generation.
func (d *Dir) Publish(image []byte) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()

	gens, err := d.Generations()
	if err != nil {
		return 0, err
	}
	gen := uint64(1)
	if n := len(gens); n > 0 {
		gen = gens[n-1] + 1
	}

	// Stage: tmp dir + snapshot file, both fsynced before the rename.
	tmp, err := os.MkdirTemp(d.path, ".tmp-"+genName(gen)+"-")
	if err != nil {
		return 0, fmt.Errorf("store: stage generation %d: %w", gen, err)
	}
	defer os.RemoveAll(tmp) // no-op after a successful rename
	if err := writeFileSync(filepath.Join(tmp, snapshotFile), image); err != nil {
		return 0, err
	}
	if err := syncDir(tmp); err != nil {
		return 0, err
	}
	final := filepath.Join(d.path, genName(gen))
	if err := os.Rename(tmp, final); err != nil {
		return 0, fmt.Errorf("store: publish generation %d: %w", gen, err)
	}
	if err := syncDir(d.path); err != nil {
		return 0, err
	}

	// Pointer swap: CURRENT names the new generation, atomically.
	if err := d.writeCurrent(gen); err != nil {
		return 0, err
	}
	d.collect(gen)
	return gen, nil
}

// writeCurrent atomically points CURRENT at gen.
func (d *Dir) writeCurrent(gen uint64) error {
	tmp := filepath.Join(d.path, currentFile+".tmp")
	if err := writeFileSync(tmp, []byte(genName(gen)+"\n")); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(d.path, currentFile)); err != nil {
		return fmt.Errorf("store: swap CURRENT to generation %d: %w", gen, err)
	}
	return syncDir(d.path)
}

// collect removes generations older than the newest retain (best effort —
// a failed removal is retried implicitly on the next publish).
func (d *Dir) collect(newest uint64) {
	gens, err := d.Generations()
	if err != nil {
		return
	}
	for _, g := range gens {
		if g+uint64(d.retain) <= newest {
			_ = os.RemoveAll(filepath.Join(d.path, genName(g)))
		}
	}
}

// Current returns the generation CURRENT points at, or ErrEmpty.
func (d *Dir) Current() (uint64, error) {
	raw, err := os.ReadFile(filepath.Join(d.path, currentFile))
	if os.IsNotExist(err) {
		return 0, ErrEmpty
	}
	if err != nil {
		return 0, fmt.Errorf("store: read CURRENT: %w", err)
	}
	name := strings.TrimSpace(string(raw))
	gen, ok := parseGen(name)
	if !ok {
		return 0, fmt.Errorf("%w: CURRENT names %q, want %sNNNNNN", ErrCorrupt, name, genPrefix)
	}
	return gen, nil
}

// SnapshotPath returns the snapshot file path of a generation.
func (d *Dir) SnapshotPath(gen uint64) string {
	return filepath.Join(d.path, genName(gen), snapshotFile)
}

// Load reads and verifies one generation's snapshot file.
func (d *Dir) Load(gen uint64) (map[string][]byte, error) {
	return ReadSectionFile(d.SnapshotPath(gen))
}

// LoadCurrent reads and verifies the generation CURRENT points at.
func (d *Dir) LoadCurrent() (uint64, map[string][]byte, error) {
	gen, err := d.Current()
	if err != nil {
		return 0, nil, err
	}
	secs, err := d.Load(gen)
	if err != nil {
		return 0, nil, err
	}
	return gen, secs, nil
}

// writeFileSync writes data and fsyncs the file before closing it.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: create %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: sync %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: close %s: %w", path, err)
	}
	return nil
}

// syncDir fsyncs a directory so renames and creates within it are durable.
func syncDir(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: open dir %s: %w", path, err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: sync dir %s: %w", path, err)
	}
	return nil
}

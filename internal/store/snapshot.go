package store

import (
	"fmt"

	"pangenomicsbench/internal/binio"
	"pangenomicsbench/internal/gbwt"
	"pangenomicsbench/internal/graph"
	"pangenomicsbench/internal/minimizer"
)

// SnapshotData is the persisted form of one serving snapshot: the graph,
// the mapping tool's precomputed minimizer index, the GBWT haplotype index
// when the tool uses one (Giraffe), and the identifying metadata needed to
// rehydrate the exact tool on load.
type SnapshotData struct {
	// ID is the snapshot label (e.g. a cohort fingerprint).
	ID string
	// Tool names the mapping tool kind (a mapserve.ToolKind string).
	Tool string
	// K, W are the minimizer scheme of the tool's index.
	K, W int

	Graph      *graph.Graph
	Index      *minimizer.GraphIndex
	Haplotypes *gbwt.Index // nil for tools without a GBWT
}

// Encode serializes the snapshot into a verified section-file image ready
// for Dir.Publish.
func (s *SnapshotData) Encode() ([]byte, error) {
	if s.Graph == nil || s.Index == nil {
		return nil, fmt.Errorf("store: snapshot %q needs a graph and a minimizer index", s.ID)
	}
	var meta []byte
	meta = binio.AppendString(meta, s.ID)
	meta = binio.AppendString(meta, s.Tool)
	meta = binio.AppendU32(meta, uint32(s.K))
	meta = binio.AppendU32(meta, uint32(s.W))
	if s.Haplotypes != nil {
		meta = binio.AppendU8(meta, 1)
	} else {
		meta = binio.AppendU8(meta, 0)
	}
	sections := []Section{
		{Name: SectionMeta, Data: meta},
		{Name: SectionGraph, Data: s.Graph.AppendBinary(nil)},
		{Name: SectionGraphIndex, Data: s.Index.AppendBinary(nil)},
	}
	if s.Haplotypes != nil {
		sections = append(sections, Section{Name: SectionGBWT, Data: s.Haplotypes.AppendBinary(nil)})
	}
	return EncodeSections(sections)
}

// DecodeSnapshot rebuilds a SnapshotData from a verified section map (the
// DecodeSections / Dir.Load output).
func DecodeSnapshot(secs map[string][]byte) (*SnapshotData, error) {
	metaRaw, ok := secs[SectionMeta]
	if !ok {
		return nil, fmt.Errorf("%w: missing %s section", ErrCorrupt, SectionMeta)
	}
	r := binio.NewReader(metaRaw)
	s := &SnapshotData{ID: r.String(), Tool: r.String(), K: int(r.U32()), W: int(r.U32())}
	hasGBWT := r.U8() == 1
	if r.Err() != nil {
		return nil, fmt.Errorf("%w: META section: %v", ErrCorrupt, r.Err())
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("%w: META section has %d trailing bytes", ErrCorrupt, r.Remaining())
	}

	graphRaw, ok := secs[SectionGraph]
	if !ok {
		return nil, fmt.Errorf("%w: missing %s section", ErrCorrupt, SectionGraph)
	}
	g, err := graph.DecodeGraph(graphRaw)
	if err != nil {
		return nil, err
	}
	s.Graph = g

	idxRaw, ok := secs[SectionGraphIndex]
	if !ok {
		return nil, fmt.Errorf("%w: missing %s section", ErrCorrupt, SectionGraphIndex)
	}
	idx, err := minimizer.DecodeGraphIndex(idxRaw)
	if err != nil {
		return nil, err
	}
	if idx.K() != s.K || idx.W() != s.W {
		return nil, fmt.Errorf("%w: META says k=%d w=%d but index encodes k=%d w=%d",
			ErrCorrupt, s.K, s.W, idx.K(), idx.W())
	}
	s.Index = idx

	if hapRaw, present := secs[SectionGBWT]; present != hasGBWT {
		return nil, fmt.Errorf("%w: META GBWT flag %v but section present=%v", ErrCorrupt, hasGBWT, present)
	} else if present {
		hap, err := gbwt.DecodeIndex(hapRaw)
		if err != nil {
			return nil, err
		}
		s.Haplotypes = hap
	}
	return s, nil
}

package store

import (
	"fmt"
	"hash/crc32"
	"os"
	"sync"

	"pangenomicsbench/internal/binio"
)

// WAL is an append-only write-ahead log of opaque payloads. Each record is
// framed [u32 payload length][u32 CRC32][payload] and fsynced before Append
// returns, so an accepted record survives a crash. Replay tolerates a torn
// final record (the crash-mid-append case) by stopping at the first frame
// that doesn't verify; everything before it is returned intact.
//
// The typed layer above (serve's build-request journal) decides what goes
// in a payload; the WAL itself only guarantees ordering and durability.
type WAL struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// OpenWAL opens (creating if needed) the log at path for appending.
func OpenWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open wal %s: %w", path, err)
	}
	return &WAL{f: f, path: path}, nil
}

// Path returns the log file path.
func (w *WAL) Path() string { return w.path }

// Append durably appends one payload: the record is written and fsynced
// before Append returns.
func (w *WAL) Append(payload []byte) error {
	frame := make([]byte, 0, 8+len(payload))
	frame = binio.AppendU32(frame, uint32(len(payload)))
	frame = binio.AppendU32(frame, crc32.ChecksumIEEE(payload))
	frame = append(frame, payload...)

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("store: wal %s is closed", w.path)
	}
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("store: wal append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: wal sync: %w", err)
	}
	return nil
}

// Close closes the log file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// ReplayWAL reads every intact record of the log at path, in append order.
// torn reports that the file ended in an incomplete or corrupt frame (a
// crash mid-append); the records before it are still returned. A missing
// file replays as empty — a fresh process with no history.
func ReplayWAL(path string) (records [][]byte, torn bool, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("store: replay wal %s: %w", path, err)
	}
	off := 0
	for off < len(data) {
		if len(data)-off < 8 {
			return records, true, nil
		}
		r := binio.NewReader(data[off : off+8])
		length := int(r.U32())
		sum := r.U32()
		if length < 0 || off+8+length > len(data) {
			return records, true, nil
		}
		payload := data[off+8 : off+8+length]
		if crc32.ChecksumIEEE(payload) != sum {
			return records, true, nil
		}
		records = append(records, payload)
		off += 8 + length
	}
	return records, false, nil
}

package store

import (
	"fmt"
	"hash/crc32"
	"os"

	"pangenomicsbench/internal/binio"
)

// File format: a fixed header, a section table, then the section blobs
// packed back to back. Everything is little-endian; blobs are flat (no
// pointer chasing — each is one contiguous AppendBinary payload), so a
// loader reads the table, checks each section's CRC32 and hands the blob to
// its decoder.
//
//	offset 0: magic "PGSTORE1" (8 bytes)
//	offset 8: u32 format version (FormatVersion)
//	offset 12: u32 section count
//	then per section: 8-byte name (space padded), u64 offset, u64 length,
//	  u32 CRC32 (IEEE) of the blob
//	then the blobs, at the recorded offsets.
const (
	magic = "PGSTORE1"
	// FormatVersion is bumped on any incompatible layout change; loading a
	// file with a different version fails with ErrVersion rather than
	// misinterpreting bytes.
	FormatVersion = 1

	headerSize       = 8 + 4 + 4
	sectionEntrySize = 8 + 8 + 8 + 4
)

// Well-known section names.
const (
	SectionMeta       = "META"
	SectionGraph      = "GRAPH"
	SectionGraphIndex = "MINIDX"
	SectionGBWT       = "GBWT"
)

// Format errors. Loaders wrap them with file/section context; callers match
// with errors.Is.
var (
	ErrMagic    = fmt.Errorf("store: not a snapshot file (bad magic)")
	ErrVersion  = fmt.Errorf("store: unknown format version")
	ErrCorrupt  = fmt.Errorf("store: corrupt snapshot file")
	ErrChecksum = fmt.Errorf("store: section checksum mismatch")
)

// Section is one named blob of a snapshot file.
type Section struct {
	Name string
	Data []byte
}

// EncodeSections assembles a snapshot file image from sections, in order.
func EncodeSections(sections []Section) ([]byte, error) {
	if len(sections) == 0 {
		return nil, fmt.Errorf("store: no sections to encode")
	}
	buf := make([]byte, 0, headerSize+len(sections)*sectionEntrySize)
	buf = append(buf, magic...)
	buf = binio.AppendU32(buf, FormatVersion)
	buf = binio.AppendU32(buf, uint32(len(sections)))
	off := uint64(headerSize + len(sections)*sectionEntrySize)
	for _, s := range sections {
		if len(s.Name) == 0 || len(s.Name) > 8 {
			return nil, fmt.Errorf("store: section name %q not in 1..8 bytes", s.Name)
		}
		var name [8]byte
		copy(name[:], s.Name)
		for i := len(s.Name); i < 8; i++ {
			name[i] = ' '
		}
		buf = append(buf, name[:]...)
		buf = binio.AppendU64(buf, off)
		buf = binio.AppendU64(buf, uint64(len(s.Data)))
		buf = binio.AppendU32(buf, crc32.ChecksumIEEE(s.Data))
		off += uint64(len(s.Data))
	}
	for _, s := range sections {
		buf = append(buf, s.Data...)
	}
	return buf, nil
}

// DecodeSections parses and verifies a snapshot file image: magic, version,
// table sanity, and every section's CRC32. The returned map's blobs alias
// data.
func DecodeSections(data []byte) (map[string][]byte, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the %d-byte header", ErrCorrupt, len(data), headerSize)
	}
	if string(data[:8]) != magic {
		return nil, fmt.Errorf("%w: got %q, want %q", ErrMagic, data[:8], magic)
	}
	r := binio.NewReader(data[8:])
	version := r.U32()
	if version != FormatVersion {
		return nil, fmt.Errorf("%w: file has version %d, this build reads version %d", ErrVersion, version, FormatVersion)
	}
	count := int(r.U32())
	if count <= 0 || headerSize+count*sectionEntrySize > len(data) {
		return nil, fmt.Errorf("%w: implausible section count %d for a %d-byte file", ErrCorrupt, count, len(data))
	}
	out := make(map[string][]byte, count)
	for i := 0; i < count; i++ {
		nameRaw := string(data[headerSize+i*sectionEntrySize : headerSize+i*sectionEntrySize+8])
		r := binio.NewReader(data[headerSize+i*sectionEntrySize+8 : headerSize+(i+1)*sectionEntrySize])
		off := r.U64()
		length := r.U64()
		sum := r.U32()
		name := trimName(nameRaw)
		if off > uint64(len(data)) || length > uint64(len(data))-off {
			return nil, fmt.Errorf("%w: section %q spans [%d,%d) of a %d-byte file (truncated?)",
				ErrCorrupt, name, off, off+length, len(data))
		}
		blob := data[off : off+length]
		if crc32.ChecksumIEEE(blob) != sum {
			return nil, fmt.Errorf("%w: section %q (%d bytes at offset %d)", ErrChecksum, name, length, off)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("%w: duplicate section %q", ErrCorrupt, name)
		}
		out[name] = blob
	}
	return out, nil
}

// trimName strips the space padding of an 8-byte section name.
func trimName(s string) string {
	for len(s) > 0 && s[len(s)-1] == ' ' {
		s = s[:len(s)-1]
	}
	return s
}

// ReadSectionFile loads and verifies a snapshot file from disk.
func ReadSectionFile(path string) (map[string][]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: read %s: %w", path, err)
	}
	secs, err := DecodeSections(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return secs, nil
}

package store_test

import (
	"bytes"
	"testing"

	"pangenomicsbench/internal/gensim"
	"pangenomicsbench/internal/gfa"
	"pangenomicsbench/internal/graph"
	"pangenomicsbench/internal/minimizer"
	"pangenomicsbench/internal/pipeline"
	"pangenomicsbench/internal/store"
)

func testPop(t testing.TB) *gensim.Population {
	t.Helper()
	cfg := gensim.DefaultConfig()
	cfg.RefLen = 3000
	cfg.Haplotypes = 3
	pop, err := gensim.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

// testReads slices deterministic query windows out of the assemblies.
func testReads(pop *gensim.Population, n, length int) [][]byte {
	_, seqs := pop.AssemblyView()
	var out [][]byte
	for i := 0; len(out) < n; i++ {
		seq := seqs[i%len(seqs)]
		off := (i * 311) % (len(seq) - length)
		out = append(out, seq[off:off+length])
	}
	return out
}

func gfaText(t testing.TB, g *graph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gfa.Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSnapshotRoundTripDifferential is the satellite (a) acceptance test:
// Load(Save(x)) reproduces the exact serving state — the decoded graph
// serializes to byte-identical GFA, the decoded indexes re-encode to
// byte-identical binary, and a tool rehydrated from the decoded state maps
// every query identically to the originally-built tool, for all four
// mapping kernels.
func TestSnapshotRoundTripDifferential(t *testing.T) {
	pop := testPop(t)
	g := pop.Graph
	const k, w = 15, 10
	short := testReads(pop, 24, 100)
	long := testReads(pop, 12, 400)

	type kernel struct {
		name  string
		reads [][]byte
		mk    func() (pipeline.ContextTool, error)
		remk  func(d *store.SnapshotData) (pipeline.ContextTool, error)
		gbwt  bool
	}
	kernels := []kernel{
		{
			name: "giraffe", reads: short, gbwt: true,
			mk: func() (pipeline.ContextTool, error) { return pipeline.NewVgGiraffe(g, k, w) },
			remk: func(d *store.SnapshotData) (pipeline.ContextTool, error) {
				return pipeline.NewVgGiraffeFromIndexes(d.Graph, d.Index, d.Haplotypes)
			},
		},
		{
			name: "vgmap", reads: short,
			mk: func() (pipeline.ContextTool, error) { return pipeline.NewVgMap(g, k, w) },
			remk: func(d *store.SnapshotData) (pipeline.ContextTool, error) {
				return pipeline.NewVgMapFromIndex(d.Graph, d.Index)
			},
		},
		{
			name: "graphaligner", reads: long,
			mk: func() (pipeline.ContextTool, error) { return pipeline.NewGraphAligner(g, k, w) },
			remk: func(d *store.SnapshotData) (pipeline.ContextTool, error) {
				return pipeline.NewGraphAlignerFromIndex(d.Graph, d.Index)
			},
		},
		{
			name: "minigraph-lr", reads: long,
			mk: func() (pipeline.ContextTool, error) { return pipeline.NewMinigraph(g, k, w, false) },
			remk: func(d *store.SnapshotData) (pipeline.ContextTool, error) {
				return pipeline.NewMinigraphFromIndex(d.Graph, d.Index, false)
			},
		},
	}

	for _, kr := range kernels {
		t.Run(kr.name, func(t *testing.T) {
			orig, err := kr.mk()
			if err != nil {
				t.Fatal(err)
			}
			data := &store.SnapshotData{
				ID: "rt-" + kr.name, Tool: kr.name, K: k, W: w,
				Graph: g, Index: orig.(pipeline.Indexed).GraphIndex(),
			}
			if kr.gbwt {
				data.Haplotypes = orig.(pipeline.HaplotypeIndexed).Haplotypes()
			}
			image, err := data.Encode()
			if err != nil {
				t.Fatal(err)
			}
			secs, err := store.DecodeSections(image)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := store.DecodeSnapshot(secs)
			if err != nil {
				t.Fatal(err)
			}
			if dec.ID != data.ID || dec.Tool != kr.name || dec.K != k || dec.W != w {
				t.Fatalf("metadata changed: %+v", dec)
			}

			// The decoded graph is the graph: byte-identical GFA output.
			if !bytes.Equal(gfaText(t, g), gfaText(t, dec.Graph)) {
				t.Fatal("decoded graph writes different GFA")
			}
			// The decoded indexes are the indexes: re-encoding is
			// byte-identical.
			if !bytes.Equal(data.Index.AppendBinary(nil), dec.Index.AppendBinary(nil)) {
				t.Fatal("decoded minimizer index re-encodes differently")
			}
			if kr.gbwt && !bytes.Equal(data.Haplotypes.AppendBinary(nil), dec.Haplotypes.AppendBinary(nil)) {
				t.Fatal("decoded GBWT re-encodes differently")
			}

			// The rehydrated tool maps byte-identically to the saved one.
			re, err := kr.remk(dec)
			if err != nil {
				t.Fatal(err)
			}
			for i, read := range kr.reads {
				want, _ := orig.Map(read, nil)
				got, _ := re.Map(read, nil)
				if want != got {
					t.Fatalf("read %d maps differently after round trip:\n  saved:  %+v\n  loaded: %+v", i, want, got)
				}
			}
		})
	}
}

// TestDecodersRejectCorruptBlobs: a section whose CRC verifies but whose
// payload is malformed (wrong layout, truncation below the framing layer)
// must fail its decoder cleanly — never return a half-built structure.
func TestDecodersRejectCorruptBlobs(t *testing.T) {
	pop := testPop(t)
	tool, err := pipeline.NewVgGiraffe(pop.Graph, 15, 10)
	if err != nil {
		t.Fatal(err)
	}
	graphBin := pop.Graph.AppendBinary(nil)
	idxBin := tool.GraphIndex().AppendBinary(nil)
	hapBin := tool.Haplotypes().AppendBinary(nil)

	for _, cut := range []int{1, len(graphBin) / 3, len(graphBin) - 2} {
		if _, err := graph.DecodeGraph(graphBin[:cut]); err == nil {
			t.Errorf("graph blob truncated to %d decoded", cut)
		}
	}
	if _, err := graph.DecodeGraph(append(append([]byte{}, graphBin...), 0xEE)); err == nil {
		t.Error("graph blob with trailing byte decoded")
	}
	for _, cut := range []int{3, len(idxBin) / 2} {
		if _, err := minimizer.DecodeGraphIndex(idxBin[:cut]); err == nil {
			t.Errorf("minimizer blob truncated to %d decoded", cut)
		}
	}
	if _, err := minimizer.DecodeGraphIndex(append(append([]byte{}, idxBin...), 9)); err == nil {
		t.Error("minimizer blob with trailing byte decoded")
	}

	// GBWT decode: truncation errors. (Import side effect: gbwt is reached
	// through the snapshot decoder below.)
	badSecs := func(mutate func(map[string][]byte)) map[string][]byte {
		data := &store.SnapshotData{
			ID: "x", Tool: "giraffe", K: 15, W: 10,
			Graph: pop.Graph, Index: tool.GraphIndex(), Haplotypes: tool.Haplotypes(),
		}
		image, err := data.Encode()
		if err != nil {
			t.Fatal(err)
		}
		secs, err := store.DecodeSections(image)
		if err != nil {
			t.Fatal(err)
		}
		mutate(secs)
		return secs
	}
	if _, err := store.DecodeSnapshot(badSecs(func(s map[string][]byte) {
		s[store.SectionGBWT] = hapBin[:len(hapBin)/2]
	})); err == nil {
		t.Error("truncated GBWT section decoded")
	}
	if _, err := store.DecodeSnapshot(badSecs(func(s map[string][]byte) {
		delete(s, store.SectionGBWT)
	})); err == nil {
		t.Error("META promises a GBWT but the section is gone — decoded anyway")
	}
	if _, err := store.DecodeSnapshot(badSecs(func(s map[string][]byte) {
		delete(s, store.SectionMeta)
	})); err == nil {
		t.Error("snapshot without META decoded")
	}
	if _, err := store.DecodeSnapshot(badSecs(func(s map[string][]byte) {
		s[store.SectionMeta] = append(s[store.SectionMeta], 0)
	})); err == nil {
		t.Error("META with trailing bytes decoded")
	}
}

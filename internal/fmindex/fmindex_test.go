package fmindex

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func randDNA(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = "ACGT"[rng.Intn(4)]
	}
	return s
}

// bruteOccurrences finds all occurrences of pat in text.
func bruteOccurrences(text, pat []byte) []int {
	var out []int
	for i := 0; i+len(pat) <= len(text); i++ {
		if bytes.Equal(text[i:i+len(pat)], pat) {
			out = append(out, i)
		}
	}
	return out
}

func TestSuffixArraySorted(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		text := make([]int32, len(raw))
		for i, b := range raw {
			text[i] = int32(b % 7)
		}
		sa := SuffixArrayInts(text)
		if len(sa) != len(text) {
			return false
		}
		// Every suffix must be lexicographically <= the next.
		less := func(a, b int32) bool {
			for int(a) < len(text) && int(b) < len(text) {
				if text[a] != text[b] {
					return text[a] < text[b]
				}
				a++
				b++
			}
			return int(a) == len(text) && int(b) < len(text)
		}
		seen := make([]bool, len(sa))
		for i, p := range sa {
			if seen[p] {
				return false // not a permutation
			}
			seen[p] = true
			if i > 0 && less(sa[i], sa[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCountMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	text := randDNA(rng, 2000)
	idx, err := New(text)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		plen := 1 + rng.Intn(12)
		var pat []byte
		if trial%2 == 0 {
			start := rng.Intn(len(text) - plen)
			pat = text[start : start+plen]
		} else {
			pat = randDNA(rng, plen)
		}
		want := len(bruteOccurrences(text, pat))
		got, _ := idx.Count(pat, nil)
		if got != want {
			t.Fatalf("Count(%s) = %d, want %d", pat, got, want)
		}
	}
}

func TestLocateMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	text := randDNA(rng, 1500)
	idx, err := New(text)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 60; trial++ {
		plen := 4 + rng.Intn(10)
		start := rng.Intn(len(text) - plen)
		pat := text[start : start+plen]
		want := bruteOccurrences(text, pat)
		n, r := idx.Count(pat, nil)
		if n != len(want) {
			t.Fatalf("count mismatch for %s", pat)
		}
		got := idx.Locate(r, nil)
		sort.Ints(got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Locate(%s) = %v, want %v", pat, got, want)
			}
		}
	}
}

func TestPatternWithN(t *testing.T) {
	idx, err := New([]byte("ACGTACGTNACGT"))
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := idx.Count([]byte("GTN"), nil); n != 0 {
		t.Fatal("patterns containing N must not match")
	}
	if n, _ := idx.Count([]byte("ACGT"), nil); n != 3 {
		t.Fatalf("ACGT count = %d, want 3", n)
	}
}

func TestEmptyInputs(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("empty text must be rejected")
	}
	idx, _ := New([]byte("ACGT"))
	if n, _ := idx.Count(nil, nil); n != 0 {
		t.Fatal("empty pattern must count 0")
	}
	if idx.Len() != 4 {
		t.Fatalf("Len = %d", idx.Len())
	}
}

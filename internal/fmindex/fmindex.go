package fmindex

import (
	"fmt"

	"pangenomicsbench/internal/bio"
	"pangenomicsbench/internal/perf"
)

// sentinel is the terminator code, smaller than every base code.
const sentinel = 0

// Index is an FM-Index over a DNA text supporting backward search (Count)
// and position lookup (Locate) via a sampled suffix array. The paper
// contrasts its memory-bandwidth-hungry occurrence-table accesses with
// GBWT's cache-friendly per-node records (§5.2).
type Index struct {
	n        int
	bwt      []byte     // codes 0(sentinel) + 1..5 (base code+1)
	counts   [7]int     // C table over codes
	occ      [][6]int32 // checkpoints every occRate positions
	saSample []int32    // suffix array sampled every saRate
	saRate   int
	occRate  int
	addrOcc  uint64
	addrBWT  uint64
}

const defaultOccRate = 64
const defaultSARate = 8

// New builds the index of text (bases A/C/G/T/N).
func New(text []byte) (*Index, error) {
	if len(text) == 0 {
		return nil, fmt.Errorf("fmindex: empty text")
	}
	n := len(text) + 1
	seq := make([]int32, n)
	for i, b := range text {
		seq[i] = int32(bio.Code(b)) + 1
	}
	seq[n-1] = sentinel
	sa := SuffixArrayInts(seq)

	idx := &Index{n: n, saRate: defaultSARate, occRate: defaultOccRate}
	idx.bwt = make([]byte, n)
	for i, p := range sa {
		if p == 0 {
			idx.bwt[i] = byte(seq[n-1])
		} else {
			idx.bwt[i] = byte(seq[p-1])
		}
	}
	// C table.
	for _, c := range idx.bwt {
		idx.counts[c+1]++
	}
	for i := 1; i < len(idx.counts); i++ {
		idx.counts[i] += idx.counts[i-1]
	}
	// Occurrence checkpoints.
	nCheck := n/idx.occRate + 2
	idx.occ = make([][6]int32, nCheck)
	var running [6]int32
	for i := 0; i < n; i++ {
		if i%idx.occRate == 0 {
			idx.occ[i/idx.occRate] = running
		}
		running[idx.bwt[i]]++
	}
	idx.occ[(n-1)/idx.occRate+1] = running
	// SA samples.
	idx.saSample = make([]int32, (n+idx.saRate-1)/idx.saRate)
	for i, p := range sa {
		if i%idx.saRate == 0 {
			idx.saSample[i/idx.saRate] = p
		}
	}
	as := perf.NewAddrSpace()
	idx.addrBWT = as.Alloc(n)
	idx.addrOcc = as.Alloc(nCheck * 24)
	return idx, nil
}

// Len returns the indexed text length (excluding the sentinel).
func (x *Index) Len() int { return x.n - 1 }

// occAt returns the number of occurrences of code c in bwt[0:i).
func (x *Index) occAt(c byte, i int, probe *perf.Probe) int {
	ck := i / x.occRate
	probe.Load(uintptr(x.addrOcc)+uintptr(ck*24), 24)
	cnt := int(x.occ[ck][c])
	for p := ck * x.occRate; p < i; p++ {
		probe.Load(uintptr(x.addrBWT)+uintptr(p), 1)
		if x.bwt[p] == c {
			cnt++
		}
	}
	probe.Op(perf.ScalarInt, i-ck*x.occRate+2)
	return cnt
}

// SearchRange holds a suffix-array interval [Lo, Hi).
type SearchRange struct{ Lo, Hi int }

// Count returns the number of occurrences of pattern in the text via
// backward search, along with the final range.
func (x *Index) Count(pattern []byte, probe *perf.Probe) (int, SearchRange) {
	if len(pattern) == 0 {
		return 0, SearchRange{}
	}
	lo, hi := 0, x.n
	for i := len(pattern) - 1; i >= 0; i-- {
		c := byte(bio.Code(pattern[i])) + 1
		if bio.Code(pattern[i]) == bio.BaseN {
			return 0, SearchRange{} // N never matches
		}
		lo = x.counts[c] + x.occAt(c, lo, probe)
		hi = x.counts[c] + x.occAt(c, hi, probe)
		probe.Op(perf.ScalarInt, 4)
		probe.TakeBranch(0xc0, lo < hi)
		if lo >= hi {
			return 0, SearchRange{}
		}
	}
	return hi - lo, SearchRange{lo, hi}
}

// Locate resolves every text position in the given range (as returned by
// Count) by LF-walking to the nearest suffix-array sample.
func (x *Index) Locate(r SearchRange, probe *perf.Probe) []int {
	out := make([]int, 0, r.Hi-r.Lo)
	for i := r.Lo; i < r.Hi; i++ {
		pos, steps := i, 0
		text := -1
		for pos%x.saRate != 0 {
			c := x.bwt[pos]
			probe.Load(uintptr(x.addrBWT)+uintptr(pos), 1)
			if c == sentinel {
				// The character before this suffix is the terminator, so
				// the suffix starts at text position 0.
				text = steps
				break
			}
			pos = x.counts[c] + x.occAt(c, pos, probe)
			steps++
		}
		if text < 0 {
			text = int(x.saSample[pos/x.saRate]) + steps
		}
		out = append(out, text)
	}
	return out
}

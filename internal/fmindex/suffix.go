// Package fmindex implements the classic FM-Index over base-pair text used
// by Seq2Seq mappers (the paper's [34], BWA's core): suffix array, Burrows-
// Wheeler transform, occurrence table and backward search. The GBWT package
// reuses its suffix-array construction over integer alphabets.
package fmindex

import "sort"

// SuffixArrayInts builds the suffix array of an integer sequence by prefix
// doubling (Manber-Myers, O(n log² n)). Values may be any non-negative
// integers; the caller is responsible for appending a unique smallest
// sentinel if needed.
func SuffixArrayInts(text []int32) []int32 {
	n := len(text)
	if n == 0 {
		return nil
	}
	sa := make([]int32, n)
	rank := make([]int32, n)
	tmp := make([]int32, n)
	for i := range sa {
		sa[i] = int32(i)
	}

	// Initial ranks: compress the raw values.
	sorted := append([]int32(nil), text...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	uniq := sorted[:0]
	var last int32 = -1
	for _, v := range sorted {
		if v != last {
			uniq = append(uniq, v)
			last = v
		}
	}
	for i, v := range text {
		rank[i] = int32(sort.Search(len(uniq), func(j int) bool { return uniq[j] >= v }))
	}

	for k := 1; ; k *= 2 {
		key := func(i int32) (int32, int32) {
			second := int32(-1)
			if int(i)+k < n {
				second = rank[int(i)+k]
			}
			return rank[i], second
		}
		sort.Slice(sa, func(a, b int) bool {
			r1a, r2a := key(sa[a])
			r1b, r2b := key(sa[b])
			if r1a != r1b {
				return r1a < r1b
			}
			return r2a < r2b
		})
		tmp[sa[0]] = 0
		for i := 1; i < n; i++ {
			r1a, r2a := key(sa[i-1])
			r1b, r2b := key(sa[i])
			tmp[sa[i]] = tmp[sa[i-1]]
			if r1a != r1b || r2a != r2b {
				tmp[sa[i]]++
			}
		}
		copy(rank, tmp)
		if int(rank[sa[n-1]]) == n-1 {
			break
		}
	}
	return sa
}

package graph

import "sort"

// Subgraph is a local region extracted around a seed hit, with a mapping
// back to the parent graph. The Seq2Graph alignment kernels (GSSW, GBV)
// operate on these small cache-friendly regions rather than the whole
// pangenome — the structural property behind the paper's key insight (a).
type Subgraph struct {
	*Graph
	// Orig maps each subgraph node ID to the node it came from in the
	// parent graph (indexed by subgraph ID - 1).
	Orig []NodeID
	// Root is the subgraph ID of the node containing the seed hit.
	Root NodeID
}

// Extract builds the subgraph reachable from seed within radius base pairs
// in both directions (following and opposing edge direction), preserving
// edges among extracted nodes. Distance is measured to a node's *near*
// boundary, so a long node adjacent to the region is included whole (its
// body is usable by the aligner), mirroring how Vg Map extracts the
// acyclic context regions GSSW aligns to.
func Extract(g *Graph, seed NodeID, radius int) *Subgraph {
	g.check(seed)
	type visit struct {
		id   NodeID
		dist int // bp between the seed node's boundary and this node's start
	}
	seen := map[NodeID]int{seed: 0}
	queue := []visit{{seed, 0}}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		base := v.dist + len(g.Seq(v.id))
		if v.id == seed {
			base = 0
		}
		step := func(next NodeID) {
			nd := base
			if nd >= radius {
				return
			}
			if old, ok := seen[next]; ok && old <= nd {
				return
			}
			seen[next] = nd
			queue = append(queue, visit{next, nd})
		}
		for _, n := range g.Out(v.id) {
			step(n)
		}
		for _, n := range g.In(v.id) {
			step(n)
		}
	}

	ids := make([]NodeID, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	sub := &Subgraph{Graph: New(), Orig: make([]NodeID, 0, len(ids))}
	remap := make(map[NodeID]NodeID, len(ids))
	for _, id := range ids {
		nid := sub.AddNode(g.Seq(id))
		remap[id] = nid
		sub.Orig = append(sub.Orig, id)
		if id == seed {
			sub.Root = nid
		}
	}
	for _, id := range ids {
		for _, to := range g.Out(id) {
			if nt, ok := remap[to]; ok {
				sub.AddEdge(remap[id], nt)
			}
		}
	}
	return sub
}

// Acyclify removes back edges (with respect to a DFS order) so the result
// is a DAG, as Vg Map does before handing subgraphs to GSSW. The returned
// subgraph shares node sequences with s.
func (s *Subgraph) Acyclify() *Subgraph {
	n := s.NumNodes()
	out := &Subgraph{Graph: New(), Orig: append([]NodeID(nil), s.Orig...), Root: s.Root}
	for i := 0; i < n; i++ {
		out.AddNode(s.Seq(NodeID(i + 1)))
	}
	// DFS from every unvisited node; skip edges that close a cycle.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]byte, n+1)
	var dfs func(u NodeID)
	dfs = func(u NodeID) {
		color[u] = gray
		for _, v := range s.Out(u) {
			if color[v] == gray {
				continue // back edge: drop
			}
			out.AddEdge(u, v)
			if color[v] == white {
				dfs(v)
			}
		}
		color[u] = black
	}
	for i := 1; i <= n; i++ {
		if color[i] == white {
			dfs(NodeID(i))
		}
	}
	return out
}

// Split returns a copy of g in which every node longer than maxLen is
// replaced by a chain of nodes of at most maxLen base pairs, with paths
// remapped. This produces the Split-M-Graph of the Fig. 11 case study.
func Split(g *Graph, maxLen int) *Graph {
	if maxLen < 1 {
		maxLen = 1
	}
	out := New()
	// first/last chain node for each original node
	first := make([]NodeID, g.NumNodes()+1)
	last := make([]NodeID, g.NumNodes()+1)
	chains := make([][]NodeID, g.NumNodes()+1)
	for i := 1; i <= g.NumNodes(); i++ {
		seq := g.Seq(NodeID(i))
		var prev NodeID
		for off := 0; off < len(seq); off += maxLen {
			end := off + maxLen
			if end > len(seq) {
				end = len(seq)
			}
			id := out.AddNode(seq[off:end])
			chains[i] = append(chains[i], id)
			if prev != 0 {
				out.AddEdge(prev, id)
			} else {
				first[i] = id
			}
			prev = id
		}
		last[i] = prev
	}
	for i := 1; i <= g.NumNodes(); i++ {
		for _, to := range g.Out(NodeID(i)) {
			out.AddEdge(last[i], first[to])
		}
	}
	for _, p := range g.Paths() {
		var nodes []NodeID
		for _, id := range p.Nodes {
			nodes = append(nodes, chains[id]...)
		}
		if err := out.AddPath(p.Name, nodes); err != nil {
			// Cannot happen: all nodes were just created.
			panic(err)
		}
	}
	return out
}

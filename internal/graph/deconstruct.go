package graph

import (
	"bytes"
	"fmt"
	"sort"
)

// Site is one variant site discovered by Deconstruct: reference position,
// reference allele, and the alternate alleles branching off at that point.
// It is the graph→VCF direction (vg deconstruct) — the downstream analysis
// the paper's §1 names as depending on graph building and mapping.
type Site struct {
	RefPos int
	Ref    []byte
	Alts   [][]byte
}

// Deconstruct derives variant sites from the graph by walking the named
// reference path and, at every divergence, following each off-reference
// branch through its unbranching chain until it rejoins the reference.
// Branches that rejoin further than maxSpan reference bases ahead are
// skipped (nested/complex regions).
func Deconstruct(g *Graph, refPathName string, maxSpan int) ([]Site, error) {
	var ref *Path
	for i := range g.Paths() {
		if g.Paths()[i].Name == refPathName {
			ref = &g.Paths()[i]
			break
		}
	}
	if ref == nil {
		return nil, fmt.Errorf("graph: no path named %q", refPathName)
	}
	// Reference coordinates: offset of each ref-path step, and position of
	// each node on the reference (first visit wins).
	refIndex := make(map[NodeID]int, len(ref.Nodes)) // node → step index
	offsets := make([]int, len(ref.Nodes))
	off := 0
	for i, id := range ref.Nodes {
		offsets[i] = off
		if _, seen := refIndex[id]; !seen {
			refIndex[id] = i
		}
		off += len(g.Seq(id))
	}

	var sites []Site
	for i, s := range ref.Nodes {
		endOfS := offsets[i] + len(g.Seq(s))
		nextRef := NodeID(0)
		if i+1 < len(ref.Nodes) {
			nextRef = ref.Nodes[i+1]
		}
		for _, c := range g.Out(s) {
			if c == nextRef {
				continue
			}
			altSeq, sink, ok := followChain(g, c, refIndex)
			if !ok {
				continue
			}
			j := refIndex[sink]
			if j <= i {
				continue // back edge / repeat visit: not a simple site
			}
			refAllele := pathSlice(g, ref.Nodes[i+1:j])
			if maxSpan > 0 && len(refAllele) > maxSpan {
				continue
			}
			if bytes.Equal(refAllele, altSeq) {
				continue // redundant branch
			}
			sites = append(sites, Site{RefPos: endOfS, Ref: refAllele, Alts: [][]byte{altSeq}})
		}
	}
	// Merge alleles at the same position and sort.
	sort.Slice(sites, func(a, b int) bool { return sites[a].RefPos < sites[b].RefPos })
	var merged []Site
	for _, st := range sites {
		last := len(merged) - 1
		if last >= 0 && merged[last].RefPos == st.RefPos && bytes.Equal(merged[last].Ref, st.Ref) {
			dup := false
			for _, a := range merged[last].Alts {
				if bytes.Equal(a, st.Alts[0]) {
					dup = true
				}
			}
			if !dup {
				merged[last].Alts = append(merged[last].Alts, st.Alts[0])
			}
			continue
		}
		merged = append(merged, st)
	}
	return merged, nil
}

// followChain walks from node c through its unbranching chain until hitting
// a node on the reference path, returning the accumulated sequence and the
// rejoining node. If c itself is on the reference, the branch is a pure
// deletion (empty alt). Chains that branch or dead-end report ok=false.
func followChain(g *Graph, c NodeID, refIndex map[NodeID]int) (seq []byte, sink NodeID, ok bool) {
	if _, on := refIndex[c]; on {
		return nil, c, true // deletion edge straight back to the reference
	}
	cur := c
	for steps := 0; steps < 10_000; steps++ {
		seq = append(seq, g.Seq(cur)...)
		outs := g.Out(cur)
		if len(outs) != 1 {
			return nil, 0, false
		}
		nxt := outs[0]
		if _, on := refIndex[nxt]; on {
			return seq, nxt, true
		}
		if len(g.In(nxt)) != 1 {
			return nil, 0, false
		}
		cur = nxt
	}
	return nil, 0, false
}

func pathSlice(g *Graph, nodes []NodeID) []byte {
	var out []byte
	for _, id := range nodes {
		out = append(out, g.Seq(id)...)
	}
	return out
}

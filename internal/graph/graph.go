// Package graph implements the pangenome sequence graph used throughout the
// suite: sequence-labelled nodes, directed edges, and embedded paths
// (haplotypes). It provides the graph operations the paper's kernels depend
// on — topological sort (GSSW), subgraph extraction around seed hits
// (Seq2Graph mapping), node splitting (the Fig. 11 Split-M-Graph case
// study), and shortest-path distances (graph-aware chaining).
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node. IDs are dense and start at 1; 0 is invalid.
type NodeID int32

// Node is one graph node holding a subsequence of the pangenome.
type Node struct {
	ID  NodeID
	Seq []byte
}

// Path is a named walk through the graph; in a pangenome each path is one
// haplotype's route.
type Path struct {
	Name  string
	Nodes []NodeID
}

// Graph is a directed sequence graph with embedded paths.
type Graph struct {
	nodes []Node     // nodes[i] has ID i+1
	out   [][]NodeID // adjacency, parallel to nodes
	in    [][]NodeID
	paths []Path
}

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// AddNode appends a node with the given sequence and returns its ID.
func (g *Graph) AddNode(seq []byte) NodeID {
	id := NodeID(len(g.nodes) + 1)
	g.nodes = append(g.nodes, Node{ID: id, Seq: seq})
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return id
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int {
	n := 0
	for _, e := range g.out {
		n += len(e)
	}
	return n
}

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) Node {
	g.check(id)
	return g.nodes[id-1]
}

// Seq returns the sequence of node id.
func (g *Graph) Seq(id NodeID) []byte { return g.Node(id).Seq }

// Valid reports whether id names a node of g.
func (g *Graph) Valid(id NodeID) bool { return id >= 1 && int(id) <= len(g.nodes) }

func (g *Graph) check(id NodeID) {
	if !g.Valid(id) {
		panic(fmt.Sprintf("graph: node %d out of range [1,%d]", id, len(g.nodes)))
	}
}

// AddEdge inserts the directed edge from → to; duplicate edges are ignored.
func (g *Graph) AddEdge(from, to NodeID) {
	g.check(from)
	g.check(to)
	for _, t := range g.out[from-1] {
		if t == to {
			return
		}
	}
	g.out[from-1] = append(g.out[from-1], to)
	g.in[to-1] = append(g.in[to-1], from)
}

// HasEdge reports whether from → to exists.
func (g *Graph) HasEdge(from, to NodeID) bool {
	if !g.Valid(from) || !g.Valid(to) {
		return false
	}
	for _, t := range g.out[from-1] {
		if t == to {
			return true
		}
	}
	return false
}

// Out returns the successors of id (shared slice; do not mutate).
func (g *Graph) Out(id NodeID) []NodeID {
	g.check(id)
	return g.out[id-1]
}

// In returns the predecessors of id (shared slice; do not mutate).
func (g *Graph) In(id NodeID) []NodeID {
	g.check(id)
	return g.in[id-1]
}

// AddPath embeds a named walk. Every consecutive pair must be an edge (the
// edge is created if missing), so paths are always valid walks.
func (g *Graph) AddPath(name string, nodes []NodeID) error {
	for _, id := range nodes {
		if !g.Valid(id) {
			return fmt.Errorf("graph: path %q references unknown node %d", name, id)
		}
	}
	for i := 1; i < len(nodes); i++ {
		g.AddEdge(nodes[i-1], nodes[i])
	}
	g.paths = append(g.paths, Path{Name: name, Nodes: append([]NodeID(nil), nodes...)})
	return nil
}

// Paths returns the embedded paths (shared; do not mutate).
func (g *Graph) Paths() []Path { return g.paths }

// PathSeq concatenates the sequences along path p.
func (g *Graph) PathSeq(p Path) []byte {
	var out []byte
	for _, id := range p.Nodes {
		out = append(out, g.Seq(id)...)
	}
	return out
}

// TotalSeqLen returns the sum of node sequence lengths.
func (g *Graph) TotalSeqLen() int {
	n := 0
	for _, nd := range g.nodes {
		n += len(nd.Seq)
	}
	return n
}

// TopoSort returns the node IDs in a topological order, or an error if the
// graph contains a cycle (Kahn's algorithm).
func (g *Graph) TopoSort() ([]NodeID, error) {
	indeg := make([]int, len(g.nodes))
	for i := range g.nodes {
		indeg[i] = len(g.in[i])
	}
	queue := make([]NodeID, 0, len(g.nodes))
	for i := range g.nodes {
		if indeg[i] == 0 {
			queue = append(queue, NodeID(i+1))
		}
	}
	order := make([]NodeID, 0, len(g.nodes))
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, to := range g.out[id-1] {
			indeg[to-1]--
			if indeg[to-1] == 0 {
				queue = append(queue, to)
			}
		}
	}
	if len(order) != len(g.nodes) {
		return nil, fmt.Errorf("graph: cycle detected (%d of %d nodes sorted)", len(order), len(g.nodes))
	}
	return order, nil
}

// IsAcyclic reports whether the graph has no directed cycles.
func (g *Graph) IsAcyclic() bool {
	_, err := g.TopoSort()
	return err == nil
}

// ShortestPathLen returns the minimum number of base pairs between the end
// of node from and the start of node to, following directed edges (0 when
// to is a direct successor of from), or -1 when unreachable.
func (g *Graph) ShortestPathLen(from, to NodeID) int {
	return g.ShortestPathLenBounded(from, to, -1)
}

// ShortestPathLenBounded is ShortestPathLen with a search limit: paths
// longer than limit base pairs are reported as unreachable (-1). A negative
// limit disables the bound. This is the graph-distance primitive Seq2Graph
// chaining needs in place of coordinate subtraction (§2.1); bounding it is
// what keeps clustering tractable on large graphs.
func (g *Graph) ShortestPathLenBounded(from, to NodeID, limit int) int {
	g.check(from)
	g.check(to)
	if from == to {
		return 0
	}
	const inf = int(^uint(0) >> 1)
	dist := make(map[NodeID]int)
	// Priority queue as sorted insertion; graphs traversed here are small
	// local regions so simplicity wins.
	type item struct {
		id NodeID
		d  int
	}
	pq := []item{}
	push := func(id NodeID, d int) {
		if limit >= 0 && d > limit {
			return
		}
		if old, ok := dist[id]; ok && old <= d {
			return
		}
		dist[id] = d
		pq = append(pq, item{id, d})
	}
	for _, s := range g.out[from-1] {
		if s == to {
			return 0
		}
		push(s, len(g.Seq(s)))
	}
	for len(pq) > 0 {
		// Extract min.
		mi := 0
		for i := 1; i < len(pq); i++ {
			if pq[i].d < pq[mi].d {
				mi = i
			}
		}
		cur := pq[mi]
		pq[mi] = pq[len(pq)-1]
		pq = pq[:len(pq)-1]
		if d, ok := dist[cur.id]; !ok || cur.d > d {
			continue
		}
		for _, s := range g.out[cur.id-1] {
			if s == to {
				return cur.d
			}
			nd := cur.d + len(g.Seq(s))
			if old, ok := dist[s]; !ok || nd < old {
				push(s, nd)
			}
		}
	}
	_ = inf
	return -1
}

// Stats summarizes the graph for dataset tables and the Fig. 11 case study.
type Stats struct {
	Nodes      int
	Edges      int
	Paths      int
	TotalBases int
	AvgNodeLen float64
	MaxNodeLen int
	Acyclic    bool
}

// ComputeStats returns summary statistics.
func (g *Graph) ComputeStats() Stats {
	s := Stats{
		Nodes:   g.NumNodes(),
		Edges:   g.NumEdges(),
		Paths:   len(g.paths),
		Acyclic: g.IsAcyclic(),
	}
	for _, nd := range g.nodes {
		s.TotalBases += len(nd.Seq)
		if len(nd.Seq) > s.MaxNodeLen {
			s.MaxNodeLen = len(nd.Seq)
		}
	}
	if s.Nodes > 0 {
		s.AvgNodeLen = float64(s.TotalBases) / float64(s.Nodes)
	}
	return s
}

// Validate checks structural invariants: node sequences non-empty, edges
// symmetric between in/out lists, and paths are edge-respecting walks.
func (g *Graph) Validate() error {
	for _, nd := range g.nodes {
		if len(nd.Seq) == 0 {
			return fmt.Errorf("graph: node %d has empty sequence", nd.ID)
		}
	}
	for i, outs := range g.out {
		from := NodeID(i + 1)
		for _, to := range outs {
			found := false
			for _, f := range g.in[to-1] {
				if f == from {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("graph: edge %d→%d missing from in-list", from, to)
			}
		}
	}
	for _, p := range g.paths {
		for i := 1; i < len(p.Nodes); i++ {
			if !g.HasEdge(p.Nodes[i-1], p.Nodes[i]) {
				return fmt.Errorf("graph: path %q step %d→%d is not an edge", p.Name, p.Nodes[i-1], p.Nodes[i])
			}
		}
	}
	return nil
}

// SortedNodeIDs returns all node IDs ascending.
func (g *Graph) SortedNodeIDs() []NodeID {
	ids := make([]NodeID, len(g.nodes))
	for i := range g.nodes {
		ids[i] = NodeID(i + 1)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

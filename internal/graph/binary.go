package graph

import (
	"fmt"

	"pangenomicsbench/internal/binio"
)

// AppendBinary appends g's flat little-endian encoding to buf and returns
// the extended buffer. The encoding captures the graph verbatim — node
// sequences, out- and in-adjacency in stored order, and embedded paths — so
// DecodeGraph reproduces not just an isomorphic graph but the exact field
// state, including the adjacency-list orders the mapping kernels use for
// deterministic tie-breaking. Layout:
//
//	u64 nodeCount, then per node: length-prefixed sequence
//	per node: u64 outDegree, u32 successor IDs (stored order)
//	per node: u64 inDegree, u32 predecessor IDs (stored order)
//	u64 pathCount, then per path: name, u64 stepCount, u32 node IDs
func (g *Graph) AppendBinary(buf []byte) []byte {
	buf = binio.AppendU64(buf, uint64(len(g.nodes)))
	for _, nd := range g.nodes {
		buf = binio.AppendBytes(buf, nd.Seq)
	}
	for _, adj := range [2][][]NodeID{g.out, g.in} {
		for _, edges := range adj {
			buf = binio.AppendU64(buf, uint64(len(edges)))
			for _, id := range edges {
				buf = binio.AppendU32(buf, uint32(id))
			}
		}
	}
	buf = binio.AppendU64(buf, uint64(len(g.paths)))
	for _, p := range g.paths {
		buf = binio.AppendString(buf, p.Name)
		buf = binio.AppendU64(buf, uint64(len(p.Nodes)))
		for _, id := range p.Nodes {
			buf = binio.AppendU32(buf, uint32(id))
		}
	}
	return buf
}

// DecodeGraph decodes an AppendBinary payload. It restores the exact graph
// state and validates structural invariants (edge symmetry, path walks), so
// a payload that decodes successfully behaves identically to the graph that
// was encoded.
func DecodeGraph(data []byte) (*Graph, error) {
	r := binio.NewReader(data)
	n := r.Count(8)
	g := &Graph{
		nodes: make([]Node, n),
		out:   make([][]NodeID, n),
		in:    make([][]NodeID, n),
	}
	for i := 0; i < n; i++ {
		seq := r.Bytes()
		if r.Err() != nil {
			return nil, fmt.Errorf("graph: decode node %d: %w", i+1, r.Err())
		}
		g.nodes[i] = Node{ID: NodeID(i + 1), Seq: append([]byte(nil), seq...)}
	}
	readAdj := func(kind string) ([][]NodeID, error) {
		adj := make([][]NodeID, n)
		for i := 0; i < n; i++ {
			deg := r.Count(4)
			if deg == 0 {
				continue
			}
			edges := make([]NodeID, deg)
			for e := 0; e < deg; e++ {
				id := NodeID(r.U32())
				if r.Err() == nil && (id < 1 || int(id) > n) {
					return nil, fmt.Errorf("graph: decode %s-edge of node %d: ID %d out of range [1,%d]", kind, i+1, id, n)
				}
				edges[e] = id
			}
			adj[i] = edges
		}
		if r.Err() != nil {
			return nil, fmt.Errorf("graph: decode %s-adjacency: %w", kind, r.Err())
		}
		return adj, nil
	}
	var err error
	if g.out, err = readAdj("out"); err != nil {
		return nil, err
	}
	if g.in, err = readAdj("in"); err != nil {
		return nil, err
	}
	np := r.Count(8)
	g.paths = make([]Path, 0, np)
	for i := 0; i < np; i++ {
		name := r.String()
		steps := r.Count(4)
		nodes := make([]NodeID, steps)
		for s := 0; s < steps; s++ {
			id := NodeID(r.U32())
			if r.Err() == nil && (id < 1 || int(id) > n) {
				return nil, fmt.Errorf("graph: decode path %q step %d: ID %d out of range [1,%d]", name, s, id, n)
			}
			nodes[s] = id
		}
		g.paths = append(g.paths, Path{Name: name, Nodes: nodes})
	}
	if r.Err() != nil {
		return nil, fmt.Errorf("graph: decode: %w", r.Err())
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("graph: decode: %d trailing bytes after payload", r.Remaining())
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: decoded payload fails validation: %w", err)
	}
	return g, nil
}

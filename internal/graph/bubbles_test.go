package graph

import (
	"testing"
)

func TestSimpleBubblesSNP(t *testing.T) {
	// 1 → {2,3} → 4 : one SNP-like bubble.
	g := New()
	g.AddNode([]byte("AAAA"))
	g.AddNode([]byte("C"))
	g.AddNode([]byte("G"))
	g.AddNode([]byte("TTTT"))
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 4)
	g.AddEdge(3, 4)
	bubbles := SimpleBubbles(g)
	if len(bubbles) != 1 {
		t.Fatalf("bubbles = %d, want 1", len(bubbles))
	}
	b := bubbles[0]
	if b.Source != 1 || b.Sink != 4 || len(b.Arms) != 2 {
		t.Fatalf("bubble = %+v", b)
	}
	st := ComputeBubbleStats(g)
	if st.Count != 1 || st.SNPLike != 1 || st.MaxArmLen != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSimpleBubblesDeletion(t *testing.T) {
	// 1 → 2 → 3 with a deletion edge 1 → 3: one single-arm bubble.
	g := New()
	g.AddNode([]byte("AAAA"))
	g.AddNode([]byte("CCC"))
	g.AddNode([]byte("TTTT"))
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(1, 3)
	bubbles := SimpleBubbles(g)
	if len(bubbles) != 1 || len(bubbles[0].Arms) != 1 {
		t.Fatalf("bubbles = %+v", bubbles)
	}
	st := ComputeBubbleStats(g)
	if st.MaxArmLen != 3 || st.SNPLike != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNoBubblesOnChain(t *testing.T) {
	g := New()
	g.AddNode([]byte("A"))
	g.AddNode([]byte("C"))
	g.AddEdge(1, 2)
	if got := SimpleBubbles(g); len(got) != 0 {
		t.Fatalf("chain has %d bubbles", len(got))
	}
}

func TestBubblesIgnoreComplexRegions(t *testing.T) {
	// Arms with extra in-edges are not simple-bubble arms.
	g := New()
	for i := 0; i < 5; i++ {
		g.AddNode([]byte("A"))
	}
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 4)
	g.AddEdge(3, 4)
	g.AddEdge(5, 2) // node 2 has two parents → not a simple arm
	bubbles := SimpleBubbles(g)
	for _, b := range bubbles {
		for _, a := range b.Arms {
			if a == 2 {
				t.Fatal("arm with extra parent accepted")
			}
		}
	}
}

package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// diamond builds 1→{2,3}→4 with node sequences of the given lengths.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New()
	g.AddNode([]byte("ACGT"))  // 1
	g.AddNode([]byte("AA"))    // 2
	g.AddNode([]byte("GGGGG")) // 3
	g.AddNode([]byte("TT"))    // 4
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 4)
	g.AddEdge(3, 4)
	return g
}

func TestAddNodeEdge(t *testing.T) {
	g := diamond(t)
	if g.NumNodes() != 4 || g.NumEdges() != 4 {
		t.Fatalf("nodes/edges = %d/%d", g.NumNodes(), g.NumEdges())
	}
	g.AddEdge(1, 2) // duplicate ignored
	if g.NumEdges() != 4 {
		t.Fatal("duplicate edge not ignored")
	}
	if !g.HasEdge(1, 3) || g.HasEdge(3, 1) {
		t.Fatal("HasEdge wrong")
	}
	if g.HasEdge(0, 1) || g.HasEdge(1, 99) {
		t.Fatal("HasEdge must reject invalid IDs")
	}
	if string(g.Seq(3)) != "GGGGG" {
		t.Fatal("Seq wrong")
	}
	if len(g.In(4)) != 2 || len(g.Out(1)) != 2 {
		t.Fatal("adjacency wrong")
	}
}

func TestTopoSort(t *testing.T) {
	g := diamond(t)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[NodeID]int{}
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range [][2]NodeID{{1, 2}, {1, 3}, {2, 4}, {3, 4}} {
		if pos[e[0]] >= pos[e[1]] {
			t.Fatalf("topo order violates edge %v", e)
		}
	}
	if !g.IsAcyclic() {
		t.Fatal("diamond is acyclic")
	}
	g.AddEdge(4, 1)
	if _, err := g.TopoSort(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestPaths(t *testing.T) {
	g := diamond(t)
	if err := g.AddPath("h1", []NodeID{1, 2, 4}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddPath("bad", []NodeID{1, 99}); err == nil {
		t.Fatal("path with unknown node accepted")
	}
	if got := string(g.PathSeq(g.Paths()[0])); got != "ACGTAATT" {
		t.Fatalf("PathSeq = %q", got)
	}
	// AddPath through a non-edge creates the edge.
	if err := g.AddPath("h2", []NodeID{2, 3}); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(2, 3) {
		t.Fatal("AddPath must create missing edges")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestShortestPathLen(t *testing.T) {
	g := diamond(t)
	if d := g.ShortestPathLen(1, 4); d != 2 {
		t.Fatalf("ShortestPathLen(1,4) = %d, want 2 (through node 2)", d)
	}
	if d := g.ShortestPathLen(1, 2); d != 0 {
		t.Fatalf("direct successor distance = %d, want 0", d)
	}
	if d := g.ShortestPathLen(4, 1); d != -1 {
		t.Fatalf("unreachable = %d, want -1", d)
	}
	if d := g.ShortestPathLen(2, 2); d != 0 {
		t.Fatalf("self distance = %d", d)
	}
}

func TestStatsAndValidate(t *testing.T) {
	g := diamond(t)
	s := g.ComputeStats()
	if s.Nodes != 4 || s.Edges != 4 || s.TotalBases != 13 || s.MaxNodeLen != 5 || !s.Acyclic {
		t.Fatalf("stats = %+v", s)
	}
	if s.AvgNodeLen != 13.0/4 {
		t.Fatalf("avg = %v", s.AvgNodeLen)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := New()
	bad.AddNode(nil)
	if bad.Validate() == nil {
		t.Fatal("empty node sequence accepted")
	}
}

func TestExtractSubgraph(t *testing.T) {
	g := diamond(t)
	sub := Extract(g, 2, 100)
	if sub.NumNodes() != 4 {
		t.Fatalf("radius 100 should reach all nodes, got %d", sub.NumNodes())
	}
	if sub.Root == 0 || sub.Orig[sub.Root-1] != 2 {
		t.Fatal("root mapping wrong")
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	// Radius 0: only the seed.
	tiny := Extract(g, 2, 0)
	if tiny.NumNodes() != 1 {
		t.Fatalf("radius 0 extracted %d nodes", tiny.NumNodes())
	}
	// Edges must be preserved among extracted nodes.
	full := Extract(g, 1, 1000)
	if full.NumEdges() != 4 {
		t.Fatalf("extracted %d edges, want 4", full.NumEdges())
	}
}

func TestAcyclify(t *testing.T) {
	g := New()
	for i := 0; i < 3; i++ {
		g.AddNode([]byte("A"))
	}
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 1) // cycle
	sub := &Subgraph{Graph: g, Orig: []NodeID{1, 2, 3}, Root: 1}
	dag := sub.Acyclify()
	if !dag.IsAcyclic() {
		t.Fatal("Acyclify left a cycle")
	}
	if dag.NumNodes() != 3 {
		t.Fatal("Acyclify changed node count")
	}
	if !dag.HasEdge(1, 2) || !dag.HasEdge(2, 3) {
		t.Fatal("Acyclify dropped forward edges")
	}
}

func TestSplitPreservesSequence(t *testing.T) {
	g := New()
	g.AddNode([]byte("ACGTACGTACGTACGTACGTACGTACG")) // 27 bp
	g.AddNode([]byte("TT"))
	g.AddEdge(1, 2)
	if err := g.AddPath("h", []NodeID{1, 2}); err != nil {
		t.Fatal(err)
	}
	split := Split(g, 8)
	if split.ComputeStats().MaxNodeLen > 8 {
		t.Fatal("Split left a long node")
	}
	if err := split.Validate(); err != nil {
		t.Fatal(err)
	}
	// Path sequence must be unchanged.
	want := string(g.PathSeq(g.Paths()[0]))
	got := string(split.PathSeq(split.Paths()[0]))
	if got != want {
		t.Fatalf("split path seq %q != original %q", got, want)
	}
	// Edge 1→2 must survive as lastChunk(1)→firstChunk(2).
	if !split.IsAcyclic() {
		t.Fatal("split of a DAG must stay a DAG")
	}
}

func TestSplitProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 12, 20)
		split := Split(g, 4)
		if split.ComputeStats().MaxNodeLen > 4 {
			return false
		}
		if split.Validate() != nil {
			return false
		}
		for i, p := range g.Paths() {
			if string(g.PathSeq(p)) != string(split.PathSeq(split.Paths()[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// randomDAG builds a random DAG with a random embedded path.
func randomDAG(rng *rand.Rand, nodes, edges int) *Graph {
	g := New()
	for i := 0; i < nodes; i++ {
		n := rng.Intn(12) + 1
		seq := make([]byte, n)
		for j := range seq {
			seq[j] = "ACGT"[rng.Intn(4)]
		}
		g.AddNode(seq)
	}
	for i := 0; i < edges; i++ {
		a := rng.Intn(nodes-1) + 1
		b := a + 1 + rng.Intn(nodes-a)
		g.AddEdge(NodeID(a), NodeID(b))
	}
	// A path following increasing IDs along existing edges.
	var walk []NodeID
	cur := NodeID(1)
	walk = append(walk, cur)
	for {
		outs := g.Out(cur)
		if len(outs) == 0 {
			break
		}
		cur = outs[rng.Intn(len(outs))]
		walk = append(walk, cur)
	}
	if err := g.AddPath("p", walk); err != nil {
		panic(err)
	}
	return g
}

func TestNodePanicsOnBadID(t *testing.T) {
	g := diamond(t)
	defer func() {
		if recover() == nil {
			t.Fatal("Node(0) must panic")
		}
	}()
	g.Node(0)
}

package graph

import (
	"testing"
)

// buildVariantGraph constructs ref segments with a SNP, an insertion and a
// deletion, with known coordinates.
func buildVariantGraph(t *testing.T) (*Graph, []byte) {
	t.Helper()
	g := New()
	// ref = AAAA C GGGG TTTT  with: SNP C→T at pos 4, insertion of "CCC"
	// after pos 9 (inside between segments), deletion of TTTT at pos 12...
	// Laid out explicitly:
	seg1 := g.AddNode([]byte("AAAA"))  // ref[0:4)
	refC := g.AddNode([]byte("C"))     // ref[4:5)
	altT := g.AddNode([]byte("T"))     // SNP alt
	seg2 := g.AddNode([]byte("GGGGG")) // ref[5:10)
	ins := g.AddNode([]byte("CCC"))    // insertion after pos 10
	seg3 := g.AddNode([]byte("TT"))    // ref[10:12)
	seg4 := g.AddNode([]byte("ACAC"))  // ref[12:16)

	ref := []NodeID{seg1, refC, seg2, seg3, seg4}
	if err := g.AddPath("ref", ref); err != nil {
		t.Fatal(err)
	}
	// hap1: SNP + insertion.
	if err := g.AddPath("h1", []NodeID{seg1, altT, seg2, ins, seg3, seg4}); err != nil {
		t.Fatal(err)
	}
	// hap2: deletion of seg3 ("TT").
	if err := g.AddPath("h2", []NodeID{seg1, refC, seg2, seg4}); err != nil {
		t.Fatal(err)
	}
	return g, g.PathSeq(g.Paths()[0])
}

func TestDeconstructKnownVariants(t *testing.T) {
	g, refSeq := buildVariantGraph(t)
	if string(refSeq) != "AAAACGGGGGTTACAC" {
		t.Fatalf("ref layout %q unexpected", refSeq)
	}
	sites, err := Deconstruct(g, "ref", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 3 {
		t.Fatalf("sites = %d, want 3: %+v", len(sites), sites)
	}
	// SNP at ref pos 4: C → T.
	if sites[0].RefPos != 4 || string(sites[0].Ref) != "C" || string(sites[0].Alts[0]) != "T" {
		t.Fatalf("SNP site = %+v", sites[0])
	}
	// Insertion at pos 10: "" → CCC.
	if sites[1].RefPos != 10 || len(sites[1].Ref) != 0 || string(sites[1].Alts[0]) != "CCC" {
		t.Fatalf("insertion site = %+v", sites[1])
	}
	// Deletion at pos 10: TT → "".
	if sites[2].RefPos != 10 || string(sites[2].Ref) != "TT" || len(sites[2].Alts[0]) != 0 {
		t.Fatalf("deletion site = %+v", sites[2])
	}
}

func TestDeconstructUnknownPath(t *testing.T) {
	g := New()
	g.AddNode([]byte("A"))
	if _, err := Deconstruct(g, "nope", 100); err == nil {
		t.Fatal("unknown path must be rejected")
	}
}

func TestDeconstructMergesAllelesAtSamePos(t *testing.T) {
	// Triallelic SNP: ref C with alts T and G.
	g := New()
	a := g.AddNode([]byte("AAAA"))
	c := g.AddNode([]byte("C"))
	alt1 := g.AddNode([]byte("T"))
	alt2 := g.AddNode([]byte("G"))
	b := g.AddNode([]byte("TTTT"))
	if err := g.AddPath("ref", []NodeID{a, c, b}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddPath("h1", []NodeID{a, alt1, b}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddPath("h2", []NodeID{a, alt2, b}); err != nil {
		t.Fatal(err)
	}
	sites, err := Deconstruct(g, "ref", 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 1 || len(sites[0].Alts) != 2 {
		t.Fatalf("sites = %+v, want one triallelic site", sites)
	}
}

func TestDeconstructNoVariants(t *testing.T) {
	g := New()
	a := g.AddNode([]byte("ACGT"))
	b := g.AddNode([]byte("TTTT"))
	g.AddEdge(a, b)
	if err := g.AddPath("ref", []NodeID{a, b}); err != nil {
		t.Fatal(err)
	}
	sites, err := Deconstruct(g, "ref", 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 0 {
		t.Fatalf("chain graph has %d sites", len(sites))
	}
}

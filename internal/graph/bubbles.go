package graph

// Bubble is a simple bubble: a source node with ≥2 parallel arm nodes that
// all reconverge on the same sink. Bubbles are the graph signature of
// variants (SNPs and small indels each leave one) and the unit the
// polishing stages inspect.
type Bubble struct {
	Source NodeID
	Arms   []NodeID
	Sink   NodeID
}

// SimpleBubbles enumerates simple bubbles: for each node s with out-degree
// ≥ 2, the children of s that have exactly one parent (s) and exactly one
// child t shared with at least one sibling form a bubble (s, arms, t).
// Deletion edges (direct s→t) are allowed and don't appear as arms.
func SimpleBubbles(g *Graph) []Bubble {
	var out []Bubble
	for i := 1; i <= g.NumNodes(); i++ {
		s := NodeID(i)
		children := g.Out(s)
		if len(children) < 2 {
			continue
		}
		// Group candidate arms by their unique sink.
		bySink := map[NodeID][]NodeID{}
		for _, c := range children {
			if len(g.In(c)) != 1 || len(g.Out(c)) != 1 {
				continue
			}
			bySink[g.Out(c)[0]] = append(bySink[g.Out(c)[0]], c)
		}
		for sink, arms := range bySink {
			// A direct s→sink edge means a deletion allele alongside arms.
			if len(arms) >= 2 || (len(arms) == 1 && g.HasEdge(s, sink)) {
				out = append(out, Bubble{Source: s, Arms: arms, Sink: sink})
			}
		}
	}
	return out
}

// BubbleStats summarizes the bubble content of a graph.
type BubbleStats struct {
	Count     int
	SNPLike   int // all arms length 1
	MaxArmLen int
	TotalArms int
}

// ComputeBubbleStats runs SimpleBubbles and reduces the result.
func ComputeBubbleStats(g *Graph) BubbleStats {
	var st BubbleStats
	for _, b := range SimpleBubbles(g) {
		st.Count++
		st.TotalArms += len(b.Arms)
		snp := true
		for _, a := range b.Arms {
			n := len(g.Seq(a))
			if n > st.MaxArmLen {
				st.MaxArmLen = n
			}
			if n != 1 {
				snp = false
			}
		}
		if snp && len(b.Arms) > 0 {
			st.SNPLike++
		}
	}
	return st
}

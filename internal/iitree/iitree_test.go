package iitree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// bruteOverlap collects payloads of intervals overlapping [start, end).
func bruteOverlap(ivs []Interval, start, end int64) []int64 {
	var out []int64
	for _, iv := range ivs {
		if iv.Start < end && iv.End > start {
			out = append(out, iv.Data)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func collect(t *Tree, start, end int64) []int64 {
	var out []int64
	t.Overlap(start, end, nil, func(iv Interval) bool {
		out = append(out, iv.Data)
		return true
	})
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func TestOverlapMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(200)
		tree := New()
		var ivs []Interval
		for i := 0; i < n; i++ {
			s := int64(rng.Intn(1000))
			e := s + 1 + int64(rng.Intn(50))
			tree.Add(s, e, int64(i))
			ivs = append(ivs, Interval{s, e, int64(i)})
		}
		tree.Build()
		for q := 0; q < 50; q++ {
			s := int64(rng.Intn(1100)) - 50
			e := s + 1 + int64(rng.Intn(80))
			want := bruteOverlap(ivs, s, e)
			got := collect(tree, s, e)
			if len(got) != len(want) {
				t.Fatalf("trial %d n=%d query [%d,%d): got %d hits, want %d", trial, n, s, e, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d query [%d,%d): got %v want %v", trial, s, e, got, want)
				}
			}
		}
	}
}

func TestOverlapProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		tree := New()
		var ivs []Interval
		for i := 0; i < n; i++ {
			s := int64(rng.Intn(100))
			e := s + 1 + int64(rng.Intn(10))
			tree.Add(s, e, int64(i))
			ivs = append(ivs, Interval{s, e, int64(i)})
		}
		tree.Build()
		for q := 0; q < 10; q++ {
			s := int64(rng.Intn(120)) - 10
			e := s + 1 + int64(rng.Intn(20))
			if len(collect(tree, s, e)) != len(bruteOverlap(ivs, s, e)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestEarlyStop(t *testing.T) {
	tree := New()
	for i := 0; i < 10; i++ {
		tree.Add(0, 100, int64(i))
	}
	tree.Build()
	n := 0
	tree.Overlap(0, 100, nil, func(Interval) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop visited %d, want 3", n)
	}
}

func TestEdgeCases(t *testing.T) {
	tree := New()
	tree.Add(5, 5, 1)  // empty: ignored
	tree.Add(10, 5, 2) // inverted: ignored
	tree.Add(1, 4, 3)
	tree.Build()
	if tree.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (invalid intervals ignored)", tree.Len())
	}
	// Half-open semantics: [1,4) does not overlap [4,5).
	if got := tree.CountOverlaps(4, 5, nil); got != 0 {
		t.Fatalf("half-open overlap = %d", got)
	}
	if got := tree.CountOverlaps(3, 4, nil); got != 1 {
		t.Fatalf("overlap = %d", got)
	}
	// Empty query range.
	if got := tree.CountOverlaps(7, 7, nil); got != 0 {
		t.Fatal("empty query must match nothing")
	}
	// Empty tree.
	empty := New()
	empty.Build()
	if got := empty.CountOverlaps(0, 10, nil); got != 0 {
		t.Fatal("empty tree must match nothing")
	}
}

func TestOverlapBeforeBuildPanics(t *testing.T) {
	tree := New()
	tree.Add(1, 2, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("Overlap before Build must panic")
		}
	}()
	tree.Overlap(0, 10, nil, func(Interval) bool { return true })
}

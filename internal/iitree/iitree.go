// Package iitree implements an implicit interval tree (the paper's [36],
// Li's cgranges layout): intervals sorted by start position form an implicit
// balanced binary tree augmented with subtree maximum end positions, giving
// cache-friendly, allocation-free overlap queries. Seqwish's transclosure
// kernel uses it to find all alignment matches covering a character.
package iitree

import (
	"sort"

	"pangenomicsbench/internal/perf"
)

// Interval is a half-open range [Start, End) with a user payload.
type Interval struct {
	Start, End int64
	Data       int64
}

// Tree is an implicit interval tree. Build must be called after all Add
// calls and before any Overlap query.
type Tree struct {
	iv     []Interval
	maxEnd []int64
	k      int // levels of the implicit tree
	built  bool
	base   uint64
}

// New returns an empty tree.
func New() *Tree { return &Tree{base: perf.NewAddrSpace().Alloc(1 << 20)} }

// Add inserts an interval (invalid if Start >= End; silently ignored).
func (t *Tree) Add(start, end, data int64) {
	if start >= end {
		return
	}
	t.iv = append(t.iv, Interval{start, end, data})
	t.built = false
}

// Len returns the number of stored intervals.
func (t *Tree) Len() int { return len(t.iv) }

// Build sorts the intervals and computes the augmentation. It is the
// "high-performance sorting step" the paper notes these data structures
// require.
func (t *Tree) Build() {
	sort.Slice(t.iv, func(a, b int) bool {
		if t.iv[a].Start != t.iv[b].Start {
			return t.iv[a].Start < t.iv[b].Start
		}
		return t.iv[a].End < t.iv[b].End
	})
	n := len(t.iv)
	t.maxEnd = make([]int64, n)
	for i, iv := range t.iv {
		t.maxEnd[i] = iv.End
	}
	// Implicit binary tree: the node at index i on level l (leaves are
	// level 0 at even indices) covers the contiguous index range
	// [i-2^l+1, i+2^l). Compute subtree max ends bottom-up; nodes on the
	// incomplete right spine aggregate their partial right subtree by
	// scanning raw ends.
	var k int
	for k = 0; (1 << uint(k+1)) <= n; k++ {
	}
	for l := 1; l <= k; l++ {
		step := 1 << uint(l+1)
		half := 1 << uint(l-1)
		for i := (1 << uint(l)) - 1; i < n; i += step {
			end := t.maxEnd[i]
			if left := i - half; t.maxEnd[left] > end {
				end = t.maxEnd[left]
			}
			if right := i + half; right < n {
				if t.maxEnd[right] > end {
					end = t.maxEnd[right]
				}
			} else {
				hi := i + (1 << uint(l))
				if hi > n {
					hi = n
				}
				for j := i + 1; j < hi; j++ {
					if t.iv[j].End > end {
						end = t.iv[j].End
					}
				}
			}
			t.maxEnd[i] = end
		}
	}
	t.k = k
	t.built = true
}

// Overlap calls fn for every interval overlapping [start, end). fn may
// return false to stop early. Overlap panics if Build was not called.
func (t *Tree) Overlap(start, end int64, probe *perf.Probe, fn func(Interval) bool) {
	if !t.built {
		panic("iitree: Overlap called before Build")
	}
	n := len(t.iv)
	if n == 0 || start >= end {
		return
	}
	type frame struct {
		x, l int
		w    bool // whether the left subtree has been visited
	}
	var stack []frame
	stack = append(stack, frame{(1 << uint(t.k)) - 1, t.k, false})
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		probe.Op(perf.ScalarInt, 4)
		if f.l <= 2 {
			// Small subtree: scan its contiguous index range directly.
			lo := f.x - (1 << uint(f.l)) + 1
			if lo < 0 {
				lo = 0
			}
			hi := f.x + (1 << uint(f.l))
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				probe.Load(uintptr(t.base)+uintptr(i*32), 32)
				if t.iv[i].Start >= end {
					probe.TakeBranch(0xe0, false)
					break
				}
				if t.iv[i].End > start {
					probe.TakeBranch(0xe0, true)
					if !fn(t.iv[i]) {
						return
					}
				}
			}
			continue
		}
		if !f.w { // push left subtree first if it can contain overlaps
			y := f.x - (1 << uint(f.l-1))
			stack = append(stack, frame{f.x, f.l, true})
			if y >= n || t.maxEnd[y] > start {
				probe.TakeBranch(0xe1, true)
				stack = append(stack, frame{y, f.l - 1, false})
			} else {
				probe.TakeBranch(0xe1, false)
			}
			continue
		}
		// Visit the node itself, then the right subtree. Nodes at or past n
		// do not exist and their right subtrees are entirely out of range.
		if f.x >= n {
			continue
		}
		probe.Load(uintptr(t.base)+uintptr(f.x*32), 32)
		if t.iv[f.x].Start >= end {
			continue // everything right of here starts too late
		}
		if t.iv[f.x].End > start {
			if !fn(t.iv[f.x]) {
				return
			}
		}
		if f.x+1 < n {
			stack = append(stack, frame{f.x + (1 << uint(f.l-1)), f.l - 1, false})
		}
	}
}

// CountOverlaps returns the number of intervals overlapping [start, end).
func (t *Tree) CountOverlaps(start, end int64, probe *perf.Probe) int {
	n := 0
	t.Overlap(start, end, probe, func(Interval) bool {
		n++
		return true
	})
	return n
}

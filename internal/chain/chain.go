// Package chain implements the clustering and chaining stage of the mapping
// pipelines (Fig. 1.2). Seq2Seq chaining measures the distance between
// seeds by coordinate subtraction; Seq2Graph chaining must use shortest-path
// lengths through the reference graph (§2.1) — the central computational
// difference between the two pipelines.
package chain

import (
	"sort"

	"pangenomicsbench/internal/graph"
	"pangenomicsbench/internal/perf"
)

// Anchor is one seed hit: a query position matched to a reference position
// (linear) or a node offset (graph).
type Anchor struct {
	QPos   int
	RPos   int // linear reference position, or path-space position
	Node   graph.NodeID
	Offset int // offset within Node (graph anchors)
	Len    int
}

// Chain is a scored co-linear group of anchors.
type Chain struct {
	Anchors []Anchor
	Score   int
}

// dkey identifies one memoized node-pair distance.
type dkey struct{ a, b graph.NodeID }

// Scratch holds the per-read working state of the chaining DP — the sorted
// anchor copy, score/backpointer arrays, the chain-extraction bookkeeping,
// the graph-distance memo, and the arena that backs the returned chains'
// Anchors slices. Reusing a Scratch across reads removes the per-read
// allocations of Linear/GraphChains (the hot-path allocation bug the batched
// mapping path fixes); the results are byte-identical to the plain
// functions. Returned chains alias the scratch arena and stay valid only
// until the next call on the same Scratch.
type Scratch struct {
	a      []Anchor
	score  []int
	prev   []int
	order  []int
	used   []bool
	memo   map[dkey]int
	arena  []Anchor // backing for collected chains' Anchors
	chains []Chain
}

// Linear chains anchors on a linear reference with 1D dynamic programming
// (minimap-style): anchors sorted by reference position; an anchor extends a
// chain when both query and reference advance, with a gap-difference
// penalty.
func Linear(anchors []Anchor, maxGap int, probe *perf.Probe) []Chain {
	var s Scratch
	return s.Linear(anchors, maxGap, probe)
}

// Linear is the scratch-reusing variant of the package function, identical
// in output.
func (s *Scratch) Linear(anchors []Anchor, maxGap int, probe *perf.Probe) []Chain {
	if len(anchors) == 0 {
		return nil
	}
	a := append(s.a[:0], anchors...)
	s.a = a
	sort.Slice(a, func(i, j int) bool {
		if a[i].RPos != a[j].RPos {
			return a[i].RPos < a[j].RPos
		}
		return a[i].QPos < a[j].QPos
	})
	n := len(a)
	score := ensureInts(&s.score, n)
	prev := ensureInts(&s.prev, n)
	for i := range a {
		score[i] = a[i].Len
		prev[i] = -1
		// Bounded lookback, as minimap2 does.
		lo := i - 50
		if lo < 0 {
			lo = 0
		}
		for j := lo; j < i; j++ {
			probe.Load(uintptr(0x200000)+uintptr(j*24), 24)
			dr := a[i].RPos - a[j].RPos
			dq := a[i].QPos - a[j].QPos
			if dq <= 0 || dr <= 0 || dr > maxGap || dq > maxGap {
				probe.TakeBranch(0x31, false)
				continue
			}
			probe.TakeBranch(0x31, true)
			gap := dr - dq
			if gap < 0 {
				gap = -gap
			}
			s := score[j] + a[i].Len - gap/2
			if s > score[i] {
				score[i] = s
				prev[i] = j
			}
			probe.Op(perf.ScalarInt, 8)
		}
	}
	return s.collectChains(a, score, prev)
}

// GraphChains clusters graph anchors by graph locality: two anchors belong
// to the same cluster when the shortest path between their nodes (in base
// pairs) is consistent with their query distance. This replaces coordinate
// subtraction with graph traversal — the expensive step §2.1 highlights.
func GraphChains(g *graph.Graph, anchors []Anchor, maxGap int, probe *perf.Probe) []Chain {
	var s Scratch
	return s.GraphChains(g, anchors, maxGap, probe)
}

// GraphChains is the scratch-reusing variant of the package function,
// identical in output. The distance memo is cleared on every call (cached
// distances depend on maxGap), but its buckets are retained.
func (s *Scratch) GraphChains(g *graph.Graph, anchors []Anchor, maxGap int, probe *perf.Probe) []Chain {
	if len(anchors) == 0 {
		return nil
	}
	a := append(s.a[:0], anchors...)
	s.a = a
	sort.Slice(a, func(i, j int) bool { return a[i].QPos < a[j].QPos })
	n := len(a)
	score := ensureInts(&s.score, n)
	prev := ensureInts(&s.prev, n)
	// Memoized distance oracle ("memoization in large data structures",
	// §2.1).
	if s.memo == nil {
		s.memo = make(map[dkey]int)
	}
	clear(s.memo)
	memo := s.memo
	dist := func(x, y graph.NodeID) int {
		if x == y {
			return 0
		}
		k := dkey{x, y}
		probe.Load(uintptr(0x300000)+uintptr(uint32(x)*131+uint32(y))%(1<<20), 8)
		if d, ok := memo[k]; ok {
			probe.TakeBranch(0x32, true)
			return d
		}
		probe.TakeBranch(0x32, false)
		d := g.ShortestPathLenBounded(x, y, maxGap)
		probe.Op(perf.ScalarInt, 30) // graph traversal work
		memo[k] = d
		return d
	}
	for i := range a {
		score[i] = a[i].Len
		prev[i] = -1
		lo := i - 30
		if lo < 0 {
			lo = 0
		}
		for j := lo; j < i; j++ {
			dq := a[i].QPos - a[j].QPos
			if dq <= 0 || dq > maxGap {
				probe.TakeBranch(0x33, false)
				continue
			}
			probe.TakeBranch(0x33, true)
			var dr int
			if a[i].Node == a[j].Node {
				dr = a[i].Offset - a[j].Offset
			} else {
				between := dist(a[j].Node, a[i].Node)
				if between < 0 {
					continue // unreachable: different cluster
				}
				dr = (len(g.Seq(a[j].Node)) - a[j].Offset) + between + a[i].Offset
			}
			if dr <= 0 || dr > maxGap {
				continue
			}
			gap := dr - dq
			if gap < 0 {
				gap = -gap
			}
			sc := score[j] + a[i].Len - gap/2
			if sc > score[i] {
				score[i] = sc
				prev[i] = j
			}
			probe.Op(perf.ScalarInt, 10)
		}
	}
	return s.collectChains(a, score, prev)
}

// ensureInts returns *buf with length n, growing the backing array only when
// needed (contents unspecified).
func ensureInts(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// collectChains extracts disjoint chains by repeatedly taking the best
// unused chain end. The returned chains' Anchors slices are carved from the
// scratch arena; earlier carvings stay valid when the arena grows because a
// grown arena abandons (never overwrites) its old backing array.
func (s *Scratch) collectChains(a []Anchor, score, prev []int) []Chain {
	n := len(a)
	order := ensureInts(&s.order, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool { return score[order[x]] > score[order[y]] })
	if cap(s.used) < n {
		s.used = make([]bool, n)
	}
	used := s.used[:n]
	for i := range used {
		used[i] = false
	}
	arena := s.arena[:0]
	chains := s.chains[:0]
	for _, end := range order {
		if used[end] {
			continue
		}
		start := len(arena)
		ok := true
		for i := end; i >= 0; i = prev[i] {
			if used[i] {
				ok = false
				break
			}
			arena = append(arena, a[i])
		}
		if !ok {
			arena = arena[:start]
			continue
		}
		for i := end; i >= 0; i = prev[i] {
			used[i] = true
		}
		// The walk collected back-to-front; reverse the carved segment.
		seg := arena[start:len(arena):len(arena)]
		for x, y := 0, len(seg)-1; x < y; x, y = x+1, y-1 {
			seg[x], seg[y] = seg[y], seg[x]
		}
		chains = append(chains, Chain{Score: score[end], Anchors: seg})
	}
	s.arena, s.chains = arena, chains
	return chains
}

// Filter keeps the top chains by score, dropping those below frac of the
// best score and returning at most maxChains — the filtering stage of
// Fig. 1 (some tools' aggressive pruning, §2.1). The result is a prefix of
// the (in-place, descending-score) sorted input: no allocation.
func Filter(chains []Chain, frac float64, maxChains int) []Chain {
	if len(chains) == 0 {
		return nil
	}
	sort.Slice(chains, func(i, j int) bool { return chains[i].Score > chains[j].Score })
	cut := int(float64(chains[0].Score) * frac)
	n := 0
	for _, c := range chains {
		if c.Score < cut || n >= maxChains {
			break
		}
		n++
	}
	return chains[:n]
}

// Package chain implements the clustering and chaining stage of the mapping
// pipelines (Fig. 1.2). Seq2Seq chaining measures the distance between
// seeds by coordinate subtraction; Seq2Graph chaining must use shortest-path
// lengths through the reference graph (§2.1) — the central computational
// difference between the two pipelines.
package chain

import (
	"sort"

	"pangenomicsbench/internal/graph"
	"pangenomicsbench/internal/perf"
)

// Anchor is one seed hit: a query position matched to a reference position
// (linear) or a node offset (graph).
type Anchor struct {
	QPos   int
	RPos   int // linear reference position, or path-space position
	Node   graph.NodeID
	Offset int // offset within Node (graph anchors)
	Len    int
}

// Chain is a scored co-linear group of anchors.
type Chain struct {
	Anchors []Anchor
	Score   int
}

// Linear chains anchors on a linear reference with 1D dynamic programming
// (minimap-style): anchors sorted by reference position; an anchor extends a
// chain when both query and reference advance, with a gap-difference
// penalty.
func Linear(anchors []Anchor, maxGap int, probe *perf.Probe) []Chain {
	if len(anchors) == 0 {
		return nil
	}
	a := append([]Anchor(nil), anchors...)
	sort.Slice(a, func(i, j int) bool {
		if a[i].RPos != a[j].RPos {
			return a[i].RPos < a[j].RPos
		}
		return a[i].QPos < a[j].QPos
	})
	n := len(a)
	score := make([]int, n)
	prev := make([]int, n)
	for i := range a {
		score[i] = a[i].Len
		prev[i] = -1
		// Bounded lookback, as minimap2 does.
		lo := i - 50
		if lo < 0 {
			lo = 0
		}
		for j := lo; j < i; j++ {
			probe.Load(uintptr(0x200000)+uintptr(j*24), 24)
			dr := a[i].RPos - a[j].RPos
			dq := a[i].QPos - a[j].QPos
			if dq <= 0 || dr <= 0 || dr > maxGap || dq > maxGap {
				probe.TakeBranch(0x31, false)
				continue
			}
			probe.TakeBranch(0x31, true)
			gap := dr - dq
			if gap < 0 {
				gap = -gap
			}
			s := score[j] + a[i].Len - gap/2
			if s > score[i] {
				score[i] = s
				prev[i] = j
			}
			probe.Op(perf.ScalarInt, 8)
		}
	}
	return collectChains(a, score, prev)
}

// GraphChains clusters graph anchors by graph locality: two anchors belong
// to the same cluster when the shortest path between their nodes (in base
// pairs) is consistent with their query distance. This replaces coordinate
// subtraction with graph traversal — the expensive step §2.1 highlights.
func GraphChains(g *graph.Graph, anchors []Anchor, maxGap int, probe *perf.Probe) []Chain {
	if len(anchors) == 0 {
		return nil
	}
	a := append([]Anchor(nil), anchors...)
	sort.Slice(a, func(i, j int) bool { return a[i].QPos < a[j].QPos })
	n := len(a)
	score := make([]int, n)
	prev := make([]int, n)
	// Memoized distance oracle ("memoization in large data structures",
	// §2.1).
	type dkey struct{ a, b graph.NodeID }
	memo := map[dkey]int{}
	dist := func(x, y graph.NodeID) int {
		if x == y {
			return 0
		}
		k := dkey{x, y}
		probe.Load(uintptr(0x300000)+uintptr(uint32(x)*131+uint32(y))%(1<<20), 8)
		if d, ok := memo[k]; ok {
			probe.TakeBranch(0x32, true)
			return d
		}
		probe.TakeBranch(0x32, false)
		d := g.ShortestPathLenBounded(x, y, maxGap)
		probe.Op(perf.ScalarInt, 30) // graph traversal work
		memo[k] = d
		return d
	}
	for i := range a {
		score[i] = a[i].Len
		prev[i] = -1
		lo := i - 30
		if lo < 0 {
			lo = 0
		}
		for j := lo; j < i; j++ {
			dq := a[i].QPos - a[j].QPos
			if dq <= 0 || dq > maxGap {
				probe.TakeBranch(0x33, false)
				continue
			}
			probe.TakeBranch(0x33, true)
			var dr int
			if a[i].Node == a[j].Node {
				dr = a[i].Offset - a[j].Offset
			} else {
				between := dist(a[j].Node, a[i].Node)
				if between < 0 {
					continue // unreachable: different cluster
				}
				dr = (len(g.Seq(a[j].Node)) - a[j].Offset) + between + a[i].Offset
			}
			if dr <= 0 || dr > maxGap {
				continue
			}
			gap := dr - dq
			if gap < 0 {
				gap = -gap
			}
			s := score[j] + a[i].Len - gap/2
			if s > score[i] {
				score[i] = s
				prev[i] = j
			}
			probe.Op(perf.ScalarInt, 10)
		}
	}
	return collectChains(a, score, prev)
}

// collectChains extracts disjoint chains by repeatedly taking the best
// unused chain end.
func collectChains(a []Anchor, score, prev []int) []Chain {
	n := len(a)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool { return score[order[x]] > score[order[y]] })
	used := make([]bool, n)
	var chains []Chain
	for _, end := range order {
		if used[end] {
			continue
		}
		var rev []Anchor
		ok := true
		for i := end; i >= 0; i = prev[i] {
			if used[i] {
				ok = false
				break
			}
			rev = append(rev, a[i])
		}
		if !ok {
			continue
		}
		for i := end; i >= 0; i = prev[i] {
			used[i] = true
		}
		ch := Chain{Score: score[end], Anchors: make([]Anchor, len(rev))}
		for i := range rev {
			ch.Anchors[i] = rev[len(rev)-1-i]
		}
		chains = append(chains, ch)
	}
	return chains
}

// Filter keeps the top chains by score, dropping those below frac of the
// best score and returning at most maxChains — the filtering stage of
// Fig. 1 (some tools' aggressive pruning, §2.1).
func Filter(chains []Chain, frac float64, maxChains int) []Chain {
	if len(chains) == 0 {
		return nil
	}
	sort.Slice(chains, func(i, j int) bool { return chains[i].Score > chains[j].Score })
	cut := int(float64(chains[0].Score) * frac)
	var out []Chain
	for _, c := range chains {
		if c.Score < cut || len(out) >= maxChains {
			break
		}
		out = append(out, c)
	}
	return out
}

package chain

import (
	"testing"

	"pangenomicsbench/internal/graph"
)

func TestLinearChainsColinearAnchors(t *testing.T) {
	// Perfectly co-linear anchors chain together.
	anchors := []Anchor{
		{QPos: 0, RPos: 100, Len: 15},
		{QPos: 20, RPos: 120, Len: 15},
		{QPos: 40, RPos: 140, Len: 15},
	}
	chains := Linear(anchors, 1000, nil)
	if len(chains) != 1 {
		t.Fatalf("chains = %d, want 1", len(chains))
	}
	if len(chains[0].Anchors) != 3 {
		t.Fatalf("anchor count = %d", len(chains[0].Anchors))
	}
	if chains[0].Score != 45 {
		t.Fatalf("score = %d, want 45 (no gap penalty)", chains[0].Score)
	}
	// Anchors must come out in query order.
	for i := 1; i < len(chains[0].Anchors); i++ {
		if chains[0].Anchors[i].QPos <= chains[0].Anchors[i-1].QPos {
			t.Fatal("chain not in query order")
		}
	}
}

func TestLinearSplitsDistantAnchors(t *testing.T) {
	anchors := []Anchor{
		{QPos: 0, RPos: 100, Len: 15},
		{QPos: 20, RPos: 900000, Len: 15}, // far away: separate chain
	}
	chains := Linear(anchors, 1000, nil)
	if len(chains) != 2 {
		t.Fatalf("chains = %d, want 2", len(chains))
	}
}

func TestLinearEmpty(t *testing.T) {
	if Linear(nil, 100, nil) != nil {
		t.Fatal("empty anchors must yield no chains")
	}
}

func TestGraphChainsFollowGraphDistance(t *testing.T) {
	// Graph: 1(50bp) → 2(50bp) → 3(50bp). Anchors on nodes 1 and 3 are
	// ~100bp apart in the graph; a query distance of ~100 chains them.
	g := graph.New()
	g.AddNode(make([]byte, 50))
	g.AddNode(make([]byte, 50))
	g.AddNode(make([]byte, 50))
	for i := range []int{0, 1} {
		g.AddEdge(graph.NodeID(i+1), graph.NodeID(i+2))
	}
	fill(g)
	anchors := []Anchor{
		{QPos: 0, Node: 1, Offset: 10, Len: 15},
		{QPos: 100, Node: 3, Offset: 10, Len: 15},
	}
	chains := GraphChains(g, anchors, 500, nil)
	if len(chains) != 1 || len(chains[0].Anchors) != 2 {
		t.Fatalf("graph-consistent anchors should form one chain: %+v", chains)
	}
	// Unreachable node pair must not chain.
	g2 := graph.New()
	g2.AddNode(make([]byte, 50))
	g2.AddNode(make([]byte, 50))
	fill(g2)
	anchors2 := []Anchor{
		{QPos: 0, Node: 2, Offset: 10, Len: 15},
		{QPos: 100, Node: 1, Offset: 10, Len: 15},
	}
	chains2 := GraphChains(g2, anchors2, 500, nil)
	if len(chains2) != 2 {
		t.Fatalf("unreachable anchors must split: %d chains", len(chains2))
	}
}

// fill replaces zero bytes with 'A' so sequences are valid.
func fill(g *graph.Graph) {
	for id := 1; id <= g.NumNodes(); id++ {
		seq := g.Seq(graph.NodeID(id))
		for i := range seq {
			seq[i] = 'A'
		}
	}
}

func TestFilter(t *testing.T) {
	chains := []Chain{{Score: 100}, {Score: 90}, {Score: 10}, {Score: 5}}
	out := Filter(chains, 0.5, 10)
	if len(out) != 2 {
		t.Fatalf("frac filter kept %d, want 2", len(out))
	}
	out = Filter(chains, 0.0, 3)
	if len(out) != 3 {
		t.Fatalf("count filter kept %d, want 3", len(out))
	}
	if Filter(nil, 0.5, 3) != nil {
		t.Fatal("empty filter")
	}
}

func TestChainsAreDisjoint(t *testing.T) {
	anchors := []Anchor{
		{QPos: 0, RPos: 100, Len: 15},
		{QPos: 20, RPos: 120, Len: 15},
		{QPos: 0, RPos: 5000, Len: 15},
		{QPos: 20, RPos: 5020, Len: 15},
	}
	chains := Linear(anchors, 1000, nil)
	if len(chains) != 2 {
		t.Fatalf("chains = %d, want 2", len(chains))
	}
	total := 0
	for _, c := range chains {
		total += len(c.Anchors)
	}
	if total != 4 {
		t.Fatalf("anchors used %d times, want 4 (disjoint)", total)
	}
}

package soak

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"pangenomicsbench/internal/gensim"
	"pangenomicsbench/internal/obs"
)

func TestParseChaos(t *testing.T) {
	got, err := ParseChaos(" swap, restart ")
	if err != nil || len(got) != 2 || got[0] != ChaosSwap || got[1] != ChaosRestart {
		t.Fatalf("ParseChaos = %v, %v", got, err)
	}
	if got, err := ParseChaos(""); err != nil || got != nil {
		t.Fatalf("empty chaos = %v, %v", got, err)
	}
	if _, err := ParseChaos("swap,meteor"); err == nil {
		t.Fatal("unknown chaos kind accepted")
	}
	if got, err := ParseChaos("worker-kill"); err != nil || len(got) != 1 || got[0] != ChaosWorkerKill {
		t.Fatalf("ParseChaos(worker-kill) = %v, %v", got, err)
	}
}

func TestWorkerKillRequiresFleet(t *testing.T) {
	sc, err := gensim.LookupScenario("baseline")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(context.Background(), Config{Scenario: sc, Chaos: []ChaosKind{ChaosWorkerKill}})
	if err == nil || !strings.Contains(err.Error(), "FleetNodes") {
		t.Fatalf("worker-kill without a fleet = %v, want a FleetNodes error", err)
	}
	_, err = Run(context.Background(), Config{Scenario: sc, Chaos: []ChaosKind{ChaosWorkerKill}, FleetNodes: 1})
	if err == nil || !strings.Contains(err.Error(), "FleetNodes") {
		t.Fatalf("worker-kill with one node = %v, want a FleetNodes error", err)
	}
}

// TestSoakWorkerKill is the fleet chaos acceptance run (ISSUE): a soak over
// a two-worker construction fleet kills one worker while a cohort rebuild is
// in flight, and the run asserts the rebuild still completed with output
// byte-identical to the baseline graph and that the registry marked the
// victim dead.
func TestSoakWorkerKill(t *testing.T) {
	sc, err := gensim.LookupScenario("baseline")
	if err != nil {
		t.Fatal(err)
	}
	var progress bytes.Buffer
	res, err := Run(context.Background(), Config{
		Scenario:   sc,
		RefLen:     12_000,
		Haps:       4,
		Duration:   3 * time.Second,
		Clients:    4,
		Chaos:      []ChaosKind{ChaosWorkerKill},
		FleetNodes: 2,
		Out:        &progress,
	})
	if err != nil {
		t.Fatalf("soak run: %v\n%s", err, progress.String())
	}
	if res.Kills != 1 {
		t.Fatalf("kills = %d, want 1\n%s", res.Kills, progress.String())
	}
	if res.Lost != 0 {
		t.Fatalf("%d in-flight queries lost", res.Lost)
	}
	if res.Report.Failed() != 0 {
		t.Fatalf("soak report failed:\n%s\nprogress:\n%s", res.Report.Render(), progress.String())
	}
	found := false
	for _, c := range res.Report.Checks {
		if c.Name == "worker-kill-identical" {
			found = true
		}
	}
	if !found {
		t.Fatal("worker-kill-identical check missing from report")
	}
	if res.Metrics.Gauges["fleet.nodes_live"].Value != 1 {
		t.Fatalf("fleet.nodes_live = %d at run end, want 1 (victim dead)",
			res.Metrics.Gauges["fleet.nodes_live"].Value)
	}
}

func TestRestartRequiresStore(t *testing.T) {
	sc, err := gensim.LookupScenario("baseline")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(context.Background(), Config{Scenario: sc, Chaos: []ChaosKind{ChaosRestart}})
	if err == nil || !strings.Contains(err.Error(), "StoreDir") {
		t.Fatalf("restart without a store = %v, want a StoreDir error", err)
	}
}

// TestSoakAcceptance is the short-mode soak acceptance run (ISSUE): replay
// the skewed-tenant scenario with one forced hot-swap and one warm restart
// of the query tier, then assert zero lost in-flight queries and that every
// watermark/leak check passes.
func TestSoakAcceptance(t *testing.T) {
	sc, err := gensim.LookupScenario("skewed-tenant")
	if err != nil {
		t.Fatal(err)
	}
	dur := 10 * time.Second
	if testing.Short() {
		dur = 4 * time.Second
	}
	var jsonl, progress bytes.Buffer
	res, err := Run(context.Background(), Config{
		Scenario: sc,
		RefLen:   12_000,
		Haps:     4,
		Duration: dur,
		Clients:  4,
		Chaos:    []ChaosKind{ChaosSwap, ChaosRestart},
		StoreDir: t.TempDir(),
		Sink:     obs.NewJSONLSink(&jsonl),
		Out:      &progress,
	})
	if err != nil {
		t.Fatalf("soak run: %v\n%s", err, progress.String())
	}

	if res.Issued == 0 || res.Mapped == 0 {
		t.Fatalf("soak issued %d / mapped %d queries — replay never got going", res.Issued, res.Mapped)
	}
	if res.Lost != 0 {
		t.Fatalf("%d in-flight queries lost", res.Lost)
	}
	if res.Swaps != 1 || res.Restarts != 1 {
		t.Fatalf("chaos events: %d swaps, %d restarts, want 1 each\n%s", res.Swaps, res.Restarts, progress.String())
	}
	// The forced swap published generation 2; the warm restart booted a
	// fresh registry from the store (its own generation counter restarts).
	if res.Generations == 0 {
		t.Fatal("no published generation at run end")
	}
	if res.Report.Failed() != 0 {
		t.Fatalf("soak report failed:\n%s\nprogress:\n%s", res.Report.Render(), progress.String())
	}

	// The JSONL flight log carries samples, both chaos events, and the report.
	kinds := map[string]int{}
	events := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(jsonl.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("JSONL line does not parse: %v\n%s", err, line)
		}
		kind, _ := rec["kind"].(string)
		kinds[kind]++
		if kind == "chaos" {
			ev, _ := rec["event"].(string)
			events[ev]++
		}
	}
	if kinds["sample"] == 0 || kinds["report"] != 1 {
		t.Fatalf("flight log kinds = %v, want samples and exactly one report", kinds)
	}
	if events["swap"] != 1 || events["restart"] != 1 {
		t.Fatalf("flight log chaos events = %v, want one swap and one restart", events)
	}
}

// TestSoakShedStormExcluded pins the chaos-shed accounting: a deliberate
// storm sheds queries, yet the organic shed-rate check still passes because
// chaos sheds are counted under their own counter.
func TestSoakShedStormExcluded(t *testing.T) {
	if testing.Short() {
		t.Skip("second soak run; covered by TestSoakAcceptance in short mode")
	}
	sc, err := gensim.LookupScenario("baseline")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), Config{
		Scenario: sc,
		RefLen:   12_000,
		Haps:     4,
		Duration: 4 * time.Second,
		Clients:  4,
		Chaos:    []ChaosKind{ChaosShed},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Storms != 1 {
		t.Fatalf("storms = %d, want 1", res.Storms)
	}
	if res.Metrics.Counters["mapserve.shed_chaos"] == 0 {
		t.Fatal("shed storm injected no chaos sheds — storm window missed all traffic")
	}
	if res.Report.Failed() != 0 {
		t.Fatalf("report failed despite chaos-shed exclusion:\n%s", res.Report.Render())
	}
}

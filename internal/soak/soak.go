// Package soak is the chaos/soak harness of the serving tiers: it replays a
// catalog scenario (internal/gensim.Scenario) against the full
// build-then-serve stack — construction service, snapshot registry, batched
// map-serve executor — for a configured duration, injecting deliberate
// faults mid-run (forced hot-swaps, shed storms, kill-and-warm-restart of
// the query tier, build-tier outages) and asserting at the end that the
// system came back clean: no lost in-flight queries, queue gauges drained,
// watermarks bounded, no goroutine or heap leaks.
//
// The paper characterizes kernels one workload at a time; a serving system
// additionally has to survive the workloads *changing shape under it*. A
// soak run is that experiment: scenario arrival curves decide when queries
// land, chaos events decide when the system is wounded, and the end-of-run
// report (obs.SoakReport) decides whether the run counts.
package soak

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pangenomicsbench/internal/build"
	"pangenomicsbench/internal/fleet"
	"pangenomicsbench/internal/gensim"
	"pangenomicsbench/internal/gfa"
	"pangenomicsbench/internal/mapserve"
	"pangenomicsbench/internal/obs"
	"pangenomicsbench/internal/perf"
	"pangenomicsbench/internal/serve"
	"pangenomicsbench/internal/store"
)

// ChaosKind names one fault-injection event of a soak run.
type ChaosKind string

// Supported chaos kinds.
const (
	// ChaosSwap force-republishes a clone of the current snapshot
	// (Registry.ForceSwap) — the hot-swap path without a rebuild.
	ChaosSwap ChaosKind = "swap"
	// ChaosShed turns admission fault injection on for a short storm window
	// (Service.SetChaosShed).
	ChaosShed ChaosKind = "shed"
	// ChaosRestart kills the query tier and warm-restarts it from the
	// snapshot store (Registry.LoadLatest) — requires Config.StoreDir.
	ChaosRestart ChaosKind = "restart"
	// ChaosBuildReject takes the build tier down for a window
	// (serve.SetChaosRejectBuilds) while queries keep flowing.
	ChaosBuildReject ChaosKind = "build-reject"
	// ChaosWorkerKill kills one construction-fleet worker while a cohort
	// rebuild is in flight — requires Config.FleetNodes ≥ 2. The run asserts
	// the build still completes with byte-identical output (dead worker's
	// tasks reassigned along the shard ring) and that the fleet registry
	// marks the node dead.
	ChaosWorkerKill ChaosKind = "worker-kill"
)

// ParseChaos parses a comma-separated chaos list ("swap,restart").
func ParseChaos(s string) ([]ChaosKind, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []ChaosKind
	for _, f := range strings.Split(s, ",") {
		k := ChaosKind(strings.TrimSpace(f))
		switch k {
		case ChaosSwap, ChaosShed, ChaosRestart, ChaosBuildReject, ChaosWorkerKill:
			out = append(out, k)
		default:
			return nil, fmt.Errorf("soak: unknown chaos kind %q (want swap, shed, restart, build-reject or worker-kill)", f)
		}
	}
	return out, nil
}

// Config parameterizes one soak run.
type Config struct {
	// Scenario shapes the population, query trace and arrival curve.
	Scenario gensim.Scenario
	// RefLen / Haps / Seed size the simulated population; ≤0 uses 20000/5/42.
	RefLen, Haps int
	Seed         int64
	// Duration bounds the replay; ≤0 uses 10s.
	Duration time.Duration
	// Clients is the query worker fan-in; ≤0 uses 8.
	Clients int
	// Tool selects the mapping tool of published snapshots (zero value uses
	// giraffe defaults).
	Tool mapserve.ToolConfig
	// Workers / MaxBatch / BatchWait / QueueDepth parameterize the map-serve
	// executor exactly as mapserve.Config does (zero = that package's
	// defaults, except QueueDepth which uses 256 so watermark assertions
	// bite at soak scale).
	Workers    int
	MaxBatch   int
	BatchWait  time.Duration
	QueueDepth int
	// Chaos lists the fault injections, fired in order at even fractions of
	// Duration.
	Chaos []ChaosKind
	// FleetNodes > 0 routes the build tier's pair matching through an
	// in-process loopback construction fleet of that many workers
	// (serve.Config.Fleet); required ≥ 2 by ChaosWorkerKill so a build can
	// survive losing one.
	FleetNodes int
	// StoreDir persists published snapshots and is required by ChaosRestart.
	StoreDir string
	// Sink, when non-nil, receives structured JSONL records: periodic
	// samples, each chaos event, and the final report.
	Sink *obs.JSONLSink
	// SamplePeriod spaces the sink's periodic samples; ≤0 uses 1s.
	SamplePeriod time.Duration
	// MaxShedRate is the organic (non-chaos) shed-rate ceiling the final
	// report asserts; ≤0 uses 0.05.
	MaxShedRate float64
	// SampleEvery is the tracer's 1-in-N ring sampling (obs.TracerConfig);
	// ≤0 uses 8 — a soak run completes far more traces than any ring holds.
	SampleEvery int
	// Metrics / Tracer, when non-nil, are used instead of run-private ones —
	// the hook that lets a caller expose the run on a live admin endpoint.
	// A caller-provided Tracer keeps its own sampling config.
	Metrics *perf.Metrics
	Tracer  *obs.Tracer
	// Out receives human-readable progress lines; nil discards them.
	Out io.Writer
}

// Result summarizes one completed soak run.
type Result struct {
	Issued, Mapped, Shed, Failed, Lost      int64
	Swaps, Restarts, Storms, Rejects, Kills int
	Generations                             uint64
	Wall                                    time.Duration
	Report                                  obs.SoakReport
	Metrics                                 perf.MetricsSnapshot
}

// chaosEvent is one scheduled injection.
type chaosEvent struct {
	kind ChaosKind
	at   time.Duration
}

// Run executes one soak run. It returns an error only for setup failures
// (bad config, the initial build failing); assertion outcomes land in
// Result.Report, and the caller decides what a failed check is worth.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.RefLen <= 0 {
		cfg.RefLen = 20_000
	}
	if cfg.Haps <= 0 {
		cfg.Haps = 5
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if cfg.Tool.Kind == "" {
		cfg.Tool = mapserve.DefaultToolConfig(mapserve.ToolGiraffe)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.SamplePeriod <= 0 {
		cfg.SamplePeriod = time.Second
	}
	if cfg.MaxShedRate <= 0 {
		cfg.MaxShedRate = 0.05
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 8
	}
	out := cfg.Out
	if out == nil {
		out = io.Discard
	}
	for _, k := range cfg.Chaos {
		if k == ChaosRestart && cfg.StoreDir == "" {
			return nil, fmt.Errorf("soak: chaos %q needs StoreDir — a warm restart reloads the last persisted generation", k)
		}
		if k == ChaosWorkerKill && cfg.FleetNodes < 2 {
			return nil, fmt.Errorf("soak: chaos %q needs FleetNodes ≥ 2 — a build must survive losing one worker", k)
		}
	}
	sc := cfg.Scenario

	// Workload: scenario-shaped population, cyclic query trace, arrival curve.
	gcfg := gensim.DefaultConfig()
	gcfg.RefLen = cfg.RefLen
	gcfg.Haplotypes = cfg.Haps
	gcfg.Seed = cfg.Seed
	pop, err := gensim.Simulate(sc.PopConfig(gcfg))
	if err != nil {
		return nil, err
	}
	arrivals, err := planArrivals(sc, cfg.Duration, cfg.Seed)
	if err != nil {
		return nil, err
	}
	rt := sc.ReadTraceConfig(gensim.DefaultReadTraceConfig())
	rt.Queries = len(arrivals)
	rt.Clients = cfg.Clients
	rt.Seed = cfg.Seed
	trace, err := pop.ReadQueryTrace(rt)
	if err != nil {
		return nil, err
	}

	// Stack: builder → registry (+ optional store persistence) → executor.
	metrics := cfg.Metrics
	if metrics == nil {
		metrics = perf.NewMetrics()
	}
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = obs.NewTracer(obs.TracerConfig{
			Capacity:       512,
			Metrics:        metrics,
			SampleEvery:    cfg.SampleEvery,
			ExemplarMaxAge: time.Minute,
		})
	}
	var stMu sync.RWMutex
	reg := &mapserve.Registry{}
	var svc *mapserve.Service
	curReg := func() *mapserve.Registry { stMu.RLock(); defer stMu.RUnlock(); return reg }
	curSvc := func() *mapserve.Service { stMu.RLock(); defer stMu.RUnlock(); return svc }

	var sdir *store.Dir
	var persister *mapserve.Persister
	if cfg.StoreDir != "" {
		if sdir, err = store.Open(cfg.StoreDir, store.Options{}); err != nil {
			return nil, err
		}
		persister = mapserve.NewPersister(sdir, metrics)
	}

	names, seqs := pop.AssemblyView()

	// Optional construction fleet: loopback workers sharding the build
	// tier's pair matching. Tight heartbeats so a killed worker is noticed
	// well inside a soak-scale run.
	var coord *fleet.Coordinator
	var fleetNodes []*fleet.LocalNode
	if cfg.FleetNodes > 0 {
		coord = fleet.NewCoordinator(fleet.Config{
			HeartbeatEvery: 100 * time.Millisecond,
			Metrics:        metrics,
		})
		defer coord.Close()
		for i := 0; i < cfg.FleetNodes; i++ {
			name := fmt.Sprintf("soak-node-%d", i)
			ln := fleet.NewLocalNode(fleet.NewWorker(name, 0), 0)
			fleetNodes = append(fleetNodes, ln)
			if err := coord.AddNode(name, ln); err != nil {
				return nil, err
			}
		}
	}

	var snapSeq uint64
	var publishErr error
	var publishMu sync.Mutex
	builder := serve.New(serve.Config{
		CacheCapacity: 64 << 20,
		Metrics:       metrics,
		Tracer:        tracer,
		Fleet:         coord,
		OnResult: func(req serve.Request, res *build.Result) {
			n := atomic.AddUint64(&snapSeq, 1)
			snap, err := mapserve.SnapshotFromBuild(fmt.Sprintf("cohort-%d", n), res, cfg.Tool)
			if err == nil {
				_, err = curReg().Publish(snap)
			}
			if err == nil && persister != nil {
				_, _, err = persister.Save(snap)
			}
			if err != nil {
				publishMu.Lock()
				publishErr = err
				publishMu.Unlock()
			}
		},
	})
	if err := builder.RegisterAssemblies(names, seqs); err != nil {
		return nil, err
	}
	cohort := serve.Request{Tool: serve.ToolPGGB, Cohort: names, PGGB: build.DefaultPGGBConfig(), MC: build.DefaultMCConfig()}
	t0 := time.Now()
	first, err := builder.Build(ctx, cohort)
	if err != nil {
		return nil, fmt.Errorf("soak: initial cohort build: %w", err)
	}
	cfg.Sink.Emit("build", map[string]any{
		"event":    "initial",
		"build_ms": time.Since(t0).Milliseconds(),
		"trace_id": first.TraceID,
	})
	// Baseline graph bytes: worker-kill chaos asserts rebuilds under fault
	// reproduce this exactly.
	var baselineGFA []byte
	if len(fleetNodes) > 0 {
		var buf bytes.Buffer
		if err := gfa.Write(&buf, first.Result.Graph); err != nil {
			return nil, fmt.Errorf("soak: baseline GFA: %w", err)
		}
		baselineGFA = buf.Bytes()
	}
	publishMu.Lock()
	perr := publishErr
	publishMu.Unlock()
	if perr != nil {
		return nil, fmt.Errorf("soak: snapshot publish: %w", perr)
	}
	fmt.Fprintf(out, "soak[%s]: cohort built and published in %v; replaying %d planned queries for %v (chaos: %v)\n",
		sc.Name, time.Since(t0).Round(time.Millisecond), len(trace), cfg.Duration, cfg.Chaos)

	mapCfg := mapserve.Config{
		Workers:    cfg.Workers,
		MaxBatch:   cfg.MaxBatch,
		BatchWait:  cfg.BatchWait,
		QueueDepth: cfg.QueueDepth,
		Metrics:    metrics,
		Tracer:     tracer,
	}
	svc = mapserve.New(reg, mapCfg)
	closed := false
	defer func() {
		if !closed {
			curSvc().Close()
		}
	}()

	// Leak baselines, taken with the full stack up but no traffic yet.
	goroutineBase := runtime.NumGoroutine()
	heapBase := obs.HeapBaseline()

	res := &Result{}
	var issued, mapped, shed, failed int64

	// Chaos scheduler: events fire at even fractions of the duration, in
	// the order configured.
	events := make([]chaosEvent, 0, len(cfg.Chaos))
	for i, k := range cfg.Chaos {
		at := cfg.Duration * time.Duration(i+1) / time.Duration(len(cfg.Chaos)+1)
		events = append(events, chaosEvent{kind: k, at: at})
	}
	sort.Slice(events, func(i, j int) bool { return events[i].at < events[j].at })
	stormLen := cfg.Duration / 20
	if stormLen < 100*time.Millisecond {
		stormLen = 100 * time.Millisecond
	}

	replayStart := time.Now()
	stopSampler := make(chan struct{})
	var bg sync.WaitGroup

	// Periodic JSONL samples: the soak run's flight log.
	bg.Add(1)
	go func() {
		defer bg.Done()
		tick := time.NewTicker(cfg.SamplePeriod)
		defer tick.Stop()
		for {
			select {
			case <-stopSampler:
				return
			case <-tick.C:
				snap := metrics.Snapshot()
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				cfg.Sink.Emit("sample", map[string]any{
					"elapsed_ms":  time.Since(replayStart).Milliseconds(),
					"issued":      atomic.LoadInt64(&issued),
					"mapped":      atomic.LoadInt64(&mapped),
					"shed":        atomic.LoadInt64(&shed),
					"failed":      atomic.LoadInt64(&failed),
					"queue_depth": snap.Gauges["mapserve.queue_depth"].Value,
					"goroutines":  runtime.NumGoroutine(),
					"heap_bytes":  ms.HeapAlloc,
				})
			}
		}
	}()

	// Worker-kill verdicts, written by the chaos driver and read after
	// bg.Wait(): every faulted rebuild must reproduce the baseline graph,
	// and every killed worker must end up marked dead in the registry.
	killIdentical, killMarkedDead := true, true

	// Chaos driver.
	bg.Add(1)
	go func() {
		defer bg.Done()
		for _, ev := range events {
			select {
			case <-time.After(time.Until(replayStart.Add(ev.at))):
			case <-ctx.Done():
				return
			}
			elapsed := time.Since(replayStart).Round(time.Millisecond)
			switch ev.kind {
			case ChaosSwap:
				gen, err := curReg().ForceSwap()
				if err != nil {
					fmt.Fprintf(out, "soak: forced swap failed: %v\n", err)
					continue
				}
				res.Swaps++
				fmt.Fprintf(out, "soak: chaos swap at %v → generation %d\n", elapsed, gen)
				cfg.Sink.Emit("chaos", map[string]any{"event": "swap", "elapsed_ms": elapsed.Milliseconds(), "generation": gen})
			case ChaosShed:
				curSvc().SetChaosShed(true)
				fmt.Fprintf(out, "soak: chaos shed storm at %v for %v\n", elapsed, stormLen)
				cfg.Sink.Emit("chaos", map[string]any{"event": "shed-on", "elapsed_ms": elapsed.Milliseconds()})
				time.Sleep(stormLen)
				curSvc().SetChaosShed(false)
				res.Storms++
				cfg.Sink.Emit("chaos", map[string]any{"event": "shed-off", "elapsed_ms": time.Since(replayStart).Milliseconds()})
			case ChaosRestart:
				rt0 := time.Now()
				stMu.Lock()
				svc.Close()
				fresh := &mapserve.Registry{}
				if _, _, err := fresh.LoadLatest(sdir, metrics); err != nil {
					fmt.Fprintf(out, "soak: warm restart failed (%v); keeping the old registry\n", err)
					svc = mapserve.New(reg, mapCfg)
					stMu.Unlock()
					continue
				}
				reg = fresh
				svc = mapserve.New(reg, mapCfg)
				stMu.Unlock()
				res.Restarts++
				fmt.Fprintf(out, "soak: chaos restart at %v — query tier killed and warm-restarted in %v\n",
					elapsed, time.Since(rt0).Round(time.Millisecond))
				cfg.Sink.Emit("chaos", map[string]any{"event": "restart", "elapsed_ms": elapsed.Milliseconds(),
					"restart_ms": time.Since(rt0).Milliseconds()})
			case ChaosWorkerKill:
				if res.Kills >= len(fleetNodes)-1 {
					fmt.Fprintf(out, "soak: worker-kill at %v skipped — would leave no live workers\n", elapsed)
					res.Kills++ // counted so chaos-complete still balances
					continue
				}
				victim := fleetNodes[res.Kills]
				victimName := fmt.Sprintf("soak-node-%d", res.Kills)
				kt0 := time.Now()
				type buildOut struct {
					resp *serve.Response
					err  error
				}
				done := make(chan buildOut, 1)
				go func() {
					r, err := builder.Build(ctx, cohort)
					done <- buildOut{r, err}
				}()
				// Let pair dispatch begin, then drop the worker mid-build;
				// its in-flight and still-owned tasks must be reassigned
				// along the shard ring.
				time.Sleep(2 * time.Millisecond)
				victim.Kill()
				bo := <-done
				res.Kills++
				switch {
				case bo.err != nil:
					killIdentical = false
					fmt.Fprintf(out, "soak: rebuild under worker-kill failed: %v\n", bo.err)
				default:
					var buf bytes.Buffer
					if err := gfa.Write(&buf, bo.resp.Result.Graph); err != nil || !bytes.Equal(buf.Bytes(), baselineGFA) {
						killIdentical = false
						fmt.Fprintf(out, "soak: rebuild under worker-kill diverged from baseline graph\n")
					}
				}
				// The registry must mark the victim dead — either instantly
				// via a failed task RPC or within a few heartbeats.
				marked := false
				for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); {
					for _, info := range coord.NodeInfos() {
						if info.Name == victimName && !info.Live {
							marked = true
						}
					}
					if marked {
						break
					}
					time.Sleep(20 * time.Millisecond)
				}
				if !marked {
					killMarkedDead = false
				}
				rebuildTrace := ""
				if bo.resp != nil {
					rebuildTrace = bo.resp.TraceID
				}
				fmt.Fprintf(out, "soak: chaos worker-kill at %v — %s killed mid-build, rebuild finished in %v (identical=%v dead-marked=%v)\n",
					elapsed, victimName, time.Since(kt0).Round(time.Millisecond), killIdentical, marked)
				cfg.Sink.Emit("chaos", map[string]any{"event": "worker-kill", "elapsed_ms": elapsed.Milliseconds(),
					"victim": victimName, "rebuild_ms": time.Since(kt0).Milliseconds(),
					"identical": killIdentical, "dead_marked": marked, "trace_id": rebuildTrace})
			case ChaosBuildReject:
				builder.SetChaosRejectBuilds(true)
				fmt.Fprintf(out, "soak: chaos build outage at %v for %v\n", elapsed, stormLen)
				cfg.Sink.Emit("chaos", map[string]any{"event": "build-reject-on", "elapsed_ms": elapsed.Milliseconds()})
				if _, err := builder.Build(ctx, cohort); errors.Is(err, serve.ErrChaosReject) {
					res.Rejects++
				}
				time.Sleep(stormLen)
				builder.SetChaosRejectBuilds(false)
				cfg.Sink.Emit("chaos", map[string]any{"event": "build-reject-off", "elapsed_ms": time.Since(replayStart).Milliseconds()})
			}
		}
	}()

	// Replay: a dispatcher paces queries by the arrival curve; a bounded
	// worker pool executes them. Every issued query is accounted for —
	// mapped, shed, or failed — and the watchdog below turns any gap into
	// Result.Lost.
	jobs := make(chan int, cfg.Clients*2)
	var workers sync.WaitGroup
	for w := 0; w < cfg.Clients; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for qi := range jobs {
				q := trace[qi]
				stMu.RLock()
				resp, err := svc.Map(ctx, q.Read.Seq)
				stMu.RUnlock()
				outcome := "mapped"
				switch {
				case err == nil:
					atomic.AddInt64(&mapped, 1)
				case errors.Is(err, mapserve.ErrOverloaded):
					atomic.AddInt64(&shed, 1)
					outcome = "shed"
				default:
					atomic.AddInt64(&failed, 1)
					outcome = "failed"
				}
				// Flight-log join key: shed and failed queries get a per-query
				// record carrying their trace_id, so any chaos incident in the
				// log is joinable against /traces?trace_id= on the flight
				// recorder. Mapped queries stay in the periodic samples only —
				// one JSONL line per success would dwarf the log.
				if outcome != "mapped" {
					traceID := ""
					if resp != nil {
						traceID = resp.TraceID
					}
					cfg.Sink.Emit("query", map[string]any{
						"elapsed_ms": time.Since(replayStart).Milliseconds(),
						"query":      qi,
						"outcome":    outcome,
						"trace_id":   traceID,
						"err":        err.Error(),
					})
				}
			}
		}()
	}
dispatch:
	for qi, at := range arrivals {
		if at > cfg.Duration {
			break
		}
		select {
		case <-time.After(time.Until(replayStart.Add(at))):
		case <-ctx.Done():
			break dispatch
		}
		atomic.AddInt64(&issued, 1)
		jobs <- qi
	}
	close(jobs)

	// Watchdog: workers must drain within a generous grace period; anything
	// still unaccounted for is a lost query — the cardinal soak failure.
	drained := make(chan struct{})
	go func() { workers.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(cfg.Duration + 30*time.Second):
		fmt.Fprintf(out, "soak: watchdog fired — workers did not drain\n")
	}
	curSvc().Close()
	closed = true
	close(stopSampler)
	bg.Wait()

	res.Wall = time.Since(replayStart)
	res.Issued = atomic.LoadInt64(&issued)
	res.Mapped = atomic.LoadInt64(&mapped)
	res.Shed = atomic.LoadInt64(&shed)
	res.Failed = atomic.LoadInt64(&failed)
	res.Lost = res.Issued - res.Mapped - res.Shed - res.Failed
	res.Generations = curReg().Generation()
	res.Metrics = metrics.Snapshot()

	// End-of-run assertions.
	chaosShed := res.Metrics.Counters["mapserve.shed_chaos"]
	res.Report.CheckLost(res.Lost)
	res.Report.CheckGaugeReturnsToZero(res.Metrics, "mapserve.queue_depth")
	res.Report.CheckGaugeWatermark(res.Metrics, "mapserve.queue_depth", int64(cfg.QueueDepth))
	res.Report.CheckShedRate(res.Issued, res.Shed, chaosShed, cfg.MaxShedRate)
	res.Report.CheckGoroutines(goroutineBase, 16)
	res.Report.CheckHeapGrowth(heapBase, 256<<20)
	chaosDone := res.Swaps + res.Restarts + res.Storms + res.Rejects + res.Kills
	res.Report.Add("chaos-complete", chaosDone == len(cfg.Chaos),
		"%d of %d chaos events completed", chaosDone, len(cfg.Chaos))
	if res.Kills > 0 {
		res.Report.Add("worker-kill-identical", killIdentical,
			"rebuilds under worker-kill reproduce the baseline graph byte-for-byte: %v", killIdentical)
		res.Report.Add("worker-kill-dead", killMarkedDead,
			"killed workers marked dead in the fleet registry: %v", killMarkedDead)
	}

	checks := make(map[string]any, len(res.Report.Checks))
	for _, c := range res.Report.Checks {
		checks[c.Name] = c.OK
	}
	cfg.Sink.Emit("report", map[string]any{
		"issued": res.Issued, "mapped": res.Mapped, "shed": res.Shed, "failed": res.Failed,
		"lost": res.Lost, "generations": res.Generations, "failed_checks": res.Report.Failed(),
		"checks": checks,
	})
	return res, nil
}

// planArrivals sizes and generates the scenario's arrival curve for a
// duration: enough offsets that the curve outlasts the run even through
// burst windows, without generating unbounded tails.
func planArrivals(sc gensim.Scenario, dur time.Duration, seed int64) ([]time.Duration, error) {
	probe := sc.ArrivalConfig(gensim.DefaultArrivalConfig(1))
	est := probe.BaseRate * dur.Seconds()
	if probe.Bursts > 0 {
		est += float64(probe.Bursts) * probe.BurstLen.Seconds() * (probe.BurstRate - probe.BaseRate)
	}
	n := int(est*1.3) + 256
	cfg := sc.ArrivalConfig(gensim.DefaultArrivalConfig(n))
	cfg.Seed = seed
	return gensim.Arrivals(cfg)
}

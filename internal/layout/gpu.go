package layout

import (
	"math"

	"pangenomicsbench/internal/simt"
)

// GPUParams configures the PGSGD-GPU launch (the paper's [27]).
type GPUParams struct {
	BlockSize  int // 1024 in the paper's default; 256 in its tuned variant
	Updates    int // total update steps per iteration
	Iterations int
	Seed       uint64
}

// DefaultGPUParams mirrors the paper's default configuration: 1024-thread
// blocks at 44 registers per thread, which caps theoretical occupancy at
// 66.7% on the A6000 (§5.3).
func DefaultGPUParams(updates int) GPUParams {
	return GPUParams{BlockSize: 1024, Updates: updates, Iterations: 4, Seed: 99}
}

// RegsPerThread is the PGSGD-GPU register footprint reported in §5.3.
const RegsPerThread = 44

// RunGPU executes the PGSGD kernel on the SIMT simulator: every thread in
// every warp picks an independent random pair of path steps (warp-merged so
// all lanes stay active — the "warp merging technique" behind the 88%
// warp utilization) and applies the update with uncoalesced reads and
// writes to the layout arrays. It mutates the layout like the CPU variant
// (Hogwild semantics) and returns the device metrics.
func (l *Layout) RunGPU(dev simt.Device, p GPUParams) (simt.Metrics, error) {
	if p.BlockSize < simt.WarpSize {
		p.BlockSize = simt.WarpSize
	}
	warpsPerBlock := p.BlockSize / simt.WarpSize
	updatesPerThread := 4
	threadsNeeded := p.Updates / updatesPerThread
	if threadsNeeded < p.BlockSize {
		threadsNeeded = p.BlockSize
	}
	blocks := (threadsNeeded + p.BlockSize - 1) / p.BlockSize

	posBase := uint64(1 << 30)
	rngBase := uint64(1 << 28)

	spec := simt.KernelSpec{
		Name:            "pgsgd-gpu",
		Blocks:          blocks * p.Iterations,
		ThreadsPerBlock: p.BlockSize,
		RegsPerThread:   RegsPerThread,
	}
	etaFor := func(iter int) float64 {
		lambda := math.Log(1000/0.01) / float64(p.Iterations)
		return 1000 * math.Exp(-lambda*float64(iter))
	}
	run := func(b *simt.Block) {
		iter := b.ID / blocks
		eta := etaFor(iter)
		for w := 0; w < warpsPerBlock; w++ {
			warp := b.Warp(w)
			// Coalesced RNG-state load: consecutive lanes read consecutive
			// state words (the optimized data layout of [27]).
			var rngAddrs [simt.WarpSize]uint64
			base := rngBase + uint64((b.ID*warpsPerBlock+w)*simt.WarpSize*8)
			for lane := 0; lane < simt.WarpSize; lane++ {
				rngAddrs[lane] = base + uint64(lane*8)
			}
			warp.Mem(simt.FullMask, &rngAddrs, 8)

			for u := 0; u < updatesPerThread; u++ {
				// Each lane samples an independent pair and applies one
				// update; lane 0's update is applied to the real layout so
				// GPU runs converge like CPU runs.
				var addrsA, addrsB [simt.WarpSize]uint64
				for lane := 0; lane < simt.WarpSize; lane++ {
					rng := xorshift(p.Seed ^ uint64(b.ID*1_000_003+w*4093+lane*61+u*17+1))
					pi, si, sj := l.idx.sampleStepPair(&rng)
					a, _ := l.idx.endpointOf(pi, si)
					bb, _ := l.idx.endpointOf(pi, sj)
					addrsA[lane] = posBase + uint64(a*16)
					addrsB[lane] = posBase + uint64(bb*16)
					if lane == 0 {
						rng2 := rng
						l.update(&rng2, eta, nil, posBase)
					}
				}
				warp.Exec(simt.FullMask, 34) // RNG advance, Zipf sampling, index arithmetic
				// Uncoalesced gathers of both endpoints (random graph
				// positions → up to 32 transactions each, §5.3).
				warp.Mem(simt.FullMask, &addrsA, 16)
				warp.Mem(simt.FullMask, &addrsB, 16)
				warp.Exec(simt.FullMask, 52) // sqrt, div, learning-rate and delta arithmetic
				// Uncoalesced scatter of the updated coordinates.
				warp.Mem(simt.FullMask, &addrsA, 16)
				warp.Mem(simt.FullMask, &addrsB, 16)
			}
		}
	}
	return simt.Run(dev, spec, run)
}

// Package layout implements Path-Guided Stochastic Gradient Descent
// (PGSGD, the paper's [26, 27]), the graph-visualization kernel of ODGI:
// a 2D layout of the pangenome graph is iteratively refined so Euclidean
// distances between node endpoints match nucleotide distances along
// haplotype paths. Updates are parallelized lock-free with the Hogwild!
// approach; the GPU variant runs on the simt simulator with per-thread RNG
// states in a coalesced layout.
package layout

import (
	"fmt"
	"math"
	"sync"

	"pangenomicsbench/internal/graph"
	"pangenomicsbench/internal/perf"
)

// Layout holds 2D positions of node endpoints: index 2*(node-1) is the node
// start, 2*(node-1)+1 the node end.
type Layout struct {
	g *graph.Graph
	X []float64
	Y []float64

	idx *PathIndex
	// Synthetic addresses of the layout's real data structures for the
	// cache model: the coordinate arrays and the path index. Together they
	// form the footprint that makes PGSGD memory-bound on large graphs
	// (§5.2: 1.7 GB for chromosome 20).
	posBase uint64
	idxBase uint64
}

// PathIndex is the precomputed nucleotide offset of every path step — the
// sequential preprocessing step that limits odgi-layout's thread scaling
// (§5.1).
type PathIndex struct {
	paths   []graph.Path
	starts  [][]int // per path: nucleotide offset of each step
	lens    []int   // per path: total nucleotide length
	weights []int   // cumulative step counts for weighted path sampling
	total   int
}

// NewPathIndex builds the per-step offsets for all paths of g.
func NewPathIndex(g *graph.Graph) (*PathIndex, error) {
	paths := g.Paths()
	if len(paths) == 0 {
		return nil, fmt.Errorf("layout: graph has no paths")
	}
	idx := &PathIndex{paths: paths}
	for _, p := range paths {
		offs := make([]int, len(p.Nodes))
		off := 0
		for i, id := range p.Nodes {
			offs[i] = off
			off += len(g.Seq(id))
		}
		idx.starts = append(idx.starts, offs)
		idx.lens = append(idx.lens, off)
		idx.total += len(p.Nodes)
		idx.weights = append(idx.weights, idx.total)
	}
	return idx, nil
}

// New seeds a layout along the paths (nodes placed at their first path
// offset, like odgi's default initialization) and returns it.
func New(g *graph.Graph, seed uint64) (*Layout, error) {
	idx, err := NewPathIndex(g)
	if err != nil {
		return nil, err
	}
	n := g.NumNodes()
	l := &Layout{g: g, X: make([]float64, 2*n), Y: make([]float64, 2*n), idx: idx}
	as := perf.NewAddrSpace()
	l.posBase = as.Alloc(2 * n * 16)
	l.idxBase = as.Alloc(idx.total * 8)
	rng := xorshift(seed | 1)
	placed := make([]bool, n+1)
	for pi, p := range idx.paths {
		for si, id := range p.Nodes {
			if placed[id] {
				continue
			}
			placed[id] = true
			start := float64(idx.starts[pi][si])
			l.X[2*(int(id)-1)] = start
			l.X[2*(int(id)-1)+1] = start + float64(len(g.Seq(id)))
			// Small deterministic jitter on Y to break symmetry.
			rng = xorshiftNext(rng)
			l.Y[2*(int(id)-1)] = float64(rng%1000)/1000 - 0.5
			rng = xorshiftNext(rng)
			l.Y[2*(int(id)-1)+1] = float64(rng%1000)/1000 - 0.5
		}
	}
	for id := 1; id <= n; id++ {
		if !placed[id] {
			// Nodes not on any path: place at origin area.
			l.X[2*(id-1)] = 0
			l.X[2*(id-1)+1] = float64(len(g.Seq(graph.NodeID(id))))
		}
	}
	return l, nil
}

// xorshift is a tiny deterministic RNG (xorshift64*), used instead of
// math/rand so CPU and GPU variants share the exact generator.
func xorshiftNext(x uint64) uint64 {
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	return x * 0x2545F4914F6CDD1D
}

func xorshift(seed uint64) uint64 { return xorshiftNext(seed) }

// Params controls the SGD schedule.
type Params struct {
	Iterations     int // outer iterations (the paper's kernel runs 30)
	UpdatesPerIter int // update steps per iteration (scaled to graph size)
	EtaMax         float64
	EtaMin         float64
	// ZipfTheta shapes the step-distance distribution (close pairs are
	// sampled more often, with a heavy tail for global structure).
	ZipfTheta float64
	Threads   int
	Seed      uint64
}

// DefaultParams mirrors odgi-layout defaults at benchmark scale.
func DefaultParams(g *graph.Graph) Params {
	updates := g.NumNodes() * 20
	if updates < 1000 {
		updates = 1000
	}
	return Params{
		Iterations:     30,
		UpdatesPerIter: updates,
		EtaMax:         1000,
		EtaMin:         0.01,
		ZipfTheta:      0.99,
		Threads:        1,
		Seed:           1234,
	}
}

// sampleStepPair picks a path (weighted by steps), then two steps on it:
// one uniform, the second at a Zipf-distributed step distance.
func (idx *PathIndex) sampleStepPair(rng *uint64) (pi, si, sj int) {
	*rng = xorshiftNext(*rng)
	target := int(*rng % uint64(idx.total))
	pi = 0
	for idx.weights[pi] <= target {
		pi++
	}
	steps := len(idx.paths[pi].Nodes)
	*rng = xorshiftNext(*rng)
	si = int(*rng % uint64(steps))
	if steps == 1 {
		return pi, si, si
	}
	// Zipf-ish jump length: 1/u distribution truncated to the path.
	*rng = xorshiftNext(*rng)
	u := float64((*rng)%1_000_000)/1_000_000 + 1e-9
	jump := int(math.Pow(float64(steps), u)) % steps
	if jump == 0 {
		jump = 1
	}
	*rng = xorshiftNext(*rng)
	if *rng&1 == 0 {
		sj = si + jump
	} else {
		sj = si - jump
	}
	if sj < 0 {
		sj = -sj
	}
	if sj >= steps {
		sj = 2*(steps-1) - sj
		if sj < 0 {
			sj = 0
		}
	}
	if sj == si {
		sj = (si + 1) % steps
	}
	return pi, si, sj
}

// endpointOf returns the layout point index of a path step (start endpoint
// of its node) and its nucleotide offset.
func (idx *PathIndex) endpointOf(pi, si int) (point int, off int) {
	id := idx.paths[pi].Nodes[si]
	return 2 * (int(id) - 1), idx.starts[pi][si]
}

// Run executes PGSGD with the Hogwild! approach: Threads goroutines apply
// updates concurrently without locks; iterations are separated by barriers
// (which §5.1 identifies as a scaling limit). It returns the number of
// updates applied.
func (l *Layout) Run(p Params, probe *perf.Probe) int {
	if p.Iterations < 1 || p.UpdatesPerIter < 1 {
		return 0
	}
	if p.Threads < 1 {
		p.Threads = 1
	}
	lambda := math.Log(p.EtaMax/p.EtaMin) / float64(p.Iterations-1+1)

	total := 0
	for iter := 0; iter < p.Iterations; iter++ {
		eta := p.EtaMax * math.Exp(-lambda*float64(iter))
		perThread := p.UpdatesPerIter / p.Threads
		if perThread < 1 {
			perThread = 1
		}
		var wg sync.WaitGroup
		for th := 0; th < p.Threads; th++ {
			wg.Add(1)
			go func(th int) {
				defer wg.Done()
				rng := xorshift(p.Seed + uint64(iter*131071+th*8191+1))
				var pr *perf.Probe
				if th == 0 {
					pr = probe // single-threaded profiling stream
				}
				for u := 0; u < perThread; u++ {
					l.update(&rng, eta, pr, l.posBase)
				}
			}(th)
		}
		wg.Wait() // synchronization barrier between iterations (§5.1)
		total += perThread * p.Threads
	}
	return total
}

// update applies one SGD step.
func (l *Layout) update(rng *uint64, eta float64, probe *perf.Probe, posBase uint64) {
	pi, si, sj := l.idx.sampleStepPair(rng)
	a, offA := l.idx.endpointOf(pi, si)
	b, offB := l.idx.endpointOf(pi, sj)
	probe.Op(perf.ScalarInt, 12) // sampling arithmetic
	// Path-index lookups: two random steps of a random path.
	stepBase := l.idx.weights[pi] - len(l.idx.paths[pi].Nodes)
	probe.Load(uintptr(l.idxBase)+uintptr((stepBase+si)*8), 8)
	probe.Load(uintptr(l.idxBase)+uintptr((stepBase+sj)*8), 8)
	d := float64(offA - offB)
	if d < 0 {
		d = -d
	}
	if d == 0 {
		d = 1
	}
	// Pseudo-random accesses to the full layout (the memory bottleneck of
	// §5.2: the graph "does not fit in any level of the cache").
	probe.Load(uintptr(posBase)+uintptr(a*16), 16)
	probe.Load(uintptr(posBase)+uintptr(b*16), 16)
	dx := l.X[a] - l.X[b]
	dy := l.Y[a] - l.Y[b]
	dist := math.Sqrt(dx*dx + dy*dy) // Pythagorean theorem (§5.2)
	probe.Op(perf.ScalarFP, 8)
	probe.Dep(24) // sqrt + divide latency chain
	if dist < 1e-9 {
		dist = 1e-9
		dx = 1
	}
	w := 1 / (d * d)
	mu := eta * w
	if mu > 1 {
		mu = 1
	}
	r := (dist - d) / 2 * mu / dist
	probe.Op(perf.ScalarFP, 6)
	rx, ry := dx*r, dy*r
	// Hogwild: race-prone unsynchronized writes; rare conflicting updates
	// are corrected by later iterations (§3, PGSGD).
	l.X[a] -= rx
	l.Y[a] -= ry
	l.X[b] += rx
	l.Y[b] += ry
	probe.Store(uintptr(posBase)+uintptr(a*16), 16)
	probe.Store(uintptr(posBase)+uintptr(b*16), 16)
}

// Stress evaluates layout quality: sum over sampled path step pairs of
// weighted squared distance error. Lower is better.
func (l *Layout) Stress(samples int, seed uint64) float64 {
	rng := xorshift(seed | 1)
	var stress float64
	for s := 0; s < samples; s++ {
		pi, si, sj := l.idx.sampleStepPair(&rng)
		a, offA := l.idx.endpointOf(pi, si)
		b, offB := l.idx.endpointOf(pi, sj)
		d := math.Abs(float64(offA - offB))
		if d == 0 {
			d = 1
		}
		dx := l.X[a] - l.X[b]
		dy := l.Y[a] - l.Y[b]
		dist := math.Sqrt(dx*dx + dy*dy)
		e := dist - d
		stress += e * e / (d * d)
	}
	return stress / float64(samples)
}

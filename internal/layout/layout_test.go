package layout

import (
	"testing"

	"pangenomicsbench/internal/gensim"
	"pangenomicsbench/internal/graph"
	"pangenomicsbench/internal/simt"
)

func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	cfg := gensim.DefaultConfig()
	cfg.RefLen = 5000
	cfg.Haplotypes = 3
	p, err := gensim.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p.Graph
}

func TestNewRequiresPaths(t *testing.T) {
	g := graph.New()
	g.AddNode([]byte("ACGT"))
	if _, err := New(g, 1); err == nil {
		t.Fatal("graph without paths must be rejected")
	}
}

func TestPathIndexOffsets(t *testing.T) {
	g := graph.New()
	g.AddNode([]byte("AAAA"))
	g.AddNode([]byte("CC"))
	g.AddNode([]byte("GGG"))
	if err := g.AddPath("p", []graph.NodeID{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	idx, err := NewPathIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 4, 6}
	for i, w := range want {
		if idx.starts[0][i] != w {
			t.Fatalf("offset %d = %d, want %d", i, idx.starts[0][i], w)
		}
	}
	if idx.lens[0] != 9 {
		t.Fatalf("path len = %d", idx.lens[0])
	}
}

func TestSGDReducesStress(t *testing.T) {
	g := testGraph(t)
	l, err := New(g, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Scramble the layout so there is real work to do.
	rng := xorshift(55)
	for i := range l.X {
		rng = xorshiftNext(rng)
		l.X[i] = float64(rng % 10000)
		rng = xorshiftNext(rng)
		l.Y[i] = float64(rng % 10000)
	}
	before := l.Stress(2000, 11)
	p := DefaultParams(g)
	p.Iterations = 15
	n := l.Run(p, nil)
	if n == 0 {
		t.Fatal("no updates applied")
	}
	after := l.Stress(2000, 11)
	if after >= before*0.5 {
		t.Fatalf("stress did not improve enough: %.4f → %.4f", before, after)
	}
}

func TestHogwildThreadsConverge(t *testing.T) {
	g := testGraph(t)
	l, err := New(g, 7)
	if err != nil {
		t.Fatal(err)
	}
	rng := xorshift(55)
	for i := range l.X {
		rng = xorshiftNext(rng)
		l.X[i] = float64(rng % 10000)
	}
	before := l.Stress(2000, 13)
	p := DefaultParams(g)
	p.Iterations = 20
	p.Threads = 4
	l.Run(p, nil)
	// Multi-threaded Hogwild must still converge (races self-correct).
	if s := l.Stress(2000, 13); s > before/2 {
		t.Fatalf("hogwild run left high stress %.4f (from %.4f)", s, before)
	}
}

func TestSampleStepPairBounds(t *testing.T) {
	g := testGraph(t)
	idx, err := NewPathIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := xorshift(3)
	for i := 0; i < 10000; i++ {
		pi, si, sj := idx.sampleStepPair(&rng)
		if pi < 0 || pi >= len(idx.paths) {
			t.Fatalf("path index %d out of range", pi)
		}
		steps := len(idx.paths[pi].Nodes)
		if si < 0 || si >= steps || sj < 0 || sj >= steps {
			t.Fatalf("step indices (%d,%d) out of range [0,%d)", si, sj, steps)
		}
		if si == sj && steps > 1 {
			t.Fatal("sampled identical steps on a multi-step path")
		}
	}
}

func TestRunGPU(t *testing.T) {
	g := testGraph(t)
	l, err := New(g, 7)
	if err != nil {
		t.Fatal(err)
	}
	dev := simt.A6000()
	p := DefaultGPUParams(20000)
	p.Iterations = 2
	m, err := l.RunGPU(dev, p)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table 7 shapes: theoretical occupancy 66.7%, high warp
	// utilization from warp merging, moderate BW utilization.
	if m.TheoreticalOccupancy < 0.66 || m.TheoreticalOccupancy > 0.67 {
		t.Fatalf("theoretical occupancy %.3f", m.TheoreticalOccupancy)
	}
	if m.WarpUtilization < 0.8 {
		t.Fatalf("warp utilization %.3f, want > 0.8 (warp merging)", m.WarpUtilization)
	}
	if m.DRAMBytes == 0 || m.TimeMS <= 0 {
		t.Fatal("no memory traffic or time recorded")
	}
}

func TestGPUBlock256BeatsBlock1024Occupancy(t *testing.T) {
	g := testGraph(t)
	l, _ := New(g, 7)
	dev := simt.A6000()
	big := DefaultGPUParams(20000)
	big.Iterations = 1
	m1024, err := l.RunGPU(dev, big)
	if err != nil {
		t.Fatal(err)
	}
	small := big
	small.BlockSize = 256
	m256, err := l.RunGPU(dev, small)
	if err != nil {
		t.Fatal(err)
	}
	// §5.3: reducing block size 1024 → 256 raises theoretical occupancy
	// from 66.7% to 83.3%.
	if m256.TheoreticalOccupancy <= m1024.TheoreticalOccupancy {
		t.Fatalf("256-block occupancy %.3f should exceed 1024-block %.3f",
			m256.TheoreticalOccupancy, m1024.TheoreticalOccupancy)
	}
	if m256.TheoreticalOccupancy < 0.83 || m256.TheoreticalOccupancy > 0.84 {
		t.Fatalf("256-block theoretical occupancy %.3f, want ≈ 0.833", m256.TheoreticalOccupancy)
	}
}

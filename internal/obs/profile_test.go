package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// spin burns CPU long enough for the profiler to collect samples.
func spin(d time.Duration) {
	deadline := time.Now().Add(d)
	x := uint64(1)
	for time.Now().Before(deadline) {
		x = x*6364136223846793005 + 1442695040888963407
	}
	_ = x
}

func TestProfilerKeepsSlowCapture(t *testing.T) {
	dir := t.TempDir()
	p := &Profiler{Dir: dir, Threshold: 10 * time.Millisecond}
	stop := p.Start()
	spin(30 * time.Millisecond)
	path := stop(30*time.Millisecond, "deadbeef")
	if path == "" {
		t.Fatal("above-threshold capture was dropped")
	}
	if filepath.Base(path) != "cpu-deadbeef.pprof" {
		t.Fatalf("kept profile named %q, want cpu-deadbeef.pprof", filepath.Base(path))
	}
	fi, err := os.Stat(path)
	if err != nil || fi.Size() == 0 {
		t.Fatalf("kept profile unusable: %v (size %d)", err, fi.Size())
	}
	// The second stop call is a no-op (sync.Once).
	if again := stop(time.Hour, "other"); again != "" {
		t.Fatalf("second stop returned %q", again)
	}
	// No in-flight temp files left behind.
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".cpu-inflight") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestProfilerDropsFastCapture(t *testing.T) {
	dir := t.TempDir()
	p := &Profiler{Dir: dir, Threshold: time.Hour}
	stop := p.Start()
	spin(5 * time.Millisecond)
	if path := stop(5*time.Millisecond, "fast"); path != "" {
		t.Fatalf("below-threshold capture kept at %q", path)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 0 {
		t.Fatalf("dropped capture left %d files behind", len(ents))
	}
}

func TestProfilerUntracedFallbackName(t *testing.T) {
	dir := t.TempDir()
	p := &Profiler{Dir: dir}
	stop := p.Start()
	spin(5 * time.Millisecond)
	path := stop(5*time.Millisecond, "")
	if path == "" {
		t.Fatal("zero-threshold profiler dropped a capture")
	}
	if !strings.HasPrefix(filepath.Base(path), "cpu-untraced-") {
		t.Fatalf("untraced capture named %q", filepath.Base(path))
	}
}

func TestProfilerOverlappingStartDegrades(t *testing.T) {
	p := &Profiler{Dir: t.TempDir()}
	stop1 := p.Start()
	// The runtime allows one CPU profile per process: the overlapping Start
	// must stand down instead of erroring the build path.
	stop2 := p.Start()
	if path := stop2(time.Hour, "overlap"); path != "" {
		t.Fatalf("overlapping capture kept %q", path)
	}
	spin(5 * time.Millisecond)
	if path := stop1(time.Hour, "first"); path == "" {
		t.Fatal("first capture was dropped after an overlapping Start")
	}
	// With the first capture stopped, Start works again.
	stop3 := p.Start()
	spin(5 * time.Millisecond)
	if path := stop3(time.Hour, "third"); path == "" {
		t.Fatal("profiler did not recover after overlap")
	}
}

func TestProfilerNilAndDisabled(t *testing.T) {
	var p *Profiler
	if path := p.Start()(time.Hour, "x"); path != "" {
		t.Fatalf("nil profiler kept %q", path)
	}
	if path := (&Profiler{}).Start()(time.Hour, "x"); path != "" {
		t.Fatalf("dir-less profiler kept %q", path)
	}
}

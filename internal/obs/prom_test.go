package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"pangenomicsbench/internal/perf"
)

// parseProm is a minimal exposition-format checker: it validates every
// line is a comment or `name{labels} value` with a parseable float value,
// and returns the sample series.
func parseProm(t *testing.T, text string) map[string]float64 {
	t.Helper()
	series := map[string]float64{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no sample value in %q", ln+1, line)
		}
		name, raw := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			t.Fatalf("line %d: bad sample %q: %v", ln+1, raw, err)
		}
		if _, dup := series[name]; dup {
			t.Fatalf("line %d: duplicate series %q", ln+1, name)
		}
		base := name
		if i := strings.IndexByte(name, '{'); i >= 0 {
			base = name[:i]
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("line %d: unterminated labels in %q", ln+1, name)
			}
		}
		for _, r := range base {
			if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '_' || r == ':') {
				t.Fatalf("line %d: invalid metric name %q", ln+1, base)
			}
		}
		series[name] = v
	}
	return series
}

func TestPromTextFormat(t *testing.T) {
	m := perf.NewMetrics()
	m.Add("mapserve.queries", 7)
	m.Add("mapserve.shed_queue", 1)
	m.GaugeAdd("mapserve.queue_depth", 3)
	m.GaugeAdd("mapserve.queue_depth", -1)
	m.Observe("mapserve.map", 4*time.Millisecond)
	m.Observe("mapserve.map", 6*time.Millisecond)
	for _, v := range []float64{1, 2, 3, 5, 30} {
		m.ObserveValue("mapserve.batch_size", v)
	}

	text := PromText(m.Snapshot())
	series := parseProm(t, text)

	if got := series["mapserve_queries_total"]; got != 7 {
		t.Errorf("queries_total = %v, want 7", got)
	}
	if got := series["mapserve_queue_depth"]; got != 2 {
		t.Errorf("queue_depth = %v, want 2", got)
	}
	if got := series["mapserve_queue_depth_watermark"]; got != 3 {
		t.Errorf("queue_depth_watermark = %v, want 3", got)
	}
	if got := series["mapserve_map_seconds_count"]; got != 2 {
		t.Errorf("map_seconds_count = %v, want 2", got)
	}
	if got := series["mapserve_map_seconds_sum"]; got < 0.0099 || got > 0.0101 {
		t.Errorf("map_seconds_sum = %v, want ~0.01", got)
	}
	if got := series[`mapserve_batch_size_bucket{le="+Inf"}`]; got != 5 {
		t.Errorf("+Inf bucket = %v, want 5", got)
	}

	// Histogram buckets must be cumulative (monotonic in le order).
	var les []int
	for name := range series {
		if strings.HasPrefix(name, "mapserve_batch_size_bucket{le=\"") && !strings.Contains(name, "+Inf") {
			raw := strings.TrimSuffix(strings.TrimPrefix(name, "mapserve_batch_size_bucket{le=\""), "\"}")
			le, err := strconv.Atoi(raw)
			if err != nil {
				t.Fatalf("bucket le %q: %v", raw, err)
			}
			les = append(les, le)
		}
	}
	sort.Ints(les)
	prev := -1.0
	for _, le := range les {
		cur := series[fmt.Sprintf("mapserve_batch_size_bucket{le=%q}", strconv.Itoa(le))]
		if cur < prev {
			t.Fatalf("bucket le=%d count %v < previous %v (not cumulative)", le, cur, prev)
		}
		prev = cur
	}
	if prev > series[`mapserve_batch_size_bucket{le="+Inf"}`] {
		t.Fatal("finite buckets exceed +Inf bucket")
	}

	// TYPE comments: exactly one per family.
	typed := map[string]int{}
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fam := strings.Fields(line)[2]
			typed[fam]++
		}
	}
	for fam, n := range typed {
		if n != 1 {
			t.Errorf("family %s has %d TYPE lines", fam, n)
		}
	}
}

func TestPromNameSanitization(t *testing.T) {
	cases := map[string]string{
		"mapserve.stage.seed": "mapserve_stage_seed",
		"span.serve.build":    "span_serve_build",
		"a-b c":               "a_b_c",
		"9lives":              "_9lives",
		"ok_name:x":           "ok_name:x",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPromEmptySnapshot(t *testing.T) {
	if out := PromText(perf.MetricsSnapshot{}); out != "" {
		t.Fatalf("empty snapshot rendered %q", out)
	}
}

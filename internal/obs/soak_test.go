package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"pangenomicsbench/internal/perf"
)

func TestSoakReportChecks(t *testing.T) {
	m := perf.NewMetrics()
	m.GaugeAdd("q.depth", 5)
	m.GaugeAdd("q.depth", -5) // value 0, watermark 5

	var r SoakReport
	snap := m.Snapshot()
	r.CheckGaugeWatermark(snap, "q.depth", 8)
	r.CheckGaugeReturnsToZero(snap, "q.depth")
	r.CheckShedRate(1000, 40, 30, 0.02) // 10 organic of 1000 = 0.01 ≤ 0.02
	r.CheckLost(0)
	if r.Failed() != 0 {
		t.Fatalf("healthy run failed checks:\n%s", r.Render())
	}

	var bad SoakReport
	bad.CheckGaugeWatermark(snap, "q.depth", 4)  // watermark 5 > 4
	bad.CheckGaugeReturnsToZero(snap, "missing") // absent gauge reads 0 → passes
	bad.CheckShedRate(1000, 40, 0, 0.02)         // 40 organic of 1000 = 0.04 > 0.02
	bad.CheckLost(3)
	if got := bad.Failed(); got != 3 {
		t.Fatalf("failed = %d, want 3:\n%s", got, bad.Render())
	}
	out := bad.Render()
	if !strings.Contains(out, "FAIL") || !strings.Contains(out, "3/4 checks FAILED") {
		t.Fatalf("render lacks verdict:\n%s", out)
	}
}

func TestSoakRuntimeChecks(t *testing.T) {
	var r SoakReport
	r.CheckGoroutines(1, 1_000_000) // absurd slack: must pass
	r.CheckHeapGrowth(HeapBaseline(), 1<<30)
	if r.Failed() != 0 {
		t.Fatalf("runtime checks failed with absurd bounds:\n%s", r.Render())
	}
	var tight SoakReport
	tight.CheckGoroutines(-1_000_000, 0) // impossible baseline: must fail
	if tight.Failed() != 1 {
		t.Fatalf("goroutine check passed an impossible bound:\n%s", tight.Render())
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.now = func() time.Time { return time.Unix(1700000000, 0).UTC() }
	s.Emit("sample", map[string]any{"issued": 12, "shed": 1})
	s.Emit("chaos", map[string]any{"event": "swap"})

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("sink wrote %d lines, want 2: %q", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 0 is not JSON: %v", err)
	}
	if rec["kind"] != "sample" || rec["issued"] != float64(12) || rec["ts"] == "" {
		t.Fatalf("record = %v", rec)
	}

	var nilSink *JSONLSink
	nilSink.Emit("sample", nil) // must not panic
}

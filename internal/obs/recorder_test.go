package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// mkTrace hand-builds one completed root SpanData, bypassing the wall clock.
func mkTrace(name string, dur time.Duration, shed bool) SpanData {
	return SpanData{Name: name, Start: time.Unix(0, 0), Duration: dur, Shed: shed}
}

// TestRecorderSampling pins the 1-in-N contract: the ring keeps every Nth
// successful trace plus every failed one, Total counts everything, and the
// exemplar set still sees the traces the sampler dropped.
func TestRecorderSampling(t *testing.T) {
	rec := newRecorder(TracerConfig{Capacity: 64, SampleEvery: 4})
	for i := 0; i < 16; i++ {
		d := time.Duration(i+1) * time.Millisecond
		rec.add(mkTrace("query", d, false))
	}
	if got := rec.Total(); got != 16 {
		t.Fatalf("total = %d, want 16 (sampling must not hide volume)", got)
	}
	if got := len(rec.Last(100)); got != 4 {
		t.Fatalf("ring retained %d traces, want 4 (1-in-4 of 16)", got)
	}
	if got := rec.SampledOut(); got != 12 {
		t.Fatalf("sampledOut = %d, want 12", got)
	}
	// The slowest trace (16ms) was sampled out of the ring, but the exemplar
	// set must still have it.
	ex := rec.Exemplars()
	if len(ex) != 1 || ex[0].Duration != 16*time.Millisecond {
		t.Fatalf("exemplars = %+v, want the sampled-out 16ms trace", ex)
	}

	// Shed/error traces bypass sampling entirely.
	for i := 0; i < 3; i++ {
		rec.add(mkTrace("query", time.Millisecond, true))
	}
	shed := 0
	for _, d := range rec.Last(100) {
		if d.Shed {
			shed++
		}
	}
	if shed != 3 {
		t.Fatalf("ring has %d shed traces, want all 3 despite SampleEvery=4", shed)
	}
}

// TestRecorderSamplingDisabled pins that SampleEvery ≤ 1 keeps every trace —
// the legacy behaviour interactive runs rely on.
func TestRecorderSamplingDisabled(t *testing.T) {
	for _, every := range []int{0, 1} {
		rec := newRecorder(TracerConfig{Capacity: 64, SampleEvery: every})
		for i := 0; i < 10; i++ {
			rec.add(mkTrace("query", time.Millisecond, false))
		}
		if got := len(rec.Last(100)); got != 10 {
			t.Fatalf("SampleEvery=%d retained %d, want all 10", every, got)
		}
		if got := rec.SampledOut(); got != 0 {
			t.Fatalf("SampleEvery=%d sampledOut = %d, want 0", every, got)
		}
	}
}

// TestExemplarAging pins the aging contract: a slowest exemplar that sat
// unchallenged past ExemplarMaxAge is replaced by the next trace of that
// name even if faster; within the horizon only slower traces replace it.
func TestExemplarAging(t *testing.T) {
	rec := newRecorder(TracerConfig{Capacity: 8, ExemplarMaxAge: time.Minute})
	clock := time.Unix(1000, 0)
	rec.now = func() time.Time { return clock }

	rec.add(mkTrace("query", 50*time.Millisecond, false))
	clock = clock.Add(10 * time.Second)
	rec.add(mkTrace("query", 5*time.Millisecond, false))
	ex := rec.Exemplars()
	if len(ex) != 1 || ex[0].Duration != 50*time.Millisecond {
		t.Fatalf("fresh exemplar displaced by a faster trace: %+v", ex)
	}

	// Past the horizon the stale 50ms outlier must yield to current traffic.
	clock = clock.Add(2 * time.Minute)
	rec.add(mkTrace("query", 5*time.Millisecond, false))
	ex = rec.Exemplars()
	if len(ex) != 1 || ex[0].Duration != 5*time.Millisecond {
		t.Fatalf("stale exemplar not aged out: %+v", ex)
	}

	// The replacement is freshly stamped: it defends its slot again.
	clock = clock.Add(10 * time.Second)
	rec.add(mkTrace("query", 2*time.Millisecond, false))
	ex = rec.Exemplars()
	if len(ex) != 1 || ex[0].Duration != 5*time.Millisecond {
		t.Fatalf("refreshed exemplar displaced within horizon: %+v", ex)
	}
}

// TestExemplarAgingDisabled pins that ExemplarMaxAge = 0 retains the slowest
// exemplar forever (the legacy behaviour).
func TestExemplarAgingDisabled(t *testing.T) {
	rec := newRecorder(TracerConfig{Capacity: 8})
	clock := time.Unix(1000, 0)
	rec.now = func() time.Time { return clock }
	rec.add(mkTrace("query", 50*time.Millisecond, false))
	clock = clock.Add(24 * time.Hour)
	rec.add(mkTrace("query", time.Millisecond, false))
	ex := rec.Exemplars()
	if len(ex) != 1 || ex[0].Duration != 50*time.Millisecond {
		t.Fatalf("exemplar aged out with aging disabled: %+v", ex)
	}
}

// TestTracesHandlerSamplingAndAging drives the sampling + aging recorder
// through the admin endpoint: /traces?which=exemplars serves the aged
// exemplar set, and which=recent serves only the sampled ring.
func TestTracesHandlerSamplingAndAging(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 64, SampleEvery: 4, ExemplarMaxAge: time.Minute})
	rec := tr.Recorder()
	clock := time.Unix(1000, 0)
	rec.now = func() time.Time { return clock }

	rec.add(mkTrace("stale.query", 80*time.Millisecond, false))
	clock = clock.Add(5 * time.Minute)
	for i := 0; i < 8; i++ {
		rec.add(mkTrace("stale.query", time.Duration(i+1)*time.Millisecond, false))
	}

	srv := NewServer(ServerConfig{Recorder: rec})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body := get(t, "http://"+addr+"/traces?which=recent&format=jsonl&n=100")
	if code != 200 {
		t.Fatalf("/traces recent: status %d", code)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 3 { // traces 1, 5, 9 of the 9 added (1-in-4)
		t.Fatalf("recent served %d traces, want 3 sampled of 9: %q", len(lines), body)
	}

	code, body = get(t, "http://"+addr+"/traces?which=exemplars&format=jsonl")
	if code != 200 {
		t.Fatalf("/traces exemplars: status %d", code)
	}
	var ex SpanData
	if err := json.Unmarshal([]byte(strings.Split(strings.TrimSpace(body), "\n")[0]), &ex); err != nil {
		t.Fatalf("exemplar JSONL does not parse: %v\n%s", err, body)
	}
	// The 80ms trace aged out: the exemplar is the slowest *post-aging*
	// trace (the first add after the horizon, 1ms, then challenged up to 8ms).
	if ex.Name != "stale.query" || ex.Duration != 8*time.Millisecond {
		t.Fatalf("exemplar = %s/%v, want stale.query/8ms after aging", ex.Name, ex.Duration)
	}
}

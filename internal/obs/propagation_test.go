package obs

import (
	"context"
	"net/http"
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	sp := tr.StartRoot("root")
	sc := sp.SpanContext()
	if !sc.Valid() {
		t.Fatalf("root span context invalid: %+v", sc)
	}
	tp := sc.Traceparent()
	if len(tp) != 55 || !strings.HasPrefix(tp, "00-") || !strings.HasSuffix(tp, "-01") {
		t.Fatalf("malformed traceparent %q", tp)
	}
	got, ok := ParseTraceparent(tp)
	if !ok || got != sc {
		t.Fatalf("ParseTraceparent(%q) = %+v, %v; want %+v", tp, got, ok, sc)
	}
	sp.End()
}

func TestParseTraceparentMalformed(t *testing.T) {
	valid := SpanContext{TraceID: TraceID{1}, SpanID: SpanID{2}}.Traceparent()
	bad := []string{
		"",
		"00-short-1",
		valid[:54],                          // truncated
		valid + "0",                         // too long
		"01" + valid[2:],                    // wrong version
		strings.Replace(valid, "-", "_", 1), // wrong separator
		"00-" + strings.Repeat("z", 32) + valid[35:], // non-hex trace id
		"00-" + strings.Repeat("0", 32) + valid[35:], // all-zero trace id
		valid[:36] + strings.Repeat("0", 16) + "-01", // all-zero span id
	}
	for _, s := range bad {
		if sc, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted as %+v", s, sc)
		}
	}
	// Any flags byte is accepted (only version is pinned).
	if _, ok := ParseTraceparent(valid[:53] + "00"); !ok {
		t.Error("flags 00 rejected")
	}
}

func TestInjectExtract(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	sp := tr.StartRoot("client")
	ctx := ContextWithSpan(context.Background(), sp)

	h := http.Header{}
	Inject(ctx, h)
	sc, ok := Extract(h)
	if !ok {
		t.Fatalf("Extract failed on injected header %q", h.Get(TraceparentHeader))
	}
	if sc != sp.SpanContext() {
		t.Fatalf("extracted %+v, want %+v", sc, sp.SpanContext())
	}
	sp.End()

	// No span in ctx → no header written, and Extract refuses.
	h2 := http.Header{}
	Inject(context.Background(), h2)
	if h2.Get(TraceparentHeader) != "" {
		t.Fatalf("Inject without a span wrote %q", h2.Get(TraceparentHeader))
	}
	if _, ok := Extract(h2); ok {
		t.Fatal("Extract succeeded on an empty header set")
	}
}

func TestParentFromContextPrecedence(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	sp := tr.StartRoot("local")
	remote := SpanContext{TraceID: TraceID{9}, SpanID: SpanID{9}}

	// In-process span wins over a remote context (the loopback-transport
	// case, where both are present).
	ctx := ContextWithRemote(ContextWithSpan(context.Background(), sp), remote)
	if got := ParentFromContext(ctx); got != sp.SpanContext() {
		t.Fatalf("ParentFromContext = %+v, want in-process %+v", got, sp.SpanContext())
	}
	// Remote-only context resolves to the remote parent.
	if got := ParentFromContext(ContextWithRemote(context.Background(), remote)); got != remote {
		t.Fatalf("remote-only ParentFromContext = %+v, want %+v", got, remote)
	}
	// Neither → zero.
	if got := ParentFromContext(context.Background()); got.Valid() {
		t.Fatalf("empty ctx resolved parent %+v", got)
	}
	sp.End()
}

func TestStartLinked(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	parent := SpanContext{TraceID: TraceID{7, 7}, SpanID: SpanID{3, 3}}

	sp := tr.StartLinked("worker", parent)
	if got := sp.SpanContext().TraceID; got != parent.TraceID {
		t.Fatalf("linked span trace id %s, want parent's %s", got, parent.TraceID)
	}
	if sp.SpanContext().SpanID == parent.SpanID {
		t.Fatal("linked span reused the parent's span id")
	}
	sp.End()
	d := sp.Data()
	if d.TraceID != parent.TraceID.String() || d.ParentID != parent.SpanID.String() {
		t.Fatalf("linked SpanData ids = (%s parent %s), want (%s parent %s)",
			d.TraceID, d.ParentID, parent.TraceID, parent.SpanID)
	}

	// Invalid parent degrades to a fresh root trace.
	sp2 := tr.StartLinked("orphan", SpanContext{})
	if sp2.SpanContext().TraceID.IsZero() || sp2.SpanContext().TraceID == parent.TraceID {
		t.Fatalf("orphan trace id %s not freshly generated", sp2.SpanContext().TraceID)
	}
	sp2.End()

	// Nil tracer stays nil-safe.
	var nilT *Tracer
	if sp := nilT.StartLinked("x", parent); sp != nil {
		t.Fatal("nil tracer returned a non-nil linked span")
	}
}

func TestAttachRemoteGraftsSubtree(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	root := tr.StartRoot("build")
	disp := root.Child("dispatch")

	// A "remote" worker subtree, linked under the dispatch span the way the
	// fleet coordinator grafts MatchResponse.Trace.
	wtr := NewTracer(TracerConfig{})
	wsp := wtr.StartLinked("worker.match", disp.SpanContext())
	wsp.Child("compute").End()
	wsp.End()
	disp.AttachRemote(wsp.Data())
	disp.End()
	root.End()

	d := root.Data()
	if len(d.Children) != 1 {
		t.Fatalf("root has %d children, want 1", len(d.Children))
	}
	dd := d.Children[0]
	if len(dd.Children) != 1 || dd.Children[0].Name != "worker.match" {
		t.Fatalf("dispatch children = %+v, want the grafted worker subtree", dd.Children)
	}
	w := dd.Children[0]
	if w.TraceID != root.TraceID().String() {
		t.Fatalf("grafted subtree trace id %s, want %s", w.TraceID, root.TraceID())
	}
	if w.ParentID != dd.SpanID {
		t.Fatalf("grafted subtree parent %s, want dispatch span %s", w.ParentID, dd.SpanID)
	}
	if len(w.Children) != 1 || w.Children[0].Name != "compute" {
		t.Fatalf("worker subtree children = %+v", w.Children)
	}
	// The rendered tree spans all three processes' spans.
	tree := d.Tree()
	for _, want := range []string{"build", "dispatch", "worker.match", "compute"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("tree missing %q:\n%s", want, tree)
		}
	}
}

func TestRecorderByTraceID(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	var ids []string
	for i := 0; i < 3; i++ {
		sp := tr.StartRoot("q")
		ids = append(ids, sp.TraceID().String())
		sp.End()
	}
	for _, id := range ids {
		d, ok := tr.Recorder().ByTraceID(id)
		if !ok || d.TraceID != id {
			t.Fatalf("ByTraceID(%s) = %+v, %v", id, d.TraceID, ok)
		}
	}
	if _, ok := tr.Recorder().ByTraceID("ffffffffffffffffffffffffffffffff"); ok {
		t.Fatal("ByTraceID found a trace that was never recorded")
	}
	if _, ok := tr.Recorder().ByTraceID(""); ok {
		t.Fatal("ByTraceID matched the empty id")
	}
}

func TestNilSpanWireIdentity(t *testing.T) {
	var sp *Span
	if sc := sp.SpanContext(); sc.Valid() {
		t.Fatalf("nil span has a valid context %+v", sc)
	}
	if id := sp.TraceID(); !id.IsZero() {
		t.Fatalf("nil span trace id %s", id)
	}
	if d := sp.Data(); d.Name != "" || d.TraceID != "" {
		t.Fatalf("nil span Data = %+v", d)
	}
	sp.AttachRemote(SpanData{Name: "x"}) // must not panic
}

func TestIDGeneration(t *testing.T) {
	seen := map[SpanID]bool{}
	for i := 0; i < 1000; i++ {
		id := newSpanID()
		if id.IsZero() {
			t.Fatal("generated a zero span id")
		}
		if seen[id] {
			t.Fatalf("span id collision at %d: %s", i, id)
		}
		seen[id] = true
	}
	if newTraceID() == newTraceID() {
		t.Fatal("consecutive trace ids collide")
	}
}

package obs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"pangenomicsbench/internal/perf"
)

func TestSpanTree(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	root := tr.StartRoot("query")
	root.SetInt("read_len", 150)
	admission := time.Now().Add(-3 * time.Millisecond)
	root.Stage("admission", admission, 3*time.Millisecond)
	m := root.Child("map")
	m.Stage("seed", time.Now(), time.Millisecond)
	m.Stage("align", time.Now(), 2*time.Millisecond)
	m.End()
	root.End()

	got := tr.Recorder().Last(1)
	if len(got) != 1 {
		t.Fatalf("recorder retained %d traces, want 1", len(got))
	}
	d := got[0]
	if d.Name != "query" || len(d.Children) != 2 {
		t.Fatalf("trace = %+v", d)
	}
	if d.Children[0].Name != "admission" || d.Children[0].Duration != 3*time.Millisecond {
		t.Fatalf("admission child = %+v", d.Children[0])
	}
	mp := d.Children[1]
	if mp.Name != "map" || len(mp.Children) != 2 || mp.Children[0].Name != "seed" {
		t.Fatalf("map child = %+v", mp)
	}
	if len(d.Attrs) != 1 || d.Attrs[0].Key != "read_len" || d.Attrs[0].Value != "150" {
		t.Fatalf("attrs = %+v", d.Attrs)
	}
	tree := d.Tree()
	for _, want := range []string{"query", "├─ admission", "└─ map", "   ├─ seed", "   └─ align"} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree missing %q:\n%s", want, tree)
		}
	}
	if line := d.JSONLine(); !strings.Contains(line, `"name":"query"`) || strings.Contains(line, "\n") {
		t.Errorf("json line = %s", line)
	}
}

func TestSpanContextPropagation(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	root := tr.StartRoot("root")
	ctx := ContextWithSpan(context.Background(), root)
	if got := SpanFromContext(ctx); got != root {
		t.Fatal("span did not round-trip through context")
	}
	ctx2, child := StartSpan(ctx, "child")
	if child == nil || SpanFromContext(ctx2) != child {
		t.Fatal("StartSpan did not install the child")
	}
	AddStage(ctx2, "stage", time.Now(), time.Millisecond)
	child.End()
	root.End()

	d := tr.Recorder().Last(1)[0]
	if len(d.Children) != 1 || d.Children[0].Name != "child" {
		t.Fatalf("children = %+v", d.Children)
	}
	if len(d.Children[0].Children) != 1 || d.Children[0].Children[0].Name != "stage" {
		t.Fatalf("grandchildren = %+v", d.Children[0].Children)
	}

	// Without a span in ctx everything is a no-op.
	plain := context.Background()
	ctx3, sp := StartSpan(plain, "x")
	if sp != nil || ctx3 != plain {
		t.Fatal("StartSpan without a span in ctx must return (ctx, nil)")
	}
	AddStage(plain, "y", time.Now(), time.Second)
}

// TestNilTracerZeroAlloc pins the acceptance rule: with tracing disabled
// (nil tracer → nil spans), every instrumentation call the serve tiers and
// kernels make allocates nothing.
func TestNilTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	ctx := context.Background()
	start := time.Now()
	allocs := testing.AllocsPerRun(200, func() {
		sp := tr.StartRoot("query")
		sp.SetInt("n", 1)
		sp.Set("k", "v")
		sp.Stage("admission", start, time.Millisecond)
		child := sp.Child("map")
		cctx := ContextWithSpan(ctx, child)
		AddStage(cctx, "seed", start, time.Millisecond)
		_, sub := StartSpan(cctx, "sub")
		sub.End()
		child.Error(errNil)
		child.Shed("queue")
		child.End()
		sp.End()
		tr.Recorder().add(SpanData{})
	})
	if allocs != 0 {
		t.Fatalf("nil tracer instrumentation allocates %.1f allocs/op, want 0", allocs)
	}
}

var errNil = errors.New("x")

func TestErrorAndShedMarking(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	sp := tr.StartRoot("query")
	sp.Shed("deadline")
	sp.Error(errors.New("deadline exceeded"))
	sp.End()
	sp.End() // idempotent

	if got := tr.Recorder().Total(); got != 1 {
		t.Fatalf("total = %d, want 1 (End must be idempotent)", got)
	}
	d := tr.Recorder().Last(1)[0]
	if !d.Shed || d.Error != "deadline exceeded" || !d.Failed() {
		t.Fatalf("trace = %+v", d)
	}
	errs := tr.Recorder().Errors()
	if len(errs) != 1 || errs[0].Name != "query" {
		t.Fatalf("error exemplars = %+v", errs)
	}
	if tree := d.Tree(); !strings.Contains(tree, "shed=deadline") || !strings.Contains(tree, "ERROR(") {
		t.Fatalf("tree does not surface the failure:\n%s", tree)
	}
}

func TestSpanMetricsAttachment(t *testing.T) {
	m := perf.NewMetrics()
	tr := NewTracer(TracerConfig{Metrics: m})
	sp := tr.StartRoot("query")
	sp.Stage("seed", time.Now(), 2*time.Millisecond)
	sp.End()
	snap := m.Snapshot()
	if snap.Latencies["span.query"].Count != 1 {
		t.Errorf("span.query latency not observed: %+v", snap.Latencies)
	}
	if got := snap.Latencies["span.seed"]; got.Count != 1 || got.Total != 2*time.Millisecond {
		t.Errorf("span.seed latency = %+v", got)
	}
}

func TestSpanProbeAttachment(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	sp := tr.StartRoot("query")
	p := perf.NewProbe()
	p.Op(perf.ScalarInt, 41)
	p.Load(0x40, 8)
	sp.AttachProbe(p)
	sp.End()
	d := tr.Recorder().Last(1)[0]
	attrs := map[string]string{}
	for _, a := range d.Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["instructions"] != "42" || attrs["loads"] != "1" {
		t.Fatalf("probe attrs = %v", attrs)
	}
}

func TestRecorderRingAndExemplars(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 4, ErrorCapacity: 2})
	rec := tr.Recorder()

	// The slowest trace lands early, then scrolls out of the tiny ring.
	slow := tr.StartRoot("query")
	time.Sleep(20 * time.Millisecond)
	slow.End()
	slowDur := rec.Last(1)[0].Duration

	for i := 0; i < 8; i++ {
		sp := tr.StartRoot("query")
		sp.SetInt("i", int64(i))
		sp.End()
	}
	for i := 0; i < 4; i++ {
		sp := tr.StartRoot("query")
		sp.Shed("queue")
		sp.End()
	}

	if got := rec.Total(); got != 13 {
		t.Fatalf("total = %d, want 13", got)
	}
	if got := len(rec.Last(100)); got != 4 {
		t.Fatalf("ring retained %d, want capacity 4", got)
	}
	if got := len(rec.Errors()); got != 2 {
		t.Fatalf("error exemplars retained %d, want capacity 2", got)
	}
	// The slowest-per-name exemplar survived the ring scroll-out.
	slowest := rec.Slowest(1)
	if len(slowest) != 1 || slowest[0].Duration != slowDur {
		t.Fatalf("slowest = %+v, want the %v trace", slowest, slowDur)
	}
	ex := rec.Exemplars()
	if len(ex) != 3 { // 1 slowest-per-name + 2 errors
		t.Fatalf("exemplars = %d traces, want 3", len(ex))
	}
	if ex[0].Duration != slowDur {
		t.Fatalf("first exemplar is not the slowest: %+v", ex[0])
	}
}

func TestRecorderSlowestDistinct(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 16})
	for i := 0; i < 6; i++ {
		sp := tr.StartRoot(fmt.Sprintf("ep-%d", i%2))
		sp.End()
	}
	got := tr.Recorder().Slowest(100)
	if len(got) != 6 {
		t.Fatalf("slowest returned %d traces, want 6 distinct", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Duration > got[i-1].Duration {
			t.Fatalf("slowest not sorted at %d: %v > %v", i, got[i].Duration, got[i-1].Duration)
		}
	}
}

// TestTracerConcurrent exercises the tracer under -race: many goroutines
// build and complete traces (with children) against one recorder.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 64, Metrics: perf.NewMetrics()})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := tr.StartRoot(fmt.Sprintf("ep-%d", g%3))
				c := sp.Child("stage")
				c.SetInt("i", int64(i))
				c.End()
				if i%17 == 0 {
					sp.Shed("queue")
				}
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	if got := tr.Recorder().Total(); got != 1600 {
		t.Fatalf("total = %d, want 1600", got)
	}
	if got := len(tr.Recorder().Last(100)); got != 64 {
		t.Fatalf("ring retained %d, want 64", got)
	}
}

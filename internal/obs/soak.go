package obs

import (
	"fmt"
	"runtime"
	"strings"

	"pangenomicsbench/internal/perf"
)

// SoakCheck is one end-of-run assertion of a soak replay: a named predicate
// over the run's observability state (metric gauges, runtime counters) with
// a human-readable detail line either way.
type SoakCheck struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail"`
}

// SoakReport collects the assertion results of one soak run. A soak run
// "passes" when every check does; Render gives the operator-facing summary
// the pgbench soak command prints before exiting.
type SoakReport struct {
	Checks []SoakCheck `json:"checks"`
}

// Add appends one check result.
func (r *SoakReport) Add(name string, ok bool, format string, args ...any) {
	r.Checks = append(r.Checks, SoakCheck{Name: name, OK: ok, Detail: fmt.Sprintf(format, args...)})
}

// Failed returns the number of failed checks.
func (r *SoakReport) Failed() int {
	n := 0
	for _, c := range r.Checks {
		if !c.OK {
			n++
		}
	}
	return n
}

// Render formats the report as one PASS/FAIL line per check plus a verdict.
func (r *SoakReport) Render() string {
	var b strings.Builder
	for _, c := range r.Checks {
		mark := "PASS"
		if !c.OK {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "  %s  %-24s %s\n", mark, c.Name, c.Detail)
	}
	if f := r.Failed(); f > 0 {
		fmt.Fprintf(&b, "soak: %d/%d checks FAILED\n", f, len(r.Checks))
	} else {
		fmt.Fprintf(&b, "soak: all %d checks passed\n", len(r.Checks))
	}
	return b.String()
}

// CheckGaugeWatermark asserts the named gauge's high watermark never
// exceeded max — e.g. the admission queue never grew past its configured
// depth even through flash-crowd bursts.
func (r *SoakReport) CheckGaugeWatermark(snap perf.MetricsSnapshot, gauge string, max int64) {
	g := snap.Gauges[gauge]
	r.Add("watermark:"+gauge, g.Watermark <= max, "watermark %d (max %d)", g.Watermark, max)
}

// CheckGaugeReturnsToZero asserts the named gauge drained by run end — e.g.
// queue depth back to zero means no query was stranded in flight.
func (r *SoakReport) CheckGaugeReturnsToZero(snap perf.MetricsSnapshot, gauge string) {
	g := snap.Gauges[gauge]
	r.Add("drained:"+gauge, g.Value == 0, "final value %d (watermark %d)", g.Value, g.Watermark)
}

// CheckShedRate asserts shed/issued stayed at or below ceil. Chaos-induced
// sheds are counted separately by the injection hooks (mapserve.shed_chaos)
// and passed as chaosShed so deliberate storms don't fail the organic
// ceiling.
func (r *SoakReport) CheckShedRate(issued, shed, chaosShed int64, ceil float64) {
	organic := shed - chaosShed
	if organic < 0 {
		organic = 0
	}
	rate := 0.0
	if issued > 0 {
		rate = float64(organic) / float64(issued)
	}
	r.Add("shed-rate", rate <= ceil, "%d organic + %d chaos shed of %d issued (%.3f, ceil %.3f)",
		organic, chaosShed, issued, rate, ceil)
}

// CheckLost asserts that no query vanished: every issued query completed
// (mapped, shed, or failed) by run end.
func (r *SoakReport) CheckLost(lost int64) {
	r.Add("lost-queries", lost == 0, "%d in-flight queries unaccounted for", lost)
}

// CheckGoroutines asserts the run returned to within slack goroutines of its
// starting point — the leak check that catches workers or chaos restarts
// leaving orphans behind.
func (r *SoakReport) CheckGoroutines(baseline, slack int) {
	now := runtime.NumGoroutine()
	r.Add("goroutine-leak", now <= baseline+slack, "%d now vs %d baseline (+%d slack)", now, baseline, slack)
}

// CheckHeapGrowth asserts live heap grew by at most maxGrowth bytes over the
// baseline, after a forced GC so transient garbage doesn't count. The bound
// should be generous — this catches monotonic leaks (snapshots never
// released, caches never evicting), not allocator noise.
func (r *SoakReport) CheckHeapGrowth(baselineHeap uint64, maxGrowth uint64) {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	grew := uint64(0)
	if ms.HeapAlloc > baselineHeap {
		grew = ms.HeapAlloc - baselineHeap
	}
	r.Add("heap-growth", grew <= maxGrowth, "%.1f MiB grown over baseline (max %.1f MiB)",
		float64(grew)/(1<<20), float64(maxGrowth)/(1<<20))
}

// HeapBaseline samples the live heap after a forced GC — the counterpart of
// CheckHeapGrowth, taken once the system under soak is warmed up.
func HeapBaseline() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"time"
)

// Profiler is the slow-build continuous-profiling hook: Start begins a CPU
// profile, and the returned stop function keeps it only when the profiled
// work ran past Threshold — so the store directory accumulates exactly the
// profiles of the builds worth explaining, each named after its trace id so
// the /traces tree links straight to the evidence.
//
// The Go runtime supports one CPU profile per process at a time, so an
// overlapping Start degrades to a no-op rather than failing the build path;
// a nil *Profiler is a no-op everywhere, matching the package's nil-Tracer
// rule.
type Profiler struct {
	// Dir receives kept profiles (created on demand).
	Dir string
	// Threshold is the minimum profiled duration worth keeping; ≤0 keeps
	// every completed capture.
	Threshold time.Duration

	mu     sync.Mutex
	active bool
	seq    int
}

// ProfileStop finalizes one capture: d is the profiled work's duration,
// traceID names the kept file (cpu-<traceID>.pprof). It returns the kept
// file's path, or "" when the capture was dropped (below threshold, capture
// never started, or a file-system error).
type ProfileStop func(d time.Duration, traceID string) string

// Start begins a CPU profile capture. The returned stop must be called
// exactly once (deferred around the work being profiled). When the profiler
// is nil, disabled, or already capturing, stop is a cheap no-op.
func (p *Profiler) Start() ProfileStop {
	noop := func(time.Duration, string) string { return "" }
	if p == nil || p.Dir == "" {
		return noop
	}
	p.mu.Lock()
	if p.active {
		p.mu.Unlock()
		return noop
	}
	if err := os.MkdirAll(p.Dir, 0o755); err != nil {
		p.mu.Unlock()
		return noop
	}
	p.seq++
	tmp := filepath.Join(p.Dir, fmt.Sprintf(".cpu-inflight-%d.pprof", p.seq))
	f, err := os.Create(tmp)
	if err != nil {
		p.mu.Unlock()
		return noop
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		// Another subsystem holds the process profiler; stand down.
		f.Close()
		os.Remove(tmp)
		p.mu.Unlock()
		return noop
	}
	p.active = true
	p.mu.Unlock()

	var once sync.Once
	return func(d time.Duration, traceID string) string {
		path := ""
		once.Do(func() {
			pprof.StopCPUProfile()
			err := f.Close()
			p.mu.Lock()
			p.active = false
			p.mu.Unlock()
			if err != nil || (p.Threshold > 0 && d < p.Threshold) {
				os.Remove(tmp)
				return
			}
			if traceID == "" {
				traceID = fmt.Sprintf("untraced-%d", d.Nanoseconds())
			}
			kept := filepath.Join(p.Dir, "cpu-"+traceID+".pprof")
			if err := os.Rename(tmp, kept); err != nil {
				os.Remove(tmp)
				return
			}
			path = kept
		})
		return path
	}
}

package obs

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"pangenomicsbench/internal/perf"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// TestServerScrape is the CI obs smoke test: it starts the admin server,
// scrapes /metrics and /healthz, verifies the Prometheus output parses with
// no duplicate metric names, and that counters are monotonic across two
// scrapes with traffic in between.
func TestServerScrape(t *testing.T) {
	m := perf.NewMetrics()
	m.Add("svc.requests", 3)
	m.GaugeAdd("svc.inflight", 1)
	m.Observe("svc.exec", 5*time.Millisecond)
	m.ObserveValue("svc.batch", 4)

	tr := NewTracer(TracerConfig{Metrics: m})
	sp := tr.StartRoot("svc.request")
	sp.Stage("admission", time.Now(), time.Millisecond)
	sp.End()

	healthy := true
	srv := NewServer(ServerConfig{
		Metrics:  m.Snapshot,
		Recorder: tr.Recorder(),
		Snapshots: func() []SnapshotInfo {
			return []SnapshotInfo{{ID: "cohort-1", Generation: 3, Refs: 2, InFlight: 1, Current: true}}
		},
		Health: func() error {
			if !healthy {
				return errors.New("registry empty")
			}
			return nil
		},
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + addr

	code, body := get(t, base+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body = get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	first := parseProm(t, body)
	if first["svc_requests_total"] != 3 {
		t.Fatalf("svc_requests_total = %v, want 3", first["svc_requests_total"])
	}

	// More traffic, then a second scrape: every counter must be monotonic.
	m.Add("svc.requests", 2)
	m.Add("svc.errors", 1)
	_, body = get(t, base+"/metrics")
	second := parseProm(t, body)
	for name, v := range first {
		if strings.HasSuffix(name, "_total") || strings.HasSuffix(name, "_count") {
			if second[name] < v {
				t.Errorf("counter %s went backwards: %v -> %v", name, v, second[name])
			}
		}
	}
	if second["svc_requests_total"] != 5 {
		t.Errorf("svc_requests_total after traffic = %v, want 5", second["svc_requests_total"])
	}

	// /traces: tree and jsonl forms.
	code, body = get(t, base+"/traces")
	if code != http.StatusOK || !strings.Contains(body, "svc.request") || !strings.Contains(body, "└─ admission") {
		t.Fatalf("/traces = %d:\n%s", code, body)
	}
	code, body = get(t, base+"/traces?format=jsonl&which=recent&n=5")
	if code != http.StatusOK {
		t.Fatalf("/traces jsonl = %d", code)
	}
	var d SpanData
	if err := json.Unmarshal([]byte(strings.Split(strings.TrimSpace(body), "\n")[0]), &d); err != nil {
		t.Fatalf("jsonl line does not parse: %v\n%s", err, body)
	}
	if d.Name != "svc.request" || len(d.Children) != 1 {
		t.Fatalf("jsonl trace = %+v", d)
	}
	if code, _ := get(t, base+"/traces?format=bogus"); code != http.StatusBadRequest {
		t.Errorf("bogus format = %d, want 400", code)
	}

	// /snapshots.
	code, body = get(t, base+"/snapshots")
	if code != http.StatusOK {
		t.Fatalf("/snapshots = %d", code)
	}
	var infos []SnapshotInfo
	if err := json.Unmarshal([]byte(body), &infos); err != nil {
		t.Fatalf("/snapshots does not parse: %v\n%s", err, body)
	}
	if len(infos) != 1 || infos[0].Generation != 3 || !infos[0].Current {
		t.Fatalf("/snapshots = %+v", infos)
	}

	// Health flip serves 503.
	healthy = false
	if code, body := get(t, base+"/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "registry empty") {
		t.Fatalf("unhealthy /healthz = %d %q", code, body)
	}

	// Index + 404.
	if code, body := get(t, base+"/"); code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index = %d %q", code, body)
	}
	if code, _ := get(t, base+"/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path = %d, want 404", code)
	}
}

// TestTracesMinDurFilter exercises the /traces?min_dur= duration filter:
// only traces whose root duration meets the threshold are served, zero
// matches is an empty (not error) result, and an unparseable or negative
// value is a 400.
func TestTracesMinDurFilter(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	rec := tr.Recorder()
	base0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	for i, dur := range []time.Duration{
		2 * time.Millisecond, 40 * time.Millisecond, 900 * time.Microsecond, 75 * time.Millisecond,
	} {
		rec.add(SpanData{Name: "svc.request", Start: base0.Add(time.Duration(i) * time.Second), Duration: dur})
	}

	srv := NewServer(ServerConfig{Recorder: rec})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + addr

	countLines := func(body string) int {
		body = strings.TrimSpace(body)
		if body == "" {
			return 0
		}
		return len(strings.Split(body, "\n"))
	}

	// No filter: all four traces.
	code, body := get(t, base+"/traces?format=jsonl&which=recent&n=10")
	if code != http.StatusOK || countLines(body) != 4 {
		t.Fatalf("unfiltered /traces = %d, %d lines:\n%s", code, countLines(body), body)
	}

	// min_dur=5ms keeps only the 40ms and 75ms traces.
	code, body = get(t, base+"/traces?format=jsonl&which=recent&n=10&min_dur=5ms")
	if code != http.StatusOK || countLines(body) != 2 {
		t.Fatalf("min_dur=5ms /traces = %d, %d lines:\n%s", code, countLines(body), body)
	}
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		var d SpanData
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("jsonl line does not parse: %v\n%s", err, line)
		}
		if d.Duration < 5*time.Millisecond {
			t.Errorf("trace below threshold leaked through: %v", d.Duration)
		}
	}

	// The filter composes with which=slow and the tree format, and the
	// boundary is inclusive (>=).
	code, body = get(t, base+"/traces?which=slow&min_dur=40ms")
	if code != http.StatusOK {
		t.Fatalf("tree min_dur /traces = %d", code)
	}
	if got := strings.Count(body, "svc.request"); got != 2 {
		t.Errorf("which=slow&min_dur=40ms rendered %d traces, want 2 (inclusive boundary):\n%s", got, body)
	}

	// Above every trace: empty, still a 200.
	code, body = get(t, base+"/traces?format=jsonl&which=recent&min_dur=1h")
	if code != http.StatusOK || countLines(body) != 0 {
		t.Fatalf("min_dur=1h /traces = %d, %d lines", code, countLines(body))
	}

	// Bad values are rejected.
	for _, bad := range []string{"bogus", "5", "-3ms"} {
		if code, _ := get(t, base+"/traces?min_dur="+bad); code != http.StatusBadRequest {
			t.Errorf("min_dur=%s = %d, want 400", bad, code)
		}
	}
}

// TestServerFleetEndpoint exercises the /fleet admin view: the registry
// source's node entries round-trip as JSON with liveness, heartbeat age,
// key ranges and cache counters intact.
func TestServerFleetEndpoint(t *testing.T) {
	srv := NewServer(ServerConfig{
		Fleet: func() []FleetNodeInfo {
			return []FleetNodeInfo{
				{Name: "a-node", Addr: "127.0.0.1:9001", Live: true, HeartbeatAgeMS: 120,
					Range: "[0000000000000000, 7fffffffffffffff]", Tasks: 42,
					CacheHits: 30, CacheMisses: 12, CacheEntries: 7, CacheBytes: 4096,
					Assemblies: 5, ConfigVersion: 5},
				{Name: "b-node", Live: false, HeartbeatAgeMS: 9000,
					Range: "[8000000000000000, ffffffffffffffff]"},
			}
		},
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + addr

	code, body := get(t, base+"/fleet")
	if code != http.StatusOK {
		t.Fatalf("/fleet = %d", code)
	}
	var infos []FleetNodeInfo
	if err := json.Unmarshal([]byte(body), &infos); err != nil {
		t.Fatalf("/fleet does not parse: %v\n%s", err, body)
	}
	if len(infos) != 2 {
		t.Fatalf("/fleet returned %d nodes, want 2", len(infos))
	}
	if infos[0].Name != "a-node" || !infos[0].Live || infos[0].Tasks != 42 || infos[0].CacheHits != 30 {
		t.Fatalf("/fleet live node = %+v", infos[0])
	}
	if infos[1].Live || infos[1].HeartbeatAgeMS != 9000 {
		t.Fatalf("/fleet dead node = %+v", infos[1])
	}
	// A dead node with no address omits the field entirely.
	if strings.Contains(body, `"addr": ""`) {
		t.Fatalf("/fleet serializes empty addr:\n%s", body)
	}
	// The index advertises the endpoint.
	if _, idx := get(t, base+"/"); !strings.Contains(idx, "/fleet") {
		t.Fatalf("index does not mention /fleet:\n%s", idx)
	}
}

func TestServerEmptySources(t *testing.T) {
	srv := NewServer(ServerConfig{})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + addr
	for _, path := range []string{"/metrics", "/traces", "/snapshots", "/fleet", "/healthz"} {
		if code, _ := get(t, base+path); code != http.StatusOK {
			t.Errorf("%s with no sources = %d, want 200", path, code)
		}
	}
	for _, path := range []string{"/snapshots", "/fleet"} {
		if _, body := get(t, base+path); !strings.HasPrefix(strings.TrimSpace(body), "[") {
			t.Errorf("%s with no source = %q, want a JSON array", path, body)
		}
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv := NewServer(ServerConfig{})
	if err := srv.Close(); err != nil {
		t.Fatalf("close before start: %v", err)
	}
	if _, err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTracesTraceIDLookup exercises the exact-lookup path: a known id
// returns exactly that trace (tree or jsonl), an unknown id is a 404.
func TestTracesTraceIDLookup(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	sp := tr.StartRoot("fleet.build")
	sp.Child("fleet.dispatch").End()
	sp.End()
	id := sp.TraceID().String()
	// A second trace ensures the lookup is exact, not "most recent".
	other := tr.StartRoot("unrelated")
	other.End()

	srv := NewServer(ServerConfig{Recorder: tr.Recorder()})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + addr

	code, body := get(t, base+"/traces?trace_id="+id)
	if code != http.StatusOK {
		t.Fatalf("trace_id lookup = %d: %s", code, body)
	}
	if !strings.Contains(body, "fleet.build") || !strings.Contains(body, "fleet.dispatch") {
		t.Fatalf("tree missing spans:\n%s", body)
	}
	if strings.Contains(body, "unrelated") {
		t.Fatal("exact lookup leaked another trace")
	}

	code, body = get(t, base+"/traces?trace_id="+id+"&format=jsonl")
	if code != http.StatusOK {
		t.Fatalf("jsonl lookup = %d", code)
	}
	var d SpanData
	if err := json.Unmarshal([]byte(strings.TrimSpace(body)), &d); err != nil {
		t.Fatalf("jsonl lookup not JSON: %v", err)
	}
	if d.TraceID != id || len(d.Children) != 1 {
		t.Fatalf("jsonl lookup returned %+v", d)
	}

	if code, _ = get(t, base+"/traces?trace_id=ffffffffffffffffffffffffffffffff"); code != http.StatusNotFound {
		t.Fatalf("unknown trace_id = %d, want 404", code)
	}
	// No recorder wired: any lookup is a 404, not a panic.
	bare := NewServer(ServerConfig{})
	addr2, err := bare.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	if code, _ = get(t, "http://"+addr2+"/traces?trace_id="+id); code != http.StatusNotFound {
		t.Fatalf("recorder-less lookup = %d, want 404", code)
	}
}

// TestServerFederatedMetrics checks /metrics merges per-node snapshots under
// node labels while local series pass through unlabeled.
func TestServerFederatedMetrics(t *testing.T) {
	local := perf.NewMetrics()
	local.Add("fleet.tasks", 6)
	w1 := perf.NewMetrics()
	w1.Add("fleet.worker.tasks", 4)
	w2 := perf.NewMetrics()
	w2.Add("fleet.worker.tasks", 2)

	srv := NewServer(ServerConfig{
		Metrics: local.Snapshot,
		FederatedNodes: func() []NodeMetrics {
			return []NodeMetrics{
				{Node: "w1", Snapshot: w1.Snapshot()},
				{Node: "w2", Snapshot: w2.Snapshot()},
			}
		},
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	_, body := get(t, "http://"+addr+"/metrics")
	series := parseProm(t, body)
	if series["fleet_tasks_total"] != 6 {
		t.Errorf("local series = %v, want 6", series["fleet_tasks_total"])
	}
	if series[`fleet_worker_tasks_total{node="w1"}`] != 4 ||
		series[`fleet_worker_tasks_total{node="w2"}`] != 2 {
		t.Errorf("federated node series missing:\n%s", body)
	}
}

// TestServerProfilingGate checks pprof endpoints exist only behind the flag.
func TestServerProfilingGate(t *testing.T) {
	off := NewServer(ServerConfig{})
	offAddr, err := off.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	if code, _ := get(t, "http://"+offAddr+"/debug/pprof/"); code != http.StatusNotFound {
		t.Fatalf("pprof reachable without the flag: %d", code)
	}

	on := NewServer(ServerConfig{EnableProfiling: true})
	onAddr, err := on.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer on.Close()
	code, body := get(t, "http://"+onAddr+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "profile") {
		t.Fatalf("pprof index = %d:\n%s", code, body)
	}
	if code, _ := get(t, "http://"+onAddr+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("pprof cmdline = %d", code)
	}
}

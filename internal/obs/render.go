package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// Tree renders the trace as a human-readable span tree:
//
//	mapserve.query 12.4ms [gen=3 batch=8]
//	├─ admission 1.2ms
//	└─ map 11.1ms
//	   ├─ seed 2.0ms
//	   └─ align 9.1ms
func (d SpanData) Tree() string {
	var b strings.Builder
	d.writeTree(&b, "", "")
	return b.String()
}

func (d SpanData) writeTree(b *strings.Builder, branch, indent string) {
	b.WriteString(branch)
	b.WriteString(d.Name)
	fmt.Fprintf(b, " %v", d.Duration.Round(time.Microsecond))
	if len(d.Attrs) > 0 {
		parts := make([]string, len(d.Attrs))
		for i, a := range d.Attrs {
			parts[i] = a.Key + "=" + a.Value
		}
		fmt.Fprintf(b, " [%s]", strings.Join(parts, " "))
	}
	if d.Error != "" {
		fmt.Fprintf(b, " ERROR(%s)", d.Error)
	}
	b.WriteByte('\n')
	for i, c := range d.Children {
		if i == len(d.Children)-1 {
			c.writeTree(b, indent+"└─ ", indent+"   ")
		} else {
			c.writeTree(b, indent+"├─ ", indent+"│  ")
		}
	}
}

// JSONLine renders the trace as one compact JSON object (the /traces
// endpoint's JSON-lines format).
func (d SpanData) JSONLine() string {
	raw, err := json.Marshal(d)
	if err != nil {
		return fmt.Sprintf(`{"name":%q,"marshal_error":%q}`, d.Name, err.Error())
	}
	return string(raw)
}

// StageSum returns the summed duration of the trace's direct children —
// the accounted-for fraction of the request latency. A well-attributed
// trace's StageSum is within a few percent of its root Duration.
func (d SpanData) StageSum() time.Duration {
	var sum time.Duration
	for _, c := range d.Children {
		sum += c.Duration
	}
	return sum
}

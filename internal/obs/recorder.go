package obs

import (
	"sort"
	"sync"
	"time"
)

// SpanData is one immutable node of a completed trace tree — what the
// flight recorder retains and the /traces endpoint serves. Duration
// marshals as nanoseconds.
type SpanData struct {
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	TraceID  string        `json:"trace_id,omitempty"`
	SpanID   string        `json:"span_id,omitempty"`
	ParentID string        `json:"parent_span_id,omitempty"`
	Attrs    []Attr        `json:"attrs,omitempty"`
	Error    string        `json:"error,omitempty"`
	Shed     bool          `json:"shed,omitempty"`
	Children []SpanData    `json:"children,omitempty"`
}

// Failed reports whether the trace (root) recorded an error or a shed.
func (d SpanData) Failed() bool { return d.Error != "" || d.Shed }

// exemplar is one retained slowest-per-name trace stamped with when the
// recorder saw it, so stale records can age out.
type exemplar struct {
	d  SpanData
	at time.Time
}

// Recorder is the bounded flight recorder: a ring of the last N completed
// traces plus an always-kept exemplar set — the slowest trace per root name
// (endpoint) and the most recent shed/error traces. The ring answers "what
// just happened"; the exemplars answer "what was the worst, even if it
// scrolled out of the ring an hour ago".
//
// Two knobs keep it honest under soak load: sampleEvery ring-retains only
// 1-in-N successful traces (failed/shed traces always land), and maxAge
// expires a slowest exemplar once it has sat unchallenged past the horizon —
// the next trace of that name replaces it even if faster, so a pathological
// outlier from an hour-old chaos window stops shadowing current behaviour.
type Recorder struct {
	mu          sync.Mutex
	ring        []SpanData
	next        int
	filled      bool
	total       uint64
	sampledOut  uint64
	sampleEvery int
	maxAge      time.Duration
	now         func() time.Time // injectable for aging tests
	slowest     map[string]exemplar
	errs        []SpanData
	errCap      int
}

func newRecorder(cfg TracerConfig) *Recorder {
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = 256
	}
	errCapacity := cfg.ErrorCapacity
	if errCapacity <= 0 {
		errCapacity = 32
	}
	return &Recorder{
		ring:        make([]SpanData, capacity),
		sampleEvery: cfg.SampleEvery,
		maxAge:      cfg.ExemplarMaxAge,
		now:         time.Now,
		slowest:     map[string]exemplar{},
		errCap:      errCapacity,
	}
}

// add retains one completed trace. Nil-safe so a nil tracer's spans cost
// nothing.
func (r *Recorder) add(d SpanData) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	// 1-in-N sampling applies to the ring only, and only to successful
	// traces: exemplars and error retention below always see every trace.
	if r.sampleEvery <= 1 || d.Failed() || (r.total-1)%uint64(r.sampleEvery) == 0 {
		r.ring[r.next] = d
		r.next++
		if r.next == len(r.ring) {
			r.next = 0
			r.filled = true
		}
	} else {
		r.sampledOut++
	}
	cur, ok := r.slowest[d.Name]
	stale := ok && r.maxAge > 0 && r.now().Sub(cur.at) > r.maxAge
	if !ok || stale || d.Duration > cur.d.Duration {
		r.slowest[d.Name] = exemplar{d: d, at: r.now()}
	}
	if d.Failed() {
		r.errs = append(r.errs, d)
		if len(r.errs) > r.errCap {
			r.errs = r.errs[len(r.errs)-r.errCap:]
		}
	}
}

// SampledOut returns how many successful traces the 1-in-N sampler dropped
// from the ring (they still challenged the exemplar set).
func (r *Recorder) SampledOut() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sampledOut
}

// Total returns the number of traces ever completed (including those that
// have scrolled out of the ring).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Last returns up to n retained traces, most recent first.
func (r *Recorder) Last(n int) []SpanData {
	if r == nil || n <= 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	size := r.next
	if r.filled {
		size = len(r.ring)
	}
	if n > size {
		n = size
	}
	out := make([]SpanData, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, r.ring[(r.next-i+len(r.ring))%len(r.ring)])
	}
	return out
}

// Exemplars returns the always-kept set: the slowest trace per root name
// followed by the retained shed/error traces.
func (r *Recorder) Exemplars() []SpanData {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.slowest))
	for name := range r.slowest {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]SpanData, 0, len(names)+len(r.errs))
	for _, name := range names {
		out = append(out, r.slowest[name].d)
	}
	return append(out, r.errs...)
}

// ByTraceID returns the retained trace with the given id — ring, slowest
// exemplars, and error exemplars are all searched (most recent ring entry
// wins on the impossible-in-practice case of a duplicate). ok=false when
// the id has scrolled out of every retention tier.
func (r *Recorder) ByTraceID(id string) (SpanData, bool) {
	if r == nil || id == "" {
		return SpanData{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	size := r.next
	if r.filled {
		size = len(r.ring)
	}
	for i := 1; i <= size; i++ {
		d := r.ring[(r.next-i+len(r.ring))%len(r.ring)]
		if d.TraceID == id {
			return d, true
		}
	}
	for _, e := range r.slowest {
		if e.d.TraceID == id {
			return e.d, true
		}
	}
	for i := len(r.errs) - 1; i >= 0; i-- {
		if r.errs[i].TraceID == id {
			return r.errs[i], true
		}
	}
	return SpanData{}, false
}

// Errors returns the retained shed/error traces, oldest first.
func (r *Recorder) Errors() []SpanData {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]SpanData(nil), r.errs...)
}

// Slowest returns up to n distinct retained traces — ring and exemplars
// pooled — slowest first.
func (r *Recorder) Slowest(n int) []SpanData {
	if r == nil || n <= 0 {
		return nil
	}
	r.mu.Lock()
	pool := make([]SpanData, 0, len(r.ring)+len(r.slowest))
	size := r.next
	if r.filled {
		size = len(r.ring)
	}
	pool = append(pool, r.ring[:size]...)
	for _, e := range r.slowest {
		pool = append(pool, e.d)
	}
	r.mu.Unlock()

	sort.SliceStable(pool, func(i, j int) bool { return pool[i].Duration > pool[j].Duration })
	type key struct {
		name  string
		start time.Time
	}
	seen := map[key]bool{}
	out := make([]SpanData, 0, n)
	for _, d := range pool {
		k := key{d.Name, d.Start}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, d)
		if len(out) == n {
			break
		}
	}
	return out
}

package obs

import (
	"sort"
	"sync"
	"time"
)

// SpanData is one immutable node of a completed trace tree — what the
// flight recorder retains and the /traces endpoint serves. Duration
// marshals as nanoseconds.
type SpanData struct {
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Attrs    []Attr        `json:"attrs,omitempty"`
	Error    string        `json:"error,omitempty"`
	Shed     bool          `json:"shed,omitempty"`
	Children []SpanData    `json:"children,omitempty"`
}

// Failed reports whether the trace (root) recorded an error or a shed.
func (d SpanData) Failed() bool { return d.Error != "" || d.Shed }

// Recorder is the bounded flight recorder: a ring of the last N completed
// traces plus an always-kept exemplar set — the slowest trace per root name
// (endpoint) and the most recent shed/error traces. The ring answers "what
// just happened"; the exemplars answer "what was the worst, even if it
// scrolled out of the ring an hour ago".
type Recorder struct {
	mu      sync.Mutex
	ring    []SpanData
	next    int
	filled  bool
	total   uint64
	slowest map[string]SpanData
	errs    []SpanData
	errCap  int
}

func newRecorder(capacity, errCapacity int) *Recorder {
	if capacity <= 0 {
		capacity = 256
	}
	if errCapacity <= 0 {
		errCapacity = 32
	}
	return &Recorder{
		ring:    make([]SpanData, capacity),
		slowest: map[string]SpanData{},
		errCap:  errCapacity,
	}
}

// add retains one completed trace. Nil-safe so a nil tracer's spans cost
// nothing.
func (r *Recorder) add(d SpanData) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	r.ring[r.next] = d
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.filled = true
	}
	if cur, ok := r.slowest[d.Name]; !ok || d.Duration > cur.Duration {
		r.slowest[d.Name] = d
	}
	if d.Failed() {
		r.errs = append(r.errs, d)
		if len(r.errs) > r.errCap {
			r.errs = r.errs[len(r.errs)-r.errCap:]
		}
	}
}

// Total returns the number of traces ever completed (including those that
// have scrolled out of the ring).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Last returns up to n retained traces, most recent first.
func (r *Recorder) Last(n int) []SpanData {
	if r == nil || n <= 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	size := r.next
	if r.filled {
		size = len(r.ring)
	}
	if n > size {
		n = size
	}
	out := make([]SpanData, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, r.ring[(r.next-i+len(r.ring))%len(r.ring)])
	}
	return out
}

// Exemplars returns the always-kept set: the slowest trace per root name
// followed by the retained shed/error traces.
func (r *Recorder) Exemplars() []SpanData {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.slowest))
	for name := range r.slowest {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]SpanData, 0, len(names)+len(r.errs))
	for _, name := range names {
		out = append(out, r.slowest[name])
	}
	return append(out, r.errs...)
}

// Errors returns the retained shed/error traces, oldest first.
func (r *Recorder) Errors() []SpanData {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]SpanData(nil), r.errs...)
}

// Slowest returns up to n distinct retained traces — ring and exemplars
// pooled — slowest first.
func (r *Recorder) Slowest(n int) []SpanData {
	if r == nil || n <= 0 {
		return nil
	}
	r.mu.Lock()
	pool := make([]SpanData, 0, len(r.ring)+len(r.slowest))
	size := r.next
	if r.filled {
		size = len(r.ring)
	}
	pool = append(pool, r.ring[:size]...)
	for _, d := range r.slowest {
		pool = append(pool, d)
	}
	r.mu.Unlock()

	sort.SliceStable(pool, func(i, j int) bool { return pool[i].Duration > pool[j].Duration })
	type key struct {
		name  string
		start time.Time
	}
	seen := map[key]bool{}
	out := make([]SpanData, 0, n)
	for _, d := range pool {
		k := key{d.Name, d.Start}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, d)
		if len(out) == n {
			break
		}
	}
	return out
}

package obs

import (
	"math"
	"strings"
	"testing"
	"time"

	"pangenomicsbench/internal/perf"
)

func TestWithLabelEscaping(t *testing.T) {
	cases := []struct{ value, want string }{
		{"w1", `fleet.tasks{node="w1"}`},
		{`back\slash`, `fleet.tasks{node="back\\slash"}`},
		{`say "hi"`, `fleet.tasks{node="say \"hi\""}`},
		{"line\nbreak", `fleet.tasks{node="line\nbreak"}`},
		{`all\"three` + "\n", `fleet.tasks{node="all\\\"three\n"}`},
	}
	for _, c := range cases {
		if got := WithLabel("fleet.tasks", "node", c.value); got != c.want {
			t.Errorf("WithLabel(%q) = %s, want %s", c.value, got, c.want)
		}
	}
	// A second label appends into the existing block.
	k := WithLabel(WithLabel("fleet.errors", "code", "decode"), "node", "w1")
	if k != `fleet.errors{code="decode",node="w1"}` {
		t.Fatalf("chained WithLabel = %s", k)
	}
}

// TestPromTextLabeledFamilies checks that labeled and unlabeled series of one
// family render under a single HELP/TYPE header, consecutively, and that the
// escaped label values survive the round trip to the exposition text.
func TestPromTextLabeledFamilies(t *testing.T) {
	m := perf.NewMetrics()
	m.Add("fleet.tasks", 3)
	m.Add(WithLabel("fleet.tasks", "node", "w1"), 2)
	m.Add(WithLabel("fleet.tasks", "node", `we"ird`), 1)
	m.GaugeSet(WithLabel("fleet.shard_pairs", "node", "w1"), 22)
	m.GaugeSet(WithLabel("fleet.shard_pairs", "node", "w2"), 6)
	m.Observe(WithLabel("fleet.rpc", "node", "w1"), 5*time.Millisecond)
	m.ObserveValue(WithLabel("fleet.batch", "node", "w1"), 4)

	text := PromText(m.Snapshot())
	series := parseProm(t, text) // also rejects duplicate series

	if got := series["fleet_tasks_total"]; got != 3 {
		t.Errorf("unlabeled fleet_tasks_total = %v, want 3", got)
	}
	if got := series[`fleet_tasks_total{node="w1"}`]; got != 2 {
		t.Errorf("labeled fleet_tasks_total = %v, want 2", got)
	}
	if got := series[`fleet_tasks_total{node="we\"ird"}`]; got != 1 {
		t.Errorf("escaped-label series = %v, want 1", got)
	}
	if series[`fleet_shard_pairs{node="w1"}`] != 22 || series[`fleet_shard_pairs{node="w2"}`] != 6 {
		t.Error("shard-pairs gauges did not render per node")
	}
	if got := series[`fleet_rpc_seconds_count{node="w1"}`]; got != 1 {
		t.Errorf("labeled latency count = %v, want 1", got)
	}
	if got := series[`fleet_batch_bucket{node="w1",le="+Inf"}`]; got != 1 {
		t.Errorf("labeled +Inf bucket = %v, want 1", got)
	}

	// One TYPE line per family, and every series of a family consecutive
	// under it — the exposition format's grouping requirement.
	lines := strings.Split(text, "\n")
	seenFamily := map[string]bool{}
	current := ""
	for _, line := range lines {
		if strings.HasPrefix(line, "# TYPE ") {
			fam := strings.Fields(line)[2]
			if seenFamily[fam] {
				t.Fatalf("family %s declared twice", fam)
			}
			seenFamily[fam] = true
			current = fam
			continue
		}
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line[:strings.IndexAny(line, "{ ")]
		if !strings.HasPrefix(name, current) {
			t.Fatalf("series %s rendered under family %s", name, current)
		}
	}
}

func TestPromFloatEdges(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{math.NaN(), "NaN"},
		{math.Inf(1), "+Inf"},
		{math.Inf(-1), "-Inf"},
		{0, "0"},
		{5, "5"},
		{0.01, "0.01"},
		{1e-9, "1e-09"},
		{1e21, "1e+21"},
		{-2.5, "-2.5"},
	}
	for _, c := range cases {
		if got := promFloat(c.in); got != c.want {
			t.Errorf("promFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFederate(t *testing.T) {
	local := perf.NewMetrics()
	local.Add("fleet.tasks", 10)
	local.GaugeSet("fleet.shard_imbalance_milli", 1333)

	w1 := perf.NewMetrics()
	w1.Add("fleet.worker.tasks", 4)
	w1.Observe("fleet.worker.match", 3*time.Millisecond)
	w2 := perf.NewMetrics()
	w2.Add("fleet.worker.tasks", 2)
	w2.ObserveValue("fleet.worker.blocks", 8)

	fed := Federate(local.Snapshot(), []NodeMetrics{
		{Node: "w1", Snapshot: w1.Snapshot()},
		{Node: "w2", Snapshot: w2.Snapshot()},
	})

	if fed.Counters["fleet.tasks"] != 10 {
		t.Error("local counter did not pass through")
	}
	if fed.Counters[`fleet.worker.tasks{node="w1"}`] != 4 ||
		fed.Counters[`fleet.worker.tasks{node="w2"}`] != 2 {
		t.Errorf("node counters not federated: %+v", fed.Counters)
	}
	if fed.Latencies[`fleet.worker.match{node="w1"}`].Count != 1 {
		t.Error("node latency not federated")
	}
	if fed.Values[`fleet.worker.blocks{node="w2"}`].Count != 1 {
		t.Error("node value histogram not federated")
	}
	// The federated snapshot must render cleanly (no duplicate series).
	parseProm(t, PromText(fed))

	// Federating with no nodes reproduces the local view.
	alone := Federate(local.Snapshot(), nil)
	if PromText(alone) != PromText(local.Snapshot()) {
		t.Fatal("node-free federation changed the local exposition")
	}
}

package obs

import (
	"fmt"
	"sort"
	"strings"

	"pangenomicsbench/internal/perf"
)

// PromText renders a perf.MetricsSnapshot in the Prometheus text exposition
// format (version 0.0.4): counters as <name>_total, gauges as <name> plus a
// <name>_watermark gauge, latency accumulators as <name>_seconds summaries
// (count/sum plus a _max gauge), and log2 value histograms as cumulative
// le-bucketed histograms. Metric names are sanitized (every character
// outside [a-zA-Z0-9_:] becomes '_') and families are emitted in sorted
// order so consecutive scrapes diff cleanly.
func PromText(s perf.MetricsSnapshot) string {
	var b strings.Builder

	for _, k := range sortedKeys(s.Counters) {
		name := promName(k) + "_total"
		fmt.Fprintf(&b, "# HELP %s Counter %q.\n# TYPE %s counter\n%s %d\n",
			name, k, name, name, s.Counters[k])
	}
	for _, k := range sortedKeys(s.Gauges) {
		g := s.Gauges[k]
		name := promName(k)
		fmt.Fprintf(&b, "# HELP %s Gauge %q.\n# TYPE %s gauge\n%s %d\n",
			name, k, name, name, g.Value)
		fmt.Fprintf(&b, "# HELP %s_watermark High watermark of gauge %q.\n# TYPE %s_watermark gauge\n%s_watermark %d\n",
			name, k, name, name, g.Watermark)
	}
	for _, k := range sortedKeys(s.Latencies) {
		l := s.Latencies[k]
		name := promName(k) + "_seconds"
		fmt.Fprintf(&b, "# HELP %s Latency summary %q.\n# TYPE %s summary\n", name, k, name)
		fmt.Fprintf(&b, "%s_count %d\n%s_sum %s\n", name, l.Count, name, promFloat(l.Total.Seconds()))
		fmt.Fprintf(&b, "# HELP %s_max Maximum latency sample %q.\n# TYPE %s_max gauge\n%s_max %s\n",
			name, k, name, name, promFloat(l.Max.Seconds()))
	}
	for _, k := range sortedKeys(s.Values) {
		v := s.Values[k]
		name := promName(k)
		fmt.Fprintf(&b, "# HELP %s Value distribution %q (log2 buckets).\n# TYPE %s histogram\n", name, k, name)
		idxs := make([]int, 0, len(v.Buckets))
		for i := range v.Buckets {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		var cum int64
		for _, i := range idxs {
			cum += v.Buckets[i]
			fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", name, int64(1)<<uint(i), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, v.Count)
		fmt.Fprintf(&b, "%s_sum %s\n%s_count %d\n", name, promFloat(v.Sum), name, v.Count)
	}
	return b.String()
}

// promName sanitizes a dotted metric name into the Prometheus alphabet.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat formats a float sample value ('g' keeps integers short and
// never emits a locale-dependent form).
func promFloat(f float64) string {
	return fmt.Sprintf("%g", f)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

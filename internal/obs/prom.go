package obs

import (
	"fmt"
	"sort"
	"strings"

	"pangenomicsbench/internal/perf"
)

// Labeled series: a perf metric key may carry a Prometheus-style label
// block suffix — `fleet.shard_pairs{node="w1"}` — built with WithLabel.
// perf.Metrics itself stays label-unaware (keys are opaque strings); the
// exposition layer here parses the suffix so all series of one family are
// grouped under a single HELP/TYPE header, as the text format requires.
// Metrics federation (Federate) is the main producer: it rewrites every
// scraped worker key with a `node` label before merging into one snapshot.

// WithLabel returns the metric key for name with an added label. The value
// is escaped per the exposition format (backslash, quote, newline); calling
// it again appends into the existing label block, keeping one well-formed
// suffix. Label insertion order is preserved.
func WithLabel(name, label, value string) string {
	pair := label + `="` + escapeLabelValue(value) + `"`
	if strings.HasSuffix(name, "}") {
		return name[:len(name)-1] + "," + pair + "}"
	}
	return name + "{" + pair + "}"
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 2)
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// splitLabels splits a metric key into its base name and label block
// ("" when unlabeled; otherwise the braces-inclusive suffix).
func splitLabels(key string) (base, labels string) {
	if i := strings.IndexByte(key, '{'); i >= 0 && strings.HasSuffix(key, "}") {
		return key[:i], key[i:]
	}
	return key, ""
}

// seriesName renders one sample name: sanitized base + suffix + label block.
func seriesName(base, suffix, labels string) string {
	return promName(base) + suffix + labels
}

// withLE merges an le label into an existing label block.
func withLE(labels string, le string) string {
	pair := `le="` + le + `"`
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

// family is one metric family: all raw keys sharing a base name.
type family struct {
	base string
	keys []string // full raw keys, sorted (unlabeled first)
}

// families groups a map's keys by base name, families sorted by base and
// keys sorted within each family — the exposition format requires every
// series of a family to be consecutive under one HELP/TYPE header.
func families[V any](m map[string]V) []family {
	byBase := map[string][]string{}
	for k := range m {
		base, _ := splitLabels(k)
		byBase[base] = append(byBase[base], k)
	}
	out := make([]family, 0, len(byBase))
	for base, keys := range byBase {
		sort.Strings(keys)
		out = append(out, family{base: base, keys: keys})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].base < out[j].base })
	return out
}

// PromText renders a perf.MetricsSnapshot in the Prometheus text exposition
// format (version 0.0.4): counters as <name>_total, gauges as <name> plus a
// <name>_watermark gauge, latency accumulators as <name>_seconds summaries
// (count/sum plus a _max gauge), and log2 value histograms as cumulative
// le-bucketed histograms. Metric names are sanitized (every character
// outside [a-zA-Z0-9_:] becomes '_'), keys may carry label blocks (see
// WithLabel), and families are emitted in sorted order so consecutive
// scrapes diff cleanly.
func PromText(s perf.MetricsSnapshot) string {
	var b strings.Builder

	for _, fam := range families(s.Counters) {
		name := promName(fam.base) + "_total"
		fmt.Fprintf(&b, "# HELP %s Counter %q.\n# TYPE %s counter\n", name, fam.base, name)
		for _, k := range fam.keys {
			_, labels := splitLabels(k)
			fmt.Fprintf(&b, "%s %d\n", seriesName(fam.base, "_total", labels), s.Counters[k])
		}
	}
	for _, fam := range families(s.Gauges) {
		name := promName(fam.base)
		fmt.Fprintf(&b, "# HELP %s Gauge %q.\n# TYPE %s gauge\n", name, fam.base, name)
		for _, k := range fam.keys {
			_, labels := splitLabels(k)
			fmt.Fprintf(&b, "%s %d\n", seriesName(fam.base, "", labels), s.Gauges[k].Value)
		}
		fmt.Fprintf(&b, "# HELP %s_watermark High watermark of gauge %q.\n# TYPE %s_watermark gauge\n",
			name, fam.base, name)
		for _, k := range fam.keys {
			_, labels := splitLabels(k)
			fmt.Fprintf(&b, "%s %d\n", seriesName(fam.base, "_watermark", labels), s.Gauges[k].Watermark)
		}
	}
	for _, fam := range families(s.Latencies) {
		name := promName(fam.base) + "_seconds"
		fmt.Fprintf(&b, "# HELP %s Latency summary %q.\n# TYPE %s summary\n", name, fam.base, name)
		for _, k := range fam.keys {
			l := s.Latencies[k]
			_, labels := splitLabels(k)
			fmt.Fprintf(&b, "%s %d\n%s %s\n",
				seriesName(fam.base, "_seconds_count", labels), l.Count,
				seriesName(fam.base, "_seconds_sum", labels), promFloat(l.Total.Seconds()))
		}
		fmt.Fprintf(&b, "# HELP %s_max Maximum latency sample %q.\n# TYPE %s_max gauge\n", name, fam.base, name)
		for _, k := range fam.keys {
			_, labels := splitLabels(k)
			fmt.Fprintf(&b, "%s %s\n",
				seriesName(fam.base, "_seconds_max", labels), promFloat(s.Latencies[k].Max.Seconds()))
		}
	}
	for _, fam := range families(s.Values) {
		name := promName(fam.base)
		fmt.Fprintf(&b, "# HELP %s Value distribution %q (log2 buckets).\n# TYPE %s histogram\n", name, fam.base, name)
		for _, k := range fam.keys {
			v := s.Values[k]
			_, labels := splitLabels(k)
			idxs := make([]int, 0, len(v.Buckets))
			for i := range v.Buckets {
				idxs = append(idxs, i)
			}
			sort.Ints(idxs)
			var cum int64
			for _, i := range idxs {
				cum += v.Buckets[i]
				fmt.Fprintf(&b, "%s %d\n",
					seriesName(fam.base, "_bucket", withLE(labels, fmt.Sprintf("%d", int64(1)<<uint(i)))), cum)
			}
			fmt.Fprintf(&b, "%s %d\n", seriesName(fam.base, "_bucket", withLE(labels, "+Inf")), v.Count)
			fmt.Fprintf(&b, "%s %s\n%s %d\n",
				seriesName(fam.base, "_sum", labels), promFloat(v.Sum),
				seriesName(fam.base, "_count", labels), v.Count)
		}
	}
	return b.String()
}

// NodeMetrics is one fleet node's scraped metric snapshot, tagged with the
// node name the federated view labels its series with.
type NodeMetrics struct {
	Node     string
	Snapshot perf.MetricsSnapshot
}

// Federate merges per-node metric snapshots into one: local series pass
// through unchanged, every node series gains a `node` label. The result
// renders through PromText as a single federated exposition — the
// coordinator's /metrics view over the whole fleet.
func Federate(local perf.MetricsSnapshot, nodes []NodeMetrics) perf.MetricsSnapshot {
	out := perf.MetricsSnapshot{
		Counters:  map[string]int64{},
		Gauges:    map[string]perf.GaugeSummary{},
		Latencies: map[string]perf.LatencySummary{},
		Values:    map[string]perf.ValueSummary{},
	}
	for k, v := range local.Counters {
		out.Counters[k] = v
	}
	for k, v := range local.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range local.Latencies {
		out.Latencies[k] = v
	}
	for k, v := range local.Values {
		out.Values[k] = v
	}
	for _, n := range nodes {
		for k, v := range n.Snapshot.Counters {
			out.Counters[WithLabel(k, "node", n.Node)] = v
		}
		for k, v := range n.Snapshot.Gauges {
			out.Gauges[WithLabel(k, "node", n.Node)] = v
		}
		for k, v := range n.Snapshot.Latencies {
			out.Latencies[WithLabel(k, "node", n.Node)] = v
		}
		for k, v := range n.Snapshot.Values {
			out.Values[WithLabel(k, "node", n.Node)] = v
		}
	}
	return out
}

// promName sanitizes a dotted metric name into the Prometheus alphabet.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat formats a float sample value ('g' keeps integers short, never
// emits a locale-dependent form, and spells specials the way the exposition
// format does: NaN, +Inf, -Inf).
func promFloat(f float64) string {
	return fmt.Sprintf("%g", f)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// JSONLSink is a concurrency-safe structured log writer: one JSON object per
// line, each stamped with a kind and a timestamp. Soak runs use it to leave
// a machine-readable flight log (periodic samples, chaos events, the final
// report) that outlives the process — the offline counterpart of the live
// /traces endpoint.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
	now func() time.Time
}

// NewJSONLSink writes JSONL records to w. A nil sink is valid and drops
// everything, matching the package's nil-tracer rule.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w), now: time.Now}
}

// Emit writes one record of the given kind. Fields are shallow-copied into
// the record alongside "kind" and "ts" (RFC 3339, nanoseconds). Encoding
// errors are swallowed: a full disk must not fail the run being logged.
func (s *JSONLSink) Emit(kind string, fields map[string]any) {
	if s == nil {
		return
	}
	rec := make(map[string]any, len(fields)+2)
	for k, v := range fields {
		rec[k] = v
	}
	rec["kind"] = kind
	rec["ts"] = s.now().Format(time.RFC3339Nano)
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.enc.Encode(rec)
}

package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"pangenomicsbench/internal/perf"
)

// SnapshotInfo is one published query snapshot's liveness, as shown by the
// /snapshots endpoint: the mapserve registry reports each still-referenced
// generation, its refcount, and how many queries hold it in flight.
type SnapshotInfo struct {
	ID         string `json:"id"`
	Generation uint64 `json:"generation"`
	Refs       int64  `json:"refs"`
	InFlight   int64  `json:"in_flight"`
	Current    bool   `json:"current"`
}

// FleetNodeInfo is one construction-fleet node's registry state, as shown
// by the /fleet endpoint: liveness, heartbeat age, the key range of the
// canonical pair-hash space the node owns, and the last heartbeat's
// task/shard-cache counters (the per-shard cache hit ratio is
// CacheHits / (CacheHits + CacheMisses)).
type FleetNodeInfo struct {
	Name           string `json:"name"`
	Addr           string `json:"addr,omitempty"`
	Live           bool   `json:"live"`
	HeartbeatAgeMS int64  `json:"heartbeat_age_ms"`
	Range          string `json:"range"`
	Tasks          int64  `json:"tasks"`
	CacheHits      int64  `json:"cache_hits"`
	CacheMisses    int64  `json:"cache_misses"`
	CacheEntries   int    `json:"cache_entries"`
	CacheBytes     int    `json:"cache_bytes"`
	Assemblies     int    `json:"assemblies"`
	ConfigVersion  int    `json:"config_version"`
}

// ServerConfig wires the admin server's data sources. Every field is
// optional; endpoints with no source report an empty result.
type ServerConfig struct {
	// Metrics supplies the aggregate metric set behind /metrics.
	Metrics func() perf.MetricsSnapshot
	// Recorder supplies the flight recorder behind /traces.
	Recorder *Recorder
	// Snapshots supplies the registry state behind /snapshots.
	Snapshots func() []SnapshotInfo
	// Fleet supplies the construction-fleet node registry behind /fleet.
	Fleet func() []FleetNodeInfo
	// FederatedNodes, when non-nil, supplies per-node metric snapshots that
	// /metrics merges into the local set with `node` labels (see Federate) —
	// the coordinator wires this to its heartbeat-scraped worker snapshots.
	FederatedNodes func() []NodeMetrics
	// Health, when non-nil, gates /healthz: a returned error serves 503.
	Health func() error
	// EnableProfiling mounts the net/http/pprof handlers under /debug/pprof/.
	// Off by default: profiling endpoints can stall the process (CPU profile
	// holds the profiler for its whole duration) and belong behind a flag.
	EnableProfiling bool
}

// Server is the live admin/metrics endpoint: a stdlib net/http server
// exposing /metrics (Prometheus text), /traces (span trees or JSON lines),
// /snapshots (registry generations) and /healthz.
type Server struct {
	cfg ServerConfig
	mux *http.ServeMux

	srv *http.Server
	ln  net.Listener
}

// NewServer builds the admin server; Start binds and serves it.
func NewServer(cfg ServerConfig) *Server {
	s := &Server{cfg: cfg, mux: http.NewServeMux()}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/traces", s.handleTraces)
	s.mux.HandleFunc("/snapshots", s.handleSnapshots)
	s.mux.HandleFunc("/fleet", s.handleFleet)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	if cfg.EnableProfiling {
		// Mounted explicitly (not via the package's DefaultServeMux side
		// effects) so profiling stays opt-in per server.
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Handler returns the server's route mux (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (e.g. ":8080", "127.0.0.1:0") and serves in the
// background, returning the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Close stops the server (no-op if never started).
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `pangenomicsbench admin endpoint
  /metrics    Prometheus text exposition of the service metric set (federated node-labeled series when fleet-wired)
  /traces     flight-recorder traces (?format=jsonl|tree, ?n=20, ?which=slow|recent|exemplars, ?min_dur=5ms, ?trace_id=<32hex> exact lookup)
  /snapshots  mapserve registry generations, refcounts, in-flight queries
  /fleet      construction-fleet node registry (liveness, key ranges, shard caches)
  /healthz    liveness
`)
	if s.cfg.EnableProfiling {
		fmt.Fprint(w, "  /debug/pprof/  continuous-profiling endpoints (profile, trace, heap, ...)\n")
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var snap perf.MetricsSnapshot
	if s.cfg.Metrics != nil {
		snap = s.cfg.Metrics()
	}
	if s.cfg.FederatedNodes != nil {
		if nodes := s.cfg.FederatedNodes(); len(nodes) > 0 {
			snap = Federate(snap, nodes)
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, PromText(snap))
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if id := r.URL.Query().Get("trace_id"); id != "" {
		d, ok := s.cfg.Recorder.ByTraceID(id)
		if !ok {
			http.Error(w, fmt.Sprintf("no retained trace with trace_id=%q", id), http.StatusNotFound)
			return
		}
		if format := r.URL.Query().Get("format"); format == "jsonl" {
			w.Header().Set("Content-Type", "application/x-ndjson")
			fmt.Fprintln(w, d.JSONLine())
		} else {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, d.Tree())
		}
		return
	}
	n := 20
	if raw := r.URL.Query().Get("n"); raw != "" {
		if v, err := strconv.Atoi(raw); err == nil && v > 0 {
			n = v
		}
	}
	var minDur time.Duration
	if raw := r.URL.Query().Get("min_dur"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d < 0 {
			http.Error(w, fmt.Sprintf("bad min_dur=%q (want a non-negative Go duration, e.g. 5ms)", raw), http.StatusBadRequest)
			return
		}
		minDur = d
	}
	var traces []SpanData
	switch which := r.URL.Query().Get("which"); which {
	case "", "slow":
		traces = s.cfg.Recorder.Slowest(n)
	case "recent":
		traces = s.cfg.Recorder.Last(n)
	case "exemplars":
		traces = s.cfg.Recorder.Exemplars()
	default:
		http.Error(w, fmt.Sprintf("unknown which=%q (want slow, recent or exemplars)", which), http.StatusBadRequest)
		return
	}
	if minDur > 0 {
		kept := traces[:0:len(traces)]
		for _, d := range traces {
			if d.Duration >= minDur {
				kept = append(kept, d)
			}
		}
		traces = kept
	}
	switch format := r.URL.Query().Get("format"); format {
	case "jsonl":
		w.Header().Set("Content-Type", "application/x-ndjson")
		for _, d := range traces {
			fmt.Fprintln(w, d.JSONLine())
		}
	case "", "tree":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "%d traces retained (%d completed total)\n\n",
			len(traces), s.cfg.Recorder.Total())
		for _, d := range traces {
			fmt.Fprintln(w, d.Tree())
		}
	default:
		http.Error(w, fmt.Sprintf("unknown format=%q (want tree or jsonl)", format), http.StatusBadRequest)
	}
}

func (s *Server) handleSnapshots(w http.ResponseWriter, _ *http.Request) {
	infos := []SnapshotInfo{}
	if s.cfg.Snapshots != nil {
		infos = s.cfg.Snapshots()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(infos)
}

func (s *Server) handleFleet(w http.ResponseWriter, _ *http.Request) {
	infos := []FleetNodeInfo{}
	if s.cfg.Fleet != nil {
		infos = s.cfg.Fleet()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(infos)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.Health != nil {
		if err := s.cfg.Health(); err != nil {
			http.Error(w, "unhealthy: "+err.Error(), http.StatusServiceUnavailable)
			return
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

package obs

import (
	"context"
	"encoding/hex"
	"net/http"
	"sync/atomic"
	"time"
)

// Cross-process propagation: spans carry wire identity (a 16-byte trace id
// shared by every span of a distributed trace, an 8-byte per-span id), which
// travels between processes as a W3C-traceparent-style header:
//
//	traceparent: 00-<32 hex trace-id>-<16 hex parent-span-id>-01
//
// The coordinator Injects the header on outbound fleet RPCs; the worker
// Extracts it, starts a *linked* root span (same trace id, parent span id
// recorded) around its shard-cache lookup and kernel stages, and ships the
// completed subtree back piggybacked on the RPC response. The coordinator
// re-attaches it under the dispatching span, so /traces renders one tree per
// build spanning every process that touched it.
//
// Identity generation is deliberately not cryptographic: a process-local
// atomic counter run through a splitmix64 finalizer is collision-free within
// a process and seeded from the clock across processes — and costs no
// allocation, preserving the nil-tracer zero-alloc contract (ids are only
// generated on the non-nil path anyway).

// TraceID identifies a distributed trace (zero value = absent).
type TraceID [16]byte

// IsZero reports whether the id is unset.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String returns the 32-char lowercase hex form, or "" when unset.
func (t TraceID) String() string {
	if t.IsZero() {
		return ""
	}
	return hex.EncodeToString(t[:])
}

// SpanID identifies one span within a trace (zero value = absent).
type SpanID [8]byte

// IsZero reports whether the id is unset.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String returns the 16-char lowercase hex form, or "" when unset.
func (s SpanID) String() string {
	if s.IsZero() {
		return ""
	}
	return hex.EncodeToString(s[:])
}

// SpanContext is the wire identity of a span: enough for a remote process
// to start a linked span in the same trace.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
}

// Valid reports whether both ids are set.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// TraceparentHeader is the HTTP header carrying the span context.
const TraceparentHeader = "Traceparent"

// Traceparent renders the W3C-style header value
// ("00-<traceid>-<spanid>-01"), or "" for an invalid context.
func (sc SpanContext) Traceparent() string {
	if !sc.Valid() {
		return ""
	}
	var b [55]byte
	b[0], b[1], b[2] = '0', '0', '-'
	hex.Encode(b[3:35], sc.TraceID[:])
	b[35] = '-'
	hex.Encode(b[36:52], sc.SpanID[:])
	b[52], b[53], b[54] = '-', '0', '1'
	return string(b[:])
}

// ParseTraceparent parses a traceparent value. It accepts version 00 with
// any flags byte and reports ok=false for anything malformed or with
// all-zero ids (per the W3C spec those are invalid).
func ParseTraceparent(s string) (SpanContext, bool) {
	var sc SpanContext
	if len(s) != 55 || s[0] != '0' || s[1] != '0' || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return sc, false
	}
	if _, err := hex.Decode(sc.TraceID[:], []byte(s[3:35])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(s[36:52])); err != nil {
		return SpanContext{}, false
	}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

// Inject writes the context of the span carried by ctx into h. Without a
// span (tracing disabled) it is a no-op, so untraced RPCs stay header-free.
func Inject(ctx context.Context, h http.Header) {
	sp := SpanFromContext(ctx)
	if sp == nil {
		return
	}
	if tp := sp.SpanContext().Traceparent(); tp != "" {
		h.Set(TraceparentHeader, tp)
	}
}

// Extract reads a span context from h (ok=false when absent or malformed).
func Extract(h http.Header) (SpanContext, bool) {
	return ParseTraceparent(h.Get(TraceparentHeader))
}

type remoteCtxKey struct{}

// ContextWithRemote returns ctx carrying a remote parent span context —
// what a server handler stores after Extract so downstream code can start
// linked spans. An invalid context returns ctx unchanged.
func ContextWithRemote(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, remoteCtxKey{}, sc)
}

// RemoteFromContext returns the remote parent span context carried by ctx
// (zero value when absent).
func RemoteFromContext(ctx context.Context) SpanContext {
	if ctx == nil {
		return SpanContext{}
	}
	sc, _ := ctx.Value(remoteCtxKey{}).(SpanContext)
	return sc
}

// ParentFromContext resolves the span context a server-side span should link
// under: an in-process span in ctx wins (loopback transports share the
// context), else a remote context planted by Extract, else zero.
func ParentFromContext(ctx context.Context) SpanContext {
	if sp := SpanFromContext(ctx); sp != nil {
		return sp.SpanContext()
	}
	return RemoteFromContext(ctx)
}

// StartLinked begins a root span that continues a trace started elsewhere:
// the new span keeps the parent's trace id and records the parent span id,
// so when its completed subtree is shipped back and re-attached, the ids
// line up into one tree. An invalid parent degrades to StartRoot.
func (t *Tracer) StartLinked(name string, parent SpanContext) *Span {
	s := t.StartRoot(name)
	if s == nil {
		return nil
	}
	if parent.Valid() {
		s.traceID = parent.TraceID
		s.parentID = parent.SpanID
	}
	return s
}

// idCounter seeds span/trace id generation; the clock offset decorrelates
// processes, splitmix64 decorrelates successive values.
var idCounter atomic.Uint64

func init() { idCounter.Store(uint64(time.Now().UnixNano())) }

// idMix64 is the splitmix64 finalizer (same construction fleet.PairHash
// uses): every input bit flips ~half the output bits.
func idMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func newSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		v := idMix64(idCounter.Add(1))
		for i := 0; i < 8; i++ {
			id[i] = byte(v >> (56 - 8*i))
		}
	}
	return id
}

func newTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		hi := idMix64(idCounter.Add(1))
		lo := idMix64(idCounter.Add(1))
		for i := 0; i < 8; i++ {
			id[i] = byte(hi >> (56 - 8*i))
			id[8+i] = byte(lo >> (56 - 8*i))
		}
	}
	return id
}

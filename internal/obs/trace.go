// Package obs is the observability substrate of the serve tiers: a
// request-scoped span tracer, a bounded flight recorder that retains
// completed traces and exemplars, and a live admin/metrics HTTP endpoint.
//
// The paper characterizes its workloads offline — per-stage timing
// breakdowns and distributions via VTune/Nsight (Fig. 5/6, Table 6) — but a
// serving system needs the same attribution live: *which* request, *which*
// snapshot generation, *which* pipeline stage made the tail bad. A Tracer
// turns each build request or mapped read into a tree of timed spans
// (admission wait → batch assembly → snapshot acquire → kernel map →
// merge); the Recorder keeps the last N trace trees plus an always-kept
// exemplar set (slowest per endpoint, shed/error traces); the Server
// exposes /metrics, /traces, /snapshots and /healthz over stdlib net/http.
//
// A nil *Tracer — and the nil *Span everything it hands out — is valid
// everywhere and records nothing, matching perf's nil-Probe rule, so the
// hot paths pay only a nil check (and zero allocations) when tracing is
// disabled.
package obs

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pangenomicsbench/internal/perf"
)

// Attr is one span attribute.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// TracerConfig parameterizes a Tracer.
type TracerConfig struct {
	// Capacity bounds the flight recorder's ring of recent traces;
	// ≤0 uses 256.
	Capacity int
	// ErrorCapacity bounds the recorder's shed/error exemplar list;
	// ≤0 uses 32.
	ErrorCapacity int
	// SampleEvery keeps only 1-in-N successful traces in the recorder's
	// recent ring (failed/shed traces are always kept, and every trace still
	// challenges the slowest-per-name exemplars). ≤1 keeps all — the right
	// setting interactively; soak runs at thousands of queries/second set
	// this so the ring spans minutes instead of milliseconds.
	SampleEvery int
	// ExemplarMaxAge expires a slowest-per-name exemplar that has sat
	// unchallenged longer than this: the next trace of that name replaces it
	// even if faster. 0 retains exemplars forever.
	ExemplarMaxAge time.Duration
	// Metrics, when non-nil, receives one latency observation per completed
	// span under "span.<name>" — the bridge from traces to the aggregate
	// metric set the /metrics endpoint renders.
	Metrics *perf.Metrics
}

// Tracer creates root spans and delivers completed traces to its flight
// recorder. A nil Tracer is a no-op.
type Tracer struct {
	metrics *perf.Metrics
	rec     *Recorder
}

// NewTracer returns a tracer with an attached flight recorder.
func NewTracer(cfg TracerConfig) *Tracer {
	return &Tracer{metrics: cfg.Metrics, rec: newRecorder(cfg)}
}

// Recorder returns the tracer's flight recorder (nil for a nil tracer).
func (t *Tracer) Recorder() *Recorder {
	if t == nil {
		return nil
	}
	return t.rec
}

// StartRoot begins a new trace. The returned span must be End()ed exactly
// once; End delivers the completed tree to the flight recorder. A nil
// tracer returns a nil span, on which every method is a free no-op.
func (t *Tracer) StartRoot(name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{name: name, start: time.Now(), id: newSpanID(), traceID: newTraceID()}
	s.root = s
	s.tracer = t
	return s
}

// Span is one timed node of a trace tree. All methods are nil-receiver
// safe; a span must not be mutated after End.
type Span struct {
	tracer   *Tracer // set on the root only
	root     *Span
	name     string
	start    time.Time
	id       SpanID
	traceID  TraceID // set on the root only
	parentID SpanID  // set on a linked root only (remote parent)

	mu       sync.Mutex
	dur      time.Duration
	attrs    []Attr
	children []*Span
	remote   []SpanData
	errMsg   string
	shed     bool
	ended    bool
	probe    *perf.Probe
}

// Name returns the span's name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Child starts a child span (nil for a nil receiver).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{root: s.root, name: name, start: time.Now(), id: newSpanID()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Stage records an already-completed child span with explicit timing — the
// post-hoc form used when a stage's duration is known only after the fact
// (queue waits measured at dispatch, kernel StageTimes).
func (s *Span) Stage(name string, start time.Time, d time.Duration) {
	if s == nil {
		return
	}
	c := &Span{root: s.root, name: name, start: start, dur: d, ended: true, id: newSpanID()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	s.root.observe(name, d)
}

// Set attaches a string attribute.
func (s *Span) Set(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetInt attaches an integer attribute.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.Set(key, fmt.Sprintf("%d", v))
}

// Error marks the span failed. Error traces are retained by the flight
// recorder's exemplar set.
func (s *Span) Error(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.errMsg = err.Error()
	s.mu.Unlock()
}

// Shed marks the span's request load-shed (at admission or deadline), which
// also lands the trace in the recorder's exemplar set.
func (s *Span) Shed(reason string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.shed = true
	s.attrs = append(s.attrs, Attr{Key: "shed", Value: reason})
	s.mu.Unlock()
}

// AttachProbe associates a kernel perf.Probe with the span; its dynamic
// instruction counts are summarized into attributes at End.
func (s *Span) AttachProbe(p *perf.Probe) {
	if s == nil || p == nil {
		return
	}
	s.mu.Lock()
	s.probe = p
	s.mu.Unlock()
}

// End completes the span. Ending the root of a trace delivers the whole
// tree to the flight recorder; End is idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	if s.probe != nil {
		s.attrs = append(s.attrs,
			Attr{Key: "instructions", Value: fmt.Sprintf("%d", s.probe.Instructions())},
			Attr{Key: "loads", Value: fmt.Sprintf("%d", s.probe.Loads)},
			Attr{Key: "stores", Value: fmt.Sprintf("%d", s.probe.Stores)},
			Attr{Key: "mispredicts", Value: fmt.Sprintf("%d", s.probe.Mispredicts)},
		)
	}
	dur := s.dur
	s.mu.Unlock()
	s.root.observe(s.name, dur)
	if s == s.root && s.tracer != nil {
		s.tracer.rec.add(s.snapshot())
	}
}

// Duration returns the span's completed duration (0 before End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

// observe forwards one completed span duration to the tracer's metric set.
// Called on the root span (which carries the tracer pointer).
func (s *Span) observe(name string, d time.Duration) {
	if s == nil || s.tracer == nil {
		return
	}
	s.tracer.metrics.Observe("span."+name, d)
}

// SpanContext returns the span's wire identity (zero for nil — so disabled
// tracing injects no headers).
func (s *Span) SpanContext() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.root.traceID, SpanID: s.id}
}

// TraceID returns the id of the trace this span belongs to (zero for nil).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.root.traceID
}

// AttachRemote grafts a completed span subtree from another process under
// this span — the coordinator-side hook for worker trees piggybacked on RPC
// responses. The subtree is kept verbatim (it carries its own ids, stamped
// by the remote tracer); it renders after the span's local children.
func (s *Span) AttachRemote(d SpanData) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.remote = append(s.remote, d)
	s.mu.Unlock()
}

// Data returns the span's immutable snapshot. It is meant for a completed
// span (after End) — the form a worker ships back over the wire. A nil span
// returns the zero SpanData.
func (s *Span) Data() SpanData {
	if s == nil {
		return SpanData{}
	}
	return s.snapshot()
}

// snapshot converts the (completed) span tree to immutable SpanData.
func (s *Span) snapshot() SpanData {
	return s.snap(s.root.traceID, s.parentID)
}

func (s *Span) snap(trace TraceID, parent SpanID) SpanData {
	s.mu.Lock()
	d := SpanData{
		Name:     s.name,
		Start:    s.start,
		Duration: s.dur,
		TraceID:  trace.String(),
		SpanID:   s.id.String(),
		ParentID: parent.String(),
		Error:    s.errMsg,
		Shed:     s.shed,
	}
	if len(s.attrs) > 0 {
		d.Attrs = append([]Attr(nil), s.attrs...)
	}
	children := append([]*Span(nil), s.children...)
	remote := append([]SpanData(nil), s.remote...)
	s.mu.Unlock()
	for _, c := range children {
		d.Children = append(d.Children, c.snap(trace, s.id))
	}
	d.Children = append(d.Children, remote...)
	return d
}

// Context plumbing: spans ride the context the serve tiers already thread
// into the mapping kernels (pipeline.ContextTool.MapCtx), so kernels
// annotate whatever trace their caller is building without knowing about
// the serve tiers at all.

type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying sp. A nil span returns ctx unchanged
// (so disabled tracing never allocates a context).
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// StartSpan begins a child of the span carried by ctx and returns a context
// carrying the child. Without a span in ctx it returns (ctx, nil) — zero
// cost beyond the context lookup.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.Child(name)
	return context.WithValue(ctx, spanCtxKey{}, child), child
}

// AddStage records a completed stage on the span carried by ctx (no-op
// without one) — the hook the mapping kernels' stage timers call.
func AddStage(ctx context.Context, name string, start time.Time, d time.Duration) {
	if sp := SpanFromContext(ctx); sp != nil {
		sp.Stage(name, start, d)
	}
}

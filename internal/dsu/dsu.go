// Package dsu provides the disjoint-set union (union-find) structure and
// the atomic bitvector (the paper's [51]) that seqwish's transclosure kernel
// relies on.
package dsu

import "sync/atomic"

// DSU is a union-find structure with path compression and union by rank.
type DSU struct {
	parent []int32
	rank   []int8
	sets   int
}

// New returns a DSU over n singleton elements.
func New(n int) *DSU {
	d := &DSU{parent: make([]int32, n), rank: make([]int8, n), sets: n}
	for i := range d.parent {
		d.parent[i] = int32(i)
	}
	return d
}

// Find returns the representative of x's set.
func (d *DSU) Find(x int) int {
	root := x
	for int(d.parent[root]) != root {
		root = int(d.parent[root])
	}
	// Path compression.
	for int(d.parent[x]) != root {
		d.parent[x], x = int32(root), int(d.parent[x])
	}
	return root
}

// Union merges the sets of a and b; it returns true if they were distinct.
func (d *DSU) Union(a, b int) bool {
	ra, rb := d.Find(a), d.Find(b)
	if ra == rb {
		return false
	}
	if d.rank[ra] < d.rank[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = int32(ra)
	if d.rank[ra] == d.rank[rb] {
		d.rank[ra]++
	}
	d.sets--
	return true
}

// Same reports whether a and b are in the same set.
func (d *DSU) Same(a, b int) bool { return d.Find(a) == d.Find(b) }

// Sets returns the number of disjoint sets.
func (d *DSU) Sets() int { return d.sets }

// Len returns the number of elements.
func (d *DSU) Len() int { return len(d.parent) }

// AtomicBitvector is a lock-free concurrent bitset. Seqwish uses one to mark
// characters already swept into a transitive closure so parallel workers
// never process a character twice.
type AtomicBitvector struct {
	words []uint64
	n     int
}

// NewAtomicBitvector returns an all-zero bitvector of n bits.
func NewAtomicBitvector(n int) *AtomicBitvector {
	return &AtomicBitvector{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of bits.
func (b *AtomicBitvector) Len() int { return b.n }

// Get returns bit i.
func (b *AtomicBitvector) Get(i int) bool {
	return atomic.LoadUint64(&b.words[i>>6])&(1<<uint(i&63)) != 0
}

// Set sets bit i and reports whether it was previously clear (i.e. whether
// this call won the race to set it).
func (b *AtomicBitvector) Set(i int) bool {
	mask := uint64(1) << uint(i&63)
	for {
		old := atomic.LoadUint64(&b.words[i>>6])
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(&b.words[i>>6], old, old|mask) {
			return true
		}
	}
}

// Count returns the number of set bits.
func (b *AtomicBitvector) Count() int {
	n := 0
	for i := range b.words {
		n += popcount(atomic.LoadUint64(&b.words[i]))
	}
	return n
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

package dsu

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestDSUBasic(t *testing.T) {
	d := New(5)
	if d.Sets() != 5 || d.Len() != 5 {
		t.Fatal("initial state wrong")
	}
	if !d.Union(0, 1) {
		t.Fatal("first union must merge")
	}
	if d.Union(1, 0) {
		t.Fatal("repeat union must not merge")
	}
	d.Union(2, 3)
	if d.Sets() != 3 {
		t.Fatalf("Sets = %d, want 3", d.Sets())
	}
	if !d.Same(0, 1) || d.Same(0, 2) {
		t.Fatal("Same wrong")
	}
	d.Union(1, 3)
	if !d.Same(0, 2) {
		t.Fatal("transitive union failed")
	}
}

// TestDSUMatchesNaive compares against a naive equivalence map.
func TestDSUMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		d := New(n)
		label := make([]int, n)
		for i := range label {
			label[i] = i
		}
		relabel := func(from, to int) {
			for i := range label {
				if label[i] == from {
					label[i] = to
				}
			}
		}
		for op := 0; op < 80; op++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if rng.Intn(2) == 0 {
				d.Union(a, b)
				relabel(label[a], label[b])
			} else if d.Same(a, b) != (label[a] == label[b]) {
				return false
			}
		}
		// Set counts must agree.
		uniq := map[int]bool{}
		for _, l := range label {
			uniq[l] = true
		}
		return d.Sets() == len(uniq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAtomicBitvector(t *testing.T) {
	b := NewAtomicBitvector(200)
	if b.Len() != 200 || b.Count() != 0 {
		t.Fatal("initial state wrong")
	}
	if !b.Set(63) || !b.Set(64) || !b.Set(199) {
		t.Fatal("fresh Set must return true")
	}
	if b.Set(64) {
		t.Fatal("repeat Set must return false")
	}
	if !b.Get(63) || !b.Get(199) || b.Get(0) {
		t.Fatal("Get wrong")
	}
	if b.Count() != 3 {
		t.Fatalf("Count = %d, want 3", b.Count())
	}
}

func TestAtomicBitvectorConcurrent(t *testing.T) {
	const n = 10000
	b := NewAtomicBitvector(n)
	var wg sync.WaitGroup
	wins := make([]int, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if b.Set(i) {
					wins[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, c := range wins {
		total += c
	}
	if total != n {
		t.Fatalf("each bit must be won exactly once: %d wins for %d bits", total, n)
	}
	if b.Count() != n {
		t.Fatalf("Count = %d, want %d", b.Count(), n)
	}
}

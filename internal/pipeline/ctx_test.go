package pipeline

import (
	"context"
	"testing"

	"pangenomicsbench/internal/gensim"
)

// ctxTestTools builds all four context-aware tools over one small graph.
func ctxTestTools(t *testing.T) (*gensim.Population, []ContextTool) {
	t.Helper()
	cfg := gensim.DefaultConfig()
	cfg.RefLen = 20_000
	cfg.Haplotypes = 4
	pop, err := gensim.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	k, w := 15, 10
	giraffe, err := NewVgGiraffe(pop.Graph, k, w)
	if err != nil {
		t.Fatal(err)
	}
	vgmap, err := NewVgMap(pop.Graph, k, w)
	if err != nil {
		t.Fatal(err)
	}
	ga, err := NewGraphAligner(pop.Graph, k, w)
	if err != nil {
		t.Fatal(err)
	}
	mg, err := NewMinigraph(pop.Graph, k, w, false)
	if err != nil {
		t.Fatal(err)
	}
	return pop, []ContextTool{giraffe, vgmap, ga, mg}
}

// TestMapCtxCanceled verifies every tool returns ctx.Err and no mapping for
// a pre-canceled context, and that the cancellation does not wedge later
// uncancelled maps on the same tool.
func TestMapCtxCanceled(t *testing.T) {
	pop, tools := ctxTestTools(t)
	reads, err := pop.SimulateReads(gensim.ReadConfig{Count: 1, Length: 2000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	read := reads[0].Seq

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, tool := range tools {
		res, _, err := tool.MapCtx(ctx, read, nil)
		if err == nil {
			t.Errorf("%s: canceled MapCtx returned no error", tool.Name())
		}
		if res.Mapped {
			t.Errorf("%s: canceled MapCtx still mapped the read", tool.Name())
		}
		// The tool must still work with a live context afterwards.
		if _, _, err := tool.MapCtx(context.Background(), read, nil); err != nil {
			t.Errorf("%s: post-cancel map failed: %v", tool.Name(), err)
		}
	}
}

// TestMapMatchesMapCtx pins Map as the Background-context view of MapCtx.
func TestMapMatchesMapCtx(t *testing.T) {
	pop, tools := ctxTestTools(t)
	reads, err := pop.SimulateReads(gensim.ReadConfig{Count: 4, Length: 800, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, tool := range tools {
		for _, r := range reads {
			direct, _ := tool.Map(r.Seq, nil)
			viaCtx, _, err := tool.MapCtx(context.Background(), r.Seq, nil)
			if err != nil {
				t.Fatalf("%s: MapCtx: %v", tool.Name(), err)
			}
			if direct != viaCtx {
				t.Errorf("%s: Map %+v != MapCtx %+v", tool.Name(), direct, viaCtx)
			}
		}
	}
}

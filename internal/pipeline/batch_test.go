package pipeline

import (
	"context"
	"errors"
	"testing"
	"time"

	"pangenomicsbench/internal/gensim"
)

// batchTestReads simulates n reads of the given length from the shared test
// population.
func batchTestReads(t *testing.T, pop *gensim.Population, n, length int, seed int64) [][]byte {
	t.Helper()
	reads, err := pop.SimulateReads(gensim.ReadConfig{Count: n, Length: length, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]byte, n)
	for i, r := range reads {
		out[i] = r.Seq
	}
	return out
}

// TestMapBatchMatchesSerial is the batched-path differential: for every
// tool, MapBatch at batch sizes {1, 7, 8, 16, odd tail} must produce
// Results byte-identical to one MapCtx call per read. Run under -race in CI
// (the batch-race step) to also pin scratch sharing.
func TestMapBatchMatchesSerial(t *testing.T) {
	pop, tools := ctxTestTools(t)
	all := batchTestReads(t, pop, 23, 900, 11) // 23 = 16 + odd tail of 7
	for _, tool := range tools {
		want := make([]Result, len(all))
		for i, read := range all {
			r, _, err := tool.MapCtx(context.Background(), read, nil)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = r
		}
		for _, size := range []int{1, 7, 8, 16, len(all)} {
			for lo := 0; lo < len(all); lo += size {
				hi := lo + size
				if hi > len(all) {
					hi = len(all)
				}
				reads := all[lo:hi]
				results := make([]Result, len(reads))
				stages := make([]StageTimes, len(reads))
				n, err := tool.MapBatch(context.Background(), reads, results, stages, nil)
				if err != nil {
					t.Fatalf("%s size %d: %v", tool.Name(), size, err)
				}
				if n != len(reads) {
					t.Fatalf("%s size %d: completed %d of %d", tool.Name(), size, n, len(reads))
				}
				for i := range reads {
					if results[i] != want[lo+i] {
						t.Errorf("%s size %d read %d: batched %+v != serial %+v",
							tool.Name(), size, lo+i, results[i], want[lo+i])
					}
				}
			}
		}
	}
}

// TestMapBatchCanceled mirrors TestMapCtxCanceled for the batched path: a
// pre-canceled context yields a typed *BatchError wrapping context.Canceled
// with zero completed reads, a mid-batch cancellation leaves a valid
// completed prefix, and the tool keeps working afterwards.
func TestMapBatchCanceled(t *testing.T) {
	pop, tools := ctxTestTools(t)
	reads := batchTestReads(t, pop, 8, 900, 13)
	for _, tool := range tools {
		want := make([]Result, len(reads))
		for i, read := range reads {
			want[i], _ = tool.Map(read, nil)
		}
		results := make([]Result, len(reads))
		stages := make([]StageTimes, len(reads))

		// Pre-canceled: typed error, nothing completed.
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		n, err := tool.MapBatch(ctx, reads, results, stages, nil)
		if n != 0 {
			t.Errorf("%s: pre-canceled batch completed %d reads", tool.Name(), n)
		}
		var be *BatchError
		if !errors.As(err, &be) {
			t.Fatalf("%s: pre-canceled batch error %T (%v), want *BatchError", tool.Name(), err, err)
		}
		if be.Done != n || !errors.Is(err, context.Canceled) {
			t.Errorf("%s: BatchError{Done: %d} (n=%d), Is(Canceled)=%v", tool.Name(), be.Done, n, errors.Is(err, context.Canceled))
		}

		// Mid-batch: cancel while the batch runs; whatever prefix completed
		// must match the serial results.
		ctx, cancel = context.WithCancel(context.Background())
		go func() {
			time.Sleep(200 * time.Microsecond)
			cancel()
		}()
		n, err = tool.MapBatch(ctx, reads, results, stages, nil)
		if err != nil {
			if !errors.As(err, &be) {
				t.Fatalf("%s: mid-batch error %T (%v), want *BatchError", tool.Name(), err, err)
			}
			if be.Done != n {
				t.Errorf("%s: mid-batch BatchError.Done %d != returned %d", tool.Name(), be.Done, n)
			}
		} else if n != len(reads) {
			t.Errorf("%s: nil error but only %d/%d completed", tool.Name(), n, len(reads))
		}
		for i := 0; i < n; i++ {
			if results[i] != want[i] {
				t.Errorf("%s: completed prefix read %d: %+v != serial %+v", tool.Name(), i, results[i], want[i])
			}
		}
		cancel()

		// The tool must still work on the same scratch afterwards.
		n, err = tool.MapBatch(context.Background(), reads, results, stages, nil)
		if err != nil || n != len(reads) {
			t.Errorf("%s: post-cancel batch: n=%d err=%v", tool.Name(), n, err)
		}
		for i := range reads {
			if results[i] != want[i] {
				t.Errorf("%s: post-cancel read %d: %+v != serial %+v", tool.Name(), i, results[i], want[i])
			}
		}
	}
}

// TestMapBatchShortSlices pins the caller-contract error: output slices
// shorter than reads are rejected without mapping anything.
func TestMapBatchShortSlices(t *testing.T) {
	_, tools := ctxTestTools(t)
	reads := [][]byte{[]byte("ACGTACGTACGTACGTACGT")}
	for _, tool := range tools {
		if n, err := tool.MapBatch(context.Background(), reads, nil, nil, nil); err == nil || n != 0 {
			t.Errorf("%s: short slices accepted (n=%d err=%v)", tool.Name(), n, err)
		}
	}
}

// TestMapBatchStageAttribution extends the stage-sum bound to the batched
// path: when reads share lane-packed kernel calls, the apportioned per-read
// stage totals must sum to the batch's measured map wall time within the
// 10% attribution bound — shared kernel time is divided, never
// multiply-counted.
func TestMapBatchStageAttribution(t *testing.T) {
	pop, tools := ctxTestTools(t)
	reads := batchTestReads(t, pop, 16, 900, 17)
	results := make([]Result, len(reads))
	stages := make([]StageTimes, len(reads))
	for _, tool := range tools {
		// Warm once so steady-state timing is not dominated by first-call
		// growth, then measure.
		if _, err := tool.MapBatch(context.Background(), reads, results, stages, nil); err != nil {
			t.Fatal(err)
		}
		t0 := time.Now()
		if _, err := tool.MapBatch(context.Background(), reads, results, stages, nil); err != nil {
			t.Fatal(err)
		}
		wall := time.Since(t0)
		var sum time.Duration
		for i := range reads {
			sum += stages[i].Total()
		}
		if sum > wall {
			overshoot := float64(sum-wall) / float64(wall)
			if overshoot > 0.10 {
				t.Errorf("%s: batched stage totals %v exceed batch wall %v by %.0f%% (multiply-counted kernel time?)",
					tool.Name(), sum, wall, overshoot*100)
			}
		}
	}
}

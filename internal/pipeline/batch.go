package pipeline

import (
	"errors"
	"fmt"

	"pangenomicsbench/internal/chain"
	"pangenomicsbench/internal/minimizer"
	"pangenomicsbench/internal/perf"
)

// BatchError is the typed error of a MapBatch call that stopped before
// mapping every read (cancellation or deadline mid-batch). Done is the
// number of leading reads whose results and stage times are valid — the
// same count MapBatch returns — and Err is the cause (ctx.Err()), reachable
// through errors.Is/As via Unwrap.
type BatchError struct {
	Done int
	Err  error
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("pipeline: batch stopped after %d reads: %v", e.Done, e.Err)
}

// Unwrap exposes the cause, so errors.Is(err, context.Canceled) works.
func (e *BatchError) Unwrap() error { return e.Err }

var errBatchSlices = errors.New("pipeline: MapBatch results/stages shorter than reads")

// checkBatchArgs validates the caller-owned output slices of MapBatch.
func checkBatchArgs(reads [][]byte, results []Result, stages []StageTimes) error {
	if len(results) < len(reads) || len(stages) < len(reads) {
		return errBatchSlices
	}
	return nil
}

// seedScratch holds the reusable buffers of the shared seeding stage: the
// minimizer rolling state and the minimizer output slice. It removes the
// two-slices-plus-output allocation every seedGraph call used to pay per
// read (the hot-path allocation bug of the batched mapping sweep).
type seedScratch struct {
	msc minimizer.Scratch
	ms  []minimizer.Minimizer
}

// seedInto is the allocation-free seeding stage: minimizers of the read
// looked up in the graph index, anchors appended to dst. Output content and
// order are identical to the historical seedGraph.
func (s *seedScratch) seedInto(dst []chain.Anchor, idx *minimizer.GraphIndex, read []byte, k int, probe *perf.Probe) []chain.Anchor {
	ms, err := s.msc.ComputeInto(s.ms[:0], read, k, 10, probe)
	s.ms = ms
	if err != nil {
		return dst
	}
	for _, m := range ms {
		for _, loc := range idx.Lookup(m.Hash) {
			dst = append(dst, chain.Anchor{
				QPos: m.Pos, Node: loc.Node, Offset: loc.Offset, Len: k,
			})
		}
	}
	return dst
}

package pipeline

import (
	"fmt"

	"pangenomicsbench/internal/bio"
	"pangenomicsbench/internal/gbwt"
	"pangenomicsbench/internal/graph"
	"pangenomicsbench/internal/minimizer"
)

// Index accessors and from-index constructors: the persistence layer
// (internal/store via internal/mapserve) saves a tool's precomputed indexes
// and rehydrates the tool on warm restart without re-running index
// construction. Every FromIndex constructor produces a tool field-identical
// to its index-building sibling, so a loaded snapshot maps byte-identically
// to the one that was saved.

// Indexed is a mapping tool that exposes its minimizer graph index. All
// four tools implement it.
type Indexed interface {
	GraphIndex() *minimizer.GraphIndex
}

// HaplotypeIndexed is a mapping tool that also carries a GBWT haplotype
// index (Giraffe).
type HaplotypeIndexed interface {
	Haplotypes() *gbwt.Index
}

// GraphIndex returns the tool's minimizer index.
func (t *VgGiraffe) GraphIndex() *minimizer.GraphIndex { return t.idx }

// Haplotypes returns the tool's GBWT haplotype index.
func (t *VgGiraffe) Haplotypes() *gbwt.Index { return t.hap }

// GraphIndex returns the tool's minimizer index.
func (t *VgMap) GraphIndex() *minimizer.GraphIndex { return t.idx }

// GraphIndex returns the tool's minimizer index.
func (t *GraphAligner) GraphIndex() *minimizer.GraphIndex { return t.idx }

// GraphIndex returns the tool's minimizer index.
func (t *Minigraph) GraphIndex() *minimizer.GraphIndex { return t.idx }

// checkIndexed validates a prebuilt index against its graph.
func checkIndexed(who string, g *graph.Graph, idx *minimizer.GraphIndex) error {
	if g == nil {
		return fmt.Errorf("pipeline: %s: nil graph", who)
	}
	if idx == nil {
		return fmt.Errorf("pipeline: %s: nil minimizer index", who)
	}
	return nil
}

// NewVgGiraffeFromIndexes builds Giraffe around a prebuilt minimizer index
// and GBWT (e.g. loaded from a snapshot store); only the cheap linear-scan
// distance index is derived here.
func NewVgGiraffeFromIndexes(g *graph.Graph, idx *minimizer.GraphIndex, hap *gbwt.Index) (*VgGiraffe, error) {
	if err := checkIndexed("giraffe", g, idx); err != nil {
		return nil, err
	}
	if hap == nil {
		return nil, fmt.Errorf("pipeline: giraffe: nil GBWT index")
	}
	nodePos := make(map[graph.NodeID]int, g.NumNodes())
	for _, p := range g.Paths() {
		off := 0
		for _, id := range p.Nodes {
			if _, seen := nodePos[id]; !seen {
				nodePos[id] = off
			}
			off += len(g.Seq(id))
		}
	}
	return &VgGiraffe{g: g, idx: idx, hap: hap, nodePos: nodePos}, nil
}

// NewVgMapFromIndex builds Vg Map around a prebuilt minimizer index.
func NewVgMapFromIndex(g *graph.Graph, idx *minimizer.GraphIndex) (*VgMap, error) {
	if err := checkIndexed("vg map", g, idx); err != nil {
		return nil, err
	}
	return &VgMap{g: g, idx: idx, sc: bio.DefaultScoring, Radius: 0}, nil
}

// NewGraphAlignerFromIndex builds GraphAligner around a prebuilt minimizer
// index.
func NewGraphAlignerFromIndex(g *graph.Graph, idx *minimizer.GraphIndex) (*GraphAligner, error) {
	if err := checkIndexed("graphaligner", g, idx); err != nil {
		return nil, err
	}
	return &GraphAligner{g: g, idx: idx, Radius: 192}, nil
}

// NewMinigraphFromIndex builds Minigraph around a prebuilt minimizer index.
func NewMinigraphFromIndex(g *graph.Graph, idx *minimizer.GraphIndex, chromosomeMode bool) (*Minigraph, error) {
	if err := checkIndexed("minigraph", g, idx); err != nil {
		return nil, err
	}
	return &Minigraph{g: g, idx: idx, ChromosomeMode: chromosomeMode}, nil
}

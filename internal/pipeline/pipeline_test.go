package pipeline

import (
	"testing"

	"pangenomicsbench/internal/gensim"
	"pangenomicsbench/internal/seqmap"
)

// testPop builds a small population shared by the tool tests.
func testPop(t testing.TB) *gensim.Population {
	t.Helper()
	cfg := gensim.DefaultConfig()
	cfg.RefLen = 30_000
	cfg.Haplotypes = 4
	p, err := gensim.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func shortReads(t testing.TB, p *gensim.Population, n int) []gensim.Read {
	t.Helper()
	reads, err := p.SimulateReads(gensim.ShortReadConfig(n))
	if err != nil {
		t.Fatal(err)
	}
	return reads
}

func TestVgMapMapsShortReads(t *testing.T) {
	p := testPop(t)
	tool, err := NewVgMap(p.Graph, 15, 10)
	if err != nil {
		t.Fatal(err)
	}
	reads := shortReads(t, p, 30)
	mapped := 0
	for _, r := range reads {
		res, st := tool.Map(r.Seq, nil)
		if res.Mapped {
			mapped++
			// A 150 bp read with ~0.2% errors should align nearly fully:
			// score ≥ matches - penalties ⇒ well above half the length.
			if res.Score < len(r.Seq)/2 {
				t.Fatalf("read %s score %d too low", r.Name, res.Score)
			}
		}
		if st.Total() <= 0 {
			t.Fatal("stage times not recorded")
		}
	}
	if mapped < len(reads)*8/10 {
		t.Fatalf("VgMap mapped only %d/%d reads", mapped, len(reads))
	}
}

func TestVgMapCapturesGSSWInputs(t *testing.T) {
	p := testPop(t)
	tool, err := NewVgMap(p.Graph, 15, 10)
	if err != nil {
		t.Fatal(err)
	}
	var cap []GSSWInput
	tool.Capture = &cap
	reads := shortReads(t, p, 5)
	for _, r := range reads {
		tool.Map(r.Seq, nil)
	}
	if len(cap) == 0 {
		t.Fatal("no GSSW inputs captured")
	}
	for _, in := range cap {
		if !in.Sub.IsAcyclic() {
			t.Fatal("captured GSSW subgraph must be acyclic")
		}
		if in.Sub.NumNodes() == 0 || len(in.Query) == 0 {
			t.Fatal("degenerate capture")
		}
	}
}

func TestVgGiraffeFilterDominates(t *testing.T) {
	p := testPop(t)
	tool, err := NewVgGiraffe(p.Graph, 15, 10)
	if err != nil {
		t.Fatal(err)
	}
	var cap []GBWTInput
	tool.Capture = &cap
	reads := shortReads(t, p, 30)
	var total seqmap.StageTimes
	mapped := 0
	for _, r := range reads {
		res, st := tool.Map(r.Seq, nil)
		total.Add(st)
		if res.Mapped {
			mapped++
			if res.EditDistance > len(r.Seq)/3 {
				t.Fatalf("read %s edit distance %d too high", r.Name, res.EditDistance)
			}
		}
	}
	if mapped < len(reads)*7/10 {
		t.Fatalf("Giraffe mapped only %d/%d reads", mapped, len(reads))
	}
	if len(cap) == 0 {
		t.Fatal("no GBWT queries captured")
	}
}

func TestGraphAlignerAlignDominates(t *testing.T) {
	p := testPop(t)
	tool, err := NewGraphAligner(p.Graph, 15, 10)
	if err != nil {
		t.Fatal(err)
	}
	var cap []GBVInput
	tool.Capture = &cap
	// Long-ish reads (but short enough for a fast test).
	reads, err := p.SimulateReads(gensim.ReadConfig{Count: 8, Length: 1000, SubRate: 0.006, IndelRate: 0.004, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var total seqmap.StageTimes
	mapped := 0
	for _, r := range reads {
		res, st := tool.Map(r.Seq, nil)
		total.Add(st)
		if res.Mapped {
			mapped++
		}
	}
	if mapped < len(reads)/2 {
		t.Fatalf("GraphAligner mapped only %d/%d reads", mapped, len(reads))
	}
	// The tool's signature: alignment takes the bulk of the time (paper:
	// ~90%).
	if total.Align < total.Seed+total.Chain+total.Filter {
		t.Fatalf("alignment should dominate: %+v", total)
	}
	if len(cap) == 0 {
		t.Fatal("no GBV inputs captured")
	}
	for _, in := range cap {
		if len(in.Query) > 64 {
			t.Fatal("GBV chunks must be ≤ 64 bp")
		}
	}
}

func TestMinigraphBridgesWithGWFA(t *testing.T) {
	p := testPop(t)
	tool, err := NewMinigraph(p.Graph, 15, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	var cap []GWFAInput
	var gwfaTime seqmap.StageTimes
	tool.Capture = &cap
	tool.GWFATime = &gwfaTime
	reads, err := p.SimulateReads(gensim.ReadConfig{Count: 6, Length: 2000, SubRate: 0.006, IndelRate: 0.004, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	mapped := 0
	var total seqmap.StageTimes
	for _, r := range reads {
		res, st := tool.Map(r.Seq, nil)
		total.Add(st)
		if res.Mapped {
			mapped++
		}
	}
	if mapped < len(reads)/2 {
		t.Fatalf("Minigraph mapped only %d/%d reads", mapped, len(reads))
	}
	if len(cap) == 0 {
		t.Fatal("no GWFA bridge inputs captured")
	}
	if gwfaTime.Chain <= 0 {
		t.Fatal("GWFA kernel time not recorded")
	}
	if gwfaTime.Chain > total.Chain {
		t.Fatal("kernel time cannot exceed its stage")
	}
	if tool.Name() != "Minigraph-lr" {
		t.Fatal("name wrong")
	}
	crTool, _ := NewMinigraph(p.Graph, 15, 10, true)
	if crTool.Name() != "Minigraph-cr" {
		t.Fatal("cr name wrong")
	}
}

func TestToolsOnUnmappableRead(t *testing.T) {
	p := testPop(t)
	junk := make([]byte, 150)
	for i := range junk {
		junk[i] = "AC"[i%2] // dinucleotide repeat unlikely to seed uniquely
	}
	tools := []Tool{}
	if tl, err := NewVgMap(p.Graph, 15, 10); err == nil {
		tools = append(tools, tl)
	}
	if tl, err := NewVgGiraffe(p.Graph, 15, 10); err == nil {
		tools = append(tools, tl)
	}
	for _, tool := range tools {
		res, _ := tool.Map(junk, nil)
		_ = res // must simply not crash; mapping may or may not succeed
	}
}

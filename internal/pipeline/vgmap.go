package pipeline

import (
	"context"
	"fmt"
	"sync"

	"pangenomicsbench/internal/align"
	"pangenomicsbench/internal/bio"
	"pangenomicsbench/internal/chain"
	"pangenomicsbench/internal/graph"
	"pangenomicsbench/internal/minimizer"
	"pangenomicsbench/internal/perf"
)

// VgMap models vg map: minimizer seeding, graph-distance clustering, light
// filtering, and GSSW alignment of read fragments to acyclic subgraphs
// extracted around seed hits (§3, GSSW). Time is spread across all stages
// (Fig. 2) and the tool is the slowest of the four (Table 1) because GSSW
// computes full DP matrices.
type VgMap struct {
	g   *graph.Graph
	idx *minimizer.GraphIndex
	sc  bio.Scoring
	// Capture, when non-nil, records GSSW kernel inputs.
	Capture *[]GSSWInput
	// Radius is the subgraph extraction radius in bp around a seed hit.
	Radius int

	pool sync.Pool // *vgmapScratch
}

// vgmapScratch is the per-goroutine working state: seeding and chaining
// scratch plus the arena-backed GSSW workspace, so the striped DP matrices
// — the tool's dominant footprint — are reused across reads instead of
// reallocated per chain.
type vgmapScratch struct {
	seed    seedScratch
	anchors []chain.Anchor
	cs      chain.Scratch
	gssw    align.GSSWWorkspace
}

func (t *VgMap) getScratch() *vgmapScratch {
	s, _ := t.pool.Get().(*vgmapScratch)
	if s == nil {
		s = &vgmapScratch{}
	}
	return s
}

// NewVgMap builds the tool over a pangenome graph.
func NewVgMap(g *graph.Graph, k, w int) (*VgMap, error) {
	idx, err := minimizer.NewGraphIndex(g, k, w)
	if err != nil {
		return nil, fmt.Errorf("pipeline: vg map: %w", err)
	}
	return &VgMap{g: g, idx: idx, sc: bio.DefaultScoring, Radius: 0}, nil
}

// Name implements Tool.
func (t *VgMap) Name() string { return "VgMap" }

// seedGraph is the shared seeding stage: minimizers of the read looked up
// in the graph index.
func seedGraph(idx *minimizer.GraphIndex, read []byte, k int, probe *perf.Probe) []chain.Anchor {
	var s seedScratch
	return s.seedInto(nil, idx, read, k, probe)
}

// Map implements Tool.
func (t *VgMap) Map(read []byte, probe *perf.Probe) (Result, StageTimes) {
	r, st, _ := t.MapCtx(context.Background(), read, probe)
	return r, st
}

// MapCtx implements ContextTool: cancellation is observed between stages and
// before every per-chain GSSW alignment, the tool's dominant cost.
func (t *VgMap) MapCtx(ctx context.Context, read []byte, probe *perf.Probe) (Result, StageTimes, error) {
	s := t.getScratch()
	defer t.pool.Put(s)
	var st StageTimes
	r, err := t.mapOne(ctx, s, read, probe, &st)
	return r, st, err
}

// MapBatch implements ContextTool: reads run serially over one shared
// scratch — the GSSW kernel is a whole-graph striped DP, so the batch win
// is the reused workspace (zero per-read kernel matrix allocations), not
// lane packing. Results are byte-identical to per-read MapCtx.
func (t *VgMap) MapBatch(ctx context.Context, reads [][]byte, results []Result, stages []StageTimes, probe *perf.Probe) (int, error) {
	if err := checkBatchArgs(reads, results, stages); err != nil {
		return 0, err
	}
	s := t.getScratch()
	defer t.pool.Put(s)
	done := ctx.Done()
	for i, read := range reads {
		results[i], stages[i] = Result{}, StageTimes{}
		if stopped(done) {
			return i, &BatchError{Done: i, Err: ctx.Err()}
		}
		r, err := t.mapOne(ctx, s, read, probe, &stages[i])
		if err != nil {
			return i, &BatchError{Done: i, Err: err}
		}
		results[i] = r
	}
	return len(reads), nil
}

func (t *VgMap) mapOne(ctx context.Context, s *vgmapScratch, read []byte, probe *perf.Probe, st *StageTimes) (Result, error) {
	done := ctx.Done()
	var anchors []chain.Anchor
	timeStageCtx(ctx, "seed", &st.Seed, func() {
		s.anchors = s.seed.seedInto(s.anchors[:0], t.idx, read, t.idx.K(), probe)
		anchors = s.anchors
	})
	if len(anchors) == 0 {
		return Result{}, nil
	}

	var chains []chain.Chain
	timeStageCtx(ctx, "chain", &st.Chain, func() { chains = s.cs.GraphChains(t.g, anchors, 2*len(read), probe) })
	if len(chains) == 0 {
		return Result{}, nil
	}
	if stopped(done) {
		return Result{}, ctx.Err()
	}
	timeStageCtx(ctx, "filter", &st.Filter, func() { chains = chain.Filter(chains, 0.6, 3) })

	best := Result{}
	canceled := false
	timeStageCtx(ctx, "align", &st.Align, func() {
		radius := t.Radius
		if radius <= 0 {
			radius = len(read) + len(read)/2
		}
		for _, ch := range chains {
			if stopped(done) {
				canceled = true
				return
			}
			mid := ch.Anchors[len(ch.Anchors)/2]
			sub := graph.Extract(t.g, mid.Node, radius)
			dag := sub.Acyclify()
			if t.Capture != nil {
				*t.Capture = append(*t.Capture, GSSWInput{Sub: dag.Graph, Query: read})
			}
			r, err := s.gssw.Align(dag.Graph, read, t.sc, probe)
			if err != nil {
				continue
			}
			if r.Score > best.Score {
				node := graph.NodeID(0)
				if r.EndNode != 0 {
					node = dag.Orig[r.EndNode-1]
				}
				best = Result{Mapped: true, Node: node, Score: r.Score}
			}
		}
	})
	if canceled {
		return Result{}, ctx.Err()
	}
	return best, nil
}

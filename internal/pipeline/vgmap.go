package pipeline

import (
	"context"
	"fmt"

	"pangenomicsbench/internal/align"
	"pangenomicsbench/internal/bio"
	"pangenomicsbench/internal/chain"
	"pangenomicsbench/internal/graph"
	"pangenomicsbench/internal/minimizer"
	"pangenomicsbench/internal/perf"
)

// VgMap models vg map: minimizer seeding, graph-distance clustering, light
// filtering, and GSSW alignment of read fragments to acyclic subgraphs
// extracted around seed hits (§3, GSSW). Time is spread across all stages
// (Fig. 2) and the tool is the slowest of the four (Table 1) because GSSW
// computes full DP matrices.
type VgMap struct {
	g   *graph.Graph
	idx *minimizer.GraphIndex
	sc  bio.Scoring
	// Capture, when non-nil, records GSSW kernel inputs.
	Capture *[]GSSWInput
	// Radius is the subgraph extraction radius in bp around a seed hit.
	Radius int
}

// NewVgMap builds the tool over a pangenome graph.
func NewVgMap(g *graph.Graph, k, w int) (*VgMap, error) {
	idx, err := minimizer.NewGraphIndex(g, k, w)
	if err != nil {
		return nil, fmt.Errorf("pipeline: vg map: %w", err)
	}
	return &VgMap{g: g, idx: idx, sc: bio.DefaultScoring, Radius: 0}, nil
}

// Name implements Tool.
func (t *VgMap) Name() string { return "VgMap" }

// seedGraph is the shared seeding stage: minimizers of the read looked up
// in the graph index.
func seedGraph(idx *minimizer.GraphIndex, read []byte, k int, probe *perf.Probe) []chain.Anchor {
	ms, err := minimizer.Compute(read, k, 10, probe)
	if err != nil {
		return nil
	}
	var anchors []chain.Anchor
	for _, m := range ms {
		for _, loc := range idx.Lookup(m.Hash) {
			anchors = append(anchors, chain.Anchor{
				QPos: m.Pos, Node: loc.Node, Offset: loc.Offset, Len: k,
			})
		}
	}
	return anchors
}

// Map implements Tool.
func (t *VgMap) Map(read []byte, probe *perf.Probe) (Result, StageTimes) {
	r, st, _ := t.MapCtx(context.Background(), read, probe)
	return r, st
}

// MapCtx implements ContextTool: cancellation is observed between stages and
// before every per-chain GSSW alignment, the tool's dominant cost.
func (t *VgMap) MapCtx(ctx context.Context, read []byte, probe *perf.Probe) (Result, StageTimes, error) {
	done := ctx.Done()
	var st StageTimes
	var anchors []chain.Anchor
	timeStageCtx(ctx, "seed", &st.Seed, func() { anchors = seedGraph(t.idx, read, t.idx.K(), probe) })
	if len(anchors) == 0 {
		return Result{}, st, nil
	}

	var chains []chain.Chain
	timeStageCtx(ctx, "chain", &st.Chain, func() { chains = chain.GraphChains(t.g, anchors, 2*len(read), probe) })
	if len(chains) == 0 {
		return Result{}, st, nil
	}
	if stopped(done) {
		return Result{}, st, ctx.Err()
	}
	timeStageCtx(ctx, "filter", &st.Filter, func() { chains = chain.Filter(chains, 0.6, 3) })

	best := Result{}
	canceled := false
	timeStageCtx(ctx, "align", &st.Align, func() {
		radius := t.Radius
		if radius <= 0 {
			radius = len(read) + len(read)/2
		}
		for _, ch := range chains {
			if stopped(done) {
				canceled = true
				return
			}
			mid := ch.Anchors[len(ch.Anchors)/2]
			sub := graph.Extract(t.g, mid.Node, radius)
			dag := sub.Acyclify()
			if t.Capture != nil {
				*t.Capture = append(*t.Capture, GSSWInput{Sub: dag.Graph, Query: read})
			}
			r, err := align.GSSW(dag.Graph, read, t.sc, probe)
			if err != nil {
				continue
			}
			if r.Score > best.Score {
				node := graph.NodeID(0)
				if r.EndNode != 0 {
					node = dag.Orig[r.EndNode-1]
				}
				best = Result{Mapped: true, Node: node, Score: r.Score}
			}
		}
	})
	if canceled {
		return Result{}, st, ctx.Err()
	}
	return best, st, nil
}

package pipeline

import (
	"testing"
)

func TestMapAllMatchesSerial(t *testing.T) {
	p := testPop(t)
	tool, err := NewVgGiraffe(p.Graph, 15, 10)
	if err != nil {
		t.Fatal(err)
	}
	reads := shortReads(t, p, 40)
	serial := MapAll(tool, reads, 1)
	parallel := MapAll(tool, reads, 8)
	if len(serial) != len(parallel) {
		t.Fatal("length mismatch")
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("read %d: serial %+v != parallel %+v", i, serial[i], parallel[i])
		}
	}
	mapped := 0
	for _, r := range parallel {
		if r.Mapped {
			mapped++
		}
	}
	if mapped < len(reads)*7/10 {
		t.Fatalf("parallel run mapped only %d/%d", mapped, len(reads))
	}
}

func TestMapAllDefaultsAndSmallInputs(t *testing.T) {
	p := testPop(t)
	tool, err := NewVgMap(p.Graph, 15, 10)
	if err != nil {
		t.Fatal(err)
	}
	reads := shortReads(t, p, 3)
	// threads > reads and threads <= 0 must both work.
	if got := MapAll(tool, reads, 100); len(got) != 3 {
		t.Fatal("oversubscribed pool failed")
	}
	if got := MapAll(tool, reads, -1); len(got) != 3 {
		t.Fatal("default pool failed")
	}
	if got := MapAll(tool, nil, 4); len(got) != 0 {
		t.Fatal("empty read set failed")
	}
}

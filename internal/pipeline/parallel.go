package pipeline

import (
	"runtime"
	"sync"

	"pangenomicsbench/internal/gensim"
)

// MapAll maps a read set with a worker pool, the way the real tools
// parallelize (§5.1: "Seq2Graph mapping tools process reads independently
// on different threads"). Results are returned in read order. threads ≤ 0
// uses GOMAXPROCS. The tool's indexes are only read, so concurrent Map
// calls are safe provided no capture or kernel-timing hook is attached
// (those accumulate unsynchronized).
func MapAll(tool Tool, reads []gensim.Read, threads int) []Result {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if threads > len(reads) {
		threads = len(reads)
	}
	results := make([]Result, len(reads))
	if threads <= 1 {
		for i, r := range reads {
			results[i], _ = tool.Map(r.Seq, nil)
		}
		return results
	}
	var next int64
	var mu sync.Mutex
	take := func() int {
		mu.Lock()
		defer mu.Unlock()
		if int(next) >= len(reads) {
			return -1
		}
		i := int(next)
		next++
		return i
	}
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := take()
				if i < 0 {
					return
				}
				results[i], _ = tool.Map(reads[i].Seq, nil)
			}
		}()
	}
	wg.Wait()
	return results
}

package pipeline

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"pangenomicsbench/internal/align"
	"pangenomicsbench/internal/chain"
	"pangenomicsbench/internal/graph"
	"pangenomicsbench/internal/minimizer"
	"pangenomicsbench/internal/perf"
)

// GraphAligner models GraphAligner: minimizer seeding, lightweight
// clustering (~5% of runtime), no real filtering, and ~90% of time in GBV
// bitvector alignment (§2.1). Long reads are aligned in 64 bp chunks, each
// against a small subgraph extracted around the chunk's nearest seed —
// trading alignment quality for speed as the real tool does.
type GraphAligner struct {
	g   *graph.Graph
	idx *minimizer.GraphIndex
	// Capture records GBV kernel inputs.
	Capture *[]GBVInput
	// Radius is the per-chunk subgraph extraction radius.
	Radius int

	pool sync.Pool // *gaScratch
}

// subKey identifies one cached subgraph extraction.
type subKey struct {
	node   graph.NodeID
	radius int
}

// gaPend is one batch member whose chunks are in flight.
type gaPend struct {
	idx       int // index into the batch's reads
	readLen   int
	firstNode graph.NodeID
	chunks    int
	total     int
	endNode   graph.NodeID
}

// gaChunk is one 64 bp chunk of one pending read, with its nearest-anchor
// subgraph resolved at work-list build time (the cursor advance is a pure
// function of the chunk offset, so precomputing it keeps chunk application
// order-independent within a read).
type gaChunk struct {
	pi       int
	off, end int
	sub      *graph.Subgraph
}

// gaScratch is the per-goroutine working state: seeding scratch, the
// serial-path GBV workspace, the batched GBV lane group, and a bounded
// cache of subgraph extractions (chunks of nearby offsets repeatedly
// extract around the same anchor node; Extract is deterministic, so cache
// hits change nothing but the allocation count).
type gaScratch struct {
	seed    seedScratch
	anchors []chain.Anchor
	gbv     align.GBVWorkspace
	lanes   align.GBVLaneGroup
	subs    map[subKey]*graph.Subgraph
	pends   []gaPend
	work    []gaChunk
}

func (t *GraphAligner) getScratch() *gaScratch {
	s, _ := t.pool.Get().(*gaScratch)
	if s == nil {
		s = &gaScratch{subs: make(map[subKey]*graph.Subgraph)}
	}
	return s
}

// subgraph returns the (deterministic) extraction around node, cached.
func (s *gaScratch) subgraph(g *graph.Graph, node graph.NodeID, radius int) *graph.Subgraph {
	k := subKey{node, radius}
	if sub, ok := s.subs[k]; ok {
		return sub
	}
	if len(s.subs) >= 256 {
		clear(s.subs)
	}
	sub := graph.Extract(g, node, radius)
	s.subs[k] = sub
	return sub
}

// NewGraphAligner builds the tool.
func NewGraphAligner(g *graph.Graph, k, w int) (*GraphAligner, error) {
	idx, err := minimizer.NewGraphIndex(g, k, w)
	if err != nil {
		return nil, fmt.Errorf("pipeline: graphaligner: %w", err)
	}
	return &GraphAligner{g: g, idx: idx, Radius: 192}, nil
}

// Name implements Tool.
func (t *GraphAligner) Name() string { return "GraphAligner" }

// Map implements Tool.
func (t *GraphAligner) Map(read []byte, probe *perf.Probe) (Result, StageTimes) {
	r, st, _ := t.MapCtx(context.Background(), read, probe)
	return r, st
}

// MapCtx implements ContextTool: long reads align in 64 bp chunks, and
// cancellation is observed before every chunk — the finest-grained stop point
// of the four tools, matching GBV's ~90% share of GraphAligner's runtime.
func (t *GraphAligner) MapCtx(ctx context.Context, read []byte, probe *perf.Probe) (Result, StageTimes, error) {
	s := t.getScratch()
	defer t.pool.Put(s)
	done := ctx.Done()
	var st StageTimes
	anchors, early := t.seedAndSort(ctx, s, read, probe, &st)
	if early {
		return Result{}, st, nil
	}

	best := Result{EditDistance: 1 << 30}
	canceled := false
	timeStageCtx(ctx, "align", &st.Align, func() {
		total := 0
		var endNode graph.NodeID
		ai := 0
		for off := 0; off < len(read); off += align.MaxMyersQuery {
			if stopped(done) {
				canceled = true
				return
			}
			end := off + align.MaxMyersQuery
			if end > len(read) {
				end = len(read)
			}
			chunk := read[off:end]
			// Nearest anchor to this chunk.
			for ai+1 < len(anchors) && anchors[ai+1].QPos <= off {
				ai++
			}
			sub := s.subgraph(t.g, anchors[ai].Node, t.Radius)
			if t.Capture != nil {
				*t.Capture = append(*t.Capture, GBVInput{Sub: sub.Graph, Query: chunk})
			}
			r, err := s.gbv.Align(sub.Graph, chunk, probe)
			if err != nil {
				total += len(chunk)
				continue
			}
			total += r.Distance
			if r.EndNode != 0 {
				endNode = sub.Orig[r.EndNode-1]
			}
		}
		if endNode != 0 || total < len(read)/2 {
			node := endNode
			if node == 0 {
				node = anchors[0].Node
			}
			best = Result{Mapped: true, Node: node, EditDistance: total}
		}
	})
	if canceled {
		return Result{}, st, ctx.Err()
	}
	return best, st, nil
}

// seedAndSort runs the seed and chain stages into the scratch anchor
// buffer, returning the read's sorted anchors and whether the read finished
// early (no seeds). The anchors are valid until the next call on the same
// scratch.
func (t *GraphAligner) seedAndSort(ctx context.Context, s *gaScratch, read []byte, probe *perf.Probe, st *StageTimes) ([]chain.Anchor, bool) {
	var anchors []chain.Anchor
	timeStageCtx(ctx, "seed", &st.Seed, func() {
		s.anchors = s.seed.seedInto(s.anchors[:0], t.idx, read, t.idx.K(), probe)
		anchors = s.anchors
	})
	if len(anchors) == 0 {
		return nil, true
	}
	// Lightweight clustering: just sort anchors by query position and keep
	// the densest run — no chaining DP, no graph-distance queries.
	timeStageCtx(ctx, "chain", &st.Chain, func() {
		sort.Slice(anchors, func(i, j int) bool { return anchors[i].QPos < anchors[j].QPos })
	})
	return anchors, false
}

// MapBatch implements ContextTool: the 64 bp chunks of every read in the
// batch are flattened into one work list and driven through the GBV kernel
// up to align.MaxLanes at a time — chunks from different reads advance in
// lockstep through one lane-group call, each against its own subgraph.
// Results are byte-identical to serial MapCtx (each lane's relaxation pops
// in serial order); each read's align time is its queue-pop-weighted share
// of the lane-group calls its chunks rode in.
func (t *GraphAligner) MapBatch(ctx context.Context, reads [][]byte, results []Result, stages []StageTimes, probe *perf.Probe) (int, error) {
	if err := checkBatchArgs(reads, results, stages); err != nil {
		return 0, err
	}
	s := t.getScratch()
	defer t.pool.Put(s)
	done := ctx.Done()
	s.pends = s.pends[:0]
	s.work = s.work[:0]
	for i, read := range reads {
		results[i], stages[i] = Result{}, StageTimes{}
		if stopped(done) {
			return i, &BatchError{Done: i, Err: ctx.Err()}
		}
		anchors, early := t.seedAndSort(ctx, s, read, probe, &stages[i])
		if early {
			continue
		}
		pi := len(s.pends)
		p := gaPend{idx: i, readLen: len(read), firstNode: anchors[0].Node}
		ai := 0
		for off := 0; off < len(read); off += align.MaxMyersQuery {
			end := off + align.MaxMyersQuery
			if end > len(read) {
				end = len(read)
			}
			for ai+1 < len(anchors) && anchors[ai+1].QPos <= off {
				ai++
			}
			// The chunk's subgraph is resolved here (cursor advance is a
			// pure function of the offset), so the per-read anchors need
			// not outlive phase A and chunks of different reads can
			// interleave freely in phase B.
			sub := s.subgraph(t.g, anchors[ai].Node, t.Radius)
			s.work = append(s.work, gaChunk{pi: pi, off: off, end: end, sub: sub})
			p.chunks++
		}
		if p.chunks == 0 { // unreachable: a seeded read is non-empty
			results[i] = Result{EditDistance: 1 << 30}
			continue
		}
		s.pends = append(s.pends, p)
	}

	finalized := 0
	finalize := func(p *gaPend) {
		res := Result{EditDistance: 1 << 30}
		if p.endNode != 0 || p.total < p.readLen/2 {
			node := p.endNode
			if node == 0 {
				node = p.firstNode
			}
			res = Result{Mapped: true, Node: node, EditDistance: p.total}
		}
		results[p.idx] = res
		finalized++
	}
	for w := 0; w < len(s.work); w += align.MaxLanes {
		if stopped(done) {
			n := len(reads)
			if finalized < len(s.pends) {
				n = s.pends[finalized].idx
			}
			return n, &BatchError{Done: n, Err: ctx.Err()}
		}
		hi := w + align.MaxLanes
		if hi > len(s.work) {
			hi = len(s.work)
		}
		wave := s.work[w:hi]
		t0 := time.Now()
		s.lanes.Reset()
		for _, wk := range wave {
			chunk := reads[s.pends[wk.pi].idx][wk.off:wk.end]
			if t.Capture != nil {
				*t.Capture = append(*t.Capture, GBVInput{Sub: wk.sub.Graph, Query: chunk})
			}
			s.lanes.Add(wk.sub.Graph, chunk, probe)
		}
		s.lanes.Run()
		wall := time.Since(t0)
		// Queue pops are the per-lane work measure; shares of the shared
		// call sum to its wall time (no multiply-counting across lanes).
		sumW := 0
		for l := 0; l < s.lanes.Len(); l++ {
			sumW += s.lanes.Steps(l) + 1
		}
		for wi, wk := range wave {
			p := &s.pends[wk.pi]
			if err := s.lanes.Err(wi); err != nil {
				p.total += wk.end - wk.off
			} else {
				r := s.lanes.Result(wi)
				p.total += r.Distance
				if r.EndNode != 0 {
					p.endNode = wk.sub.Orig[r.EndNode-1]
				}
			}
			stages[p.idx].Align += wall * time.Duration(s.lanes.Steps(wi)+1) / time.Duration(sumW)
			p.chunks--
			if p.chunks == 0 {
				finalize(p)
			}
		}
	}
	return len(reads), nil
}

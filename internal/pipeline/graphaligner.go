package pipeline

import (
	"context"
	"fmt"
	"sort"

	"pangenomicsbench/internal/align"
	"pangenomicsbench/internal/chain"
	"pangenomicsbench/internal/graph"
	"pangenomicsbench/internal/minimizer"
	"pangenomicsbench/internal/perf"
)

// GraphAligner models GraphAligner: minimizer seeding, lightweight
// clustering (~5% of runtime), no real filtering, and ~90% of time in GBV
// bitvector alignment (§2.1). Long reads are aligned in 64 bp chunks, each
// against a small subgraph extracted around the chunk's nearest seed —
// trading alignment quality for speed as the real tool does.
type GraphAligner struct {
	g   *graph.Graph
	idx *minimizer.GraphIndex
	// Capture records GBV kernel inputs.
	Capture *[]GBVInput
	// Radius is the per-chunk subgraph extraction radius.
	Radius int
}

// NewGraphAligner builds the tool.
func NewGraphAligner(g *graph.Graph, k, w int) (*GraphAligner, error) {
	idx, err := minimizer.NewGraphIndex(g, k, w)
	if err != nil {
		return nil, fmt.Errorf("pipeline: graphaligner: %w", err)
	}
	return &GraphAligner{g: g, idx: idx, Radius: 192}, nil
}

// Name implements Tool.
func (t *GraphAligner) Name() string { return "GraphAligner" }

// Map implements Tool.
func (t *GraphAligner) Map(read []byte, probe *perf.Probe) (Result, StageTimes) {
	r, st, _ := t.MapCtx(context.Background(), read, probe)
	return r, st
}

// MapCtx implements ContextTool: long reads align in 64 bp chunks, and
// cancellation is observed before every chunk — the finest-grained stop point
// of the four tools, matching GBV's ~90% share of GraphAligner's runtime.
func (t *GraphAligner) MapCtx(ctx context.Context, read []byte, probe *perf.Probe) (Result, StageTimes, error) {
	done := ctx.Done()
	var st StageTimes
	var anchors []chain.Anchor
	timeStageCtx(ctx, "seed", &st.Seed, func() { anchors = seedGraph(t.idx, read, t.idx.K(), probe) })
	if len(anchors) == 0 {
		return Result{}, st, nil
	}

	// Lightweight clustering: just sort anchors by query position and keep
	// the densest run — no chaining DP, no graph-distance queries.
	timeStageCtx(ctx, "chain", &st.Chain, func() {
		sort.Slice(anchors, func(i, j int) bool { return anchors[i].QPos < anchors[j].QPos })
	})

	best := Result{EditDistance: 1 << 30}
	canceled := false
	timeStageCtx(ctx, "align", &st.Align, func() {
		total := 0
		var endNode graph.NodeID
		ai := 0
		for off := 0; off < len(read); off += align.MaxMyersQuery {
			if stopped(done) {
				canceled = true
				return
			}
			end := off + align.MaxMyersQuery
			if end > len(read) {
				end = len(read)
			}
			chunk := read[off:end]
			// Nearest anchor to this chunk.
			for ai+1 < len(anchors) && anchors[ai+1].QPos <= off {
				ai++
			}
			sub := graph.Extract(t.g, anchors[ai].Node, t.Radius)
			if t.Capture != nil {
				*t.Capture = append(*t.Capture, GBVInput{Sub: sub.Graph, Query: chunk})
			}
			r, err := align.GBV(sub.Graph, chunk, probe)
			if err != nil {
				total += len(chunk)
				continue
			}
			total += r.Distance
			if r.EndNode != 0 {
				endNode = sub.Orig[r.EndNode-1]
			}
		}
		if endNode != 0 || total < len(read)/2 {
			node := endNode
			if node == 0 {
				node = anchors[0].Node
			}
			best = Result{Mapped: true, Node: node, EditDistance: total}
		}
	})
	if canceled {
		return Result{}, st, ctx.Err()
	}
	return best, st, nil
}

// Package pipeline models the four end-to-end Seq2Graph mapping tools the
// paper analyzes (§2.1, Fig. 2): Vg Map, Vg Giraffe, GraphAligner, and
// Minigraph (long-read and chromosome modes). Each tool follows the common
// seed → cluster/chain → filter → align structure of Fig. 1 but makes the
// trade-offs of its namesake: Vg Map spends everywhere and aligns with
// GSSW; Giraffe's haplotype-aware GBWT filter dominates; GraphAligner
// skips filtering and burns ~90% in GBV alignment; Minigraph does heavy
// 2D chaining with GWFA bridging. Each stage is wall-timed, and each tool
// can capture the inputs reaching its kernel — exactly how the paper builds
// its kernel datasets (§4.2).
package pipeline

import (
	"context"
	"time"

	"pangenomicsbench/internal/graph"
	"pangenomicsbench/internal/obs"
	"pangenomicsbench/internal/perf"
	"pangenomicsbench/internal/seqmap"
)

// StageTimes re-exports the per-stage timing type shared with seqmap.
type StageTimes = seqmap.StageTimes

// Result is one read's mapping outcome.
type Result struct {
	Mapped bool
	// Node is the mapped location's node (alignment end or chain start,
	// tool-dependent).
	Node graph.NodeID
	// Score is an alignment score (GSSW-based tools) …
	Score int
	// … or EditDistance an edit distance (GBV/GWFA-based tools).
	EditDistance int
}

// Tool is a Seq2Graph mapper model.
type Tool interface {
	Name() string
	Map(read []byte, probe *perf.Probe) (Result, StageTimes)
}

// ContextTool is a Tool whose mapping loops honor context cancellation:
// MapCtx returns ctx.Err() as soon as the deadline or cancellation is
// observed at a loop boundary (per cluster, chunk, or bridge), abandoning the
// rest of the read. All four tools in this package implement it; Map is
// MapCtx with context.Background(). The serve-mode mapping executor relies
// on this to stop work mid-batch when a query's deadline expires.
//
// MapBatch maps reads[i] into the caller-owned results[i] and stages[i]
// (both must be at least len(reads) long) and returns the number of leading
// reads completed. Results are byte-identical to calling MapCtx once per
// read at any batch size; the batched path differs only in execution —
// per-tool scratch is reused across the batch and the Myers/GBV kernel
// calls of several reads interleave lane-packed through one kernel
// invocation. Each read's stage times are its own work plus its
// apportioned share of any shared kernel call, so the per-batch sum of
// stage totals tracks the batch's wall time (no multiply-counting). When
// ctx is canceled mid-batch, MapBatch returns (n, *BatchError) with
// results[:n] and stages[:n] valid and the rest unmapped.
type ContextTool interface {
	Tool
	MapCtx(ctx context.Context, read []byte, probe *perf.Probe) (Result, StageTimes, error)
	MapBatch(ctx context.Context, reads [][]byte, results []Result, stages []StageTimes, probe *perf.Probe) (int, error)
}

// stopped reports whether a context's done channel has fired. Mapping loops
// poll it at their iteration boundaries; a nil channel (context.Background)
// never fires and costs only the select.
func stopped(done <-chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// Kernel input captures (paper §4.2: "running the tool with datasets …
// up until the kernel and then storing the inputs to the kernel").

// GSSWInput is one captured Vg Map alignment problem.
type GSSWInput struct {
	Sub   *graph.Graph // acyclic local subgraph
	Query []byte
}

// GBWTInput is one captured Giraffe haplotype-extension query.
type GBWTInput struct {
	Nodes []graph.NodeID
}

// GBVInput is one captured GraphAligner cluster alignment.
type GBVInput struct {
	Sub   *graph.Graph
	Query []byte // ≤64 bp chunk
}

// GWFAInput is one captured Minigraph anchor-bridging problem.
type GWFAInput struct {
	G     *graph.Graph
	Start graph.NodeID
	Query []byte
}

// timeStage runs fn and adds its wall time to *d.
func timeStage(d *time.Duration, fn func()) {
	t0 := time.Now()
	fn()
	*d += time.Since(t0)
}

// timeStageCtx is timeStage plus trace attribution: when the serve tier
// threaded an obs span into ctx (the same ctx MapCtx already carries for
// cancellation), the stage is also recorded as a completed child span, so
// every mapped read's trace breaks down into the kernel's own stages. With
// no span in ctx the extra cost is one context lookup — no allocations.
func timeStageCtx(ctx context.Context, name string, d *time.Duration, fn func()) {
	t0 := time.Now()
	fn()
	dur := time.Since(t0)
	*d += dur
	obs.AddStage(ctx, name, t0, dur)
}

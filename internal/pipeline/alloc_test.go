package pipeline

import (
	"context"
	"testing"
)

// TestMapCtxAllocs pins the hot-path allocation fixes of the batched
// mapping sweep, in the style of align's poa_alloc_test.go: once a tool's
// pooled scratch has warmed, a MapCtx call must stay at a small constant
// allocation count. Before the sweep, every call paid per-read slices in
// seeding (minimizer hashes/valid/output, the seedGraph anchor slice),
// chaining (anchor copy, score/prev/order/used, chain arenas, the distance
// memo), and the kernels (GBV queue and profiles, GSSW DP matrices, GWFA
// wavefront maps, giraffe refSeq extension buffers) — hundreds to tens of
// thousands of allocations per read. The bounds below are the measured
// steady state with ~2x headroom; a regression back to per-read buffers
// blows through them immediately.
func TestMapCtxAllocs(t *testing.T) {
	pop, tools := ctxTestTools(t)
	reads := batchTestReads(t, pop, 16, 900, 19)

	// Residual per-call allocations (not regressions, pinned as-is):
	// VgGiraffe — GBWT extension state internals; GraphAligner — subgraph
	// cache fills; VgMap — Extract+Acyclify build a fresh subgraph per
	// chain (the GSSW DP matrices themselves are pooled); Minigraph —
	// gwfaCore's per-call closures and map growth beyond the warmed size.
	limits := map[string]float64{
		"VgGiraffe":    15,
		"VgMap":        1200,
		"GraphAligner": 10,
		"Minigraph-lr": 300,
	}
	for _, tool := range tools {
		tool := tool
		t.Run(tool.Name(), func(t *testing.T) {
			one := func() {
				if _, _, err := tool.MapCtx(context.Background(), reads[0], nil); err != nil {
					t.Fatal(err)
				}
			}
			one() // warm the pooled scratch
			limit := limits[tool.Name()]
			if avg := testing.AllocsPerRun(10, one); avg > limit {
				t.Errorf("warm MapCtx allocs/op = %.1f, want <= %.0f (per-read scratch regression?)", avg, limit)
			}

			// The batched path must not allocate more per read than the
			// serial path does.
			results := make([]Result, len(reads))
			stages := make([]StageTimes, len(reads))
			batch := func() {
				if _, err := tool.MapBatch(context.Background(), reads, results, stages, nil); err != nil {
					t.Fatal(err)
				}
			}
			batch()
			if avg := testing.AllocsPerRun(5, batch); avg/float64(len(reads)) > limit {
				t.Errorf("warm MapBatch allocs/read = %.1f, want <= %.0f", avg/float64(len(reads)), limit)
			}
		})
	}
}

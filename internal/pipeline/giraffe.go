package pipeline

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pangenomicsbench/internal/align"
	"pangenomicsbench/internal/chain"
	"pangenomicsbench/internal/gbwt"
	"pangenomicsbench/internal/graph"
	"pangenomicsbench/internal/minimizer"
	"pangenomicsbench/internal/perf"
)

// VgGiraffe models vg giraffe: minimizer seeding, cheap clustering over a
// precomputed distance index, and a sophisticated, time-dominant filtering
// step that gaplessly extends every clustered seed along real haplotypes
// with GBWT index queries (§2.1, §3). Full alignment only runs for reads
// whose extensions fail — the design that makes Giraffe the fastest
// Seq2Graph tool (Table 1).
type VgGiraffe struct {
	g   *graph.Graph
	idx *minimizer.GraphIndex
	hap *gbwt.Index
	// nodePos approximates each node's linear coordinate (Giraffe's
	// offline distance index), making cluster distance checks O(1).
	nodePos map[graph.NodeID]int
	// Capture records the GBWT kernel queries.
	Capture *[]GBWTInput

	pool sync.Pool // *giraffeScratch
}

// giraffeExt is one haplotype extension candidate; its reference sequence
// lives in the scratch arena as an offset span, not an owned slice.
type giraffeExt struct {
	startNode      graph.NodeID
	mismatches     int
	refOff, refLen int
}

// giraffeFall describes a read whose extensions all failed: the Myers64
// fallback over its best extension's reference is still owed.
type giraffeFall struct {
	refOff, refLen int
	node           graph.NodeID
}

// giraffePend is one batch member waiting on the lane-packed fallback.
type giraffePend struct {
	idx    int // index into the batch's reads
	fall   giraffeFall
	chunks int // fallback chunks not yet applied
	total  int // accumulated edit distance
}

// myersChunk is one 64 bp fallback chunk of one pending read.
type myersChunk struct {
	pi       int // index into pends
	off, end int
}

// giraffeScratch is the per-goroutine working state of the mapping path:
// seeding and chaining scratch, the extension byte arena (refSeq spans),
// node-walk buffers, the extension candidates, and the lane-packed Myers
// fallback group. All buffers are grow-only.
type giraffeScratch struct {
	seed    seedScratch
	anchors []chain.Anchor
	cs      chain.Scratch
	arena   []byte         // refSeq arena; reset per call (per batch)
	nodes   []graph.NodeID // forward walk of the current extension
	preds   []graph.NodeID // backward walk, in discovery order
	exts    []giraffeExt
	lanes   align.MyersLaneGroup
	pends   []giraffePend
	work    []myersChunk
}

func (t *VgGiraffe) getScratch() *giraffeScratch {
	s, _ := t.pool.Get().(*giraffeScratch)
	if s == nil {
		s = &giraffeScratch{}
	}
	return s
}

// NewVgGiraffe builds the tool, including its GBWT haplotype index and
// distance index.
func NewVgGiraffe(g *graph.Graph, k, w int) (*VgGiraffe, error) {
	idx, err := minimizer.NewGraphIndex(g, k, w)
	if err != nil {
		return nil, fmt.Errorf("pipeline: giraffe: %w", err)
	}
	hap, err := gbwt.Build(g)
	if err != nil {
		return nil, fmt.Errorf("pipeline: giraffe: %w", err)
	}
	nodePos := make(map[graph.NodeID]int, g.NumNodes())
	for _, p := range g.Paths() {
		off := 0
		for _, id := range p.Nodes {
			if _, seen := nodePos[id]; !seen {
				nodePos[id] = off
			}
			off += len(g.Seq(id))
		}
	}
	return &VgGiraffe{g: g, idx: idx, hap: hap, nodePos: nodePos}, nil
}

// Name implements Tool.
func (t *VgGiraffe) Name() string { return "VgGiraffe" }

// Map implements Tool.
func (t *VgGiraffe) Map(read []byte, probe *perf.Probe) (Result, StageTimes) {
	r, st, _ := t.MapCtx(context.Background(), read, probe)
	return r, st
}

// MapCtx implements ContextTool: cancellation is observed between stages and
// at every cluster of the dominant haplotype-extension loop.
func (t *VgGiraffe) MapCtx(ctx context.Context, read []byte, probe *perf.Probe) (Result, StageTimes, error) {
	s := t.getScratch()
	defer t.pool.Put(s)
	s.arena = s.arena[:0]
	var st StageTimes
	res, _, err := t.mapOne(ctx, s, read, probe, &st, nil)
	return res, st, err
}

// mapOne runs one read's seed → chain → filter → align pipeline on the
// scratch. With fall == nil the Myers64 fallback (for reads whose
// extensions all fail) runs inline — the serial path. With fall non-nil the
// fallback is deferred to the caller for lane packing: *fall is filled and
// the second return is true.
func (t *VgGiraffe) mapOne(ctx context.Context, s *giraffeScratch, read []byte, probe *perf.Probe, st *StageTimes, fall *giraffeFall) (Result, bool, error) {
	done := ctx.Done()
	var anchors []chain.Anchor
	timeStageCtx(ctx, "seed", &st.Seed, func() {
		s.anchors = s.seed.seedInto(s.anchors[:0], t.idx, read, t.idx.K(), probe)
		anchors = s.anchors
	})
	if len(anchors) == 0 {
		return Result{}, false, nil
	}

	// Clustering over the distance index: anchors get approximate linear
	// coordinates, then coordinate-based chaining (O(1) per pair — no
	// graph traversal, unlike Vg Map).
	var clusters []chain.Chain
	timeStageCtx(ctx, "chain", &st.Chain, func() {
		for i := range anchors {
			anchors[i].RPos = t.nodePos[anchors[i].Node] + anchors[i].Offset
			probe.Op(perf.ScalarInt, 2)
		}
		clusters = s.cs.Linear(anchors, 2*len(read), probe)
		clusters = chain.Filter(clusters, 0.4, 4)
	})
	if len(clusters) == 0 {
		return Result{}, false, nil
	}
	if stopped(done) {
		return Result{}, false, ctx.Err()
	}

	// Filtering: gapless haplotype extension of every seed of every
	// cluster through the GBWT (Fig. 4c) — Giraffe's dominant stage.
	s.exts = s.exts[:0]
	canceled := false
	timeStageCtx(ctx, "filter", &st.Filter, func() {
		for _, cl := range clusters {
			if stopped(done) {
				canceled = true
				return
			}
			for _, an := range cl.Anchors {
				refOff, refLen, anchorStart, ok := t.extendSeedInto(s, an, read, probe)
				if !ok {
					continue
				}
				refSeq := s.arena[refOff : refOff+refLen]
				// Gapless scoring of the read against the haplotype
				// sequence, aligned by the anchor.
				shift := anchorStart + an.Offset - an.QPos
				mism := 0
				for i := 0; i < len(read); i++ {
					probe.Op(perf.ScalarInt, 2)
					j := shift + i
					if j < 0 || j >= len(refSeq) || read[i] != refSeq[j] {
						mism++
					}
				}
				probe.TakeBranch(0x62, mism <= 6)
				s.exts = append(s.exts, giraffeExt{an.Node, mism, refOff, refLen})
			}
		}
	})
	if canceled {
		return Result{}, false, ctx.Err()
	}
	if len(s.exts) == 0 {
		return Result{}, false, nil
	}

	best := Result{EditDistance: 1 << 30}
	deferred := false
	timeStageCtx(ctx, "align", &st.Align, func() {
		// Best extension; full alignment only if every extension failed.
		bi := 0
		for i := range s.exts {
			if s.exts[i].mismatches < s.exts[bi].mismatches {
				bi = i
			}
		}
		e := s.exts[bi]
		if e.mismatches <= 6 {
			best = Result{Mapped: true, Node: e.startNode, EditDistance: e.mismatches}
			return
		}
		if fall != nil {
			*fall = giraffeFall{refOff: e.refOff, refLen: e.refLen, node: e.startNode}
			deferred = true
			return
		}
		refSeq := s.arena[e.refOff : e.refOff+e.refLen]
		total := 0
		for off := 0; off < len(read); off += align.MaxMyersQuery {
			end := off + align.MaxMyersQuery
			if end > len(read) {
				end = len(read)
			}
			r, err := align.Myers64(refSeq, read[off:end], probe)
			if err != nil {
				total += end - off
				continue
			}
			total += r.Distance
		}
		best = Result{Mapped: true, Node: e.startNode, EditDistance: total}
	})
	return best, deferred, nil
}

// MapBatch implements ContextTool: reads run through seed/chain/filter one
// by one on shared scratch, and every read whose extensions failed joins a
// lane-packed Myers64 fallback — up to align.MaxLanes 64 bp chunks from
// any mix of pending reads per kernel call. Results are byte-identical to
// serial MapCtx; each read's align time includes its reference-length-
// weighted share of every shared kernel call it rode in.
func (t *VgGiraffe) MapBatch(ctx context.Context, reads [][]byte, results []Result, stages []StageTimes, probe *perf.Probe) (int, error) {
	if err := checkBatchArgs(reads, results, stages); err != nil {
		return 0, err
	}
	s := t.getScratch()
	defer t.pool.Put(s)
	done := ctx.Done()
	s.arena = s.arena[:0] // extension spans must survive until phase B
	s.pends = s.pends[:0]
	for i, read := range reads {
		results[i], stages[i] = Result{}, StageTimes{}
		if stopped(done) {
			return i, &BatchError{Done: i, Err: ctx.Err()}
		}
		var fall giraffeFall
		res, deferred, err := t.mapOne(ctx, s, read, probe, &stages[i], &fall)
		if err != nil {
			return i, &BatchError{Done: i, Err: err}
		}
		if !deferred {
			results[i] = res
			continue
		}
		s.pends = append(s.pends, giraffePend{idx: i, fall: fall})
	}

	// Phase B: the deferred fallbacks, chunked and lane-packed. The work
	// list is ordered by read, so pendings finalize in read order and a
	// cancellation always leaves a valid completed prefix.
	s.work = s.work[:0]
	for pi := range s.pends {
		read := reads[s.pends[pi].idx]
		n := 0
		for off := 0; off < len(read); off += align.MaxMyersQuery {
			end := off + align.MaxMyersQuery
			if end > len(read) {
				end = len(read)
			}
			s.work = append(s.work, myersChunk{pi: pi, off: off, end: end})
			n++
		}
		s.pends[pi].chunks = n
		if n == 0 { // unreachable (seeded reads are non-empty), kept safe
			p := &s.pends[pi]
			results[p.idx] = Result{Mapped: true, Node: p.fall.node}
		}
	}
	finalized := 0
	for w := 0; w < len(s.work); w += align.MaxLanes {
		if stopped(done) {
			n := len(reads)
			if finalized < len(s.pends) {
				n = s.pends[finalized].idx
			}
			return n, &BatchError{Done: n, Err: ctx.Err()}
		}
		hi := w + align.MaxLanes
		if hi > len(s.work) {
			hi = len(s.work)
		}
		wave := s.work[w:hi]
		t0 := time.Now()
		s.lanes.Reset()
		var added [align.MaxLanes]bool
		for wi, wk := range wave {
			p := &s.pends[wk.pi]
			refSeq := s.arena[p.fall.refOff : p.fall.refOff+p.fall.refLen]
			read := reads[p.idx]
			if _, err := s.lanes.Add(refSeq, read[wk.off:wk.end]); err == nil {
				added[wi] = true
			}
		}
		s.lanes.Run(probe)
		wall := time.Since(t0)
		// Apportion the shared kernel call's wall time by reference length
		// (each lane's active column count): shares sum to the call's wall
		// time, so batched stage totals never multiply-count kernel time.
		sumW := 0
		for l := 0; l < s.lanes.Len(); l++ {
			sumW += s.lanes.RefLen(l) + 1
		}
		li := 0
		for wi, wk := range wave {
			p := &s.pends[wk.pi]
			if added[wi] {
				p.total += s.lanes.Result(li).Distance
				stages[p.idx].Align += wall * time.Duration(s.lanes.RefLen(li)+1) / time.Duration(sumW)
				li++
			} else {
				p.total += wk.end - wk.off // serial kernel-error fallback
			}
			p.chunks--
			if p.chunks == 0 {
				results[p.idx] = Result{Mapped: true, Node: p.fall.node, EditDistance: p.total}
				finalized++
			}
		}
	}
	return len(reads), nil
}

// extendSeedInto walks from a seed's node along haplotypes in both
// directions until the read is covered: forward through GBWT states,
// backward through the predecessor whose sequence best matches the read
// prefix. The walk's sequence is materialized into the scratch arena; the
// return values are its span (offset, length), the offset of the anchor
// node's start within it, and whether any haplotype visits the seed at all.
func (t *VgGiraffe) extendSeedInto(s *giraffeScratch, an chain.Anchor, read []byte, probe *perf.Probe) (refOff, refLen, anchorStart int, ok bool) {
	state := t.hap.Start(an.Node)
	if state.Empty() {
		return 0, 0, 0, false
	}
	s.nodes = append(s.nodes[:0], an.Node)
	seqLen := len(t.g.Seq(an.Node))
	for seqLen < len(read)+32 {
		next := t.widestHop(&state, probe)
		if next == 0 {
			break
		}
		s.nodes = append(s.nodes, next)
		seqLen += len(t.g.Seq(next))
	}
	// Backward: prepend the predecessor whose suffix matches the read
	// bases that should precede the current walk.
	s.preds = s.preds[:0]
	needed := an.QPos - an.Offset // read bases before the anchor node
	cur := an.Node
	for needed > 0 {
		preds := t.g.In(cur)
		if len(preds) == 0 {
			break
		}
		bestPred, bestScore := graph.NodeID(0), -1
		for _, p := range preds {
			seq := t.g.Seq(p)
			score := 0
			for i := 0; i < len(seq) && i < needed; i++ {
				probe.Op(perf.ScalarInt, 2)
				if read[needed-1-i] == seq[len(seq)-1-i] {
					score++
				}
			}
			if score > bestScore {
				bestScore, bestPred = score, p
			}
		}
		probe.TakeBranch(0x63, len(preds) > 1)
		s.preds = append(s.preds, bestPred)
		anchorStart += len(t.g.Seq(bestPred))
		needed -= len(t.g.Seq(bestPred))
		cur = bestPred
	}
	// Materialize: predecessors outermost-first, then the forward walk —
	// the same concatenation the prepend loop used to build one byte at a
	// time with a fresh slice per step.
	refOff = len(s.arena)
	for i := len(s.preds) - 1; i >= 0; i-- {
		s.arena = append(s.arena, t.g.Seq(s.preds[i])...)
	}
	for _, id := range s.nodes {
		s.arena = append(s.arena, t.g.Seq(id)...)
	}
	refLen = len(s.arena) - refOff
	if t.Capture != nil {
		walk := make([]graph.NodeID, 0, len(s.preds)+len(s.nodes))
		for i := len(s.preds) - 1; i >= 0; i-- {
			walk = append(walk, s.preds[i])
		}
		walk = append(walk, s.nodes...)
		*t.Capture = append(*t.Capture, GBWTInput{Nodes: walk})
	}
	return refOff, refLen, anchorStart, true
}

// widestHop advances the state to the most frequent haplotype successor,
// returning 0 when every haplotype ends.
func (t *VgGiraffe) widestHop(state *gbwt.State, probe *perf.Probe) graph.NodeID {
	var bestNode graph.NodeID
	var bestState gbwt.State
	for _, succ := range t.g.Out(state.Node) {
		s := t.hap.Extend(*state, succ, probe)
		if s.Size() > bestState.Size() {
			bestState, bestNode = s, succ
		}
	}
	if bestNode == 0 {
		return 0
	}
	*state = bestState
	return bestNode
}

package pipeline

import (
	"context"
	"fmt"

	"pangenomicsbench/internal/align"
	"pangenomicsbench/internal/chain"
	"pangenomicsbench/internal/gbwt"
	"pangenomicsbench/internal/graph"
	"pangenomicsbench/internal/minimizer"
	"pangenomicsbench/internal/perf"
)

// VgGiraffe models vg giraffe: minimizer seeding, cheap clustering over a
// precomputed distance index, and a sophisticated, time-dominant filtering
// step that gaplessly extends every clustered seed along real haplotypes
// with GBWT index queries (§2.1, §3). Full alignment only runs for reads
// whose extensions fail — the design that makes Giraffe the fastest
// Seq2Graph tool (Table 1).
type VgGiraffe struct {
	g   *graph.Graph
	idx *minimizer.GraphIndex
	hap *gbwt.Index
	// nodePos approximates each node's linear coordinate (Giraffe's
	// offline distance index), making cluster distance checks O(1).
	nodePos map[graph.NodeID]int
	// Capture records the GBWT kernel queries.
	Capture *[]GBWTInput
}

// NewVgGiraffe builds the tool, including its GBWT haplotype index and
// distance index.
func NewVgGiraffe(g *graph.Graph, k, w int) (*VgGiraffe, error) {
	idx, err := minimizer.NewGraphIndex(g, k, w)
	if err != nil {
		return nil, fmt.Errorf("pipeline: giraffe: %w", err)
	}
	hap, err := gbwt.Build(g)
	if err != nil {
		return nil, fmt.Errorf("pipeline: giraffe: %w", err)
	}
	nodePos := make(map[graph.NodeID]int, g.NumNodes())
	for _, p := range g.Paths() {
		off := 0
		for _, id := range p.Nodes {
			if _, seen := nodePos[id]; !seen {
				nodePos[id] = off
			}
			off += len(g.Seq(id))
		}
	}
	return &VgGiraffe{g: g, idx: idx, hap: hap, nodePos: nodePos}, nil
}

// Name implements Tool.
func (t *VgGiraffe) Name() string { return "VgGiraffe" }

// Map implements Tool.
func (t *VgGiraffe) Map(read []byte, probe *perf.Probe) (Result, StageTimes) {
	r, st, _ := t.MapCtx(context.Background(), read, probe)
	return r, st
}

// MapCtx implements ContextTool: cancellation is observed between stages and
// at every cluster of the dominant haplotype-extension loop.
func (t *VgGiraffe) MapCtx(ctx context.Context, read []byte, probe *perf.Probe) (Result, StageTimes, error) {
	done := ctx.Done()
	var st StageTimes
	var anchors []chain.Anchor
	timeStageCtx(ctx, "seed", &st.Seed, func() { anchors = seedGraph(t.idx, read, t.idx.K(), probe) })
	if len(anchors) == 0 {
		return Result{}, st, nil
	}

	// Clustering over the distance index: anchors get approximate linear
	// coordinates, then coordinate-based chaining (O(1) per pair — no
	// graph traversal, unlike Vg Map).
	var clusters []chain.Chain
	timeStageCtx(ctx, "chain", &st.Chain, func() {
		for i := range anchors {
			anchors[i].RPos = t.nodePos[anchors[i].Node] + anchors[i].Offset
			probe.Op(perf.ScalarInt, 2)
		}
		clusters = chain.Linear(anchors, 2*len(read), probe)
		clusters = chain.Filter(clusters, 0.4, 4)
	})
	if len(clusters) == 0 {
		return Result{}, st, nil
	}
	if stopped(done) {
		return Result{}, st, ctx.Err()
	}

	// Filtering: gapless haplotype extension of every seed of every
	// cluster through the GBWT (Fig. 4c) — Giraffe's dominant stage.
	type extension struct {
		startNode  graph.NodeID
		mismatches int
		refSeq     []byte
		start      int
	}
	var exts []extension
	canceled := false
	timeStageCtx(ctx, "filter", &st.Filter, func() {
		for _, cl := range clusters {
			if stopped(done) {
				canceled = true
				return
			}
			for _, an := range cl.Anchors {
				walk, refSeq, anchorStart := t.extendSeed(an, read, probe)
				if walk == nil {
					continue
				}
				if t.Capture != nil {
					*t.Capture = append(*t.Capture, GBWTInput{Nodes: walk})
				}
				// Gapless scoring of the read against the haplotype
				// sequence, aligned by the anchor.
				shift := anchorStart + an.Offset - an.QPos
				mism := 0
				for i := 0; i < len(read); i++ {
					probe.Op(perf.ScalarInt, 2)
					j := shift + i
					if j < 0 || j >= len(refSeq) || read[i] != refSeq[j] {
						mism++
					}
				}
				probe.TakeBranch(0x62, mism <= 6)
				exts = append(exts, extension{an.Node, mism, refSeq, shift})
			}
		}
	})
	if canceled {
		return Result{}, st, ctx.Err()
	}
	if len(exts) == 0 {
		return Result{}, st, nil
	}

	best := Result{EditDistance: 1 << 30}
	timeStageCtx(ctx, "align", &st.Align, func() {
		// Best extension; full alignment only if every extension failed.
		bi := 0
		for i := range exts {
			if exts[i].mismatches < exts[bi].mismatches {
				bi = i
			}
		}
		if exts[bi].mismatches <= 6 {
			best = Result{Mapped: true, Node: exts[bi].startNode, EditDistance: exts[bi].mismatches}
			return
		}
		total := 0
		for off := 0; off < len(read); off += align.MaxMyersQuery {
			end := off + align.MaxMyersQuery
			if end > len(read) {
				end = len(read)
			}
			r, err := align.Myers64(exts[bi].refSeq, read[off:end], probe)
			if err != nil {
				total += end - off
				continue
			}
			total += r.Distance
		}
		best = Result{Mapped: true, Node: exts[bi].startNode, EditDistance: total}
	})
	return best, st, nil
}

// extendSeed walks from a seed's node along haplotypes in both directions
// until the read is covered: forward through GBWT states, backward through
// the predecessor whose sequence best matches the read prefix. It returns
// the node walk, its sequence, and the offset of the anchor node's start
// within that sequence.
func (t *VgGiraffe) extendSeed(an chain.Anchor, read []byte, probe *perf.Probe) ([]graph.NodeID, []byte, int) {
	state := t.hap.Start(an.Node)
	if state.Empty() {
		return nil, nil, 0
	}
	walk := []graph.NodeID{an.Node}
	refSeq := append([]byte(nil), t.g.Seq(an.Node)...)
	for len(refSeq) < len(read)+32 {
		next := t.widestHop(&state, probe)
		if next == 0 {
			break
		}
		walk = append(walk, next)
		refSeq = append(refSeq, t.g.Seq(next)...)
	}
	// Backward: prepend the predecessor whose suffix matches the read
	// bases that should precede the current walk.
	anchorStart := 0
	needed := an.QPos - an.Offset // read bases before the anchor node
	cur := an.Node
	for needed > 0 {
		preds := t.g.In(cur)
		if len(preds) == 0 {
			break
		}
		bestPred, bestScore := graph.NodeID(0), -1
		for _, p := range preds {
			seq := t.g.Seq(p)
			score := 0
			for i := 0; i < len(seq) && i < needed; i++ {
				probe.Op(perf.ScalarInt, 2)
				if read[needed-1-i] == seq[len(seq)-1-i] {
					score++
				}
			}
			if score > bestScore {
				bestScore, bestPred = score, p
			}
		}
		probe.TakeBranch(0x63, len(preds) > 1)
		seq := t.g.Seq(bestPred)
		refSeq = append(append([]byte(nil), seq...), refSeq...)
		walk = append([]graph.NodeID{bestPred}, walk...)
		anchorStart += len(seq)
		needed -= len(seq)
		cur = bestPred
	}
	return walk, refSeq, anchorStart
}

// widestHop advances the state to the most frequent haplotype successor,
// returning 0 when every haplotype ends.
func (t *VgGiraffe) widestHop(state *gbwt.State, probe *perf.Probe) graph.NodeID {
	var bestNode graph.NodeID
	var bestState gbwt.State
	for _, succ := range t.g.Out(state.Node) {
		s := t.hap.Extend(*state, succ, probe)
		if s.Size() > bestState.Size() {
			bestState, bestNode = s, succ
		}
	}
	if bestNode == 0 {
		return 0
	}
	*state = bestState
	return bestNode
}

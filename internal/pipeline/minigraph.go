package pipeline

import (
	"context"
	"fmt"
	"sync"

	"pangenomicsbench/internal/align"
	"pangenomicsbench/internal/chain"
	"pangenomicsbench/internal/graph"
	"pangenomicsbench/internal/minimizer"
	"pangenomicsbench/internal/perf"
)

// Minigraph models minigraph's Seq2Graph mapping: minimizer seeding, then a
// heavy 2D-DP chaining stage that bridges the gaps between consecutive
// anchors with the GWFA kernel (§2.1: GWFA is 47% of chaining for long
// reads, 75% for chromosome assemblies), then filtering and a final base-
// level alignment. Mode "cr" maps whole assemblies (larger gaps → more
// GWFA work per bridge), mode "lr" maps long reads.
type Minigraph struct {
	g   *graph.Graph
	idx *minimizer.GraphIndex
	// ChromosomeMode selects the -cr configuration (assembly mapping).
	ChromosomeMode bool
	// Capture records GWFA kernel inputs.
	Capture *[]GWFAInput
	// GWFATime accumulates time spent inside the GWFA kernel (to report
	// the kernel fraction of the chaining stage, Fig. 2).
	GWFATime *StageTimes

	pool sync.Pool // *mgScratch
}

// mgScratch is the per-goroutine working state: seeding and chaining
// scratch plus the reusable GWFA wavefront workspace, so every anchor
// bridge and final alignment reuses the per-diagonal maps instead of
// reallocating them (GWFA runs many times per read — the dominant
// per-read allocation source of this tool).
type mgScratch struct {
	seed    seedScratch
	anchors []chain.Anchor
	cs      chain.Scratch
	gwfa    align.GWFAWorkspace
}

func (t *Minigraph) getScratch() *mgScratch {
	s, _ := t.pool.Get().(*mgScratch)
	if s == nil {
		s = &mgScratch{}
	}
	return s
}

// NewMinigraph builds the tool.
func NewMinigraph(g *graph.Graph, k, w int, chromosomeMode bool) (*Minigraph, error) {
	idx, err := minimizer.NewGraphIndex(g, k, w)
	if err != nil {
		return nil, fmt.Errorf("pipeline: minigraph: %w", err)
	}
	return &Minigraph{g: g, idx: idx, ChromosomeMode: chromosomeMode}, nil
}

// Name implements Tool.
func (t *Minigraph) Name() string {
	if t.ChromosomeMode {
		return "Minigraph-cr"
	}
	return "Minigraph-lr"
}

// Map implements Tool.
func (t *Minigraph) Map(read []byte, probe *perf.Probe) (Result, StageTimes) {
	r, st, _ := t.MapCtx(context.Background(), read, probe)
	return r, st
}

// MapCtx implements ContextTool: cancellation is observed before every GWFA
// anchor bridge — the dominant cost of minigraph's chaining stage — and
// before the final base-level alignment.
func (t *Minigraph) MapCtx(ctx context.Context, read []byte, probe *perf.Probe) (Result, StageTimes, error) {
	s := t.getScratch()
	defer t.pool.Put(s)
	var st StageTimes
	r, err := t.mapOne(ctx, s, read, probe, &st)
	return r, st, err
}

// MapBatch implements ContextTool: reads run serially over one shared
// scratch — GWFA's wavefront scatters across per-node state, so the batch
// win is the reused workspace (warm per-diagonal maps across every bridge
// of every read), not lane packing. Results are byte-identical to per-read
// MapCtx.
func (t *Minigraph) MapBatch(ctx context.Context, reads [][]byte, results []Result, stages []StageTimes, probe *perf.Probe) (int, error) {
	if err := checkBatchArgs(reads, results, stages); err != nil {
		return 0, err
	}
	s := t.getScratch()
	defer t.pool.Put(s)
	done := ctx.Done()
	for i, read := range reads {
		results[i], stages[i] = Result{}, StageTimes{}
		if stopped(done) {
			return i, &BatchError{Done: i, Err: ctx.Err()}
		}
		r, err := t.mapOne(ctx, s, read, probe, &stages[i])
		if err != nil {
			return i, &BatchError{Done: i, Err: err}
		}
		results[i] = r
	}
	return len(reads), nil
}

func (t *Minigraph) mapOne(ctx context.Context, s *mgScratch, read []byte, probe *perf.Probe, st *StageTimes) (Result, error) {
	done := ctx.Done()
	var anchors []chain.Anchor
	timeStageCtx(ctx, "seed", &st.Seed, func() {
		s.anchors = s.seed.seedInto(s.anchors[:0], t.idx, read, t.idx.K(), probe)
		anchors = s.anchors
	})
	if len(anchors) == 0 {
		return Result{}, nil
	}

	// Chaining: 2D DP over anchors, then GWFA bridges between consecutive
	// anchors of the best chain.
	var chains []chain.Chain
	bridged := 0
	canceled := false
	timeStageCtx(ctx, "chain", &st.Chain, func() {
		maxGap := 2 * len(read)
		if t.ChromosomeMode {
			maxGap = 4 * len(read)
		}
		chains = s.cs.GraphChains(t.g, anchors, maxGap, probe)
		if len(chains) == 0 {
			return
		}
		best := chains[0]
		// Bridge between anchors with GWFA. Minimizer anchors are dense,
		// so bridging subsamples the chain: the next bridge target is the
		// first anchor at least minSpan query bp further. Chromosome mode
		// uses coarser default parameters, so its bridged gaps are larger
		// (§2.1/§5.2: chromosome gaps cover more nodes, and GWFA is 75% of
		// chaining for assemblies vs 47% for long reads).
		minSpan := 192
		if t.ChromosomeMode {
			minSpan = 512
		}
		prev := best.Anchors[0]
		for i := 1; i < len(best.Anchors); i++ {
			if stopped(done) {
				canceled = true
				return
			}
			cur := best.Anchors[i]
			if cur.QPos-prev.QPos < minSpan {
				continue
			}
			gapLo := prev.QPos + prev.Len
			gapHi := cur.QPos
			if gapHi <= gapLo {
				prev = cur
				continue
			}
			gapSeq := read[gapLo:gapHi]
			if t.Capture != nil {
				*t.Capture = append(*t.Capture, GWFAInput{G: t.g, Start: prev.Node, Query: gapSeq})
			}
			var gst StageTimes
			timeStage(&gst.Chain, func() {
				_, _ = s.gwfa.Align(t.g, prev.Node, gapSeq, probe)
			})
			if t.GWFATime != nil {
				t.GWFATime.Chain += gst.Chain
			}
			bridged++
			prev = cur
		}
	})
	if canceled {
		return Result{}, ctx.Err()
	}
	if len(chains) == 0 {
		return Result{}, nil
	}
	if stopped(done) {
		return Result{}, ctx.Err()
	}

	timeStageCtx(ctx, "filter", &st.Filter, func() { chains = chain.Filter(chains, 0.7, 2) })

	// Final base-level alignment: edit distance of the read against the
	// graph from the chain start (WFA-style refinement).
	best := Result{EditDistance: 1 << 30}
	timeStageCtx(ctx, "align", &st.Align, func() {
		ch := chains[0]
		start := ch.Anchors[0].Node
		// Cap the aligned span in chromosome mode so one call stays
		// tractable (minigraph aligns between anchors, not end to end).
		query := read
		if len(query) > 2000 {
			query = query[:2000]
		}
		r, err := s.gwfa.Align(t.g, start, query, probe)
		if err == nil {
			best = Result{Mapped: true, Node: start, EditDistance: r.Distance}
		}
	})
	return best, nil
}

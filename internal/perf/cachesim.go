package perf

// CacheGeometry describes one cache level.
type CacheGeometry struct {
	SizeBytes int
	Ways      int
	LineBytes int
}

// Hierarchy is a three-level data-cache configuration.
type Hierarchy struct {
	Name       string
	L1, L2, L3 CacheGeometry
}

// Machine configurations from Table 5 of the paper.
var (
	// MachineA is the Xeon E5-2697 v3 (L1d 32K/8w, L2 256K/8w, L3 35M/~20w).
	MachineA = Hierarchy{
		Name: "Machine A (Xeon E5-2697 v3)",
		L1:   CacheGeometry{32 << 10, 8, 64},
		L2:   CacheGeometry{256 << 10, 8, 64},
		L3:   CacheGeometry{35 << 20, 20, 64},
	}
	// MachineB is the Xeon Gold 6326 (L1d 48K/12w, L2 1.25M/20w, L3 24M/12w),
	// the machine used for the paper's microarchitectural analyses.
	MachineB = Hierarchy{
		Name: "Machine B (Xeon Gold 6326)",
		L1:   CacheGeometry{48 << 10, 12, 64},
		L2:   CacheGeometry{1280 << 10, 20, 64},
		L3:   CacheGeometry{24 << 20, 12, 64},
	}
)

// cacheLevel is one set-associative LRU cache.
type cacheLevel struct {
	geom     CacheGeometry
	sets     int
	lineBits uint
	setMask  uint64
	tags     []uint64 // sets × ways
	age      []uint32 // LRU clocks, same layout
	valid    []bool
	clock    uint32

	Accesses uint64
	Misses   uint64
}

func newCacheLevel(g CacheGeometry) *cacheLevel {
	sets := g.SizeBytes / (g.LineBytes * g.Ways)
	if sets < 1 {
		sets = 1
	}
	// Round sets down to a power of two so indexing is a mask.
	for sets&(sets-1) != 0 {
		sets &^= sets & -sets
	}
	lineBits := uint(0)
	for 1<<lineBits < g.LineBytes {
		lineBits++
	}
	return &cacheLevel{
		geom:     g,
		sets:     sets,
		lineBits: lineBits,
		setMask:  uint64(sets - 1),
		tags:     make([]uint64, sets*g.Ways),
		age:      make([]uint32, sets*g.Ways),
		valid:    make([]bool, sets*g.Ways),
	}
}

// access looks up one line address; returns true on hit. On miss the line is
// installed with LRU replacement.
func (c *cacheLevel) access(lineAddr uint64) bool {
	c.Accesses++
	c.clock++
	set := int(lineAddr & c.setMask)
	base := set * c.geom.Ways
	victim, victimAge := base, c.age[base]
	for w := 0; w < c.geom.Ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == lineAddr {
			c.age[i] = c.clock
			return true
		}
		if !c.valid[i] {
			victim, victimAge = i, 0
		} else if c.age[i] < victimAge {
			victim, victimAge = i, c.age[i]
		}
	}
	c.Misses++
	c.tags[victim] = lineAddr
	c.valid[victim] = true
	c.age[victim] = c.clock
	return false
}

func (c *cacheLevel) reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.age[i] = 0
	}
	c.clock, c.Accesses, c.Misses = 0, 0, 0
}

// CacheSim simulates an inclusive three-level data-cache hierarchy and counts
// exclusive misses per level, matching Fig. 7's convention: an access that
// misses L1 but hits L2 counts only as an L2 "miss-filled" event, reported as
// an L1 miss that did NOT also count at L2.
type CacheSim struct {
	Hier       Hierarchy
	l1, l2, l3 *cacheLevel

	Accesses uint64
	// Exclusive miss counters (Fig. 7 semantics).
	L1Misses uint64 // missed L1, hit L2
	L2Misses uint64 // missed L2, hit L3
	L3Misses uint64 // missed everywhere (DRAM)
}

// NewCacheSim builds a simulator with the given hierarchy.
func NewCacheSim(h Hierarchy) *CacheSim {
	return &CacheSim{
		Hier: h,
		l1:   newCacheLevel(h.L1),
		l2:   newCacheLevel(h.L2),
		l3:   newCacheLevel(h.L3),
	}
}

// Access runs one data access of size bytes at addr through the hierarchy.
// Accesses spanning a line boundary touch both lines.
func (s *CacheSim) Access(addr uint64, size int, _ bool) {
	if size < 1 {
		size = 1
	}
	first := addr >> s.l1.lineBits
	last := (addr + uint64(size) - 1) >> s.l1.lineBits
	for line := first; line <= last; line++ {
		s.Accesses++
		if s.l1.access(line) {
			continue
		}
		if s.l2.access(line) {
			s.L1Misses++
			continue
		}
		if s.l3.access(line) {
			s.L2Misses++
			continue
		}
		s.L3Misses++
	}
}

// MPKI returns exclusive misses per kilo-instruction for each level given
// the total dynamic instruction count.
func (s *CacheSim) MPKI(instructions uint64) (l1, l2, l3 float64) {
	if instructions == 0 {
		return 0, 0, 0
	}
	k := float64(instructions) / 1000
	return float64(s.L1Misses) / k, float64(s.L2Misses) / k, float64(s.L3Misses) / k
}

// Reset clears all state and counters.
func (s *CacheSim) Reset() {
	s.l1.reset()
	s.l2.reset()
	s.l3.reset()
	s.Accesses, s.L1Misses, s.L2Misses, s.L3Misses = 0, 0, 0, 0
}

// Package perf is the measurement substrate of PangenomicsBench-Go. The
// paper characterizes its kernels with Intel VTune (top-down pipeline
// analysis, cache miss rates) and Intel PIN/MICA (dynamic instruction mix);
// neither exists here, so every kernel in this suite is instrumented with a
// Probe that records the kernel's dynamic event stream — operations by
// class, memory accesses by address, branches by outcome, and data-dependency
// chains — and perf turns that stream into the same artifacts: a dynamic
// instruction mix (Fig. 8), misses-per-kilo-instruction through a simulated
// three-level cache hierarchy (Fig. 7), and a top-down bottleneck breakdown
// with IPC from an analytic 4-wide superscalar model (Fig. 6, Table 6).
//
// A nil *Probe is valid everywhere and records nothing, so the timed
// benchmark runs pay only a nil check.
package perf

// Class is a dynamic instruction class. Classes follow the paper's Fig. 8
// legend and its hierarchical binning rule: an instruction that fits several
// classes is binned to the first one in this order.
type Class int

// Instruction classes in hierarchical binning order (Fig. 8).
const (
	Vector    Class = iota // SIMD operations (any width > machine word)
	Memory                 // loads and stores
	Branch                 // conditional and indirect control flow
	Register               // register-to-register moves
	ScalarFP               // scalar floating point (incl. SSE scalar ops)
	ScalarInt              // everything else
	numClasses
)

// String returns the Fig. 8 legend label.
func (c Class) String() string {
	switch c {
	case Vector:
		return "Vector"
	case Memory:
		return "Memory"
	case Branch:
		return "Branch"
	case Register:
		return "Register"
	case ScalarFP:
		return "ScalarFP"
	case ScalarInt:
		return "ScalarInt"
	}
	return "Unknown"
}

// Classes lists all instruction classes in binning order.
func Classes() []Class {
	return []Class{Vector, Memory, Branch, Register, ScalarFP, ScalarInt}
}

// Probe accumulates a kernel's dynamic event stream. The zero value is ready
// to use but most callers want NewProbe, which attaches the Machine B cache
// hierarchy and branch predictor.
type Probe struct {
	Ops [numClasses]uint64 // dynamic instruction counts by class

	Loads  uint64
	Stores uint64

	Branches    uint64
	Mispredicts uint64

	// DepCycles accumulates cycles lost to data-dependency serialization
	// (loop-carried DP-cell chains, div/sqrt latency). Kernels report these
	// at the points where their algorithm genuinely serializes.
	DepCycles uint64

	// FrontendOps counts operations fetched through hard-to-predict
	// instruction streams (indirect dispatch, dense data-dependent control),
	// which the top-down model charges to the front end.
	FrontendOps uint64

	Cache  *CacheSim
	Branch *BranchSim
}

// NewProbe returns a probe with the Machine B cache hierarchy (Table 5) and
// a gshare branch predictor attached.
func NewProbe() *Probe {
	return &Probe{Cache: NewCacheSim(MachineB), Branch: NewBranchSim(14)}
}

// Op records n dynamic instructions of class c.
func (p *Probe) Op(c Class, n int) {
	if p == nil {
		return
	}
	p.Ops[c] += uint64(n)
}

// Load records a data load of size bytes at addr and routes it through the
// cache simulator. It also counts one Memory-class instruction.
func (p *Probe) Load(addr uintptr, size int) {
	if p == nil {
		return
	}
	p.Ops[Memory]++
	p.Loads++
	if p.Cache != nil {
		p.Cache.Access(uint64(addr), size, false)
	}
}

// Store records a data store, analogous to Load.
func (p *Probe) Store(addr uintptr, size int) {
	if p == nil {
		return
	}
	p.Ops[Memory]++
	p.Stores++
	if p.Cache != nil {
		p.Cache.Access(uint64(addr), size, true)
	}
}

// TakeBranch records a conditional branch at site pc with the given outcome
// and consults the branch predictor for a misprediction.
func (p *Probe) TakeBranch(pc uint64, taken bool) {
	if p == nil {
		return
	}
	p.Ops[Branch]++
	p.Branches++
	if p.Branch != nil && !p.Branch.Predict(pc, taken) {
		p.Mispredicts++
	}
}

// Dep records n cycles of unavoidable data-dependency latency (e.g. the
// loop-carried H/E/F chain of a Smith-Waterman cell, or a division).
func (p *Probe) Dep(n int) {
	if p == nil {
		return
	}
	p.DepCycles += uint64(n)
}

// Frontend records n instructions issued through front-end-hostile code
// (indirect jumps, dense data-dependent dispatch).
func (p *Probe) Frontend(n int) {
	if p == nil {
		return
	}
	p.FrontendOps += uint64(n)
}

// Instructions returns the total dynamic instruction count.
func (p *Probe) Instructions() uint64 {
	if p == nil {
		return 0
	}
	var t uint64
	for _, n := range p.Ops {
		t += n
	}
	return t
}

// Mix returns the instruction-mix fractions by class (Fig. 8). The fractions
// sum to 1 when any instructions were recorded.
func (p *Probe) Mix() map[Class]float64 {
	m := make(map[Class]float64, numClasses)
	total := p.Instructions()
	if total == 0 {
		return m
	}
	for c := Class(0); c < numClasses; c++ {
		m[c] = float64(p.Ops[c]) / float64(total)
	}
	return m
}

// Reset clears all counters, cache and predictor state.
func (p *Probe) Reset() {
	if p == nil {
		return
	}
	*p = Probe{Cache: p.Cache, Branch: p.Branch}
	if p.Cache != nil {
		p.Cache.Reset()
	}
	if p.Branch != nil {
		p.Branch.Reset()
	}
}

package perf

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilMetricsIsSafe(t *testing.T) {
	var m *Metrics
	m.Add("x", 1)
	m.GaugeSet("g", 7)
	m.GaugeAdd("g", 1)
	m.Observe("y", time.Second)
	m.ObserveValue("z", 4)
	if got := m.Counter("x"); got != 0 {
		t.Fatalf("nil metrics counter = %d", got)
	}
	if v, w := m.Gauge("g"); v != 0 || w != 0 {
		t.Fatalf("nil metrics gauge = %d/%d", v, w)
	}
	snap := m.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Latencies) != 0 || len(snap.Values) != 0 {
		t.Fatalf("nil metrics snapshot not empty: %+v", snap)
	}
}

func TestGaugeWatermark(t *testing.T) {
	m := NewMetrics()
	m.GaugeAdd("inflight", 1)
	m.GaugeAdd("inflight", 1)
	m.GaugeAdd("inflight", 1)
	m.GaugeAdd("inflight", -2)
	if v, w := m.Gauge("inflight"); v != 1 || w != 3 {
		t.Fatalf("inflight = %d/%d, want 1/3", v, w)
	}
	m.GaugeSet("depth", 9)
	m.GaugeSet("depth", 4)
	if v, w := m.Gauge("depth"); v != 4 || w != 9 {
		t.Fatalf("depth = %d/%d, want 4/9", v, w)
	}
	snap := m.Snapshot()
	g := snap.Gauges["inflight"]
	if g.Value != 1 || g.Watermark != 3 {
		t.Fatalf("snapshot gauge = %+v", g)
	}
	if out := snap.Render(); !strings.Contains(out, "inflight") || !strings.Contains(out, "high watermark 3") {
		t.Fatalf("render missing gauge watermark:\n%s", out)
	}
}

// TestQuantileEdgeCases pins the histogram quantile contract at its edges:
// empty summaries, out-of-range q, single samples, and clamping into
// [Min, Max] instead of extrapolating past an observed sample.
func TestQuantileEdgeCases(t *testing.T) {
	single := NewMetrics()
	single.ObserveValue("s", 100) // lands in bucket ≤128
	one := single.Snapshot().Values["s"]

	multi := NewMetrics()
	for _, v := range []float64{3, 5, 100} {
		multi.ObserveValue("m", v)
	}
	three := multi.Snapshot().Values["m"]

	low := NewMetrics()
	for _, v := range []float64{5, 6, 7} { // all in bucket ≤8, min 5
		low.ObserveValue("l", v)
	}
	clamped := low.Snapshot().Values["l"]

	tests := []struct {
		name string
		sum  ValueSummary
		q    float64
		want float64
	}{
		{"empty", ValueSummary{}, 0.5, 0},
		{"q below zero", three, -0.1, 3},
		{"q zero is min", three, 0, 3},
		{"q one is max", three, 1, 100},
		{"q above one", three, 1.5, 100},
		{"single sample mid-q is the sample", one, 0.5, 100},
		{"single sample q0", one, 0, 100},
		{"single sample q1", one, 1, 100},
		{"mid-q stays a bucket edge", three, 0.5, 8},
		{"shared-bucket q0 is min", clamped, 0, 5},
		{"bucket edge clamps down to max", clamped, 0.5, 7},
	}
	for _, tc := range tests {
		if got := tc.sum.Quantile(tc.q); got != tc.want {
			t.Errorf("%s: Quantile(%v) = %v, want %v", tc.name, tc.q, got, tc.want)
		}
	}
}

func TestMetricsValueHistogram(t *testing.T) {
	m := NewMetrics()
	for _, v := range []float64{1, 1, 2, 3, 5, 8, 100} {
		m.ObserveValue("batch", v)
	}
	h := m.Snapshot().Values["batch"]
	if h.Count != 7 || h.Min != 1 || h.Max != 100 {
		t.Fatalf("summary = %+v", h)
	}
	if got := h.Mean(); got < 17.1 || got > 17.2 { // 120/7
		t.Fatalf("mean = %v", got)
	}
	// Buckets: ≤1:{1,1} ≤2:{2} ≤4:{3} ≤8:{5,8} ≤128:{100}.
	want := map[int]int64{0: 2, 1: 1, 2: 1, 3: 2, 7: 1}
	for i, c := range want {
		if h.Buckets[i] != c {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, h.Buckets[i], c, h.Buckets)
		}
	}
	if q := h.Quantile(0); q != 1 {
		t.Fatalf("p0 = %v, want 1", q)
	}
	if q := h.Quantile(0.5); q != 4 {
		t.Fatalf("p50 = %v, want 4 (bucket edge over median sample 3)", q)
	}
	if q := h.Quantile(0.99); q != 100 {
		t.Fatalf("p99 = %v, want 100 (bucket edge 128 clamped to observed max)", q)
	}
	if out := m.Snapshot().Render(); !strings.Contains(out, "batch") || !strings.Contains(out, "≤8:2") {
		t.Fatalf("render missing histogram:\n%s", out)
	}
}

func TestMetricsCountersAndLatencies(t *testing.T) {
	m := NewMetrics()
	m.Add("requests", 2)
	m.Add("requests", 1)
	m.Add("inflight", 1)
	m.Add("inflight", -1)
	m.Observe("stage", 10*time.Millisecond)
	m.Observe("stage", 30*time.Millisecond)
	if got := m.Counter("requests"); got != 3 {
		t.Fatalf("requests = %d, want 3", got)
	}
	if got := m.Counter("inflight"); got != 0 {
		t.Fatalf("inflight = %d, want 0", got)
	}
	snap := m.Snapshot()
	l := snap.Latencies["stage"]
	if l.Count != 2 || l.Total != 40*time.Millisecond || l.Max != 30*time.Millisecond {
		t.Fatalf("latency summary = %+v", l)
	}
	if l.Mean() != 20*time.Millisecond {
		t.Fatalf("mean = %v, want 20ms", l.Mean())
	}
}

func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Add("n", 1)
				m.Observe("lat", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := m.Counter("n"); got != 8000 {
		t.Fatalf("n = %d, want 8000", got)
	}
	if got := m.Snapshot().Latencies["lat"].Count; got != 8000 {
		t.Fatalf("lat count = %d, want 8000", got)
	}
}

func TestMetricsRenderStable(t *testing.T) {
	m := NewMetrics()
	m.Add("b", 2)
	m.Add("a", 1)
	m.Observe("z", time.Millisecond)
	out := m.Snapshot().Render()
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") || !strings.Contains(out, "z") {
		t.Fatalf("render missing keys:\n%s", out)
	}
	if strings.Index(out, "a") > strings.Index(out, "b") {
		t.Fatalf("render not sorted:\n%s", out)
	}
	if out != m.Snapshot().Render() {
		t.Fatal("render not stable across snapshots")
	}
}

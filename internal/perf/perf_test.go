package perf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNilProbeIsSafe(t *testing.T) {
	var p *Probe
	p.Op(Vector, 3)
	p.Load(0x1000, 8)
	p.Store(0x2000, 8)
	p.TakeBranch(1, true)
	p.Dep(2)
	p.Frontend(1)
	p.Reset()
	if p.Instructions() != 0 {
		t.Fatal("nil probe must report zero instructions")
	}
	if len(p.Mix()) != 0 {
		t.Fatal("nil probe mix must be empty")
	}
}

func TestProbeCounts(t *testing.T) {
	p := NewProbe()
	p.Op(ScalarInt, 10)
	p.Op(Vector, 5)
	p.Load(0x1000, 4)
	p.Store(0x1004, 4)
	if got := p.Instructions(); got != 17 {
		t.Fatalf("Instructions = %d, want 17", got)
	}
	mix := p.Mix()
	if mix[Vector] != 5.0/17 {
		t.Fatalf("vector mix = %v", mix[Vector])
	}
	if p.Loads != 1 || p.Stores != 1 {
		t.Fatalf("loads/stores = %d/%d", p.Loads, p.Stores)
	}
	p.Reset()
	if p.Instructions() != 0 {
		t.Fatal("reset must clear counters")
	}
}

func TestMixSumsToOne(t *testing.T) {
	p := NewProbe()
	p.Op(Vector, 3)
	p.Op(Memory, 7)
	p.Op(Branch, 2)
	p.Op(ScalarFP, 4)
	sum := 0.0
	for _, f := range p.Mix() {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("mix sums to %v, want 1", sum)
	}
}

func TestCacheSimSequentialLocality(t *testing.T) {
	// A sequential scan of a small array must hit L1 after the first touch
	// of each line.
	c := NewCacheSim(MachineB)
	for i := 0; i < 4096; i++ {
		c.Access(uint64(i), 1, false)
	}
	wantMisses := uint64(4096 / 64)
	total := c.L1Misses + c.L2Misses + c.L3Misses
	if total != wantMisses {
		t.Fatalf("sequential scan missed %d lines, want %d", total, wantMisses)
	}
}

func TestCacheSimCapacityMisses(t *testing.T) {
	// A working set far larger than L1 must produce L1 misses on re-scan;
	// one that fits in L1 must not.
	big := NewCacheSim(MachineB)
	span := uint64(4 << 20) // 4 MiB > L1+L2
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < span; a += 64 {
			big.Access(a, 1, false)
		}
	}
	if big.L1Misses+big.L2Misses+big.L3Misses <= span/64 {
		t.Fatal("large working set should keep missing on the second pass")
	}

	small := NewCacheSim(MachineB)
	for pass := 0; pass < 4; pass++ {
		for a := uint64(0); a < 16<<10; a += 64 {
			small.Access(a, 1, false)
		}
	}
	firstPassLines := uint64(16 << 10 / 64)
	if got := small.L1Misses + small.L2Misses + small.L3Misses; got != firstPassLines {
		t.Fatalf("L1-resident set missed %d times, want %d (compulsory only)", got, firstPassLines)
	}
}

func TestCacheSimLineStraddle(t *testing.T) {
	c := NewCacheSim(MachineB)
	c.Access(60, 8, false) // straddles lines 0 and 1
	if c.Accesses != 2 {
		t.Fatalf("straddling access counted %d times, want 2", c.Accesses)
	}
}

func TestCacheExclusiveMissCounting(t *testing.T) {
	c := NewCacheSim(MachineB)
	// First touch of one line goes to DRAM: exactly one L3 (DRAM) miss and
	// no L1/L2 exclusive misses.
	c.Access(0x100000, 1, false)
	if c.L3Misses != 1 || c.L1Misses != 0 || c.L2Misses != 0 {
		t.Fatalf("first touch: got L1=%d L2=%d L3=%d", c.L1Misses, c.L2Misses, c.L3Misses)
	}
}

func TestBranchSimLearnsLoop(t *testing.T) {
	b := NewBranchSim(12)
	// A branch taken 999 times then not taken once (classic loop) should be
	// predicted nearly perfectly after warmup.
	for i := 0; i < 1000; i++ {
		b.Predict(0x400, i != 999)
	}
	if b.MispredictRate() > 0.05 {
		t.Fatalf("loop branch mispredict rate %v too high", b.MispredictRate())
	}
}

func TestBranchSimRandomIsHard(t *testing.T) {
	b := NewBranchSim(12)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		b.Predict(0x400, rng.Intn(2) == 0)
	}
	if b.MispredictRate() < 0.30 {
		t.Fatalf("random branch mispredict rate %v suspiciously low", b.MispredictRate())
	}
}

func TestTopDownFractionsSumToOne(t *testing.T) {
	f := func(nInt, nVec, nLoads uint16, deps uint16) bool {
		p := NewProbe()
		p.Op(ScalarInt, int(nInt)+1)
		p.Op(Vector, int(nVec))
		for i := 0; i < int(nLoads); i++ {
			p.Load(uintptr(i)*64931, 8)
		}
		p.Dep(int(deps))
		td := Analyze(p)
		sum := td.Retiring + td.FrontEndBound + td.BadSpeculation + td.CoreBound + td.MemoryBound
		return sum > 0.999 && sum < 1.001 && td.IPC > 0 && td.IPC <= Width
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTopDownMemoryBoundKernel(t *testing.T) {
	// A pointer-chasing kernel over a huge footprint must be memory bound;
	// a pure ALU kernel must be retiring-dominated.
	mem := NewProbe()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50000; i++ {
		mem.Op(ScalarInt, 1)
		mem.Load(uintptr(rng.Int63n(1<<30)), 8)
	}
	alu := NewProbe()
	alu.Op(ScalarInt, 100000)

	tdMem, tdALU := Analyze(mem), Analyze(alu)
	if tdMem.MemoryBound < 0.5 {
		t.Fatalf("random pointer chase should be memory bound, got %+v", tdMem)
	}
	if tdALU.Retiring < 0.95 {
		t.Fatalf("pure ALU kernel should retire, got %+v", tdALU)
	}
	if tdALU.IPC <= tdMem.IPC {
		t.Fatal("ALU kernel should have higher IPC than memory-bound kernel")
	}
}

func TestReport(t *testing.T) {
	p := NewProbe()
	p.Op(ScalarInt, 1000)
	for i := 0; i < 100; i++ {
		p.TakeBranch(uint64(i%3), i%2 == 0)
	}
	r := NewReport("toy", p)
	if r.Kernel != "toy" {
		t.Fatal("kernel name lost")
	}
	if r.Instructions != p.Instructions() {
		t.Fatal("instruction count mismatch")
	}
	if r.BranchMissRate <= 0 {
		t.Fatal("alternating branch should mispredict sometimes")
	}
}

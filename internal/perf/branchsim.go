package perf

// BranchSim is a gshare conditional branch predictor: a global history
// register XORed with the branch site indexes a table of 2-bit saturating
// counters. It models the mispredictions that dominate the paper's
// BadSpeculation measurements (§5.2).
type BranchSim struct {
	bits    uint
	mask    uint64
	history uint64
	table   []uint8

	Lookups     uint64
	Mispredicts uint64
}

// NewBranchSim builds a predictor with 2^bits counters.
func NewBranchSim(bits uint) *BranchSim {
	return &BranchSim{
		bits:  bits,
		mask:  (1 << bits) - 1,
		table: make([]uint8, 1<<bits),
	}
}

// Predict records the outcome of the branch at site pc and returns whether
// the predictor got it right. The table trains on every lookup.
func (b *BranchSim) Predict(pc uint64, taken bool) bool {
	b.Lookups++
	idx := (pc ^ b.history) & b.mask
	ctr := b.table[idx]
	predictTaken := ctr >= 2
	if taken {
		if ctr < 3 {
			b.table[idx] = ctr + 1
		}
	} else if ctr > 0 {
		b.table[idx] = ctr - 1
	}
	b.history = ((b.history << 1) | boolBit(taken)) & b.mask
	correct := predictTaken == taken
	if !correct {
		b.Mispredicts++
	}
	return correct
}

// MispredictRate returns the fraction of mispredicted lookups.
func (b *BranchSim) MispredictRate() float64 {
	if b.Lookups == 0 {
		return 0
	}
	return float64(b.Mispredicts) / float64(b.Lookups)
}

// Reset clears predictor state and counters.
func (b *BranchSim) Reset() {
	for i := range b.table {
		b.table[i] = 0
	}
	b.history, b.Lookups, b.Mispredicts = 0, 0, 0
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

package perf

// AddrSpace hands out deterministic synthetic base addresses for the data
// structures of an instrumented kernel. Kernels describe their memory
// behaviour to the cache simulator in terms of these addresses, which mirror
// the layout (strides, footprints, adjacency) of the real allocations while
// staying reproducible across runs.
type AddrSpace struct {
	next uint64
}

// NewAddrSpace starts allocations at a fixed non-zero base.
func NewAddrSpace() *AddrSpace { return &AddrSpace{next: 1 << 20} }

// Alloc reserves size bytes and returns the 64-byte-aligned base address.
// A guard gap separates consecutive allocations so distinct structures never
// share a cache line.
func (a *AddrSpace) Alloc(size int) uint64 {
	if size < 1 {
		size = 1
	}
	base := (a.next + 63) &^ 63
	a.next = base + uint64(size) + 256
	return base
}

// Reset rewinds the address space to its initial base, so a reused kernel
// workspace hands out the same synthetic addresses every call — the cache
// and branch models then see identical streams whether a kernel ran with a
// fresh or a pooled workspace.
func (a *AddrSpace) Reset() { a.next = 1 << 20 }

package perf

import "fmt"

// Pipeline latency parameters of the analytic top-down model. The model is a
// 4-wide superscalar core in the spirit of Yasin's top-down method (the
// paper's [39]): every cycle has Width issue slots; a slot either retires a
// micro-op or is attributed to one of the four stall categories.
const (
	Width = 4 // superscalar issue width (Table 6 caption: "4-way CPU core")

	mispredictPenalty = 15 // cycles of squashed work per branch mispredict

	l2FillLatency   = 10  // L1 miss filled from L2
	l3FillLatency   = 30  // L2 miss filled from L3
	dramFillLatency = 150 // L3 miss filled from DRAM

	// memOverlap is the fraction of miss latency hidden by out-of-order
	// overlap and MLP; the remainder stalls the backend.
	memOverlap = 0.65
)

// TopDown is a top-down pipeline breakdown: the fraction of issue slots
// retiring or stalled per category (Fig. 6), plus the resulting IPC
// (Table 6). Fractions sum to 1.
type TopDown struct {
	Retiring       float64
	FrontEndBound  float64
	BadSpeculation float64
	CoreBound      float64
	MemoryBound    float64

	Cycles       float64
	Instructions uint64
	IPC          float64
}

// Analyze reduces a probe's event stream to a top-down breakdown.
func Analyze(p *Probe) TopDown {
	var td TopDown
	instr := p.Instructions()
	if instr == 0 {
		return td
	}

	retireCycles := float64(instr) / Width

	badSpecCycles := float64(p.Mispredicts) * mispredictPenalty

	var memCycles float64
	if p.Cache != nil {
		c := p.Cache
		raw := float64(c.L1Misses)*l2FillLatency +
			float64(c.L2Misses)*l3FillLatency +
			float64(c.L3Misses)*dramFillLatency
		memCycles = raw * (1 - memOverlap)
	}

	coreCycles := float64(p.DepCycles)

	// Front-end bubbles: fetch redirect after every taken branch through
	// hard-to-predict code plus the instruction-supply cost of
	// front-end-hostile regions.
	feCycles := float64(p.FrontendOps) / Width

	total := retireCycles + badSpecCycles + memCycles + coreCycles + feCycles
	if total <= 0 {
		return td
	}

	slots := total * Width
	td.Retiring = float64(instr) / slots
	td.BadSpeculation = badSpecCycles * Width / slots
	td.MemoryBound = memCycles * Width / slots
	td.CoreBound = coreCycles * Width / slots
	td.FrontEndBound = feCycles * Width / slots
	td.Cycles = total
	td.Instructions = instr
	td.IPC = float64(instr) / total
	return td
}

// String renders the breakdown as one row.
func (t TopDown) String() string {
	return fmt.Sprintf("retiring=%.2f frontend=%.2f badspec=%.2f core=%.2f memory=%.2f ipc=%.2f",
		t.Retiring, t.FrontEndBound, t.BadSpeculation, t.CoreBound, t.MemoryBound, t.IPC)
}

// Report bundles everything the characterization experiments need about one
// profiled kernel run.
type Report struct {
	Kernel  string
	TopDown TopDown
	Mix     map[Class]float64
	L1MPKI  float64
	L2MPKI  float64
	L3MPKI  float64

	Instructions   uint64
	Mispredicts    uint64
	BranchMissRate float64
}

// NewReport snapshots a probe into a Report.
func NewReport(kernel string, p *Probe) Report {
	r := Report{
		Kernel:       kernel,
		TopDown:      Analyze(p),
		Mix:          p.Mix(),
		Instructions: p.Instructions(),
		Mispredicts:  p.Mispredicts,
	}
	if p.Branches > 0 {
		r.BranchMissRate = float64(p.Mispredicts) / float64(p.Branches)
	}
	if p.Cache != nil {
		r.L1MPKI, r.L2MPKI, r.L3MPKI = p.Cache.MPKI(r.Instructions)
	}
	return r
}

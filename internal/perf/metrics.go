package perf

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Metrics is a concurrency-safe set of named counters and latency
// accumulators — the service-level companion to the Probe's
// microarchitectural event stream. Long-running subsystems (the serve-mode
// build service, the simulated multi-tenant replay) record requests, cache
// hits, evictions and per-stage latencies here, and reports snapshot it.
//
// A nil *Metrics is valid everywhere and records nothing, matching the
// Probe's nil-safety rule, so instrumentation points pay only a nil check
// when metrics are disabled.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]int64
	lats     map[string]*latAcc
}

type latAcc struct {
	count int64
	total time.Duration
	max   time.Duration
}

// NewMetrics returns an empty metric set.
func NewMetrics() *Metrics {
	return &Metrics{counters: map[string]int64{}, lats: map[string]*latAcc{}}
}

// Add adds delta (which may be negative, for gauges like in-flight counts)
// to the named counter, creating it at zero on first use.
func (m *Metrics) Add(name string, delta int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.counters[name] += delta
	m.mu.Unlock()
}

// Observe records one latency sample under name.
func (m *Metrics) Observe(name string, d time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	acc := m.lats[name]
	if acc == nil {
		acc = &latAcc{}
		m.lats[name] = acc
	}
	acc.count++
	acc.total += d
	if d > acc.max {
		acc.max = d
	}
	m.mu.Unlock()
}

// Counter returns the named counter's current value (0 if never touched).
func (m *Metrics) Counter(name string) int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// LatencySummary is one latency accumulator's snapshot.
type LatencySummary struct {
	Count int64
	Total time.Duration
	Max   time.Duration
}

// Mean returns the average sample, or 0 with no samples.
func (l LatencySummary) Mean() time.Duration {
	if l.Count == 0 {
		return 0
	}
	return l.Total / time.Duration(l.Count)
}

// MetricsSnapshot is a consistent copy of a metric set.
type MetricsSnapshot struct {
	Counters  map[string]int64
	Latencies map[string]LatencySummary
}

// Snapshot copies the current state. A nil receiver snapshots empty maps.
func (m *Metrics) Snapshot() MetricsSnapshot {
	snap := MetricsSnapshot{
		Counters:  map[string]int64{},
		Latencies: map[string]LatencySummary{},
	}
	if m == nil {
		return snap
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for k, v := range m.counters {
		snap.Counters[k] = v
	}
	for k, acc := range m.lats {
		snap.Latencies[k] = LatencySummary{Count: acc.count, Total: acc.total, Max: acc.max}
	}
	return snap
}

// Render formats the snapshot as a stable, sorted plain-text report.
func (s MetricsSnapshot) Render() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(&b, "%-28s %12d\n", k, s.Counters[k])
	}
	names = names[:0]
	for k := range s.Latencies {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		l := s.Latencies[k]
		fmt.Fprintf(&b, "%-28s n=%-8d mean=%-12v max=%v\n",
			k, l.Count, l.Mean().Round(time.Microsecond), l.Max.Round(time.Microsecond))
	}
	return b.String()
}

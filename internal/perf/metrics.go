package perf

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Metrics is a concurrency-safe set of named counters and latency
// accumulators — the service-level companion to the Probe's
// microarchitectural event stream. Long-running subsystems (the serve-mode
// build service, the simulated multi-tenant replay) record requests, cache
// hits, evictions and per-stage latencies here, and reports snapshot it.
//
// A nil *Metrics is valid everywhere and records nothing, matching the
// Probe's nil-safety rule, so instrumentation points pay only a nil check
// when metrics are disabled.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]*gaugeAcc
	lats     map[string]*latAcc
	hists    map[string]*histAcc
}

// gaugeAcc is a settable level with a high watermark — the right shape for
// in-flight counts and queue depths, where the peak matters as much as the
// instant value and the Add(+1)/Add(-1) counter pattern loses it.
type gaugeAcc struct {
	val int64
	max int64
}

type latAcc struct {
	count int64
	total time.Duration
	max   time.Duration
}

// histAcc is a log2-bucketed value distribution (batch sizes, queue depths).
type histAcc struct {
	count    int64
	sum      float64
	min, max float64
	buckets  map[int]int64 // bucket i counts samples v with 2^(i-1) < v ≤ 2^i
}

// NewMetrics returns an empty metric set.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: map[string]int64{},
		gauges:   map[string]*gaugeAcc{},
		lats:     map[string]*latAcc{},
		hists:    map[string]*histAcc{},
	}
}

// Add adds delta (which may be negative, for gauges like in-flight counts)
// to the named counter, creating it at zero on first use.
func (m *Metrics) Add(name string, delta int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.counters[name] += delta
	m.mu.Unlock()
}

// GaugeSet sets the named gauge to v, tracking its high watermark.
func (m *Metrics) GaugeSet(name string, v int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	g := m.gauges[name]
	if g == nil {
		g = &gaugeAcc{}
		m.gauges[name] = g
	}
	g.val = v
	if v > g.max {
		g.max = v
	}
	m.mu.Unlock()
}

// GaugeAdd adjusts the named gauge by delta (typically ±1 around an
// in-flight section), tracking its high watermark.
func (m *Metrics) GaugeAdd(name string, delta int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	g := m.gauges[name]
	if g == nil {
		g = &gaugeAcc{}
		m.gauges[name] = g
	}
	g.val += delta
	if g.val > g.max {
		g.max = g.val
	}
	m.mu.Unlock()
}

// Gauge returns the named gauge's current value and high watermark
// (0, 0 if never touched).
func (m *Metrics) Gauge(name string) (value, watermark int64) {
	if m == nil {
		return 0, 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if g := m.gauges[name]; g != nil {
		return g.val, g.max
	}
	return 0, 0
}

// Observe records one latency sample under name.
func (m *Metrics) Observe(name string, d time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	acc := m.lats[name]
	if acc == nil {
		acc = &latAcc{}
		m.lats[name] = acc
	}
	acc.count++
	acc.total += d
	if d > acc.max {
		acc.max = d
	}
	m.mu.Unlock()
}

// logBucket returns the histogram bucket of v: the smallest i ≥ 0 with
// v ≤ 2^i (negative values clamp into bucket 0).
func logBucket(v float64) int {
	i := 0
	for b := 1.0; b < v && i < 63; b *= 2 {
		i++
	}
	return i
}

// ObserveValue records one sample of a value distribution under name —
// the histogram companion to Observe's latencies, used for batch sizes and
// queue depths. Buckets are powers of two.
func (m *Metrics) ObserveValue(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	h := m.hists[name]
	if h == nil {
		h = &histAcc{buckets: map[int]int64{}}
		m.hists[name] = h
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[logBucket(v)]++
	m.mu.Unlock()
}

// Counter returns the named counter's current value (0 if never touched).
func (m *Metrics) Counter(name string) int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// LatencySummary is one latency accumulator's snapshot.
type LatencySummary struct {
	Count int64
	Total time.Duration
	Max   time.Duration
}

// Mean returns the average sample, or 0 with no samples.
func (l LatencySummary) Mean() time.Duration {
	if l.Count == 0 {
		return 0
	}
	return l.Total / time.Duration(l.Count)
}

// ValueSummary is one value distribution's snapshot.
type ValueSummary struct {
	Count    int64
	Sum      float64
	Min, Max float64
	// Buckets maps log2 bucket index i to the count of samples v with
	// 2^(i-1) < v ≤ 2^i (bucket 0 holds v ≤ 1).
	Buckets map[int]int64
}

// Mean returns the average sample, or 0 with no samples.
func (v ValueSummary) Mean() float64 {
	if v.Count == 0 {
		return 0
	}
	return v.Sum / float64(v.Count)
}

// Quantile returns the upper edge of the bucket holding the q-th sample —
// a ≤2× overestimate, which is all a log2 histogram can promise — clamped
// into [Min, Max] so it never extrapolates past an observed sample. The
// edges answer exactly: no samples returns 0, q ≤ 0 returns Min, and q ≥ 1
// or a single-sample summary returns Max.
func (v ValueSummary) Quantile(q float64) float64 {
	if v.Count == 0 {
		return 0
	}
	if q <= 0 {
		return v.Min
	}
	if q >= 1 || v.Count == 1 {
		return v.Max
	}
	rank := int64(q * float64(v.Count))
	if rank >= v.Count {
		rank = v.Count - 1
	}
	idxs := make([]int, 0, len(v.Buckets))
	for i := range v.Buckets {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	est := v.Max
	var seen int64
	for _, i := range idxs {
		seen += v.Buckets[i]
		if seen > rank {
			est = float64(int64(1) << uint(i))
			break
		}
	}
	if est < v.Min {
		est = v.Min
	}
	if est > v.Max {
		est = v.Max
	}
	return est
}

// GaugeSummary is one gauge's snapshot: its instant value and the high
// watermark it ever reached.
type GaugeSummary struct {
	Value     int64
	Watermark int64
}

// MetricsSnapshot is a consistent copy of a metric set.
type MetricsSnapshot struct {
	Counters  map[string]int64
	Gauges    map[string]GaugeSummary
	Latencies map[string]LatencySummary
	Values    map[string]ValueSummary
}

// Snapshot copies the current state. A nil receiver snapshots empty maps.
func (m *Metrics) Snapshot() MetricsSnapshot {
	snap := MetricsSnapshot{
		Counters:  map[string]int64{},
		Gauges:    map[string]GaugeSummary{},
		Latencies: map[string]LatencySummary{},
		Values:    map[string]ValueSummary{},
	}
	if m == nil {
		return snap
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for k, v := range m.counters {
		snap.Counters[k] = v
	}
	for k, g := range m.gauges {
		snap.Gauges[k] = GaugeSummary{Value: g.val, Watermark: g.max}
	}
	for k, acc := range m.lats {
		snap.Latencies[k] = LatencySummary{Count: acc.count, Total: acc.total, Max: acc.max}
	}
	for k, h := range m.hists {
		buckets := make(map[int]int64, len(h.buckets))
		for i, c := range h.buckets {
			buckets[i] = c
		}
		snap.Values[k] = ValueSummary{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max, Buckets: buckets}
	}
	return snap
}

// Render formats the snapshot as a stable, sorted plain-text report.
func (s MetricsSnapshot) Render() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(&b, "%-28s %12d\n", k, s.Counters[k])
	}
	names = names[:0]
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		g := s.Gauges[k]
		fmt.Fprintf(&b, "%-28s %12d  (high watermark %d)\n", k, g.Value, g.Watermark)
	}
	names = names[:0]
	for k := range s.Latencies {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		l := s.Latencies[k]
		fmt.Fprintf(&b, "%-28s n=%-8d mean=%-12v max=%v\n",
			k, l.Count, l.Mean().Round(time.Microsecond), l.Max.Round(time.Microsecond))
	}
	names = names[:0]
	for k := range s.Values {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		v := s.Values[k]
		fmt.Fprintf(&b, "%-28s n=%-8d mean=%-8.2f min=%g max=%g  %s\n",
			k, v.Count, v.Mean(), v.Min, v.Max, v.renderBuckets())
	}
	return b.String()
}

// renderBuckets formats the non-empty histogram buckets as "≤edge:count"
// pairs in ascending edge order.
func (v ValueSummary) renderBuckets() string {
	idxs := make([]int, 0, len(v.Buckets))
	for i := range v.Buckets {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	parts := make([]string, 0, len(idxs))
	for _, i := range idxs {
		parts = append(parts, fmt.Sprintf("≤%d:%d", int64(1)<<uint(i), v.Buckets[i]))
	}
	return strings.Join(parts, " ")
}

package seqmap

import (
	"testing"

	"pangenomicsbench/internal/gensim"
)

func testPop(t testing.TB) *gensim.Population {
	t.Helper()
	cfg := gensim.DefaultConfig()
	cfg.RefLen = 30_000
	cfg.Haplotypes = 3
	p, err := gensim.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMapperValidation(t *testing.T) {
	if _, err := NewMapper([]byte("ACGT"), 15, 10); err == nil {
		t.Fatal("reference shorter than k must be rejected")
	}
}

func TestMapRecoversTruth(t *testing.T) {
	p := testPop(t)
	m, err := NewMapper(p.Ref, 15, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Reads drawn from the reference haplotype map back near their origin.
	reads, err := p.SimulateReads(gensim.ShortReadConfig(60))
	if err != nil {
		t.Fatal(err)
	}
	mapped, near := 0, 0
	for _, r := range reads {
		res, st := m.Map(r.Seq, nil, nil)
		if st.Total() <= 0 {
			t.Fatal("stage times missing")
		}
		if !res.Mapped {
			continue
		}
		mapped++
		// Haplotype coordinates differ from reference coordinates by at
		// most the indel drift; accept a window.
		d := res.RefStart - r.Pos
		if d < 0 {
			d = -d
		}
		if d < 2000 {
			near++
		}
	}
	if mapped < len(reads)*8/10 {
		t.Fatalf("mapped only %d/%d", mapped, len(reads))
	}
	if near < mapped*8/10 {
		t.Fatalf("only %d/%d mapped near truth", near, mapped)
	}
}

func TestMapUnmappableRead(t *testing.T) {
	p := testPop(t)
	m, err := NewMapper(p.Ref, 15, 10)
	if err != nil {
		t.Fatal(err)
	}
	junk := make([]byte, 150)
	for i := range junk {
		junk[i] = "TG"[i%2]
	}
	res, _ := m.Map(junk, nil, nil)
	_ = res // must not crash; low-complexity reads may or may not map
}

func TestSSWCapture(t *testing.T) {
	p := testPop(t)
	m, err := NewMapper(p.Ref, 15, 10)
	if err != nil {
		t.Fatal(err)
	}
	reads, err := p.SimulateReads(gensim.ShortReadConfig(20))
	if err != nil {
		t.Fatal(err)
	}
	var cap SSWCapture
	for _, r := range reads {
		m.Map(r.Seq, nil, &cap)
	}
	if len(cap.Refs) == 0 || len(cap.Refs) != len(cap.Queries) {
		t.Fatalf("capture sizes %d/%d", len(cap.Refs), len(cap.Queries))
	}
	for i := range cap.Refs {
		if len(cap.Refs[i]) == 0 || len(cap.Queries[i]) == 0 {
			t.Fatal("degenerate capture")
		}
	}
}

func TestGaplessShortcut(t *testing.T) {
	p := testPop(t)
	m, err := NewMapper(p.Ref, 15, 10)
	if err != nil {
		t.Fatal(err)
	}
	// A perfect reference substring must map exactly via the shortcut.
	read := p.Ref[5000:5150]
	res, _ := m.Map(read, nil, nil)
	if !res.Mapped || res.RefStart != 5000 {
		t.Fatalf("perfect read mapped to %d, want 5000", res.RefStart)
	}
	if res.Score != 150*DefaultMatch {
		t.Fatalf("perfect read score %d", res.Score)
	}
}

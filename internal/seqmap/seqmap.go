// Package seqmap is the Seq2Seq baseline mapper (the paper's BWA-MEM2
// column of Table 1 and the SSW side of case study §6.1): minimizer
// seeding on a linear reference, coordinate-based chaining, and striped
// Smith-Waterman extension.
package seqmap

import (
	"fmt"
	"time"

	"pangenomicsbench/internal/align"
	"pangenomicsbench/internal/bio"
	"pangenomicsbench/internal/chain"
	"pangenomicsbench/internal/minimizer"
	"pangenomicsbench/internal/perf"
)

// DefaultMatch is the match bonus of the mapper's scoring scheme, exported
// for score sanity checks.
const DefaultMatch = 1

// StageTimes records wall time per mapping stage (Fig. 1 / Fig. 2
// structure).
type StageTimes struct {
	Seed   time.Duration
	Chain  time.Duration
	Filter time.Duration
	Align  time.Duration
}

// Total returns the summed stage time.
func (s StageTimes) Total() time.Duration { return s.Seed + s.Chain + s.Filter + s.Align }

// Add accumulates another read's stage times.
func (s *StageTimes) Add(o StageTimes) {
	s.Seed += o.Seed
	s.Chain += o.Chain
	s.Filter += o.Filter
	s.Align += o.Align
}

// Mapping is one read's result.
type Mapping struct {
	Mapped   bool
	RefStart int
	RefEnd   int
	Score    int
}

// Mapper maps reads against a linear reference.
type Mapper struct {
	ref []byte
	idx *minimizer.SeqIndex
	sc  bio.Scoring
}

// NewMapper indexes ref with (w,k)-minimizers.
func NewMapper(ref []byte, k, w int) (*Mapper, error) {
	if len(ref) < k {
		return nil, fmt.Errorf("seqmap: reference shorter than k")
	}
	idx, err := minimizer.NewSeqIndex(ref, k, w)
	if err != nil {
		return nil, err
	}
	return &Mapper{ref: ref, idx: idx, sc: bio.DefaultScoring}, nil
}

// SSWCapture collects the alignment-stage inputs (the §6.1 SSW traces).
type SSWCapture struct {
	Refs    [][]byte
	Queries [][]byte
}

// Map maps one read and reports per-stage times. capture, when non-nil,
// records the SSW inputs.
func (m *Mapper) Map(read []byte, probe *perf.Probe, capture *SSWCapture) (Mapping, StageTimes) {
	var st StageTimes

	t0 := time.Now()
	ms, err := minimizer.Compute(read, m.idx.K(), m.idx.W(), probe)
	if err != nil {
		return Mapping{}, st
	}
	var anchors []chain.Anchor
	for _, mm := range ms {
		for _, loc := range m.idx.Lookup(mm.Hash) {
			anchors = append(anchors, chain.Anchor{QPos: mm.Pos, RPos: loc.Pos, Len: m.idx.K()})
		}
	}
	st.Seed = time.Since(t0)
	if len(anchors) == 0 {
		return Mapping{}, st
	}

	t0 = time.Now()
	chains := chain.Linear(anchors, 2*len(read), probe)
	st.Chain = time.Since(t0)
	if len(chains) == 0 {
		return Mapping{}, st
	}

	t0 = time.Now()
	chains = chain.Filter(chains, 0.5, 2)
	st.Filter = time.Since(t0)

	t0 = time.Now()
	best := Mapping{}
	for _, ch := range chains {
		lo := ch.Anchors[0].RPos - ch.Anchors[0].QPos - 32
		hi := ch.Anchors[len(ch.Anchors)-1].RPos + (len(read) - ch.Anchors[len(ch.Anchors)-1].QPos) + 32
		if lo < 0 {
			lo = 0
		}
		if hi > len(m.ref) {
			hi = len(m.ref)
		}
		window := m.ref[lo:hi]
		if capture != nil {
			// The §6.1 trace capture records every alignment-stage input,
			// shortcut or not, so SSW and GSSW see the same reads.
			capture.Refs = append(capture.Refs, window)
			capture.Queries = append(capture.Queries, read)
		}
		// Gapless shortcut (as BWA-MEM takes for clean hits): score the
		// read at the chain-implied diagonal; only fall back to full
		// Smith-Waterman when the gapless hit is poor.
		diag := ch.Anchors[0].RPos - ch.Anchors[0].QPos
		if g, ok := m.gaplessScore(read, diag, probe); ok {
			if g > best.Score {
				best = Mapping{Mapped: true, RefStart: diag, RefEnd: diag + len(read), Score: g}
			}
			continue
		}
		r := align.StripedSW(window, read, m.sc, probe)
		if r.Score > best.Score {
			best = Mapping{Mapped: true, RefStart: lo, RefEnd: lo + r.RefEnd, Score: r.Score}
		}
	}
	st.Align = time.Since(t0)
	return best, st
}

// gaplessScore scores the read against the reference at a fixed diagonal;
// ok is false when the hit has too many mismatches for the shortcut.
func (m *Mapper) gaplessScore(read []byte, refStart int, probe *perf.Probe) (int, bool) {
	if refStart < 0 || refStart+len(read) > len(m.ref) {
		return 0, false
	}
	score, mism := 0, 0
	for i, b := range read {
		probe.Op(perf.ScalarInt, 2)
		if m.ref[refStart+i] == b {
			score += m.sc.Match
		} else {
			score -= m.sc.Mismatch
			mism++
		}
	}
	return score, mism <= len(read)/25
}

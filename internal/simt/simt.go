// Package simt is a SIMT GPU simulator standing in for the paper's RTX
// A6000 + NVIDIA Nsight Compute (see DESIGN.md §1). GPU kernels (TSU,
// PGSGD-GPU) are written as per-block functions that drive 32-lane warps
// through explicit execute and memory operations with active-lane masks.
// The simulator derives the Table 7 metrics from the execution trace:
// theoretical and achieved occupancy (register/block limits plus block
// scheduling imbalance), warp execution utilization (active lanes per
// issued warp instruction), memory-coalescing transactions, DRAM bandwidth
// utilization, and kernel time from a per-SM timeline.
package simt

import "fmt"

// WarpSize is the number of lanes per warp.
const WarpSize = 32

// FullMask activates all 32 lanes.
const FullMask uint32 = 0xffffffff

// Device describes the modeled GPU.
type Device struct {
	Name            string
	SMs             int
	MaxThreadsPerSM int
	MaxWarpsPerSM   int
	MaxBlocksPerSM  int
	RegistersPerSM  int
	ClockGHz        float64
	MemBWGBs        float64
	// MemLatency is the DRAM round-trip in cycles, hidden by resident
	// warps.
	MemLatency int
}

// A6000 returns the RTX A6000 configuration from Table 5.
func A6000() Device {
	return Device{
		Name:            "RTX A6000",
		SMs:             84,
		MaxThreadsPerSM: 1536,
		MaxWarpsPerSM:   48,
		MaxBlocksPerSM:  16,
		RegistersPerSM:  65536,
		ClockGHz:        1.8,
		MemBWGBs:        768,
		MemLatency:      400,
	}
}

// KernelSpec declares a kernel launch.
type KernelSpec struct {
	Name            string
	Blocks          int
	ThreadsPerBlock int
	RegsPerThread   int
}

// BlockFn runs one block's work against the simulator.
type BlockFn func(b *Block)

// Block is the per-block execution context handed to a BlockFn.
type Block struct {
	ID    int
	spec  KernelSpec
	dev   *Device
	warps []warpState
	// resident warps per SM, filled in before execution (for latency
	// hiding).
	residentWarps int
}

type warpState struct {
	cycles    float64
	instr     uint64
	activeSum uint64
	dramBytes uint64 // useful bytes delivered
	busBytes  uint64 // bus time consumed, in byte-equivalents
	memStalls float64
}

// NumWarps returns the number of warps in the block.
func (b *Block) NumWarps() int { return len(b.warps) }

// Warp returns warp i's handle.
func (b *Block) Warp(i int) *Warp {
	if i < 0 || i >= len(b.warps) {
		panic(fmt.Sprintf("simt: warp %d out of range [0,%d)", i, len(b.warps)))
	}
	return &Warp{block: b, idx: i}
}

// Warp issues instructions for one warp of the block.
type Warp struct {
	block *Block
	idx   int
}

func popcount32(x uint32) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Exec issues cost warp instructions with the given active-lane mask.
// Inactive lanes still occupy issue slots — that is the divergence penalty.
func (w *Warp) Exec(active uint32, cost int) {
	if active == 0 || cost <= 0 {
		return
	}
	ws := &w.block.warps[w.idx]
	ws.cycles += float64(cost)
	ws.instr += uint64(cost)
	ws.activeSum += uint64(cost) * uint64(popcount32(active))
}

// Mem issues one memory instruction: each active lane accesses size bytes at
// addrs[lane]. The coalescer merges lane accesses into 32-byte sectors; each
// distinct sector is one transaction. Uncoalesced access patterns therefore
// cost up to 32 transactions per instruction (§5.3's PGSGD observation).
func (w *Warp) Mem(active uint32, addrs *[WarpSize]uint64, size int) {
	if active == 0 {
		return
	}
	if size < 1 {
		size = 1
	}
	ws := &w.block.warps[w.idx]
	// Distinct 32-byte sectors across active lanes.
	var sectors []uint64
	for l := 0; l < WarpSize; l++ {
		if active&(1<<uint(l)) == 0 {
			continue
		}
		first := addrs[l] >> 5
		last := (addrs[l] + uint64(size) - 1) >> 5
		for s := first; s <= last; s++ {
			found := false
			for _, e := range sectors {
				if e == s {
					found = true
					break
				}
			}
			if !found {
				sectors = append(sectors, s)
			}
		}
	}
	ws.instr++
	act := popcount32(active)
	ws.activeSum += uint64(act)
	ws.dramBytes += uint64(len(sectors)) * 32
	// Bus occupancy: scattered sectors (one lane per sector) pay DRAM
	// row-activation overhead, so each consumes more bus time than the 32
	// useful bytes it delivers — the reason uncoalesced kernels saturate
	// the memory system at well under peak useful bandwidth (§5.3).
	if len(sectors) >= act && act > 4 {
		ws.busBytes += uint64(len(sectors)) * 76
	} else {
		ws.busBytes += uint64(len(sectors)) * 32
	}
	// Issue cost: one cycle per transaction; base latency partially hidden
	// by the other resident warps, but uncoalesced accesses serialize —
	// the warp cannot issue again until every lane's transaction returns
	// (§5.3: "forcing sequential memory operations to different regions
	// for each thread").
	ws.cycles += float64(len(sectors))
	hide := float64(w.block.residentWarps)
	if hide < 1 {
		hide = 1
	}
	ws.memStalls += float64(w.block.dev.MemLatency)/hide + float64(len(sectors)-1)*40
}

// MemDep issues a memory instruction on a loop-carried dependence: the
// warp's next step needs the loaded value, so — unlike Mem — occupancy
// cannot hide the latency from this warp's own critical path. Half the
// DRAM latency is charged to the warp (the other half overlaps with the
// transaction issue and L2 hits). This is the access mode of TSU's
// wavefront loop and the mechanism behind its long-read slowdown (§5.3).
func (w *Warp) MemDep(active uint32, addrs *[WarpSize]uint64, size int) {
	w.Mem(active, addrs, size)
	if active == 0 {
		return
	}
	ws := &w.block.warps[w.idx]
	ws.memStalls += float64(w.block.dev.MemLatency) / 2
}

// Metrics are the Table 7 / Fig. 9 quantities.
type Metrics struct {
	Kernel               string
	TheoreticalOccupancy float64
	AchievedOccupancy    float64
	WarpUtilization      float64
	MemBWUtilization     float64
	TimeMS               float64
	Cycles               float64
	WarpInstructions     uint64
	DRAMBytes            uint64
	IssueIntervalCycles  float64 // average cycles between issues per scheduler
	ResidentBlocksPerSM  int
}

// ResidentBlocks computes how many blocks of the spec fit on one SM.
func ResidentBlocks(dev Device, spec KernelSpec) int {
	if spec.ThreadsPerBlock < 1 {
		return 0
	}
	byThreads := dev.MaxThreadsPerSM / spec.ThreadsPerBlock
	byBlocks := dev.MaxBlocksPerSM
	byRegs := byThreads
	if spec.RegsPerThread > 0 {
		byRegs = dev.RegistersPerSM / (spec.RegsPerThread * spec.ThreadsPerBlock)
	}
	warpsPerBlock := (spec.ThreadsPerBlock + WarpSize - 1) / WarpSize
	byWarps := dev.MaxWarpsPerSM / warpsPerBlock
	r := byThreads
	for _, v := range []int{byBlocks, byRegs, byWarps} {
		if v < r {
			r = v
		}
	}
	return r
}

// Run executes the kernel deterministically and reduces the trace to
// metrics.
func Run(dev Device, spec KernelSpec, fn BlockFn) (Metrics, error) {
	if spec.Blocks < 1 || spec.ThreadsPerBlock < 1 {
		return Metrics{}, fmt.Errorf("simt: invalid launch %+v", spec)
	}
	resident := ResidentBlocks(dev, spec)
	if resident < 1 {
		return Metrics{}, fmt.Errorf("simt: kernel %q does not fit on an SM (%d regs × %d threads)",
			spec.Name, spec.RegsPerThread, spec.ThreadsPerBlock)
	}
	warpsPerBlock := (spec.ThreadsPerBlock + WarpSize - 1) / WarpSize

	// Execute every block, collecting per-block duration and totals.
	blockCycles := make([]float64, spec.Blocks)
	var totInstr, totActive, totDRAM, totBus uint64
	var totWarpBusy float64
	for bid := 0; bid < spec.Blocks; bid++ {
		blk := &Block{ID: bid, spec: spec, dev: &dev,
			warps:         make([]warpState, warpsPerBlock),
			residentWarps: resident * warpsPerBlock,
		}
		fn(blk)
		var dur float64
		for i := range blk.warps {
			w := &blk.warps[i]
			c := w.cycles + w.memStalls
			if c > dur {
				dur = c
			}
			totInstr += w.instr
			totActive += w.activeSum
			totDRAM += w.dramBytes
			totBus += w.busBytes
			totWarpBusy += c
		}
		if dur == 0 {
			dur = 1
		}
		blockCycles[bid] = dur
	}

	// Schedule blocks onto SM slots: dev.SMs × resident concurrent slots,
	// greedy earliest-free assignment (matches hardware wave scheduling).
	slots := make([]float64, dev.SMs*resident)
	var makespan float64
	var warpResidency float64 // Σ over blocks of duration × warpsPerBlock
	for _, dur := range blockCycles {
		mi := 0
		for i := 1; i < len(slots); i++ {
			if slots[i] < slots[mi] {
				mi = i
			}
		}
		slots[mi] += dur
		if slots[mi] > makespan {
			makespan = slots[mi]
		}
		warpResidency += dur * float64(warpsPerBlock)
	}
	if makespan == 0 {
		makespan = 1
	}
	// DRAM bandwidth bound: the kernel can finish no faster than the
	// memory system can deliver its traffic. Blocks stay resident while
	// they wait, so warp residency stretches with the makespan.
	bytesPerCycle := dev.MemBWGBs / dev.ClockGHz
	if bwCycles := float64(totBus) / bytesPerCycle; bwCycles > makespan {
		warpResidency *= bwCycles / makespan
		makespan = bwCycles
	}

	m := Metrics{
		Kernel:              spec.Name,
		ResidentBlocksPerSM: resident,
		Cycles:              makespan,
		WarpInstructions:    totInstr,
		DRAMBytes:           totDRAM,
	}
	m.TheoreticalOccupancy = float64(resident*warpsPerBlock) / float64(dev.MaxWarpsPerSM)
	m.AchievedOccupancy = warpResidency / (makespan * float64(dev.SMs) * float64(dev.MaxWarpsPerSM))
	if m.AchievedOccupancy > m.TheoreticalOccupancy {
		m.AchievedOccupancy = m.TheoreticalOccupancy
	}
	if totInstr > 0 {
		m.WarpUtilization = float64(totActive) / (float64(totInstr) * WarpSize)
	}
	seconds := makespan / (dev.ClockGHz * 1e9)
	m.TimeMS = seconds * 1e3
	if seconds > 0 {
		m.MemBWUtilization = float64(totDRAM) / seconds / (dev.MemBWGBs * 1e9)
		if m.MemBWUtilization > 1 {
			m.MemBWUtilization = 1
		}
	}
	// Schedulers issue one instruction per cycle when warps are ready; the
	// average issue interval reflects stall exposure.
	const schedulersPerSM = 4
	activeSMCycles := makespan * float64(dev.SMs) * schedulersPerSM
	if totInstr > 0 {
		m.IssueIntervalCycles = activeSMCycles / float64(totInstr)
	}
	return m, nil
}

package simt

import "testing"

func TestResidentBlocks(t *testing.T) {
	dev := A6000()
	// PGSGD configuration (§5.3): 1024 threads × 44 regs → 1 block/SM.
	if got := ResidentBlocks(dev, KernelSpec{ThreadsPerBlock: 1024, RegsPerThread: 44}); got != 1 {
		t.Fatalf("1024×44 resident blocks = %d, want 1", got)
	}
	// Tuned 256-thread variant → 5 blocks/SM (83.3% theoretical).
	if got := ResidentBlocks(dev, KernelSpec{ThreadsPerBlock: 256, RegsPerThread: 44}); got != 5 {
		t.Fatalf("256×44 resident blocks = %d, want 5", got)
	}
	// TSU: 32-thread blocks capped by the 16-block limit.
	if got := ResidentBlocks(dev, KernelSpec{ThreadsPerBlock: 32, RegsPerThread: 40}); got != 16 {
		t.Fatalf("32×40 resident blocks = %d, want 16", got)
	}
}

func TestOccupancyMatchesPaper(t *testing.T) {
	dev := A6000()
	// TSU theoretical occupancy: 16 warps of 48 ≈ 33% (paper: 32.97%).
	m, err := Run(dev, KernelSpec{Name: "t", Blocks: 200, ThreadsPerBlock: 32, RegsPerThread: 40},
		func(b *Block) { b.Warp(0).Exec(FullMask, 100) })
	if err != nil {
		t.Fatal(err)
	}
	if m.TheoreticalOccupancy < 0.33 || m.TheoreticalOccupancy > 0.34 {
		t.Fatalf("TSU theoretical occupancy %.3f, want ≈ 0.333", m.TheoreticalOccupancy)
	}
	// PGSGD default: 32 warps of 48 = 66.7% theoretical.
	m2, err := Run(dev, KernelSpec{Name: "p", Blocks: 200, ThreadsPerBlock: 1024, RegsPerThread: 44},
		func(b *Block) {
			for w := 0; w < b.NumWarps(); w++ {
				b.Warp(w).Exec(FullMask, 50)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if m2.TheoreticalOccupancy < 0.66 || m2.TheoreticalOccupancy > 0.67 {
		t.Fatalf("PGSGD theoretical occupancy %.3f, want ≈ 0.667", m2.TheoreticalOccupancy)
	}
	if m2.AchievedOccupancy > m2.TheoreticalOccupancy {
		t.Fatal("achieved occupancy cannot exceed theoretical")
	}
}

func TestWarpUtilization(t *testing.T) {
	dev := A6000()
	// Full-mask execution: 100% utilization.
	m, err := Run(dev, KernelSpec{Name: "full", Blocks: 10, ThreadsPerBlock: 32, RegsPerThread: 32},
		func(b *Block) { b.Warp(0).Exec(FullMask, 10) })
	if err != nil {
		t.Fatal(err)
	}
	if m.WarpUtilization < 0.999 {
		t.Fatalf("full-mask utilization %.3f", m.WarpUtilization)
	}
	// Single-lane execution: 1/32.
	m2, _ := Run(dev, KernelSpec{Name: "one", Blocks: 10, ThreadsPerBlock: 32, RegsPerThread: 32},
		func(b *Block) { b.Warp(0).Exec(1, 10) })
	if m2.WarpUtilization < 0.03 || m2.WarpUtilization > 0.04 {
		t.Fatalf("single-lane utilization %.3f, want 1/32", m2.WarpUtilization)
	}
}

func TestCoalescing(t *testing.T) {
	dev := A6000()
	// Coalesced: 32 lanes × 4 bytes consecutive = 4 sectors = 128 bytes.
	coalesced, _ := Run(dev, KernelSpec{Name: "c", Blocks: 1, ThreadsPerBlock: 32, RegsPerThread: 32},
		func(b *Block) {
			var addrs [WarpSize]uint64
			for l := range addrs {
				addrs[l] = uint64(l * 4)
			}
			b.Warp(0).Mem(FullMask, &addrs, 4)
		})
	if coalesced.DRAMBytes != 128 {
		t.Fatalf("coalesced DRAM bytes = %d, want 128", coalesced.DRAMBytes)
	}
	// Scattered: 32 lanes far apart = 32 sectors = 1024 bytes.
	scattered, _ := Run(dev, KernelSpec{Name: "s", Blocks: 1, ThreadsPerBlock: 32, RegsPerThread: 32},
		func(b *Block) {
			var addrs [WarpSize]uint64
			for l := range addrs {
				addrs[l] = uint64(l * 4096)
			}
			b.Warp(0).Mem(FullMask, &addrs, 4)
		})
	if scattered.DRAMBytes != 1024 {
		t.Fatalf("scattered DRAM bytes = %d, want 1024", scattered.DRAMBytes)
	}
	if scattered.Cycles <= coalesced.Cycles {
		t.Fatal("scattered access must cost more cycles")
	}
}

func TestRunValidation(t *testing.T) {
	dev := A6000()
	if _, err := Run(dev, KernelSpec{Blocks: 0, ThreadsPerBlock: 32}, func(*Block) {}); err == nil {
		t.Fatal("zero blocks must be rejected")
	}
	// A kernel too fat to fit on an SM.
	if _, err := Run(dev, KernelSpec{Blocks: 1, ThreadsPerBlock: 1536, RegsPerThread: 64},
		func(*Block) {}); err == nil {
		t.Fatal("oversized kernel must be rejected")
	}
}

func TestWarpPanicsOutOfRange(t *testing.T) {
	dev := A6000()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_, _ = Run(dev, KernelSpec{Name: "x", Blocks: 1, ThreadsPerBlock: 32, RegsPerThread: 32},
		func(b *Block) { b.Warp(5) })
}

func TestImbalanceLowersAchievedOccupancy(t *testing.T) {
	dev := A6000()
	// Blocks with wildly different durations: achieved < theoretical.
	m, err := Run(dev, KernelSpec{Name: "i", Blocks: 400, ThreadsPerBlock: 32, RegsPerThread: 32},
		func(b *Block) {
			cost := 10
			if b.ID == 0 {
				cost = 100000 // one straggler
			}
			b.Warp(0).Exec(FullMask, cost)
		})
	if err != nil {
		t.Fatal(err)
	}
	if m.AchievedOccupancy >= m.TheoreticalOccupancy*0.9 {
		t.Fatalf("straggler should depress achieved occupancy: %.3f vs %.3f",
			m.AchievedOccupancy, m.TheoreticalOccupancy)
	}
}

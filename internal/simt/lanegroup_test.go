package simt

import (
	"math"
	"math/bits"
	"math/rand"
	"testing"

	"pangenomicsbench/internal/align"
)

// TestMyersLaneGroupWarpAccounting cross-checks the batched mapping
// kernel's lane model against the simt warp model: replaying a
// MyersLaneGroup run's per-column active masks through a simulated warp
// must reproduce the group's own divergence accounting exactly —
// Columns() becomes the warp-instruction count, LaneSteps() the
// active-lane sum, and the simulator's WarpExecutionUtilization equals
// LaneSteps/(Columns×WarpSize). The two models were written
// independently (align's for CPU lane packing, simt's for the Table 7
// GPU metrics), so agreement here pins the shared SIMT semantics:
// ragged lanes retire, retired lanes still occupy issue slots.
func TestMyersLaneGroupWarpAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randSeq := func(n int) []byte {
		s := make([]byte, n)
		for i := range s {
			s[i] = "ACGT"[rng.Intn(4)]
		}
		return s
	}

	// Ragged reference lengths force divergence: lanes retire one by one
	// while the lockstep loop keeps issuing columns for the longest.
	var g align.MyersLaneGroup
	refLens := []int{10, 250, 40, 120, 1, 300, 77, 200}
	for _, n := range refLens {
		if _, err := g.Add(randSeq(n), randSeq(48)); err != nil {
			t.Fatal(err)
		}
	}
	g.Run(nil)

	cols, steps := g.Columns(), g.LaneSteps()
	if cols != 300 { // the longest lane drives the lockstep round count
		t.Fatalf("Columns() = %d, want 300", cols)
	}

	// The per-column masks must tile the lane-step total, expose exactly
	// the lanes whose reference still has bases, and only ever retire
	// lanes (a lane never reactivates).
	maskSum := 0
	prev := uint32(1<<len(refLens)) - 1
	for c := 0; c < cols; c++ {
		mask := g.ActiveMask(c)
		maskSum += bits.OnesCount32(mask)
		if mask&^prev != 0 {
			t.Fatalf("column %d reactivates lanes: mask %032b after %032b", c, mask, prev)
		}
		for l := 0; l < g.Len(); l++ {
			if got, want := mask&(1<<uint(l)) != 0, c < g.RefLen(l); got != want {
				t.Fatalf("column %d lane %d active=%v, want %v (ref len %d)", c, l, got, want, g.RefLen(l))
			}
		}
		prev = mask
	}
	if maskSum != steps {
		t.Fatalf("Σ popcount(ActiveMask) = %d, want LaneSteps %d", maskSum, steps)
	}

	// Replay the masks through one simulated warp, one instruction per
	// lockstep column.
	spec := KernelSpec{Name: "myers-lanes", Blocks: 1, ThreadsPerBlock: WarpSize, RegsPerThread: 32}
	m, err := Run(A6000(), spec, func(b *Block) {
		w := b.Warp(0)
		for c := 0; c < cols; c++ {
			w.Exec(g.ActiveMask(c), 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.WarpInstructions != uint64(cols) {
		t.Errorf("warp instructions %d, want Columns() = %d", m.WarpInstructions, cols)
	}
	want := float64(steps) / (float64(cols) * WarpSize)
	if math.Abs(m.WarpUtilization-want) > 1e-12 {
		t.Errorf("warp utilization %.6f, want LaneSteps/(Columns×%d) = %.6f", m.WarpUtilization, WarpSize, want)
	}
	// With 8 of 32 lanes ever filled and ragged retirement, utilization
	// sits well below the 8-lane ceiling — divergence is visible, not
	// averaged away.
	if ceiling := 8.0 / WarpSize; m.WarpUtilization >= ceiling {
		t.Errorf("warp utilization %.4f not below the %d-lane ceiling %.4f", m.WarpUtilization, 8, ceiling)
	}
}

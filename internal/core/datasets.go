package core

import (
	"fmt"
	"os"
	"path/filepath"

	"pangenomicsbench/internal/bio"
	"pangenomicsbench/internal/gfa"
)

// ExportDatasets writes the suite's datasets to dir in standard formats —
// the counterpart of the paper's dataset-generation scripts (§4.2: "We
// include this code to generate new kernel datasets so researchers can
// analyze their own workloads"): the reference and assemblies as FASTA,
// the reads as FASTQ, and the pangenome graph as GFA. It returns the
// written file names.
func (s *Suite) ExportDatasets(dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var written []string
	writeFile := func(name string, fn func(f *os.File) error) error {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return fmt.Errorf("core: writing %s: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		written = append(written, name)
		return nil
	}

	if err := writeFile("reference.fa", func(f *os.File) error {
		return bio.WriteFasta(f, []bio.Record{{Name: "ref", Seq: s.Pop.Ref}}, 80)
	}); err != nil {
		return nil, err
	}

	names, seqs := s.Pop.AssemblyView()
	asm := make([]bio.Record, len(names))
	for i := range names {
		asm[i] = bio.Record{Name: names[i], Seq: seqs[i]}
	}
	if err := writeFile("assemblies.fa", func(f *os.File) error {
		return bio.WriteFasta(f, asm, 80)
	}); err != nil {
		return nil, err
	}

	toRecords := func(reads []readLike) []bio.Record {
		out := make([]bio.Record, len(reads))
		for i, r := range reads {
			out[i] = bio.Record{
				Name: r.name,
				Desc: fmt.Sprintf("hap=%d pos=%d", r.hap, r.pos),
				Seq:  r.seq,
			}
		}
		return out
	}
	var short, long []readLike
	for _, r := range s.ShortReads {
		short = append(short, readLike{r.Name, r.Hap, r.Pos, r.Seq})
	}
	for _, r := range s.LongReads {
		long = append(long, readLike{r.Name, r.Hap, r.Pos, r.Seq})
	}
	if err := writeFile("short_reads.fq", func(f *os.File) error {
		return bio.WriteFastq(f, toRecords(short))
	}); err != nil {
		return nil, err
	}
	if err := writeFile("long_reads.fq", func(f *os.File) error {
		return bio.WriteFastq(f, toRecords(long))
	}); err != nil {
		return nil, err
	}

	if err := writeFile("pangenome.gfa", func(f *os.File) error {
		return gfa.Write(f, s.Pop.Graph)
	}); err != nil {
		return nil, err
	}
	return written, nil
}

type readLike struct {
	name     string
	hap, pos int
	seq      []byte
}

package core

import (
	"fmt"
	"math/rand"
	"time"

	"pangenomicsbench/internal/align"
	"pangenomicsbench/internal/bio"
	"pangenomicsbench/internal/fmindex"
	"pangenomicsbench/internal/gbwt"
	"pangenomicsbench/internal/graph"
	"pangenomicsbench/internal/perf"
)

// OptGSSW is the optimization experiment case study §6.1 proposes: "within
// a node, the rows exhibit linear dependencies, meaning these rows do not
// need to be stored. This optimization could improve performance by
// avoiding the costly writebacks from SIMD buffers to DP matrix." It runs
// the captured GSSW corpus through the full kernel and through GSSWLean
// (score-only, boundary rows kept) and compares memory behaviour.
func (s *Suite) OptGSSW() (Table, error) {
	inputs, err := s.GSSWInputs()
	if err != nil {
		return Table{}, err
	}
	sc := bio.DefaultScoring

	type variant struct {
		name string
		run  func(g *graph.Graph, q []byte, p *perf.Probe) (int, error)
	}
	variants := []variant{
		{"GSSW (full matrices)", func(g *graph.Graph, q []byte, p *perf.Probe) (int, error) {
			r, err := align.GSSW(g, q, sc, p)
			return r.Score, err
		}},
		{"GSSW-lean (§6.1 optimization)", func(g *graph.Graph, q []byte, p *perf.Probe) (int, error) {
			r, err := align.GSSWLean(g, q, sc, p)
			return r.Score, err
		}},
	}

	tbl := Table{
		ID:     "opt-gssw",
		Title:  "§6.1 Optimization: dropping intra-node DP row write-back",
		Header: []string{"Variant", "Stores/instr", "MemBound", "IPC", "Model cycles", "Wall time"},
		Notes: []string{
			"the lean variant keeps only node-boundary rows (score-only, no traceback);",
			"scores verified identical across the corpus",
		},
	}
	var scores [][]int
	for _, v := range variants {
		probe := perf.NewProbe()
		t0 := time.Now()
		var ss []int
		for _, in := range inputs {
			score, err := v.run(in.Sub, in.Query, probe)
			if err != nil {
				return Table{}, err
			}
			ss = append(ss, score)
		}
		wall := time.Since(t0)
		scores = append(scores, ss)
		td := perf.Analyze(probe)
		storesPer := float64(probe.Stores) / float64(nonzeroU(probe.Instructions()))
		tbl.Rows = append(tbl.Rows, []string{
			v.name, f2(storesPer), pct(td.MemoryBound), f2(td.IPC),
			fmt.Sprintf("%.0f", td.Cycles), wall.Round(time.Microsecond).String(),
		})
	}
	for i := range scores[0] {
		if scores[0][i] != scores[1][i] {
			return Table{}, fmt.Errorf("core: lean GSSW diverged on input %d (%d vs %d)",
				i, scores[0][i], scores[1][i])
		}
	}
	return tbl, nil
}

// GBWTvsFMIndex contrasts the haplotype-aware GBWT with the classic
// base-pair FM-index — §5.2's explanation of why GBWT avoids the memory
// bottleneck previous work measured for BWT-based seeding: base-pair
// backward search hops unpredictably across the whole occurrence table,
// while GBWT queries walk a handful of adjacent node records.
func (s *Suite) GBWTvsFMIndex() (Table, error) {
	// FM-index over the linear reference, queried with read substrings.
	fm, err := fmindex.New(s.Pop.Ref)
	if err != nil {
		return Table{}, err
	}
	fmProbe := perf.NewProbe()
	rng := rand.New(rand.NewSource(s.Cfg.Seed + 13))
	t0 := time.Now()
	queries := 0
	for _, r := range s.ShortReads {
		for k := 0; k < 4; k++ {
			n := 12 + rng.Intn(20)
			if n > len(r.Seq) {
				n = len(r.Seq)
			}
			start := rng.Intn(len(r.Seq) - n + 1)
			fm.Count(r.Seq[start:start+n], fmProbe)
			queries++
		}
	}
	fmWall := time.Since(t0)
	fmRep := perf.NewReport("FM-index (base pairs)", fmProbe)

	// GBWT over the graph's haplotypes, queried with the captured corpus.
	idx, err := gbwt.Build(s.Pop.Graph)
	if err != nil {
		return Table{}, err
	}
	gbwtIn, err := s.GBWTInputs()
	if err != nil {
		return Table{}, err
	}
	gbProbe := perf.NewProbe()
	t0 = time.Now()
	for _, q := range gbwtIn {
		idx.Find(q.Nodes, gbProbe)
	}
	gbWall := time.Since(t0)
	gbRep := perf.NewReport("GBWT (haplotype paths)", gbProbe)

	tbl := Table{
		ID:     "gbwt-vs-fmindex",
		Title:  "Index contrast: classic FM-index vs haplotype-aware GBWT",
		Header: []string{"Index", "Queries", "MemBound", "L1 MPKI", "L3 MPKI", "IPC", "Wall time"},
		Notes: []string{
			"§5.2: the FM-index's 4-letter alphabet makes occ-table hops unpredictable and",
			"bandwidth-hungry; GBWT's node-ID alphabet bounds each hop to a few nearby records",
		},
	}
	add := func(rep perf.Report, n int, wall time.Duration) {
		tbl.Rows = append(tbl.Rows, []string{
			rep.Kernel, fmt.Sprintf("%d", n), pct(rep.TopDown.MemoryBound),
			f2(rep.L1MPKI), f2(rep.L3MPKI), f2(rep.TopDown.IPC),
			wall.Round(time.Microsecond).String(),
		})
	}
	add(fmRep, queries, fmWall)
	add(gbRep, len(gbwtIn), gbWall)
	return tbl, nil
}

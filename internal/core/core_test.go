package core

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"pangenomicsbench/internal/perf"
)

// suite is shared across tests (expensive to build).
var testSuite *Suite

func getSuite(t testing.TB) *Suite {
	t.Helper()
	if testSuite == nil {
		s, err := NewSuite(Small)
		if err != nil {
			t.Fatal(err)
		}
		testSuite = s
	}
	return testSuite
}

func TestNewSuiteScales(t *testing.T) {
	for _, sc := range []Scale{Small, Bench, Large} {
		cfg := ConfigFor(sc)
		if cfg.RefLen <= 0 || cfg.Haplotypes < 2 {
			t.Fatalf("scale %d config invalid: %+v", sc, cfg)
		}
	}
	s := getSuite(t)
	if len(s.ShortReads) == 0 || len(s.LongReads) == 0 {
		t.Fatal("suite has no reads")
	}
	if s.Pop.Graph.NumNodes() == 0 {
		t.Fatal("suite has no graph")
	}
}

func TestKernelRegistry(t *testing.T) {
	s := getSuite(t)
	ks, err := s.Kernels()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"GSSW": true, "GBWT": true, "GBV": true, "GWFA-lr": true, "GWFA-cr": true, "TC": true, "PGSGD": true}
	for _, k := range ks {
		delete(want, k.Name)
		if k.Inputs <= 0 {
			t.Fatalf("kernel %s has no inputs", k.Name)
		}
		if _, err := TimeKernel(k); err != nil {
			t.Fatalf("kernel %s failed: %v", k.Name, err)
		}
	}
	if len(want) != 0 {
		t.Fatalf("missing kernels: %v", want)
	}
}

func TestProfileKernelProducesEvents(t *testing.T) {
	s := getSuite(t)
	ks, err := s.Kernels()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ks {
		rep, err := ProfileKernel(k)
		if err != nil {
			t.Fatalf("profile %s: %v", k.Name, err)
		}
		if rep.Instructions == 0 {
			t.Fatalf("kernel %s recorded no instructions", k.Name)
		}
		td := rep.TopDown
		sum := td.Retiring + td.FrontEndBound + td.BadSpeculation + td.CoreBound + td.MemoryBound
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("kernel %s top-down sums to %v", k.Name, sum)
		}
		if td.IPC <= 0 || td.IPC > 4 {
			t.Fatalf("kernel %s IPC %v out of range", k.Name, td.IPC)
		}
	}
}

// TestCharacterizationShapes verifies the paper's key qualitative findings
// on the profiled kernels.
func TestCharacterizationShapes(t *testing.T) {
	s := getSuite(t)
	reports, err := s.profileAll()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]int{}
	for i, r := range reports {
		byName[r.Kernel] = i
	}
	get := func(name string) int {
		i, ok := byName[name]
		if !ok {
			t.Fatalf("missing report %s", name)
		}
		return i
	}
	pgsgd := reports[get("PGSGD")]
	tc := reports[get("TC")]
	gbwt := reports[get("GBWT")]
	gssw := reports[get("GSSW")]

	// (1) PGSGD is the memory-bound outlier with the lowest IPC.
	for _, r := range reports {
		if r.Kernel == "PGSGD" {
			continue
		}
		if pgsgd.TopDown.IPC >= r.TopDown.IPC {
			t.Errorf("PGSGD IPC %.2f should be the lowest (vs %s %.2f)",
				pgsgd.TopDown.IPC, r.Kernel, r.TopDown.IPC)
		}
	}
	if pgsgd.TopDown.MemoryBound < 0.2 {
		t.Errorf("PGSGD should be memory bound, got %.2f", pgsgd.TopDown.MemoryBound)
	}
	// (2) PGSGD has the worst L3 MPKI (random full-graph accesses).
	for _, r := range reports {
		if r.Kernel == "PGSGD" {
			continue
		}
		if pgsgd.L3MPKI <= r.L3MPKI {
			t.Errorf("PGSGD L3 MPKI %.2f should exceed %s's %.2f", pgsgd.L3MPKI, r.Kernel, r.L3MPKI)
		}
	}
	// (3) TC has the highest retiring fraction and IPC among CPU kernels.
	if tc.TopDown.IPC < gssw.TopDown.IPC {
		t.Errorf("TC IPC %.2f should exceed GSSW %.2f", tc.TopDown.IPC, gssw.TopDown.IPC)
	}
	// (4) GBWT is not memory bound (§5.2's surprise).
	if gbwt.TopDown.MemoryBound > 0.3 {
		t.Errorf("GBWT should not be memory bound, got %.2f", gbwt.TopDown.MemoryBound)
	}
	// (5) GSSW is vector-heavy, PGSGD scalar-FP-heavy, GBV scalar-heavy.
	if gssw.Mix[perf.Vector] < 0.15 {
		t.Errorf("GSSW vector mix %.2f too low", gssw.Mix[perf.Vector])
	}
	if pgsgd.Mix[perf.ScalarFP] < 0.15 {
		t.Errorf("PGSGD scalar-FP mix %.2f too low", pgsgd.Mix[perf.ScalarFP])
	}
	// (6) DP kernels rarely miss L3 (cache-friendly subgraphs).
	for _, name := range []string{"GSSW", "GBV"} {
		r := reports[get(name)]
		if r.L3MPKI > 1.0 {
			t.Errorf("%s L3 MPKI %.2f too high for local subgraphs", name, r.L3MPKI)
		}
	}
}

func TestExperimentDispatch(t *testing.T) {
	s := getSuite(t)
	if _, err := s.Run("nonsense"); err == nil {
		t.Fatal("unknown experiment must error")
	}
	for _, id := range []string{"table2-3", "table4"} {
		tbl, err := s.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tbl.Rows) == 0 {
			t.Fatalf("%s produced no rows", id)
		}
		if !strings.Contains(tbl.Render(), tbl.Title) {
			t.Fatalf("%s render missing title", id)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	s := getSuite(t)
	tbl, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	// Rows: VgMap, VgGiraffe, GraphAligner, Minigraph-lr, Minigraph-cr,
	// BWA-MEM2.
	est := map[string]float64{}
	for _, row := range tbl.Rows {
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		est[row[0]] = v
	}
	if len(est) < 5 {
		t.Fatalf("too few tools in table1: %v", est)
	}
	// Headline orderings from the paper: VgMap slowest Seq2Graph tool;
	// the Seq2Seq baseline fastest.
	if est["VgMap"] <= est["VgGiraffe"] {
		t.Errorf("VgMap (%f) should be slower than VgGiraffe (%f)", est["VgMap"], est["VgGiraffe"])
	}
	if est["BWA-MEM2"] >= est["VgMap"] {
		t.Errorf("BWA-MEM2 (%f) should be faster than VgMap (%f)", est["BWA-MEM2"], est["VgMap"])
	}
}

func TestFig2Shape(t *testing.T) {
	s := getSuite(t)
	tbl, err := s.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string][]string{}
	for _, row := range tbl.Rows {
		rows[row[0]] = row
	}
	parse := func(cell string) float64 {
		v, _ := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
		return v
	}
	// GraphAligner: alignment dominates.
	if ga, ok := rows["GraphAligner"]; ok {
		if parse(ga[4]) < 50 {
			t.Errorf("GraphAligner align share %.1f%% should dominate", parse(ga[4]))
		}
	} else {
		t.Error("missing GraphAligner row")
	}
	// Giraffe: filter is a major stage.
	if gf, ok := rows["VgGiraffe"]; ok {
		if parse(gf[3]) < 15 {
			t.Errorf("Giraffe filter share %.1f%% should be substantial", parse(gf[3]))
		}
	} else {
		t.Error("missing VgGiraffe row")
	}
}

// TestFig5FleetShape checks the fleet node-scaling experiment: rows for
// 1/2/4/8 nodes, predicted speedups normalized to one node and monotone
// non-decreasing, and a positive measured wall time in every row.
func TestFig5FleetShape(t *testing.T) {
	s := getSuite(t)
	tbl, err := s.Fig5Fleet()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("fig5-fleet has %d rows, want 4 (1/2/4/8 nodes)", len(tbl.Rows))
	}
	wantNodes := []string{"1", "2", "4", "8"}
	prev := 0.0
	for ri, row := range tbl.Rows {
		if row[0] != wantNodes[ri] {
			t.Fatalf("row %d is for %s nodes, want %s", ri, row[0], wantNodes[ri])
		}
		pred, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("row %d predicted %q does not parse: %v", ri, row[1], err)
		}
		if ri == 0 && pred != 1 {
			t.Fatalf("1-node predicted speedup = %v, want 1.00", pred)
		}
		if pred < prev {
			t.Fatalf("predicted speedup not monotone: %v after %v", pred, prev)
		}
		prev = pred
		wall, err := time.ParseDuration(row[2])
		if err != nil || wall <= 0 {
			t.Fatalf("row %d measured wall %q invalid (%v)", ri, row[2], err)
		}
		meas, err := strconv.ParseFloat(row[3], 64)
		if err != nil || meas <= 0 {
			t.Fatalf("row %d measured speedup %q invalid (%v)", ri, row[3], err)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	s := getSuite(t)
	tbl, err := s.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string][]string{}
	for _, row := range tbl.Rows {
		rows[row[0]] = row
	}
	val := func(row []string, i int) float64 {
		v, _ := strconv.ParseFloat(row[i], 64)
		return v
	}
	// Minigraph-cr must be flat at 1.0.
	if cr, ok := rows["Minigraph-cr"]; ok {
		if val(cr, 4) != 1 {
			t.Errorf("Minigraph-cr must not scale, got %v", cr)
		}
	} else {
		t.Error("missing Minigraph-cr")
	}
	// Mapping tools scale well to 28 threads.
	if g, ok := rows["VgGiraffe"]; ok {
		if val(g, 3) < 4 {
			t.Errorf("VgGiraffe 28-thread speedup %v too low", val(g, 3))
		}
	}
	// seqwish plateaus: 56-thread speedup well below the mapping tools'.
	if sw, ok := rows["seqwish"]; ok {
		if g, ok2 := rows["VgGiraffe"]; ok2 && val(sw, 4) > val(g, 4)/2 {
			t.Errorf("seqwish (%v) should scale far worse than Giraffe (%v)", val(sw, 4), val(g, 4))
		}
	} else {
		t.Error("missing seqwish")
	}
	// Construction curve: C(n,2) pair tasks bound parallelism, so at 56
	// threads it must scale no better than the mapping tools.
	if ap, ok := rows["PGGB-allpair"]; ok {
		if g, ok2 := rows["VgGiraffe"]; ok2 && val(ap, 4) > val(g, 4) {
			t.Errorf("PGGB-allpair (%v) should scale no better than Giraffe (%v)", val(ap, 4), val(g, 4))
		}
	} else {
		t.Error("missing PGGB-allpair")
	}
	// MC-growth: the iterative-growth chain's per-step task count and
	// sequential induction share cap its scaling well below the mapping
	// tools'.
	if mg, ok := rows["MC-growth"]; ok {
		if val(mg, 1) != 1 {
			t.Errorf("MC-growth not normalized to 4 threads: %v", mg)
		}
		if g, ok2 := rows["VgGiraffe"]; ok2 && val(mg, 4) > val(g, 4) {
			t.Errorf("MC-growth (%v) should scale no better than Giraffe (%v)", val(mg, 4), val(g, 4))
		}
	} else {
		t.Error("missing MC-growth")
	}
}

func TestFig9Shape(t *testing.T) {
	s := getSuite(t)
	tbl, err := s.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	// Single-lane fraction must increase monotonically-ish from the first
	// to the last row, ending in the paper's divergent regime.
	first, _ := strconv.ParseFloat(tbl.Rows[0][4], 64)
	last, _ := strconv.ParseFloat(tbl.Rows[len(tbl.Rows)-1][4], 64)
	if last <= first {
		t.Errorf("divergence should grow with length: %v → %v", first, last)
	}
	if last < 0.6 {
		t.Errorf("10k single-lane fraction %v below expected regime", last)
	}
	// GPU advantage must shrink with length.
	s0, _ := strconv.ParseFloat(tbl.Rows[0][3], 64)
	sn, _ := strconv.ParseFloat(tbl.Rows[len(tbl.Rows)-1][3], 64)
	if sn >= s0 {
		t.Errorf("GPU speedup should shrink with length: %v → %v", s0, sn)
	}
}

func TestTable7Shape(t *testing.T) {
	s := getSuite(t)
	tbl, err := s.Table7()
	if err != nil {
		t.Fatal(err)
	}
	parse := func(cell string) float64 {
		v, _ := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
		return v
	}
	var tsuOcc, pgsgdOcc, pgsgdWarp, pgsgd256Occ float64
	for _, row := range tbl.Rows {
		switch row[0] {
		case "TSU":
			tsuOcc = parse(row[1])
		case "PGSGD (block 1024)":
			pgsgdOcc = parse(row[1])
			pgsgdWarp = parse(row[3])
		case "PGSGD (block 256)":
			pgsgd256Occ = parse(row[1])
		}
	}
	if tsuOcc < 32 || tsuOcc > 34 {
		t.Errorf("TSU occupancy %v, want ≈ 33%%", tsuOcc)
	}
	if pgsgdOcc < 66 || pgsgdOcc > 67 {
		t.Errorf("PGSGD occupancy %v, want ≈ 66.7%%", pgsgdOcc)
	}
	if pgsgdWarp < 80 {
		t.Errorf("PGSGD warp utilization %v, want high (warp merging)", pgsgdWarp)
	}
	if pgsgd256Occ <= pgsgdOcc {
		t.Errorf("block 256 occupancy %v should exceed block 1024's %v", pgsgd256Occ, pgsgdOcc)
	}
}

func TestFig10Shape(t *testing.T) {
	s := getSuite(t)
	tbl, err := s.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	parse := func(cell string) float64 {
		v, _ := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
		return v
	}
	var ssw, gssw []string
	for _, row := range tbl.Rows {
		if row[0] == "SSW" {
			ssw = row
		}
		if row[0] == "GSSW" {
			gssw = row
		}
	}
	if ssw == nil || gssw == nil {
		t.Fatal("missing rows")
	}
	// GSSW must show more memory pressure than SSW (more stores, more
	// memory-bound slots).
	if parse(gssw[7]) <= parse(ssw[7]) {
		t.Errorf("GSSW stores/instr %v should exceed SSW %v", gssw[7], ssw[7])
	}
	if parse(gssw[5]) < parse(ssw[5]) {
		t.Errorf("GSSW memory-bound %v should be >= SSW %v", gssw[5], ssw[5])
	}
}

func TestFig11Shape(t *testing.T) {
	s := getSuite(t)
	tbl, err := s.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	mCycles, _ := strconv.ParseFloat(tbl.Rows[0][3], 64)
	sCycles, _ := strconv.ParseFloat(tbl.Rows[1][3], 64)
	mSub, _ := strconv.ParseFloat(tbl.Rows[0][2], 64)
	sSub, _ := strconv.ParseFloat(tbl.Rows[1][2], 64)
	if sSub >= mSub {
		t.Errorf("split-graph subgraphs (%v bp) should be smaller than M-graph's (%v bp)", sSub, mSub)
	}
	if sCycles >= mCycles {
		t.Errorf("split-graph GSSW cycles (%v) should be fewer than M-graph's (%v)", sCycles, mCycles)
	}
}

package core

import (
	"fmt"

	"pangenomicsbench/internal/gensim"
)

// NewScenarioSuite instantiates the benchmark environment for one catalog
// scenario at the given scale: the scenario's reshapers are applied on top
// of the scale's population and read configs, so the same kernels and
// experiment drivers run unchanged against the adversarial workload. The
// baseline scenario (all reshapers nil) reproduces NewSuite exactly.
func NewScenarioSuite(scale Scale, sc gensim.Scenario) (*Suite, error) {
	cfg := ConfigFor(scale)
	gcfg := gensim.DefaultConfig()
	gcfg.RefLen = cfg.RefLen
	gcfg.Haplotypes = cfg.Haplotypes
	gcfg.Seed = cfg.Seed
	pop, err := gensim.Simulate(sc.PopConfig(gcfg))
	if err != nil {
		return nil, fmt.Errorf("core: scenario %q: %w", sc.Name, err)
	}
	s := &Suite{Cfg: cfg, Pop: pop}
	rc := sc.ReadsConfig(gensim.ShortReadConfig(cfg.ShortReads))
	if s.ShortReads, err = pop.SimulateReads(rc); err != nil {
		return nil, fmt.Errorf("core: scenario %q: %w", sc.Name, err)
	}
	lc := gensim.LongReadConfig(cfg.LongReads)
	lc.Length = cfg.LongLen
	if s.LongReads, err = pop.SimulateReads(sc.ReadsConfig(lc)); err != nil {
		return nil, fmt.Errorf("core: scenario %q: %w", sc.Name, err)
	}
	return s, nil
}
